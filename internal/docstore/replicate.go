package docstore

import (
	"context"
	"log"
	"sync"
	"time"
)

// ReplicateOnce pushes all changes of src newer than the checkpoint to
// dst and returns the new checkpoint and the number of documents pushed.
// Push replication is unidirectional: nothing flows back from dst, which
// is what lets the DMZ replica stay read-only (paper §5.1: "the
// application database is replicated periodically between the two
// instances using CouchDB push replication. The DMZ instance is read-only
// ... thus satisfying requirement S1").
func ReplicateOnce(src, dst *Store, checkpoint uint64) (uint64, int) {
	changes := src.Changes(checkpoint)
	for _, ch := range changes {
		dst.applyReplicated(ch.Doc)
		checkpoint = ch.Seq
	}
	return checkpoint, len(changes)
}

// Replicator periodically pushes src's changes to dst.
type Replicator struct {
	src, dst *Store
	interval time.Duration
	logf     func(format string, args ...any)

	mu         sync.Mutex
	checkpoint uint64
	pushed     int

	cancel context.CancelFunc
	done   chan struct{}
}

// NewReplicator creates a push replicator from src to dst with the given
// interval (zero means 100ms, suitable for tests and local deployments).
func NewReplicator(src, dst *Store, interval time.Duration, logf func(string, ...any)) *Replicator {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if logf == nil {
		logf = log.Printf
	}
	return &Replicator{src: src, dst: dst, interval: interval, logf: logf}
}

// Start launches the replication loop. It may be called once.
func (r *Replicator) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				// Final catch-up push so Stop leaves dst current.
				r.Push()
				return
			case <-ticker.C:
				r.Push()
			}
		}
	}()
}

// Push performs one replication round immediately. It is safe to call
// concurrently with the background loop.
func (r *Replicator) Push() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	next, n := ReplicateOnce(r.src, r.dst, r.checkpoint)
	r.checkpoint = next
	r.pushed += n
	return n
}

// Pushed returns the total number of documents pushed so far.
func (r *Replicator) Pushed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pushed
}

// Stop halts the loop after a final push and waits for it to finish.
// Stopping a never-started replicator is a no-op.
func (r *Replicator) Stop() {
	if r.cancel == nil {
		return
	}
	r.cancel()
	<-r.done
	r.cancel = nil
}
