package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// ignorePrefix is the suppression directive. The syntax follows the
// staticcheck convention:
//
//	//lint:ignore analyzer1[,analyzer2] reason text
//
// The comment suppresses the named analyzers' diagnostics on the line
// immediately below it (for a standalone comment) or on its own line (for
// an end-of-line comment). The reason is mandatory: an ignore that names
// an analyzer but carries no justification is reported by that analyzer
// instead of being honoured.
const ignorePrefix = "//lint:ignore"

// suppressor implements //lint:ignore handling for one analyzer over one
// pass. It wraps pass.Report with a per-line suppression check and
// reports malformed ignores that name the analyzer.
type suppressor struct {
	pass  *analysis.Pass
	lines map[string]map[int]bool // filename -> suppressed line numbers
}

func newSuppressor(pass *analysis.Pass, analyzer string) *suppressor {
	s := &suppressor{pass: pass, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := parseIgnore(c.Text)
				if !ok || !nameListed(names, analyzer) {
					continue
				}
				if reason == "" {
					pass.Reportf(c.Pos(), "malformed //lint:ignore comment: missing justification after the analyzer list")
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				m := s.lines[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					s.lines[pos.Filename] = m
				}
				// Suppress both the comment's own line (end-of-line
				// style) and the next line (standalone style); a
				// standalone comment line produces no diagnostics of its
				// own, so the union is unambiguous.
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return s
}

// parseIgnore splits a //lint:ignore comment into its analyzer list and
// justification. ok is false for comments that are not ignore directives
// at all.
func parseIgnore(text string) (names []string, reason string, ok bool) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil, "", false
	}
	rest := text[len(ignorePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", true
	}
	names = strings.Split(fields[0], ",")
	reason = strings.TrimSpace(rest[len(fields[0]):])
	return names, reason, true
}

func nameListed(names []string, analyzer string) bool {
	for _, n := range names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// suppressed reports whether diagnostics at pos are ignored.
func (s *suppressor) suppressed(pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	return s.lines[p.Filename][p.Line]
}

// reportf reports a diagnostic at node unless an ignore covers its line.
func (s *suppressor) reportf(node ast.Node, format string, args ...interface{}) {
	if s.suppressed(node.Pos()) {
		return
	}
	s.pass.Reportf(node.Pos(), format, args...)
}
