package template

import (
	"fmt"
	"strings"
)

// Parse compiles template source. name is used in error messages.
func Parse(name, src string) (*Template, error) {
	p := &tmplParser{name: name, src: src}
	root, err := p.parseNodes("")
	if err != nil {
		return nil, err
	}
	return &Template{name: name, root: root}, nil
}

// MustParse is Parse for trusted, constant templates.
func MustParse(name, src string) *Template {
	t, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return t
}

// tmplParser scans "<% ... %>" tags out of the source text.
type tmplParser struct {
	name string
	src  string
	pos  int
}

func (p *tmplParser) errorf(format string, args ...any) error {
	return &ParseError{Name: p.name, Msg: fmt.Sprintf(format, args...)}
}

// nextTag returns the literal text before the next tag and the tag's
// contents. done is true when the source is exhausted (text holds the
// trailing literal).
func (p *tmplParser) nextTag() (text, tag string, done bool, err error) {
	start := strings.Index(p.src[p.pos:], "<%")
	if start < 0 {
		text = p.src[p.pos:]
		p.pos = len(p.src)
		return text, "", true, nil
	}
	start += p.pos
	end := strings.Index(p.src[start:], "%>")
	if end < 0 {
		return "", "", false, p.errorf("unterminated tag at offset %d", start)
	}
	end += start
	text = p.src[p.pos:start]
	tag = p.src[start+2 : end]
	p.pos = end + 2
	return text, tag, false, nil
}

// parseNodes parses until an "end"/"else" terminator (or EOF when
// terminator is ""). It leaves the terminator tag consumed and reports
// which one ended the block.
func (p *tmplParser) parseNodes(context string) ([]node, error) {
	nodes, term, err := p.parseBlock(context)
	if err != nil {
		return nil, err
	}
	if term == "else" {
		return nil, p.errorf("unexpected else outside if")
	}
	return nodes, nil
}

// parseBlock parses nodes until end/else/EOF and returns the terminator
// ("end", "else" or "" for EOF).
func (p *tmplParser) parseBlock(context string) ([]node, string, error) {
	var nodes []node
	for {
		text, tag, done, err := p.nextTag()
		if err != nil {
			return nil, "", err
		}
		if text != "" {
			nodes = append(nodes, textNode{text: text})
		}
		if done {
			if context != "" {
				return nil, "", p.errorf("missing end for %s", context)
			}
			return nodes, "", nil
		}

		trimmed := strings.TrimSpace(tag)
		switch {
		case strings.HasPrefix(tag, "=="):
			e, err := parseExpr(tag[2:])
			if err != nil {
				return nil, "", p.errorf("bad expression %q: %v", tag[2:], err)
			}
			nodes = append(nodes, exprNode{expr: e, escape: false})

		case strings.HasPrefix(tag, "="):
			e, err := parseExpr(tag[1:])
			if err != nil {
				return nil, "", p.errorf("bad expression %q: %v", tag[1:], err)
			}
			nodes = append(nodes, exprNode{expr: e, escape: true})

		case trimmed == "end":
			if context == "" {
				return nil, "", p.errorf("unexpected end")
			}
			return nodes, "end", nil

		case trimmed == "else":
			if context != "if" {
				return nil, "", p.errorf("unexpected else")
			}
			return nodes, "else", nil

		case strings.HasPrefix(trimmed, "if "):
			cond, err := parseExpr(strings.TrimPrefix(trimmed, "if "))
			if err != nil {
				return nil, "", p.errorf("bad if condition: %v", err)
			}
			then, term, err := p.parseBlock("if")
			if err != nil {
				return nil, "", err
			}
			var alt []node
			if term == "else" {
				alt, term, err = p.parseBlock("if")
				if err != nil {
					return nil, "", err
				}
				if term != "end" {
					return nil, "", p.errorf("missing end after else")
				}
			}
			nodes = append(nodes, ifNode{cond: cond, then: then, alt: alt})

		case strings.HasPrefix(trimmed, "for "):
			spec := strings.TrimPrefix(trimmed, "for ")
			varName, listSrc, ok := strings.Cut(spec, " in ")
			if !ok {
				return nil, "", p.errorf("malformed for %q, want \"for x in list\"", spec)
			}
			varName = strings.TrimSpace(varName)
			if varName == "" || strings.ContainsAny(varName, " .\"") {
				return nil, "", p.errorf("bad loop variable %q", varName)
			}
			list, err := parseExpr(listSrc)
			if err != nil {
				return nil, "", p.errorf("bad for list: %v", err)
			}
			body, term, err := p.parseBlock("for")
			if err != nil {
				return nil, "", err
			}
			if term != "end" {
				return nil, "", p.errorf("missing end for for")
			}
			nodes = append(nodes, forNode{varName: varName, list: list, body: body})

		default:
			return nil, "", p.errorf("unknown tag <%%%s%%>", tag)
		}
	}
}
