package event

import (
	"errors"
	"testing"

	"safeweb/internal/label"
)

// wantReleasePanic asserts fn panics with a value wrapping
// ErrEventReleased — the fail-closed half of the pooled non-retention
// contract.
func wantReleasePanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s on a released event: no panic", what)
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrEventReleased) {
			t.Fatalf("%s on a released event: panic %v, want ErrEventReleased", what, r)
		}
	}()
	fn()
}

// releasedDelivery returns a pooled delivery event that has been
// Released — the use-after-release scenario a retaining callback hits.
// The pool may hand the struct back out to a later delivery; the stale
// pointer must fail loudly either way, so the test drains the pool race
// by keeping the struct un-reissued (nothing else allocates here).
func releasedDelivery(t *testing.T) *Event {
	t.Helper()
	src := New("/t", map[string]string{"k": "v"})
	src.Freeze()
	d := src.Delivery()
	if d == src {
		t.Fatal("attr-carrying event should produce a pooled copy")
	}
	d.Release()
	return d
}

func TestUseAfterReleaseFailsClosed(t *testing.T) {
	wantReleasePanic(t, "Clone", func() { releasedDelivery(t).Clone() })
	wantReleasePanic(t, "Get", func() { releasedDelivery(t).Get("k") })
	wantReleasePanic(t, "Attr", func() { releasedDelivery(t).Attr("k") })
	wantReleasePanic(t, "Set", func() { _ = releasedDelivery(t).Set("k", "v") })
	wantReleasePanic(t, "Delivery", func() { releasedDelivery(t).Delivery() })
}

// TestPoolReissueRevivesGeneration checks the other half of the stamp: a
// struct the pool hands back out is live again, while the stale pointer
// from before the recycle still fails if the pool did not reuse it.
func TestPoolReissueRevivesGeneration(t *testing.T) {
	d := releasedDelivery(t)
	// Pull events from the pool until the recycled struct comes back (the
	// pool is per-P caching, so the first Get usually returns it).
	for i := 0; i < 64; i++ {
		e := newPooledEvent()
		if e == d {
			// Reissued: the same struct must be usable again.
			if err := e.Set("k", "v"); err != nil {
				t.Fatalf("Set on reissued pooled event: %v", err)
			}
			if got := e.Attr("k"); got != "v" {
				t.Fatalf("Attr on reissued pooled event = %q", got)
			}
			e.Release()
			return
		}
		defer e.Release()
	}
	t.Skip("pool did not reissue the struct; generation revival not observable")
}

// TestReleaseNonPooledIsNoOp pins the existing contract: Release on plain
// events does nothing and access stays legal.
func TestReleaseNonPooledIsNoOp(t *testing.T) {
	e := New("/t", map[string]string{"k": "v"}, label.Conf("a"))
	e.Release()
	if got := e.Attr("k"); got != "v" {
		t.Fatalf("Attr after no-op Release = %q", got)
	}
	if v, ok := e.Clone().Get("k"); !ok || v != "v" {
		t.Fatalf("Clone().Get after no-op Release = %q, %v", v, ok)
	}
}

// TestFrozenEscapeeStaysLive pins the escapee path: a pooled delivery
// that was re-published (frozen) escapes recycling on Release and must
// remain readable — it may be shared with other subscribers.
func TestFrozenEscapeeStaysLive(t *testing.T) {
	src := New("/t", map[string]string{"k": "v"})
	src.Freeze()
	d := src.Delivery()
	d.Freeze() // a callback re-published it
	d.Release()
	if got := d.Attr("k"); got != "v" {
		t.Fatalf("Attr on frozen escapee after Release = %q", got)
	}
	if c := d.Clone(); c.Attr("k") != "v" {
		t.Fatal("Clone on frozen escapee after Release lost attrs")
	}
}
