package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// NoRetain flags goroutine-confined or pooled values escaping their
// confinement: stomp.FrameView/HeaderView (invalidated by the next
// decode), engine.Context (reset between callbacks), event.DecodeCache
// and event.LabelCache (goroutine-confined memo tables), and the pooled
// *event.Event parameter of a subscription callback literal (recycled by
// Release when the callback returns). An escape is a store to a struct
// field or package-level variable, a channel send, or a hand-off to a
// goroutine. The package defining a type is exempt — the owner manages
// its own storage.
var NoRetain = &analysis.Analyzer{
	Name:     "noretain",
	Doc:      "flag goroutine-confined or pooled values escaping their confinement",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runNoRetain,
}

// confinedTypes lists the confined types and whether value copies are as
// dangerous as pointers (true for the decoder views, whose value copies
// still alias the decoder's scratch buffer).
var confinedTypes = []struct {
	pkg, name string
	values    bool
	why       string
}{
	{stompPkg, "FrameView", true, "a FrameView is confined to its decoder's read loop and invalidated by the next decode"},
	{stompPkg, "HeaderView", true, "a HeaderView is confined to its decoder's read loop and invalidated by the next decode"},
	{enginePkg, "Context", false, "a pooled Context is reset per event and invalidated between callbacks"},
	{eventPkg, "DecodeCache", false, "a DecodeCache is a goroutine-confined memo table"},
	{eventPkg, "LabelCache", false, "a LabelCache is a goroutine-confined memo table"},
}

func runNoRetain(pass *analysis.Pass) (interface{}, error) {
	sup := newSuppressor(pass, "noretain")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// confined describes why expr's value must not be retained, or "".
	confined := func(expr ast.Expr) string {
		t := pass.TypesInfo.TypeOf(expr)
		if t == nil {
			return ""
		}
		_, isPtr := types.Unalias(t).(*types.Pointer)
		for _, ct := range confinedTypes {
			if !isPkgType(t, ct.pkg, ct.name) {
				continue
			}
			if !isPtr && !ct.values {
				return ""
			}
			// The defining package owns the lifecycle and may store its
			// own values (the decoder embeds its reused view; the engine
			// parks its workers' Contexts).
			if n, ok := namedType(t); ok && n.Obj().Pkg() == pass.Pkg {
				return ""
			}
			return ct.why
		}
		return ""
	}

	scanEscapes(pass, sup, ins, confined)
	checkCallbackParams(pass, sup, ins)
	return nil, nil
}

// scanEscapes reports the three escape routes for any expression the
// confined predicate recognises: stores to struct fields or package-level
// variables, channel sends, and goroutine hand-offs.
func scanEscapes(pass *analysis.Pass, sup *suppressor, ins *inspector.Inspector, confined func(ast.Expr) string) {
	nodes := []ast.Node{
		(*ast.AssignStmt)(nil),
		(*ast.SendStmt)(nil),
		(*ast.GoStmt)(nil),
		(*ast.ValueSpec)(nil),
	}
	ins.Preorder(nodes, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, rhs := range n.Rhs {
				why := confined(rhs)
				if why == "" {
					continue
				}
				if dest := retentionDest(pass, n.Lhs[i]); dest != "" {
					sup.reportf(rhs, "confined value stored to %s: %s", dest, why)
				}
			}
		case *ast.SendStmt:
			if why := confined(n.Value); why != "" {
				sup.reportf(n.Value, "confined value sent on a channel: %s", why)
			}
		case *ast.GoStmt:
			checkGoStmt(pass, sup, n, confined)
		case *ast.ValueSpec:
			// Only package-level specs retain; locals die with the frame.
			for _, v := range n.Values {
				if why := confined(v); why != "" && isPackageLevel(pass, n) {
					sup.reportf(v, "confined value stored to a package-level variable: %s", why)
				}
			}
		}
	})
}

// retentionDest classifies an assignment destination that outlives the
// current call frame: a struct field, a package-level variable, or an
// element of a container reached through one.
func retentionDest(pass *analysis.Pass, lhs ast.Expr) string {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return "struct field " + lhs.Sel.Name
		}
		if obj := pass.TypesInfo.ObjectOf(lhs.Sel); obj != nil && isGlobalVar(obj) {
			return "package-level variable " + lhs.Sel.Name
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(lhs); obj != nil && isGlobalVar(obj) {
			return "package-level variable " + lhs.Name
		}
	case *ast.IndexExpr:
		if inner := retentionDest(pass, lhs.X); inner != "" {
			return "an element of " + inner
		}
	case *ast.StarExpr:
		if inner := retentionDest(pass, lhs.X); inner != "" {
			return inner
		}
	}
	return ""
}

func isGlobalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func isPackageLevel(pass *analysis.Pass, spec *ast.ValueSpec) bool {
	for _, name := range spec.Names {
		if obj := pass.TypesInfo.Defs[name]; obj != nil && isGlobalVar(obj) {
			return true
		}
	}
	return false
}

// checkGoStmt flags confined values handed to a goroutine, either as call
// arguments or captured by a function-literal closure.
func checkGoStmt(pass *analysis.Pass, sup *suppressor, g *ast.GoStmt, confined func(ast.Expr) string) {
	for _, arg := range g.Call.Args {
		if why := confined(arg); why != "" {
			sup.reportf(arg, "confined value passed to a goroutine: %s", why)
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !capturedFromOutside(obj, lit) {
			return true
		}
		if why := confined(id); why != "" {
			sup.reportf(id, "confined value captured by a go closure: %s", why)
		}
		return true
	})
}

// capturedFromOutside reports whether obj is declared outside the literal
// (a true capture rather than a parameter or local of the closure).
func capturedFromOutside(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// checkCallbackParams applies the escape checks to the pooled parameters
// of subscription callback literals: the *event.Event argument of a
// Subscribe handler is recycled by Release when the callback returns.
func checkCallbackParams(pass *analysis.Pass, sup *suppressor, ins *inspector.Inspector) {
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, recv := methodCall(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Subscribe" || fn.Pkg() == nil {
			return
		}
		brokerRecv := pkgPathMatches(fn.Pkg().Path(), brokerPkg)
		engineRecv := pkgPathMatches(fn.Pkg().Path(), enginePkg)
		if !brokerRecv && !engineRecv {
			return
		}
		if _, ok := namedType(recv); !ok {
			return
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			pooled := pooledParams(pass, lit)
			if len(pooled) == 0 {
				continue
			}
			confined := func(expr ast.Expr) string {
				id, ok := expr.(*ast.Ident)
				if !ok {
					return ""
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if why, ok := pooled[obj]; ok {
					return why
				}
				return ""
			}
			scanLitEscapes(pass, sup, lit, confined)
		}
	})
}

// pooledParams maps a callback literal's pooled parameter objects to the
// reason they must not be retained.
func pooledParams(pass *analysis.Pass, lit *ast.FuncLit) map[types.Object]string {
	out := make(map[types.Object]string)
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			// *engine.Context params are already covered by the global
			// confined-type scan; listing them here would double-report.
			if isPtrToPkgType(obj.Type(), eventPkg, "Event") {
				out[obj] = "a delivered event is pooled and recycled by Release when the callback returns (Clone what outlives it)"
			}
		}
	}
	return out
}

// scanLitEscapes runs the escape checks over one function literal body
// with an object-scoped confinement predicate.
func scanLitEscapes(pass *analysis.Pass, sup *suppressor, lit *ast.FuncLit, confined func(ast.Expr) string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				why := confined(rhs)
				if why == "" {
					continue
				}
				if dest := retentionDest(pass, n.Lhs[i]); dest != "" {
					sup.reportf(rhs, "pooled callback value stored to %s: %s", dest, why)
				}
			}
		case *ast.SendStmt:
			if why := confined(n.Value); why != "" {
				sup.reportf(n.Value, "pooled callback value sent on a channel: %s", why)
			}
		case *ast.GoStmt:
			checkGoStmt(pass, sup, n, confined)
		}
		return true
	})
}
