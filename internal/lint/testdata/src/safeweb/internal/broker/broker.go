// Package broker is a testdata stub mirroring safeweb/internal/broker.
package broker

import "safeweb/internal/event"

type Broker struct{}

func (b *Broker) Publish(ev *event.Event) error                          { return nil }
func (b *Broker) Subscribe(topic string, fn func(ev *event.Event)) error { return nil }
func (b *Broker) SubscribeWire(topic string, fn func(ev *event.Event, img []byte)) error {
	return nil
}
func (b *Broker) SubscribeTap(topic string, fn func(ev *event.Event)) error { return nil }

type Client struct{}

func (c *Client) Publish(ev *event.Event) error { return nil }
