package mdt

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"safeweb/internal/label"
	"safeweb/internal/maindb"
)

// deployTest spins up a small MDT deployment with data imported.
func deployTest(t *testing.T, cfg DeployConfig) *Deployment {
	t.Helper()
	if cfg.Registry.Patients == 0 {
		cfg.Registry = regSmall()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	d, err := Deploy(cfg)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	t.Cleanup(d.Stop)
	if err := d.ImportAll(); err != nil {
		t.Fatalf("ImportAll: %v", err)
	}
	return d
}

// httpGet performs an authenticated request against the deployment.
func httpGet(t *testing.T, d *Deployment, path, user string) (int, string) {
	t.Helper()
	addr, err := d.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeHTTP: %v", err)
	}
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if user != "" {
		req.SetBasicAuth(user, d.Creds[user])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestPipelineProducesLabelledRecords(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})

	// Every MDT with cancer cases has records in the DMZ replica, each
	// labelled with exactly that MDT's label.
	totalRecords := 0
	for _, m := range d.Registry.MDTs() {
		docs, err := d.DMZDB.Query(ViewRecordsByMDT, m.ID)
		if err != nil {
			t.Fatalf("Query(%s): %v", m.ID, err)
		}
		totalRecords += len(docs)
		for _, doc := range docs {
			if !doc.Labels.Contains(MDTLabel(m.ID)) {
				t.Errorf("record %s missing label of its MDT: %v", doc.ID, doc.Labels)
			}
			if doc.Labels.Confidentiality().Len() != 1 {
				t.Errorf("record %s carries foreign labels: %v", doc.ID, doc.Labels)
			}
		}
	}
	if totalRecords == 0 {
		t.Fatal("no records produced")
	}

	// The engine jail recorded no violations: units never attempted I/O.
	if n := d.Engine.Audit().Len(); n != 0 {
		t.Errorf("jail audit has %d violations", n)
	}
}

func TestMetricsRelabelled(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})

	sawMDTMetric := false
	for _, m := range d.Registry.MDTs() {
		doc, err := d.DMZDB.Get("metric/mdt/" + m.ID)
		if err != nil {
			continue // MDT with no cancer cases
		}
		sawMDTMetric = true
		want := label.NewSet(RegionAggLabel(m.Region))
		if !doc.Labels.Equal(want) {
			t.Errorf("MDT metric %s labels = %v, want %v", m.ID, doc.Labels, want)
		}
		var metrics Metrics
		if err := json.Unmarshal(doc.Data, &metrics); err != nil {
			t.Fatalf("metric decode: %v", err)
		}
		if metrics.Cases <= 0 || metrics.Completeness < 0 || metrics.Completeness > 1 {
			t.Errorf("metric %s implausible: %+v", m.ID, metrics)
		}
		if metrics.Survival <= 0 || metrics.Survival >= 1 {
			t.Errorf("survival out of range: %+v", metrics)
		}
	}
	if !sawMDTMetric {
		t.Fatal("no MDT metrics produced")
	}

	for _, region := range d.Registry.Regions() {
		doc, err := d.DMZDB.Get("metric/region/" + region)
		if err != nil {
			t.Fatalf("regional metric %s: %v", region, err)
		}
		want := label.NewSet(RegionalAggLabel())
		if !doc.Labels.Equal(want) {
			t.Errorf("regional metric labels = %v, want %v", doc.Labels, want)
		}
	}
}

func regSmall() maindb.Config {
	return maindb.Config{Seed: 11, Patients: 60, Hospitals: 2, Regions: 2}
}

func TestOwnMDTRecordsAccessible(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})
	m := firstMDTWithRecords(t, d)

	status, body := httpGet(t, d, "/records/"+m, m)
	if status != http.StatusOK {
		t.Fatalf("own records status = %d", status)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(body), &records); err != nil || len(records) == 0 {
		t.Fatalf("records = %v (%v)", body, err)
	}
	for _, r := range records {
		if r["mdt"] != m {
			t.Errorf("foreign record in own listing: %v", r["mdt"])
		}
	}
}

func TestForeignMDTRecordsDenied(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})
	mdts := mdtsWithRecords(t, d)
	if len(mdts) < 2 {
		t.Skip("need two MDTs with records")
	}
	// App-level check denies (403 from guard), and even without it the
	// label check would; policy P1 holds.
	status, body := httpGet(t, d, "/records/"+mdts[1], mdts[0])
	if status != http.StatusForbidden {
		t.Fatalf("foreign records status = %d", status)
	}
	if strings.Contains(body, "patient_id") {
		t.Fatal("foreign records leaked")
	}
}

func TestFrontPageRenders(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})
	m := firstMDTWithRecords(t, d)

	status, body := httpGet(t, d, "/", m)
	if status != http.StatusOK {
		t.Fatalf("front page status = %d", status)
	}
	for _, want := range []string{"MDT " + m, "<table>", "Completeness"} {
		if !strings.Contains(body, want) {
			t.Errorf("front page missing %q", want)
		}
	}
}

func TestMetricsVisibilityFollowsP1(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})

	// Pick two MDTs in the same region and one in the other region.
	byRegion := make(map[string][]string)
	for _, m := range d.Registry.MDTs() {
		if _, err := d.DMZDB.Get("metric/mdt/" + m.ID); err == nil {
			byRegion[m.Region] = append(byRegion[m.Region], m.ID)
		}
	}
	var sameRegion []string
	var otherRegion string
	for _, ids := range byRegion {
		if len(ids) >= 2 && sameRegion == nil {
			sameRegion = ids[:2]
		}
	}
	for region, ids := range byRegion {
		if len(sameRegion) > 0 && len(ids) > 0 {
			if m, _ := d.Registry.MDTByID(sameRegion[0]); m.Region != region {
				otherRegion = ids[0]
			}
		}
	}
	if len(sameRegion) < 2 || otherRegion == "" {
		t.Skip("region layout insufficient for this test")
	}

	// Same-region MDT metrics are visible (P1: MDT-level aggregates seen
	// by all MDTs of the region).
	status, _ := httpGet(t, d, "/metrics/"+sameRegion[1], sameRegion[0])
	if status != http.StatusOK {
		t.Errorf("same-region metrics status = %d", status)
	}
	// Cross-region MDT metrics are blocked by the label check.
	status, body := httpGet(t, d, "/metrics/"+otherRegion, sameRegion[0])
	if status != http.StatusForbidden {
		t.Errorf("cross-region metrics status = %d", status)
	}
	if strings.Contains(body, "completeness") {
		t.Error("cross-region metrics leaked")
	}
	// Regional aggregates are visible to everyone (any region).
	for _, region := range d.Registry.Regions() {
		status, _ := httpGet(t, d, "/regional/"+region, sameRegion[0])
		if status != http.StatusOK {
			t.Errorf("regional aggregate %s status = %d", region, status)
		}
	}
}

func TestCompareRegionVisibility(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})
	m := firstMDTWithRecords(t, d)
	user, _ := d.Registry.MDTByID(m)

	// Own region comparison: allowed.
	status, body := httpGet(t, d, "/compare/"+user.Region, m)
	if status != http.StatusOK {
		t.Fatalf("own region compare = %d", status)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(body), &rows); err != nil || len(rows) == 0 {
		t.Fatalf("compare rows = %v (%v)", body, err)
	}
	// Other region comparison: blocked (labels of the other region's
	// aggregates are not in the user's clearance).
	var other string
	for _, r := range d.Registry.Regions() {
		if r != user.Region {
			other = r
		}
	}
	status, _ = httpGet(t, d, "/compare/"+other, m)
	if status != http.StatusForbidden {
		t.Errorf("other region compare = %d", status)
	}
}

func TestAdminSeesEverything(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})
	for _, m := range mdtsWithRecords(t, d) {
		status, _ := httpGet(t, d, "/records/"+m, "admin")
		if status != http.StatusOK {
			t.Errorf("admin records %s status = %d", m, status)
		}
	}
}

func TestRecordDetail(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})
	m := firstMDTWithRecords(t, d)
	docs, err := d.DMZDB.Query(ViewRecordsByMDT, m)
	if err != nil || len(docs) == 0 {
		t.Fatalf("query: %v", err)
	}
	var rec CaseRecord
	if err := json.Unmarshal(docs[0].Data, &rec); err != nil {
		t.Fatal(err)
	}

	status, body := httpGet(t, d, "/records/"+m+"/"+rec.PatientID, m)
	if status != http.StatusOK {
		t.Fatalf("detail status = %d", status)
	}
	var got CaseRecord
	if err := json.Unmarshal([]byte(body), &got); err != nil || got.PatientID != rec.PatientID {
		t.Errorf("detail = %v (%v)", body, err)
	}
	status, _ = httpGet(t, d, "/records/"+m+"/nope", m)
	if status != http.StatusNotFound {
		t.Errorf("missing detail status = %d", status)
	}
}

func TestDMZReadOnly(t *testing.T) {
	d := deployTest(t, DeployConfig{Registry: regSmall()})
	// S1: the frontend-visible replica rejects writes.
	if _, err := d.DMZDB.Put("intruder", map[string]string{}, nil, ""); err == nil {
		t.Fatal("DMZ replica accepted a write")
	}
	// The Intranet instance and the replica converge.
	if d.AppDB.Len() != d.DMZDB.Len() {
		t.Errorf("replica diverged: %d vs %d docs", d.AppDB.Len(), d.DMZDB.Len())
	}
}

func TestNetworkBrokerDeployment(t *testing.T) {
	// The same pipeline over the STOMP network broker (the paper's
	// deployment shape).
	d := deployTest(t, DeployConfig{Registry: regTiny(), NetworkBroker: true})
	m := firstMDTWithRecords(t, d)
	status, _ := httpGet(t, d, "/records/"+m, m)
	if status != http.StatusOK {
		t.Errorf("network deployment records status = %d", status)
	}
}

func TestNetworkBrokerWindowedDeployment(t *testing.T) {
	// The networked pipeline again, with every unit publishing through
	// the windowed async fast path: pipelined receipt-confirmed SENDs on
	// dedicated publish connections instead of fire-and-forget.
	d := deployTest(t, DeployConfig{Registry: regTiny(), NetworkBroker: true, PublishWindow: 16})
	m := firstMDTWithRecords(t, d)
	status, _ := httpGet(t, d, "/records/"+m, m)
	if status != http.StatusOK {
		t.Errorf("windowed network deployment records status = %d", status)
	}
}

func regTiny() maindb.Config {
	return maindb.Config{Seed: 5, Patients: 20, Hospitals: 2, Regions: 2}
}

func firstMDTWithRecords(t *testing.T, d *Deployment) string {
	t.Helper()
	mdts := mdtsWithRecords(t, d)
	if len(mdts) == 0 {
		t.Fatal("no MDT has records")
	}
	return mdts[0]
}

func mdtsWithRecords(t *testing.T, d *Deployment) []string {
	t.Helper()
	var out []string
	for _, m := range d.Registry.MDTs() {
		docs, err := d.DMZDB.Query(ViewRecordsByMDT, m.ID)
		if err != nil {
			t.Fatalf("query %s: %v", m.ID, err)
		}
		if len(docs) > 0 {
			out = append(out, m.ID)
		}
	}
	return out
}
