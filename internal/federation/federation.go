// Package federation implements the paper's future-work deployment model
// (§7): "Scaling up will involve creating separate, independent regional
// instances of SafeWeb, which can interact with each other in a secure
// fashion."
//
// A Bridge connects two SafeWeb instances. It subscribes to selected
// topics on the source instance's broker and republishes matching events
// into the destination instance, translating labels at the boundary
// through an explicit mapping.
//
// Security composes from the existing mechanisms, with no new trusted
// machinery beyond the mapping itself:
//
//   - The *source* policy decides what may leave: the bridge connects as
//     an ordinary principal, so the source broker's clearance filtering
//     withholds any event whose labels the bridge is not cleared for.
//     Patient-level data simply never reaches an under-privileged bridge.
//   - The *mapping* decides how foreign labels translate into the
//     destination's label namespace; events whose labels the mapping
//     does not cover are dropped, fail-closed.
//   - The *destination* policy decides what the bridge may assert:
//     integrity labels on forwarded events need the bridge's endorsement
//     privilege at the destination broker, and destination units still
//     need clearance over the mapped labels to see anything.
package federation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"safeweb/internal/broker"
	"safeweb/internal/event"
	"safeweb/internal/label"
)

// LabelMap translates one source label into the destination namespace.
// Returning ok=false marks the label untranslatable, which drops the
// whole event (fail-closed: an untranslatable label might protect
// anything).
type LabelMap func(l label.Label) (mapped label.Label, ok bool)

// PrefixMap builds the common mapping: labels whose name starts with
// srcPrefix are rewritten under dstPrefix, all other labels are
// untranslatable. Kinds are preserved.
func PrefixMap(srcPrefix, dstPrefix string) LabelMap {
	return func(l label.Label) (label.Label, bool) {
		name := l.Name()
		if len(name) < len(srcPrefix) || name[:len(srcPrefix)] != srcPrefix {
			return label.Label{}, false
		}
		return label.New(l.Kind(), dstPrefix+name[len(srcPrefix):]), true
	}
}

// Rule forwards one topic.
type Rule struct {
	// Topic is the source topic pattern (broker.TopicMatches syntax).
	Topic string
	// Selector optionally filters content (SQL-92).
	Selector string
	// RemoteTopic renames the topic at the destination; empty keeps it.
	RemoteTopic string
	// Map translates labels; nil forwards only unlabelled events.
	Map LabelMap
}

// Stats counts bridge activity.
type Stats struct {
	// Forwarded counts events republished into the destination.
	Forwarded uint64
	// DroppedUnmappable counts events dropped because a label had no
	// translation.
	DroppedUnmappable uint64
	// Errors counts destination publish failures.
	Errors uint64
}

// Bridge is a running federation link. Create with New, release with
// Close.
type Bridge struct {
	src   broker.Bus
	dst   broker.Bus
	rules []Rule

	mu     sync.Mutex
	subIDs []string
	closed bool

	// closing gates forward against Close: each forward holds the read
	// side for its whole span, Close sets the flag and then takes the
	// write side as a barrier, so once Close returns no in-flight forward
	// can still publish into the destination or move Stats.
	closing   sync.RWMutex
	stopped   atomic.Bool
	forwarded atomic.Uint64
	dropped   atomic.Uint64
	errs      atomic.Uint64
}

// New connects src to dst under the given rules and starts forwarding.
// Both buses are typically broker endpoints or networked broker clients
// whose principals carry the bridge's privileges in the respective
// policies.
func New(src, dst broker.Bus, rules []Rule) (*Bridge, error) {
	if len(rules) == 0 {
		return nil, errors.New("federation: no rules")
	}
	b := &Bridge{src: src, dst: dst, rules: rules}
	for i := range rules {
		rule := rules[i] // capture per iteration
		id, err := src.Subscribe(rule.Topic, rule.Selector, func(ev *event.Event) {
			b.forward(rule, ev)
		})
		if err != nil {
			_ = b.Close()
			return nil, fmt.Errorf("federation: subscribe %s: %w", rule.Topic, err)
		}
		b.mu.Lock()
		b.subIDs = append(b.subIDs, id)
		b.mu.Unlock()
	}
	return b, nil
}

// forward maps one event across the boundary. It is gated on the bridge's
// closed flag: a delivery racing Close (the source broker may still be
// fanning out to the bridge's subscription while Close runs) is dropped
// on the floor instead of publishing into a destination whose owner
// believes the bridge is down, and Close waits for in-flight forwards, so
// Stats are stable once Close returns.
func (b *Bridge) forward(rule Rule, ev *event.Event) {
	b.closing.RLock()
	defer b.closing.RUnlock()
	if b.stopped.Load() {
		return
	}
	mapped, ok := b.mapLabels(rule, ev.Labels)
	if !ok {
		b.dropped.Add(1)
		return
	}
	out := ev.Clone()
	out.Labels = mapped
	if rule.RemoteTopic != "" {
		out.Topic = rule.RemoteTopic
	}
	if err := b.dst.Publish(out); err != nil {
		b.errs.Add(1)
	} else {
		b.forwarded.Add(1)
	}
}

// mapLabels translates a full label set, failing closed on any
// untranslatable label.
func (b *Bridge) mapLabels(rule Rule, labels label.Set) (label.Set, bool) {
	if labels.IsEmpty() {
		return nil, true
	}
	if rule.Map == nil {
		return nil, false // labelled event, no mapping: drop
	}
	out := make(label.Set, labels.Len())
	for l := range labels {
		mapped, ok := rule.Map(l)
		if !ok {
			return nil, false
		}
		out[mapped] = struct{}{}
	}
	return out, true
}

// Stats returns a snapshot of bridge counters.
func (b *Bridge) Stats() Stats {
	return Stats{
		Forwarded:         b.forwarded.Load(),
		DroppedUnmappable: b.dropped.Load(),
		Errors:            b.errs.Load(),
	}
}

// Close cancels the bridge's subscriptions and waits for in-flight
// forward callbacks to finish: once it returns, nothing is published into
// the destination on the bridge's behalf and Stats no longer move. The
// underlying buses belong to the caller and stay open.
func (b *Bridge) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true

	// Stop forwards first (set the flag, then pass through the write
	// lock as a barrier for forwards already past their flag check), then
	// tear the subscriptions down; a delivery that was already in flight
	// on the source broker drops at the gate.
	b.stopped.Store(true)
	b.closing.Lock()
	b.closing.Unlock() //nolint:staticcheck // empty critical section is the barrier

	var firstErr error
	for _, id := range b.subIDs {
		if err := b.src.Unsubscribe(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
