package broker

import "safeweb/internal/event"

// AbruptClose tears down every shard connection without a DISCONNECT
// handshake — the chaos test's stand-in for a consumer crashing
// mid-stream.
func (c *Client) AbruptClose() {
	for _, sh := range c.shards {
		_ = sh.conn.Close()
	}
}

// KillSessionAndDeliver severs the transport of the given server session
// and then force-delivers ev to its captured state, so tests can exercise
// the dead-session drop accounting deterministically — without racing the
// read loop's disconnect teardown for the session map entry. Returns false
// if the session is unknown.
func (s *Server) KillSessionAndDeliver(sessionID uint64, clientSubID string, ev *event.Event) bool {
	s.mu.Lock()
	ss := s.sessions[sessionID]
	s.mu.Unlock()
	if ss == nil {
		return false
	}
	_ = ss.sess.Kill()
	s.deliver(ss, nil, clientSubID, ev)
	return true
}

// subsSnapshot exposes the current subscription list for tests.
func (b *Broker) subsSnapshot() []*Subscription {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]*Subscription, 0, len(b.subs))
	for _, sub := range b.subs {
		out = append(out, sub)
	}
	return out
}
