package stomp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
)

// maxRetainedDecodeBuf bounds the header scratch capacity a Decoder keeps
// between frames; one frame with huge headers must not pin its buffer for
// the connection's lifetime.
const maxRetainedDecodeBuf = 64 * 1024

// Decoder decodes STOMP frames from a stream. It is the allocation-aware
// counterpart of ReadFrame: the line buffer, the header scratch buffer and
// the span slice are reused across frames, commands and common header keys
// are interned, and DecodeView exposes the headers map-free. A Decoder is
// not safe for concurrent use; each connection read loop owns one.
type Decoder struct {
	r     *bufio.Reader
	line  []byte
	hbuf  []byte
	spans []headerSpan
	view  FrameView
}

// NewDecoder wraps r in a Decoder; an existing *bufio.Reader is used
// directly rather than double-buffered.
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 32*1024)
	}
	return &Decoder{r: br}
}

// Decode reads one frame, materialising the header map. It skips
// heart-beat newlines between frames and returns io.EOF at a clean end of
// stream. Read loops on the hot path use DecodeView instead and skip the
// map.
func (d *Decoder) Decode() (*Frame, error) {
	v, err := d.DecodeView()
	if err != nil {
		return nil, err
	}
	return v.Materialize(), nil
}

// DecodeView reads one frame into the decoder's reused FrameView: no
// header map, no per-header key/value string allocations — the headers are
// spans over a scratch buffer (see HeaderView for the ownership rules).
// The returned view and its headers are invalidated by the next
// Decode/DecodeView call; the body is freshly allocated and ownership
// transfers to the caller. Heart-beat newlines between frames are skipped
// and io.EOF reports a clean end of stream.
func (d *Decoder) DecodeView() (*FrameView, error) {
	// Invalidate the previous view and shed oversized scratch BEFORE
	// blocking on the socket: an idle connection must pin at most
	// maxRetainedDecodeBuf of header scratch, not the worst-case header
	// block of whatever frame happened to arrive last.
	d.view = FrameView{}
	if cap(d.hbuf) > maxRetainedDecodeBuf {
		d.hbuf = nil
	}

	// Skip inter-frame EOLs (heart-beats).
	var cmd string
	for {
		line, err := d.readLine()
		if err != nil {
			return nil, err
		}
		if len(line) > 0 {
			var ok bool
			cmd, ok = internCommand(line)
			if !ok {
				return nil, protoErrorf("unknown command %q", line)
			}
			break
		}
	}

	// Scan the header block into the reused span slice and scratch buffer.
	// content-length frames the body and never enters the view, matching
	// the header map the legacy path exposed.
	d.hbuf = d.hbuf[:0]
	d.spans = d.spans[:0]
	bodyLen := -1
	for i := 0; ; i++ {
		if i > maxHeaders {
			return nil, protoErrorf("too many headers")
		}
		line, err := d.readLine()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if len(line) == 0 {
			break
		}
		sep := bytes.IndexByte(line, ':')
		if sep < 0 {
			return nil, protoErrorf("malformed header line %q", line)
		}
		var sp headerSpan
		key, interned := internHeaderKey(line[:sep])
		sp.key = key
		sp.k0 = len(d.hbuf)
		if interned {
			// Interned names contain no escapable characters, so the raw
			// wire bytes are already the unescaped key.
			d.hbuf = append(d.hbuf, line[:sep]...)
		} else {
			d.hbuf, err = appendUnescapedHeader(d.hbuf, line[:sep])
			if err != nil {
				return nil, err
			}
		}
		sp.k1 = len(d.hbuf)
		sp.v0 = len(d.hbuf)
		d.hbuf, err = appendUnescapedHeader(d.hbuf, line[sep+1:])
		if err != nil {
			return nil, err
		}
		sp.v1 = len(d.hbuf)
		if interned && key == HdrContentLength {
			if bodyLen < 0 { // per spec, the first occurrence wins
				bodyLen, err = parseContentLength(d.hbuf[sp.v0:sp.v1])
				if err != nil {
					return nil, err
				}
			}
			d.hbuf = d.hbuf[:sp.k0] // framing only; drop it from the view
			continue
		}
		d.spans = append(d.spans, sp)
	}

	var body []byte
	if bodyLen >= 0 {
		if bodyLen > MaxBodyLen {
			return nil, protoErrorf("body of %d bytes exceeds limit", bodyLen)
		}
		body = make([]byte, bodyLen)
		if _, err := io.ReadFull(d.r, body); err != nil {
			return nil, fmt.Errorf("stomp: short body: %w", err)
		}
		terminator, err := d.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("stomp: missing frame terminator: %w", err)
		}
		if terminator != 0 {
			return nil, protoErrorf("frame not NUL-terminated after body")
		}
	} else {
		// No content-length: body runs to the NUL terminator.
		var err error
		body, err = d.readBodyToNUL()
		if err != nil {
			return nil, err
		}
	}
	if len(body) == 0 {
		body = nil
	}

	d.view = FrameView{
		Command: cmd,
		Headers: HeaderView{buf: d.hbuf, spans: d.spans},
		Body:    body,
	}
	return &d.view, nil
}

// parseContentLength parses a content-length value. It accepts what
// strconv.Atoi accepts (an optional sign and decimal digits, so "-0" is a
// valid zero) and rejects negatives and anything that cannot fit a sane
// body length.
func parseContentLength(b []byte) (int, error) {
	i, neg := 0, false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i++
	}
	if i >= len(b) {
		return 0, protoErrorf("bad content-length %q", b)
	}
	var n int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, protoErrorf("bad content-length %q", b)
		}
		n = n*10 + int64(c-'0')
		if n > math.MaxInt32 { // out of any sane range; avoids overflow
			return 0, protoErrorf("bad content-length %q", b)
		}
	}
	if neg && n != 0 {
		return 0, protoErrorf("bad content-length %q", b)
	}
	return int(n), nil
}

// readBodyToNUL reads a terminator-delimited body, enforcing MaxBodyLen —
// a peer streaming garbage without ever sending the NUL must not grow the
// buffer unboundedly.
func (d *Decoder) readBodyToNUL() ([]byte, error) {
	var body []byte
	for {
		chunk, err := d.r.ReadSlice(0)
		body = append(body, chunk...)
		if err == nil {
			body = body[:len(body)-1]
			if len(body) > MaxBodyLen {
				return nil, protoErrorf("body of %d bytes exceeds limit", len(body))
			}
			return body, nil
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			if len(body) > MaxBodyLen {
				return nil, protoErrorf("body of %d+ bytes exceeds limit", len(body))
			}
			continue
		}
		return nil, fmt.Errorf("stomp: unterminated frame: %w", err)
	}
}

// readLine reads a \n-terminated line into the reused line buffer,
// trimming an optional \r, with a length bound. The returned slice is
// valid until the next readLine call.
func (d *Decoder) readLine() ([]byte, error) {
	d.line = d.line[:0]
	for {
		chunk, err := d.r.ReadSlice('\n')
		d.line = append(d.line, chunk...)
		if err == nil {
			break
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			if len(d.line) > MaxHeaderLen {
				return nil, protoErrorf("header line exceeds %d bytes", MaxHeaderLen)
			}
			continue
		}
		if errors.Is(err, io.EOF) {
			if len(d.line) == 0 {
				return nil, io.EOF
			}
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if len(d.line) > MaxHeaderLen {
		return nil, protoErrorf("header line exceeds %d bytes", MaxHeaderLen)
	}
	line := d.line[:len(d.line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// internCommand returns the canonical string for a frame command, avoiding
// a per-frame allocation in the read loop; ok is false for unknown
// commands.
func internCommand(b []byte) (string, bool) {
	switch string(b) { // compiler optimises away the conversion
	case CmdConnect:
		return CmdConnect, true
	case CmdConnected:
		return CmdConnected, true
	case CmdSend:
		return CmdSend, true
	case CmdSubscribe:
		return CmdSubscribe, true
	case CmdUnsubscribe:
		return CmdUnsubscribe, true
	case CmdMessage:
		return CmdMessage, true
	case CmdReceipt:
		return CmdReceipt, true
	case CmdError:
		return CmdError, true
	case CmdDisconnect:
		return CmdDisconnect, true
	case CmdAck:
		return CmdAck, true
	case CmdNack:
		return CmdNack, true
	case CmdBegin:
		return CmdBegin, true
	case CmdCommit:
		return CmdCommit, true
	case CmdAbort:
		return CmdAbort, true
	}
	return "", false
}

// internHeaderKey returns the canonical string for header keys that
// appear on essentially every frame, avoiding a per-header allocation in
// the read loop. The interned names contain no escapable characters, so
// matching the raw wire bytes is exact. The two x-safeweb names are
// SafeWeb's label extension headers (package event); the codec stays
// label-agnostic but may still recognise their spelling.
func internHeaderKey(b []byte) (string, bool) {
	switch string(b) { // compiler optimises away the conversion
	case HdrDestination:
		return HdrDestination, true
	case HdrSubscription:
		return HdrSubscription, true
	case HdrMessageID:
		return HdrMessageID, true
	case HdrContentLength:
		return HdrContentLength, true
	case HdrReceipt:
		return HdrReceipt, true
	case HdrReceiptID:
		return HdrReceiptID, true
	case HdrID:
		return HdrID, true
	case HdrSelector:
		return HdrSelector, true
	case HdrLogin:
		return HdrLogin, true
	case HdrPasscode:
		return HdrPasscode, true
	case HdrSession:
		return HdrSession, true
	case HdrMessage:
		return HdrMessage, true
	case HdrVersion:
		return HdrVersion, true
	case "x-safeweb-labels":
		return "x-safeweb-labels", true
	case "x-safeweb-clearance":
		return "x-safeweb-clearance", true
	}
	return "", false
}

// appendUnescapedHeader appends the unescaped form of b (reversing
// appendEscapedHeader) to dst, rejecting undefined sequences.
func appendUnescapedHeader(dst, b []byte) ([]byte, error) {
	if bytes.IndexByte(b, '\\') < 0 {
		return append(dst, b...), nil
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c != '\\' {
			dst = append(dst, c)
			continue
		}
		i++
		if i >= len(b) {
			return dst, protoErrorf("dangling escape in header %q", b)
		}
		switch b[i] {
		case '\\':
			dst = append(dst, '\\')
		case 'n':
			dst = append(dst, '\n')
		case 'r':
			dst = append(dst, '\r')
		case 'c':
			dst = append(dst, ':')
		default:
			return dst, protoErrorf("undefined escape \\%c in header %q", b[i], b)
		}
	}
	return dst, nil
}

// unescapeHeaderBytes reverses appendEscapedHeader, returning an owned
// string; the input may be a reused buffer.
func unescapeHeaderBytes(b []byte) (string, error) {
	out, err := appendUnescapedHeader(nil, b)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// ReadFrame decodes one frame from r. It skips heart-beat newlines between
// frames and returns io.EOF at a clean end of stream. It is a convenience
// wrapper for callers without a persistent Decoder; connection read loops
// hold one to reuse its scratch buffers across frames.
func ReadFrame(r *bufio.Reader) (*Frame, error) {
	d := Decoder{r: r}
	return d.Decode()
}
