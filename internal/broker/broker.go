// Package broker implements SafeWeb's IFC-aware event broker (paper §4.2).
//
// Units communicate by publishing events and subscribing to topics with
// optional SQL-92 content selectors. The broker matches subscriptions
// against published events and additionally filters by security label:
// "for an event to be delivered to a subscriber, the set of its
// confidentiality labels must be a subset of those labels for which the
// subscriber possesses clearance privileges."
//
// The core Broker is transport-independent; package-level Server and
// Client types expose it over the STOMP wire protocol with the paper's
// label-header extensions.
package broker

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/selector"
)

// Handler consumes events delivered to a subscription.
type Handler func(ev *event.Event)

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("broker: closed")

// Stats counts broker activity; useful for tests, monitoring and the
// evaluation harness.
type Stats struct {
	// Published counts accepted publishes.
	Published uint64
	// Delivered counts events handed to subscription handlers.
	Delivered uint64
	// FilteredByLabel counts deliveries suppressed because the event's
	// confidentiality labels were not covered by subscriber clearance.
	FilteredByLabel uint64
	// FilteredBySelector counts deliveries suppressed by content
	// selectors.
	FilteredBySelector uint64
	// RejectedPublish counts publishes rejected by validation or
	// integrity-endorsement checks.
	RejectedPublish uint64
}

// Subscription is a registered subscription.
type Subscription struct {
	id        uint64
	principal string
	topic     string
	sel       *selector.Selector
	clearance *label.Privileges
	handler   Handler
}

// ID returns the broker-unique subscription identifier.
func (s *Subscription) ID() string { return "sub-" + strconv.FormatUint(s.id, 10) }

// Topic returns the subscribed topic pattern.
func (s *Subscription) Topic() string { return s.topic }

// Broker is the in-process IFC-aware event broker. It is safe for
// concurrent use. Delivery is synchronous with respect to Publish: the
// engine layers its own per-callback goroutines on top, mirroring the
// paper's architecture where the STOMP client spawns a thread per
// callback.
type Broker struct {
	policy *label.Policy

	mu     sync.RWMutex
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool

	published          atomic.Uint64
	delivered          atomic.Uint64
	filteredByLabel    atomic.Uint64
	filteredBySelector atomic.Uint64
	rejectedPublish    atomic.Uint64
}

// New creates a broker enforcing the given policy. A nil policy denies all
// privileged operations but still routes unlabelled events.
func New(policy *label.Policy) *Broker {
	if policy == nil {
		policy = label.NewPolicy()
	}
	return &Broker{
		policy: policy,
		subs:   make(map[uint64]*Subscription),
	}
}

// Policy returns the broker's policy, e.g. for dynamic delegation.
func (b *Broker) Policy() *label.Policy { return b.policy }

// TopicMatches reports whether a subscription topic pattern covers a
// published topic. Patterns are exact topics, a trailing "/*" wildcard
// covering any deeper path, or "*" covering everything.
func TopicMatches(pattern, topic string) bool {
	switch {
	case pattern == "*":
		return true
	case strings.HasSuffix(pattern, "/*"):
		prefix := strings.TrimSuffix(pattern, "*")
		return strings.HasPrefix(topic, prefix)
	default:
		return pattern == topic
	}
}

// Subscribe registers a subscription for the named principal. The
// principal's clearance is read from the broker policy at delivery time, so
// policy updates apply to existing subscriptions. The selector source may
// be empty for no content filtering.
func (b *Broker) Subscribe(principal, topic, sel string, handler Handler) (*Subscription, error) {
	if handler == nil {
		return nil, errors.New("broker: nil handler")
	}
	if topic == "" {
		return nil, errors.New("broker: empty topic")
	}
	compiled, err := selector.Parse(sel)
	if err != nil {
		return nil, fmt.Errorf("broker: bad selector: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextID++
	sub := &Subscription{
		id:        b.nextID,
		principal: principal,
		topic:     topic,
		sel:       compiled,
		handler:   handler,
	}
	b.subs[sub.id] = sub
	return sub, nil
}

// Unsubscribe removes a subscription. Removing an already-removed
// subscription is a no-op.
func (b *Broker) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, sub.id)
}

// Publish validates and dispatches an event published by the named
// principal. Confidentiality labels may be attached freely ("it is always
// possible to add extra confidentiality labels to events", §4.1), but
// attaching an integrity label requires the endorsement privilege.
//
// Each matching subscriber receives an independent clone of the event, so
// a buggy unit mutating its input cannot affect its peers.
func (b *Broker) Publish(principal string, ev *event.Event) error {
	if err := ev.Validate(); err != nil {
		b.rejectedPublish.Add(1)
		return err
	}
	privs := b.policy.PrivilegesOf(principal)
	for l := range ev.Labels.Integrity() {
		if !privs.Has(label.Endorse, l) {
			b.rejectedPublish.Add(1)
			return &label.FlowError{
				Op: "endorse", Label: l, Principal: principal,
				Reason: "publishing an integrity label requires the endorsement privilege",
			}
		}
	}

	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return ErrClosed
	}
	matched := make([]*Subscription, 0, 4)
	for _, sub := range b.subs {
		if TopicMatches(sub.topic, ev.Topic) {
			matched = append(matched, sub)
		}
	}
	b.mu.RUnlock()

	b.published.Add(1)
	conf := ev.Labels.Confidentiality()
	for _, sub := range matched {
		// Label filtering: every confidentiality label must be covered
		// by the subscriber's clearance.
		subPrivs := b.policy.PrivilegesOf(sub.principal)
		if !subPrivs.HasAll(label.Clearance, conf) {
			b.filteredByLabel.Add(1)
			continue
		}
		if !sub.sel.MatchesAttrs(ev.Attrs) {
			b.filteredBySelector.Add(1)
			continue
		}
		b.delivered.Add(1)
		sub.handler(ev.Clone())
	}
	return nil
}

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	return Stats{
		Published:          b.published.Load(),
		Delivered:          b.delivered.Load(),
		FilteredByLabel:    b.filteredByLabel.Load(),
		FilteredBySelector: b.filteredBySelector.Load(),
		RejectedPublish:    b.rejectedPublish.Load(),
	}
}

// Close marks the broker closed and removes all subscriptions.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.subs = make(map[uint64]*Subscription)
}

// Endpoint returns a Bus view of the broker bound to one principal. The
// engine hands each unit an endpoint for its own principal so that units
// cannot spoof each other's identity.
func (b *Broker) Endpoint(principal string) *Endpoint {
	return &Endpoint{broker: b, principal: principal}
}

// Bus is the event communication interface units see: publish and
// subscribe bound to a fixed principal. Both the in-process Endpoint and
// the networked Client implement it, so an engine can run against either a
// local or a remote broker.
type Bus interface {
	// Publish sends an event.
	Publish(ev *event.Event) error
	// Subscribe registers a handler; it returns an opaque subscription id.
	Subscribe(topic, sel string, handler Handler) (string, error)
	// Unsubscribe cancels a subscription by id.
	Unsubscribe(id string) error
	// Close releases the bus.
	Close() error
}

// Endpoint adapts a Broker to the Bus interface for one principal.
type Endpoint struct {
	broker    *Broker
	principal string

	mu   sync.Mutex
	subs map[string]*Subscription
}

var _ Bus = (*Endpoint)(nil)

// Principal returns the principal this endpoint acts as.
func (e *Endpoint) Principal() string { return e.principal }

// Publish implements Bus.
func (e *Endpoint) Publish(ev *event.Event) error {
	return e.broker.Publish(e.principal, ev)
}

// Subscribe implements Bus.
func (e *Endpoint) Subscribe(topic, sel string, handler Handler) (string, error) {
	sub, err := e.broker.Subscribe(e.principal, topic, sel, handler)
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	if e.subs == nil {
		e.subs = make(map[string]*Subscription)
	}
	e.subs[sub.ID()] = sub
	e.mu.Unlock()
	return sub.ID(), nil
}

// Unsubscribe implements Bus.
func (e *Endpoint) Unsubscribe(id string) error {
	e.mu.Lock()
	sub := e.subs[id]
	delete(e.subs, id)
	e.mu.Unlock()
	if sub == nil {
		return fmt.Errorf("broker: unknown subscription %q", id)
	}
	e.broker.Unsubscribe(sub)
	return nil
}

// Close implements Bus: it cancels this endpoint's subscriptions but
// leaves the broker running.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	subs := e.subs
	e.subs = nil
	e.mu.Unlock()
	for _, sub := range subs {
		e.broker.Unsubscribe(sub)
	}
	return nil
}
