package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
		ok     bool
	}{
		{"//lint:ignore hotpathlock slow path", []string{"hotpathlock"}, "slow path", true},
		{"//lint:ignore noretain,frozenmutate shared fixture", []string{"noretain", "frozenmutate"}, "shared fixture", true},
		{"//lint:ignore hotpathlock", []string{"hotpathlock"}, "", true},
		{"//lint:ignore", nil, "", true},
		{"//lint:ignoreXYZ not a directive", nil, "", false},
		{"// ordinary comment", nil, "", false},
	}
	for _, c := range cases {
		names, reason, ok := parseIgnore(c.text)
		if ok != c.ok || reason != c.reason || strings.Join(names, ",") != strings.Join(c.names, ",") {
			t.Errorf("parseIgnore(%q) = %v, %q, %v; want %v, %q, %v",
				c.text, names, reason, ok, c.names, c.reason, c.ok)
		}
	}
}

// suppressorFor parses src and builds a suppressor for the named
// analyzer, collecting any diagnostics the construction itself reports.
func suppressorFor(t *testing.T, src, analyzer string) (*suppressor, []analysis.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Fset:   fset,
		Files:  []*ast.File{f},
		Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	return newSuppressor(pass, analyzer), diags
}

func TestMalformedIgnoreReported(t *testing.T) {
	src := "package p\n\nfunc f() {\n\t//lint:ignore noretain\n\t_ = 0\n}\n"
	_, diags := suppressorFor(t, src, "noretain")
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "missing justification") {
		t.Fatalf("want one missing-justification diagnostic, got %v", diags)
	}
}

func TestIgnoreOtherAnalyzerNotReportedOrSuppressed(t *testing.T) {
	// A directive naming only another analyzer neither suppresses this
	// one nor triggers the malformed check, even without a reason.
	src := "package p\n\nfunc f() {\n\t//lint:ignore hotpathlock\n\t_ = 0\n}\n"
	s, diags := suppressorFor(t, src, "noretain")
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if len(s.lines) != 0 {
		t.Fatalf("suppressor recorded lines for a foreign directive: %v", s.lines)
	}
}

func TestSuppressedCoversCommentAndNextLine(t *testing.T) {
	src := "package p\n\nfunc f() {\n\t//lint:ignore noretain fixture\n\t_ = 0\n\t_ = 1\n}\n"
	s, diags := suppressorFor(t, src, "noretain")
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	file := s.pass.Fset.File(s.pass.Files[0].Pos())
	// Line 4 holds the comment, line 5 the statement below it.
	if !s.suppressed(file.LineStart(4)) || !s.suppressed(file.LineStart(5)) {
		t.Error("lines 4-5 should be suppressed")
	}
	if s.suppressed(file.LineStart(6)) {
		t.Error("line 6 should not be suppressed")
	}
}
