package label

import (
	"fmt"
	"strings"
)

// Privilege identifies an operation a principal may perform on labelled
// data (paper §4.1). Clearance and Declassify apply to confidentiality
// labels; Endorse and ClearLow apply to integrity labels.
type Privilege int

// The four privilege kinds of the SafeWeb label model.
const (
	// Clearance permits receiving data protected by a confidentiality
	// label.
	Clearance Privilege = iota + 1
	// Declassify permits removing a confidentiality label, making the
	// data public with respect to that label.
	Declassify
	// Endorse permits adding an integrity label to data, vouching for it.
	Endorse
	// ClearLow (clearance to low integrity) permits accepting data that
	// lacks an integrity label a component would otherwise require.
	ClearLow
)

// String returns the policy-file spelling of the privilege.
func (p Privilege) String() string {
	switch p {
	case Clearance:
		return "clearance"
	case Declassify:
		return "declassify"
	case Endorse:
		return "endorse"
	case ClearLow:
		return "clearlow"
	default:
		return fmt.Sprintf("Privilege(%d)", int(p))
	}
}

// ParsePrivilege parses a policy-file privilege name.
func ParsePrivilege(s string) (Privilege, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "clearance":
		return Clearance, nil
	case "declassify", "declassification":
		return Declassify, nil
	case "endorse", "endorsement":
		return Endorse, nil
	case "clearlow", "clearance-low", "clearance_to_low_integrity":
		return ClearLow, nil
	default:
		return 0, fmt.Errorf("label: unknown privilege %q", s)
	}
}

// Pattern matches labels. Policies grant privileges over either an exact
// label URI or a prefix pattern ending in "*", e.g.
// "label:conf:ecric.org.uk/patient/*" grants over every per-patient label.
type Pattern struct {
	kind   Kind
	prefix string // name prefix when wildcard, full name otherwise
	glob   bool
}

// ParsePattern parses a label URI or a label URI prefix ending in "*".
func ParsePattern(s string) (Pattern, error) {
	if name, ok := strings.CutSuffix(s, "*"); ok {
		// Validate by parsing with a placeholder suffix so "label:conf:x/*"
		// and the bare-authority "label:conf:*" both work.
		probe, err := Parse(name + "wildcard-probe")
		if err != nil {
			return Pattern{}, err
		}
		return Pattern{kind: probe.Kind(), prefix: strings.TrimSuffix(probe.Name(), "wildcard-probe"), glob: true}, nil
	}
	l, err := Parse(s)
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{kind: l.Kind(), prefix: l.Name()}, nil
}

// MustParsePattern is like ParsePattern but panics on error.
func MustParsePattern(s string) Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Exact returns a pattern matching exactly l.
func Exact(l Label) Pattern {
	return Pattern{kind: l.Kind(), prefix: l.Name()}
}

// Matches reports whether the pattern matches the label.
func (p Pattern) Matches(l Label) bool {
	if p.kind != l.Kind() {
		return false
	}
	if p.glob {
		return strings.HasPrefix(l.Name(), p.prefix)
	}
	return l.Name() == p.prefix
}

// String returns the policy-file spelling of the pattern.
func (p Pattern) String() string {
	s := _scheme + p.kind.String() + ":" + p.prefix
	if p.glob {
		s += "*"
	}
	return s
}

// MarshalText implements encoding.TextMarshaler.
func (p Pattern) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Pattern) UnmarshalText(text []byte) error {
	parsed, err := ParsePattern(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// Privileges is the set of privileges held by one principal (a processing
// unit in the backend or an authenticated user in the frontend). The zero
// value holds no privileges.
type Privileges struct {
	grants map[Privilege][]Pattern
}

// NewPrivileges returns an empty privilege set.
func NewPrivileges() *Privileges {
	return &Privileges{grants: make(map[Privilege][]Pattern)}
}

// Grant adds a privilege over every label matching the pattern. It returns
// the receiver to allow chained grants in policy construction.
func (pv *Privileges) Grant(p Privilege, pat Pattern) *Privileges {
	if pv.grants == nil {
		pv.grants = make(map[Privilege][]Pattern)
	}
	pv.grants[p] = append(pv.grants[p], pat)
	return pv
}

// GrantLabel adds a privilege over exactly the given label.
func (pv *Privileges) GrantLabel(p Privilege, l Label) *Privileges {
	return pv.Grant(p, Exact(l))
}

// Has reports whether the principal holds privilege p over label l.
func (pv *Privileges) Has(p Privilege, l Label) bool {
	if pv == nil {
		return false
	}
	for _, pat := range pv.grants[p] {
		if pat.Matches(l) {
			return true
		}
	}
	return false
}

// HasAll reports whether the principal holds privilege p over every label
// in the set.
func (pv *Privileges) HasAll(p Privilege, labels Set) bool {
	for l := range labels {
		if !pv.Has(p, l) {
			return false
		}
	}
	return true
}

// Clearance filters the given confidentiality labels down to those the
// principal has clearance for; it is used by the broker to narrow
// subscriptions.
func (pv *Privileges) Cleared(labels Set) Set {
	var out Set
	for l := range labels {
		if pv.Has(Clearance, l) {
			if out == nil {
				out = make(Set)
			}
			out[l] = struct{}{}
		}
	}
	return out
}

// Clone returns an independent copy of the privilege set.
func (pv *Privileges) Clone() *Privileges {
	out := NewPrivileges()
	if pv == nil {
		return out
	}
	for p, pats := range pv.grants {
		out.grants[p] = append([]Pattern(nil), pats...)
	}
	return out
}

// Merge adds every grant of other into pv.
func (pv *Privileges) Merge(other *Privileges) {
	if other == nil {
		return
	}
	for p, pats := range other.grants {
		for _, pat := range pats {
			pv.Grant(p, pat)
		}
	}
}

// Patterns returns the patterns granted for privilege p, in grant order.
// The returned slice must not be modified.
func (pv *Privileges) Patterns(p Privilege) []Pattern {
	if pv == nil {
		return nil
	}
	return pv.grants[p]
}

// revoke removes every grant equal to the pattern; it reports whether any
// grant was removed.
func (pv *Privileges) revoke(p Privilege, pat Pattern) bool {
	if pv == nil || pv.grants == nil {
		return false
	}
	old := pv.grants[p]
	kept := old[:0]
	removed := false
	for _, existing := range old {
		if existing == pat {
			removed = true
			continue
		}
		kept = append(kept, existing)
	}
	if removed {
		pv.grants[p] = kept
	}
	return removed
}

// CheckFlow verifies the fundamental IFC receive rule: every
// confidentiality label on the data must be covered by the principal's
// clearance, and (when requireIntegrity is non-empty) the data must carry
// every required integrity label unless the principal holds ClearLow for
// the missing one. It returns a *FlowError describing the first violation,
// or nil if the flow is permitted.
func (pv *Privileges) CheckFlow(data Set, requireIntegrity Set) error {
	for l := range data.Confidentiality() {
		if !pv.Has(Clearance, l) {
			return &FlowError{Op: "receive", Label: l, Reason: "no clearance privilege"}
		}
	}
	for l := range requireIntegrity {
		if data.Contains(l) {
			continue
		}
		if !pv.Has(ClearLow, l) {
			return &FlowError{Op: "receive", Label: l, Reason: "required integrity label missing"}
		}
	}
	return nil
}

// FlowError reports a violation of the data-flow policy: an attempt to move
// labelled data across a boundary without the necessary privilege.
type FlowError struct {
	// Op is the operation that was attempted: "receive", "declassify",
	// "endorse" or "release".
	Op string
	// Label is the label whose protection would have been violated.
	Label Label
	// Principal optionally names the principal that attempted the flow.
	Principal string
	// Reason is a human-readable explanation.
	Reason string
}

// Error implements the error interface.
func (e *FlowError) Error() string {
	var b strings.Builder
	b.WriteString("label: flow violation")
	if e.Principal != "" {
		b.WriteString(" by ")
		b.WriteString(e.Principal)
	}
	fmt.Fprintf(&b, ": %s %s: %s", e.Op, e.Label, e.Reason)
	return b.String()
}
