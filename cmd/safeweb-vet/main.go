// Command safeweb-vet runs the safeweb static-analysis suite: the
// frozenmutate, noretain, policygen and hotpathlock analyzers that
// mechanically enforce the broker's lifecycle and hot-path invariants
// (see internal/lint).
//
// It speaks the go vet -vettool protocol, so it can be driven by the go
// command:
//
//	go build -o "$(go env GOPATH)/bin/safeweb-vet" ./cmd/safeweb-vet
//	go vet -vettool="$(which safeweb-vet)" ./...
//
// Invoked standalone with package patterns it fronts the same protocol
// itself by re-executing `go vet -vettool=<self>`:
//
//	safeweb-vet ./...
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"safeweb/internal/lint"
)

func main() {
	// The go command's vet protocol invokes the tool with -V=full (version
	// fingerprint), -flags (flag discovery), or a package's *.cfg file.
	// Hand those straight to unitchecker, which never returns.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(lint.Analyzers()...)
		}
	}

	// Standalone front-end: let the go command do the loading by
	// re-executing it against this binary.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "safeweb-vet: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdin = os.Stdin
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "safeweb-vet: %v\n", err)
		os.Exit(1)
	}
}
