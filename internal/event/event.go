// Package event defines SafeWeb events: the unit of data exchanged between
// processing components in the backend (paper §4.1).
//
// An event consists of a set of key-value attribute pairs and an optional
// data payload; keys, values and the body are untyped strings. Every event
// carries a set of security labels. Deriving an event from others composes
// labels per the sticky/fragile rules of package label.
//
// # Wire image and delivery lifecycles
//
// A frozen (published) event lazily memoises its STOMP MESSAGE wire form
// (WireImage): the first networked delivery encodes it, every other
// session and shard shares the immutable image, and the memo dies with
// the event. The producer side is symmetric: a frozen event publishing
// over the wire memoises its SEND form (SendImage), encoded in a single
// pass with no intermediate header map and byte-identical to the legacy
// MarshalHeaders path, so retried and fan-in publishes encode once.
// Per-delivery events — Delivery copies of attr-carrying
// events and networked UnmarshalViewDelivery events — come from a pool
// and are recycled by Release when their consumer's callback completes
// (the engine does this for every delivered event); consumers on that
// lifecycle must not retain a delivered event past their callback, and
// must Clone what outlives it. Label sets and bodies are shared immutable
// data and survive Release.
package event

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// ErrReservedAttribute is returned when application code attempts to set an
// attribute in the reserved "x-safeweb-" namespace used for label transport.
var ErrReservedAttribute = errors.New("event: attribute name is reserved")

// ReservedPrefix is the attribute namespace reserved for SafeWeb metadata;
// labels travel in these attributes on the wire, so application code may
// not set them directly.
const ReservedPrefix = "x-safeweb-"

// Event is a labelled message. Events are created by units and by the
// producer components that import data into the system. An Event and its
// attribute map must not be mutated after publishing; units receive
// defensive copies from the engine.
type Event struct {
	// Topic is the destination the event is published to,
	// e.g. "/patient_report".
	Topic string
	// Attrs holds the key-value attribute pairs. Keys and values are
	// untyped strings. A nil map means no attributes; Set initialises it
	// on first write.
	Attrs map[string]string
	// Body is the optional payload. The broker shares the body between
	// the publisher and all subscribers (payloads are treated as
	// immutable once published), so it must not be modified in place
	// after publishing or on receipt.
	Body []byte
	// Labels is the event's security label set (confidentiality and
	// integrity labels together).
	Labels label.Set

	// labelHeader memoises Labels.String(), the sorted wire form used by
	// MarshalHeaders. The broker computes it once per publish (before
	// fan-out, on the publishing goroutine) so that delivering one event
	// to many networked subscribers does not re-sort the label set per
	// frame. Empty means "not cached"; an event's labels never change
	// after publishing, so the memo cannot go stale.
	labelHeader string

	// wire memoises the preencoded STOMP MESSAGE image of a frozen event
	// (see WireImage): encoded lazily at first networked delivery, then
	// shared across every session and shard, so fan-out to S sessions
	// marshals once instead of S times. Nil until first use; the memo
	// lives and dies with the event, so — unlike the per-session frame
	// memo it replaced — it never pins a payload past the event's own
	// lifetime and needs no size cap.
	wire atomic.Pointer[wireMemo]

	// send memoises the preencoded STOMP SEND image of a frozen event
	// (see SendImage): the producer-side counterpart of wire, encoded at
	// first networked publish with no intermediate header map or frame,
	// then reused by retried and fan-in publishes of the same event. Like
	// wire, the memo lives and dies with the event.
	send atomic.Pointer[sendMemo]

	// frozen is set by Freeze when the broker publishes the event. A
	// frozen event may be shared between the publisher and several
	// subscribers, so Set refuses to mutate it.
	frozen bool

	// pooled marks an event owned by the delivery pool: a per-subscriber
	// Delivery copy or a networked UnmarshalViewDelivery event. Release
	// recycles pooled events; on everything else it is a no-op.
	pooled bool

	// onRelease, when set on a pooled delivery event, runs exactly once
	// when Release retires the event — the delivery-consumed signal the
	// networked client's credit replenishment rides (NotifyRelease).
	onRelease func()

	// gen is the pooled-lifecycle generation stamp enforcing the
	// non-retention contract fail closed: even while the event is live,
	// bumped to odd when Release recycles it into the pool, bumped back to
	// even when the pool hands it out again. Accessors check the parity
	// and panic with ErrEventReleased on a released event, so a callback
	// that retained a delivery past its Release reads a loud lifecycle
	// violation instead of silently aliasing whatever delivery the pool
	// recycled the struct into.
	gen uint32
}

// wireMemo is the once-computed result of building an event's wire image.
type wireMemo struct {
	img *stomp.WireImage
	err error
}

// sendMemo is the once-computed result of building an event's SEND image.
// The image is held by value so memo and image cost one allocation.
type sendMemo struct {
	img stomp.WireImage
	err error
}

// ErrFrozen is returned by Set on an event that has been published.
var ErrFrozen = errors.New("event: frozen after publish")

// ErrEventReleased is the panic value (wrapped) raised by accessing a
// pooled delivery event after Release recycled it — a use-after-release
// lifecycle violation. Catching it via errors.Is in a recover lets tests
// and supervisors classify the failure; production code should treat it
// as the bug it is.
var ErrEventReleased = errors.New("event: use after Release")

// checkLive panics when the event is a recycled pool entry: a consumer
// retained the delivery past its Release and is now aliasing pool state.
// Failing loudly here is the fail-closed half of the non-retention
// contract — the alternative is silently reading another subscriber's
// delivery.
func (e *Event) checkLive() {
	if e.gen&1 == 1 {
		panic(fmt.Errorf("%w (clone or copy what outlives the callback)", ErrEventReleased))
	}
}

// New creates an event on the given topic with a copy of the given
// attributes and labels. An empty attribute map is stored as nil, so
// attribute-free events cost no map allocation anywhere downstream.
func New(topic string, attrs map[string]string, labels ...label.Label) *Event {
	e := &Event{
		Topic:  topic,
		Labels: label.NewSet(labels...),
	}
	if len(attrs) > 0 {
		e.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			e.Attrs[k] = v
		}
	}
	return e
}

// Validate checks structural invariants: a non-empty topic and no reserved
// attribute names.
func (e *Event) Validate() error {
	if e.Topic == "" {
		return errors.New("event: empty topic")
	}
	for k := range e.Attrs {
		if strings.HasPrefix(k, ReservedPrefix) {
			return fmt.Errorf("%w: %q", ErrReservedAttribute, k)
		}
	}
	return nil
}

// Get returns the attribute value for key and whether it was present.
// Get panics with ErrEventReleased on a recycled pooled event.
func (e *Event) Get(key string) (string, bool) {
	e.checkLive()
	v, ok := e.Attrs[key]
	return v, ok
}

// Attr returns the attribute value for key, or "" if absent. Attr panics
// with ErrEventReleased on a recycled pooled event.
func (e *Event) Attr(key string) string {
	e.checkLive()
	return e.Attrs[key]
}

// Set sets an attribute, initialising the map if needed. It returns an
// error for reserved attribute names, and ErrFrozen for events that have
// been published: a published event may be shared between the publisher
// and all its subscribers, so in-place mutation would leak across
// isolation boundaries. To modify a received event, Clone it (or build a
// new one with Derive).
func (e *Event) Set(key, value string) error {
	e.checkLive()
	if e.frozen {
		return fmt.Errorf("%w: %q", ErrFrozen, key)
	}
	if strings.HasPrefix(key, ReservedPrefix) {
		return fmt.Errorf("%w: %q", ErrReservedAttribute, key)
	}
	if e.Attrs == nil {
		e.Attrs = make(map[string]string)
	}
	e.Attrs[key] = value
	return nil
}

// Clone returns a deep copy of the event. Label sets are immutable by
// convention and therefore shared. The clone is independent: it is not
// frozen and does not inherit the label-header memo, so callers may
// re-label it (as the federation bridge does) without a stale wire
// header surviving.
func (e *Event) Clone() *Event {
	e.checkLive()
	out := &Event{
		Topic:  e.Topic,
		Labels: e.Labels,
	}
	if e.Attrs != nil {
		out.Attrs = make(map[string]string, len(e.Attrs))
		for k, v := range e.Attrs {
			out.Attrs[k] = v
		}
	}
	if e.Body != nil {
		out.Body = append([]byte(nil), e.Body...)
	}
	return out
}

// Delivery returns the event to hand to one subscriber. Published events
// are frozen — the publisher must not touch them after Publish — so
// everything immutable is shared: topic, body, labels and the cached
// label header. Only the attribute map is copied, because handlers are
// allowed to annotate their own view of an event in place and a buggy
// unit must not be able to affect its peers. Attribute-free events are
// shared outright, making delivery allocation-free; the shared event
// stays frozen, so Set on it fails instead of leaking across subscribers,
// while per-subscriber copies are mutable.
//
// Per-subscriber copies come from the delivery pool: consumers that
// process events on a strict per-delivery lifecycle (the engine's
// subscription workers) call Release when the callback completes, so the
// steady state reuses the Event struct and its attribute map instead of
// allocating per delivery. Callbacks must not retain a delivered event
// past their own return — the same non-retention contract as the pooled
// engine Context; Clone what must outlive the callback.
func (e *Event) Delivery() *Event {
	e.checkLive()
	if len(e.Attrs) == 0 {
		return e
	}
	d := newPooledEvent()
	d.Topic = e.Topic
	d.Body = e.Body
	d.Labels = e.Labels
	d.labelHeader = e.labelHeader
	if d.Attrs == nil {
		d.Attrs = make(map[string]string, len(e.Attrs))
	}
	for k, v := range e.Attrs {
		d.Attrs[k] = v
	}
	return d
}

// deliveryPool recycles per-delivery events (Delivery copies and
// networked UnmarshalViewDelivery events). Pooled events keep their
// cleared attribute map across round-trips, so a fan-out consumer's
// steady state allocates neither the Event nor the map.
var deliveryPool = sync.Pool{New: func() any { return new(Event) }}

// newPooledEvent returns a cleared event from the delivery pool, marked
// for recycling by Release. Its Attrs map, when non-nil, is empty and
// ready for reuse.
func newPooledEvent() *Event {
	e := deliveryPool.Get().(*Event)
	e.pooled = true
	if e.gen&1 == 1 {
		e.gen++ // back to even: the struct is live again
	}
	return e
}

// maxPooledAttrs bounds the attribute map retained by a pooled event: a
// one-off delivery with a huge attribute set must not pin its buckets in
// the pool forever.
const maxPooledAttrs = 64

// Release returns a pooled delivery event to the delivery pool, clearing
// its fields (the attribute map is kept, emptied, for reuse). It is a
// no-op on events that did not come from the pool — notably the shared
// attribute-free delivery and published events — so callers on the
// delivery path may call it unconditionally. The caller must be the
// event's sole owner and must not touch the event afterwards; the engine
// calls it when a subscription callback completes, extending the pooled
// Context's invalidation lifecycle to the event itself.
func (e *Event) Release() {
	if e == nil || !e.pooled {
		return
	}
	if fn := e.onRelease; fn != nil {
		// The consumed notification fires exactly once, before the
		// frozen-escapee check: an event that escapes recycling was still
		// processed, so credit replenishment must still see it.
		e.onRelease = nil
		fn()
	}
	if e.frozen {
		// The delivered event escaped its lifecycle: a callback
		// re-published it through a direct broker handle, so it may now
		// be shared with other subscribers. Leak it to the GC instead of
		// clearing live shared state — a pool miss, not a corruption.
		return
	}
	e.pooled = false
	e.Topic = ""
	e.Body = nil
	e.Labels = nil
	e.labelHeader = ""
	e.frozen = false
	e.wire.Store(nil)
	e.send.Store(nil)
	if len(e.Attrs) > maxPooledAttrs {
		e.Attrs = nil
	} else {
		clear(e.Attrs)
	}
	// Stamp the struct released (odd generation) only on the real recycle
	// path: a frozen escapee above stays live — it may still be shared
	// with other subscribers — while a recycled struct must fail any late
	// access loudly (checkLive).
	e.gen++
	deliveryPool.Put(e)
}

// NotifyRelease arranges for fn to run exactly once when Release retires
// this pooled delivery event — the moment the consumer has finished with
// the delivery. The networked client uses it to count consumed deliveries
// for credit replenishment without wrapping the handler. It is a no-op on
// non-pooled events (which are never Released) and overwrites any earlier
// notification; the caller must set it before handing the event to its
// consumer.
func (e *Event) NotifyRelease(fn func()) {
	if e == nil || !e.pooled {
		return
	}
	e.onRelease = fn
}

// Freeze marks the event as published: it memoises the sorted wire form
// of the label set for MarshalHeaders and blocks further Set calls, since
// the event may now be shared between the publisher and any number of
// subscribers. The broker calls it once per publish before fan-out, on
// the publishing goroutine; it must not be called concurrently with
// readers of the same event.
func (e *Event) Freeze() {
	e.frozen = true
	if e.labelHeader == "" && !e.Labels.IsEmpty() {
		e.labelHeader = e.Labels.String()
	}
}

// LabelHeader returns the sorted wire form of the event's label set —
// the value of the labels transport header — computing it on first use
// if Freeze has not already memoised it. The durable journal persists
// this string with each record so replay can re-parse and re-enforce
// clearance at read time without touching the wire image.
func (e *Event) LabelHeader() string {
	if e.labelHeader == "" && !e.Labels.IsEmpty() {
		e.labelHeader = e.Labels.String()
	}
	return e.labelHeader
}

// NewDraft returns a pooled event for a producer to fill and publish —
// the producer-side counterpart of the delivery pool. A draft behaves
// exactly like a New event (Set, Body, Labels all work) until it is
// published; after the publish completes, a producer that owns the
// networked-client fast path exclusively may call ReleasePublished to
// recycle the struct, dropping the per-publish Event and map allocations
// from the cold-publish cost. Producers that publish through an
// in-process broker handle must NOT release drafts: the broker shares
// the pointer with subscribers.
func NewDraft(topic string) *Event {
	e := newPooledEvent()
	e.Topic = topic
	return e
}

// ReleasePublished recycles a published draft back into the pool. It is
// safe only when the caller is the event's sole remaining owner — i.e.
// the event was created with NewDraft and published exclusively through
// the networked Client, whose write queue holds the event's heap-separate
// SEND image, never the Event struct itself. A no-op on non-pooled
// events, so callers may guard a mixed fleet of drafts and New events
// with a single unconditional call.
func (e *Event) ReleasePublished() {
	if e == nil || !e.pooled {
		return
	}
	// Freeze marked the event shared for the duration of the publish; the
	// caller asserting sole ownership un-marks it so Release recycles
	// instead of leaking the struct as a frozen escapee.
	e.frozen = false
	e.Release()
}

// wireBuilds counts wire-image encodes across all events, for tests and
// monitoring that assert the publish-once property (an event delivered to
// N sessions must bump this exactly once).
var wireBuilds atomic.Uint64

// WireImageBuilds returns the process-wide count of wire-image encodes.
// Regression tests use the delta across a publish fan-out to prove that
// the MESSAGE header block and body are marshalled once per published
// event, not once per session.
func WireImageBuilds() uint64 { return wireBuilds.Load() }

// WireImage returns the preencoded STOMP MESSAGE image for a frozen
// event, building it at most once: the first caller encodes the canonical
// header block and body (sync.Once-style, via an atomic memo), every
// later caller — any session on any shard delivering the same event —
// shares the immutable image. Concurrent first calls are safe; both
// compute identical bytes and one becomes canonical.
//
// The event must be frozen (published): the image is derived from the
// topic, attributes, labels and body, all of which are immutable after
// Freeze. An error (an event that fails validation despite publish-time
// checks) is memoised too, so a broken event does not re-marshal per
// delivery; callers route it to their drop accounting rather than
// discarding it silently.
func (e *Event) WireImage() (*stomp.WireImage, error) {
	if m := e.wire.Load(); m != nil {
		return m.img, m.err
	}
	m := &wireMemo{}
	headers, body, err := MarshalHeaders(e)
	if err != nil {
		m.err = err
	} else {
		m.img = stomp.NewMessageImage(headers, body)
	}
	if e.wire.CompareAndSwap(nil, m) {
		if m.err == nil {
			wireBuilds.Add(1) // one canonical build per event
		}
	} else {
		m = e.wire.Load()
	}
	return m.img, m.err
}

// sendBuilds counts SEND-image encodes across all events, for tests and
// monitoring that assert the encode-once property of the producer path.
var sendBuilds atomic.Uint64

// SendImageBuilds returns the process-wide count of SEND-image encodes.
func SendImageBuilds() uint64 { return sendBuilds.Load() }

// SendImage returns the preencoded STOMP SEND image for a frozen event —
// the producer-side counterpart of WireImage, built at most once and in a
// single pass over the event's fields: no intermediate header map, no
// Frame, wire bytes byte-identical to the legacy MarshalHeaders+Send path
// (with a splice point where a per-publish receipt header lands in its
// canonical sorted position, see stomp.Encoder.EncodeSendImage).
// Concurrent first calls are safe; both compute identical bytes and one
// becomes canonical.
//
// The event must be frozen (published). An event whose attribute names
// collide with STOMP transport headers (destination, receipt, ...) cannot
// be encoded directly without changing legacy wire semantics; SendImage
// reports ErrTransportAttr and callers fall back to the map path.
// Validation errors are memoised like WireImage's.
func (e *Event) SendImage() (*stomp.WireImage, error) {
	if m := e.send.Load(); m != nil {
		if m.err != nil {
			return nil, m.err
		}
		return &m.img, nil
	}
	m := &sendMemo{}
	m.err = buildSendImage(e, &m.img)
	if e.send.CompareAndSwap(nil, m) {
		if m.err == nil {
			sendBuilds.Add(1) // one canonical build per event
		}
	} else {
		m = e.send.Load()
	}
	if m.err != nil {
		return nil, m.err
	}
	return &m.img, nil
}

// Derive creates a new event on the given topic whose labels are composed
// from the labels of the source events: confidentiality labels are sticky
// (union) and integrity labels are fragile (intersection). This is the only
// supported way for unit code to construct output events from inputs, so
// the composition rule cannot be forgotten.
func Derive(topic string, attrs map[string]string, body []byte, sources ...*Event) *Event {
	sets := make([]label.Set, len(sources))
	for i, src := range sources {
		sets[i] = src.Labels
	}
	e := New(topic, attrs)
	e.Body = append([]byte(nil), body...)
	e.Labels = label.Derive(sets...)
	return e
}

// SortedKeys returns the attribute keys in lexicographic order, for
// deterministic encoding and display.
func (e *Event) SortedKeys() []string {
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders a compact human-readable form for logs and debugging.
// Attribute values are not truncated; events in SafeWeb deployments are
// small records, not blobs.
func (e *Event) String() string {
	var b strings.Builder
	b.WriteString(e.Topic)
	b.WriteByte('{')
	for i, k := range e.SortedKeys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, e.Attrs[k])
	}
	b.WriteByte('}')
	if !e.Labels.IsEmpty() {
		fmt.Fprintf(&b, "[%s]", e.Labels)
	}
	if len(e.Body) > 0 {
		fmt.Fprintf(&b, "+%dB", len(e.Body))
	}
	return b.String()
}
