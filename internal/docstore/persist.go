package docstore

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// fileImage is the JSON snapshot format: the documents (including
// tombstones, so a reloaded store keeps replicating deletions) and the
// change sequence.
type fileImage struct {
	Name string      `json:"name"`
	Seq  uint64      `json:"seq"`
	Docs []*Document `json:"docs"`
}

// Save writes a snapshot of the store to path. Views are code, not data;
// re-register them after Load.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	img := fileImage{Name: s.name, Seq: s.seq, Docs: make([]*Document, 0, len(s.docs))}
	for _, doc := range s.docs {
		img.Docs = append(img.Docs, doc.clone())
	}
	s.mu.RUnlock()
	sort.Slice(img.Docs, func(i, j int) bool { return img.Docs[i].Seq < img.Docs[j].Seq })

	data, err := json.MarshalIndent(img, "", "  ")
	if err != nil {
		return fmt.Errorf("docstore: encode snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return fmt.Errorf("docstore: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("docstore: commit snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save.
func Load(path string, opts Options) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("docstore: read snapshot: %w", err)
	}
	var img fileImage
	if err := json.Unmarshal(data, &img); err != nil {
		return nil, fmt.Errorf("docstore: decode snapshot: %w", err)
	}
	s := New(img.Name, opts)
	s.seq = img.Seq
	for _, doc := range img.Docs {
		if doc.ID == "" {
			return nil, fmt.Errorf("docstore: snapshot contains document without id")
		}
		s.docs[doc.ID] = doc
	}
	return s, nil
}
