package stomp

import (
	"bufio"
	"bytes"
	"io"
	"strconv"
	"strings"
	"testing"
)

// messageFrame builds the 6-header MESSAGE frame used by the allocation
// regression tests — the shape of a broker delivery on the hot path.
func messageFrame() *Frame {
	f := NewFrame(CmdMessage)
	f.SetHeader(HdrDestination, "/patient_report")
	f.SetHeader(HdrSubscription, "sub-12")
	f.SetHeader(HdrMessageID, "m-3-4711")
	f.SetHeader("patient_id", "33812769")
	f.SetHeader("type", "cancer")
	f.SetHeader("x-safeweb-labels", "label:conf:ecric.org.uk/mdt/7")
	f.Body = []byte(`{"summary": "report", "mdt": 7}`)
	return f
}

// TestEncodeAllocs pins the encoder's per-frame allocation budget: once
// its scratch buffers are warm, encoding a 6-header MESSAGE frame must
// not allocate (budget ≤ 1 alloc/op guards against regression, steady
// state is 0).
func TestEncodeAllocs(t *testing.T) {
	f := messageFrame()
	var enc Encoder
	if err := enc.Encode(io.Discard, f); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := enc.Encode(io.Discard, f); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	})
	if avg > 1 {
		t.Errorf("Encode allocs/op = %g, want <= 1", avg)
	}
}

// TestEncoderShedsLargeBuffer: encoding one huge body must not pin its
// scratch buffer for the connection's lifetime.
func TestEncoderShedsLargeBuffer(t *testing.T) {
	f := NewFrame(CmdSend)
	f.SetHeader(HdrDestination, "/t")
	f.Body = make([]byte, maxRetainedEncodeBuf+1)
	var enc Encoder
	if err := enc.Encode(io.Discard, f); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if cap(enc.buf) > maxRetainedEncodeBuf {
		t.Errorf("retained %d-byte scratch buffer, want <= %d", cap(enc.buf), maxRetainedEncodeBuf)
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	f := messageFrame()
	var enc Encoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(io.Discard, f); err != nil {
			b.Fatalf("Encode: %v", err)
		}
	}
}

// TestDecodeViewAllocs pins the decoder's per-frame allocation budget on
// the map-free path: once its scratch buffers are warm, DecodeView of a
// 6-header MESSAGE frame must cost at most the body allocation (budget
// ≤ 2 allocs/op guards against regression, steady state is 1 — the body,
// whose ownership transfers to the consumer).
func TestDecodeViewAllocs(t *testing.T) {
	var wire bytes.Buffer
	if err := WriteFrame(&wire, messageFrame()); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := bytes.NewReader(wire.Bytes())
	br := bufio.NewReaderSize(raw, 32*1024)
	dec := Decoder{r: br}
	decodeOne := func() {
		raw.Reset(wire.Bytes())
		br.Reset(raw)
		if _, err := dec.DecodeView(); err != nil {
			t.Fatalf("DecodeView: %v", err)
		}
	}
	decodeOne() // warm the scratch buffers
	avg := testing.AllocsPerRun(200, decodeOne)
	if avg > 2 {
		t.Errorf("DecodeView allocs/op = %g, want <= 2", avg)
	}
}

// TestDecoderShedsLargeBuffer: decoding one frame with huge headers must
// not pin the header scratch buffer for the connection's lifetime.
func TestDecoderShedsLargeBuffer(t *testing.T) {
	// Many medium headers: each line stays under MaxHeaderLen, but the
	// frame's header block overflows the retained-scratch cap.
	big := NewFrame(CmdSend)
	big.SetHeader(HdrDestination, "/t")
	val := strings.Repeat("x", 400)
	for i := 0; len(big.Headers)*len(val) < maxRetainedDecodeBuf+4096; i++ {
		big.SetHeader("h"+strconv.Itoa(i), val)
	}
	small := NewFrame(CmdSend)
	small.SetHeader(HdrDestination, "/t")
	var wire bytes.Buffer
	if err := WriteFrame(&wire, big); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := WriteFrame(&wire, small); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	dec := NewDecoder(&wire)
	for i := 0; i < 2; i++ {
		if _, err := dec.DecodeView(); err != nil {
			t.Fatalf("DecodeView %d: %v", i, err)
		}
	}
	if cap(dec.hbuf) > maxRetainedDecodeBuf {
		t.Errorf("retained %d-byte header scratch, want <= %d", cap(dec.hbuf), maxRetainedDecodeBuf)
	}

	// Idle-retention guard: a decoder whose connection goes quiet after an
	// oversized frame must drop the previous view's buffer reference when
	// the next DecodeView starts, even though no further frame arrives.
	var bigOnly bytes.Buffer
	if err := WriteFrame(&bigOnly, big); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	idle := NewDecoder(&bigOnly)
	if _, err := idle.DecodeView(); err != nil {
		t.Fatalf("DecodeView: %v", err)
	}
	if _, err := idle.DecodeView(); err != io.EOF {
		t.Fatalf("DecodeView at EOF: %v, want io.EOF", err)
	}
	if idle.view.Headers.buf != nil || cap(idle.hbuf) > maxRetainedDecodeBuf {
		t.Errorf("idle decoder pins %d-byte view buf + %d-byte scratch, want none retained",
			cap(idle.view.Headers.buf), cap(idle.hbuf))
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	var wire bytes.Buffer
	if err := WriteFrame(&wire, messageFrame()); err != nil {
		b.Fatalf("WriteFrame: %v", err)
	}
	raw := bytes.NewReader(wire.Bytes())
	br := bufio.NewReaderSize(raw, 32*1024)
	dec := Decoder{r: br}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw.Reset(wire.Bytes())
		br.Reset(raw)
		if _, err := dec.Decode(); err != nil {
			b.Fatalf("Decode: %v", err)
		}
	}
}

func BenchmarkFrameDecodeView(b *testing.B) {
	var wire bytes.Buffer
	if err := WriteFrame(&wire, messageFrame()); err != nil {
		b.Fatalf("WriteFrame: %v", err)
	}
	raw := bytes.NewReader(wire.Bytes())
	br := bufio.NewReaderSize(raw, 32*1024)
	dec := Decoder{r: br}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw.Reset(wire.Bytes())
		br.Reset(raw)
		if _, err := dec.DecodeView(); err != nil {
			b.Fatalf("DecodeView: %v", err)
		}
	}
}
