package broker

import (
	"bufio"
	"errors"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// startDurableBroker runs a broker whose server journals the given topic
// patterns under dir.
func startDurableBroker(t *testing.T, p *label.Policy, dir string, topics ...string) (*Broker, *Server) {
	t.Helper()
	b := New(p)
	srv, err := NewServer("127.0.0.1:0", b, ServerConfig{
		Logf:       t.Logf,
		Durable:    topics,
		JournalDir: dir,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		b.Close()
	})
	return b, srv
}

// dialDurable connects a client whose subscriptions are durable.
func dialDurable(t *testing.T, addr, login, group, offset string, credit int) *Client {
	t.Helper()
	c, err := DialBus(addr, ClientConfig{
		Login:           login,
		SendTimeout:     5 * time.Second,
		OnError:         func(err error) { t.Logf("bus error (%s): %v", login, err) },
		SubscribeCredit: credit,
		DurableGroup:    group,
		DurableOffset:   offset,
	})
	if err != nil {
		t.Fatalf("DialBus(%s): %v", login, err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// seqCollector gathers the numeric seq attribute of each delivery in
// arrival order; release decides per event whether to complete it (and
// thereby advance the client's cumulative offset ack).
func seqCollector(t *testing.T, release func(seq int) bool) (Handler, func() []int) {
	var mu sync.Mutex
	var got []int
	h := func(ev *event.Event) {
		n, err := strconv.Atoi(ev.Attr("seq"))
		if err != nil {
			t.Errorf("delivery without numeric seq: %v", err)
			return
		}
		mu.Lock()
		got = append(got, n)
		mu.Unlock()
		if release(n) {
			ev.Release()
		}
	}
	return h, func() []int {
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), got...)
	}
}

func publishDurableSeq(t *testing.T, pub *Client, topic string, seq int) {
	t.Helper()
	ev := event.New(topic, map[string]string{"seq": strconv.Itoa(seq)})
	ev.Body = []byte("payload-" + strconv.Itoa(seq))
	if err := pub.Publish(ev); err != nil {
		t.Fatalf("Publish seq %d: %v", seq, err)
	}
}

func sameSeqs(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestDurableBacklogAndLiveTail is the happy path end to end: publishes
// on a durable topic are journaled, a later group subscription replays
// the backlog in order and keeps receiving live publishes through the
// journal tail, and releases drive cumulative persisted acks.
func TestDurableBacklogAndLiveTail(t *testing.T) {
	const topic = "/d/t"
	dir := t.TempDir()
	_, srv := startDurableBroker(t, testPolicy(), dir, topic)

	producer := dialBus(t, srv.Addr(), "producer")
	for seq := 0; seq < 3; seq++ {
		publishDurableSeq(t, producer, topic, seq)
	}
	waitFor(t, "journal appends", func() bool {
		return srv.Stats().DurableAppends == 3
	})

	consumer := dialDurable(t, srv.Addr(), "consumer", "g1", "", 2)
	h, seqs := seqCollector(t, func(int) bool { return true })
	if _, err := consumer.Subscribe(topic, "", h); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	waitFor(t, "backlog replay", func() bool { return len(seqs()) == 3 })

	for seq := 3; seq < 5; seq++ {
		publishDurableSeq(t, producer, topic, seq)
	}
	waitFor(t, "live tail", func() bool { return len(seqs()) == 5 })
	if got := seqs(); !sameSeqs(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("delivery order = %v, want [0 1 2 3 4]", got)
	}

	// Every delivery was released, so the group's persisted cumulative
	// ack converges on the journal bound.
	j, err := srv.journals.open(topic)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	waitFor(t, "cumulative ack", func() bool { return j.Acked("g1") == 5 })
	if got := srv.Stats().ReplayDeliveries; got != 5 {
		t.Errorf("ReplayDeliveries = %d, want 5", got)
	}
	if got := srv.Stats().UnhandledFrames; got != 0 {
		t.Errorf("UnhandledFrames = %d, want 0 (offset acks must be handled)", got)
	}
}

// TestDurableResumeAfterDisconnect pins the acceptance contract: a
// consumer that acked part of the stream and disconnected resumes with
// its group and receives exactly the unacked suffix, exactly once.
func TestDurableResumeAfterDisconnect(t *testing.T) {
	const topic = "/d/resume"
	dir := t.TempDir()
	_, srv := startDurableBroker(t, testPolicy(), dir, topic)

	producer := dialBus(t, srv.Addr(), "producer")
	for seq := 0; seq < 6; seq++ {
		publishDurableSeq(t, producer, topic, seq)
	}
	waitFor(t, "journal appends", func() bool {
		return srv.Stats().DurableAppends == 6
	})
	j, err := srv.journals.open(topic)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}

	// First incarnation: receive everything, complete (Release) only the
	// first three — the client acks the completed prefix cumulatively.
	first, err := DialBus(srv.Addr(), ClientConfig{
		Login:        "consumer",
		DurableGroup: "g",
		OnError:      func(err error) { t.Logf("first consumer: %v", err) },
	})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	h1, seqs1 := seqCollector(t, func(seq int) bool { return seq < 3 })
	if _, err := first.Subscribe(topic, "", h1); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	waitFor(t, "first replay", func() bool { return len(seqs1()) == 6 })
	waitFor(t, "partial ack persisted", func() bool { return j.Acked("g") == 3 })
	if err := first.Close(); err != nil {
		t.Logf("first close: %v", err)
	}

	// Second incarnation resumes at the group's acked mark.
	second := dialDurable(t, srv.Addr(), "consumer", "g", "", 0)
	h2, seqs2 := seqCollector(t, func(int) bool { return true })
	if _, err := second.Subscribe(topic, "", h2); err != nil {
		t.Fatalf("resubscribe: %v", err)
	}
	waitFor(t, "resumed replay", func() bool { return len(seqs2()) == 3 })
	time.Sleep(100 * time.Millisecond) // no extra deliveries trickle in
	if got := seqs2(); !sameSeqs(got, []int{3, 4, 5}) {
		t.Fatalf("resumed deliveries = %v, want exactly the unacked suffix [3 4 5]", got)
	}
	waitFor(t, "resumed ack", func() bool { return j.Acked("g") == 6 })
}

// TestDurableReplayClearanceRevoked pins the security contract: replay
// enforces clearance at read time against the current policy, so a
// privilege revoked after an event was journaled keeps the event from
// every later replay.
func TestDurableReplayClearanceRevoked(t *testing.T) {
	const topic = "/d/sec"
	dir := t.TempDir()
	p := testPolicy()
	_, srv := startDurableBroker(t, p, dir, topic)

	producer := dialBus(t, srv.Addr(), "producer")
	secret := event.New(topic, map[string]string{"seq": "0"},
		label.Conf("ecric.org.uk/mdt/7"))
	if err := producer.Publish(secret); err != nil {
		t.Fatalf("Publish labelled: %v", err)
	}
	publishDurableSeq(t, producer, topic, 1)
	waitFor(t, "journal appends", func() bool {
		return srv.Stats().DurableAppends == 2
	})

	// While the clearance stands, replay delivers both records.
	before := dialDurable(t, srv.Addr(), "cleared", "", "earliest", 0)
	hb, seqsBefore := seqCollector(t, func(int) bool { return true })
	if _, err := before.Subscribe(topic, "", hb); err != nil {
		t.Fatalf("Subscribe before revoke: %v", err)
	}
	waitFor(t, "cleared replay", func() bool { return len(seqsBefore()) == 2 })
	if got := srv.Stats().ReplayFiltered; got != 0 {
		t.Fatalf("ReplayFiltered before revoke = %d, want 0", got)
	}

	// Revoke, then replay again from the same journal: the labelled
	// record is filtered at read time, never delivered.
	if !p.Revoke("cleared", label.Clearance, label.MustParsePattern("label:conf:ecric.org.uk/mdt/7")) {
		t.Fatal("Revoke did not find the grant")
	}
	after := dialDurable(t, srv.Addr(), "cleared", "", "earliest", 0)
	ha, seqsAfter := seqCollector(t, func(int) bool { return true })
	if _, err := after.Subscribe(topic, "", ha); err != nil {
		t.Fatalf("Subscribe after revoke: %v", err)
	}
	waitFor(t, "filtered replay", func() bool { return len(seqsAfter()) == 1 })
	time.Sleep(100 * time.Millisecond)
	if got := seqsAfter(); !sameSeqs(got, []int{1}) {
		t.Fatalf("post-revoke deliveries = %v, want only the unlabelled [1]", got)
	}
	waitFor(t, "filter counted", func() bool { return srv.Stats().ReplayFiltered == 1 })
}

// TestDurableReplayAcrossRestartZeroRemarshal restarts the server on an
// existing journal directory and replays it: recovery feeds the consumer
// the persisted wire-image bytes directly — the replay window builds no
// new wire images (event.WireImageBuilds is flat) — and the payloads
// survive byte-intact.
func TestDurableReplayAcrossRestartZeroRemarshal(t *testing.T) {
	const topic = "/d/restart"
	dir := t.TempDir()

	b1 := New(testPolicy())
	srv1, err := NewServer("127.0.0.1:0", b1, ServerConfig{
		Logf: t.Logf, Durable: []string{topic}, JournalDir: dir,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	producer, err := DialBus(srv1.Addr(), ClientConfig{Login: "producer", SendTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	for seq := 0; seq < 4; seq++ {
		publishDurableSeq(t, producer, topic, seq)
	}
	waitFor(t, "journal appends", func() bool {
		return srv1.Stats().DurableAppends == 4
	})
	if err := producer.Close(); err != nil {
		t.Logf("producer close: %v", err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatalf("first server close: %v", err)
	}
	b1.Close()

	_, srv2 := startDurableBroker(t, testPolicy(), dir, topic)
	consumer := dialDurable(t, srv2.Addr(), "consumer", "", "earliest", 0)

	var mu sync.Mutex
	bodies := map[int]string{}
	builds0 := event.WireImageBuilds()
	if _, err := consumer.Subscribe(topic, "", func(ev *event.Event) {
		n, _ := strconv.Atoi(ev.Attr("seq"))
		mu.Lock()
		bodies[n] = string(ev.Body)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	waitFor(t, "replay after restart", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(bodies) == 4
	})
	if builds := event.WireImageBuilds() - builds0; builds != 0 {
		t.Errorf("replay built %d wire images, want 0 (served from persisted bytes)", builds)
	}
	mu.Lock()
	defer mu.Unlock()
	for seq := 0; seq < 4; seq++ {
		if got, want := bodies[seq], "payload-"+strconv.Itoa(seq); got != want {
			t.Errorf("replayed body[%d] = %q, want %q", seq, got, want)
		}
	}
}

// TestDurableOffsetSpecs covers the three explicit replay starts:
// earliest rewinds to the log head, an absolute offset starts there, and
// next skips the backlog entirely, delivering only later publishes.
func TestDurableOffsetSpecs(t *testing.T) {
	const topic = "/d/off"
	dir := t.TempDir()
	_, srv := startDurableBroker(t, testPolicy(), dir, topic)

	producer := dialBus(t, srv.Addr(), "producer")
	for seq := 0; seq < 4; seq++ {
		publishDurableSeq(t, producer, topic, seq)
	}
	waitFor(t, "journal appends", func() bool {
		return srv.Stats().DurableAppends == 4
	})

	subscribe := func(offset string) func() []int {
		c := dialDurable(t, srv.Addr(), "consumer", "", offset, 0)
		h, seqs := seqCollector(t, func(int) bool { return true })
		if _, err := c.Subscribe(topic, "", h); err != nil {
			t.Fatalf("Subscribe offset=%s: %v", offset, err)
		}
		return seqs
	}
	earliest := subscribe("earliest")
	at2 := subscribe("2")
	next := subscribe("next")

	waitFor(t, "earliest backlog", func() bool { return len(earliest()) == 4 })
	waitFor(t, "absolute backlog", func() bool { return len(at2()) == 2 })

	publishDurableSeq(t, producer, topic, 4)
	waitFor(t, "live tails", func() bool {
		return len(earliest()) == 5 && len(at2()) == 3 && len(next()) == 1
	})
	time.Sleep(100 * time.Millisecond)
	if got := earliest(); !sameSeqs(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("earliest = %v, want [0 1 2 3 4]", got)
	}
	if got := at2(); !sameSeqs(got, []int{2, 3, 4}) {
		t.Errorf("offset 2 = %v, want [2 3 4]", got)
	}
	if got := next(); !sameSeqs(got, []int{4}) {
		t.Errorf("next = %v, want [4]", got)
	}
}

// rawDurableConn is a hand-driven STOMP subscriber for wire-level
// assertions on durable delivery and the ACK fast paths.
func rawDurableConn(t *testing.T, addr, login string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial raw: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	rd := bufio.NewReader(conn)
	connect := stomp.NewFrame(stomp.CmdConnect)
	connect.SetHeader(stomp.HdrLogin, login)
	if err := stomp.WriteFrame(conn, connect); err != nil {
		t.Fatalf("raw CONNECT: %v", err)
	}
	if f, err := stomp.ReadFrame(rd); err != nil || f.Command != stomp.CmdConnected {
		t.Fatalf("raw handshake: frame %v, err %v", f, err)
	}
	return conn, rd
}

// rawSubscribe sends a SUBSCRIBE with the given extra headers and waits
// for its receipt.
func rawSubscribe(t *testing.T, conn net.Conn, rd *bufio.Reader, topic, subID string, extra map[string]string) {
	t.Helper()
	sub := stomp.NewFrame(stomp.CmdSubscribe)
	sub.SetHeader(stomp.HdrID, subID)
	sub.SetHeader(stomp.HdrDestination, topic)
	for k, v := range extra {
		sub.SetHeader(k, v)
	}
	sub.SetHeader(stomp.HdrReceipt, "r-sub")
	if err := stomp.WriteFrame(conn, sub); err != nil {
		t.Fatalf("raw SUBSCRIBE: %v", err)
	}
	for {
		f, err := stomp.ReadFrame(rd)
		if err != nil {
			t.Fatalf("raw SUBSCRIBE receipt: %v", err)
		}
		if f.Command == stomp.CmdReceipt {
			return
		}
	}
}

// rawReadOffsetMessage reads the next MESSAGE and returns its seq
// attribute and delivery offset header.
func rawReadOffsetMessage(t *testing.T, conn net.Conn, rd *bufio.Reader) (seq int, offset string) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	f, err := stomp.ReadFrame(rd)
	if err != nil {
		t.Fatalf("read MESSAGE: %v", err)
	}
	if f.Command != stomp.CmdMessage {
		t.Fatalf("read %s frame, want MESSAGE: %v", f.Command, f)
	}
	seq, err = strconv.Atoi(f.Header("seq"))
	if err != nil {
		t.Fatalf("MESSAGE without numeric seq: %v", f)
	}
	return seq, f.Header(stomp.HdrDeliveryOffset)
}

// rawExpectSilence asserts no frame arrives within d — in particular, no
// ERROR frame.
func rawExpectSilence(t *testing.T, conn net.Conn, rd *bufio.Reader, d time.Duration) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(d))
	defer conn.SetReadDeadline(time.Time{})
	if f, err := stomp.ReadFrame(rd); err == nil {
		t.Fatalf("expected no frame, read %v", f)
	} else if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("expected read deadline, got %v", err)
	}
}

// rawAck writes an ACK whose credit and offset headers are each optional
// — the wire shapes a durable credited consumer produces.
func rawAck(t *testing.T, conn net.Conn, subID, credit, offset string) {
	t.Helper()
	f := stomp.NewFrame(stomp.CmdAck)
	f.SetHeader(stomp.HdrSubscription, subID)
	if credit != "" {
		f.SetHeader(stomp.HdrCredit, credit)
	}
	if offset != "" {
		f.SetHeader(stomp.HdrOffset, offset)
	}
	if err := stomp.WriteFrame(conn, f); err != nil {
		t.Fatalf("write ACK: %v", err)
	}
}

// TestDurableAckCreditAndOffsetWire pins the ACK contract at the wire
// level: one frame carrying both a credit grant and an offset ack applies
// both, and an offset-only ACK is handled — no ERROR frame, no
// UnhandledFrames — while still persisting the group's progress.
func TestDurableAckCreditAndOffsetWire(t *testing.T) {
	const topic = "/d/raw"
	dir := t.TempDir()
	b, srv := startDurableBroker(t, testPolicy(), dir, topic)

	conn, rd := rawDurableConn(t, srv.Addr(), "consumer")
	rawSubscribe(t, conn, rd, topic, "d-0", map[string]string{
		stomp.HdrCredit: "2",
		stomp.HdrGroup:  "gr",
	})

	for seq := 0; seq < 5; seq++ {
		ev := event.New(topic, map[string]string{"seq": strconv.Itoa(seq)})
		if err := b.Publish("producer", ev); err != nil {
			t.Fatalf("Publish seq %d: %v", seq, err)
		}
	}

	// Window of 2: replay delivers offsets 0 and 1 and parks.
	for want := 0; want < 2; want++ {
		seq, off := rawReadOffsetMessage(t, conn, rd)
		if seq != want || off != strconv.Itoa(want) {
			t.Fatalf("delivery %d: seq=%d offset=%q", want, seq, off)
		}
	}
	rawExpectSilence(t, conn, rd, 100*time.Millisecond)

	// One frame, both headers: the grant releases two more deliveries and
	// the offset persists the group's progress.
	rawAck(t, conn, "d-0", "4", "2")
	for want := 2; want < 4; want++ {
		seq, off := rawReadOffsetMessage(t, conn, rd)
		if seq != want || off != strconv.Itoa(want) {
			t.Fatalf("delivery %d: seq=%d offset=%q", want, seq, off)
		}
	}
	j, err := srv.journals.open(topic)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	waitFor(t, "combined ack persisted", func() bool { return j.Acked("gr") == 2 })

	// Offset-only ACK: no credit movement (the window stays shut), no
	// ERROR frame, no unhandled-frame count — and the ack persists.
	rawAck(t, conn, "d-0", "", "4")
	rawExpectSilence(t, conn, rd, 100*time.Millisecond)
	waitFor(t, "offset-only ack persisted", func() bool { return j.Acked("gr") == 4 })
	if got := srv.Stats().UnhandledFrames; got != 0 {
		t.Errorf("UnhandledFrames = %d, want 0", got)
	}
	if got := srv.Stats().ReplayDeliveries; got != 4 {
		t.Errorf("ReplayDeliveries = %d, want 4", got)
	}
}

// TestDurableSubscribeValidation covers the rejection surface: durable
// subscriptions need a journal-backed exact topic and no selector, and a
// server with durable patterns needs a journal directory.
func TestDurableSubscribeValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", New(testPolicy()), ServerConfig{
		Durable: []string{"/x"},
	}); err == nil {
		t.Error("NewServer with Durable but no JournalDir: want error")
	}
	if _, err := NewServer("127.0.0.1:0", New(testPolicy()), ServerConfig{
		JournalDir:         t.TempDir(),
		JournalSegmentSize: -1,
	}); err == nil {
		t.Error("NewServer with negative JournalSegmentSize: want error")
	}

	const topic = "/d/val"
	dir := t.TempDir()
	_, srv := startDurableBroker(t, testPolicy(), dir, topic)

	// Each rejected SUBSCRIBE answers with an ERROR frame on its own
	// connection.
	expectSubscribeError := func(what, dest string, extra map[string]string) {
		t.Helper()
		conn, rd := rawDurableConn(t, srv.Addr(), "consumer")
		sub := stomp.NewFrame(stomp.CmdSubscribe)
		sub.SetHeader(stomp.HdrID, "bad-0")
		sub.SetHeader(stomp.HdrDestination, dest)
		for k, v := range extra {
			sub.SetHeader(k, v)
		}
		if err := stomp.WriteFrame(conn, sub); err != nil {
			t.Fatalf("%s: write SUBSCRIBE: %v", what, err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := stomp.ReadFrame(rd)
		if err != nil {
			t.Fatalf("%s: read: %v", what, err)
		}
		if f.Command != stomp.CmdError {
			t.Errorf("%s: got %s frame, want ERROR", what, f.Command)
		}
	}
	expectSubscribeError("selector on durable subscription", topic,
		map[string]string{stomp.HdrGroup: "g", stomp.HdrSelector: "a = 'b'"})
	expectSubscribeError("wildcard durable topic", "/d/*",
		map[string]string{stomp.HdrGroup: "g"})
	expectSubscribeError("non-durable topic", "/live/only",
		map[string]string{stomp.HdrGroup: "g"})
	expectSubscribeError("bad offset spec", topic,
		map[string]string{stomp.HdrOffset: "latest-ish"})
}

// TestDurableRetentionClampedResume drives compaction end to end: a group
// acks the whole stream, CompactJournals truncates the acked prefix, and
// a fresh group subscribing from "earliest" is clamped to the journal's
// new lower bound — counted in ClampedResumes, never silently — and
// receives exactly the surviving suffix.
func TestDurableRetentionClampedResume(t *testing.T) {
	const topic = "/d/retain"
	dir := t.TempDir()
	b := New(testPolicy())
	var retMu sync.Mutex
	var retEvents []RetentionEvent
	srv, err := NewServer("127.0.0.1:0", b, ServerConfig{
		Logf:               t.Logf,
		Durable:            []string{topic},
		JournalDir:         dir,
		JournalSegmentSize: 256, // several segments from a handful of publishes
		OnRetention: func(ev RetentionEvent) {
			retMu.Lock()
			retEvents = append(retEvents, ev)
			retMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		b.Close()
	})

	const n = 20
	producer := dialBus(t, srv.Addr(), "producer")
	for seq := 0; seq < n; seq++ {
		publishDurableSeq(t, producer, topic, seq)
	}
	waitFor(t, "journal appends", func() bool { return srv.Stats().DurableAppends == n })

	// Group g1 consumes and releases everything, making the whole prefix
	// ack-covered.
	c1 := dialDurable(t, srv.Addr(), "consumer", "g1", "", 4)
	h1, seqs1 := seqCollector(t, func(int) bool { return true })
	if _, err := c1.Subscribe(topic, "", h1); err != nil {
		t.Fatalf("Subscribe g1: %v", err)
	}
	waitFor(t, "g1 replay", func() bool { return len(seqs1()) == n })
	j, err := srv.journals.open(topic)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	waitFor(t, "g1 cumulative ack", func() bool { return j.Acked("g1") == n })

	if err := srv.CompactJournals(); err != nil {
		t.Fatalf("CompactJournals: %v", err)
	}
	first := j.FirstOffset()
	if first == 0 {
		t.Fatal("compaction did not advance FirstOffset")
	}
	if got := srv.Stats().CompactedSegments; got == 0 {
		t.Error("CompactedSegments = 0 after an acked-prefix compaction")
	}
	retMu.Lock()
	nret := len(retEvents)
	retMu.Unlock()
	if nret == 0 {
		t.Error("OnRetention hook never fired")
	}

	// A new group asking for "earliest" wants offset 0, which is gone:
	// the resume clamps to FirstOffset and replays the surviving suffix.
	c2 := dialDurable(t, srv.Addr(), "consumer", "g2", "earliest", 4)
	h2, seqs2 := seqCollector(t, func(int) bool { return true })
	if _, err := c2.Subscribe(topic, "", h2); err != nil {
		t.Fatalf("Subscribe g2: %v", err)
	}
	waitFor(t, "g2 clamped replay", func() bool { return len(seqs2()) == n-int(first) })
	want := make([]int, 0, n-int(first))
	for seq := int(first); seq < n; seq++ {
		want = append(want, seq)
	}
	if got := seqs2(); !sameSeqs(got, want) {
		t.Fatalf("clamped replay = %v, want %v", got, want)
	}
	if got := srv.Stats().ClampedResumes; got == 0 {
		t.Error("ClampedResumes = 0, want >= 1 (clamp must be counted, not silent)")
	}
}

// TestDurableJournalAppendErrorCounted pins the satellite fix: a durable
// append failure is no longer just a log line — it increments
// JournalAppendErrors and reaches the OnJournalError hook.
func TestDurableJournalAppendErrorCounted(t *testing.T) {
	const topic = "/d/apperr"
	dir := t.TempDir()
	b := New(testPolicy())
	var errMu sync.Mutex
	var hookTopics []string
	srv, err := NewServer("127.0.0.1:0", b, ServerConfig{
		Logf:       t.Logf,
		Durable:    []string{topic},
		JournalDir: dir,
		OnJournalError: func(topic string, err error) {
			errMu.Lock()
			hookTopics = append(hookTopics, topic)
			errMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		b.Close()
	})

	// Close the topic's journal underneath the server: the next publish's
	// tap append fails the way a full or failing disk would.
	j, err := srv.journals.open(topic)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close journal: %v", err)
	}

	producer := dialBus(t, srv.Addr(), "producer")
	publishDurableSeq(t, producer, topic, 0)
	waitFor(t, "append error counted", func() bool {
		return srv.Stats().JournalAppendErrors == 1
	})
	errMu.Lock()
	defer errMu.Unlock()
	if len(hookTopics) != 1 || hookTopics[0] != topic {
		t.Fatalf("OnJournalError hook saw %v, want [%s]", hookTopics, topic)
	}
}
