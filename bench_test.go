// Benchmarks regenerating the paper's evaluation numbers (§5.3, Fig. 5).
// Each benchmark corresponds to an experiment in DESIGN.md's index:
//
//	BenchmarkPageGeneration   E2  (paper: 158 ms → 180 ms, +14%)
//	BenchmarkEventLatency     E3  (paper: 73 ms → 84 ms, +15%)
//	BenchmarkThroughput       E6  (paper: 4455 → 3817 events/s, −17%)
//	BenchmarkFrontendPhases   E4  (Fig. 5 frontend break-down, reported
//	                               as ns/op metrics per phase)
//	BenchmarkBackendPhases    E5  (Fig. 5 backend break-down)
//
// The remaining ablation benchmarks isolate the mechanisms the paper's
// design discussion calls out: label operations, selector matching, STOMP
// framing, taint propagation and template rendering.
package safeweb_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"safeweb/internal/bench"
	"safeweb/internal/label"
	"safeweb/internal/maindb"
	"safeweb/internal/mdt"
	"safeweb/internal/selector"
	"safeweb/internal/taint"
	"safeweb/internal/template"
)

// benchWorkload is a reduced workload so `go test -bench=.` completes in
// minutes; cmd/safeweb-bench runs the paper-sized versions.
func benchWorkload() bench.Workload {
	return bench.Workload{Patients: 60, Requests: 100, AuthWork: 500, Seed: 7}
}

// deployFrontBench builds a deployment and returns a front-page request
// runner.
func deployFrontBench(b *testing.B, tracking bool) func() {
	b.Helper()
	d, err := mdt.Deploy(mdt.DeployConfig{
		Registry:        maindb.Config{Seed: 7, Patients: 60},
		DisableTracking: !tracking,
		AuthWork:        500,
	})
	if err != nil {
		b.Fatalf("Deploy: %v", err)
	}
	b.Cleanup(d.Stop)
	if err := d.ImportAll(); err != nil {
		b.Fatalf("ImportAll: %v", err)
	}
	user := ""
	for _, m := range d.Registry.MDTs() {
		if docs, _ := d.DMZDB.Query(mdt.ViewRecordsByMDT, m.ID); len(docs) > 0 {
			user = m.ID
			break
		}
	}
	if user == "" {
		b.Fatal("no records")
	}
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.SetBasicAuth(user, d.Creds[user])
	return func() {
		rec := httptest.NewRecorder()
		d.Frontend.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("front page: %d", rec.Code)
		}
	}
}

// BenchmarkPageGeneration is E2: MDT front-page generation time with and
// without the taint-tracking library.
func BenchmarkPageGeneration(b *testing.B) {
	for _, mode := range []struct {
		name     string
		tracking bool
	}{{"baseline", false}, {"safeweb", true}} {
		b.Run(mode.name, func(b *testing.B) {
			run := deployFrontBench(b, mode.tracking)
			run() // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

// BenchmarkEventLatency is E3: per-event producer→storage latency.
func BenchmarkEventLatency(b *testing.B) {
	for _, mode := range []struct {
		name     string
		tracking bool
	}{{"baseline", false}, {"safeweb", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p, done, err := bench.NewPipelineForBench(false)
			if err != nil {
				b.Fatalf("pipeline: %v", err)
			}
			defer p.Stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Publish(i, mode.tracking); err != nil {
					b.Fatalf("publish: %v", err)
				}
				<-done
			}
		})
	}
}

// BenchmarkThroughput is E6: maximum-rate producer→consumer throughput;
// events/s is reported as a metric.
func BenchmarkThroughput(b *testing.B) {
	for _, mode := range []struct {
		name     string
		tracking bool
	}{{"baseline", false}, {"safeweb", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p, done, err := bench.NewPipelineForBench(false)
			if err != nil {
				b.Fatalf("pipeline: %v", err)
			}
			defer p.Stop()
			b.ResetTimer()
			go func() {
				for i := 0; i < b.N; i++ {
					_ = p.Publish(i, mode.tracking)
				}
			}()
			for i := 0; i < b.N; i++ {
				<-done
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkFrontendPhases is E4: the Fig. 5 frontend break-down, reported
// as per-phase metrics.
func BenchmarkFrontendPhases(b *testing.B) {
	fb, err := bench.MeasureFrontendBreakdown(benchWorkload())
	if err != nil {
		b.Fatalf("breakdown: %v", err)
	}
	b.ReportMetric(float64(fb.Auth.Nanoseconds()), "auth-ns")
	b.ReportMetric(float64(fb.PrivFetch.Nanoseconds()), "privfetch-ns")
	b.ReportMetric(float64(fb.Template.Nanoseconds()), "template-ns")
	b.ReportMetric(float64(fb.LabelPropagation.Nanoseconds()), "labelprop-ns")
	b.ReportMetric(float64(fb.Other.Nanoseconds()), "other-ns")
}

// BenchmarkBackendPhases is E5: the Fig. 5 backend break-down.
func BenchmarkBackendPhases(b *testing.B) {
	bb, err := bench.MeasureBackendBreakdown(benchWorkload())
	if err != nil {
		b.Fatalf("breakdown: %v", err)
	}
	b.ReportMetric(float64(bb.Processing.Nanoseconds()), "processing-ns")
	b.ReportMetric(float64(bb.Serialisation.Nanoseconds()), "serialisation-ns")
	b.ReportMetric(float64(bb.LabelManagement.Nanoseconds()), "labelmgmt-ns")
}

// ---- ablation micro-benchmarks ----

// BenchmarkLabelDerive isolates sticky/fragile label composition.
func BenchmarkLabelDerive(b *testing.B) {
	a := label.NewSet(label.Conf("a"), label.Conf("b"), label.Int("i"))
	c := label.NewSet(label.Conf("b"), label.Conf("c"), label.Int("i"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = label.Derive(a, c)
	}
}

// BenchmarkLabelSetParse isolates wire-format label parsing.
func BenchmarkLabelSetParse(b *testing.B) {
	wire := label.NewSet(
		label.Conf("ecric.org.uk/mdt/7"),
		label.Conf("ecric.org.uk/patient/33812769"),
		label.Int("ecric.org.uk/mdt"),
	).String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := label.ParseSet(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClearanceCheck isolates the broker's per-delivery privilege
// check.
func BenchmarkClearanceCheck(b *testing.B) {
	privs := label.NewPrivileges().
		Grant(label.Clearance, label.MustParsePattern("label:conf:ecric.org.uk/*"))
	set := label.NewSet(label.Conf("ecric.org.uk/mdt/7"), label.Conf("ecric.org.uk/patient/1"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !privs.HasAll(label.Clearance, set) {
			b.Fatal("denied")
		}
	}
}

// BenchmarkSelectorMatch isolates content-based subscription matching.
func BenchmarkSelectorMatch(b *testing.B) {
	sel := selector.MustParse("type = 'cancer' AND stage BETWEEN 1 AND 3 AND hospital LIKE 'hospital-%'")
	attrs := map[string]string{"type": "cancer", "stage": "2", "hospital": "hospital-1"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !sel.MatchesAttrs(attrs) {
			b.Fatal("no match")
		}
	}
}

// BenchmarkSelectorParse isolates selector compilation.
func BenchmarkSelectorParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := selector.Parse("type = 'cancer' AND stage > 1 OR site IN ('C50.9', 'C18.2')"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStompRoundTrip isolates wire framing.
func BenchmarkStompRoundTrip(b *testing.B) {
	res := bench.StompRoundTripForBench(b.N)
	if res != nil {
		b.Fatal(res)
	}
}

// BenchmarkTaintConcat isolates label propagation through string
// concatenation (the paper's canonical taint operation).
func BenchmarkTaintConcat(b *testing.B) {
	x := taint.NewString("patient: ", label.Conf("a"))
	y := taint.NewString("John Smith", label.Conf("b"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Concat(y)
	}
}

// BenchmarkTaintRegexp isolates labelled submatch extraction.
func BenchmarkTaintRegexp(b *testing.B) {
	re := regexp.MustCompile(`(C\d+)\.(\d)`)
	subject := taint.NewString("diagnosis C50.9 confirmed", label.Conf("a"))
	for i := 0; i < b.N; i++ {
		if _, ok := taint.MatchRegexp(re, subject); !ok {
			b.Fatal("no match")
		}
	}
}

// BenchmarkTemplateRender isolates label-propagating page rendering on a
// realistic record table.
func BenchmarkTemplateRender(b *testing.B) {
	tmpl := template.MustParse("bench", `<table>
<% for r in records %><tr><td><%= r.id %></td><td><%= r.name %></td></tr><% end %>
</table>`)
	records := make([]taint.Doc, 50)
	for i := range records {
		records[i] = taint.Doc{
			"id":   taint.NewString(fmt.Sprint(i), label.Conf("mdt/7")),
			"name": taint.NewString("Patient Name", label.Conf("mdt/7")),
		}
	}
	ctx := template.Context{"records": records}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tmpl.Render(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDocWrap isolates the frontend's per-request document wrapping
// (Fig. 3 step 2).
func BenchmarkDocWrap(b *testing.B) {
	raw := []byte(`{"patient_id":"1","name":"John Smith","sites":["C50.9"],"max_stage":2,"completeness":0.87}`)
	labels := label.NewSet(label.Conf("mdt/7"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := taint.WrapJSON(raw, labels); err != nil {
			b.Fatal(err)
		}
	}
}
