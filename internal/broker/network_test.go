package broker

import (
	"errors"
	"testing"
	"time"

	"safeweb/internal/event"
	"safeweb/internal/label"
)

// startNetBroker runs a broker with a STOMP front on a loopback port.
func startNetBroker(t *testing.T) (*Broker, *Server) {
	t.Helper()
	b := New(testPolicy())
	srv, err := NewServer("127.0.0.1:0", b, ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		b.Close()
	})
	return b, srv
}

func dialBus(t *testing.T, addr, login string) *Client {
	t.Helper()
	c, err := DialBus(addr, ClientConfig{
		Login:       login,
		SendTimeout: 5 * time.Second,
		OnError:     func(err error) { t.Logf("bus error: %v", err) },
	})
	if err != nil {
		t.Fatalf("DialBus(%s): %v", login, err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// waitFor polls until fn returns true or the deadline passes.
func waitFor(t *testing.T, what string, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if fn() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNetworkPublishSubscribe(t *testing.T) {
	_, srv := startNetBroker(t)

	consumer := dialBus(t, srv.Addr(), "cleared")
	producer := dialBus(t, srv.Addr(), "producer")

	received := make(chan *event.Event, 10)
	if _, err := consumer.Subscribe("/patient_report", "type = 'cancer'", func(ev *event.Event) {
		received <- ev //lint:ignore noretain test collector retains the delivery; it is asserted on and never Released, so the pool cannot reclaim it
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	ev := event.New("/patient_report",
		map[string]string{"patient_id": "1", "type": "cancer"},
		label.Conf("ecric.org.uk/mdt/7"))
	ev.Body = []byte(`{"summary": "report"}`)
	if err := producer.Publish(ev); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// Non-matching selector value: filtered at the broker.
	if err := producer.Publish(event.New("/patient_report", map[string]string{"type": "screening"})); err != nil {
		t.Fatalf("Publish 2: %v", err)
	}

	select {
	case got := <-received:
		if got.Attr("patient_id") != "1" {
			t.Errorf("attrs = %v", got.Attrs)
		}
		if string(got.Body) != `{"summary": "report"}` {
			t.Errorf("body = %q", got.Body)
		}
		if !got.Labels.Contains(label.Conf("ecric.org.uk/mdt/7")) {
			t.Errorf("labels = %v", got.Labels)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event received")
	}
	select {
	case ev := <-received:
		t.Fatalf("unexpected second event: %v", ev)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestNetworkLabelFiltering(t *testing.T) {
	_, srv := startNetBroker(t)

	uncleared := dialBus(t, srv.Addr(), "uncleared")
	producer := dialBus(t, srv.Addr(), "producer")

	received := make(chan *event.Event, 10)
	if _, err := uncleared.Subscribe("/t", "", func(ev *event.Event) {
		received <- ev //lint:ignore noretain test collector retains the delivery; it is asserted on and never Released, so the pool cannot reclaim it
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	if err := producer.Publish(event.New("/t", nil, label.Conf("ecric.org.uk/mdt/7"))); err != nil {
		t.Fatalf("Publish labelled: %v", err)
	}
	if err := producer.Publish(event.New("/t", map[string]string{"public": "yes"})); err != nil {
		t.Fatalf("Publish public: %v", err)
	}

	select {
	case got := <-received:
		if got.Attr("public") != "yes" {
			t.Fatalf("uncleared client received labelled event: %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("public event not received")
	}
}

func TestNetworkEndorsementRejection(t *testing.T) {
	_, srv := startNetBroker(t)

	// The receipt-confirmed publish surfaces the rejection as an ERROR
	// frame; the server closes the connection per STOMP semantics, so the
	// receipt never arrives. The channel is buffered generously because
	// the read loop reports both the ERROR frame and the subsequent EOF.
	errs := make(chan error, 16)
	producer, err := DialBus(srv.Addr(), ClientConfig{
		Login:       "producer",
		SendTimeout: 500 * time.Millisecond,
		OnError:     func(e error) { errs <- e },
	})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	defer producer.Close()

	pubErr := producer.Publish(event.New("/t", nil, label.Int("ecric.org.uk/mdt")))
	if pubErr == nil {
		select {
		case <-errs:
		case <-time.After(5 * time.Second):
			t.Fatal("unendorsed integrity publish not rejected")
		}
	}
}

func TestNetworkUnsubscribe(t *testing.T) {
	b, srv := startNetBroker(t)

	consumer := dialBus(t, srv.Addr(), "wild")
	producer := dialBus(t, srv.Addr(), "producer")

	received := make(chan *event.Event, 10)
	id, err := consumer.Subscribe("/t", "", func(ev *event.Event) {
		received <- ev //lint:ignore noretain test collector retains the delivery; it is asserted on and never Released, so the pool cannot reclaim it
	})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	waitFor(t, "subscription registration", func() bool {
		return len(b.subsSnapshot()) == 1
	})
	if err := consumer.Unsubscribe(id); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	waitFor(t, "subscription removal", func() bool {
		return len(b.subsSnapshot()) == 0
	})
	if err := producer.Publish(event.New("/t", nil)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	select {
	case ev := <-received:
		t.Fatalf("event after unsubscribe: %v", ev)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestNetworkDisconnectCleansSubscriptions(t *testing.T) {
	b, srv := startNetBroker(t)

	consumer := dialBus(t, srv.Addr(), "wild")
	if _, err := consumer.Subscribe("/t", "", func(*event.Event) {}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	waitFor(t, "subscription registration", func() bool {
		return len(b.subsSnapshot()) == 1
	})
	if err := consumer.Close(); err != nil && !errors.Is(err, errors.New("")) {
		t.Logf("close: %v", err)
	}
	waitFor(t, "subscription cleanup on disconnect", func() bool {
		return len(b.subsSnapshot()) == 0
	})
}
