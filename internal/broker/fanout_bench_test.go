package broker

import (
	"fmt"
	"testing"

	"safeweb/internal/event"
	"safeweb/internal/label"
)

// BenchmarkBrokerFanout measures the publish→deliver hot path at several
// fan-out widths, with and without label enforcement in play. Every
// subscriber is cleared for the labelled event, so the benchmark exercises
// the clearance-check fast path rather than filtering.
func BenchmarkBrokerFanout(b *testing.B) {
	for _, subs := range []int{1, 10, 100, 1000} {
		for _, mode := range []struct {
			name string
			ev   func() *event.Event
		}{
			{"unlabelled", func() *event.Event { return event.New("/bench/topic", nil) }},
			{"labelled", func() *event.Event {
				return event.New("/bench/topic", nil, label.Conf("ecric.org.uk/mdt/7"))
			}},
		} {
			b.Run(fmt.Sprintf("subs=%d/%s", subs, mode.name), func(b *testing.B) {
				policy := label.NewPolicy()
				policy.Grant("bench-sub", label.Clearance,
					label.MustParsePattern("label:conf:ecric.org.uk/*"))
				br := New(policy)
				defer br.Close()

				var sink int
				for i := 0; i < subs; i++ {
					if _, err := br.Subscribe("bench-sub", "/bench/topic", "", func(ev *event.Event) {
						sink++
					}); err != nil {
						b.Fatalf("Subscribe: %v", err)
					}
				}
				ev := mode.ev()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := br.Publish("producer", ev); err != nil {
						b.Fatalf("Publish: %v", err)
					}
				}
				b.StopTimer()
				if sink != b.N*subs {
					b.Fatalf("delivered %d, want %d", sink, b.N*subs)
				}
				b.ReportMetric(float64(b.N*subs)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// BenchmarkBrokerFanoutMixedTopics measures indexed routing benefit: many
// subscriptions spread over distinct topics, so a linear scan pays for
// every subscription while an indexed broker touches only the matches.
func BenchmarkBrokerFanoutMixedTopics(b *testing.B) {
	const topics = 100
	policy := label.NewPolicy()
	br := New(policy)
	defer br.Close()

	var sink int
	for i := 0; i < topics; i++ {
		if _, err := br.Subscribe("s", fmt.Sprintf("/topic/%d", i), "", func(ev *event.Event) {
			sink++
		}); err != nil {
			b.Fatalf("Subscribe: %v", err)
		}
	}
	ev := event.New("/topic/42", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish("producer", ev); err != nil {
			b.Fatalf("Publish: %v", err)
		}
	}
}
