package stomp

import (
	"io"
	"strconv"
)

// WireImage is the preencoded, immutable wire form of one broadcast
// MESSAGE frame: the canonical header block and the content-length/body
// tail, with a splice point between them where per-delivery routing
// headers (subscription, message-id) are inserted by Encoder.EncodeImage.
//
// An image is encoded once — typically at first delivery of a published
// event — and then shared across every session and shard that delivers
// the event: fan-out to S sessions costs one marshal instead of S. The
// backing buffer is immutable after NewMessageImage returns; images are
// safe for concurrent use and must never be mutated.
type WireImage struct {
	// buf holds the full image: command line plus sorted base headers up
	// to split, content-length header, blank line, body and the NUL
	// terminator after it.
	buf   []byte
	split int
}

// Prefix returns the command line and canonical (sorted, escaped) header
// block, ending just before the splice point for the routing headers.
// The returned slice aliases the image and must not be modified.
func (img *WireImage) Prefix() []byte { return img.buf[:img.split:img.split] }

// Suffix returns the content-length header, the blank separator line, the
// body and the frame's NUL terminator. The returned slice aliases the
// image and must not be modified.
func (img *WireImage) Suffix() []byte { return img.buf[img.split:] }

// WireLen returns the encoded size of the image excluding the per-delivery
// routing headers.
func (img *WireImage) WireLen() int { return len(img.buf) }

// NewMessageImage encodes a MESSAGE frame with the given headers and body
// into a wire image. The subscription and message-id headers are reserved
// for per-delivery routing and are dropped if present, exactly as
// Encoder.EncodeMessage drops them; content-length is always derived from
// body. The bytes an image puts on the wire (with routing headers spliced
// in) are identical to EncodeMessage's for the same logical frame.
//
// headers and body are copied; the caller keeps ownership.
func NewMessageImage(headers map[string]string, body []byte) *WireImage {
	b := make([]byte, 0, imageSizeHint(headers, body))
	b = append(b, CmdMessage...)
	b = append(b, '\n')
	keys := sortedHeaderKeys(make([]string, 0, len(headers)), headers, HdrContentLength)
	for _, k := range keys {
		if k == HdrSubscription || k == HdrMessageID {
			continue
		}
		b = appendEscapedHeader(b, k)
		b = append(b, ':')
		b = appendEscapedHeader(b, headers[k])
		b = append(b, '\n')
	}
	split := len(b)
	b = append(b, HdrContentLength...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, '\n', '\n')
	b = append(b, body...)
	b = append(b, 0)
	return &WireImage{buf: b, split: split}
}

// imageSizeHint estimates the encoded size so the common case builds the
// image in a single allocation.
func imageSizeHint(headers map[string]string, body []byte) int {
	n := len(CmdMessage) + len(HdrContentLength) + 24 + len(body)
	for k, v := range headers {
		n += len(k) + len(v) + 2
	}
	return n
}

// EncodeImage writes a preencoded MESSAGE image to w with the per-delivery
// subscription and message-id (idPrefix followed by the decimal seq)
// routing headers spliced between the image's header block and its tail.
// Only the routing headers are encoded per delivery; the shared image is
// written as-is, so a fan-out burst pays the header/body marshalling cost
// once per published event rather than once per session.
func (e *Encoder) EncodeImage(w io.Writer, img *WireImage, subscription, idPrefix string, seq uint64) error {
	if _, err := w.Write(img.Prefix()); err != nil {
		return err
	}
	b := e.buf[:0]
	b = append(b, HdrSubscription...)
	b = append(b, ':')
	b = appendEscapedHeader(b, subscription)
	b = append(b, '\n')
	b = append(b, HdrMessageID...)
	b = append(b, ':')
	b = appendEscapedHeader(b, idPrefix)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, '\n')
	if cap(b) <= maxRetainedEncodeBuf {
		e.buf = b[:0]
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.Write(img.Suffix())
	return err
}
