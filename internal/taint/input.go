package taint

import (
	"html"
	"strings"

	"safeweb/internal/label"
)

// Input taint: protection against injection attacks (paper §4.4, last
// paragraph). Ruby marks objects originating from the user with a `taint`
// flag that propagates through string processing, "similar to our label
// propagation"; "in the context of web applications, this mechanism can
// be used to ensure that every string is sanitised before being used in a
// sensitive operation, such as an HTML response or an SQL query."
//
// This reproduction models the flag as a reserved *sticky* marker carried
// in the value's label set: FromUser attaches it, every derived value
// inherits it through the ordinary confidentiality-composition rules, and
// sanitisation transforms remove it. The webfront response writer refuses
// to release a response still carrying the marker, which is the "HTML
// response" sink check; SanitizeSQL covers selector/query interpolation.
//
// The marker lives under a safeweb-internal authority and never appears
// in policies, stored documents or wire formats: boundary code uses
// PublicLabels to strip it.

// UserInputAuthority is the reserved label namespace for the marker.
const UserInputAuthority = "safeweb.internal"

// userTaintName is the marker label's name.
const userTaintName = UserInputAuthority + "/user-input"

// UserTaintLabel is the sticky marker attached to unsanitised user input.
func UserTaintLabel() label.Label { return label.Conf(userTaintName) }

// FromUser wraps raw user input (form fields, query parameters, path
// segments) as a labelled string carrying the user-input marker. Any
// value derived from it — by Concat, Sprintf, Replace, template
// interpolation — carries the marker too.
func FromUser(s string) String {
	return String{s: s, labels: label.NewSet(UserTaintLabel())}
}

// IsUserTainted reports whether the string derives from unsanitised user
// input.
func (s String) IsUserTainted() bool {
	return s.labels.Contains(UserTaintLabel())
}

// SanitizeHTML returns the string HTML-escaped with the user-input marker
// removed — safe for HTML response sinks.
func (s String) SanitizeHTML() String {
	return String{
		s:      html.EscapeString(s.s),
		labels: s.labels.Without(UserTaintLabel()),
	}
}

// SanitizeSQL returns the string with single quotes doubled (SQL string
// literal escaping) and the marker removed, for interpolation into
// SQL-style selector expressions.
func (s String) SanitizeSQL() String {
	return String{
		s:      strings.ReplaceAll(s.s, "'", "''"),
		labels: s.labels.Without(UserTaintLabel()),
	}
}

// DeclareSanitized removes the marker without transforming the content,
// for application-specific validators (e.g. a parser that accepted the
// input as a well-formed patient id). It is the audited escape hatch.
func (s String) DeclareSanitized() String {
	return String{s: s.s, labels: s.labels.Without(UserTaintLabel())}
}

// PublicLabels returns the string's labels with the internal user-input
// marker removed — the set that stores, events and policy checks should
// see. The marker is a frontend-local mechanism, not a policy label.
func (s String) PublicLabels() label.Set {
	return s.labels.Without(UserTaintLabel())
}
