package engine

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/event"
	"safeweb/internal/label"
)

// newTestRig builds a broker + engine pair over the given policy.
func newTestRig(t *testing.T, policy *label.Policy) (*broker.Broker, *Engine) {
	t.Helper()
	b := broker.New(policy)
	e, err := New(Config{
		Policy: policy,
		Bus: func(principal string) (broker.Bus, error) {
			return b.Endpoint(principal), nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		e.Stop()
		b.Close()
	})
	return b, e
}

// mdtPolicy gives the units used in these tests privileges mirroring the
// MDT application: producer is privileged; aggregator has clearance over
// all patient labels; storage is privileged with clearance.
func mdtPolicy() *label.Policy {
	p := label.NewPolicy()
	all := label.MustParsePattern("label:conf:ecric.org.uk/*")
	p.Grant("aggregator", label.Clearance, all)
	p.Grant("storage", label.Clearance, all)
	p.SetPrincipal("producer", label.NewPrivileges().
		Grant(label.Clearance, all).
		Grant(label.Endorse, label.MustParsePattern("label:int:ecric.org.uk/*")), true)
	p.SetPrincipal("storage-priv", label.NewPrivileges().Grant(label.Clearance, all), true)
	return p
}

func TestLabelsPropagateThroughCallback(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	out := make(chan *event.Event, 1)
	// Aggregator republishes incoming events to /out without touching
	// labels.
	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			return ctx.Publish("/out", map[string]string{"from": "agg"}, nil)
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	// Storage collects /out.
	err = e.AddUnit(&FuncUnit{UnitName: "storage", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/out", "", func(ctx *Context, ev *event.Event) error {
			// Delivered events are released to the pool after the
			// callback; Clone what outlives it.
			out <- ev.Clone()
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit storage: %v", err)
	}

	patient := label.Conf("ecric.org.uk/patient/1")
	if err := b.Publish("producer", event.New("/in", nil, patient)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	e.Drain()

	select {
	case ev := <-out:
		if !ev.Labels.Contains(patient) {
			t.Errorf("label lost in propagation: %v", ev.Labels)
		}
	default:
		t.Fatal("no output event")
	}
}

func TestDeclassifyRequiresPrivilege(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	patient := label.Conf("ecric.org.uk/patient/1")
	cbErrs := make(chan error, 2)

	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			// Non-privileged unit attempts to strip the label.
			err := ctx.Publish("/out", nil, nil, WithRemove(patient))
			cbErrs <- err
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	if err := b.Publish("producer", event.New("/in", nil, patient)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	e.Drain()

	pubErr := <-cbErrs
	var fe *label.FlowError
	if !errors.As(pubErr, &fe) || fe.Op != "declassify" {
		t.Fatalf("declassify error = %v", pubErr)
	}
	if e.Stats().FlowViolations != 1 {
		t.Errorf("FlowViolations = %d", e.Stats().FlowViolations)
	}
}

func TestPrivilegedUnitDeclassifies(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	patient := label.Conf("ecric.org.uk/patient/1")
	out := make(chan *event.Event, 1)

	err := e.AddUnit(&FuncUnit{UnitName: "storage-priv", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			return ctx.Publish("/out", nil, nil, WithRemoveAll())
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	err = e.AddUnit(&FuncUnit{UnitName: "sink", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/out", "", func(ctx *Context, ev *event.Event) error {
			out <- ev.Clone() // events are pooled once the callback returns
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit sink: %v", err)
	}

	if err := b.Publish("producer", event.New("/in", nil, patient)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	e.Drain()

	select {
	case ev := <-out:
		if !ev.Labels.IsEmpty() {
			t.Errorf("labels after privileged declassification: %v", ev.Labels)
		}
	default:
		t.Fatal("declassified event not delivered")
	}
}

// TestPaperListing1 reproduces the unit of Listing 1: it accumulates
// patient ids from /patient_report events in the store and publishes a
// daily report on /next_day with the patient-list label replacing the
// tracked labels.
func TestPaperListing1(t *testing.T) {
	policy := mdtPolicy()
	listLabel := label.Conf("ecric.org.uk/patient_list")
	// The reporter needs clearance (from mdtPolicy pattern) plus
	// declassify over patient labels and nothing else.
	policy.SetPrincipal("reporter", label.NewPrivileges().
		Grant(label.Clearance, label.MustParsePattern("label:conf:ecric.org.uk/*")).
		Grant(label.Declassify, label.MustParsePattern("label:conf:ecric.org.uk/patient/*")), false)
	policy.Grant("sink", label.Clearance, label.MustParsePattern("label:conf:ecric.org.uk/*"))

	b, e := newTestRig(t, policy)
	daily := make(chan *event.Event, 1)

	err := e.AddUnit(&FuncUnit{UnitName: "reporter", InitFunc: func(ctx *InitContext) error {
		if err := ctx.Subscribe("/patient_report", "type = 'cancer'", func(ctx *Context, ev *event.Event) error {
			list, _ := ctx.Get("patient_list")
			if list != "" {
				list += ","
			}
			list += ev.Attr("patient_id")
			return ctx.Set("patient_list", list)
		}); err != nil {
			return err
		}
		return ctx.Subscribe("/next_day", "", func(ctx *Context, ev *event.Event) error {
			list, _ := ctx.Get("patient_list")
			return ctx.Publish("/daily_report", map[string]string{"list": list}, nil,
				WithRemoveAll(), WithAdd(listLabel))
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit reporter: %v", err)
	}
	err = e.AddUnit(&FuncUnit{UnitName: "sink", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/daily_report", "", func(ctx *Context, ev *event.Event) error {
			daily <- ev.Clone() // events are pooled once the callback returns
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit sink: %v", err)
	}

	p1 := label.Conf("ecric.org.uk/patient/1")
	p2 := label.Conf("ecric.org.uk/patient/2")
	pub := func(ev *event.Event) {
		t.Helper()
		if err := b.Publish("producer", ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	pub(event.New("/patient_report", map[string]string{"type": "cancer", "patient_id": "1"}, p1))
	pub(event.New("/patient_report", map[string]string{"type": "cancer", "patient_id": "2"}, p2))
	pub(event.New("/patient_report", map[string]string{"type": "screening", "patient_id": "3"}))
	e.Drain()
	pub(event.New("/next_day", nil))
	e.Drain()

	select {
	case ev := <-daily:
		if got := ev.Attr("list"); got != "1,2" {
			t.Errorf("daily list = %q, want \"1,2\"", got)
		}
		// The patient labels were declassified and replaced by the list
		// label — exactly Listing 1 lines 8-9.
		if !ev.Labels.Equal(label.NewSet(listLabel)) {
			t.Errorf("daily labels = %v, want only %v", ev.Labels, listLabel)
		}
	default:
		t.Fatal("no daily report")
	}
}

func TestStoreLabelFlow(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	p1 := label.Conf("ecric.org.uk/patient/1")
	p2 := label.Conf("ecric.org.uk/patient/2")
	results := make(chan label.Set, 1)

	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		if err := ctx.Subscribe("/write", "", func(ctx *Context, ev *event.Event) error {
			// Tracked labels (from the event) become the key's labels.
			return ctx.Set("state", ev.Attr("v"))
		}); err != nil {
			return err
		}
		return ctx.Subscribe("/read", "", func(ctx *Context, ev *event.Event) error {
			// Reading merges the key's labels into the tracked set.
			_, _ = ctx.Get("state")
			results <- ctx.Labels()
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}

	if err := b.Publish("producer", event.New("/write", map[string]string{"v": "x"}, p1)); err != nil {
		t.Fatalf("Publish write: %v", err)
	}
	e.Drain()
	if err := b.Publish("producer", event.New("/read", nil, p2)); err != nil {
		t.Fatalf("Publish read: %v", err)
	}
	e.Drain()

	got := <-results
	if !got.Contains(p1) || !got.Contains(p2) {
		t.Errorf("tracked labels after store read = %v, want both patients", got)
	}
}

func TestCallbackPanicContained(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	var mu sync.Mutex
	var reported []string
	e.cfg.OnCallbackError = func(unit string, ev *event.Event, err error) {
		mu.Lock()
		reported = append(reported, fmt.Sprintf("%s: %v", unit, err))
		mu.Unlock()
	}

	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			panic("unit bug")
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	if err := b.Publish("producer", event.New("/in", nil)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	e.Drain()

	if e.Stats().CallbackErrors != 1 {
		t.Errorf("CallbackErrors = %d", e.Stats().CallbackErrors)
	}
	mu.Lock()
	firstReported := append([]string(nil), reported...)
	mu.Unlock() // must not hold mu across the next Drain: the error hook locks it
	if len(firstReported) != 1 || !strings.Contains(firstReported[0], "unit bug") {
		t.Errorf("reported = %v", firstReported)
	}

	// A second event still processes: the engine survived the panic.
	if err := b.Publish("producer", event.New("/in", nil)); err != nil {
		t.Fatalf("Publish 2: %v", err)
	}
	e.Drain()
	if e.Stats().EventsProcessed != 2 {
		t.Errorf("EventsProcessed = %d", e.Stats().EventsProcessed)
	}
}

func TestJailDeniesIOForNonPrivileged(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	ioErrs := make(chan error, 1)
	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			// Buggy logging code tries to write patient data to disk
			// (the paper's §3.1 example of a bug IFC contains).
			_, err := ctx.Jail().FS().Create("/tmp/leak.log")
			ioErrs <- err
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	if err := b.Publish("producer", event.New("/in", nil)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	e.Drain()

	if err := <-ioErrs; err == nil {
		t.Fatal("jailed unit performed I/O")
	}
	if e.Audit().Len() != 1 {
		t.Errorf("audit len = %d", e.Audit().Len())
	}
}

func TestSubscriptionOrderPreserved(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	var mu sync.Mutex
	var order []string
	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			mu.Lock()
			order = append(order, ev.Attr("n"))
			mu.Unlock()
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	for i := 0; i < 50; i++ {
		if err := b.Publish("producer", event.New("/in", map[string]string{"n": fmt.Sprint(i)})); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	e.Drain()
	mu.Lock()
	defer mu.Unlock()
	for i, n := range order {
		if n != fmt.Sprint(i) {
			t.Fatalf("order[%d] = %s", i, n)
		}
	}
}

func TestAddUnitValidation(t *testing.T) {
	policy := mdtPolicy()
	_, e := newTestRig(t, policy)

	if err := e.AddUnit(&FuncUnit{UnitName: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := e.AddUnit(&FuncUnit{UnitName: "u"}); err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	if err := e.AddUnit(&FuncUnit{UnitName: "u"}); err == nil {
		t.Error("duplicate unit accepted")
	}
	failing := &FuncUnit{UnitName: "bad", InitFunc: func(*InitContext) error {
		return errors.New("boom")
	}}
	if err := e.AddUnit(failing); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("failing init: %v", err)
	}
}

func TestInitContextInvalidAfterInit(t *testing.T) {
	policy := mdtPolicy()
	_, e := newTestRig(t, policy)

	var leaked *InitContext
	if err := e.AddUnit(&FuncUnit{UnitName: "u", InitFunc: func(ctx *InitContext) error {
		leaked = ctx
		return nil
	}}); err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	if err := leaked.Subscribe("/t", "", func(*Context, *event.Event) error { return nil }); err == nil {
		t.Error("retained InitContext still subscribes")
	}
	if err := leaked.Publish("/t", nil, nil); err == nil {
		t.Error("retained InitContext still publishes")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing policy accepted")
	}
	if _, err := New(Config{Policy: label.NewPolicy()}); err == nil {
		t.Error("missing bus accepted")
	}
}

func TestIntegrityEndorsementInContext(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	mdtInt := label.Int("ecric.org.uk/mdt")
	errs := make(chan error, 2)

	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			errs <- ctx.AddLabels(mdtInt)                          // aggregator: no endorse privilege
			errs <- ctx.Publish("/out", nil, nil, WithAdd(mdtInt)) // also denied
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	if err := b.Publish("producer", event.New("/in", nil)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	e.Drain()

	for i := 0; i < 2; i++ {
		err := <-errs
		var fe *label.FlowError
		if !errors.As(err, &fe) || fe.Op != "endorse" {
			t.Errorf("endorse attempt %d: err = %v", i, err)
		}
	}
}

// TestStopConcurrentWithAddUnit races Stop against an AddUnit whose Init
// registers subscriptions. Whichever side wins, every subscription worker
// goroutine must be torn down — an AddUnit that loses the race used to
// leak its workers because Stop never saw the unit's queues.
func TestStopConcurrentWithAddUnit(t *testing.T) {
	policy := mdtPolicy()
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		b := broker.New(policy)
		e, err := New(Config{
			Policy: policy,
			Bus: func(principal string) (broker.Bus, error) {
				return b.Endpoint(principal), nil
			},
			Logf: t.Logf,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
				for j := 0; j < 4; j++ {
					if err := ctx.Subscribe("/in", "", func(*Context, *event.Event) error {
						return nil
					}); err != nil {
						return err
					}
				}
				return nil
			}})
		}()
		go func() {
			defer wg.Done()
			e.Stop()
		}()
		wg.Wait()
		e.Stop()
		b.Close()
	}
	// Leaked subscription workers would accumulate across iterations; give
	// legitimately exiting goroutines a moment to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+5 {
		t.Errorf("goroutines grew from %d to %d; subscription workers leaked", before, n)
	}
}

// TestContextInvalidAfterCallback: the pooled per-worker Context is
// invalidated between callbacks, so a retained Context fails loudly
// instead of acting with a later event's tracked labels.
func TestContextInvalidAfterCallback(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	leaked := make(chan *Context, 1)
	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			select {
			case leaked <- ctx:
			default:
			}
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	if err := b.Publish("producer", event.New("/in", nil)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	e.Drain()

	ctx := <-leaked
	if err := ctx.Publish("/out", nil, nil); !errors.Is(err, ErrContextInvalid) {
		t.Errorf("Publish on retained Context: err = %v, want ErrContextInvalid", err)
	}
	if err := ctx.Set("k", "v"); !errors.Is(err, ErrContextInvalid) {
		t.Errorf("Set on retained Context: err = %v, want ErrContextInvalid", err)
	}
	if err := ctx.AddLabels(label.Conf("ecric.org.uk/x")); !errors.Is(err, ErrContextInvalid) {
		t.Errorf("AddLabels on retained Context: err = %v, want ErrContextInvalid", err)
	}
	if _, ok := ctx.Get("k"); ok {
		t.Error("Get on retained Context succeeded")
	}
}

// TestSubQueuePushAfterClose: a delivery that lost the race against queue
// teardown (publisher routed through a pre-unsubscribe route-table
// snapshot) is dropped, not a send on a closed channel.
func TestSubQueuePushAfterClose(t *testing.T) {
	q := &subQueue{ch: make(chan queuedEvent, 1)}
	if !q.push(queuedEvent{}) {
		t.Fatal("push on open queue rejected")
	}
	go func() {
		for range q.ch {
		}
	}()
	q.close()
	if q.push(queuedEvent{}) {
		t.Error("push on closed queue accepted")
	}
}

func TestStopIdempotentAndDrains(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	processed := make(chan struct{}, 100)
	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			processed <- struct{}{}
			return nil
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	for i := 0; i < 20; i++ {
		_ = b.Publish("producer", event.New("/in", nil))
	}
	e.Stop()
	e.Stop() // idempotent
	if len(processed) != 20 {
		t.Errorf("processed %d events before stop, want 20", len(processed))
	}
	if err := e.AddUnit(&FuncUnit{UnitName: "late"}); err == nil {
		t.Error("AddUnit after Stop accepted")
	}
}
