// Command safeweb-bench regenerates every quantitative artefact of the
// paper's evaluation section (§5.2, §5.3, Figure 5):
//
//	safeweb-bench -exp all         run everything (default)
//	safeweb-bench -exp security    E1: §5.2 vulnerability matrix
//	safeweb-bench -exp frontend    E2: page generation with/without tracking
//	safeweb-bench -exp backend     E3: event latency with/without IFC
//	safeweb-bench -exp fig5        E4+E5: Figure 5 latency break-downs
//	safeweb-bench -exp throughput  E6: event throughput
//	safeweb-bench -exp tcb         E7: trusted codebase accounting
//
// Flags -requests, -events, -patients and -authwork scale the workloads;
// -network routes the backend experiments through the STOMP network
// broker (the paper's deployment shape) instead of the in-process broker.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"safeweb/internal/bench"
	"safeweb/internal/vulninject"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|security|frontend|backend|fig5|throughput|tcb")
	requests := flag.Int("requests", 1000, "requests/events per latency mode")
	events := flag.Int("events", 50000, "events per throughput mode")
	patients := flag.Int("patients", 120, "synthetic registry size")
	authWork := flag.Int("authwork", 2000, "credential-hash work factor")
	network := flag.Bool("network", false, "use the STOMP network broker for backend experiments")
	root := flag.String("root", ".", "repository root for the TCB accounting")
	flag.Parse()

	w := bench.Workload{
		Patients: *patients,
		Requests: *requests,
		AuthWork: *authWork,
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "safeweb-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("security", func() error { return runSecurity() })
	run("frontend", func() error { return runFrontend(w) })
	run("backend", func() error { return runBackend(w, *network) })
	run("fig5", func() error { return runFig5(w) })
	run("throughput", func() error { return runThroughput(*events, *network) })
	run("tcb", func() error { return runTCB(*root) })
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runSecurity() error {
	header("E1 — §5.2 security evaluation (vulnerability injection)")
	outcomes, err := vulninject.RunAll(nil)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vulnerability class\twithout SafeWeb\twith SafeWeb\tpaper")
	for _, o := range outcomes {
		baseline := "no disclosure"
		if o.BaselineDisclosed {
			baseline = "data disclosed"
		}
		prevented := "DISCLOSED"
		if o.SafeWebPrevented {
			prevented = "blocked"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\tprevented\n", o.Name, baseline, prevented)
	}
	return tw.Flush()
}

func runFrontend(w bench.Workload) error {
	header("E2 — §5.3 front-page generation time")
	cmp, err := bench.PageGeneration(w)
	if err != nil {
		return err
	}
	printComparison(cmp, "page generation")
	return nil
}

func runBackend(w bench.Workload, network bool) error {
	header("E3 — §5.3 backend event latency (producer → storage)")
	cmp, err := bench.EventLatency(w, network)
	if err != nil {
		return err
	}
	printComparison(cmp, "event latency")
	return nil
}

func printComparison(cmp bench.Comparison, what string) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "mode\tmean %s\tpaper\n", what)
	fmt.Fprintf(tw, "baseline (no tracking)\t%v\t%s\n", cmp.Baseline.Mean, cmp.PaperBaseline)
	fmt.Fprintf(tw, "safeweb\t%v\t%s\n", cmp.SafeWeb.Mean, cmp.PaperSafeWeb)
	_ = tw.Flush()
	fmt.Printf("overhead: %+.1f%% (paper: +14%%/+15%%)\n", cmp.OverheadPercent())
}

func runFig5(w bench.Workload) error {
	header("E4 — Figure 5 frontend latency break-down")
	front, err := bench.MeasureFrontendBreakdown(w)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tmeasured\tpaper")
	fmt.Fprintf(tw, "authentication\t%v\t87 ms\n", front.Auth)
	fmt.Fprintf(tw, "privilege fetching\t%v\t3 ms\n", front.PrivFetch)
	fmt.Fprintf(tw, "template rendering\t%v\t63 ms\n", front.Template)
	fmt.Fprintf(tw, "label propagation\t%v\t17 ms\n", front.LabelPropagation)
	fmt.Fprintf(tw, "other\t%v\t10 ms\n", front.Other)
	fmt.Fprintf(tw, "total\t%v\t180 ms\n", front.Total)
	if err := tw.Flush(); err != nil {
		return err
	}

	header("E5 — Figure 5 backend latency break-down")
	back, err := bench.MeasureBackendBreakdown(w)
	if err != nil {
		return err
	}
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tmeasured\tpaper")
	fmt.Fprintf(tw, "event processing\t%v\t51 ms\n", back.Processing)
	fmt.Fprintf(tw, "data (de)serialisation\t%v\t20 ms\n", back.Serialisation)
	fmt.Fprintf(tw, "label management\t%v\t13 ms\n", back.LabelManagement)
	fmt.Fprintf(tw, "total (with SafeWeb)\t%v\t84 ms\n", back.Total)
	return tw.Flush()
}

func runThroughput(events int, network bool) error {
	header("E6 — §5.3 event throughput (producer → consumer)")
	cmp, err := bench.Throughput(events, network)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tevents/s\tpaper")
	fmt.Fprintf(tw, "baseline (no tracking)\t%.0f\t%s\n", cmp.Baseline.EventsPerSecond, cmp.PaperBaseline)
	fmt.Fprintf(tw, "safeweb\t%.0f\t%s\n", cmp.SafeWeb.EventsPerSecond, cmp.PaperSafeWeb)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("change: %+.1f%% (paper: −17%%)\n", cmp.ChangePercent())
	return nil
}

func runTCB(root string) error {
	header("E7 — §5.2 trusted codebase accounting")
	sum, err := bench.Summarise(root)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "package\ttrusted\tsource LOC\ttest LOC")
	for _, p := range sum.Packages {
		trusted := ""
		if p.Trusted {
			trusted = "yes"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n", p.Package, trusted, p.Lines, p.TestLines)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("\ntrusted (audited once): %d LOC — paper: taint lib 1943 + engine 1908\n", sum.TrustedLines)
	fmt.Printf("untrusted application code (protected by the safety net): %d LOC — paper: 2841 of the MDT app\n", sum.UntrustedLines)
	fmt.Printf("test code: %d LOC\n", sum.TestLines)
	return nil
}
