// Package journal implements the append-only event log behind SafeWeb's
// durable topics: a fixed-size segment log whose records carry a
// published event's preencoded STOMP MESSAGE image (stomp.WireImage)
// verbatim, plus the topic, label header and timestamp replay needs to
// re-route and re-check it.
//
// One Journal is one topic's log, a directory of numbered segment files
// plus an ack log. The design goals, in order:
//
//   - Zero re-marshal. Append stores the wire image the fan-out path
//     already encoded; replay serves those bytes straight back to the
//     wire. Neither direction touches the event codec.
//   - Fail-closed recovery. Every record is CRC-32C framed; Open scans
//     the log and truncates the torn tail a crash mid-append leaves
//     behind, so the journal never replays half a record.
//   - Idempotent cumulative acks. A consumer group's progress is a single
//     monotonic offset ("records below N are processed"), persisted as
//     append-only ack records whose live value is the maximum — the same
//     CAS-max discipline the credit window uses, so duplicated or
//     reordered acks can never regress a group.
//   - Clearance at read time. Records keep the event's label header;
//     the broker re-parses and re-enforces clearance on every replay, so
//     a policy change between write and read is honoured (package broker
//     owns that check; the journal just preserves the evidence).
//   - Bounded storage. The log has a moving lower bound, FirstOffset:
//     whole segments are deleted once every consumer group's cumulative
//     ack covers them (Compact), or once the time/size retention windows
//     expire them (enforced on every segment roll and on Compact). Reads
//     below FirstOffset fail ErrOffsetCompacted — a consumer that fell
//     behind retention is told so, never silently skipped. The active
//     segment is never deleted, so the offset counter always survives a
//     restart.
//
// Offsets are dense record indexes starting at zero; [FirstOffset,
// NextOffset) is the readable range. The fsync policy is explicit:
// SyncNever trusts the OS page cache, SyncAlways syncs every append, and
// SyncBatch coalesces fsyncs at a byte/interval threshold — a batched
// record is only published (readable, and so replayable-as-durable) once
// its batch has reached stable storage.
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncNever never fsyncs: appends are durable against process crash
	// (the write hits the page cache) but not against power loss. The
	// default, and what the durable fan-out benchmark measures.
	SyncNever SyncPolicy = iota
	// SyncBatch coalesces fsyncs: appends accumulate until
	// Options.SyncBatchBytes are pending or Options.SyncBatchInterval has
	// elapsed since the first unsynced append, then one fsync covers the
	// whole batch. A batched record is not published — NextOffset does not
	// cover it and tailing replay cannot see it — until its batch is
	// synced, so everything readable is also durable against power loss.
	SyncBatch
	// SyncAlways fsyncs after every event append and every ack.
	SyncAlways
)

// ParseSyncPolicy parses a policy name as used by configuration flags:
// "never", "batch" or "always".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never":
		return SyncNever, nil
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("journal: unknown sync policy %q (want never, batch or always)", s)
}

// String returns the flag-form name of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// defaultSegmentSize is the segment roll threshold when Options leaves it
// zero.
const defaultSegmentSize = 64 << 20

// Defaults for the SyncBatch thresholds when Options leaves them zero.
const (
	defaultSyncBatchBytes    = 256 << 10
	defaultSyncBatchInterval = 2 * time.Millisecond
)

// segmentSuffix names segment files: "<base offset, 20 digits>.seg".
const segmentSuffix = ".seg"

// ackLogName is the per-journal ack log file; ackTmpName is the scratch
// file its compaction rewrite stages through (renamed into place, so a
// crash mid-rewrite leaves the longer original intact).
const (
	ackLogName = "acks.log"
	ackTmpName = ackLogName + ".tmp"
)

// Options configures a Journal.
type Options struct {
	// SegmentSize is the roll threshold in bytes: an append that would
	// grow the active segment past it starts a new segment (a single
	// record larger than the threshold still gets a segment to itself).
	// Zero means 64 MiB.
	SegmentSize int64
	// Sync is the fsync policy; the zero value is SyncNever.
	Sync SyncPolicy
	// SyncBatchBytes and SyncBatchInterval bound a SyncBatch batch: the
	// batch is synced (and its records published) once this many bytes
	// are pending, or this long after its first append, whichever comes
	// first. Zero selects the defaults (256 KiB, 2ms). Ignored outside
	// SyncBatch.
	SyncBatchBytes    int64
	SyncBatchInterval time.Duration
	// RetentionAge, when positive, expires whole segments: a non-active
	// segment whose newest record is older than this is deleted on the
	// next segment roll or Compact, acked or not — retention is the
	// storage bound, the ack prefix is only the fast path.
	RetentionAge time.Duration
	// RetentionBytes, when positive, bounds the journal directory's
	// segment bytes: rolls and Compact delete oldest segments first until
	// the total — counting the active segment at its full roll threshold,
	// so the bound holds even after it fills — fits the budget. The
	// active segment is never deleted, so budgets below 2× SegmentSize
	// degrade to "active segment only".
	RetentionBytes int64
	// OnCompact, when non-nil, observes every compaction pass that
	// deleted at least one segment. It is called with internal locks held
	// and must not call back into the Journal or block.
	OnCompact func(CompactStats)
}

// CompactStats summarises one compaction pass.
type CompactStats struct {
	// AckedSegments counts segments deleted because every consumer
	// group's cumulative ack covered them; RetentionSegments counts
	// segments the time/size windows deleted regardless of acks.
	AckedSegments     int
	RetentionSegments int
	// FirstOffset is the journal's lowest retained offset after the pass.
	FirstOffset int64
}

// ErrOffsetOutOfRange reports a Read at an offset the journal does not
// hold (negative, or at/past NextOffset).
var ErrOffsetOutOfRange = errors.New("journal: offset out of range")

// ErrOffsetCompacted reports a Read below FirstOffset: the record existed
// but compaction or retention deleted its segment. Callers resume from
// FirstOffset — and say so; a consumer must never silently miss records.
var ErrOffsetCompacted = errors.New("journal: offset compacted away")

// errClosed reports use of a closed journal.
var errClosed = errors.New("journal: closed")

// segment is one log file: records [base, base+len(pos)).
type segment struct {
	base int64
	f    *os.File
	size int64
	// pos holds each record's byte offset within the file; a record's
	// framed length runs to the next entry (or to size for the last).
	pos []int64
	// lastTime is the newest record's timestamp (UnixNano), the segment's
	// age for RetentionAge.
	lastTime int64
	// dirty marks bytes written but not yet fsynced (SyncBatch only).
	dirty bool
}

// Journal is one topic's append-only log. All methods are safe for
// concurrent use; appends are serialised, reads run concurrently with
// appends (a reader never sees a record before NextOffset covers it).
//
// Lock order: mu before ackMu.
type Journal struct {
	dir           string
	segSize       int64
	sync          SyncPolicy
	batchBytes    int64
	batchInterval time.Duration
	retainAge     time.Duration
	retainBytes   int64
	onCompact     func(CompactStats)

	// next is the offset the next append publishes — the exclusive upper
	// bound of readable offsets. Advanced only after the record is fully
	// written (and, under SyncBatch, fsynced), so a concurrent reader
	// bounded by NextOffset only ever reads committed bytes.
	next atomic.Int64
	// first is the lowest retained offset: compaction and retention
	// advance it by whole segments. Reads below it fail
	// ErrOffsetCompacted.
	first atomic.Int64

	// signal is closed (and replaced) after every committed append — the
	// tailing-replay wakeup. Grab AppendSignal before reading NextOffset
	// and no append can slip between the check and the wait.
	signal atomic.Pointer[chan struct{}]

	mu     sync.Mutex // guards segs, scratch and append/roll/compact
	segs   []*segment
	buf    []byte // append scratch, reused
	closed bool
	// written is the offset the next append receives; it runs ahead of
	// next under SyncBatch (written-but-unpublished batch) and equals it
	// otherwise.
	written int64
	// unsynced is the byte count of the pending SyncBatch batch;
	// flushTimer is its interval alarm.
	unsynced   int64
	flushTimer *time.Timer
	// appendErr is sticky: set when a failed write's tail restoration (or
	// a batch fsync) fails, leaving the log in a state a further append
	// would corrupt. Every later append fails with it — fail closed; a
	// reopen repairs the tail.
	appendErr error

	ackMu   sync.Mutex
	ackF    *os.File
	ackSize int64 // committed ack-log length, the tail-restore point
	// ackDirty marks ack bytes written but not yet fsynced (SyncBatch).
	ackDirty bool
	// ackErr is the ack log's sticky failure, mirroring appendErr.
	ackErr error
	acked  map[string]int64
	ackBuf []byte

	// writeHook, when non-nil, intercepts segment and ack-log writes —
	// the fault-injection seam the recovery tests use.
	writeHook func(f *os.File, b []byte) (int, error)
	// now is the clock RetentionAge compares against, injectable in
	// tests.
	now func() int64
}

// Open opens (creating if needed) the journal in dir, scanning every
// segment to rebuild the offset index and truncating any torn tail the
// last crash left in the final segment or the ack log. The first segment
// present may start at any base — a compacted prefix — but the segments
// present must be contiguous: corruption in the interior of the log (a
// non-final segment, or a gap between segments) is not repairable and
// fails Open.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if opts.SyncBatchBytes <= 0 {
		opts.SyncBatchBytes = defaultSyncBatchBytes
	}
	if opts.SyncBatchInterval <= 0 {
		opts.SyncBatchInterval = defaultSyncBatchInterval
	}
	switch opts.Sync {
	case SyncNever, SyncBatch, SyncAlways:
	default:
		return nil, fmt.Errorf("journal: unknown sync policy %d", opts.Sync)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	// A crash between staging the ack-log rewrite and renaming it into
	// place leaves the scratch file behind; the original ack log is still
	// authoritative.
	_ = os.Remove(filepath.Join(dir, ackTmpName))
	j := &Journal{
		dir:           dir,
		segSize:       opts.SegmentSize,
		sync:          opts.Sync,
		batchBytes:    opts.SyncBatchBytes,
		batchInterval: opts.SyncBatchInterval,
		retainAge:     opts.RetentionAge,
		retainBytes:   opts.RetentionBytes,
		onCompact:     opts.OnCompact,
		now:           func() int64 { return time.Now().UnixNano() },
	}
	ch := make(chan struct{})
	j.signal.Store(&ch)

	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	firstOffset, nextOffset := int64(0), int64(0)
	for i, name := range names {
		base, err := strconv.ParseInt(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("journal: bad segment name %q", name)
		}
		if i == 0 {
			// The lowest segment sets the floor: everything below it was
			// compacted away (possibly by a crash mid-compaction — the
			// unlink-lowest-first order makes any deleted prefix look
			// exactly like a completed compaction).
			firstOffset, nextOffset = base, base
		}
		if base != nextOffset {
			return nil, fmt.Errorf("journal: segment %q starts at offset %d, want %d (missing segment?)", name, base, nextOffset)
		}
		seg, err := openSegment(filepath.Join(dir, name), base, i == len(names)-1)
		if err != nil {
			j.closeLocked()
			return nil, err
		}
		j.segs = append(j.segs, seg)
		nextOffset = base + int64(len(seg.pos))
	}
	j.first.Store(firstOffset)
	j.next.Store(nextOffset)
	j.written = nextOffset

	if err := j.openAcks(); err != nil {
		j.closeLocked()
		return nil, err
	}
	return j, nil
}

// segmentNames lists the directory's segment files in base-offset order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segmentSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded bases sort numerically
	return names, nil
}

// openSegment opens one segment file and scans it into an offset index.
// For the final segment a scan failure truncates the file at the last
// good record — the torn tail of a crashed append; for interior segments
// it is unrecoverable corruption.
func openSegment(path string, base int64, last bool) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	seg := &segment{base: base, f: f}
	var rec Record
	good := int64(0)
	for int(good) < len(data) {
		n, err := decodeRecord(data[good:], &rec)
		if err != nil {
			if !last {
				_ = f.Close()
				return nil, fmt.Errorf("journal: segment %s offset %d: %w", filepath.Base(path), good, err)
			}
			// Torn tail: drop everything from the first bad frame on.
			if terr := f.Truncate(good); terr != nil {
				_ = f.Close()
				return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", filepath.Base(path), terr)
			}
			break
		}
		seg.pos = append(seg.pos, good)
		seg.lastTime = rec.Time
		good += int64(n)
	}
	seg.size = good
	if _, err := f.Seek(seg.size, 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	return seg, nil
}

// openAcks opens and scans the ack log, truncating its torn tail and
// folding every record into the per-group maximum.
func (j *Journal) openAcks() error {
	path := filepath.Join(j.dir, ackLogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	acked := make(map[string]int64)
	good := int64(0)
	for int(good) < len(data) {
		group, offset, n, err := decodeAckRecord(data[good:])
		if err != nil {
			if terr := f.Truncate(good); terr != nil {
				_ = f.Close()
				return fmt.Errorf("journal: truncating torn ack log: %w", terr)
			}
			break
		}
		if offset > acked[group] {
			acked[group] = offset
		}
		good += int64(n)
	}
	if _, err := f.Seek(good, 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	j.ackF, j.acked, j.ackSize = f, acked, good
	return nil
}

// write is the file-write seam: the fault-injection hook, when armed,
// stands in for os.File.Write.
func (j *Journal) write(f *os.File, b []byte) (int, error) {
	if j.writeHook != nil {
		return j.writeHook(f, b)
	}
	return f.Write(b)
}

// Append writes one record and returns its offset. The record is framed,
// written with a single write call and committed (made visible to
// NextOffset and the append signal) only afterwards — under SyncBatch
// only after its batch is fsynced — so a crash can tear at most the
// records not yet published, exactly what Open's tail truncation repairs.
func (j *Journal) Append(rec *Record) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, errClosed
	}
	if j.appendErr != nil {
		return 0, fmt.Errorf("journal: append: %w", j.appendErr)
	}
	buf, err := appendRecord(j.buf[:0], rec)
	if err != nil {
		return 0, err
	}
	j.buf = buf

	offset := j.written
	seg := j.activeSegmentLocked(int64(len(buf)))
	if seg == nil {
		seg, err = j.newSegmentLocked(offset)
		if err != nil {
			return 0, err
		}
		// Rolling is where the retention windows are enforced: the
		// just-sealed segment is now a deletion candidate. Unlink failures
		// are left for the next pass; only a sticky failure (a batch fsync
		// that could not complete) fails this append.
		if j.retainAge > 0 || j.retainBytes > 0 {
			if _, cerr := j.compactLocked(); cerr != nil && j.appendErr != nil {
				return 0, fmt.Errorf("journal: append: %w", j.appendErr)
			}
		}
	}
	if _, werr := j.write(seg.f, buf); werr != nil {
		// A short or failed write leaves torn bytes at the tail. Restore
		// the segment to its last committed state — truncate back to the
		// committed size AND re-seek the file position to match: without
		// the seek the next append would write past the truncation point
		// and leave a zero-filled gap that Open rejects as interior
		// corruption once the segment is no longer last. If the
		// restoration itself fails the tear cannot be removed, so further
		// appends (which would stack records Open can never reach behind
		// the tear) are refused until a reopen repairs the tail.
		j.restoreTailLocked(seg, werr)
		return 0, fmt.Errorf("journal: append: %w", werr)
	}
	if j.sync == SyncAlways {
		if serr := seg.f.Sync(); serr != nil {
			// SyncAlways promises durability on return; a record that
			// cannot be synced is dropped, not half-committed — restore
			// the tail exactly like a failed write so the in-memory index
			// and the file position stay consistent.
			j.restoreTailLocked(seg, serr)
			return 0, fmt.Errorf("journal: sync: %w", serr)
		}
	}
	seg.pos = append(seg.pos, seg.size)
	seg.size += int64(len(buf))
	seg.lastTime = rec.Time
	j.written = offset + 1

	if j.sync == SyncBatch {
		seg.dirty = true
		j.unsynced += int64(len(buf))
		if j.unsynced >= j.batchBytes {
			if ferr := j.flushLocked(); ferr != nil {
				return 0, fmt.Errorf("journal: sync: %w", ferr)
			}
		} else if j.flushTimer == nil {
			j.flushTimer = time.AfterFunc(j.batchInterval, j.timedFlush)
		}
		return offset, nil
	}
	j.commitLocked()
	return offset, nil
}

// restoreTailLocked puts a segment back in its last committed state after
// a failed write or sync: truncate to the committed size and re-seek the
// file position there. A restoration failure is sticky — see appendErr.
func (j *Journal) restoreTailLocked(seg *segment, cause error) {
	if terr := seg.f.Truncate(seg.size); terr != nil {
		j.appendErr = fmt.Errorf("tail restore after %v: truncate: %w", cause, terr)
		return
	}
	if _, serr := seg.f.Seek(seg.size, 0); serr != nil {
		j.appendErr = fmt.Errorf("tail restore after %v: seek: %w", cause, serr)
	}
}

// commitLocked publishes everything written: advance the readable bound,
// then wake tailing readers. A reader that grabbed the signal before this
// commit sees the close; a reader that grabs it after sees the advanced
// NextOffset.
func (j *Journal) commitLocked() {
	j.next.Store(j.written)
	ch := make(chan struct{})
	old := j.signal.Swap(&ch)
	close(*old)
}

// timedFlush is the SyncBatch interval alarm: sync and publish whatever
// accumulated. A flush failure is sticky in appendErr and surfaces on the
// next Append.
func (j *Journal) timedFlush() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.flushTimer = nil
	if j.closed {
		return
	}
	_ = j.flushLocked()
}

// flushLocked fsyncs every dirty segment (and a dirty ack log), then
// publishes the written-but-unpublished records. No-op when nothing is
// pending.
func (j *Journal) flushLocked() error {
	if j.flushTimer != nil {
		j.flushTimer.Stop()
		j.flushTimer = nil
	}
	for _, seg := range j.segs {
		if !seg.dirty {
			continue
		}
		if err := seg.f.Sync(); err != nil {
			// The batch cannot reach stable storage, so its records must
			// not be published as durable; fail closed until reopen.
			j.appendErr = fmt.Errorf("batch sync: %w", err)
			return j.appendErr
		}
		seg.dirty = false
	}
	j.unsynced = 0
	j.syncDirtyAcks()
	if j.written != j.next.Load() {
		j.commitLocked()
	}
	return nil
}

// syncDirtyAcks flushes batched ack writes alongside the append batch.
// Ack persistence is best-effort between fsyncs — a lost ack only
// re-delivers — so a failure leaves ackDirty set for the next pass.
func (j *Journal) syncDirtyAcks() {
	j.ackMu.Lock()
	defer j.ackMu.Unlock()
	if !j.ackDirty || j.ackF == nil {
		return
	}
	if err := j.ackF.Sync(); err == nil {
		j.ackDirty = false
	}
}

// Sync forces any batch-buffered appends (and acks) to stable storage and
// publishes them. Meaningful under SyncBatch; a no-op otherwise.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errClosed
	}
	return j.flushLocked()
}

// Compact runs one compaction pass: delete every non-active prefix
// segment covered by all consumer groups' cumulative acks (with no
// groups, nothing is ack-covered — a groupless journal is bounded by the
// retention windows only), then apply the RetentionAge/RetentionBytes
// windows. Segments are unlinked lowest-first, so a crash mid-pass leaves
// a shorter contiguous log that Open accepts as an already-compacted
// prefix. Returns what the pass deleted and the new FirstOffset.
func (j *Journal) Compact() (CompactStats, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return CompactStats{}, errClosed
	}
	return j.compactLocked()
}

// compactLocked is Compact with mu held; segment rolls call it too.
func (j *Journal) compactLocked() (CompactStats, error) {
	st := CompactStats{FirstOffset: j.first.Load()}
	// Flush first: compaction reasons about the published bound, and an
	// unflushed batch could leave written-but-unpublished records inside
	// a deletion candidate.
	if err := j.flushLocked(); err != nil {
		return st, err
	}
	if len(j.segs) == 0 {
		return st, nil
	}

	// minAck is the offset every group has reached; -1 when no group
	// exists (nothing is ack-covered — deleting on an empty quorum would
	// drop data the first group to appear still wants).
	minAck := int64(-1)
	j.ackMu.Lock()
	for _, off := range j.acked {
		if minAck < 0 || off < minAck {
			minAck = off
		}
	}
	j.ackMu.Unlock()

	// All three criteria produce prefixes (segments are offset- and
	// time-ordered), so the pass reduces to one prefix length. The active
	// (last) segment is never a candidate: it keeps the offset counter
	// recoverable and the append path simple.
	acked := 0
	for acked < len(j.segs)-1 {
		seg := j.segs[acked]
		if minAck < 0 || seg.base+int64(len(seg.pos)) > minAck {
			break
		}
		acked++
	}
	del := acked
	if j.retainAge > 0 {
		cutoff := j.now() - int64(j.retainAge)
		for del < len(j.segs)-1 && j.segs[del].lastTime < cutoff {
			del++
		}
	}
	if j.retainBytes > 0 {
		// Count the active segment at its full roll threshold so the
		// budget keeps holding as it fills between rolls.
		total := j.segSize - j.segs[len(j.segs)-1].size
		if total < 0 {
			total = 0 // oversized single-record segment
		}
		for _, seg := range j.segs {
			total += seg.size
		}
		for del < len(j.segs)-1 && total > j.retainBytes {
			total -= j.segs[del].size
			del++
		}
	}
	if del == 0 {
		return st, nil
	}

	// Unlink lowest-first: after any crash the surviving files are a
	// contiguous suffix — indistinguishable from a smaller completed
	// pass. A failed unlink stops the pass (deleting past it would leave
	// a gap) and leaves the rest for the next one.
	removed := 0
	var err error
	for i := 0; i < del; i++ {
		seg := j.segs[i]
		if rerr := os.Remove(filepath.Join(j.dir, segmentName(seg.base))); rerr != nil {
			err = fmt.Errorf("journal: compact: %w", rerr)
			break
		}
		_ = seg.f.Close()
		removed++
	}
	if removed == 0 {
		return st, err
	}
	j.segs = j.segs[removed:]
	j.first.Store(j.segs[0].base)
	if removed <= acked {
		st.AckedSegments = removed
	} else {
		st.AckedSegments = acked
		st.RetentionSegments = removed - acked
	}
	st.FirstOffset = j.segs[0].base
	// Fold the ack log down to one record per group. A crash between the
	// unlinks above and this rewrite just leaves the longer log, which
	// max-wins folding absorbs at the next open.
	if aerr := j.compactAcks(); aerr != nil && err == nil {
		err = aerr
	}
	if j.onCompact != nil {
		j.onCompact(st)
	}
	return st, err
}

// compactAcks rewrites the ack log as one record per group, staged
// through a scratch file and renamed into place so the rewrite is
// all-or-nothing.
func (j *Journal) compactAcks() error {
	j.ackMu.Lock()
	defer j.ackMu.Unlock()
	if j.ackF == nil {
		return errClosed
	}
	buf := j.ackBuf[:0]
	var err error
	for group, off := range j.acked {
		if buf, err = appendAckRecord(buf, group, off); err != nil {
			return err
		}
	}
	j.ackBuf = buf
	tmp := filepath.Join(j.dir, ackTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact acks: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("journal: compact acks: %w", err)
	}
	if j.sync != SyncNever {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return fmt.Errorf("journal: compact acks: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("journal: compact acks: %w", err)
	}
	path := filepath.Join(j.dir, ackLogName)
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("journal: compact acks: %w", err)
	}
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		// The old handle writes to the renamed-over inode — invisible to
		// the next open. Fail the ack log closed rather than lose acks
		// silently.
		_ = j.ackF.Close()
		j.ackF = nil
		j.ackErr = fmt.Errorf("reopen after rewrite: %w", err)
		return fmt.Errorf("journal: compact acks: %w", err)
	}
	if _, err := nf.Seek(int64(len(buf)), 0); err != nil {
		_ = nf.Close()
		_ = j.ackF.Close()
		j.ackF = nil
		j.ackErr = fmt.Errorf("reopen after rewrite: %w", err)
		return fmt.Errorf("journal: compact acks: %w", err)
	}
	old := j.ackF
	j.ackF = nf
	j.ackSize = int64(len(buf))
	j.ackDirty = false
	_ = old.Close()
	return nil
}

// activeSegmentLocked returns the segment the next append goes to, or nil
// when a new one must be rolled: no segments yet, or the active one is at
// the roll threshold and non-empty (a record larger than the threshold
// still gets a segment to itself rather than failing).
func (j *Journal) activeSegmentLocked(recLen int64) *segment {
	if len(j.segs) == 0 {
		return nil
	}
	seg := j.segs[len(j.segs)-1]
	if len(seg.pos) > 0 && seg.size+recLen > j.segSize {
		return nil
	}
	return seg
}

// segmentName formats a segment filename from its base offset.
func segmentName(base int64) string {
	return fmt.Sprintf("%020d%s", base, segmentSuffix)
}

// newSegmentLocked rolls a fresh segment whose base is the given offset.
func (j *Journal) newSegmentLocked(base int64) (*segment, error) {
	path := filepath.Join(j.dir, segmentName(base))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: roll segment: %w", err)
	}
	seg := &segment{base: base, f: f}
	j.segs = append(j.segs, seg)
	return seg, nil
}

// Read decodes the record at the given offset into rec. The record's
// Image is freshly allocated per call: readers hand it to the wire (or
// hold it arbitrarily long) without aliasing journal state. Offsets at or
// past NextOffset return ErrOffsetOutOfRange; offsets below FirstOffset
// return ErrOffsetCompacted — the record is gone, and the caller decides
// (loudly) whether to resume from FirstOffset.
func (j *Journal) Read(offset int64, rec *Record) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errClosed
	}
	if offset < 0 || offset >= j.next.Load() {
		j.mu.Unlock()
		return fmt.Errorf("%w: %d (journal holds [%d,%d))", ErrOffsetOutOfRange, offset, j.first.Load(), j.next.Load())
	}
	if offset < j.first.Load() {
		j.mu.Unlock()
		return fmt.Errorf("%w: %d (journal holds [%d,%d))", ErrOffsetCompacted, offset, j.first.Load(), j.next.Load())
	}
	// Locate the owning segment: the last one whose base is <= offset.
	i := sort.Search(len(j.segs), func(i int) bool { return j.segs[i].base > offset }) - 1
	seg := j.segs[i]
	rel := offset - seg.base
	start := seg.pos[rel]
	end := seg.size
	if int(rel+1) < len(seg.pos) {
		end = seg.pos[rel+1]
	}
	f := seg.f
	j.mu.Unlock()

	// The byte range [start,end) is committed and immutable; the ReadAt
	// runs outside the lock so replay never stalls appends. A concurrent
	// compaction can close the file under us — re-check the floor on
	// failure so the caller sees the compaction, not a bare I/O error.
	buf := make([]byte, end-start)
	if _, err := f.ReadAt(buf, start); err != nil {
		if offset < j.first.Load() {
			return fmt.Errorf("%w: %d", ErrOffsetCompacted, offset)
		}
		return fmt.Errorf("journal: read offset %d: %w", offset, err)
	}
	if _, err := decodeRecord(buf, rec); err != nil {
		if offset < j.first.Load() {
			return fmt.Errorf("%w: %d", ErrOffsetCompacted, offset)
		}
		return fmt.Errorf("journal: read offset %d: %w", offset, err)
	}
	return nil
}

// NextOffset returns the offset the next append will publish — the
// exclusive upper bound of readable offsets.
func (j *Journal) NextOffset() int64 { return j.next.Load() }

// FirstOffset returns the lowest retained offset — the inclusive lower
// bound of readable offsets, advanced by compaction and retention.
func (j *Journal) FirstOffset() int64 { return j.first.Load() }

// AppendSignal returns a channel closed when a record is published after
// this call. Tailing readers must grab the signal before checking
// NextOffset: an append between the two closes the already-grabbed
// channel, so the wait cannot miss it.
func (j *Journal) AppendSignal() <-chan struct{} { return *j.signal.Load() }

// Ack records a consumer group's cumulative progress: every record below
// offset is processed. Acks are idempotent max-wins — an offset at or
// below the group's current mark is a no-op, so duplicated, reordered or
// replayed acks can never regress a group.
func (j *Journal) Ack(group string, offset int64) error {
	if group == "" {
		return errors.New("journal: empty ack group")
	}
	if offset < 0 {
		return fmt.Errorf("journal: negative ack offset %d", offset)
	}
	j.ackMu.Lock()
	defer j.ackMu.Unlock()
	if j.ackF == nil {
		return errClosed
	}
	if j.ackErr != nil {
		return fmt.Errorf("journal: ack: %w", j.ackErr)
	}
	if offset <= j.acked[group] {
		return nil
	}
	buf, err := appendAckRecord(j.ackBuf[:0], group, offset)
	if err != nil {
		return err
	}
	j.ackBuf = buf
	if _, werr := j.write(j.ackF, buf); werr != nil {
		// Same discipline as Append: a failed write leaves torn bytes at
		// the tail, and every later ack would stack behind the tear where
		// openAcks silently discards it — the group would re-deliver work
		// it already finished. Truncate back to the committed length and
		// re-seek; if the restoration fails, refuse further acks until a
		// reopen repairs the tail.
		if terr := j.ackF.Truncate(j.ackSize); terr != nil {
			j.ackErr = fmt.Errorf("tail restore after %v: truncate: %w", werr, terr)
		} else if _, serr := j.ackF.Seek(j.ackSize, 0); serr != nil {
			j.ackErr = fmt.Errorf("tail restore after %v: seek: %w", werr, serr)
		}
		return fmt.Errorf("journal: ack: %w", werr)
	}
	j.ackSize += int64(len(buf))
	switch j.sync {
	case SyncAlways:
		if err := j.ackF.Sync(); err != nil {
			return fmt.Errorf("journal: ack sync: %w", err)
		}
	case SyncBatch:
		// Ride the append batch's fsync cadence; a power cut between
		// flushes only loses acks, which re-deliver.
		j.ackDirty = true
	}
	j.acked[group] = offset
	return nil
}

// Acked returns a group's cumulative acked offset — the offset replay
// resumes from. An unknown group is at zero: the whole log is unacked.
func (j *Journal) Acked(group string) int64 {
	j.ackMu.Lock()
	defer j.ackMu.Unlock()
	return j.acked[group]
}

// Close closes the journal's files, flushing any pending SyncBatch batch
// first. Appends and reads fail afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	var err error
	if !j.closed && j.sync == SyncBatch {
		err = j.flushLocked()
	}
	if j.flushTimer != nil {
		j.flushTimer.Stop()
		j.flushTimer = nil
	}
	if cerr := j.closeLocked(); err == nil {
		err = cerr
	}
	j.mu.Unlock()

	j.ackMu.Lock()
	if j.ackF != nil {
		if cerr := j.ackF.Close(); err == nil {
			err = cerr
		}
		j.ackF = nil
	}
	j.ackMu.Unlock()
	return err
}

func (j *Journal) closeLocked() error {
	if j.closed {
		return nil
	}
	j.closed = true
	var err error
	for _, seg := range j.segs {
		if cerr := seg.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
