// Command federation demonstrates the paper's future-work scaling model
// (§7): two independent regional SafeWeb instances ("east" and "west")
// exchanging regional aggregates over a federation bridge while patient
// data provably never crosses the boundary.
//
// Run it with:
//
//	go run ./examples/federation
//
// Each instance is a complete MDT deployment with its own registry,
// policy, broker and frontend. The bridge connects east's broker to
// west's, forwarding only /metric events with scope=region and mapping
// east's labels into west's "federated" namespace. West's portal then
// serves east's aggregates to its own users under west's policy.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/federation"
	"safeweb/internal/label"
	"safeweb/internal/maindb"
	"safeweb/internal/mdt"
	"safeweb/internal/webfront"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
}

func run() error {
	// Two regional instances with separate registries.
	east, err := mdt.Deploy(mdt.DeployConfig{Registry: maindb.Config{Seed: 1, Patients: 80, Regions: 1}})
	if err != nil {
		return err
	}
	defer east.Stop()
	west, err := mdt.Deploy(mdt.DeployConfig{Registry: maindb.Config{Seed: 2, Patients: 80, Regions: 1}})
	if err != nil {
		return err
	}
	defer west.Stop()

	// Federation principals: east exports only regional aggregates; west
	// lets the bridge publish into a dedicated namespace.
	fedLabel := label.Conf(mdt.Authority + "/regional-agg")
	east.Broker.Policy().Grant("bridge-out", label.Clearance, label.Exact(fedLabel))

	// A west-side unit persists federated aggregates into west's app DB.
	// It needs clearance for the federated namespace, granted before the
	// unit subscribes.
	const fedDoc = "metric/federated/east"
	westFed := label.Conf(mdt.Authority + "/federated/east/regional-agg")
	west.Broker.Policy().Grant("fed-sink", label.Clearance,
		label.MustParsePattern("label:conf:"+mdt.Authority+"/federated/*"))
	err = west.AddUnit(&engine.FuncUnit{UnitName: "fed-sink", InitFunc: func(ctx *engine.InitContext) error {
		return ctx.Subscribe("/federated/east/metric", "", func(ctx *engine.Context, ev *event.Event) error {
			rev := ""
			if existing, err := west.AppDB.Get(fedDoc); err == nil {
				rev = existing.Rev
			}
			_, err := west.AppDB.Put(fedDoc, json.RawMessage(ev.Body), label.NewSet(westFed), rev)
			return err
		})
	}})
	if err != nil {
		return err
	}

	// The bridge itself: east → west, regional metrics only, labels
	// mapped into the federated namespace.
	bridge, err := federation.New(
		east.Broker.Endpoint("bridge-out"),
		west.Broker.Endpoint("bridge-in"),
		[]federation.Rule{{
			Topic:       mdt.TopicAggregate,
			Selector:    "scope = 'region'",
			RemoteTopic: "/federated/east/metric",
			Map: federation.PrefixMap(
				mdt.Authority+"/",
				mdt.Authority+"/federated/east/"),
		}},
	)
	if err != nil {
		return err
	}
	defer bridge.Close()

	// West users gain clearance for the federated label; a west route
	// serves it.
	for _, m := range west.Registry.MDTs() {
		u, err := west.WebDB.FindUser(m.ID)
		if err != nil {
			continue
		}
		west.WebDB.GrantLabel(u.ID, label.Clearance, label.Exact(westFed))
	}
	west.Frontend.Get("/federated/east", func(c *webfront.Ctx) error {
		doc, err := west.DMZDB.Get(fedDoc)
		if err != nil {
			return webfront.ErrNotFound("federated aggregate")
		}
		wrapped, err := west.Frontend.WrapDoc(doc)
		if err != nil {
			return err
		}
		body, err := wrapped.ToJSON()
		if err != nil {
			return err
		}
		c.JSON(body)
		return nil
	})

	// Import east's registry: its regional metric flows across the
	// bridge as a side effect.
	if err := east.ImportAll(); err != nil {
		return err
	}
	east.Sync()
	west.Sync()

	stats := bridge.Stats()
	fmt.Printf("bridge: forwarded %d event(s), dropped %d, errors %d\n",
		stats.Forwarded, stats.DroppedUnmappable, stats.Errors)

	// A west user fetches east's aggregate through west's portal.
	addr, err := west.ServeHTTP("127.0.0.1:0")
	if err != nil {
		return err
	}
	user := west.Registry.MDTs()[0].ID
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/federated/east", nil)
	if err != nil {
		return err
	}
	req.SetBasicAuth(user, west.Creds[user])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("west user %s fetching east's regional aggregate -> HTTP %d %s\n", user, resp.StatusCode, body)

	// Patient data never crossed: no east patient label appears on any
	// west document.
	eastLeaks := 0
	for _, id := range west.DMZDB.AllIDs() {
		doc, err := west.DMZDB.Get(id)
		if err != nil {
			continue
		}
		for l := range doc.Labels {
			if strings.HasPrefix(l.Name(), mdt.Authority+"/mdt/") && id == fedDoc {
				eastLeaks++
			}
		}
	}
	fmt.Printf("east patient/MDT labels on west instance: %d (export policy withheld them at east's broker)\n", eastLeaks)
	return nil
}
