package mdt

import (
	"fmt"
	"strings"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/core"
	"safeweb/internal/journal"
	"safeweb/internal/maindb"
	"safeweb/internal/webfront"
)

// SchedulerName is the principal that publishes control events (the
// deployment's cron-equivalent). It holds no privileges: control events
// are unlabelled.
const SchedulerName = "mdt-scheduler"

// DeployConfig configures a full MDT portal deployment.
type DeployConfig struct {
	// Registry configures the synthetic main database.
	Registry maindb.Config
	// Password is the password provisioned for every portal account;
	// empty means "mdt-password".
	Password string
	// Faults enables the §5.2 injected vulnerabilities.
	Faults Faults
	// NetworkBroker, PublishWindow, Overflow, OverflowEvictAfter,
	// WriteQueueLen, WriteTimeout, SubscribeCredit, DisableTracking,
	// AuthWork and OnRequest are passed through to core.Config. The
	// overflow settings give the deployment's broker front slow-consumer
	// protection: bounded per-session delivery queues with an explicit
	// policy instead of unbounded blocking; SubscribeCredit adds the
	// proactive half — per-subscription delivery windows replenished as
	// the engine completes callbacks.
	NetworkBroker      bool
	PublishWindow      int
	Overflow           broker.OverflowPolicy
	OverflowEvictAfter int
	WriteQueueLen      int
	WriteTimeout       time.Duration
	SubscribeCredit    int
	// Durable and JournalDir, with NetworkBroker, journal publishes on the
	// listed topic patterns to disk under JournalDir, so consumers can
	// replay and resume them with offset/group subscriptions (see
	// core.Config.Durable). JournalRetentionAge/-Bytes bound the journals
	// (zero means unbounded) and JournalSync selects their fsync policy —
	// all passed through to core.Config.
	Durable               []string
	JournalDir            string
	JournalRetentionAge   time.Duration
	JournalRetentionBytes int64
	JournalSync           journal.SyncPolicy
	DisableTracking       bool
	AuthWork              int
	OnRequest             func(webfront.PhaseTimes)
	// Logf logs; nil is quiet.
	Logf func(format string, args ...any)
}

// Deployment is a running MDT portal: the SafeWeb middleware plus the
// application units, routes, accounts and registry.
type Deployment struct {
	// Middleware is the underlying SafeWeb assembly.
	*core.Middleware
	// Registry is the synthetic main database.
	Registry *maindb.DB
	// WebApp is the portal's web tier.
	WebApp *WebApp
	// Creds maps provisioned usernames to passwords.
	Creds map[string]string
}

// Deploy assembles and starts an MDT portal deployment. The caller owns
// the returned deployment and must Stop it.
func Deploy(cfg DeployConfig) (*Deployment, error) {
	if cfg.Password == "" {
		cfg.Password = "mdt-password"
	}
	registry := maindb.Generate(cfg.Registry)
	policy := BuildPolicy(registry)

	mw, err := core.New(core.Config{
		Policy:                policy,
		NetworkBroker:         cfg.NetworkBroker,
		PublishWindow:         cfg.PublishWindow,
		Overflow:              cfg.Overflow,
		OverflowEvictAfter:    cfg.OverflowEvictAfter,
		WriteQueueLen:         cfg.WriteQueueLen,
		WriteTimeout:          cfg.WriteTimeout,
		SubscribeCredit:       cfg.SubscribeCredit,
		Durable:               cfg.Durable,
		JournalDir:            cfg.JournalDir,
		JournalRetentionAge:   cfg.JournalRetentionAge,
		JournalRetentionBytes: cfg.JournalRetentionBytes,
		JournalSync:           cfg.JournalSync,
		DisableTracking:       cfg.DisableTracking,
		AuthWork:              cfg.AuthWork,
		OnRequest:             cfg.OnRequest,
		Logf:                  cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("mdt: deploy: %w", err)
	}
	RegisterViews(mw.AppDB)
	RegisterViews(mw.DMZDB)

	// Units: aggregator first so it is subscribed before any producer
	// output, then storage, then the producer.
	if err := mw.AddUnit(&Aggregator{Faults: cfg.Faults}); err != nil {
		mw.Stop()
		return nil, fmt.Errorf("mdt: deploy aggregator: %w", err)
	}
	if err := mw.AddUnit(&Storage{Store: mw.AppDB}); err != nil {
		mw.Stop()
		return nil, fmt.Errorf("mdt: deploy storage: %w", err)
	}
	if err := mw.AddUnit(&Producer{DB: registry}); err != nil {
		mw.Stop()
		return nil, fmt.Errorf("mdt: deploy producer: %w", err)
	}

	creds, err := ProvisionUsers(mw.WebDB, registry.MDTs(), cfg.Password)
	if err != nil {
		mw.Stop()
		return nil, fmt.Errorf("mdt: deploy users: %w", err)
	}

	webApp, err := NewWebApp(WebAppConfig{
		Frontend: mw.Frontend,
		Store:    mw.DMZDB,
		WebDB:    mw.WebDB,
		MDTs:     registry.MDTs(),
		Faults:   cfg.Faults,
	})
	if err != nil {
		mw.Stop()
		return nil, fmt.Errorf("mdt: deploy webapp: %w", err)
	}
	// Cookie sessions avoid re-hashing credentials on every request; the
	// release check is identical either way.
	mw.Frontend.EnableSessionAuth(12 * time.Hour)

	mw.Start()
	return &Deployment{
		Middleware: mw,
		Registry:   registry,
		WebApp:     webApp,
		Creds:      creds,
	}, nil
}

// ImportAll triggers a full import of the registry through the backend
// pipeline, computes regional aggregates, and waits until the DMZ replica
// reflects everything.
func (d *Deployment) ImportAll() error {
	if err := d.PublishControl(SchedulerName, TopicImport, nil); err != nil {
		return fmt.Errorf("mdt: import trigger: %w", err)
	}
	d.Sync()

	// Regional aggregates: one control event per region listing its MDTs,
	// so the aggregator callback only ever mixes labels of one region.
	byRegion := make(map[string][]string)
	for _, m := range d.Registry.MDTs() {
		byRegion[m.Region] = append(byRegion[m.Region], m.ID)
	}
	for region, mdts := range byRegion {
		err := d.PublishControl(SchedulerName, TopicMetrics, map[string]string{
			"region": region,
			"mdts":   strings.Join(mdts, ","),
		})
		if err != nil {
			return fmt.Errorf("mdt: metrics trigger %s: %w", region, err)
		}
	}
	d.Sync()
	return nil
}
