module safeweb

go 1.24
