package template

import (
	"strings"
	"testing"

	"safeweb/internal/label"
	"safeweb/internal/taint"
)

var (
	mdt7 = label.Conf("ecric.org.uk/mdt/7")
	mdt8 = label.Conf("ecric.org.uk/mdt/8")
)

func render(t *testing.T, src string, ctx Context) taint.String {
	t.Helper()
	tmpl, err := Parse("test", src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	out, err := tmpl.Render(ctx)
	if err != nil {
		t.Fatalf("Render(%q): %v", src, err)
	}
	return out
}

func TestLiteralText(t *testing.T) {
	out := render(t, "<html>static</html>", nil)
	if out.Raw() != "<html>static</html>" {
		t.Errorf("Raw = %q", out.Raw())
	}
	if !out.Labels().IsEmpty() {
		t.Errorf("Labels = %v", out.Labels())
	}
}

func TestInterpolationCarriesLabels(t *testing.T) {
	ctx := Context{"name": taint.NewString("John Smith", mdt7)}
	out := render(t, "patient: <%= name %>", ctx)
	if out.Raw() != "patient: John Smith" {
		t.Errorf("Raw = %q", out.Raw())
	}
	if !out.Labels().Contains(mdt7) {
		t.Errorf("Labels = %v", out.Labels())
	}
}

func TestHTMLEscaping(t *testing.T) {
	ctx := Context{"evil": taint.NewString(`<script>alert("x")</script>`)}
	out := render(t, "<%= evil %>", ctx)
	if strings.Contains(out.Raw(), "<script>") {
		t.Errorf("unescaped script: %q", out.Raw())
	}
	raw := render(t, "<%== evil %>", ctx)
	if !strings.Contains(raw.Raw(), "<script>") {
		t.Errorf("raw interpolation escaped: %q", raw.Raw())
	}
}

func TestDottedPaths(t *testing.T) {
	ctx := Context{
		"patient": taint.Doc{
			"name":   taint.NewString("Smith", mdt7),
			"tumour": taint.Doc{"site": taint.NewString("C50.9", mdt8)},
		},
	}
	out := render(t, "<%= patient.name %> @ <%= patient.tumour.site %>", ctx)
	if out.Raw() != "Smith @ C50.9" {
		t.Errorf("Raw = %q", out.Raw())
	}
	if !out.Labels().Contains(mdt7) || !out.Labels().Contains(mdt8) {
		t.Errorf("Labels = %v", out.Labels())
	}
}

func TestNumbersRender(t *testing.T) {
	ctx := Context{
		"pct":   taint.NewNumber(87.5, mdt7),
		"count": 42,
		"ratio": 2.5,
	}
	out := render(t, "<%= pct %>% of <%= count %> (<%= ratio %>)", ctx)
	if out.Raw() != "87.5% of 42 (2.5)" {
		t.Errorf("Raw = %q", out.Raw())
	}
	if !out.Labels().Contains(mdt7) {
		t.Errorf("Labels = %v", out.Labels())
	}
}

func TestIfElse(t *testing.T) {
	src := `<% if admin %>ADMIN<% else %>USER<% end %>`
	if got := render(t, src, Context{"admin": true}); got.Raw() != "ADMIN" {
		t.Errorf("true branch = %q", got.Raw())
	}
	if got := render(t, src, Context{"admin": false}); got.Raw() != "USER" {
		t.Errorf("false branch = %q", got.Raw())
	}
}

func TestIfComparison(t *testing.T) {
	ctx := Context{"role": taint.NewString("coordinator")}
	src := `<% if role == "coordinator" %>YES<% end %>`
	if got := render(t, src, ctx); got.Raw() != "YES" {
		t.Errorf("eq = %q", got.Raw())
	}
	src = `<% if role != "doctor" %>NOT-DOC<% end %>`
	if got := render(t, src, ctx); got.Raw() != "NOT-DOC" {
		t.Errorf("neq = %q", got.Raw())
	}
	src = `<% if not missing %>EMPTY<% end %>`
	if got := render(t, src, Context{"missing": ""}); got.Raw() != "EMPTY" {
		t.Errorf("not = %q", got.Raw())
	}
}

func TestForLoop(t *testing.T) {
	ctx := Context{
		"records": []taint.Doc{
			{"id": taint.NewString("1", mdt7)},
			{"id": taint.NewString("2", mdt8)},
		},
	}
	out := render(t, "<% for r in records %>[<%= r.id %>]<% end %>", ctx)
	if out.Raw() != "[1][2]" {
		t.Errorf("Raw = %q", out.Raw())
	}
	if !out.Labels().Contains(mdt7) || !out.Labels().Contains(mdt8) {
		t.Errorf("Labels = %v", out.Labels())
	}
}

func TestForLoopEmptyAndNil(t *testing.T) {
	out := render(t, "<% for x in items %>X<% end %>", Context{"items": []any{}})
	if out.Raw() != "" {
		t.Errorf("empty list rendered %q", out.Raw())
	}
	out = render(t, "<% for x in items %>X<% end %>", Context{"items": nil})
	if out.Raw() != "" {
		t.Errorf("nil list rendered %q", out.Raw())
	}
}

func TestNestedStructures(t *testing.T) {
	ctx := Context{
		"mdts": []taint.Doc{
			{"name": taint.NewString("MDT-A"), "ok": taint.NewNumber(1)},
			{"name": taint.NewString("MDT-B"), "ok": taint.NewNumber(0)},
		},
	}
	src := `<% for m in mdts %><% if m.ok %><%= m.name %>;<% end %><% end %>`
	out := render(t, src, ctx)
	if out.Raw() != "MDT-A;" {
		t.Errorf("Raw = %q", out.Raw())
	}
}

func TestOnlyInterpolatedLabelsCount(t *testing.T) {
	// A labelled value tested in a condition but not interpolated does not
	// label the page (explicit-flow tracking, as in the paper's model).
	ctx := Context{
		"secret": taint.NewString("x", mdt7),
		"public": taint.NewString("hello"),
	}
	out := render(t, `<% if secret %><%= public %><% end %>`, ctx)
	if out.Raw() != "hello" {
		t.Errorf("Raw = %q", out.Raw())
	}
	if out.Labels().Contains(mdt7) {
		t.Errorf("implicit flow labelled the page: %v", out.Labels())
	}
}

func TestRenderErrors(t *testing.T) {
	tmpl := MustParse("t", "<%= missing %>")
	if _, err := tmpl.Render(Context{}); err == nil {
		t.Error("unknown variable rendered")
	}
	tmpl = MustParse("t", "<%= a.b %>")
	if _, err := tmpl.Render(Context{"a": 42}); err == nil {
		t.Error("field access on scalar rendered")
	}
	tmpl = MustParse("t", "<% for x in a %><% end %>")
	if _, err := tmpl.Render(Context{"a": 42}); err == nil {
		t.Error("iterating scalar rendered")
	}
	// Nil path element renders empty.
	tmpl = MustParse("t", "<%= a.b.c %>")
	out, err := tmpl.Render(Context{"a": taint.Doc{}})
	if err != nil || out.Raw() != "" {
		t.Errorf("nil path = %q, %v", out.Raw(), err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"<%= unterminated",
		"<% if x %>no end",
		"<% end %>",
		"<% else %>",
		"<% for x %>body<% end %>",
		"<% for x in %>body<% end %>",
		"<% bogus tag %>",
		"<%= %>",
		`<%= "unterminated %>`,
		"<% if a == %>x<% end %>",
		"<% for a.b in xs %>x<% end %>",
		"<% if x %>a<% else %>b<% else %>c<% end %>",
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
	// ParseError formatting.
	_, err := Parse("front_page", "<% end %>")
	if err == nil || !strings.Contains(err.Error(), "front_page") {
		t.Errorf("error = %v", err)
	}
}

func TestQuoteAwareComparison(t *testing.T) {
	ctx := Context{"s": taint.NewString("a == b")}
	out := render(t, `<% if s == "a == b" %>MATCH<% end %>`, ctx)
	if out.Raw() != "MATCH" {
		t.Errorf("Raw = %q", out.Raw())
	}
}

func TestMDTFrontPageShape(t *testing.T) {
	// A realistic front page: patient table plus metrics, as the MDT
	// portal's front page (used by the E2 benchmark).
	src := `<html><body>
<h1>MDT <%= mdt %></h1>
<table>
<% for p in patients %><tr><td><%= p.patient_id %></td><td><%= p.name %></td><td><%= p.site %></td></tr>
<% end %></table>
<p>Completeness: <%= metrics.completeness %>%</p>
</body></html>`
	ctx := Context{
		"mdt": taint.NewString("7"),
		"patients": []taint.Doc{
			{"patient_id": taint.NewString("1", mdt7), "name": taint.NewString("A", mdt7), "site": taint.NewString("C50", mdt7)},
			{"patient_id": taint.NewString("2", mdt7), "name": taint.NewString("B", mdt7), "site": taint.NewString("C18", mdt7)},
		},
		"metrics": taint.Doc{"completeness": taint.NewNumber(87.5, mdt7)},
	}
	out := render(t, src, ctx)
	for _, want := range []string{"MDT 7", "<td>1</td>", "<td>B</td>", "87.5%"} {
		if !strings.Contains(out.Raw(), want) {
			t.Errorf("page missing %q", want)
		}
	}
	if !out.Labels().Contains(mdt7) {
		t.Errorf("page labels = %v", out.Labels())
	}
}
