// Package labelmgr implements the dynamic label manager the paper
// sketches in §4.1: "for more complex policies with dynamic privileges, a
// label manager could delegate privileges to units at runtime."
//
// The manager is itself an event processing unit: it subscribes to a
// control topic and applies delegation requests to the live policy.
// Authorisation is IFC-native — a request is honoured only if it carries
// a configured *integrity* label, which only principals holding the
// corresponding endorsement privilege can attach. The delegation channel
// therefore needs no separate authentication machinery: the label model
// already proves who may speak on it.
//
// Every applied and every rejected request is recorded in an audit log,
// extending the auditability story of §5.2 (the policy "and the scripts
// that edit it must be audited"; the manager is that script, made
// inspectable).
package labelmgr

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/label"
)

// DefaultTopic is the control topic delegation requests arrive on.
const DefaultTopic = "/control/delegate"

// DefaultName is the manager's unit principal name.
const DefaultName = "label-manager"

// Request attribute names.
const (
	// AttrPrincipal names the principal receiving (or losing) the grant.
	AttrPrincipal = "principal"
	// AttrPrivilege is the privilege name ("clearance", "declassify",
	// "endorse", "clearlow").
	AttrPrivilege = "privilege"
	// AttrPattern is the label pattern the privilege covers.
	AttrPattern = "pattern"
	// AttrAction is "grant" (default) or "revoke".
	AttrAction = "action"
)

// Delegation is one audit-log entry.
type Delegation struct {
	// Time is when the request was processed.
	Time time.Time
	// Principal, Privilege, Pattern and Action echo the request.
	Principal string
	Privilege label.Privilege
	Pattern   label.Pattern
	Action    string
	// Applied reports whether the request took effect.
	Applied bool
	// Reason explains rejections.
	Reason string
}

// Manager is the label-manager unit.
type Manager struct {
	// Policy is the live policy delegations apply to. Required.
	Policy *label.Policy
	// Require is the integrity label a request must carry to be
	// honoured. The zero label disables the check (for closed
	// deployments whose broker policy already restricts the topic).
	Require label.Label
	// Topic overrides DefaultTopic when non-empty.
	Topic string
	// UnitName overrides DefaultName when non-empty.
	UnitName string
	// Protected lists principals whose privileges the manager refuses to
	// change — the trusted units of the deployment, so a compromised
	// delegation channel cannot mint privileged units.
	Protected []string

	mu  sync.Mutex
	log []Delegation
}

var _ engine.Unit = (*Manager)(nil)

// Name implements engine.Unit.
func (m *Manager) Name() string {
	if m.UnitName != "" {
		return m.UnitName
	}
	return DefaultName
}

// Init implements engine.Unit.
func (m *Manager) Init(ctx *engine.InitContext) error {
	if m.Policy == nil {
		return errors.New("labelmgr: Policy is required")
	}
	topic := m.Topic
	if topic == "" {
		topic = DefaultTopic
	}
	return ctx.Subscribe(topic, "", func(_ *engine.Context, ev *event.Event) error {
		m.handle(ev)
		return nil
	})
}

// handle applies one delegation request.
func (m *Manager) handle(ev *event.Event) {
	entry := Delegation{
		Time:      time.Now(),
		Principal: ev.Attr(AttrPrincipal),
		Action:    strings.ToLower(ev.Attr(AttrAction)),
	}
	if entry.Action == "" {
		entry.Action = "grant"
	}

	reject := func(reason string) {
		entry.Reason = reason
		m.record(entry)
	}

	if !m.Require.IsZero() && !ev.Labels.Contains(m.Require) {
		reject(fmt.Sprintf("request lacks required integrity label %s", m.Require))
		return
	}
	if entry.Principal == "" {
		reject("missing principal")
		return
	}
	for _, protected := range m.Protected {
		if entry.Principal == protected {
			reject("principal is protected")
			return
		}
	}
	priv, err := label.ParsePrivilege(ev.Attr(AttrPrivilege))
	if err != nil {
		reject(err.Error())
		return
	}
	entry.Privilege = priv
	pat, err := label.ParsePattern(ev.Attr(AttrPattern))
	if err != nil {
		reject(err.Error())
		return
	}
	entry.Pattern = pat

	switch entry.Action {
	case "grant":
		m.Policy.Grant(entry.Principal, priv, pat)
		entry.Applied = true
	case "revoke":
		entry.Applied = m.Policy.Revoke(entry.Principal, priv, pat)
		if !entry.Applied {
			entry.Reason = "no matching grant"
		}
	default:
		entry.Reason = fmt.Sprintf("unknown action %q", entry.Action)
	}
	m.record(entry)
}

func (m *Manager) record(d Delegation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.log = append(m.log, d)
}

// Log returns a copy of the audit log.
func (m *Manager) Log() []Delegation {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Delegation(nil), m.log...)
}

// NewRequest builds a delegation request event for publishers. The caller
// publishes it through a context or bus holding the endorsement privilege
// for the manager's required integrity label.
func NewRequest(topic string, principal string, priv label.Privilege, pat label.Pattern, revoke bool) *event.Event {
	if topic == "" {
		topic = DefaultTopic
	}
	action := "grant"
	if revoke {
		action = "revoke"
	}
	return event.New(topic, map[string]string{
		AttrPrincipal: principal,
		AttrPrivilege: priv.String(),
		AttrPattern:   pat.String(),
		AttrAction:    action,
	})
}
