package event

import (
	"bytes"
	"testing"

	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// TestWireImageMemoised pins the publish-once property at the event
// level: repeated WireImage calls on a frozen event return the same
// image, the build counter moves exactly once, and the bytes match an
// independent encode of the event's marshalled headers.
func TestWireImageMemoised(t *testing.T) {
	ev := New("/patient_report", map[string]string{"patient_id": "1"}, label.Conf("ecric.org.uk/mdt/7"))
	ev.Body = []byte(`{"record": true}`)
	ev.Freeze()

	before := WireImageBuilds()
	img1, err := ev.WireImage()
	if err != nil {
		t.Fatalf("WireImage: %v", err)
	}
	img2, err := ev.WireImage()
	if err != nil {
		t.Fatalf("WireImage (memo): %v", err)
	}
	if img1 != img2 {
		t.Error("WireImage rebuilt on second call; want shared memo")
	}
	if got := WireImageBuilds() - before; got != 1 {
		t.Errorf("WireImageBuilds delta = %d, want 1", got)
	}

	headers, body, err := MarshalHeaders(ev)
	if err != nil {
		t.Fatalf("MarshalHeaders: %v", err)
	}
	want := stomp.NewMessageImage(headers, body)
	var gotWire, wantWire bytes.Buffer
	var enc stomp.Encoder
	if err := enc.EncodeImage(&gotWire, img1, "sub-1", "m-1-", 1); err != nil {
		t.Fatalf("EncodeImage: %v", err)
	}
	if err := enc.EncodeImage(&wantWire, want, "sub-1", "m-1-", 1); err != nil {
		t.Fatalf("EncodeImage (reference): %v", err)
	}
	if !bytes.Equal(gotWire.Bytes(), wantWire.Bytes()) {
		t.Errorf("event wire image differs from reference encode:\n%q\n%q",
			gotWire.Bytes(), wantWire.Bytes())
	}
}

// TestWireImageErrorMemoised: an event that cannot marshal (reserved
// attribute smuggled past validation) reports the error on every call
// without re-marshalling, and never bumps the build counter.
func TestWireImageErrorMemoised(t *testing.T) {
	ev := &Event{Topic: "/t", Attrs: map[string]string{ReservedPrefix + "labels": "x"}}
	ev.Freeze()
	before := WireImageBuilds()
	if _, err := ev.WireImage(); err == nil {
		t.Fatal("WireImage accepted a reserved attribute")
	}
	img, err := ev.WireImage()
	if err == nil || img != nil {
		t.Fatalf("memoised error lost: img=%v err=%v", img, err)
	}
	if got := WireImageBuilds() - before; got != 0 {
		t.Errorf("failed WireImage bumped build counter by %d", got)
	}
}

// TestCloneDropsWireImageMemo guards the federation bridge pattern for
// the image memo, like the label-header memo test above it in spirit:
// Clone → relabel → the clone must encode its own image, not the
// original's.
func TestCloneDropsWireImageMemo(t *testing.T) {
	src := New("/t", nil, label.Conf("east.nhs.uk/agg"))
	src.Freeze()
	if _, err := src.WireImage(); err != nil {
		t.Fatalf("WireImage: %v", err)
	}

	out := src.Clone()
	out.Labels = label.NewSet(label.Conf("west.nhs.uk/agg"))
	out.Freeze()
	img, err := out.WireImage()
	if err != nil {
		t.Fatalf("clone WireImage: %v", err)
	}
	if !bytes.Contains(img.Prefix(), []byte("west.nhs.uk/agg")) {
		t.Errorf("clone image carries stale labels: %q", img.Prefix())
	}
}

// TestDeliveryReleaseLifecycle pins the delivery pool contract: Delivery
// copies of attr-carrying events are pooled and cleared by Release, the
// shared attr-free delivery is not pooled (Release is a no-op on it), and
// double Release does not corrupt the pool.
func TestDeliveryReleaseLifecycle(t *testing.T) {
	ev := New("/t", map[string]string{"k": "v"}, label.Conf("a.org/x"))
	ev.Body = []byte("payload")
	ev.Freeze()

	d := ev.Delivery()
	if d == ev {
		t.Fatal("attr-carrying delivery shared the published event")
	}
	if !d.pooled {
		t.Error("attr-carrying delivery copy not marked pooled")
	}
	if d.Attr("k") != "v" || !bytes.Equal(d.Body, ev.Body) || !d.Labels.Equal(ev.Labels) {
		t.Fatalf("delivery copy lost data: %v", d)
	}

	d.Release()
	if d.pooled || d.Topic != "" || d.Body != nil || d.Labels != nil || len(d.Attrs) != 0 {
		t.Errorf("Release left state behind: %+v", d)
	}
	d.Release() // second release must be a no-op, not a double pool put

	shared := New("/t", nil)
	shared.Freeze()
	sd := shared.Delivery()
	if sd != shared {
		t.Fatal("attr-free delivery was copied")
	}
	sd.Release()
	if sd.Topic != "/t" {
		t.Error("Release touched a shared (non-pooled) event")
	}

	// A pooled delivery that escaped its lifecycle — re-published, hence
	// frozen and possibly shared — must be leaked to the GC, not cleared
	// back into the pool.
	escaped := ev.Delivery()
	escaped.Freeze()
	escaped.Release()
	if escaped.Topic != "/t" || escaped.Attr("k") != "v" {
		t.Errorf("Release cleared a re-published (frozen) delivery: %+v", escaped)
	}
}

// TestDeliverySteadyStateAllocs pins the delivery-alloc diet for the
// in-process path: with the pool warm and the consumer releasing, an
// attr-carrying delivery allocates nothing in steady state.
func TestDeliverySteadyStateAllocs(t *testing.T) {
	ev := New("/t", map[string]string{"k": "v", "k2": "v2"})
	ev.Freeze()
	ev.Delivery().Release() // warm the pool
	avg := testing.AllocsPerRun(200, func() {
		ev.Delivery().Release()
	})
	if avg > 0 {
		t.Errorf("Delivery+Release allocs/op = %g, want 0", avg)
	}
}

// TestUnmarshalViewDeliveryPooled: the networked delivery unmarshal
// matches UnmarshalView's semantics while drawing the event (and its
// reused attribute map) from the delivery pool.
func TestUnmarshalViewDeliveryPooled(t *testing.T) {
	raw := messageWire(t)
	var cache DecodeCache

	v := decodeWire(t, raw)
	plain, err := UnmarshalView(&v.Headers, append([]byte(nil), v.Body...), &cache)
	if err != nil {
		t.Fatalf("UnmarshalView: %v", err)
	}
	v = decodeWire(t, raw)
	pooled, err := UnmarshalViewDelivery(&v.Headers, v.Body, &cache)
	if err != nil {
		t.Fatalf("UnmarshalViewDelivery: %v", err)
	}
	if !pooled.pooled {
		t.Error("UnmarshalViewDelivery event not marked pooled")
	}
	if pooled.Topic != plain.Topic || pooled.Attr("patient_id") != plain.Attr("patient_id") ||
		!pooled.Labels.Equal(plain.Labels) || !bytes.Equal(pooled.Body, plain.Body) {
		t.Errorf("pooled unmarshal diverged:\npooled: %v\nplain:  %v", pooled, plain)
	}
	pooled.Release()

	// Steady state: event struct and attr map come from the pool; only
	// the attribute value strings allocate (the body is owned by the
	// caller here and not re-allocated per run).
	v = decodeWire(t, raw)
	avg := testing.AllocsPerRun(200, func() {
		ev, err := UnmarshalViewDelivery(&v.Headers, nil, &cache)
		if err != nil {
			t.Fatalf("UnmarshalViewDelivery: %v", err)
		}
		ev.Release()
	})
	if avg > 2 {
		t.Errorf("pooled unmarshal allocs/op = %g, want <= 2 (attr value strings only)", avg)
	}
}
