// Package jail implements the engine's "IFC jail" (paper §4.3, Fig. 2):
// the isolation boundary around event processing units.
//
// The paper uses Ruby's $SAFE=4 safe level, which irreversibly blocks I/O
// and global mutation on the callback's thread. Go has no equivalent
// runtime switch, so the jail is capability-based: unit callbacks receive
// only a restricted context interface, and every capability SafeWeb exposes
// for environment access is routed through a Jail that grants it only to
// privileged units. The threat model is identical to the paper's — code is
// buggy but not deliberately malicious (§3.2); a unit that directly calls
// os.Open bypasses the jail exactly as a Ruby unit exploiting a $SAFE
// escape would.
//
// Every denied operation is recorded in an Audit, so integration tests and
// deployments can verify that non-privileged units never attempt I/O.
package jail

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ErrForbidden is returned for operations denied by the jail.
var ErrForbidden = errors.New("jail: operation forbidden in isolated unit")

// Violation records one denied operation attempt.
type Violation struct {
	// Unit is the unit that attempted the operation.
	Unit string
	// Op names the operation, e.g. "fs.open" or "net.dial".
	Op string
	// Detail carries operation arguments, e.g. the path or address.
	Detail string
	// Time is when the attempt happened.
	Time time.Time
}

// Audit collects jail violations. It is safe for concurrent use. The zero
// value is ready to use.
type Audit struct {
	mu         sync.Mutex
	violations []Violation
}

// Record appends a violation.
func (a *Audit) Record(v Violation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.violations = append(a.violations, v)
}

// Violations returns a copy of all recorded violations.
func (a *Audit) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// Len returns the number of recorded violations.
func (a *Audit) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.violations)
}

// Jail mediates a unit's access to the environment. A privileged jail
// (paper: units running at $SAFE=0) grants everything; a non-privileged
// jail denies I/O and records the attempt.
type Jail struct {
	unit       string
	privileged bool
	audit      *Audit
}

// New creates a jail for the named unit. audit may be shared across jails;
// nil allocates a private one.
func New(unit string, privileged bool, audit *Audit) *Jail {
	if audit == nil {
		audit = &Audit{}
	}
	return &Jail{unit: unit, privileged: privileged, audit: audit}
}

// Unit returns the jailed unit's name.
func (j *Jail) Unit() string { return j.unit }

// Privileged reports whether the jail grants environment access.
func (j *Jail) Privileged() bool { return j.privileged }

// Audit returns the jail's audit log.
func (j *Jail) Audit() *Audit { return j.audit }

// Check authorises an operation, recording a violation on denial.
func (j *Jail) Check(op, detail string) error {
	if j.privileged {
		return nil
	}
	j.audit.Record(Violation{Unit: j.unit, Op: op, Detail: detail, Time: time.Now()})
	return fmt.Errorf("%w: unit %q attempted %s(%s)", ErrForbidden, j.unit, op, detail)
}

// FS returns a filesystem capability gated by the jail. Non-privileged
// units receive a capability whose every method fails.
func (j *Jail) FS() FS { return FS{jail: j} }

// FS is a jail-gated filesystem capability. SafeWeb units that genuinely
// need disk access (e.g. the data storage unit persisting to the
// application database) must be declared privileged in the policy file and
// use this capability, which keeps the audit trail complete.
type FS struct {
	jail *Jail
}

// Open opens a file for reading.
func (f FS) Open(path string) (io.ReadCloser, error) {
	if err := f.jail.Check("fs.open", path); err != nil {
		return nil, err
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("jail: open: %w", err)
	}
	return file, nil
}

// Create creates or truncates a file for writing.
func (f FS) Create(path string) (io.WriteCloser, error) {
	if err := f.jail.Check("fs.create", path); err != nil {
		return nil, err
	}
	file, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("jail: create: %w", err)
	}
	return file, nil
}

// ReadFile reads an entire file.
func (f FS) ReadFile(path string) ([]byte, error) {
	if err := f.jail.Check("fs.read", path); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("jail: read: %w", err)
	}
	return data, nil
}

// WriteFile writes an entire file.
func (f FS) WriteFile(path string, data []byte, perm os.FileMode) error {
	if err := f.jail.Check("fs.write", path); err != nil {
		return err
	}
	if err := os.WriteFile(path, data, perm); err != nil {
		return fmt.Errorf("jail: write: %w", err)
	}
	return nil
}

// Env returns an environment-variable capability gated by the jail.
func (j *Jail) Env() Env { return Env{jail: j} }

// Env is a jail-gated process-environment capability.
type Env struct {
	jail *Jail
}

// Get reads an environment variable.
func (e Env) Get(key string) (string, error) {
	if err := e.jail.Check("env.get", key); err != nil {
		return "", err
	}
	return os.Getenv(key), nil
}

// Exec returns a capability for checking exec permission. SafeWeb never
// executes subprocesses itself, but units ported from shell-invoking code
// go through this gate so attempts show up in the audit.
func (j *Jail) Exec(name string) error {
	return j.Check("exec", name)
}
