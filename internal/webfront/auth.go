package webfront

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"net/http"
	"sync"
	"time"

	"safeweb/internal/webdb"
)

// Authentication extensions beyond HTTP basic auth. The paper's frontend
// "uses HTTP basic authentication and TLS. We plan to add support for
// authentication using NHS smartcards in the future" (§5.1); this file
// implements that future work as two additional, optional mechanisms:
//
//   - Cookie sessions: POST /session with basic credentials opens a
//     session in the web database; subsequent requests authenticate with
//     the cookie alone, avoiding per-request credential hashing.
//   - Smartcards: pre-provisioned bearer tokens presented in the
//     X-Safeweb-Smartcard header, modelling NHS smartcard login. Tokens
//     are stored hashed, so the web database never holds usable secrets.
//
// Both resolve to the same webdb user, so privileges and the release
// check are identical across mechanisms.

// SessionCookie is the session cookie name.
const SessionCookie = "safeweb_session"

// SmartcardHeader carries the smartcard token.
const SmartcardHeader = "X-Safeweb-Smartcard"

// ErrNoCredentials is returned by the authenticators when their mechanism
// is not present on the request (the dispatcher then tries the next one).
var errNoCredentials = errors.New("webfront: no credentials")

// EnableSessionAuth registers the session login/logout routes and turns on
// cookie authentication with the given session lifetime.
//
//	POST /session   (basic auth)  -> sets the session cookie
//	POST /logout    (cookie)      -> deletes the session
func (a *App) EnableSessionAuth(ttl time.Duration) {
	if ttl <= 0 {
		ttl = 12 * time.Hour
	}
	a.sessionTTL = ttl

	// The login route itself authenticates with basic credentials, so it
	// is registered as a normal (authenticated) route; its handler only
	// has to create the session.
	a.Post("/session", func(c *Ctx) error {
		sess := a.cfg.WebDB.CreateSession(c.User.ID, a.sessionTTL)
		c.Header("Set-Cookie", (&http.Cookie{
			Name:     SessionCookie,
			Value:    sess.Token,
			Path:     "/",
			HttpOnly: true,
			SameSite: http.SameSiteStrictMode,
		}).String())
		c.WriteString("session opened")
		return nil
	})
	a.Post("/logout", func(c *Ctx) error {
		if cookie, err := c.Request.Cookie(SessionCookie); err == nil {
			a.cfg.WebDB.DeleteSession(cookie.Value)
		}
		c.Header("Set-Cookie", (&http.Cookie{
			Name:   SessionCookie,
			Value:  "",
			Path:   "/",
			MaxAge: -1,
		}).String())
		c.WriteString("logged out")
		return nil
	})
}

// smartcardEntry is one provisioned card: the token hash and the holder.
type smartcardEntry struct {
	tokenHash string
	username  string
}

// RegisterSmartcard provisions a smartcard token for a user. The token is
// stored hashed; present it in the X-Safeweb-Smartcard request header.
func (a *App) RegisterSmartcard(token, username string) {
	a.cardsMu.Lock()
	defer a.cardsMu.Unlock()
	a.cards = append(a.cards, smartcardEntry{
		tokenHash: hashToken(token),
		username:  username,
	})
}

func hashToken(token string) string {
	sum := sha256.Sum256([]byte("safeweb-smartcard:" + token))
	return hex.EncodeToString(sum[:])
}

// smartcardState is embedded in App.
type smartcardState struct {
	cardsMu    sync.Mutex
	cards      []smartcardEntry
	sessionTTL time.Duration
}

// authenticateRequest resolves a user from the request, trying smartcard,
// then session cookie, then HTTP basic auth. It reports
// errNoCredentials when no mechanism is present.
func (a *App) authenticateRequest(r *http.Request) (*webdb.User, error) {
	// Smartcard.
	if token := r.Header.Get(SmartcardHeader); token != "" {
		hash := hashToken(token)
		a.cardsMu.Lock()
		username := ""
		for _, card := range a.cards {
			if subtle.ConstantTimeCompare([]byte(card.tokenHash), []byte(hash)) == 1 {
				username = card.username
				break
			}
		}
		a.cardsMu.Unlock()
		if username == "" {
			return nil, errors.New("webfront: unknown smartcard")
		}
		return a.cfg.WebDB.FindUser(username)
	}

	// Session cookie (only when sessions are enabled).
	if a.sessionTTL > 0 {
		if cookie, err := r.Cookie(SessionCookie); err == nil {
			sess, err := a.cfg.WebDB.GetSession(cookie.Value)
			if err != nil {
				return nil, err
			}
			return a.cfg.WebDB.FindUserByID(sess.UID)
		}
	}

	// HTTP basic auth.
	username, password, ok := r.BasicAuth()
	if !ok {
		return nil, errNoCredentials
	}
	return a.verifyCredentials(username, password)
}
