package broker

import (
	"crypto/tls"
	"fmt"
	"log"
	"strconv"
	"sync"
	"sync/atomic"

	"safeweb/internal/event"
	"safeweb/internal/stomp"
)

// ServerConfig configures the STOMP network front of a broker.
type ServerConfig struct {
	// Authenticate validates CONNECT credentials; nil accepts everyone
	// (deployments inside the Intranet zone rely on network partitioning,
	// paper Fig. 4; DMZ-facing brokers must set this).
	Authenticate stomp.Authenticator
	// TLS enables transport security ("extended with SSL support at the
	// transport layer", §4.2).
	TLS *tls.Config
	// Logf logs; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Server exposes a Broker over STOMP. Logins name the policy principal of
// the connection; SUBSCRIBE and SEND frames are translated to broker
// operations with label semantics preserved.
type Server struct {
	broker *Broker
	stomp  *stomp.Server

	mu       sync.Mutex
	sessions map[uint64]*serverSession
}

type serverSession struct {
	sess *stomp.Session
	// subs maps the client-chosen subscription id to the broker
	// subscription.
	subs map[string]*Subscription

	// idPrefix is the session's message-id prefix ("m-<session>-");
	// msgSeq numbers messages within it without touching the server lock.
	idPrefix string
	msgSeq   atomic.Uint64

	// lastFrame memoises the MESSAGE frame built for the most recently
	// delivered event: a fan-out of N subscriptions on one session
	// marshals the event once and shares the base frame across
	// deliveries. Best-effort — concurrent publishers may rebuild;
	// correctness never depends on a hit.
	lastFrame atomic.Pointer[deliveryFrame]

	// decCache memoises label-header parses and the destination string
	// for this session's inbound SENDs; OnFrameView runs on the session
	// read goroutine only.
	decCache event.DecodeCache
}

// deliveryFrame pairs a delivered event with the base MESSAGE frame built
// from it. The frame is immutable once stored — deliveries pass it to
// Session.SendMessage unmodified, and the per-subscription routing
// headers exist only on the wire (encoder-side), sharing headers and body
// the same way the broker core shares events (zero-copy delivery). Never
// mutate a frame on the delivery path; concurrent deliveries of the same
// event share it.
type deliveryFrame struct {
	ev *event.Event
	f  *stomp.Frame
}

// NewServer starts a STOMP front for the broker on addr.
func NewServer(addr string, b *Broker, cfg ServerConfig) (*Server, error) {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	srv := &Server{
		broker:   b,
		sessions: make(map[uint64]*serverSession),
	}
	st, err := stomp.NewServer(addr, stomp.ServerConfig{
		Handler:      srv,
		Authenticate: cfg.Authenticate,
		TLS:          cfg.TLS,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	srv.stomp = st
	return srv, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.stomp.Addr() }

// Close shuts down the network front (the broker itself stays open).
func (s *Server) Close() error { return s.stomp.Close() }

// OnConnect implements stomp.SessionHandler.
func (s *Server) OnConnect(sess *stomp.Session, login string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[sess.ID()] = &serverSession{
		sess:     sess,
		subs:     make(map[string]*Subscription),
		idPrefix: "m-" + strconv.FormatUint(sess.ID(), 10) + "-",
	}
	return nil
}

// OnDisconnect implements stomp.SessionHandler.
func (s *Server) OnDisconnect(sess *stomp.Session) {
	s.mu.Lock()
	ss := s.sessions[sess.ID()]
	delete(s.sessions, sess.ID())
	s.mu.Unlock()
	if ss == nil {
		return
	}
	for _, sub := range ss.subs {
		s.broker.Unsubscribe(sub)
	}
}

// OnFrame implements stomp.SessionHandler. The stomp server prefers the
// OnFrameView fast path and only reaches this adapter through callers that
// hold a materialised frame.
func (s *Server) OnFrame(sess *stomp.Session, f *stomp.Frame) error {
	return s.OnFrameView(sess, stomp.ViewFromFrame(f))
}

// OnFrameView implements stomp.FrameViewHandler: the map-free inbound
// path. SEND frames — the hot path — go straight from the decoder's
// header view to an event in one pass (event.UnmarshalView); control
// frames pull the few headers they need as owned strings.
func (s *Server) OnFrameView(sess *stomp.Session, v *stomp.FrameView) error {
	s.mu.Lock()
	ss := s.sessions[sess.ID()]
	s.mu.Unlock()
	if ss == nil {
		return fmt.Errorf("broker: no session state for %d", sess.ID())
	}

	switch v.Command {
	case stomp.CmdSend:
		ev, err := event.UnmarshalView(&v.Headers, v.Body, &ss.decCache)
		if err != nil {
			return err
		}
		return s.broker.Publish(sess.Login(), ev)

	case stomp.CmdSubscribe:
		clientID := v.Headers.Header(stomp.HdrID)
		if clientID == "" {
			return fmt.Errorf("broker: SUBSCRIBE without id header")
		}
		topic := v.Headers.Header(stomp.HdrDestination)
		sel := v.Headers.Header(stomp.HdrSelector)
		sub, err := s.broker.Subscribe(sess.Login(), topic, sel, func(ev *event.Event) {
			s.deliver(ss, clientID, ev)
		})
		if err != nil {
			return err
		}
		s.mu.Lock()
		ss.subs[clientID] = sub
		s.mu.Unlock()
		return nil

	case stomp.CmdUnsubscribe:
		clientID := v.Headers.Header(stomp.HdrID)
		s.mu.Lock()
		sub := ss.subs[clientID]
		delete(ss.subs, clientID)
		s.mu.Unlock()
		s.broker.Unsubscribe(sub)
		return nil

	case stomp.CmdAck, stomp.CmdNack, stomp.CmdBegin, stomp.CmdCommit, stomp.CmdAbort:
		// Auto-ack, no transactions: accepted and ignored.
		return nil

	default:
		return fmt.Errorf("broker: unsupported command %s", v.Command)
	}
}

// deliver sends a matched event to a session as a MESSAGE frame. The base
// frame (event headers + shared body) is built once per event and shared
// across the session's matching subscriptions; the per-delivery
// subscription and message-id routing headers are handed to the encoder
// and exist only on the wire, so fan-out never clones the frame. The
// frames feed the session's coalescing writer, so a fan-out burst costs
// one flush.
func (s *Server) deliver(ss *serverSession, clientSubID string, ev *event.Event) {
	base := ss.baseFrame(ev)
	if base == nil {
		return // event was validated at publish; cannot happen in practice
	}
	seq := ss.msgSeq.Add(1)
	// Session teardown races are handled by OnDisconnect.
	_ = ss.sess.SendMessage(base, clientSubID, ss.idPrefix, seq)
}

// maxMemoBodyLen caps the body size of memoised delivery frames: an idle
// session must not pin a multi-megabyte payload until its next delivery.
// Above the cap, rebuilding a header map is noise next to writing the
// body anyway.
const maxMemoBodyLen = 64 * 1024

// baseFrame returns the routing-header-free MESSAGE frame for ev,
// marshalling it at most once per event in the common sequential-delivery
// case. Memo hits require pointer identity, which the broker core
// provides for attribute-free events (shared outright across
// subscribers); holding the event in the memo keeps its address live, so
// a stale pointer can never alias a new event.
func (ss *serverSession) baseFrame(ev *event.Event) *stomp.Frame {
	if m := ss.lastFrame.Load(); m != nil && m.ev == ev {
		return m.f
	}
	headers, body, err := event.MarshalHeaders(ev)
	if err != nil {
		return nil
	}
	f := stomp.NewFrame(stomp.CmdMessage)
	for k, v := range headers {
		f.SetHeader(k, v)
	}
	f.Body = body
	if len(body) <= maxMemoBodyLen {
		ss.lastFrame.Store(&deliveryFrame{ev: ev, f: f})
	}
	return f
}
