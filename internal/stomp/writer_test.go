package stomp

import (
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func TestResolveWriteQueueLen(t *testing.T) {
	if n, err := resolveWriteQueueLen(0); err != nil || n != defaultWriteQueueLen {
		t.Errorf("resolveWriteQueueLen(0) = %d, %v; want %d, nil", n, err, defaultWriteQueueLen)
	}
	if n, err := resolveWriteQueueLen(7); err != nil || n != 7 {
		t.Errorf("resolveWriteQueueLen(7) = %d, %v; want 7, nil", n, err)
	}
	if _, err := resolveWriteQueueLen(-1); err == nil {
		t.Error("resolveWriteQueueLen(-1) accepted; want error")
	}
}

func TestServerRejectsBadWriteConfig(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", ServerConfig{
		Handler:       newEchoHandler(),
		WriteQueueLen: -1,
	}); err == nil {
		t.Error("NewServer accepted negative WriteQueueLen")
	}
	if _, err := NewServer("127.0.0.1:0", ServerConfig{
		Handler:      newEchoHandler(),
		WriteTimeout: -time.Second,
	}); err == nil {
		t.Error("NewServer accepted negative WriteTimeout")
	}
	// Dial validates before connecting, so a bogus address is fine here.
	if _, err := Dial("127.0.0.1:1", ClientConfig{Login: "u", WriteQueueLen: -1}); err == nil {
		t.Error("Dial accepted negative WriteQueueLen")
	}
	if _, err := Dial("127.0.0.1:1", ClientConfig{Login: "u", WriteTimeout: -time.Second}); err == nil {
		t.Error("Dial accepted negative WriteTimeout")
	}
}

// sessionCapture is a SessionHandler that hands the accepted session to
// the test.
type sessionCapture struct {
	sessions chan *Session
}

func (h *sessionCapture) OnConnect(sess *Session, login string) error {
	h.sessions <- sess
	return nil
}
func (h *sessionCapture) OnFrame(*Session, *Frame) error { return nil }
func (h *sessionCapture) OnDisconnect(*Session)          {}

func TestSessionQueueCapReflectsConfig(t *testing.T) {
	h := &sessionCapture{sessions: make(chan *Session, 1)}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Handler:       h,
		Logf:          t.Logf,
		WriteQueueLen: 7,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), ClientConfig{Login: "u"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	select {
	case sess := <-h.sessions:
		if got := sess.QueueCap(); got != 7 {
			t.Errorf("QueueCap() = %d, want 7", got)
		}
		if got := sess.QueueDepth(); got < 0 || got > 7 {
			t.Errorf("QueueDepth() = %d, want 0..7", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no session accepted")
	}
}

// stalledWriter builds a frameWriter whose peer never reads: the writer
// goroutine picks up the first frame and wedges in the write, so the queue
// fills deterministically. The returned cleanup unblocks and joins the
// writer goroutine.
func stalledWriter(t *testing.T, queueLen int) (*frameWriter, func()) {
	t.Helper()
	server, client := net.Pipe()
	fw := newFrameWriter(server, queueLen, 0, nil)
	cleanup := func() {
		fw.kill()
		_ = server.Close() // unwedge the writer goroutine with an error
		_ = client.Close()
		<-fw.done
	}
	t.Cleanup(cleanup)
	return fw, cleanup
}

// fillQueue sends frames until the writer has one frame wedged in its
// write and queueLen frames queued, i.e. the next enqueue would block.
func fillQueue(t *testing.T, fw *frameWriter, queueLen int) {
	t.Helper()
	mk := func(i int) outFrame {
		f := NewFrame(CmdMessage)
		f.SetHeader("i", string(rune('a'+i)))
		return outFrame{f: f, sub: "s1"}
	}
	// First frame: wakes the writer, which wedges in the pipe write. The
	// flush flag makes it wedge inside write() — before drainQueued could
	// race the fills below off the queue.
	first := mk(0)
	first.flush = true
	if err := fw.send(first); err != nil {
		t.Fatalf("send 0: %v", err)
	}
	// Wait until the writer has taken it off the queue.
	deadline := time.Now().Add(5 * time.Second)
	for len(fw.ch) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the first frame")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= queueLen; i++ {
		if err := fw.send(mk(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if len(fw.ch) != queueLen {
		t.Fatalf("queue depth %d after fill, want %d", len(fw.ch), queueLen)
	}
}

func TestTrySendFullQueueDoesNotBlock(t *testing.T) {
	const queueLen = 4
	fw, _ := stalledWriter(t, queueLen)
	fillQueue(t, fw, queueLen)

	done := make(chan struct{})
	var ok bool
	var err error
	go func() {
		defer close(done)
		ok, err = fw.trySend(outFrame{f: NewFrame(CmdMessage), sub: "s1"})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("trySend blocked on a full queue")
	}
	if ok || err != nil {
		t.Errorf("trySend on full queue = %v, %v; want false, nil", ok, err)
	}
	if got := fw.highWater.Load(); got != queueLen {
		t.Errorf("high-water mark %d, want %d", got, queueLen)
	}
}

func TestSendDropOldestEvictsDeliveriesNotControl(t *testing.T) {
	const queueLen = 2
	fw, _ := stalledWriter(t, queueLen)

	var mu sync.Mutex
	var evicted []outFrame
	fw.onEvict = func(of outFrame) {
		mu.Lock()
		evicted = append(evicted, of)
		mu.Unlock()
	}

	// Wedge the writer on a first delivery (the flush flag wedges it
	// inside write(), before it could drain more of the queue), then queue
	// a control frame (RECEIPT, sub empty) followed by a delivery: the
	// queue is [control, B].
	if err := fw.send(outFrame{f: NewFrame(CmdMessage), sub: "s1", payload: "A", flush: true}); err != nil {
		t.Fatalf("send A: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(fw.ch) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the first frame")
		}
		time.Sleep(time.Millisecond)
	}
	receipt := NewFrame(CmdReceipt)
	receipt.SetHeader(HdrReceiptID, "r1")
	if err := fw.send(outFrame{f: receipt, flush: true}); err != nil {
		t.Fatalf("send control: %v", err)
	}
	if err := fw.send(outFrame{f: NewFrame(CmdMessage), sub: "s1", payload: "B"}); err != nil {
		t.Fatalf("send B: %v", err)
	}

	// Drop-oldest enqueue of C: the control frame at the head must be
	// re-enqueued, delivery B evicted, C queued.
	done := make(chan error, 1)
	go func() {
		done <- fw.sendDropOldest(outFrame{f: NewFrame(CmdMessage), sub: "s1", payload: "C"})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sendDropOldest: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sendDropOldest blocked")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 1 {
		t.Fatalf("%d deliveries evicted, want 1 (got %+v)", len(evicted), evicted)
	}
	if evicted[0].payload != "B" || evicted[0].sub != "s1" {
		t.Errorf("evicted payload %v sub %q, want B s1", evicted[0].payload, evicted[0].sub)
	}
	// The queue must still hold the control frame (never evicted) and C.
	if len(fw.ch) != queueLen {
		t.Fatalf("queue depth %d, want %d", len(fw.ch), queueLen)
	}
	var kept []outFrame
	for len(fw.ch) > 0 {
		kept = append(kept, <-fw.ch)
	}
	foundControl, foundC := false, false
	for _, of := range kept {
		if of.sub == "" && of.f.Command == CmdReceipt {
			foundControl = true
		}
		if of.payload == "C" {
			foundC = true
		}
	}
	if !foundControl || !foundC {
		t.Errorf("queue after drop-oldest kept control=%v C=%v, want both", foundControl, foundC)
	}
}

// TestWriteTimeoutFailsStalledPeer: with WriteTimeout set, a peer that
// stops reading fails the connection with a sticky deadline error instead
// of wedging the writer goroutine forever.
func TestWriteTimeoutFailsStalledPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	peer, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer peer.Close()
	if tc, ok := peer.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096) // bound what the kernel absorbs for the non-reader
	}
	var conn net.Conn
	select {
	case conn = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	defer conn.Close()

	errs := make(chan error, 1)
	fw := newFrameWriter(conn, 16, 100*time.Millisecond, func(err error) {
		select {
		case errs <- err:
		default:
		}
		_ = conn.Close()
	})
	defer func() {
		fw.kill()
		_ = conn.Close()
		<-fw.done
	}()

	// The peer never reads: pump large frames until the buffers fill, the
	// flush wedges, and the deadline fires.
	body := make([]byte, 32*1024)
	f := NewFrame(CmdMessage)
	f.Body = body
	deadline := time.Now().Add(30 * time.Second)
	var sticky error
	for sticky == nil {
		if time.Now().After(deadline) {
			t.Fatal("write deadline never fired against a stalled peer")
		}
		if err := fw.send(outFrame{f: f, sub: "s1"}); err != nil {
			sticky = err
		}
	}
	if !errors.Is(sticky, os.ErrDeadlineExceeded) {
		t.Errorf("sticky error = %v, want deadline exceeded", sticky)
	}
	select {
	case err := <-errs:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("onError got %v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onError never fired")
	}
}
