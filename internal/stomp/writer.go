package stomp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// closeFlushTimeout bounds the final drain of a connection's write queue
// at close: a peer that stopped reading must not wedge teardown behind a
// full TCP buffer. close() arms it as a write deadline on the connection.
const closeFlushTimeout = 2 * time.Second

// defaultWriteQueueLen is the per-connection send queue length when the
// configuration does not override it. A full queue blocks senders,
// propagating back-pressure to the goroutines producing frames (typically
// a peer connection's read loop) — unless the sender chose one of the
// non-blocking enqueue paths (trySend, sendDropOldest).
const defaultWriteQueueLen = 128

// resolveWriteQueueLen maps a configured queue length to the effective
// one: zero selects the default, negative values are rejected so a
// misconfigured connection fails at construction instead of panicking (or
// silently degrading) at its first send.
func resolveWriteQueueLen(n int) (int, error) {
	switch {
	case n == 0:
		return defaultWriteQueueLen, nil
	case n < 0:
		return 0, fmt.Errorf("stomp: write queue length must be positive, got %d", n)
	}
	return n, nil
}

// outFrame pairs a queued frame with its flush class. For broadcast
// MESSAGE sends, sub/idPrefix/seq carry the per-delivery routing headers
// so the shared base frame is never cloned; the encoder emits them
// in-line. When img is set the frame is a preencoded wire image — the
// hottest path — and only the per-send headers are encoded: the routing
// headers when sub names a subscription (MESSAGE delivery), or the
// receipt header when it does not (producer SEND image). payload is an
// opaque caller handle (the broker's event) reported back if the frame is
// evicted by a drop-oldest enqueue; it is never touched otherwise.
type outFrame struct {
	f       *Frame
	img     *WireImage // non-nil: preencoded image
	payload any        // opaque handle for eviction reporting
	sub     string     // non-empty: encode as MESSAGE with routing headers
	idSeq   uint64

	idPrefix string
	receipt  string // img set, sub empty: SEND image receipt splice
	flush    bool

	// offset carries a replayed journal record's offset (hasOffset set) so
	// the encoder splices the delivery-offset header alongside the routing
	// headers; hasOffset distinguishes a real offset 0 from "no offset".
	offset    int64
	hasOffset bool
}

// frameWriter is the write-coalescing frame sink of one connection. Sends
// enqueue frames; a single writer goroutine encodes them with a reused
// Encoder into a buffered writer and flushes once per drained batch, so N
// MESSAGE frames to a busy subscriber cost ~1 syscall instead of N.
// Frames whose flush flag is set (receipts, ERROR, handshake and other
// control traffic) force an immediate flush, so request/response latency
// is never traded for batching; ordering is preserved unconditionally by
// the single queue.
//
// The first write error is sticky: it is reported once to onError (which
// should close the connection so the read side unblocks too), later sends
// fail fast with it, and already-queued frames are discarded. After the
// error the writer goroutine keeps draining (and discarding) the queue
// until close, so blocked senders always make progress.
//
// With writeTimeout > 0 every write/flush runs under a deadline armed on
// the connection, so a peer that stops reading fails the connection with
// a sticky deadline error instead of wedging the writer goroutine (and
// everything blocked behind its queue) forever.
type frameWriter struct {
	conn         net.Conn
	bw           *bufio.Writer
	enc          Encoder
	writeTimeout time.Duration

	ch   chan outFrame
	quit chan struct{} // closed by close()/kill() under mu; run() drains and exits
	done chan struct{} // closed when the writer goroutine exits

	// onEvict observes broadcast deliveries evicted by sendDropOldest;
	// set once before the first send, nil when unused.
	onEvict func(of outFrame)

	// highWater tracks the deepest queue occupancy observed at enqueue
	// time — the slow-consumer early-warning signal surfaced in stats.
	highWater atomic.Int64

	// mu fences send against close: senders hold the read side across
	// the enqueue, so once close() holds the write side and sets closed,
	// no frame can slip into ch after run()'s final drain — an accepted
	// send is always written (or discarded visibly via the sticky error).
	mu     sync.RWMutex
	closed bool

	err     atomic.Pointer[error]
	onError func(error)
}

// newFrameWriter starts the writer goroutine for conn. queueLen must be
// positive (callers resolve configuration via resolveWriteQueueLen);
// writeTimeout zero disables the per-flush deadline.
func newFrameWriter(conn net.Conn, queueLen int, writeTimeout time.Duration, onError func(error)) *frameWriter {
	if queueLen <= 0 {
		panic("stomp: newFrameWriter queue length must be positive")
	}
	fw := &frameWriter{
		conn:         conn,
		bw:           bufio.NewWriterSize(conn, 32*1024),
		writeTimeout: writeTimeout,
		ch:           make(chan outFrame, queueLen),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		onError:      onError,
	}
	go fw.run()
	return fw
}

// send enqueues a frame. It blocks while the queue is full and fails fast
// after a write error or close. A nil return means the frame was queued,
// not that it reached the peer; callers needing confirmation use receipts.
//
// A send blocked on a full queue holds fw.mu's read side, which close()
// needs for its write side — that is safe, not a deadlock: the writer
// goroutine keeps draining until quit is closed, which close() can only
// do after this send completes. (A writer wedged mid-flush on a dead peer
// stalls that drain; arm writeTimeout to bound it.)
func (fw *frameWriter) send(of outFrame) error {
	if ep := fw.err.Load(); ep != nil {
		return *ep
	}
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	if fw.closed {
		return net.ErrClosed
	}
	fw.ch <- of
	fw.noteDepth()
	return nil
}

// trySend is send without the blocking: a full queue returns (false, nil)
// immediately instead of waiting for the writer to drain. The overflow
// decision is the caller's — the broker's drop-newest and disconnect
// policies ride this path so a stalled session never blocks the
// publishing goroutine.
func (fw *frameWriter) trySend(of outFrame) (bool, error) {
	if ep := fw.err.Load(); ep != nil {
		return false, *ep
	}
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	if fw.closed {
		return false, net.ErrClosed
	}
	select {
	case fw.ch <- of:
		fw.noteDepth()
		return true, nil
	default:
		return false, nil
	}
}

// sendDropOldest enqueues of, evicting queued broadcast deliveries
// (sub != "") from the head of the queue while it is full — the
// drop-oldest overflow policy. Every evicted delivery is reported through
// onEvict on the calling goroutine; the enqueue itself never blocks on a
// stalled peer. Control frames (receipts, errors, handshake traffic)
// encountered at the head are never dropped: they are re-enqueued at the
// tail, which may reorder them relative to other control frames (each
// carries its own correlation id) but never relative to broadcast
// deliveries, which are only ever dropped, not reordered.
func (fw *frameWriter) sendDropOldest(of outFrame) error {
	if ep := fw.err.Load(); ep != nil {
		return *ep
	}
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	if fw.closed {
		return net.ErrClosed
	}
	for {
		select {
		case fw.ch <- of:
			fw.noteDepth()
			return nil
		default:
		}
		select {
		case old := <-fw.ch:
			if old.sub != "" {
				if fw.onEvict != nil {
					fw.onEvict(old)
				}
				continue
			}
			// A control frame must reach the peer: put it back. The slot
			// this pop just freed makes the re-enqueue all but certain to
			// succeed immediately; losing the race to a concurrent sender
			// degrades to a (briefly) blocking put, identical to send().
			fw.ch <- old
		default:
			// The writer drained the queue between attempts; retry.
		}
	}
}

// noteDepth folds the post-enqueue queue depth into the high-water mark.
// Steady state is a single load (depth below the mark), so the fan-out
// fast path pays no CAS once the mark stabilises.
func (fw *frameWriter) noteDepth() {
	d := int64(len(fw.ch))
	for {
		cur := fw.highWater.Load()
		if d <= cur || fw.highWater.CompareAndSwap(cur, d) {
			return
		}
	}
}

// close stops accepting frames, waits for the queue to drain and flush,
// and returns the sticky write error, if any. The drain is bounded by a
// write deadline armed here (closeFlushTimeout), so a peer that stopped
// reading cannot wedge teardown. Idempotent and safe from any goroutine
// except the writer's own.
func (fw *frameWriter) close() error {
	fw.mu.Lock()
	if !fw.closed {
		fw.closed = true
		_ = fw.conn.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
		close(fw.quit)
	}
	fw.mu.Unlock()
	<-fw.done
	if ep := fw.err.Load(); ep != nil {
		return *ep
	}
	return nil
}

// kill is close without the drain guarantee: it marks the writer closed
// and returns without waiting for the goroutine to exit — the
// slow-consumer eviction path, safe to call from a publishing goroutine.
// The caller must close the connection first so a flush wedged on the
// dead peer unblocks with an error; the writer goroutine then drains the
// queue into the sticky error and exits on its own.
func (fw *frameWriter) kill() {
	fw.mu.Lock()
	if !fw.closed {
		fw.closed = true
		close(fw.quit)
	}
	fw.mu.Unlock()
}

func (fw *frameWriter) run() {
	defer close(fw.done)
	for {
		select {
		case of := <-fw.ch:
			fw.write(of)
			fw.drainQueued()
			fw.flush()
		case <-fw.quit:
			fw.drainQueued()
			fw.flush()
			return
		}
	}
}

// drainQueued writes every frame already sitting in the queue without
// blocking for more; the caller flushes once afterwards. This is the
// coalescing step: everything queued behind the frame that woke the
// writer shares its flush.
func (fw *frameWriter) drainQueued() {
	for {
		select {
		case of := <-fw.ch:
			fw.write(of)
		default:
			return
		}
	}
}

func (fw *frameWriter) write(of outFrame) {
	if fw.err.Load() != nil {
		return // connection is dead; discard
	}
	fw.armDeadline()
	var err error
	switch {
	case of.img != nil && of.sub != "" && of.hasOffset:
		err = fw.enc.EncodeImageOffset(fw.bw, of.img, of.sub, of.idPrefix, of.idSeq, of.offset)
	case of.img != nil && of.sub != "":
		err = fw.enc.EncodeImage(fw.bw, of.img, of.sub, of.idPrefix, of.idSeq)
	case of.img != nil:
		err = fw.enc.EncodeSendImage(fw.bw, of.img, of.receipt)
	case of.sub != "":
		err = fw.enc.EncodeMessage(fw.bw, of.f, of.sub, of.idPrefix, of.idSeq)
	default:
		err = fw.enc.Encode(fw.bw, of.f)
	}
	if err != nil {
		fw.fail(err)
		return
	}
	if of.flush {
		fw.flush()
	}
}

func (fw *frameWriter) flush() {
	if fw.err.Load() != nil {
		return
	}
	fw.armDeadline()
	if err := fw.bw.Flush(); err != nil {
		fw.fail(err)
	}
}

// armDeadline (re)arms the per-flush write deadline. It is refreshed
// before every frame encode and every flush, so a peer making progress is
// never penalised for the size of a batch, while a peer that stops
// reading fails the connection within writeTimeout of the writer's next
// blocked write. During the close drain this may extend (or tighten) the
// deadline close() armed; either way every write stays bounded.
func (fw *frameWriter) armDeadline() {
	if fw.writeTimeout > 0 {
		_ = fw.conn.SetWriteDeadline(time.Now().Add(fw.writeTimeout))
	}
}

func (fw *frameWriter) fail(err error) {
	fw.err.Store(&err)
	if fw.onError != nil {
		fw.onError(err)
	}
}

// frameNeedsFlush classifies outbound frames for the coalescing writer:
// bulk MESSAGE/SEND traffic is flushed once per drained batch, while
// control frames — receipts, errors, handshakes, and anything carrying a
// receipt request — flush immediately so a peer blocked on a response
// never waits on batching.
func frameNeedsFlush(f *Frame) bool {
	switch f.Command {
	case CmdMessage, CmdSend:
		return f.Headers[HdrReceipt] != ""
	}
	return true
}
