package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk record framing. Every record — event records in segment files
// and ack records in the ack log — is stored as
//
//	u32 payload length | u32 CRC-32C of the payload | payload
//
// (all integers big-endian). The CRC covers the payload only; a torn
// write, a zeroed tail or a flipped bit fails the checksum and marks the
// end of the recoverable log. An event-record payload is
//
//	u8  version (recordVersion)
//	u8  flags (flagHasLabels)
//	i64 publish timestamp, Unix nanoseconds
//	u32 wire-image split offset (see stomp.WireImage)
//	u16 topic length  | topic bytes
//	u16 label length  | label header bytes (present iff flagHasLabels)
//	u32 image length  | the event's STOMP MESSAGE wire-image bytes
//
// The image bytes are the event's publish-time stomp.WireImage verbatim:
// append re-uses the encoding the fan-out path already produced, and
// replay hands the stored bytes straight back to the wire
// (stomp.RawMessageImage), so neither direction re-marshals the event.

const (
	// recordVersion is the event-record payload version; decode rejects
	// anything else so a future format change cannot be misread.
	recordVersion = 1

	// flagHasLabels marks a record whose event carried security labels;
	// unlabelled events skip the label field entirely.
	flagHasLabels = 1 << 0

	// frameHeaderLen is the length+CRC framing prefix.
	frameHeaderLen = 8

	// maxRecordSize bounds a single framed record. The scan on Open trusts
	// the length field only up to this bound, so a corrupt length cannot
	// make recovery attempt a multi-gigabyte allocation.
	maxRecordSize = 16 << 20
)

// castagnoli is the CRC-32C table shared by all framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord reports a record that failed its CRC or structural
// decode — the fail-closed signal for both recovery truncation and the
// fuzz harness.
var ErrCorruptRecord = errors.New("journal: corrupt record")

// Record is one journaled event: the publish-time wire image plus the
// framing replay needs to re-route and re-check it.
type Record struct {
	// Time is the append timestamp in Unix nanoseconds.
	Time int64
	// Topic is the destination the event was published to.
	Topic string
	// Labels is the event's label header in its sorted wire form
	// (label.Set.String()), empty for unlabelled events. Replay re-parses
	// it and re-enforces clearance at read time.
	Labels string
	// Split is the wire image's routing-header splice offset.
	Split int
	// Image is the event's preencoded STOMP MESSAGE image bytes.
	Image []byte
}

// appendRecord appends the framed wire form of rec to dst.
func appendRecord(dst []byte, rec *Record) ([]byte, error) {
	if len(rec.Topic) > 0xFFFF {
		return dst, fmt.Errorf("journal: topic too long (%d bytes)", len(rec.Topic))
	}
	if len(rec.Labels) > 0xFFFF {
		return dst, fmt.Errorf("journal: label header too long (%d bytes)", len(rec.Labels))
	}
	if rec.Split < 0 || rec.Split > len(rec.Image) {
		return dst, fmt.Errorf("journal: image split %d out of range [0,%d]", rec.Split, len(rec.Image))
	}
	payloadLen := 1 + 1 + 8 + 4 + 2 + len(rec.Topic) + 4 + len(rec.Image)
	flags := byte(0)
	if rec.Labels != "" {
		flags |= flagHasLabels
		payloadLen += 2 + len(rec.Labels)
	}
	if frameHeaderLen+payloadLen > maxRecordSize {
		return dst, fmt.Errorf("journal: record too large (%d bytes, max %d)", frameHeaderLen+payloadLen, maxRecordSize)
	}

	base := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(payloadLen))
	dst = append(dst, 0, 0, 0, 0) // CRC backfilled below
	dst = append(dst, recordVersion, flags)
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.Time))
	dst = binary.BigEndian.AppendUint32(dst, uint32(rec.Split))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(rec.Topic)))
	dst = append(dst, rec.Topic...)
	if flags&flagHasLabels != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(rec.Labels)))
		dst = append(dst, rec.Labels...)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rec.Image)))
	dst = append(dst, rec.Image...)

	crc := crc32.Checksum(dst[base+frameHeaderLen:], castagnoli)
	binary.BigEndian.PutUint32(dst[base+4:], crc)
	return dst, nil
}

// decodeRecord parses one framed record from the front of b into rec and
// returns the framed length consumed. Truncated input, a failed CRC, an
// unknown version or any structural mismatch returns ErrCorruptRecord;
// recovery treats every such failure as the torn tail of the log. The
// decoded Topic, Labels and Image are copied out of b.
func decodeRecord(b []byte, rec *Record) (int, error) {
	if len(b) < frameHeaderLen {
		return 0, fmt.Errorf("%w: truncated frame header", ErrCorruptRecord)
	}
	payloadLen := int(binary.BigEndian.Uint32(b))
	if frameHeaderLen+payloadLen > maxRecordSize {
		return 0, fmt.Errorf("%w: length %d exceeds record bound", ErrCorruptRecord, payloadLen)
	}
	if len(b) < frameHeaderLen+payloadLen {
		return 0, fmt.Errorf("%w: truncated payload", ErrCorruptRecord)
	}
	payload := b[frameHeaderLen : frameHeaderLen+payloadLen]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(b[4:]) {
		return 0, fmt.Errorf("%w: CRC mismatch", ErrCorruptRecord)
	}
	if len(payload) < 1+1+8+4+2 {
		return 0, fmt.Errorf("%w: payload too short", ErrCorruptRecord)
	}
	if payload[0] != recordVersion {
		return 0, fmt.Errorf("%w: unknown record version %d", ErrCorruptRecord, payload[0])
	}
	flags := payload[1]
	rec.Time = int64(binary.BigEndian.Uint64(payload[2:]))
	split := int(binary.BigEndian.Uint32(payload[10:]))
	p := payload[14:]

	topicLen := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < topicLen {
		return 0, fmt.Errorf("%w: truncated topic", ErrCorruptRecord)
	}
	rec.Topic = string(p[:topicLen])
	p = p[topicLen:]

	rec.Labels = ""
	if flags&flagHasLabels != 0 {
		if len(p) < 2 {
			return 0, fmt.Errorf("%w: truncated label length", ErrCorruptRecord)
		}
		labelLen := int(binary.BigEndian.Uint16(p))
		p = p[2:]
		if len(p) < labelLen {
			return 0, fmt.Errorf("%w: truncated labels", ErrCorruptRecord)
		}
		rec.Labels = string(p[:labelLen])
		p = p[labelLen:]
	}

	if len(p) < 4 {
		return 0, fmt.Errorf("%w: truncated image length", ErrCorruptRecord)
	}
	imageLen := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if len(p) != imageLen {
		return 0, fmt.Errorf("%w: image length %d does not match remaining payload %d", ErrCorruptRecord, imageLen, len(p))
	}
	if split > imageLen {
		return 0, fmt.Errorf("%w: split %d beyond image length %d", ErrCorruptRecord, split, imageLen)
	}
	rec.Split = split
	rec.Image = append([]byte(nil), p...)
	return frameHeaderLen + payloadLen, nil
}

// Ack records are framed identically; their payload is
//
//	u16 group length | group bytes
//	i64 cumulative acked offset
//
// and the log is append-only: the live ack of a group is the maximum
// offset of its records, so a duplicate or reordered append can never
// regress a group (the same CAS-max discipline the credit window uses).

// appendAckRecord appends the framed wire form of one (group, offset) ack.
func appendAckRecord(dst []byte, group string, offset int64) ([]byte, error) {
	if len(group) > 0xFFFF {
		return dst, fmt.Errorf("journal: group too long (%d bytes)", len(group))
	}
	payloadLen := 2 + len(group) + 8
	base := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(payloadLen))
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(group)))
	dst = append(dst, group...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(offset))
	crc := crc32.Checksum(dst[base+frameHeaderLen:], castagnoli)
	binary.BigEndian.PutUint32(dst[base+4:], crc)
	return dst, nil
}

// decodeAckRecord parses one framed ack record from the front of b,
// returning the framed length consumed.
func decodeAckRecord(b []byte) (group string, offset int64, n int, err error) {
	if len(b) < frameHeaderLen {
		return "", 0, 0, fmt.Errorf("%w: truncated frame header", ErrCorruptRecord)
	}
	payloadLen := int(binary.BigEndian.Uint32(b))
	if frameHeaderLen+payloadLen > maxRecordSize {
		return "", 0, 0, fmt.Errorf("%w: length %d exceeds record bound", ErrCorruptRecord, payloadLen)
	}
	if len(b) < frameHeaderLen+payloadLen {
		return "", 0, 0, fmt.Errorf("%w: truncated payload", ErrCorruptRecord)
	}
	payload := b[frameHeaderLen : frameHeaderLen+payloadLen]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(b[4:]) {
		return "", 0, 0, fmt.Errorf("%w: CRC mismatch", ErrCorruptRecord)
	}
	if len(payload) < 2+8 {
		return "", 0, 0, fmt.Errorf("%w: ack payload too short", ErrCorruptRecord)
	}
	groupLen := int(binary.BigEndian.Uint16(payload))
	if len(payload) != 2+groupLen+8 {
		return "", 0, 0, fmt.Errorf("%w: ack group length mismatch", ErrCorruptRecord)
	}
	group = string(payload[2 : 2+groupLen])
	offset = int64(binary.BigEndian.Uint64(payload[2+groupLen:]))
	return group, offset, frameHeaderLen + payloadLen, nil
}
