package broker

// AbruptClose tears down every shard connection without a DISCONNECT
// handshake — the chaos test's stand-in for a consumer crashing
// mid-stream.
func (c *Client) AbruptClose() {
	for _, sh := range c.shards {
		_ = sh.conn.Close()
	}
}

// subsSnapshot exposes the current subscription list for tests.
func (b *Broker) subsSnapshot() []*Subscription {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]*Subscription, 0, len(b.subs))
	for _, sub := range b.subs {
		out = append(out, sub)
	}
	return out
}
