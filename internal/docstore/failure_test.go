package docstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"safeweb/internal/label"
)

// TestReplicationInterruptedAndResumed: replication that stops mid-stream
// and resumes from its checkpoint converges without replaying everything.
func TestReplicationInterruptedAndResumed(t *testing.T) {
	src := New("intranet", Options{})
	dst := New("dmz", Options{ReadOnly: true})

	for i := 0; i < 10; i++ {
		mustPut(t, src, fmt.Sprintf("a-%d", i), record{Name: fmt.Sprint(i)})
	}
	cp, n := ReplicateOnce(src, dst, 0)
	if n != 10 {
		t.Fatalf("first push n=%d", n)
	}

	// "Interruption": more writes land while no replicator runs.
	for i := 0; i < 5; i++ {
		mustPut(t, src, fmt.Sprintf("b-%d", i), record{Name: fmt.Sprint(i)})
	}
	// Resume from the checkpoint: only the delta is pushed.
	_, n = ReplicateOnce(src, dst, cp)
	if n != 5 {
		t.Fatalf("resumed push n=%d, want 5", n)
	}
	if dst.Len() != 15 {
		t.Errorf("replica len = %d", dst.Len())
	}
}

// TestQuickReplicationConvergence: after any random interleaving of
// writes, updates and deletes with periodic partial replications, a final
// push makes the replica equal to the source.
func TestQuickReplicationConvergence(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	for round := 0; round < 25; round++ {
		src := New("src", Options{})
		dst := New("dst", Options{ReadOnly: true})
		checkpoint := uint64(0)

		ids := []string{"a", "b", "c", "d"}
		for op := 0; op < 40; op++ {
			id := ids[rnd.Intn(len(ids))]
			switch rnd.Intn(4) {
			case 0, 1: // upsert
				rev := ""
				if doc, err := src.Get(id); err == nil {
					rev = doc.Rev
				}
				labels := label.NewSet()
				if rnd.Intn(2) == 0 {
					labels = label.NewSet(label.Conf("x/" + id))
				}
				if _, err := src.Put(id, record{Name: fmt.Sprint(op)}, labels, rev); err != nil {
					t.Fatal(err)
				}
			case 2: // delete if present
				if doc, err := src.Get(id); err == nil {
					if err := src.Delete(id, doc.Rev); err != nil {
						t.Fatal(err)
					}
				}
			case 3: // partial replication
				checkpoint, _ = ReplicateOnce(src, dst, checkpoint)
			}
		}
		// Final convergence push.
		ReplicateOnce(src, dst, checkpoint)

		if src.Len() != dst.Len() {
			t.Fatalf("round %d: len diverged %d vs %d", round, src.Len(), dst.Len())
		}
		for _, id := range src.AllIDs() {
			sdoc, err := src.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			ddoc, err := dst.Get(id)
			if err != nil {
				t.Fatalf("round %d: replica missing %s", round, id)
			}
			if string(sdoc.Data) != string(ddoc.Data) || !sdoc.Labels.Equal(ddoc.Labels) {
				t.Fatalf("round %d: %s diverged", round, id)
			}
		}
	}
}

// TestConcurrentWritersOneDoc: revision checking serialises concurrent
// writers; exactly the winners' updates land, no corruption.
func TestConcurrentWritersOneDoc(t *testing.T) {
	s := New("app", Options{})
	mustPut(t, s, "d", record{Name: "init"})

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		applied  int
		conflict int
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				doc, err := s.Get("d")
				if err != nil {
					t.Error(err)
					return
				}
				_, err = s.Put("d", record{Name: fmt.Sprintf("w%d-%d", worker, i)}, nil, doc.Rev)
				mu.Lock()
				if err != nil {
					conflict++
				} else {
					applied++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if applied == 0 {
		t.Fatal("no writes applied")
	}
	doc, err := s.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	// Revision counter equals applied writes + the initial one.
	var revNum int
	if _, err := fmt.Sscanf(doc.Rev, "%d-", &revNum); err != nil {
		t.Fatal(err)
	}
	if revNum != applied+1 {
		t.Errorf("rev %d, applied %d", revNum, applied)
	}
	t.Logf("applied=%d conflicts=%d", applied, conflict)
}
