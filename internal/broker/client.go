package broker

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"safeweb/internal/event"
	"safeweb/internal/stomp"
)

// ClientConfig configures a networked broker client.
type ClientConfig struct {
	// Login is the policy principal this client acts as.
	Login string
	// Passcode authenticates the login.
	Passcode string
	// TLS enables transport security.
	TLS *tls.Config
	// SendTimeout bounds receipt-confirmed publishes; zero means
	// fire-and-forget SENDs.
	SendTimeout time.Duration
	// OnError receives asynchronous errors (decode failures, server
	// errors); nil drops them. With Shards > 1 it is invoked from every
	// shard's read goroutine, possibly concurrently, so it must be safe
	// for concurrent use.
	OnError func(error)
	// Shards is the number of STOMP connections this client spreads its
	// subscriptions across; 0 or 1 means a single connection (the default,
	// wire-identical to the pre-sharding client). Subscriptions are placed
	// round-robin and each lives wholly on one connection, so wire bytes
	// and per-subscription delivery order are unchanged; publishes always
	// travel on the first connection (unless PublishShards spreads them),
	// preserving publish order. Sharding pays off for subscription-heavy
	// consumers: frame decoding spreads across per-connection read loops
	// and broker-side encoding across per-session coalescing writers.
	Shards int

	// PublishWindow enables windowed asynchronous publishing when > 0:
	// every publish is a receipt-tracked SEND, and up to PublishWindow of
	// them may be in flight per publish connection before Publish blocks
	// on the oldest outstanding confirmation. Publishes still enter their
	// connection's single write queue in call order, so per-client (and
	// per-topic, under PublishShards) publish ordering is unchanged — the
	// window removes the per-publish round trip, not the ordering. The
	// first broker error (receipt timeout, connection loss, server
	// rejection) is sticky: later Publish calls fail fast with it and
	// Flush reports it. Zero keeps today's behaviour: a synchronous
	// receipt per publish when SendTimeout > 0, fire-and-forget SENDs
	// otherwise. SendTimeout bounds each windowed receipt wait (zero
	// means 10 seconds).
	//
	// Windowed publishes travel on dedicated connections, disjoint from
	// the subscription connections: a consumer stalled on a full engine
	// queue backpressures its connection's read loop, and a RECEIPT stuck
	// behind undelivered MESSAGE frames there would deadlock the window
	// against the very callback waiting on it.
	PublishWindow int

	// SubscribeCredit arms credit-based flow control on every subscription
	// this client creates: each SUBSCRIBE advertises a delivery window of
	// that many messages, and the client replenishes it automatically as
	// deliveries complete — when the engine (or any consumer) releases a
	// delivery event (Event.Release), the client counts it consumed and,
	// once half the window has completed, sends a cumulative credit grant
	// on an ACK frame (about two control frames per window). The broker
	// parks deliveries beyond the window server-side instead of flooding
	// the connection, so a consumer that falls behind sheds load at the
	// broker — before the write queue, where the overflow policy would
	// start dropping. Zero disables credit: wire behaviour is unchanged.
	SubscribeCredit int

	// DurableGroup, when non-empty, makes every subscription this client
	// creates a durable one: the SUBSCRIBE carries a group header, so the
	// broker feeds the subscription from the topic's journal, resuming at
	// the group's cumulative acked offset, and the client acks progress
	// automatically as deliveries are released (cumulative, piggybacked on
	// credit grants when SubscribeCredit is also set). Durable topics must
	// be configured on the server (ServerConfig.Durable).
	DurableGroup string
	// DurableOffset, when non-empty, adds an explicit replay start to
	// every subscription: "earliest", "next", or a decimal offset. It wins
	// over the group's acked mark; with DurableGroup empty it creates
	// anonymous durable subscriptions whose progress is not persisted.
	DurableOffset string

	// PublishShards spreads publishes across that many connections,
	// mirroring Shards on the consumer side; 0 or 1 pins all publishes to
	// one connection (the default). Each topic is pinned to one
	// connection by hash, so per-topic publish order is preserved;
	// publishes to different topics may interleave differently than on a
	// single connection. Without PublishWindow the client dials
	// max(Shards, PublishShards) connections and publish traffic shares
	// the first PublishShards of them with subscriptions (wire-compatible
	// with the pre-sharding client); with PublishWindow the publish
	// connections are dialled in addition to the Shards subscription
	// connections (see PublishWindow).
	PublishShards int
}

// ErrUnknownSubscription is returned by Unsubscribe for an id this client
// did not mint. Sharded clients cannot pass unknown ids through to a
// connection: connection-local ids repeat across shards, so a blind
// forward could tear down an unrelated live subscription.
var ErrUnknownSubscription = errors.New("broker: unknown subscription id")

// Client is a Bus implementation over a remote STOMP broker. It lets an
// engine (or any producer/consumer) run in a different process or network
// zone from the broker, as in the paper's ECRIC deployment where the event
// broker is a separate service inside the Intranet (Fig. 4).
type Client struct {
	cfg      ClientConfig
	shards   []*clientShard
	subConns int // subscriptions round-robin across shards[:subConns]
	pubBase  int // publishes pinned by topic hash across shards[pubBase:pubBase+pubConns]
	pubConns int
	rr       atomic.Uint64 // round-robin subscription placement

	mu   sync.Mutex
	subs map[string]shardSub // qualified id -> placement
}

// clientShard is one STOMP connection of a sharded client, with the
// decode memos confined to its read loop.
type clientShard struct {
	conn *stomp.Client

	// cache memoises label-header parses and the topic string across this
	// shard's deliveries. All of the shard's subscription handlers run on
	// its connection read goroutine, so the cache is goroutine-confined.
	cache event.DecodeCache

	// win is the connection's publish window; nil unless PublishWindow is
	// enabled and this connection carries publishes.
	win *pubWindow
}

// pubWindow tracks the receipt-confirmed SENDs in flight on one publish
// connection. Receipts complete in send order (the broker processes a
// connection's frames sequentially), so the in-flight set is a FIFO and
// waiting on its head bounds the window. The first failure is sticky:
// once a receipt is refused, times out, or the connection dies, every
// later publish on this window fails fast with that error and Flush
// reports it — a windowed producer can pipeline without ever having an
// error swallowed between two Flush calls.
type pubWindow struct {
	size    int
	timeout time.Duration

	mu       sync.Mutex
	inflight []*stomp.Receipt // FIFO; head..len(inflight) outstanding
	head     int
	err      error // sticky first failure
}

// publish sends one image through the window, blocking while the window
// is full. The window mutex also serialises enqueueing, preserving the
// caller-observed publish order on the connection.
func (w *pubWindow) publish(conn *stomp.Client, img *stomp.WireImage) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	for len(w.inflight)-w.head >= w.size {
		if err := w.waitHeadLocked(); err != nil {
			return err
		}
	}
	r, err := conn.SendImageAsync(img)
	if err != nil {
		w.err = fmt.Errorf("broker: windowed publish: %w", err)
		return w.err
	}
	switch {
	case w.head == len(w.inflight):
		w.inflight = w.inflight[:0]
		w.head = 0
	case w.head >= w.size:
		// Compact the settled prefix so a continuously publishing window
		// keeps the slice (and the receipts the dead prefix would pin)
		// bounded by the window size, not by total publishes.
		n := copy(w.inflight, w.inflight[w.head:])
		clear(w.inflight[n:])
		w.inflight = w.inflight[:n]
		w.head = 0
	}
	w.inflight = append(w.inflight, r)
	return nil
}

// waitHeadLocked settles the oldest outstanding receipt. On failure the
// error becomes sticky and the remaining in-flight receipts are dropped:
// the connection is dead or wedged, and their confirmations can never
// arrive out of order with the one that failed.
func (w *pubWindow) waitHeadLocked() error {
	r := w.inflight[w.head]
	w.inflight[w.head] = nil // settled receipts must not linger in the FIFO
	w.head++
	if err := r.Wait(w.timeout); err != nil {
		w.err = fmt.Errorf("broker: windowed publish: %w", err)
		w.inflight = w.inflight[:0]
		w.head = 0
		return w.err
	}
	return nil
}

// stickyErr returns the window's sticky failure, if any. Publish checks
// it before freezing the event, so a fail-fast rejection leaves the
// caller's event mutable for annotation and republish elsewhere.
func (w *pubWindow) stickyErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// publishSync runs one synchronous legacy-fallback publish under the
// window's sticky-error discipline: a failed window stays failed for
// every publish, whichever encoding path it takes, and a failure here
// fails the window too. The mutex is held across the receipt wait, which
// also keeps the fallback ordered against concurrent windowed publishes.
func (w *pubWindow) publishSync(send func() error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := send(); err != nil {
		w.err = fmt.Errorf("broker: windowed publish: %w", err)
		return w.err
	}
	return nil
}

// flush settles every outstanding receipt and returns the window's sticky
// error, if any.
func (w *pubWindow) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.err == nil && w.head < len(w.inflight) {
		_ = w.waitHeadLocked() // error is sticky; loop exits on it
	}
	w.inflight = w.inflight[:0]
	w.head = 0
	return w.err
}

// creditTracker replenishes one credited subscription's delivery window.
// It rides the delivery lifecycle the engine already has: every delivery
// event carries a NotifyRelease hook bound to done, so a completed
// callback — Event.Release at the engine's callback-completion point —
// counts as consumption without wrapping the handler.
//
// granted is the cumulative allowance last sent to the broker; consumed
// counts completed deliveries. A grant is sent when the next allowance
// (consumed + window) is at least half a window ahead of the last one —
// batching replenishment to about two ACK frames per window — and restates
// the cumulative total, so duplicated or reordered grants are idempotent
// on the broker.
type creditTracker struct {
	conn    *stomp.Client
	window  int64
	onError func(error)
	// subID is the wire subscription id, captured from the first
	// delivery's subscription header on the shard read goroutine before
	// the handler runs; every done call is downstream of a delivery, so
	// the write happens-before all reads.
	subID string
	// doneFn is the pre-bound done method value, created once so the
	// per-delivery NotifyRelease costs no allocation.
	doneFn func()

	consumed atomic.Int64
	granted  atomic.Int64
}

// done records one consumed delivery and sends a batched cumulative grant
// when half the window has completed. Safe for concurrent use: the CAS on
// granted elects exactly one sender per batch.
func (t *creditTracker) done() {
	consumed := t.consumed.Add(1)
	for {
		g := t.granted.Load()
		next := consumed + t.window
		if next-g < (t.window+1)/2 {
			return
		}
		if t.granted.CompareAndSwap(g, next) {
			err := t.conn.SendCreditGrant(t.subID, next)
			if err != nil && !errors.Is(err, net.ErrClosed) && t.onError != nil {
				t.onError(fmt.Errorf("broker: credit grant for %s: %w", t.subID, err))
			}
			return
		}
	}
}

// offsetTracker turns the delivery-release lifecycle of one durable
// subscription into cumulative offset acks. Replayed deliveries arrive in
// increasing offset order but may complete (Release) out of order under a
// concurrent engine, and clearance filtering leaves gaps in the offset
// sequence — so the tracker keeps the delivered offsets in arrival order
// and advances the acked frontier only across the completed prefix:
// acking offset n+1 states that every delivered record at or below n has
// finished processing, which is exactly the journal's cumulative-ack
// contract. Acks restate the frontier and apply max-wins broker-side, so
// a duplicate or reordered frame is a no-op.
type offsetTracker struct {
	conn    *stomp.Client
	credit  *creditTracker // non-nil: piggyback the credit grant on each ack
	onError func(error)
	// subID is captured from the first delivery's subscription header on
	// the shard read goroutine, like creditTracker.subID.
	subID string

	mu      sync.Mutex
	pending []int64 // delivered offsets in arrival order (increasing)
	settled map[int64]bool
	acked   int64
}

// delivered records one replayed delivery's offset, in arrival order.
// Runs on the shard read goroutine before the handler sees the event.
func (t *offsetTracker) delivered(off int64) {
	t.mu.Lock()
	t.pending = append(t.pending, off)
	t.mu.Unlock()
}

// released marks one delivery completed and, when the completed prefix
// advanced, sends the new cumulative frontier — piggybacking the credit
// window's cumulative grant on the same ACK frame when credit flow
// control is armed, so a durable credited consumer pays one control frame
// where it would otherwise pay two.
func (t *offsetTracker) released(off int64) {
	t.mu.Lock()
	if t.settled == nil {
		t.settled = make(map[int64]bool)
	}
	t.settled[off] = true
	frontier := t.acked
	for len(t.pending) > 0 && t.settled[t.pending[0]] {
		delete(t.settled, t.pending[0])
		frontier = t.pending[0] + 1
		t.pending = t.pending[1:]
	}
	if frontier <= t.acked {
		t.mu.Unlock()
		return
	}
	t.acked = frontier
	subID := t.subID
	t.mu.Unlock()

	var grant int64
	if t.credit != nil {
		grant = t.credit.granted.Load()
	}
	err := t.conn.SendOffsetAck(subID, frontier, grant)
	if err != nil && !errors.Is(err, net.ErrClosed) && t.onError != nil {
		t.onError(fmt.Errorf("broker: offset ack for %s: %w", subID, err))
	}
}

// shardSub records where a subscription lives so Unsubscribe can route to
// the right connection.
type shardSub struct {
	shard int
	raw   string
}

var _ Bus = (*Client)(nil)

// DialBus connects to a broker server. It establishes
// max(cfg.Shards, cfg.PublishShards) STOMP connections (one by default),
// plus cfg.PublishShards dedicated publish connections when windowed
// publishing is enabled (see ClientConfig.PublishWindow).
func DialBus(addr string, cfg ClientConfig) (*Client, error) {
	subConns := cfg.Shards
	if subConns < 1 {
		subConns = 1
	}
	pubConns := cfg.PublishShards
	if pubConns < 1 {
		pubConns = 1
	}
	n, pubBase := subConns, 0
	if cfg.PublishWindow > 0 {
		// Windowed receipts must never queue behind undelivered MESSAGE
		// frames: publish connections are their own.
		n, pubBase = subConns+pubConns, subConns
	} else if pubConns > n {
		n = pubConns
	}
	c := &Client{cfg: cfg, subConns: subConns, pubBase: pubBase, pubConns: pubConns,
		subs: make(map[string]shardSub)}
	for i := 0; i < n; i++ {
		sc, err := stomp.Dial(addr, stomp.ClientConfig{
			Login:    cfg.Login,
			Passcode: cfg.Passcode,
			TLS:      cfg.TLS,
			OnError:  cfg.OnError,
		})
		if err != nil {
			for _, sh := range c.shards {
				_ = sh.conn.Close()
			}
			return nil, err
		}
		sh := &clientShard{conn: sc}
		if cfg.PublishWindow > 0 && i >= pubBase {
			sh.win = &pubWindow{size: cfg.PublishWindow, timeout: cfg.SendTimeout}
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// Publish implements Bus via the producer fast path: the event is frozen
// (publishers must not mutate it afterwards, exactly as with an
// in-process Broker.Publish) and its memoised SEND wire image goes
// straight to the connection's coalescing writer — no header map, no
// frame, and for repeated publishes of one event no re-encoding. Wire
// bytes are byte-identical to the legacy map path; events whose
// attribute names collide with transport headers take that legacy path
// so their (map overwrite) wire semantics are preserved.
//
// Publishes are pinned to the first connection — or, with PublishShards,
// to a per-topic connection — so the broker observes one client's
// publishes to a topic in publish order. With PublishWindow the SEND is
// receipt-tracked and pipelined; otherwise SendTimeout selects between a
// synchronous receipt and fire-and-forget.
//
// A publish the client can prove never reached the wire — a validation
// failure, or the fail-fast rejection of an already-failed window —
// leaves the event unfrozen (as Broker.Publish leaves rejected events
// mutable); any publish handed to a connection freezes it, because the
// bytes may be with the broker even when an error is reported.
func (c *Client) Publish(ev *event.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	sh := c.shards[c.pubShard(ev.Topic)]
	if sh.win != nil {
		if err := sh.win.stickyErr(); err != nil {
			return err
		}
	}
	ev.Freeze()
	img, err := ev.SendImage()
	if err != nil {
		if errors.Is(err, event.ErrTransportAttr) {
			return c.publishLegacy(ev)
		}
		return err
	}
	switch {
	case sh.win != nil:
		return sh.win.publish(sh.conn, img)
	case c.cfg.SendTimeout > 0:
		return sh.conn.SendImageReceipt(img, c.cfg.SendTimeout)
	default:
		return sh.conn.SendImage(img)
	}
}

// publishLegacy is the header-map SEND path, kept for events whose
// attribute names collide with transport headers (ErrTransportAttr): the
// map's overwrite semantics — destination clobbers a same-named
// attribute, a synchronous receipt clobbers a "receipt" attribute — are
// part of the legacy wire behaviour and must not silently change.
func (c *Client) publishLegacy(ev *event.Event) error {
	headers, body, err := event.MarshalHeaders(ev)
	if err != nil {
		return err
	}
	dest := headers[event.HeaderDestination]
	delete(headers, event.HeaderDestination)
	sh := c.shards[c.pubShard(ev.Topic)]
	if sh.win != nil {
		return sh.win.publishSync(func() error {
			return sh.conn.SendReceipt(dest, headers, body, c.cfg.SendTimeout)
		})
	}
	if c.cfg.SendTimeout > 0 {
		return sh.conn.SendReceipt(dest, headers, body, c.cfg.SendTimeout)
	}
	return sh.conn.Send(dest, headers, body)
}

// pubShard pins a topic to one publish connection.
func (c *Client) pubShard(topic string) int {
	if c.pubConns <= 1 {
		return c.pubBase
	}
	// FNV-1a over the topic: cheap, allocation-free, stable.
	h := uint32(2166136261)
	for i := 0; i < len(topic); i++ {
		h ^= uint32(topic[i])
		h *= 16777619
	}
	return c.pubBase + int(h%uint32(c.pubConns))
}

// Flush blocks until every windowed publish accepted so far is confirmed
// by the broker, returning the first error any publish connection hit
// (receipt refused, timed out, or connection lost). Without PublishWindow
// it is a no-op: synchronous and fire-and-forget publishes have nothing
// outstanding to settle. The error is sticky — once a window fails, Flush
// and Publish keep reporting it; reconnect to recover.
func (c *Client) Flush() error {
	var first error
	for _, sh := range c.shards {
		if sh.win == nil {
			continue
		}
		if err := sh.win.flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Subscribe implements Bus. The subscription is placed on one connection
// (round-robin across shards) and its deliveries are decoded map-free:
// the STOMP frame view feeds event.UnmarshalView in a single pass, with
// body ownership handed to the event. With SubscribeCredit set, the
// SUBSCRIBE advertises a delivery window and a creditTracker replenishes
// it as deliveries are released.
func (c *Client) Subscribe(topic, sel string, handler Handler) (string, error) {
	idx := 0
	if c.subConns > 1 {
		idx = int((c.rr.Add(1) - 1) % uint64(c.subConns))
	}
	sh := c.shards[idx]
	var tr *creditTracker
	var extra map[string]string
	if c.cfg.SubscribeCredit > 0 {
		tr = &creditTracker{conn: sh.conn, window: int64(c.cfg.SubscribeCredit), onError: c.cfg.OnError}
		tr.granted.Store(tr.window)
		tr.doneFn = tr.done
		extra = map[string]string{stomp.HdrCredit: strconv.Itoa(c.cfg.SubscribeCredit)}
	}
	var ot *offsetTracker
	if c.cfg.DurableGroup != "" || c.cfg.DurableOffset != "" {
		ot = &offsetTracker{conn: sh.conn, credit: tr, onError: c.cfg.OnError}
		if extra == nil {
			extra = make(map[string]string, 2)
		}
		if c.cfg.DurableGroup != "" {
			extra[stomp.HdrGroup] = c.cfg.DurableGroup
		}
		if c.cfg.DurableOffset != "" {
			extra[stomp.HdrOffset] = c.cfg.DurableOffset
		}
	}
	raw, err := sh.conn.SubscribeView(topic, sel, extra, func(v *stomp.FrameView) {
		if tr != nil && tr.subID == "" {
			// First delivery: the wire subscription id (which deliveries can
			// carry before SubscribeView even returns) names the grants.
			tr.subID = v.Headers.Header(stomp.HdrSubscription)
		}
		// A replayed delivery carries its journal offset; record it now so
		// the ack frontier tracks arrival order, and ack it when the
		// delivery is released (or immediately, if it cannot be decoded —
		// an undecodable frame must not stall the frontier forever).
		var off int64
		hasOff := false
		if ot != nil {
			if ot.subID == "" {
				ot.subID = v.Headers.Header(stomp.HdrSubscription)
			}
			if s := v.Headers.Header(stomp.HdrDeliveryOffset); s != "" {
				if n, perr := strconv.ParseInt(s, 10, 64); perr == nil {
					off, hasOff = n, true
					ot.delivered(n)
				}
			}
		}
		// Delivery unmarshal: the event comes from the delivery pool and
		// is recycled (Event.Release) when its consumer — the engine's
		// subscription worker — finishes the callback. Handlers must not
		// retain it past their own return.
		ev, err := event.UnmarshalViewDelivery(&v.Headers, v.Body, &sh.cache)
		if err != nil {
			if tr != nil {
				// The broker spent a credit on this delivery; an undecodable
				// frame still consumes it, or the window would leak shut.
				tr.doneFn()
			}
			if hasOff {
				ot.released(off)
			}
			if c.cfg.OnError != nil {
				c.cfg.OnError(err)
			}
			return
		}
		switch {
		case hasOff && tr != nil:
			ev.NotifyRelease(func() { ot.released(off); tr.doneFn() })
		case hasOff:
			ev.NotifyRelease(func() { ot.released(off) })
		case tr != nil:
			ev.NotifyRelease(tr.doneFn)
		}
		handler(ev)
	})
	if err != nil {
		return "", err
	}
	id := raw
	if c.subConns > 1 {
		// Connection-local ids ("sub-1") repeat across shards; qualify.
		id = "s" + strconv.Itoa(idx) + ":" + raw
	}
	c.mu.Lock()
	c.subs[id] = shardSub{shard: idx, raw: raw}
	c.mu.Unlock()
	return id, nil
}

// Unsubscribe implements Bus.
func (c *Client) Unsubscribe(id string) error {
	c.mu.Lock()
	ref, ok := c.subs[id]
	delete(c.subs, id)
	c.mu.Unlock()
	if !ok {
		if c.subConns > 1 {
			// An unqualified id must not be forwarded to an arbitrary
			// shard: connection-local ids ("sub-1") repeat across shards,
			// so shard 0 may hold a different live subscription under the
			// same id and a blind pass-through would tear it down while
			// stranding its c.subs entry.
			return ErrUnknownSubscription
		}
		// Single connection: pass through, preserving the behaviour for
		// ids minted directly on the underlying stomp client.
		return c.shards[0].conn.Unsubscribe(id)
	}
	return c.shards[ref.shard].conn.Unsubscribe(ref.raw)
}

// Close implements Bus with a graceful disconnect of every shard. It is
// a publish barrier: outstanding windowed publishes are flushed first, so
// a producer that closes cleanly knows every accepted publish reached the
// broker — a Flush error (some publish was never confirmed) is reported
// in preference to disconnect errors.
func (c *Client) Close() error {
	flushErr := c.Flush()
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *clientShard) {
			defer wg.Done()
			errs[i] = sh.conn.Disconnect(5 * time.Second)
		}(i, sh)
	}
	wg.Wait()
	if flushErr != nil {
		return flushErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
