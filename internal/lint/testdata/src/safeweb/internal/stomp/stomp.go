// Package stomp is a testdata stub mirroring safeweb/internal/stomp.
package stomp

// FrameView aliases the decoder's scratch buffer in the real package.
type FrameView struct {
	Op   string
	Body []byte
}

// HeaderView aliases the decoder's scratch buffer in the real package.
type HeaderView struct {
	Key, Val []byte
}
