package engine

// FuncUnit adapts a name and an init function to the Unit interface, for
// small units and tests.
type FuncUnit struct {
	// UnitName is the unit's principal name.
	UnitName string
	// InitFunc registers the unit's subscriptions.
	InitFunc func(ctx *InitContext) error
}

var _ Unit = (*FuncUnit)(nil)

// Name implements Unit.
func (u *FuncUnit) Name() string { return u.UnitName }

// Init implements Unit.
func (u *FuncUnit) Init(ctx *InitContext) error {
	if u.InitFunc == nil {
		return nil
	}
	return u.InitFunc(ctx)
}
