package selector

import (
	"strconv"
)

// Selector is a compiled subscription selector. It is immutable and safe
// for concurrent use by the broker's matching goroutines.
type Selector struct {
	root expr
	src  string
}

// Parse compiles a selector expression. The empty string compiles to a
// selector that matches every event (no content filter), mirroring a
// SUBSCRIBE frame without a selector header.
func Parse(input string) (*Selector, error) {
	if isBlank(input) {
		return &Selector{src: ""}, nil
	}
	p := &parser{lex: lexer{input: input}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, p.errorf("unexpected trailing input")
	}
	return &Selector{root: root, src: input}, nil
}

// MustParse is like Parse but panics on error; for tests and constants.
func MustParse(input string) *Selector {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

func isBlank(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}

// Matches evaluates the selector against the environment. Per SQL
// three-valued logic an event matches only when the expression is true;
// false and unknown both reject.
func (s *Selector) Matches(env Env) bool {
	if s == nil || s.root == nil {
		return true
	}
	return valueToTri(s.root.eval(env)).isTrue()
}

// MatchesAttrs is a convenience wrapper over Matches for plain maps.
func (s *Selector) MatchesAttrs(attrs map[string]string) bool {
	return s.Matches(MapEnv(attrs))
}

// Source returns the original selector text.
func (s *Selector) Source() string {
	if s == nil {
		return ""
	}
	return s.src
}

// String returns a normalised (fully parenthesised) rendering of the
// selector, or "" for the match-everything selector.
func (s *Selector) String() string {
	if s == nil || s.root == nil {
		return ""
	}
	return s.root.String()
}

// parser is a recursive-descent parser over the lexer's token stream.
type parser struct {
	lex lexer
	cur token
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = tok
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return p.lex.errorf(p.cur.pos, format, args...)
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind, what string) error {
	if p.cur.kind != kind {
		return p.errorf("expected %s", what)
	}
	return p.advance()
}

// parseOr := and (OR and)*
func (p *parser) parseOr() (expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = binaryExpr{op: opOr, l: left, r: right}
	}
	return left, nil
}

// parseAnd := not (AND not)*
func (p *parser) parseAnd() (expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = binaryExpr{op: opAnd, l: left, r: right}
	}
	return left, nil
}

// parseNot := NOT parseNot | comparison
func (p *parser) parseNot() (expr, error) {
	if p.cur.kind == tokNot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	}
	return p.parseComparison()
}

// parseComparison := additive ( (=|<>|<|<=|>|>=) additive
//
//	| [NOT] BETWEEN additive AND additive
//	| [NOT] IN ( strings )
//	| [NOT] LIKE string [ESCAPE string]
//	| IS [NOT] NULL )?
func (p *parser) parseComparison() (expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}

	negated := false
	if p.cur.kind == tokNot {
		// Lookahead for NOT BETWEEN / NOT IN / NOT LIKE.
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.cur.kind {
		case tokBetween, tokIn, tokLike:
			negated = true
		default:
			return nil, p.errorf("expected BETWEEN, IN or LIKE after NOT")
		}
	}

	switch p.cur.kind {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		op := map[tokenKind]binaryOp{
			tokEq: opEq, tokNeq: opNeq, tokLt: opLt,
			tokLe: opLe, tokGt: opGt, tokGe: opGe,
		}[p.cur.kind]
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return binaryExpr{op: op, l: left, r: right}, nil

	case tokBetween:
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokAnd, "AND in BETWEEN"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return betweenExpr{subject: left, lo: lo, hi: hi, negated: negated}, nil

	case tokIn:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen, "( after IN"); err != nil {
			return nil, err
		}
		var items []string
		for {
			if p.cur.kind != tokString {
				return nil, p.errorf("expected string literal in IN list")
			}
			items = append(items, p.cur.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.cur.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expect(tokRParen, ") after IN list"); err != nil {
			return nil, err
		}
		return inExpr{subject: left, items: items, negated: negated}, nil

	case tokLike:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind != tokString {
			return nil, p.errorf("expected string pattern after LIKE")
		}
		pattern := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		escape := ""
		if p.cur.kind == tokEscape {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.cur.kind != tokString {
				return nil, p.errorf("expected string after ESCAPE")
			}
			escape = p.cur.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		re, err := compileLike(pattern, escape)
		if err != nil {
			return nil, err
		}
		return likeExpr{subject: left, pattern: pattern, escape: escape, negated: negated, re: re}, nil

	case tokIs:
		if err := p.advance(); err != nil {
			return nil, err
		}
		isNot := false
		if p.cur.kind == tokNot {
			isNot = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expect(tokNull, "NULL after IS"); err != nil {
			return nil, err
		}
		return isNullExpr{subject: left, negated: isNot}, nil
	}
	return left, nil
}

// parseAdditive := multiplicative ( (+|-) multiplicative )*
func (p *parser) parseAdditive() (expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokPlus || p.cur.kind == tokMinus {
		op := opAdd
		if p.cur.kind == tokMinus {
			op = opSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = binaryExpr{op: op, l: left, r: right}
	}
	return left, nil
}

// parseMultiplicative := unary ( (*|/) unary )*
func (p *parser) parseMultiplicative() (expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokStar || p.cur.kind == tokSlash {
		op := opMul
		if p.cur.kind == tokSlash {
			op = opDiv
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binaryExpr{op: op, l: left, r: right}
	}
	return left, nil
}

// parseUnary := (+|-) unary | primary
func (p *parser) parseUnary() (expr, error) {
	switch p.cur.kind {
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negExpr{inner: inner}, nil
	case tokPlus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseUnary()
	}
	return p.parsePrimary()
}

// parsePrimary := ( or ) | literal | identifier
func (p *parser) parsePrimary() (expr, error) {
	switch p.cur.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "closing parenthesis"); err != nil {
			return nil, err
		}
		return inner, nil
	case tokString:
		lit := stringLit{val: p.cur.text}
		return lit, p.advance()
	case tokNumber:
		f, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return nil, p.errorf("malformed number %q", p.cur.text)
		}
		lit := numberLit{val: f, text: p.cur.text}
		return lit, p.advance()
	case tokTrue:
		return boolLit{val: true}, p.advance()
	case tokFalse:
		return boolLit{val: false}, p.advance()
	case tokIdent:
		id := identExpr{name: p.cur.text}
		return id, p.advance()
	default:
		return nil, p.errorf("expected expression")
	}
}
