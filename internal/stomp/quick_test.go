package stomp

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickFrame generates random frames with printable and non-printable
// header content to stress the codec.
type quickFrame struct{ F *Frame }

// Generate implements quick.Generator.
func (quickFrame) Generate(rnd *rand.Rand, _ int) reflect.Value {
	commands := []string{CmdSend, CmdMessage, CmdSubscribe, CmdReceipt, CmdError}
	f := NewFrame(commands[rnd.Intn(len(commands))])
	nHeaders := rnd.Intn(6)
	for i := 0; i < nHeaders; i++ {
		f.SetHeader(randString(rnd, 1, 12), randString(rnd, 0, 30))
	}
	if rnd.Intn(2) == 0 {
		body := make([]byte, rnd.Intn(200))
		rnd.Read(body)
		if len(body) > 0 {
			f.Body = body
		}
	}
	return reflect.ValueOf(quickFrame{F: f})
}

func randString(rnd *rand.Rand, minLen, maxLen int) string {
	// Alphabet includes characters requiring escaping.
	alphabet := []byte("abcXYZ019 :\\\n\r-_/.")
	n := minLen + rnd.Intn(maxLen-minLen+1)
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[rnd.Intn(len(alphabet))]
	}
	return string(out)
}

// TestQuickFrameRoundTrip: any frame the writer accepts must decode to an
// identical frame.
func TestQuickFrameRoundTrip(t *testing.T) {
	prop := func(qf quickFrame) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, qf.F); err != nil {
			return false
		}
		back, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		if back.Command != qf.F.Command {
			return false
		}
		if len(back.Headers) != len(qf.F.Headers) {
			return false
		}
		for k, v := range qf.F.Headers {
			if back.Headers[k] != v {
				return false
			}
		}
		return bytes.Equal(back.Body, qf.F.Body)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// framesEquivalent reports whether two frames have equal command, headers
// and body.
func framesEquivalent(a, b *Frame) bool {
	if a.Command != b.Command || !bytes.Equal(a.Body, b.Body) || len(a.Headers) != len(b.Headers) {
		return false
	}
	for k, v := range a.Headers {
		if b.Headers[k] != v {
			return false
		}
	}
	return true
}

// TestQuickEncoderDecoderAgree: on the random frame corpus, the reusable
// Encoder emits bytes identical to WriteFrame, and the reusable Decoder
// and ReadFrame decode those bytes to the same frame — the original. The
// scratch-buffer reuse across iterations is part of what is under test.
func TestQuickEncoderDecoderAgree(t *testing.T) {
	var enc Encoder
	prop := func(qf quickFrame) bool {
		var legacy, pooled bytes.Buffer
		if err := WriteFrame(&legacy, qf.F); err != nil {
			return false
		}
		if err := enc.Encode(&pooled, qf.F); err != nil {
			return false
		}
		if !bytes.Equal(legacy.Bytes(), pooled.Bytes()) {
			return false
		}
		dec := NewDecoder(bytes.NewReader(pooled.Bytes()))
		fromDecoder, err := dec.Decode()
		if err != nil {
			return false
		}
		fromReadFrame, err := ReadFrame(bufio.NewReader(&legacy))
		if err != nil {
			return false
		}
		return framesEquivalent(qf.F, fromDecoder) && framesEquivalent(fromDecoder, fromReadFrame)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// escapeHeader/unescapeHeader adapt the production byte-slice escaping
// helpers to strings for the property tests.
func escapeHeader(s string) string {
	return string(appendEscapedHeader(nil, s))
}

func unescapeHeader(s string) (string, error) {
	return unescapeHeaderBytes([]byte(s))
}

// TestQuickHeaderEscapeRoundTrip: escaping then unescaping is the identity
// on arbitrary strings.
func TestQuickHeaderEscapeRoundTrip(t *testing.T) {
	prop := func(s string) bool {
		back, err := unescapeHeader(escapeHeader(s))
		return err == nil && back == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickStreamOfFrames: multiple frames written back-to-back decode in
// order.
func TestQuickStreamOfFrames(t *testing.T) {
	prop := func(frames []quickFrame) bool {
		var buf bytes.Buffer
		for _, qf := range frames {
			if err := WriteFrame(&buf, qf.F); err != nil {
				return false
			}
		}
		r := bufio.NewReader(&buf)
		for _, qf := range frames {
			back, err := ReadFrame(r)
			if err != nil {
				return false
			}
			if back.Command != qf.F.Command || !bytes.Equal(back.Body, qf.F.Body) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
