package broker_test

import (
	"bufio"
	"errors"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// dialCredited connects a raw STOMP subscriber whose SUBSCRIBE advertises
// a credit window, returning the connection and its frame reader so tests
// can observe exactly which MESSAGE frames the broker put on the wire and
// replenish the window with hand-written ACK grants.
func dialCredited(t testing.TB, addr, login, topic, subID string, credit int) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial credited: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	br := bufio.NewReader(conn)
	connect := stomp.NewFrame(stomp.CmdConnect)
	connect.SetHeader(stomp.HdrLogin, login)
	if err := stomp.WriteFrame(conn, connect); err != nil {
		t.Fatalf("credited CONNECT: %v", err)
	}
	f, err := stomp.ReadFrame(br)
	if err != nil || f.Command != stomp.CmdConnected {
		t.Fatalf("credited handshake: frame %v, err %v", f, err)
	}
	sub := stomp.NewFrame(stomp.CmdSubscribe)
	sub.SetHeader(stomp.HdrID, subID)
	sub.SetHeader(stomp.HdrDestination, topic)
	sub.SetHeader(stomp.HdrCredit, strconv.Itoa(credit))
	sub.SetHeader(stomp.HdrReceipt, "r-sub")
	if err := stomp.WriteFrame(conn, sub); err != nil {
		t.Fatalf("credited SUBSCRIBE: %v", err)
	}
	for {
		f, err := stomp.ReadFrame(br)
		if err != nil {
			t.Fatalf("credited waiting for SUBSCRIBE receipt: %v", err)
		}
		if f.Command == stomp.CmdReceipt {
			return conn, br
		}
	}
}

// sendGrant writes a raw ACK credit grant. The credit value is a string so
// tests can send malformed grants through the same path.
func sendGrant(t testing.TB, conn net.Conn, subID, credit string) {
	t.Helper()
	f := stomp.NewFrame(stomp.CmdAck)
	f.SetHeader(stomp.HdrSubscription, subID)
	if credit != "" {
		f.SetHeader(stomp.HdrCredit, credit)
	}
	if err := stomp.WriteFrame(conn, f); err != nil {
		t.Fatalf("write ACK grant: %v", err)
	}
}

// readSeq reads the next MESSAGE frame and returns its seq attribute.
func readSeq(t testing.TB, conn net.Conn, br *bufio.Reader) int {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	f, err := stomp.ReadFrame(br)
	if err != nil {
		t.Fatalf("read MESSAGE: %v", err)
	}
	if f.Command != stomp.CmdMessage {
		t.Fatalf("read %s frame, want MESSAGE: %v", f.Command, f)
	}
	seq, err := strconv.Atoi(f.Header("seq"))
	if err != nil {
		t.Fatalf("MESSAGE without numeric seq: %v", f)
	}
	return seq
}

// expectSilence asserts that no frame arrives on the connection within d.
func expectSilence(t testing.TB, conn net.Conn, br *bufio.Reader, d time.Duration) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(d))
	defer conn.SetReadDeadline(time.Time{})
	if f, err := stomp.ReadFrame(br); err == nil {
		t.Fatalf("expected no frame, read %v", f)
	} else if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("expected read deadline, got %v", err)
	}
}

func publishSeq(t testing.TB, b *broker.Broker, topic string, seq int) {
	t.Helper()
	ev := event.New(topic, map[string]string{"seq": strconv.Itoa(seq)})
	if err := b.Publish("producer", ev); err != nil {
		t.Fatalf("Publish seq %d: %v", seq, err)
	}
}

// TestCreditZeroParksDeliveries pins the core credit contract at the wire
// level: with the window exhausted, matched deliveries park broker-side
// (no frames on the wire, nothing dropped), a cumulative grant resumes
// in-order delivery, stalls are counted and hooked once per run, and
// stale or duplicate grants are idempotent no-ops.
func TestCreditZeroParksDeliveries(t *testing.T) {
	br := broker.New(label.NewPolicy())
	defer br.Close()

	var stallMu sync.Mutex
	var stalls []broker.CreditStallEvent
	srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{
		Logf: t.Logf,
		OnCreditStall: func(ev broker.CreditStallEvent) {
			stallMu.Lock()
			stalls = append(stalls, ev)
			stallMu.Unlock()
		},
		OnDeliveryError: func(_ uint64, _ string, _ *event.Event, err error) {
			t.Errorf("unexpected delivery drop: %v", err)
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	conn, rd := dialCredited(t, srv.Addr(), "consumer", "/credit/t", "c-0", 2)

	// Publishing is synchronous through the wire fan-out: when Publish
	// returns, each delivery has either entered the session's write queue
	// or parked in the subscription's pending ring.
	for seq := 0; seq < 5; seq++ {
		publishSeq(t, br, "/credit/t", seq)
	}

	sessions := srv.SessionStats()
	if len(sessions) != 1 {
		t.Fatalf("SessionStats = %d sessions, want 1", len(sessions))
	}
	if got := sessions[0].CreditParked; got != 3 {
		t.Errorf("CreditParked = %d, want 3 (window 2 of 5 published)", got)
	}
	if got := sessions[0].CreditStalls; got != 1 {
		t.Errorf("session CreditStalls = %d, want 1", got)
	}
	if got := srv.Stats().CreditStalls; got != 1 {
		t.Errorf("CreditStalls = %d, want 1 (one stall run)", got)
	}
	stallMu.Lock()
	if len(stalls) != 1 {
		t.Fatalf("OnCreditStall fired %d times, want once per run", len(stalls))
	}
	st := stalls[0]
	stallMu.Unlock()
	if st.Login != "consumer" || st.Subscription != "c-0" || st.Granted != 2 || st.Sent != 2 || st.Parked != 1 {
		t.Errorf("CreditStallEvent = %+v, want consumer/c-0 granted 2 sent 2 parked 1", st)
	}

	// Exactly the window reaches the wire, in order; the rest is parked.
	for want := 0; want < 2; want++ {
		if got := readSeq(t, conn, rd); got != want {
			t.Fatalf("delivery %d: seq %d, want %d", want, got, want)
		}
	}
	expectSilence(t, conn, rd, 200*time.Millisecond)

	// A cumulative grant drains the ring in park order.
	sendGrant(t, conn, "c-0", "5")
	for want := 2; want < 5; want++ {
		if got := readSeq(t, conn, rd); got != want {
			t.Fatalf("post-grant delivery: seq %d, want %d", got, want)
		}
	}
	waitFor(t, "ring drained", func() bool {
		ss := srv.SessionStats()
		return len(ss) == 1 && ss[0].CreditParked == 0
	})

	// A new exhaustion is a new stall run.
	publishSeq(t, br, "/credit/t", 5)
	if got := srv.Stats().CreditStalls; got != 2 {
		t.Errorf("CreditStalls after second exhaustion = %d, want 2", got)
	}

	// Stale and duplicate grants must not deliver anything.
	sendGrant(t, conn, "c-0", "3")
	sendGrant(t, conn, "c-0", "5")
	expectSilence(t, conn, rd, 200*time.Millisecond)

	sendGrant(t, conn, "c-0", "6")
	if got := readSeq(t, conn, rd); got != 5 {
		t.Fatalf("after fresh grant: seq %d, want 5", got)
	}

	stats := srv.Stats()
	if stats.OverflowDrops != 0 || stats.DroppedDeliveries != 0 {
		t.Errorf("drops = %d overflow, %d dropped; credit parking must not drop", stats.OverflowDrops, stats.DroppedDeliveries)
	}
}

// waitFor polls cond until it holds or a deadline expires.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCreditRingOverflowPolicies pins the fallback contract: when the
// pending ring itself overflows, the delivery falls through to the
// server's configured overflow policy — the reactive machinery stays the
// safety net under credit, with its accounting and hooks intact.
func TestCreditRingOverflowPolicies(t *testing.T) {
	// Window 1, ring 2: seq 0 is sent, 1 and 2 park, 3 overflows.
	setup := func(t *testing.T, overflow broker.OverflowPolicy, evictAfter int) (
		*broker.Broker, *broker.Server, net.Conn, *bufio.Reader,
		*atomic.Uint64, func() []broker.SlowConsumerEvent,
	) {
		br := broker.New(label.NewPolicy())
		t.Cleanup(func() { br.Close() })
		var slowDrops atomic.Uint64
		var slowMu sync.Mutex
		var slowEvents []broker.SlowConsumerEvent
		srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{
			Logf:               t.Logf,
			Overflow:           overflow,
			OverflowEvictAfter: evictAfter,
			CreditPending:      2,
			OnDeliveryError: func(_ uint64, _ string, _ *event.Event, err error) {
				if errors.Is(err, broker.ErrSlowConsumer) {
					slowDrops.Add(1)
				}
			},
			OnSlowConsumer: func(ev broker.SlowConsumerEvent) {
				slowMu.Lock()
				slowEvents = append(slowEvents, ev)
				slowMu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		conn, rd := dialCredited(t, srv.Addr(), "consumer", "/credit/ring", "c-0", 1)
		events := func() []broker.SlowConsumerEvent {
			slowMu.Lock()
			defer slowMu.Unlock()
			return append([]broker.SlowConsumerEvent(nil), slowEvents...)
		}
		return br, srv, conn, rd, &slowDrops, events
	}

	t.Run("drop-newest", func(t *testing.T) {
		br, srv, conn, rd, slowDrops, _ := setup(t, broker.OverflowDropNewest, 0)
		for seq := 0; seq < 4; seq++ {
			publishSeq(t, br, "/credit/ring", seq)
		}
		if got := srv.Stats().OverflowDrops; got != 1 {
			t.Errorf("OverflowDrops = %d, want 1 (seq 3 over the full ring)", got)
		}
		if got := slowDrops.Load(); got != 1 {
			t.Errorf("ErrSlowConsumer reports = %d, want 1", got)
		}
		if got := readSeq(t, conn, rd); got != 0 {
			t.Fatalf("first delivery seq %d, want 0", got)
		}
		sendGrant(t, conn, "c-0", "10")
		for _, want := range []int{1, 2} {
			if got := readSeq(t, conn, rd); got != want {
				t.Fatalf("post-grant seq %d, want %d (survivors in order)", got, want)
			}
		}
		expectSilence(t, conn, rd, 200*time.Millisecond)
	})

	t.Run("drop-oldest", func(t *testing.T) {
		br, srv, conn, rd, slowDrops, _ := setup(t, broker.OverflowDropOldest, 0)
		for seq := 0; seq < 4; seq++ {
			publishSeq(t, br, "/credit/ring", seq)
		}
		if got := srv.Stats().OverflowDrops; got != 1 {
			t.Errorf("OverflowDrops = %d, want 1 (oldest parked evicted)", got)
		}
		if got := slowDrops.Load(); got != 1 {
			t.Errorf("ErrSlowConsumer reports = %d, want 1", got)
		}
		if got := readSeq(t, conn, rd); got != 0 {
			t.Fatalf("first delivery seq %d, want 0", got)
		}
		sendGrant(t, conn, "c-0", "10")
		for _, want := range []int{2, 3} {
			if got := readSeq(t, conn, rd); got != want {
				t.Fatalf("post-grant seq %d, want %d (oldest parked gone, rest in order)", got, want)
			}
		}
		expectSilence(t, conn, rd, 200*time.Millisecond)
	})

	t.Run("disconnect", func(t *testing.T) {
		br, srv, _, _, _, events := setup(t, broker.OverflowDisconnect, 2)
		for seq := 0; seq < 5; seq++ {
			publishSeq(t, br, "/credit/ring", seq)
		}
		if got := srv.Stats().SlowConsumerEvictions; got != 1 {
			t.Fatalf("SlowConsumerEvictions = %d, want 1 (two consecutive ring overflows)", got)
		}
		foundEvict := false
		for _, ev := range events() {
			if ev.Evicted {
				foundEvict = true
			}
		}
		if !foundEvict {
			t.Error("no Evicted SlowConsumerEvent hooked")
		}
		// Teardown drops the parked backlog as to a closed session and
		// removes the session.
		waitFor(t, "evicted session teardown", func() bool {
			return len(srv.SessionStats()) == 0
		})
		if got := srv.Stats().DroppedDeliveries; got != 2 {
			t.Errorf("DroppedDeliveries = %d, want 2 (the parked backlog on teardown)", got)
		}
	})

	t.Run("block", func(t *testing.T) {
		br, _, conn, rd, _, _ := setup(t, broker.OverflowBlock, 0)
		for seq := 0; seq < 3; seq++ {
			publishSeq(t, br, "/credit/ring", seq)
		}
		// The 4th publish must block on the full ring until a grant makes
		// room — lossless back-pressure one layer up from the write queue.
		unblocked := make(chan struct{})
		go func() {
			publishSeq(t, br, "/credit/ring", 3)
			close(unblocked)
		}()
		select {
		case <-unblocked:
			t.Fatal("publish into a full ring returned under OverflowBlock")
		case <-time.After(100 * time.Millisecond):
		}
		if got := readSeq(t, conn, rd); got != 0 {
			t.Fatalf("first delivery seq %d, want 0", got)
		}
		sendGrant(t, conn, "c-0", "10")
		select {
		case <-unblocked:
		case <-time.After(10 * time.Second):
			t.Fatal("grant did not unblock the parked publisher")
		}
		for _, want := range []int{1, 2, 3} {
			if got := readSeq(t, conn, rd); got != want {
				t.Fatalf("post-grant seq %d, want %d (lossless, in order)", got, want)
			}
		}
	})
}

// TestUnhandledFramesError pins the bugfix for silently ignored client
// frames: unsupported commands and malformed credit grants are answered
// with an ERROR frame naming the problem and counted in
// Stats().UnhandledFrames — and a malformed grant never replenishes.
func TestUnhandledFramesError(t *testing.T) {
	br := broker.New(label.NewPolicy())
	defer br.Close()
	srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	// connect completes a bare CONNECT handshake.
	connect := func(t *testing.T) (net.Conn, *bufio.Reader) {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		t.Cleanup(func() { conn.Close() })
		rd := bufio.NewReader(conn)
		f := stomp.NewFrame(stomp.CmdConnect)
		f.SetHeader(stomp.HdrLogin, "probe")
		if err := stomp.WriteFrame(conn, f); err != nil {
			t.Fatalf("CONNECT: %v", err)
		}
		if got, err := stomp.ReadFrame(rd); err != nil || got.Command != stomp.CmdConnected {
			t.Fatalf("handshake: %v, %v", got, err)
		}
		return conn, rd
	}
	// expectError reads until an ERROR frame and asserts its message
	// mentions want.
	expectError := func(t *testing.T, conn net.Conn, rd *bufio.Reader, want string) {
		t.Helper()
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		f, err := stomp.ReadFrame(rd)
		if err != nil {
			t.Fatalf("waiting for ERROR: %v", err)
		}
		if f.Command != stomp.CmdError {
			t.Fatalf("read %s, want ERROR: %v", f.Command, f)
		}
		if detail := f.Header(stomp.HdrMessage) + " " + string(f.Body); !containsStr(detail, want) {
			t.Errorf("ERROR %q does not name %q", detail, want)
		}
	}

	before := srv.Stats().UnhandledFrames

	for _, tc := range []struct {
		name    string
		frame   func() *stomp.Frame
		mention string
	}{
		{"unsupported BEGIN", func() *stomp.Frame {
			f := stomp.NewFrame(stomp.CmdBegin)
			return f
		}, "BEGIN"},
		{"ACK without credit", func() *stomp.Frame {
			f := stomp.NewFrame(stomp.CmdAck)
			f.SetHeader(stomp.HdrSubscription, "c-0")
			return f
		}, "ACK"},
		{"ACK negative credit", func() *stomp.Frame {
			f := stomp.NewFrame(stomp.CmdAck)
			f.SetHeader(stomp.HdrSubscription, "c-0")
			f.SetHeader(stomp.HdrCredit, "-1")
			return f
		}, "credit"},
		{"ACK non-numeric credit", func() *stomp.Frame {
			f := stomp.NewFrame(stomp.CmdAck)
			f.SetHeader(stomp.HdrSubscription, "c-0")
			f.SetHeader(stomp.HdrCredit, "lots")
			return f
		}, "credit"},
		{"ACK overflowing credit", func() *stomp.Frame {
			f := stomp.NewFrame(stomp.CmdAck)
			f.SetHeader(stomp.HdrSubscription, "c-0")
			f.SetHeader(stomp.HdrCredit, "99999999999999999999999999")
			return f
		}, "credit"},
		{"ACK without subscription", func() *stomp.Frame {
			f := stomp.NewFrame(stomp.CmdAck)
			f.SetHeader(stomp.HdrCredit, "5")
			return f
		}, "subscription"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conn, rd := connect(t)
			if err := stomp.WriteFrame(conn, tc.frame()); err != nil {
				t.Fatalf("write: %v", err)
			}
			expectError(t, conn, rd, tc.mention)
		})
	}
	// (A frame whose command the codec itself does not know never reaches
	// the broker handler — the decoder rejects it — so only the six
	// handler-level rejections above count here.)
	if got := srv.Stats().UnhandledFrames - before; got != 6 {
		t.Errorf("UnhandledFrames grew by %d, want 6", got)
	}

	t.Run("grant for unknown subscription is benign", func(t *testing.T) {
		// The UNSUBSCRIBE race: a grant for a subscription that no longer
		// exists must be ignored, not answered with ERROR.
		before := srv.Stats().UnhandledFrames
		conn, rd := connect(t)
		sendGrant(t, conn, "gone-sub", "5")
		expectSilence(t, conn, rd, 200*time.Millisecond)
		if got := srv.Stats().UnhandledFrames - before; got != 0 {
			t.Errorf("UnhandledFrames grew by %d for a benign stale grant", got)
		}
	})

	t.Run("malformed grant never replenishes", func(t *testing.T) {
		conn, rd := dialCredited(t, srv.Addr(), "consumer", "/credit/bad", "c-0", 1)
		publishSeq(t, br, "/credit/bad", 0)
		publishSeq(t, br, "/credit/bad", 1)
		if got := readSeq(t, conn, rd); got != 0 {
			t.Fatalf("seq %d, want 0", got)
		}
		// The malformed grant draws an ERROR (and the session closes); the
		// parked delivery must still be parked, never delivered by a
		// rejected grant.
		sendGrant(t, conn, "c-0", "-7")
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		f, err := stomp.ReadFrame(rd)
		if err != nil {
			t.Fatalf("waiting for ERROR: %v", err)
		}
		if f.Command != stomp.CmdError {
			t.Fatalf("read %s, want ERROR (malformed grant must fail closed, not deliver)", f.Command)
		}
	})

	t.Run("grant for uncredited subscription rejected", func(t *testing.T) {
		conn, rd := connect(t)
		sub := stomp.NewFrame(stomp.CmdSubscribe)
		sub.SetHeader(stomp.HdrID, "plain-0")
		sub.SetHeader(stomp.HdrDestination, "/credit/plain")
		sub.SetHeader(stomp.HdrReceipt, "r-sub")
		if err := stomp.WriteFrame(conn, sub); err != nil {
			t.Fatalf("SUBSCRIBE: %v", err)
		}
		if f, err := stomp.ReadFrame(rd); err != nil || f.Command != stomp.CmdReceipt {
			t.Fatalf("SUBSCRIBE receipt: %v, %v", f, err)
		}
		sendGrant(t, conn, "plain-0", "5")
		expectError(t, conn, rd, "without a credit window")
	})
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestDepartedSessionStatsFold is the regression test for the disconnect
// accounting window: a session evicted while Stats() snapshots must never
// make the server-wide QueueHighWater dip — the session leaves the live
// set and enters the departed fold in the same critical section.
func TestDepartedSessionStatsFold(t *testing.T) {
	const queueLen = 8
	br := broker.New(label.NewPolicy())
	defer br.Close()
	srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{
		Logf:            t.Logf,
		Overflow:        broker.OverflowDropNewest,
		WriteQueueLen:   queueLen,
		OnDeliveryError: func(uint64, string, *event.Event, error) {},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	// A stalled consumer fills its write queue to a known high-water mark.
	conn := dialStalled(t, srv.Addr(), "stalled", "/fold/t", "s-0")
	body := make([]byte, 16*1024)
	for seq := 0; srv.Stats().QueueHighWater < queueLen; seq++ {
		if seq > 10_000 {
			t.Fatalf("queue never filled: stats %+v", srv.Stats())
		}
		ev := event.New("/fold/t", map[string]string{"seq": strconv.Itoa(seq)})
		ev.Body = body
		if err := br.Publish("producer", ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}

	// Sample Stats() continuously through the teardown, recording any dip
	// below the established maximum.
	stop := make(chan struct{})
	var dipped atomic.Int64
	dipped.Store(-1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		max := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			hw := srv.Stats().QueueHighWater
			if hw < max {
				dipped.Store(int64(hw))
				return
			}
			max = hw
		}
	}()

	_ = conn.Close()
	waitFor(t, "stalled session teardown", func() bool {
		return len(srv.SessionStats()) == 0
	})
	// Let the sampler observe the post-teardown state for a while.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if d := dipped.Load(); d >= 0 {
		t.Errorf("QueueHighWater dipped to %d during session teardown; the fold must be atomic with removal", d)
	}
	if got := srv.Stats().QueueHighWater; got != queueLen {
		t.Errorf("post-teardown QueueHighWater = %d, want %d (folded from the departed session)", got, queueLen)
	}
}

// TestClientCreditReplenish exercises the client half end to end: a
// broker.Client with SubscribeCredit set advertises the window, counts
// consumed deliveries through Event.Release, and replenishes with batched
// cumulative grants — so a consumer that keeps releasing receives many
// times its window without anything dropping.
func TestClientCreditReplenish(t *testing.T) {
	const total = 50
	br := broker.New(label.NewPolicy())
	defer br.Close()
	srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{
		Logf: t.Logf,
		OnDeliveryError: func(_ uint64, _ string, _ *event.Event, err error) {
			t.Errorf("delivery dropped: %v", err)
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	cl, err := broker.DialBus(srv.Addr(), broker.ClientConfig{
		Login:           "consumer",
		SubscribeCredit: 4,
		// Teardown EOF noise is expected; only protocol errors (a broker
		// rejecting a grant, say) fail the test.
		OnError: func(err error) {
			var pe *stomp.ProtocolError
			if errors.As(err, &pe) {
				t.Errorf("client protocol error: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	defer cl.Close()

	var mu sync.Mutex
	got := make(map[int]int)
	var n atomic.Int64
	_, err = cl.Subscribe("/credit/client", "", func(ev *event.Event) {
		seq, _ := strconv.Atoi(ev.Attr("seq"))
		mu.Lock()
		got[seq]++
		mu.Unlock()
		n.Add(1)
		// The consumer's completion point: releasing the delivery event is
		// what replenishes the window.
		ev.Release()
	})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	for seq := 0; seq < total; seq++ {
		publishSeq(t, br, "/credit/client", seq)
	}
	waitFor(t, "all deliveries", func() bool { return n.Load() >= total })
	mu.Lock()
	defer mu.Unlock()
	if len(got) != total {
		t.Fatalf("received %d distinct events, want %d", len(got), total)
	}
	for seq, count := range got {
		if count != 1 {
			t.Errorf("seq %d delivered %d times, want exactly once", seq, count)
		}
	}
	if drops := srv.Stats().OverflowDrops; drops != 0 {
		t.Errorf("OverflowDrops = %d, want 0 (credit parks, the consumer keeps up)", drops)
	}
}

// TestServerRejectsBadCreditConfig mirrors the overflow config validation
// for the credit knob.
func TestServerRejectsBadCreditConfig(t *testing.T) {
	br := broker.New(label.NewPolicy())
	defer br.Close()
	if srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{CreditPending: -1}); err == nil {
		_ = srv.Close()
		t.Error("NewServer accepted negative CreditPending")
	}
}
