package stomp

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// imageFromFrame builds the wire image for a frame's headers and body, the
// way the event layer builds one from a published event.
func imageFromFrame(f *Frame) *WireImage {
	return NewMessageImage(f.Headers, f.Body)
}

// TestEncodeImageMatchesEncodeMessage is the wire-conformance anchor for
// the preencoded path: for the same logical MESSAGE and routing headers,
// EncodeImage must put byte-identical data on the wire to EncodeMessage —
// including header escaping, sorted order, routing-header replacement and
// content-length framing.
func TestEncodeImageMatchesEncodeMessage(t *testing.T) {
	frames := map[string]*Frame{
		"delivery": messageFrame(),
		"attr-free no body": func() *Frame {
			f := NewFrame(CmdMessage)
			f.SetHeader(HdrDestination, "/t")
			return f
		}(),
		"escaped headers": func() *Frame {
			f := NewFrame(CmdMessage)
			f.SetHeader(HdrDestination, "/t")
			f.SetHeader("tricky:key", "line1\nline2:with\\slash\rcr")
			f.SetHeader("empty", "")
			f.Body = []byte("\x00\x01 body with NUL \x00")
			return f
		}(),
		"stale routing headers dropped": func() *Frame {
			// Base headers named like the routing headers must be
			// replaced by the per-delivery values on both paths.
			f := NewFrame(CmdMessage)
			f.SetHeader(HdrDestination, "/t")
			f.SetHeader(HdrSubscription, "stale-sub")
			f.SetHeader(HdrMessageID, "stale-id")
			return f
		}(),
		"routing value needing escape": func() *Frame {
			f := NewFrame(CmdMessage)
			f.SetHeader(HdrDestination, "/t")
			return f
		}(),
	}
	subs := map[string]string{"plain": "sub-7", "escaped": "sub:with\ncontrol"}

	for fname, f := range frames {
		img := imageFromFrame(f)
		for sname, sub := range subs {
			var viaMessage, viaImage bytes.Buffer
			var enc Encoder
			if err := enc.EncodeMessage(&viaMessage, f, sub, "m-9-", 4711); err != nil {
				t.Fatalf("%s/%s: EncodeMessage: %v", fname, sname, err)
			}
			if err := enc.EncodeImage(&viaImage, img, sub, "m-9-", 4711); err != nil {
				t.Fatalf("%s/%s: EncodeImage: %v", fname, sname, err)
			}
			if !bytes.Equal(viaMessage.Bytes(), viaImage.Bytes()) {
				t.Errorf("%s/%s: image bytes differ from EncodeMessage:\n%q\n%q",
					fname, sname, viaMessage.Bytes(), viaImage.Bytes())
			}

			// The spliced frame must decode back to the logical message.
			back, err := ReadFrame(bufio.NewReader(bytes.NewReader(viaImage.Bytes())))
			if err != nil {
				t.Fatalf("%s/%s: decode spliced image: %v", fname, sname, err)
			}
			if back.Header(HdrSubscription) != sub || back.Header(HdrMessageID) != "m-9-4711" {
				t.Errorf("%s/%s: routing headers = %q/%q", fname, sname,
					back.Header(HdrSubscription), back.Header(HdrMessageID))
			}
			if !bytes.Equal(back.Body, f.Body) {
				t.Errorf("%s/%s: body corrupted through image path", fname, sname)
			}
		}
	}
}

// TestEncodeImageConformanceCorpus runs every successful corpus case
// through the image path as a MESSAGE, proving the preencoded splice
// speaks the exact dialect of the incremental encoder on the shared
// canonical corpus.
func TestEncodeImageConformanceCorpus(t *testing.T) {
	for _, tc := range conformanceCorpus() {
		if tc.wantErr {
			continue
		}
		f := &Frame{Command: CmdMessage, Headers: tc.headers}
		if tc.body != "" {
			f.Body = []byte(tc.body)
		}
		img := imageFromFrame(f)
		var viaMessage, viaImage bytes.Buffer
		var enc Encoder
		if err := enc.EncodeMessage(&viaMessage, f, "sub-1", "m-1-", 1); err != nil {
			t.Fatalf("%s: EncodeMessage: %v", tc.name, err)
		}
		if err := enc.EncodeImage(&viaImage, img, "sub-1", "m-1-", 1); err != nil {
			t.Fatalf("%s: EncodeImage: %v", tc.name, err)
		}
		if !bytes.Equal(viaMessage.Bytes(), viaImage.Bytes()) {
			t.Errorf("%s: image bytes differ:\n%q\n%q", tc.name, viaMessage.Bytes(), viaImage.Bytes())
		}
	}
}

// TestEncodeImageAllocs pins the per-delivery cost of the preencoded
// path: splicing routing headers around a shared image must not allocate
// once the encoder scratch is warm — the image itself was the one
// allocation, paid once per published event.
func TestEncodeImageAllocs(t *testing.T) {
	img := imageFromFrame(messageFrame())
	var enc Encoder
	if err := enc.EncodeImage(io.Discard, img, "sub-12", "m-3-", 1); err != nil {
		t.Fatalf("EncodeImage: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := enc.EncodeImage(io.Discard, img, "sub-12", "m-3-", 4711); err != nil {
			t.Fatalf("EncodeImage: %v", err)
		}
	})
	if avg > 0 {
		t.Errorf("EncodeImage allocs/op = %g, want 0", avg)
	}
}

func BenchmarkFrameEncodeImage(b *testing.B) {
	img := imageFromFrame(messageFrame())
	var enc Encoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.EncodeImage(io.Discard, img, "sub-12", "m-3-", uint64(i)); err != nil {
			b.Fatalf("EncodeImage: %v", err)
		}
	}
}
