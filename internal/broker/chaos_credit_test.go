package broker_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/faultnet"
	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// creditHandshake completes CONNECT and a credited SUBSCRIBE on an
// existing connection (typically a faultnet.Conn), returning the frame
// reader once the SUBSCRIBE receipt confirms deliveries will flow.
func creditHandshake(t testing.TB, conn net.Conn, login, topic, subID string, credit int) *bufio.Reader {
	t.Helper()
	rd := bufio.NewReader(conn)
	connect := stomp.NewFrame(stomp.CmdConnect)
	connect.SetHeader(stomp.HdrLogin, login)
	if err := stomp.WriteFrame(conn, connect); err != nil {
		t.Fatalf("%s CONNECT: %v", login, err)
	}
	if f, err := stomp.ReadFrame(rd); err != nil || f.Command != stomp.CmdConnected {
		t.Fatalf("%s handshake: frame %v, err %v", login, f, err)
	}
	sub := stomp.NewFrame(stomp.CmdSubscribe)
	sub.SetHeader(stomp.HdrID, subID)
	sub.SetHeader(stomp.HdrDestination, topic)
	sub.SetHeader(stomp.HdrCredit, strconv.Itoa(credit))
	sub.SetHeader(stomp.HdrReceipt, "r-sub")
	if err := stomp.WriteFrame(conn, sub); err != nil {
		t.Fatalf("%s SUBSCRIBE: %v", login, err)
	}
	for {
		f, err := stomp.ReadFrame(rd)
		if err != nil {
			t.Fatalf("%s waiting for SUBSCRIBE receipt: %v", login, err)
		}
		if f.Command == stomp.CmdReceipt {
			return rd
		}
	}
}

// TestChaosCreditedConsumers drives credit-based flow control through
// fault-injected connections (package faultnet) under concurrent
// publishers: a slow-granting consumer (latency and chunked partial
// writes on every frame), a consumer that never grants, one that resets
// its connection mid-stream, and healthy credited engine subscriptions on
// every topic.
//
// The invariants: healthy subscriptions receive every event exactly once;
// the slow-granting consumer receives its whole feed exactly once with
// zero overflow drops anywhere (credit parks instead of dropping); the
// never-granting consumer's backlog parks broker-side, bounded by its
// window — exactly events minus window deep; every stall is counted in
// CreditStalls and hooked through OnCreditStall; and deliveries are lost
// (to teardown, with transport accounting) only on the stuck and reset
// sessions. Under -race it doubles as the data-race check for the credit
// paths: tryClaim racing park, grant-drain racing publishers, teardown
// racing both.
func TestChaosCreditedConsumers(t *testing.T) {
	const (
		window      = 4
		ring        = 32
		feedEvents  = 120
		stuckEvents = 24 // parked = stuckEvents - window, must stay <= ring
		resetEvents = 12
		healthySubs = 2
		publishers  = 2
	)
	topics := []string{"/credit/feed", "/credit/stuck", "/credit/reset"}

	br := broker.New(label.NewPolicy())
	defer br.Close()

	var slowDrops, otherDrops atomic.Uint64
	var dropMu sync.Mutex
	dropSessions := make(map[uint64]bool)
	var stallMu sync.Mutex
	var stallEvents []broker.CreditStallEvent
	srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{
		Logf:          t.Logf,
		Overflow:      broker.OverflowDropNewest,
		CreditPending: ring,
		OnDeliveryError: func(sessionID uint64, sub string, ev *event.Event, err error) {
			if errors.Is(err, broker.ErrSlowConsumer) {
				slowDrops.Add(1)
			} else {
				otherDrops.Add(1)
			}
			dropMu.Lock()
			dropSessions[sessionID] = true
			dropMu.Unlock()
		},
		OnCreditStall: func(ev broker.CreditStallEvent) {
			stallMu.Lock()
			stallEvents = append(stallEvents, ev)
			stallMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	// Healthy consumers: one engine, credited subscriptions on every
	// topic, replenishing through the Release lifecycle.
	var seenMu sync.Mutex
	seen := make(map[string][]map[int]int)
	for _, topic := range topics {
		seen[topic] = make([]map[int]int, healthySubs)
		for i := range seen[topic] {
			seen[topic][i] = make(map[int]int)
		}
	}
	var healthyTotal atomic.Int64
	eng, err := engine.New(engine.Config{
		Policy: label.NewPolicy(),
		Bus: func(principal string) (broker.Bus, error) {
			return broker.DialBus(srv.Addr(), broker.ClientConfig{
				Login:           principal,
				SubscribeCredit: 2 * window,
				OnError: func(err error) {
					var pe *stomp.ProtocolError
					if errors.As(err, &pe) {
						t.Errorf("healthy bus protocol error: %v", err)
					}
				},
			})
		},
		QueueSize: 512,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	defer eng.Stop()
	err = eng.AddUnit(chaosUnit{name: "consumer", init: func(ctx *engine.InitContext) error {
		for _, topic := range topics {
			for i := 0; i < healthySubs; i++ {
				topic, i := topic, i
				if err := ctx.Subscribe(topic, "", func(_ *engine.Context, ev *event.Event) error {
					seq, err := strconv.Atoi(ev.Attr("seq"))
					if err != nil {
						return fmt.Errorf("bad seq attr %q: %v", ev.Attr("seq"), err)
					}
					seenMu.Lock()
					seen[topic][i][seq]++
					seenMu.Unlock()
					healthyTotal.Add(1)
					return nil
				}); err != nil {
					return err
				}
			}
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}

	// The slow-granting consumer: every read is delayed and every write —
	// including its ACK grants — arrives in 7-byte chunks, so the server
	// reassembles grants from partial frames while publishers race the
	// window.
	feedConn, err := faultnet.Dial("tcp", srv.Addr(), faultnet.Plan{
		ReadLatency: 500 * time.Microsecond,
		WriteChunk:  7,
	})
	if err != nil {
		t.Fatalf("faultnet dial feed: %v", err)
	}
	defer feedConn.Close()
	feedRd := creditHandshake(t, feedConn, "slowgrant", "/credit/feed", "feed-0", window)
	var feedMu sync.Mutex
	feedSeen := make(map[int]int)
	var feedCount atomic.Int64
	feedDone := make(chan error, 1)
	go func() {
		granted := int64(window)
		var consumed int64
		for {
			f, err := stomp.ReadFrame(feedRd)
			if err != nil {
				feedDone <- err
				return
			}
			if f.Command != stomp.CmdMessage {
				continue
			}
			seq, err := strconv.Atoi(f.Header("seq"))
			if err != nil {
				feedDone <- fmt.Errorf("feed MESSAGE without seq: %v", f)
				return
			}
			feedMu.Lock()
			feedSeen[seq]++
			feedMu.Unlock()
			consumed++
			// Low-water replenishment, as the real client batches it: a
			// cumulative grant once half the window has completed.
			if next := consumed + window; next-granted >= window/2 {
				granted = next
				g := stomp.NewFrame(stomp.CmdAck)
				g.SetHeader(stomp.HdrSubscription, "feed-0")
				g.SetHeader(stomp.HdrCredit, strconv.FormatInt(next, 10))
				if err := stomp.WriteFrame(feedConn, g); err != nil {
					feedDone <- fmt.Errorf("feed grant: %v", err)
					return
				}
			}
			if feedCount.Add(1) == feedEvents {
				feedDone <- nil
				return
			}
		}
	}()

	// The never-granting consumer: subscribes, then its connection stalls
	// — reads and writes block until released. Its window drains and
	// everything else parks broker-side.
	stuckConn, err := faultnet.Dial("tcp", srv.Addr(), faultnet.Plan{})
	if err != nil {
		t.Fatalf("faultnet dial stuck: %v", err)
	}
	defer stuckConn.Close()
	_ = creditHandshake(t, stuckConn, "stuck", "/credit/stuck", "stuck-0", window)
	stuckConn.Stall()

	// The mid-stream reset consumer: reads a couple of deliveries, then
	// severs the connection with a TCP reset.
	resetConn, err := faultnet.Dial("tcp", srv.Addr(), faultnet.Plan{})
	if err != nil {
		t.Fatalf("faultnet dial reset: %v", err)
	}
	defer resetConn.Close()
	resetRd := creditHandshake(t, resetConn, "reset", "/credit/reset", "reset-0", window)

	sessionID := func(login string) uint64 {
		for _, ss := range srv.SessionStats() {
			if ss.Login == login {
				return ss.ID
			}
		}
		t.Fatalf("session for %s not found", login)
		return 0
	}
	feedID := sessionID("slowgrant")
	stuckID := sessionID("stuck")
	resetID := sessionID("reset")

	parkedFor := func(id uint64) int {
		for _, ss := range srv.SessionStats() {
			if ss.ID == id {
				return ss.CreditParked
			}
		}
		return 0
	}

	deadline := time.Now().Add(2 * time.Minute)
	pace := func(cond func() bool, what string) {
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: stats %+v", what, srv.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Concurrent publishers on the feed topic, paced only by the slow
	// consumer's parked backlog staying clear of the ring — the window
	// stalls and drains continuously while they race.
	var wg sync.WaitGroup
	var feedSeq atomic.Int64
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(feedSeq.Add(1)) - 1
				if s >= feedEvents {
					return
				}
				pace(func() bool { return parkedFor(feedID) <= ring/2 }, "feed ring headroom")
				ev := event.New("/credit/feed", map[string]string{"seq": strconv.Itoa(s)})
				if err := br.Publish("producer", ev); err != nil {
					t.Errorf("feed publish %d: %v", s, err)
					return
				}
			}
		}()
	}
	// The stuck topic: its consumer never grants, so everything past the
	// window parks; the publisher never blocks (drop-newest) and the ring
	// is sized to hold the whole backlog.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < stuckEvents; s++ {
			ev := event.New("/credit/stuck", map[string]string{"seq": strconv.Itoa(s)})
			if err := br.Publish("producer", ev); err != nil {
				t.Errorf("stuck publish %d: %v", s, err)
				return
			}
		}
	}()
	// The reset topic: the consumer reads two deliveries and resets.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < resetEvents; s++ {
			ev := event.New("/credit/reset", map[string]string{"seq": strconv.Itoa(s)})
			if err := br.Publish("producer", ev); err != nil {
				t.Errorf("reset publish %d: %v", s, err)
				return
			}
		}
	}()
	wg.Wait()

	// Reset consumer: two reads, then sever mid-stream.
	for i := 0; i < 2; i++ {
		if f, err := stomp.ReadFrame(resetRd); err != nil || f.Command != stomp.CmdMessage {
			t.Fatalf("reset consumer read %d: %v, %v", i, f, err)
		}
	}
	if err := resetConn.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}

	// The stuck backlog is exactly bounded by the window: everything
	// published past it parked, nothing dropped.
	if got, want := parkedFor(stuckID), stuckEvents-window; got != want {
		t.Errorf("stuck CreditParked = %d, want %d (published %d, window %d)", got, want, stuckEvents, window)
	}

	// Everyone healthy drains fully.
	wantHealthy := int64(healthySubs * (feedEvents + stuckEvents + resetEvents))
	pace(func() bool { return healthyTotal.Load() >= wantHealthy }, "healthy consumers")
	select {
	case err := <-feedDone:
		if err != nil {
			t.Fatalf("feed consumer: %v", err)
		}
	case <-time.After(time.Until(deadline)):
		t.Fatalf("slow-granting consumer finished %d of %d deliveries: stats %+v",
			feedCount.Load(), feedEvents, srv.Stats())
	}

	// Teardown: the stuck session's parked backlog is dropped with
	// transport accounting when its connection dies.
	_ = stuckConn.Close()
	pace(func() bool {
		for _, ss := range srv.SessionStats() {
			if ss.ID == stuckID || ss.ID == resetID {
				return false
			}
		}
		return true
	}, "stuck/reset session teardown")

	// Exactly-once, full coverage, for every healthy subscription.
	seenMu.Lock()
	for _, tc := range []struct {
		topic string
		total int
	}{{"/credit/feed", feedEvents}, {"/credit/stuck", stuckEvents}, {"/credit/reset", resetEvents}} {
		for i := 0; i < healthySubs; i++ {
			if len(seen[tc.topic][i]) != tc.total {
				t.Errorf("%s sub %d: %d distinct events, want %d", tc.topic, i, len(seen[tc.topic][i]), tc.total)
			}
			for s, n := range seen[tc.topic][i] {
				if n != 1 {
					t.Errorf("%s sub %d: seq %d delivered %d times", tc.topic, i, s, n)
				}
			}
		}
	}
	seenMu.Unlock()

	// The slow-granting consumer got its whole feed exactly once.
	feedMu.Lock()
	if len(feedSeen) != feedEvents {
		t.Errorf("slow-granting consumer: %d distinct events, want %d", len(feedSeen), feedEvents)
	}
	for s, n := range feedSeen {
		if n != 1 {
			t.Errorf("slow-granting consumer: seq %d delivered %d times", s, n)
		}
	}
	feedMu.Unlock()

	// Credit never dropped anything: zero overflow drops anywhere, and
	// transport losses only on the sessions that died.
	stats := srv.Stats()
	if stats.OverflowDrops != 0 || slowDrops.Load() != 0 {
		t.Errorf("OverflowDrops = %d (hooked %d); credited-but-slow consumers must park, not drop",
			stats.OverflowDrops, slowDrops.Load())
	}
	if got := otherDrops.Load(); got != stats.DroppedDeliveries {
		t.Errorf("transport drop hooks %d != Stats().DroppedDeliveries %d", got, stats.DroppedDeliveries)
	}
	dropMu.Lock()
	for id := range dropSessions {
		if id != stuckID && id != resetID {
			t.Errorf("delivery dropped for session %d; only stuck %d and reset %d may lose deliveries",
				id, stuckID, resetID)
		}
	}
	dropMu.Unlock()

	// Every stall counted and hooked, once per run.
	stallMu.Lock()
	hooked := len(stallEvents)
	stalledSessions := make(map[uint64]bool)
	for _, ev := range stallEvents {
		stalledSessions[ev.SessionID] = true
	}
	stallMu.Unlock()
	if stats.CreditStalls == 0 {
		t.Error("CreditStalls = 0; the stuck consumer must have stalled")
	}
	if uint64(hooked) != stats.CreditStalls {
		t.Errorf("OnCreditStall fired %d times, Stats().CreditStalls = %d; every stall run is hooked exactly once",
			hooked, stats.CreditStalls)
	}
	if !stalledSessions[stuckID] {
		t.Error("no CreditStallEvent for the never-granting session")
	}
	if stats.UnhandledFrames != 0 {
		t.Errorf("UnhandledFrames = %d, want 0 (all control frames well-formed)", stats.UnhandledFrames)
	}
}
