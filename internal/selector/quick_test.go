package selector

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// genExpr builds a random selector AST of bounded depth over a small
// attribute universe, together with its source text, by rendering and
// re-parsing. It exercises the printer/parser agreement and evaluator
// totality.
func genExprSrc(rnd *rand.Rand, depth int) string {
	idents := []string{"a", "b", "c", "type", "age"}
	strs := []string{"'x'", "'y'", "'cancer'", "''", "'O''Brien'"}
	nums := []string{"0", "1", "2", "3.5", "61", "100"}

	operand := func() string {
		switch rnd.Intn(3) {
		case 0:
			return idents[rnd.Intn(len(idents))]
		case 1:
			return strs[rnd.Intn(len(strs))]
		default:
			return nums[rnd.Intn(len(nums))]
		}
	}

	if depth <= 0 {
		// Leaf comparison.
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		switch rnd.Intn(5) {
		case 0:
			return operand() + " IS NULL"
		case 1:
			return operand() + " IS NOT NULL"
		case 2:
			return idents[rnd.Intn(len(idents))] + " BETWEEN " + nums[rnd.Intn(len(nums))] + " AND " + nums[rnd.Intn(len(nums))]
		case 3:
			return idents[rnd.Intn(len(idents))] + " IN (" + strs[rnd.Intn(len(strs))] + ", " + strs[rnd.Intn(len(strs))] + ")"
		default:
			return operand() + " " + ops[rnd.Intn(len(ops))] + " " + operand()
		}
	}
	switch rnd.Intn(4) {
	case 0:
		return "(" + genExprSrc(rnd, depth-1) + " AND " + genExprSrc(rnd, depth-1) + ")"
	case 1:
		return "(" + genExprSrc(rnd, depth-1) + " OR " + genExprSrc(rnd, depth-1) + ")"
	case 2:
		return "NOT (" + genExprSrc(rnd, depth-1) + ")"
	default:
		return genExprSrc(rnd, depth-1)
	}
}

func genAttrs(rnd *rand.Rand) map[string]string {
	universe := []string{"a", "b", "c", "type", "age"}
	values := []string{"x", "y", "cancer", "0", "1", "61", "3.5", ""}
	attrs := make(map[string]string)
	for _, k := range universe {
		if rnd.Intn(2) == 0 {
			attrs[k] = values[rnd.Intn(len(values))]
		}
	}
	return attrs
}

// TestQuickPrintParseAgree: parsing a random expression, printing the AST
// and re-parsing the printed form must evaluate identically on random
// attribute environments.
func TestQuickPrintParseAgree(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		src := genExprSrc(rnd, 3)
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("generated expression failed to parse: %q: %v", src, err)
		}
		printed := s.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form failed to parse: %q (from %q): %v", printed, src, err)
		}
		for j := 0; j < 10; j++ {
			attrs := genAttrs(rnd)
			if s.MatchesAttrs(attrs) != s2.MatchesAttrs(attrs) {
				t.Fatalf("eval mismatch for %q vs %q on %v", src, printed, attrs)
			}
		}
	}
}

// TestQuickEvaluatorTotal: the evaluator must never panic, whatever the
// attribute values.
func TestQuickEvaluatorTotal(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	for i := 0; i < 400; i++ {
		src := genExprSrc(rnd, 4)
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		for j := 0; j < 5; j++ {
			_ = s.MatchesAttrs(genAttrs(rnd))
		}
	}
}

// TestQuickNotInvolution: NOT (NOT e) evaluates the same as e whenever e is
// not unknown; when unknown both reject.
func TestQuickNotInvolution(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		src := genExprSrc(rnd, 2)
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		doubled, err := Parse("NOT (NOT (" + src + "))")
		if err != nil {
			t.Fatalf("Parse doubled: %v", err)
		}
		for j := 0; j < 10; j++ {
			attrs := genAttrs(rnd)
			if s.MatchesAttrs(attrs) != doubled.MatchesAttrs(attrs) {
				t.Fatalf("double negation changed result for %q on %v", src, attrs)
			}
		}
	}
}

// TestQuickNumericStringAgreement: for numeric attribute values, comparing
// via selector must agree with Go float comparison.
func TestQuickNumericStringAgreement(t *testing.T) {
	prop := func(x, y int16) bool {
		attrs := map[string]string{"v": strconv.Itoa(int(x))}
		gt, err := Parse("v > " + strconv.Itoa(int(y)))
		if err != nil {
			return false
		}
		return gt.MatchesAttrs(attrs) == (int(x) > int(y))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLikePrefix: v LIKE 'p%' agrees with strings.HasPrefix for
// patterns without metacharacters.
func TestQuickLikePrefix(t *testing.T) {
	letters := []rune("abcxyz")
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		n := rnd.Intn(6)
		v := make([]rune, n)
		for j := range v {
			v[j] = letters[rnd.Intn(len(letters))]
		}
		p := make([]rune, rnd.Intn(4))
		for j := range p {
			p[j] = letters[rnd.Intn(len(letters))]
		}
		val, prefix := string(v), string(p)
		s, err := Parse("v LIKE '" + prefix + "%'")
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		want := len(val) >= len(prefix) && val[:len(prefix)] == prefix
		if got := s.MatchesAttrs(map[string]string{"v": val}); got != want {
			t.Fatalf("LIKE %q%% on %q = %v, want %v", prefix, val, got, want)
		}
	}
}
