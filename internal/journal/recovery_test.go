package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The crash-recovery matrix: every way a crash can tear the log —
// mid-append truncation, flipped bits, a zeroed tail, a torn ack log, an
// empty just-rolled segment — reopened and verified to recover to exactly
// the committed prefix, with acked offsets intact. The broker-level
// resume-after-restart test lives in package broker; this matrix owns the
// file-format corner cases.

// fillJournal writes n records into dir with small segments and returns
// the segment file paths in order.
func fillJournal(t *testing.T, dir string, n int) []string {
	t.Helper()
	j, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mustAppend(t, j, testRecord(i))
	}
	if err := j.Ack("g", int64(n/2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 2 {
		t.Fatalf("test needs multiple segments, got %v", names)
	}
	paths := make([]string, len(names))
	for i, name := range names {
		paths[i] = filepath.Join(dir, name)
	}
	return paths
}

// lastSegmentRecords returns how many records the reopened journal holds
// and verifies every one of them reads back intact.
func verifyRecovered(t *testing.T, dir string, wantAcked int64) int64 {
	t.Helper()
	j, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer j.Close()
	end := j.NextOffset()
	var rec Record
	for i := int64(0); i < end; i++ {
		if err := j.Read(i, &rec); err != nil {
			t.Fatalf("recovered Read %d: %v", i, err)
		}
	}
	if got := j.Acked("g"); got != wantAcked {
		t.Fatalf("recovered Acked(g) = %d, want %d", got, wantAcked)
	}
	// Recovery must leave an appendable log: the next record lands at the
	// recovered bound and reads back.
	off := mustAppend(t, j, testRecord(int(end)))
	if off != end {
		t.Fatalf("post-recovery append at %d, want %d", off, end)
	}
	if err := j.Read(off, &rec); err != nil {
		t.Fatalf("post-recovery Read: %v", err)
	}
	return end
}

func TestRecoveryTornTail(t *testing.T) {
	const n = 20
	dir := t.TempDir()
	paths := fillJournal(t, dir, n)
	last := paths[len(paths)-1]

	// Crash mid-append: the final record's bytes are half-written.
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	end := verifyRecovered(t, dir, n/2)
	if end >= n || end == 0 {
		t.Fatalf("recovered bound %d, want in (0,%d)", end, n)
	}
}

func TestRecoveryCorruptLastSegmentBitFlip(t *testing.T) {
	const n = 20
	dir := t.TempDir()
	paths := fillJournal(t, dir, n)
	last := paths[len(paths)-1]

	// Flip a bit in the middle of the last segment: CRC catches it and
	// recovery truncates from the damaged record on.
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}
	end := verifyRecovered(t, dir, n/2)
	if end >= n {
		t.Fatalf("recovered bound %d, want < %d (damaged records dropped)", end, n)
	}
}

func TestRecoveryZeroedTail(t *testing.T) {
	const n = 20
	dir := t.TempDir()
	paths := fillJournal(t, dir, n)
	last := paths[len(paths)-1]

	// A crash on some filesystems leaves allocated-but-zeroed tail blocks.
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	end := verifyRecovered(t, dir, n/2)
	if end == 0 {
		t.Fatal("zeroed tail wiped the whole last segment")
	}
}

func TestRecoveryInteriorCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	paths := fillJournal(t, dir, 20)

	// Damage a non-final segment: that is not a torn tail, and silently
	// truncating there would orphan every later segment — Open must fail.
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentSize: 256}); err == nil {
		t.Fatal("Open with interior corruption: want error")
	} else if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Open error = %v, want ErrCorruptRecord", err)
	}
}

func TestRecoveryMissingSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	paths := fillJournal(t, dir, 20)
	if len(paths) < 3 {
		t.Fatalf("test needs an interior segment, got %d segments", len(paths))
	}
	// A missing interior segment is a gap, not a compacted prefix (only a
	// prefix can legally be absent — compaction unlinks lowest-first).
	if err := os.Remove(paths[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentSize: 256}); err == nil {
		t.Fatal("Open with missing interior segment: want error")
	}
}

func TestRecoveryEmptyRolledSegment(t *testing.T) {
	const n = 20
	dir := t.TempDir()
	paths := fillJournal(t, dir, n)

	// Crash between rolling a new segment file and writing its first
	// record: an empty final segment is a clean recovery point.
	_ = paths
	empty := filepath.Join(dir, segmentName(int64(n)))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	end := verifyRecovered(t, dir, n/2)
	if end != n {
		t.Fatalf("recovered bound %d, want %d (empty segment holds no records)", end, n)
	}
}

func TestRecoveryTornAckLog(t *testing.T) {
	const n = 20
	dir := t.TempDir()
	fillJournal(t, dir, n)

	ackPath := filepath.Join(dir, ackLogName)
	fi, err := os.Stat(ackPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(ackPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	// The one ack record is torn, so the group folds back to zero — and
	// the journal still opens, reads and appends.
	verifyRecovered(t, dir, 0)
}
