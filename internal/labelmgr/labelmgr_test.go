package labelmgr

import (
	"strings"
	"testing"

	"safeweb/internal/broker"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/label"
)

var (
	mdtInt  = label.Int("ecric.org.uk/mdt")
	patient = label.Conf("ecric.org.uk/patient/1")
)

// rig wires a broker + engine with the manager and returns both plus the
// policy.
func rig(t *testing.T, m *Manager) (*broker.Broker, *engine.Engine, *label.Policy) {
	t.Helper()
	policy := m.Policy
	// The admin principal can endorse the manager's integrity label; a
	// rogue principal cannot.
	policy.SetPrincipal("admin", label.NewPrivileges().
		Grant(label.Endorse, label.MustParsePattern("label:int:ecric.org.uk/*")), true)

	b := broker.New(policy)
	e, err := engine.New(engine.Config{
		Policy: policy,
		Bus: func(principal string) (broker.Bus, error) {
			return b.Endpoint(principal), nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		e.Stop()
		b.Close()
	})
	if err := e.AddUnit(m); err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	return b, e, policy
}

func newManager() *Manager {
	return &Manager{
		Policy:    label.NewPolicy(),
		Require:   mdtInt,
		Protected: []string{"mdt-data-storage"},
	}
}

func TestGrantAppliedAtRuntime(t *testing.T) {
	m := newManager()
	b, e, policy := rig(t, m)

	if policy.PrivilegesOf("new-unit").Has(label.Clearance, patient) {
		t.Fatal("precondition: new-unit already cleared")
	}
	req := NewRequest("", "new-unit", label.Clearance,
		label.MustParsePattern("label:conf:ecric.org.uk/patient/*"), false)
	req.Labels = label.NewSet(mdtInt)
	if err := b.Publish("admin", req); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	e.Drain()

	if !policy.PrivilegesOf("new-unit").Has(label.Clearance, patient) {
		t.Fatal("delegated clearance not applied")
	}
	log := m.Log()
	if len(log) != 1 || !log[0].Applied || log[0].Principal != "new-unit" {
		t.Errorf("log = %+v", log)
	}
}

func TestDelegationChangesDeliveryLive(t *testing.T) {
	m := newManager()
	b, e, _ := rig(t, m)

	got := make(chan *event.Event, 4)
	err := e.AddUnit(&engine.FuncUnit{UnitName: "listener", InitFunc: func(ctx *engine.InitContext) error {
		return ctx.Subscribe("/data", "", func(_ *engine.Context, ev *event.Event) error {
			got <- ev.Clone() // events are pooled once the callback returns
			return nil
		})
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Before delegation: the labelled event is filtered.
	if err := b.Publish("admin", event.New("/data", nil, patient)); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if len(got) != 0 {
		t.Fatal("uncleared listener received labelled event")
	}

	// Delegate clearance, then republish.
	req := NewRequest("", "listener", label.Clearance, label.Exact(patient), false)
	req.Labels = label.NewSet(mdtInt)
	if err := b.Publish("admin", req); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if err := b.Publish("admin", event.New("/data", nil, patient)); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if len(got) != 1 {
		t.Fatalf("after delegation: %d events, want 1", len(got))
	}

	// Revoke, publish again: filtered once more.
	req = NewRequest("", "listener", label.Clearance, label.Exact(patient), true)
	req.Labels = label.NewSet(mdtInt)
	if err := b.Publish("admin", req); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if err := b.Publish("admin", event.New("/data", nil, patient)); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if len(got) != 1 {
		t.Fatalf("after revocation: %d events, want 1", len(got))
	}
}

func TestUnauthorisedRequestRejected(t *testing.T) {
	m := newManager()
	b, e, policy := rig(t, m)
	// A request without the integrity label (published by a principal
	// that cannot endorse it) is rejected.
	req := NewRequest("", "new-unit", label.Clearance, label.Exact(patient), false)
	if err := b.Publish("rogue", req); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	e.Drain()

	if policy.PrivilegesOf("new-unit").Has(label.Clearance, patient) {
		t.Fatal("unauthorised delegation applied")
	}
	log := m.Log()
	if len(log) != 1 || log[0].Applied {
		t.Fatalf("log = %+v", log)
	}
	if !strings.Contains(log[0].Reason, "integrity label") {
		t.Errorf("reason = %q", log[0].Reason)
	}
}

func TestProtectedPrincipal(t *testing.T) {
	m := newManager()
	b, e, policy := rig(t, m)
	req := NewRequest("", "mdt-data-storage", label.Declassify,
		label.MustParsePattern("label:conf:*"), false)
	req.Labels = label.NewSet(mdtInt)
	if err := b.Publish("admin", req); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if policy.PrivilegesOf("mdt-data-storage").Has(label.Declassify, patient) {
		t.Fatal("protected principal modified")
	}
	if log := m.Log(); len(log) != 1 || log[0].Applied || log[0].Reason != "principal is protected" {
		t.Errorf("log = %+v", log)
	}
}

func TestMalformedRequests(t *testing.T) {
	m := newManager()
	b, e, _ := rig(t, m)

	publish := func(attrs map[string]string) {
		t.Helper()
		ev := event.New(DefaultTopic, attrs)
		ev.Labels = label.NewSet(mdtInt)
		if err := b.Publish("admin", ev); err != nil {
			t.Fatal(err)
		}
	}
	publish(map[string]string{AttrPrivilege: "clearance", AttrPattern: "label:conf:x"})                // no principal
	publish(map[string]string{AttrPrincipal: "u", AttrPrivilege: "root", AttrPattern: "label:conf:x"}) // bad privilege
	publish(map[string]string{AttrPrincipal: "u", AttrPrivilege: "clearance", AttrPattern: "junk"})    // bad pattern
	publish(map[string]string{AttrPrincipal: "u", AttrPrivilege: "clearance", AttrPattern: "label:conf:x", AttrAction: "explode"})
	e.Drain()

	log := m.Log()
	if len(log) != 4 {
		t.Fatalf("log entries = %d", len(log))
	}
	for i, entry := range log {
		if entry.Applied {
			t.Errorf("malformed request %d applied: %+v", i, entry)
		}
	}
}

func TestRevokeNoMatch(t *testing.T) {
	m := newManager()
	b, e, _ := rig(t, m)
	req := NewRequest("", "u", label.Clearance, label.Exact(patient), true)
	req.Labels = label.NewSet(mdtInt)
	if err := b.Publish("admin", req); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if log := m.Log(); len(log) != 1 || log[0].Applied || log[0].Reason != "no matching grant" {
		t.Errorf("log = %+v", log)
	}
}

func TestInitRequiresPolicy(t *testing.T) {
	e, err := engine.New(engine.Config{
		Policy: label.NewPolicy(),
		Bus: func(string) (broker.Bus, error) {
			return broker.New(label.NewPolicy()).Endpoint("x"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if err := e.AddUnit(&Manager{}); err == nil {
		t.Error("manager without policy accepted")
	}
}
