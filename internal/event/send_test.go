package event

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// legacySendWire replicates the pre-fast-path Client.Publish byte stream
// exactly: MarshalHeaders into a map, destination pulled out, a SEND
// frame built header by header (with the receipt set in the map, as
// SendReceipt did) and encoded. The direct SEND encoding is pinned
// byte-for-byte against this.
func legacySendWire(t testing.TB, e *Event, receipt string) []byte {
	t.Helper()
	headers, body, err := MarshalHeaders(e)
	if err != nil {
		t.Fatalf("MarshalHeaders: %v", err)
	}
	dest := headers[HeaderDestination]
	delete(headers, HeaderDestination)
	f := stomp.NewFrame(stomp.CmdSend)
	for k, v := range headers {
		f.SetHeader(k, v)
	}
	f.SetHeader(stomp.HdrDestination, dest)
	if receipt != "" {
		f.SetHeader(stomp.HdrReceipt, receipt)
	}
	f.Body = body
	var buf bytes.Buffer
	var enc stomp.Encoder
	if err := enc.Encode(&buf, f); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// sendConformanceCorpus returns the canonical publish-side corpus: every
// event shape the producer fast path must encode byte-identically to the
// legacy map path — labels, attributes needing escaping, empty keys and
// values, binary bodies, and keys that sort around the destination and
// receipt headers.
func sendConformanceCorpus() []struct {
	name string
	ev   *Event
} {
	withBody := func(e *Event, body []byte) *Event {
		e.Body = body
		return e
	}
	return []struct {
		name string
		ev   *Event
	}{
		{"attr-free unlabelled", New("/t", nil)},
		{"attr-free labelled", withBody(
			New("/patient_report", nil,
				label.Conf("ecric.org.uk/mdt/7"), label.Conf("a.org/x"), label.Int("b.org/y")),
			[]byte(`{"record": true}`))},
		{"attrs and labels", withBody(
			New("/patient_report", map[string]string{
				"patient_id": "33812769", "type": "cancer",
			}, label.Conf("ecric.org.uk/mdt/7")),
			[]byte(`{"summary": "report", "mdt": 7}`))},
		{"escaped attr key and value", New("/t", map[string]string{
			"tricky:key": "line1\nline2:with\\slash\rcr",
		})},
		{"empty attr value and empty attr key", New("/t", map[string]string{
			"empty": "", "": "anonymous",
		})},
		{"binary body with NULs", withBody(
			New("/t", map[string]string{"k": "v"}),
			[]byte{0x01, 0x00, 0x02, 0x00, 0x03})},
		{"keys sorting around transport headers", New("/t", map[string]string{
			"destinatio": "before", "destinatioz": "after",
			"rec": "before-receipt", "receipt1": "after-receipt", "zz": "last",
		})},
		{"unicode topic and values", withBody(
			New("/département/7", map[string]string{"patient": "Zoë"}, label.Conf("ecric.org.uk/é")),
			[]byte("café"))},
		{"empty body labelled", New("/t", nil, label.Conf("a.org/x"))},
	}
}

// TestSendEncodingConformance pins the producer fast path to the legacy
// wire dialect: for every corpus event, EncodeSend — with and without a
// spliced receipt — must produce bytes identical to marshalling the event
// into a header map and encoding a SEND frame from it, and the bytes must
// decode back (through the server's view path) to the same event.
func TestSendEncodingConformance(t *testing.T) {
	for _, tc := range sendConformanceCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			tc.ev.Freeze()
			for _, receipt := range []string{"", "rcpt-42"} {
				var got bytes.Buffer
				var enc stomp.Encoder
				if err := EncodeSend(&got, &enc, tc.ev, receipt); err != nil {
					t.Fatalf("EncodeSend(receipt=%q): %v", receipt, err)
				}
				want := legacySendWire(t, tc.ev, receipt)
				if !bytes.Equal(got.Bytes(), want) {
					t.Errorf("receipt=%q: wire bytes differ:\nfast:   %q\nlegacy: %q",
						receipt, got.Bytes(), want)
				}

				// The server path must reconstruct the same event.
				v, err := stomp.NewDecoder(bytes.NewReader(got.Bytes())).DecodeView()
				if err != nil {
					t.Fatalf("DecodeView: %v", err)
				}
				back, err := UnmarshalView(&v.Headers, v.Body, nil)
				if err != nil {
					t.Fatalf("UnmarshalView: %v", err)
				}
				if back.Topic != tc.ev.Topic || !back.Labels.Equal(tc.ev.Labels) ||
					!reflect.DeepEqual(back.Attrs, tc.ev.Attrs) ||
					!bytes.Equal(back.Body, tc.ev.Body) {
					t.Errorf("round trip changed event:\nsent: %v\ngot:  %v", tc.ev, back)
				}
			}
		})
	}
}

// TestSendImageTransportAttrGate: events whose attribute names collide
// with STOMP transport headers cannot take the direct encoding (the
// legacy map path resolves them by overwrite); SendImage must refuse them
// with ErrTransportAttr so the client falls back.
func TestSendImageTransportAttrGate(t *testing.T) {
	for _, k := range []string{
		"destination", "receipt", "receipt-id", "subscription", "message-id",
		"content-length", "id", "ack", "selector", "transaction",
	} {
		ev := New("/t", map[string]string{k: "v"})
		ev.Freeze()
		if _, err := ev.SendImage(); !errors.Is(err, ErrTransportAttr) {
			t.Errorf("SendImage with %q attr: err = %v, want ErrTransportAttr", k, err)
		}
	}

	// Reserved attributes are a validation error, not a fallback: both
	// paths must keep rejecting them outright.
	ev := &Event{Topic: "/t", Attrs: map[string]string{ReservedPrefix + "labels": "x"}}
	ev.Freeze()
	if _, err := ev.SendImage(); !errors.Is(err, ErrReservedAttribute) {
		t.Errorf("SendImage with reserved attr: err = %v, want ErrReservedAttribute", err)
	}
}

// TestSendImageMemoised pins the encode-once property of the producer
// path: repeated SendImage calls return the same image, the build counter
// moves exactly once, and the memo is independent of the MESSAGE-side
// WireImage memo.
func TestSendImageMemoised(t *testing.T) {
	ev := New("/t", map[string]string{"k": "v"}, label.Conf("a.org/x"))
	ev.Body = []byte("payload")
	ev.Freeze()

	before := SendImageBuilds()
	img1, err := ev.SendImage()
	if err != nil {
		t.Fatalf("SendImage: %v", err)
	}
	img2, err := ev.SendImage()
	if err != nil {
		t.Fatalf("SendImage (memo): %v", err)
	}
	if img1 != img2 {
		t.Error("SendImage rebuilt on second call; want shared memo")
	}
	if got := SendImageBuilds() - before; got != 1 {
		t.Errorf("SendImageBuilds delta = %d, want 1", got)
	}

	// The MESSAGE image is a separate memo with a different command line.
	msg, err := ev.WireImage()
	if err != nil {
		t.Fatalf("WireImage: %v", err)
	}
	if !bytes.HasPrefix(msg.Prefix(), []byte("MESSAGE\n")) {
		t.Errorf("WireImage prefix = %q, want MESSAGE frame", msg.Prefix())
	}
	var buf bytes.Buffer
	var enc stomp.Encoder
	if err := enc.EncodeSendImage(&buf, img1, ""); err != nil {
		t.Fatalf("EncodeSendImage: %v", err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("SEND\n")) {
		t.Errorf("SendImage wire = %q, want SEND frame", buf.Bytes())
	}
}

// TestSendImageErrorMemoised: an event that cannot marshal reports the
// error on every call without re-encoding or bumping the build counter.
func TestSendImageErrorMemoised(t *testing.T) {
	ev := &Event{Topic: ""}
	ev.Freeze()
	before := SendImageBuilds()
	if _, err := ev.SendImage(); err == nil {
		t.Fatal("SendImage accepted an empty topic")
	}
	img, err := ev.SendImage()
	if err == nil || img != nil {
		t.Fatalf("memoised error lost: img=%v err=%v", img, err)
	}
	if got := SendImageBuilds() - before; got != 0 {
		t.Errorf("failed SendImage bumped build counter by %d", got)
	}
}

// TestCloneDropsSendImageMemo guards the federation bridge pattern for
// the SEND memo, like the MESSAGE-image test: Clone → relabel → the clone
// must encode its own image, not the original's.
func TestCloneDropsSendImageMemo(t *testing.T) {
	src := New("/t", nil, label.Conf("east.nhs.uk/agg"))
	src.Freeze()
	if _, err := src.SendImage(); err != nil {
		t.Fatalf("SendImage: %v", err)
	}

	out := src.Clone()
	out.Labels = label.NewSet(label.Conf("west.nhs.uk/agg"))
	out.Freeze()
	img, err := out.SendImage()
	if err != nil {
		t.Fatalf("clone SendImage: %v", err)
	}
	if !bytes.Contains(img.Prefix(), []byte("west.nhs.uk/agg")) {
		t.Errorf("clone image carries stale labels: %q", img.Prefix())
	}
}
