package selector

import (
	"strconv"
)

// tri is SQL three-valued logic: true, false or unknown. Unknown arises
// from NULL (missing attributes) and propagates through comparisons and
// arithmetic; AND/OR/NOT follow the Kleene truth tables.
type tri int

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

func (t tri) isTrue() bool { return t == triTrue }

func triOf(b bool) tri {
	if b {
		return triTrue
	}
	return triFalse
}

func (t tri) not() tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	default:
		return triUnknown
	}
}

func (t tri) and(o tri) tri {
	if t == triFalse || o == triFalse {
		return triFalse
	}
	if t == triUnknown || o == triUnknown {
		return triUnknown
	}
	return triTrue
}

func (t tri) or(o tri) tri {
	if t == triTrue || o == triTrue {
		return triTrue
	}
	if t == triUnknown || o == triUnknown {
		return triUnknown
	}
	return triFalse
}

// valueKind enumerates runtime value types during evaluation.
type valueKind int

const (
	kindNull valueKind = iota
	kindString
	kindNumber
	kindBool
)

// value is a runtime value: NULL, string, number or boolean. Event
// attributes enter evaluation as strings and are coerced to numbers when
// the other comparison operand is numeric, matching the paper's untyped
// string attribute model.
type value struct {
	kind valueKind
	s    string
	f    float64
	b    bool
}

var nullValue = value{kind: kindNull}

func strValue(s string) value  { return value{kind: kindString, s: s} }
func numValue(f float64) value { return value{kind: kindNumber, f: f} }
func boolValue(b bool) value   { return value{kind: kindBool, b: b} }

// asNumber attempts numeric interpretation of the value.
func (v value) asNumber() (float64, bool) {
	switch v.kind {
	case kindNumber:
		return v.f, true
	case kindString:
		f, err := strconv.ParseFloat(v.s, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// asBool attempts boolean interpretation.
func (v value) asBool() (bool, bool) {
	switch v.kind {
	case kindBool:
		return v.b, true
	case kindString:
		switch v.s {
		case "true", "TRUE", "True":
			return true, true
		case "false", "FALSE", "False":
			return false, true
		}
	}
	return false, false
}

// ---- node evaluation ----

func (e identExpr) eval(env Env) value {
	s, ok := env.Lookup(e.name)
	if !ok {
		return nullValue
	}
	return strValue(s)
}

func (e stringLit) eval(Env) value { return strValue(e.val) }
func (e numberLit) eval(Env) value { return numValue(e.val) }
func (e boolLit) eval(Env) value   { return boolValue(e.val) }

func (e notExpr) eval(env Env) value {
	return triToValue(valueToTri(e.inner.eval(env)).not())
}

func (e negExpr) eval(env Env) value {
	f, ok := e.inner.eval(env).asNumber()
	if !ok {
		return nullValue
	}
	return numValue(-f)
}

func (e binaryExpr) eval(env Env) value {
	switch e.op {
	case opAnd:
		return triToValue(valueToTri(e.l.eval(env)).and(valueToTri(e.r.eval(env))))
	case opOr:
		return triToValue(valueToTri(e.l.eval(env)).or(valueToTri(e.r.eval(env))))
	}

	lv := e.l.eval(env)
	rv := e.r.eval(env)
	switch e.op {
	case opAdd, opSub, opMul, opDiv:
		lf, lok := lv.asNumber()
		rf, rok := rv.asNumber()
		if !lok || !rok {
			return nullValue
		}
		switch e.op {
		case opAdd:
			return numValue(lf + rf)
		case opSub:
			return numValue(lf - rf)
		case opMul:
			return numValue(lf * rf)
		default:
			if rf == 0 {
				return nullValue // SQL: division by zero yields NULL here
			}
			return numValue(lf / rf)
		}
	case opEq, opNeq, opLt, opLe, opGt, opGe:
		return triToValue(compare(e.op, lv, rv))
	}
	return nullValue
}

// compare implements the comparison operators with NULL propagation and
// numeric coercion: if either operand is a number (or both coerce), compare
// numerically; booleans compare with = and <> only; otherwise compare as
// strings.
func compare(op binaryOp, l, r value) tri {
	if l.kind == kindNull || r.kind == kindNull {
		return triUnknown
	}

	// Boolean comparison (= and <> only).
	if l.kind == kindBool || r.kind == kindBool {
		lb, lok := l.asBool()
		rb, rok := r.asBool()
		if !lok || !rok {
			return triFalse
		}
		switch op {
		case opEq:
			return triOf(lb == rb)
		case opNeq:
			return triOf(lb != rb)
		default:
			return triFalse
		}
	}

	// Numeric comparison when either side is a number literal and the
	// other coerces.
	if l.kind == kindNumber || r.kind == kindNumber {
		lf, lok := l.asNumber()
		rf, rok := r.asNumber()
		if lok && rok {
			switch op {
			case opEq:
				return triOf(lf == rf)
			case opNeq:
				return triOf(lf != rf)
			case opLt:
				return triOf(lf < rf)
			case opLe:
				return triOf(lf <= rf)
			case opGt:
				return triOf(lf > rf)
			case opGe:
				return triOf(lf >= rf)
			}
		}
		// A number compared against a non-numeric string: equal is
		// false, ordering is unknown.
		if op == opEq {
			return triFalse
		}
		if op == opNeq {
			return triTrue
		}
		return triUnknown
	}

	// String comparison.
	switch op {
	case opEq:
		return triOf(l.s == r.s)
	case opNeq:
		return triOf(l.s != r.s)
	case opLt:
		return triOf(l.s < r.s)
	case opLe:
		return triOf(l.s <= r.s)
	case opGt:
		return triOf(l.s > r.s)
	case opGe:
		return triOf(l.s >= r.s)
	}
	return triUnknown
}

func (e betweenExpr) eval(env Env) value {
	ge := compare(opGe, e.subject.eval(env), e.lo.eval(env))
	le := compare(opLe, e.subject.eval(env), e.hi.eval(env))
	result := ge.and(le)
	if e.negated {
		result = result.not()
	}
	return triToValue(result)
}

func (e inExpr) eval(env Env) value {
	v := e.subject.eval(env)
	if v.kind == kindNull {
		return nullValue
	}
	found := false
	for _, item := range e.items {
		if compare(opEq, v, strValue(item)) == triTrue {
			found = true
			break
		}
	}
	if e.negated {
		found = !found
	}
	return triToValue(triOf(found))
}

func (e likeExpr) eval(env Env) value {
	v := e.subject.eval(env)
	if v.kind == kindNull {
		return nullValue
	}
	var subject string
	switch v.kind {
	case kindString:
		subject = v.s
	case kindNumber:
		subject = strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return triToValue(triFalse)
	}
	matched := e.re.MatchString(subject)
	if e.negated {
		matched = !matched
	}
	return triToValue(triOf(matched))
}

func (e isNullExpr) eval(env Env) value {
	isNull := e.subject.eval(env).kind == kindNull
	if e.negated {
		isNull = !isNull
	}
	return triToValue(triOf(isNull))
}

// valueToTri interprets an evaluation result as a condition.
func valueToTri(v value) tri {
	switch v.kind {
	case kindNull:
		return triUnknown
	case kindBool:
		return triOf(v.b)
	case kindString:
		if b, ok := v.asBool(); ok {
			return triOf(b)
		}
		return triFalse
	default:
		return triFalse
	}
}

// triToValue reifies a condition back into a value for nested boolean
// expressions.
func triToValue(t tri) value {
	switch t {
	case triUnknown:
		return nullValue
	default:
		return boolValue(t == triTrue)
	}
}
