package stomp

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, f *Frame) *Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	back, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return back
}

func TestFrameRoundTrip(t *testing.T) {
	f := NewFrame(CmdSend)
	f.SetHeader(HdrDestination, "/patient_report")
	f.SetHeader("patient_id", "33812769")
	f.SetHeader("x-safeweb-labels", "label:conf:ecric.org.uk/mdt/7")
	f.Body = []byte(`{"record": true}`)

	back := roundTrip(t, f)
	if back.Command != CmdSend {
		t.Errorf("Command = %q", back.Command)
	}
	if back.Header(HdrDestination) != "/patient_report" {
		t.Errorf("destination = %q", back.Header(HdrDestination))
	}
	if back.Header("patient_id") != "33812769" {
		t.Errorf("patient_id = %q", back.Header("patient_id"))
	}
	if !bytes.Equal(back.Body, f.Body) {
		t.Errorf("body = %q", back.Body)
	}
}

func TestFrameRoundTripEmptyBody(t *testing.T) {
	f := NewFrame(CmdDisconnect)
	back := roundTrip(t, f)
	if back.Body != nil {
		t.Errorf("body = %q, want nil", back.Body)
	}
}

func TestHeaderEscaping(t *testing.T) {
	f := NewFrame(CmdSend)
	f.SetHeader(HdrDestination, "/t")
	f.SetHeader("tricky", "line1\nline2:with\\colon\rand-cr")
	back := roundTrip(t, f)
	if got := back.Header("tricky"); got != "line1\nline2:with\\colon\rand-cr" {
		t.Errorf("tricky header = %q", got)
	}
}

func TestBodyWithNulBytes(t *testing.T) {
	f := NewFrame(CmdSend)
	f.SetHeader(HdrDestination, "/t")
	f.Body = []byte{1, 0, 2, 0, 3}
	back := roundTrip(t, f)
	if !bytes.Equal(back.Body, f.Body) {
		t.Errorf("body = %v", back.Body)
	}
}

func TestReadFrameWithoutContentLength(t *testing.T) {
	raw := "SEND\ndestination:/t\n\nhello\x00"
	f, err := ReadFrame(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if string(f.Body) != "hello" {
		t.Errorf("body = %q", f.Body)
	}
}

func TestReadFrameSkipsHeartbeats(t *testing.T) {
	raw := "\n\n\nSEND\ndestination:/t\n\n\x00"
	f, err := ReadFrame(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if f.Command != CmdSend {
		t.Errorf("Command = %q", f.Command)
	}
}

func TestReadFrameErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"unknown command", "BOGUS\n\n\x00"},
		{"malformed header", "SEND\nno-colon-here\n\n\x00"},
		{"bad escape", "SEND\ndest\\qination:/t\n\n\x00"},
		{"bad content length", "SEND\ncontent-length:banana\n\n\x00"},
		{"negative content length", "SEND\ncontent-length:-5\n\n\x00"},
		{"missing terminator", "SEND\ncontent-length:2\n\nab"},
		{"wrong terminator", "SEND\ncontent-length:2\n\nabX"},
		{"unterminated", "SEND\ndestination:/t\n\nbody with no nul"},
		{"truncated headers", "SEND\ndestination:/t\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bufio.NewReader(strings.NewReader(tc.raw)))
			if err == nil {
				t.Fatalf("ReadFrame(%q) succeeded", tc.raw)
			}
		})
	}
}

// TestReadFrameUnterminatedBodyBounded: a peer streaming a giant body
// with no content-length and no NUL terminator must hit MaxBodyLen, not
// grow the buffer until the process OOMs.
func TestReadFrameUnterminatedBodyBounded(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("SEND\ndestination:/t\n\n")
	buf.Write(bytes.Repeat([]byte{'x'}, MaxBodyLen+64*1024))
	_, err := ReadFrame(bufio.NewReader(&buf))
	var pe *ProtocolError
	if !errors.As(err, &pe) || !strings.Contains(pe.Msg, "exceeds limit") {
		t.Fatalf("err = %v, want body-limit protocol error", err)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	_, err := ReadFrame(bufio.NewReader(strings.NewReader("")))
	if !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
	// EOF after heart-beats is also clean.
	_, err = ReadFrame(bufio.NewReader(strings.NewReader("\n\n")))
	if !errors.Is(err, io.EOF) {
		t.Errorf("err after heartbeats = %v, want io.EOF", err)
	}
}

func TestRepeatedHeaderFirstWins(t *testing.T) {
	raw := "SEND\ndestination:/a\ndestination:/b\n\n\x00"
	f, err := ReadFrame(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if f.Header(HdrDestination) != "/a" {
		t.Errorf("destination = %q, want /a", f.Header(HdrDestination))
	}
}

func TestWriteFrameEmptyCommand(t *testing.T) {
	if err := WriteFrame(io.Discard, &Frame{}); err == nil {
		t.Error("WriteFrame with empty command succeeded")
	}
}

func TestFrameClone(t *testing.T) {
	f := NewFrame(CmdSend)
	f.SetHeader("k", "v")
	f.Body = []byte("b")
	c := f.Clone()
	c.SetHeader("k", "changed")
	c.Body[0] = 'X'
	if f.Header("k") != "v" || string(f.Body) != "b" {
		t.Error("Clone shares state")
	}
}

func TestFrameShallowClone(t *testing.T) {
	f := NewFrame(CmdMessage)
	f.SetHeader("k", "v")
	f.Body = []byte("shared")
	c := f.ShallowClone()
	c.SetHeader("k", "changed")
	c.SetHeader(HdrSubscription, "sub-1")
	if f.Header("k") != "v" || f.Header(HdrSubscription) != "" {
		t.Error("ShallowClone shares headers")
	}
	if &c.Body[0] != &f.Body[0] {
		t.Error("ShallowClone copied the body")
	}
}

func TestEncodeMessageRoutingHeaders(t *testing.T) {
	base := NewFrame(CmdMessage)
	base.SetHeader(HdrDestination, "/t")
	base.SetHeader(HdrSubscription, "stale") // must lose to the routed value
	base.Body = []byte("payload")

	var buf bytes.Buffer
	var enc Encoder
	if err := enc.EncodeMessage(&buf, base, "sub:7", "m-3-", 42); err != nil {
		t.Fatalf("EncodeMessage: %v", err)
	}
	back, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got := back.Header(HdrSubscription); got != "sub:7" {
		t.Errorf("subscription = %q", got)
	}
	if got := back.Header(HdrMessageID); got != "m-3-42" {
		t.Errorf("message-id = %q", got)
	}
	if back.Header(HdrDestination) != "/t" || string(back.Body) != "payload" {
		t.Errorf("base frame content lost: %v", back)
	}
	// The shared base frame must not have been touched.
	if base.Header(HdrSubscription) != "stale" || len(base.Headers) != 2 {
		t.Errorf("EncodeMessage mutated the base frame: %v", base)
	}
}

func TestFrameString(t *testing.T) {
	f := NewFrame(CmdSend)
	f.SetHeader("b", "2")
	f.SetHeader("a", "1")
	f.Body = []byte("xyz")
	s := f.String()
	if !strings.HasPrefix(s, "SEND") || !strings.Contains(s, `a="1"`) || !strings.Contains(s, "body=3B") {
		t.Errorf("String = %q", s)
	}
}

func TestUnescapeHeaderErrors(t *testing.T) {
	if _, err := unescapeHeader(`trailing\`); err == nil {
		t.Error("dangling escape accepted")
	}
	if _, err := unescapeHeader(`bad\q`); err == nil {
		t.Error("undefined escape accepted")
	}
}
