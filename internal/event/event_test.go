package event

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"safeweb/internal/label"
)

func TestNewAndAccessors(t *testing.T) {
	attrs := map[string]string{"patient_id": "33812769", "type": "cancer"}
	e := New("/patient_report", attrs, label.Conf("ecric.org.uk/mdt/7"))

	if e.Topic != "/patient_report" {
		t.Errorf("Topic = %q", e.Topic)
	}
	if v, ok := e.Get("patient_id"); !ok || v != "33812769" {
		t.Errorf("Get(patient_id) = %q, %v", v, ok)
	}
	if v := e.Attr("missing"); v != "" {
		t.Errorf("Attr(missing) = %q", v)
	}
	if !e.Labels.Contains(label.Conf("ecric.org.uk/mdt/7")) {
		t.Error("label missing")
	}

	// New copies the attribute map.
	attrs["patient_id"] = "mutated"
	if e.Attr("patient_id") != "33812769" {
		t.Error("New aliased caller's map")
	}
}

func TestSetReservedAttribute(t *testing.T) {
	e := New("/t", nil)
	if err := e.Set("x-safeweb-labels", "evil"); !errors.Is(err, ErrReservedAttribute) {
		t.Errorf("Set reserved = %v, want ErrReservedAttribute", err)
	}
	if err := e.Set("ok", "v"); err != nil || e.Attr("ok") != "v" {
		t.Errorf("Set ok failed: %v", err)
	}
}

func TestValidate(t *testing.T) {
	if err := New("/t", map[string]string{"a": "1"}).Validate(); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	if err := (&Event{}).Validate(); err == nil {
		t.Error("empty topic accepted")
	}
	bad := &Event{Topic: "/t", Attrs: map[string]string{"x-safeweb-labels": "v"}}
	if err := bad.Validate(); !errors.Is(err, ErrReservedAttribute) {
		t.Errorf("reserved attr accepted: %v", err)
	}
}

func TestClone(t *testing.T) {
	e := New("/t", map[string]string{"k": "v"}, label.Conf("a"))
	e.Body = []byte("payload")

	c := e.Clone()
	c.Attrs["k"] = "changed"
	c.Body[0] = 'X'

	if e.Attrs["k"] != "v" {
		t.Error("Clone shares attribute map")
	}
	if !bytes.Equal(e.Body, []byte("payload")) {
		t.Error("Clone shares body")
	}
	if !c.Labels.Equal(e.Labels) {
		t.Error("Clone lost labels")
	}

	// Clone of a minimal event keeps nil fields nil.
	min := (&Event{Topic: "/t"}).Clone()
	if min.Attrs != nil || min.Body != nil {
		t.Error("Clone invented fields")
	}
}

func TestDeriveComposesLabels(t *testing.T) {
	p1 := label.Conf("patient/1")
	p2 := label.Conf("patient/2")
	i := label.Int("mdt")

	e1 := New("/a", nil, p1, i)
	e2 := New("/b", nil, p2)

	d := Derive("/out", map[string]string{"n": "2"}, []byte("b"), e1, e2)
	if d.Topic != "/out" || d.Attr("n") != "2" || string(d.Body) != "b" {
		t.Errorf("Derive lost data: %v", d)
	}
	if !d.Labels.Contains(p1) || !d.Labels.Contains(p2) {
		t.Error("conf labels not sticky across Derive")
	}
	if d.Labels.Contains(i) {
		t.Error("integrity label survived non-unanimous derivation")
	}

	// Single-source derivation keeps integrity.
	d1 := Derive("/out", nil, nil, e1)
	if !d1.Labels.Contains(i) {
		t.Error("integrity label lost on single-source derivation")
	}
}

func TestString(t *testing.T) {
	e := New("/t", map[string]string{"b": "2", "a": "1"}, label.Conf("x"))
	s := e.String()
	if !strings.HasPrefix(s, "/t{a=1 b=2}") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(s, "label:conf:x") {
		t.Errorf("String missing labels: %q", s)
	}
}

func TestMarshalHeadersRoundTrip(t *testing.T) {
	e := New("/patient_report",
		map[string]string{"patient_id": "1", "mdt": "7"},
		label.Conf("ecric.org.uk/mdt/7"), label.Int("ecric.org.uk/mdt"))
	e.Body = []byte(`{"field":"value"}`)

	headers, body, err := MarshalHeaders(e)
	if err != nil {
		t.Fatalf("MarshalHeaders: %v", err)
	}
	if headers[HeaderDestination] != "/patient_report" {
		t.Errorf("destination = %q", headers[HeaderDestination])
	}
	if headers[HeaderLabels] == "" {
		t.Error("labels header empty")
	}

	// Simulate broker-added headers that must be skipped on decode.
	headers["subscription"] = "sub-1"
	headers["message-id"] = "m-1"
	headers["content-length"] = "17"

	back, err := UnmarshalHeaders(headers, body)
	if err != nil {
		t.Fatalf("UnmarshalHeaders: %v", err)
	}
	if back.Topic != e.Topic {
		t.Errorf("Topic = %q", back.Topic)
	}
	if back.Attr("patient_id") != "1" || back.Attr("mdt") != "7" {
		t.Errorf("attrs = %v", back.Attrs)
	}
	if _, ok := back.Attrs["subscription"]; ok {
		t.Error("broker header leaked into attrs")
	}
	if !back.Labels.Equal(e.Labels) {
		t.Errorf("labels = %v, want %v", back.Labels, e.Labels)
	}
	if !bytes.Equal(back.Body, e.Body) {
		t.Errorf("body = %q", back.Body)
	}
}

func TestMarshalHeadersRejectsInvalid(t *testing.T) {
	if _, _, err := MarshalHeaders(&Event{}); err == nil {
		t.Error("MarshalHeaders of invalid event succeeded")
	}
}

func TestUnmarshalHeadersErrors(t *testing.T) {
	if _, err := UnmarshalHeaders(map[string]string{}, nil); err == nil {
		t.Error("missing destination accepted")
	}
	headers := map[string]string{
		HeaderDestination: "/t",
		HeaderLabels:      "not-a-label",
	}
	if _, err := UnmarshalHeaders(headers, nil); err == nil {
		t.Error("bad label header accepted")
	}
}

func TestUnmarshalIgnoresClearanceHeader(t *testing.T) {
	headers := map[string]string{
		HeaderDestination: "/t",
		HeaderClearance:   "label:conf:x",
		"k":               "v",
	}
	e, err := UnmarshalHeaders(headers, nil)
	if err != nil {
		t.Fatalf("UnmarshalHeaders: %v", err)
	}
	if _, ok := e.Attrs[HeaderClearance]; ok {
		t.Error("clearance header leaked into attrs")
	}
	if e.Attr("k") != "v" {
		t.Error("ordinary attr lost")
	}
}
