package stomp

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// conformanceCase is one canonical wire frame with its expected decode, or
// an expected decode failure. The corpus pins the wire dialect every
// decode path must speak identically: the reusable Decoder (map and view
// forms) and the legacy ReadFrame.
type conformanceCase struct {
	name string
	wire string

	wantErr     bool
	command     string
	headers     map[string]string
	body        string
	reencodable bool // encoding the expected frame reproduces wire byte-for-byte
}

// conformanceCorpus returns the canonical frame corpus. It is a function,
// not a package variable, so the fuzz seeds and the conformance tests
// cannot accidentally share mutated state.
func conformanceCorpus() []conformanceCase {
	return []conformanceCase{
		{
			name:        "minimal with content-length",
			wire:        "SEND\ncontent-length:0\ndestination:/t\n\n\x00",
			command:     CmdSend,
			headers:     map[string]string{"destination": "/t"},
			reencodable: false, // encoder emits content-length last
		},
		{
			name:    "canonical encoder form",
			wire:    "SEND\ndestination:/t\ncontent-length:0\n\n\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t"},
			// This is exactly what the encoder emits (sorted headers,
			// trailing content-length), so re-encoding must reproduce it.
			reencodable: true,
		},
		{
			name:        "message with body and labels",
			wire:        "MESSAGE\ndestination:/patient_report\nmessage-id:m-3-1\npatient_id:33812769\nsubscription:sub-1\nx-safeweb-labels:label\\cconf\\cecric.org.uk/mdt/7\ncontent-length:16\n\n{\"record\": true}\x00",
			command:     CmdMessage,
			headers:     map[string]string{"destination": "/patient_report", "message-id": "m-3-1", "patient_id": "33812769", "subscription": "sub-1", "x-safeweb-labels": "label:conf:ecric.org.uk/mdt/7"},
			body:        `{"record": true}`,
			reencodable: true,
		},
		{
			name:    "no content-length, NUL-terminated body",
			wire:    "SEND\ndestination:/t\n\nhello\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t"},
			body:    "hello",
		},
		{
			name:    "body with NUL bytes under content-length",
			wire:    "SEND\ndestination:/t\ncontent-length:5\n\n\x01\x00\x02\x00\x03\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t"},
			body:    "\x01\x00\x02\x00\x03",
		},
		{
			name:    "escaped header key and value",
			wire:    "SEND\ndestination:/t\ntricky\\ckey:line1\\nline2\\cwith\\\\slash\\rcr\ncontent-length:0\n\n\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t", "tricky:key": "line1\nline2:with\\slash\rcr"},
		},
		{
			name:    "empty header value",
			wire:    "SEND\ndestination:/t\nempty:\n\n\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t", "empty": ""},
		},
		{
			name:    "empty header key",
			wire:    "SEND\ndestination:/t\n:anonymous\n\n\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t", "": "anonymous"},
		},
		{
			name:    "repeated key, first occurrence wins",
			wire:    "SEND\ndestination:/a\ndestination:/b\nk:1\nk:2\n\n\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/a", "k": "1"},
		},
		{
			name:    "repeated content-length, first occurrence frames the body",
			wire:    "SEND\ndestination:/t\ncontent-length:2\ncontent-length:4\n\nab\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t"},
			body:    "ab",
		},
		{
			name:    "CRLF line endings",
			wire:    "SEND\r\ndestination:/t\r\nk:v\r\n\r\nbody\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t", "k": "v"},
			body:    "body",
		},
		{
			name:    "CRLF with content-length",
			wire:    "MESSAGE\r\ndestination:/t\r\ncontent-length:3\r\n\r\nabc\x00",
			command: CmdMessage,
			headers: map[string]string{"destination": "/t"},
			body:    "abc",
		},
		{
			name:    "heart-beats before frame",
			wire:    "\n\r\n\nRECEIPT\nreceipt-id:rcpt-1\n\n\x00",
			command: CmdReceipt,
			headers: map[string]string{"receipt-id": "rcpt-1"},
		},
		{
			name:    "value containing colons survives unescaped",
			wire:    "SUBSCRIBE\ndestination:/t\nselector:a = 'x:y:z'\nid:sub-9\n\n\x00",
			command: CmdSubscribe,
			headers: map[string]string{"destination": "/t", "selector": "a = 'x:y:z'", "id": "sub-9"},
		},
		{
			name:    "content-length with plus sign",
			wire:    "SEND\ndestination:/t\ncontent-length:+2\n\nab\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t"},
			body:    "ab",
		},
		{
			// strconv.Atoi compatibility: "-0" is a valid zero, only
			// actually-negative lengths are rejected.
			name:    "content-length negative zero",
			wire:    "SEND\ndestination:/t\ncontent-length:-0\n\n\x00",
			command: CmdSend,
			headers: map[string]string{"destination": "/t"},
		},

		// Error cases: every path must reject these identically.
		{name: "unknown command", wire: "BOGUS\n\n\x00", wantErr: true},
		{name: "lowercase command", wire: "send\ndestination:/t\n\n\x00", wantErr: true},
		{name: "malformed header line", wire: "SEND\nno-colon-here\n\n\x00", wantErr: true},
		{name: "dangling escape in key", wire: "SEND\nbad\\:/t\n\n\x00", wantErr: true},
		{name: "undefined escape in value", wire: "SEND\ndestination:/t\\q\n\n\x00", wantErr: true},
		{name: "bad content-length", wire: "SEND\ncontent-length:banana\n\n\x00", wantErr: true},
		{name: "empty content-length", wire: "SEND\ncontent-length:\n\n\x00", wantErr: true},
		{name: "negative content-length", wire: "SEND\ncontent-length:-5\n\n\x00", wantErr: true},
		{name: "bad repeated content-length escape still validated", wire: "SEND\ncontent-length:2\ncontent-length:\\q\n\nab\x00", wantErr: true},
		{name: "content-length beyond MaxBodyLen", wire: "SEND\ncontent-length:999999999999\n\n\x00", wantErr: true},
		{name: "short body", wire: "SEND\ncontent-length:5\n\nab", wantErr: true},
		{name: "missing terminator after body", wire: "SEND\ncontent-length:2\n\nab", wantErr: true},
		{name: "wrong terminator after body", wire: "SEND\ncontent-length:2\n\nabX", wantErr: true},
		{name: "unterminated NUL body", wire: "SEND\ndestination:/t\n\nbody with no nul", wantErr: true},
		{name: "truncated header block", wire: "SEND\ndestination:/t\n", wantErr: true},
		{name: "empty command via colon", wire: ":\n\n\x00", wantErr: true},
	}
}

// decodeOutcome normalises one decode attempt for comparison.
type decodeOutcome struct {
	err     bool
	command string
	headers map[string]string
	body    string
}

func outcomeOf(f *Frame, err error) decodeOutcome {
	if err != nil {
		return decodeOutcome{err: true}
	}
	return decodeOutcome{command: f.Command, headers: f.Headers, body: string(f.Body)}
}

func (o decodeOutcome) equal(p decodeOutcome) bool {
	if o.err != p.err {
		return false
	}
	if o.err {
		return true
	}
	if o.command != p.command || o.body != p.body || len(o.headers) != len(p.headers) {
		return false
	}
	for k, v := range o.headers {
		if pv, ok := p.headers[k]; !ok || pv != v {
			return false
		}
	}
	return true
}

// TestWireConformance runs the canonical corpus through every decode path
// and checks each against the expected frame and against the others:
// legacy ReadFrame, a persistent Decoder.Decode (scratch reuse across the
// whole corpus is part of what is under test), and the map-free
// DecodeView materialised and read through the view API.
func TestWireConformance(t *testing.T) {
	persistent := NewDecoder(strings.NewReader("")) // replaced below per case
	for _, tc := range conformanceCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			want := decodeOutcome{err: tc.wantErr, command: tc.command, headers: tc.headers, body: tc.body}

			legacy := outcomeOf(ReadFrame(bufio.NewReader(strings.NewReader(tc.wire))))
			if !legacy.equal(want) {
				t.Errorf("ReadFrame = %+v, want %+v", legacy, want)
			}

			fresh := outcomeOf(NewDecoder(strings.NewReader(tc.wire)).Decode())
			if !fresh.equal(want) {
				t.Errorf("Decoder.Decode = %+v, want %+v", fresh, want)
			}

			// One decoder across the whole corpus: reused scratch buffers
			// must not leak state between frames.
			persistent.r = bufio.NewReader(strings.NewReader(tc.wire))
			reused := outcomeOf(persistent.Decode())
			if !reused.equal(want) {
				t.Errorf("persistent Decoder.Decode = %+v, want %+v", reused, want)
			}

			v, verr := NewDecoder(strings.NewReader(tc.wire)).DecodeView()
			var view decodeOutcome
			if verr != nil {
				view = decodeOutcome{err: true}
			} else {
				view = outcomeOf(v.Materialize(), nil)
				// The view accessors must agree with the materialised map.
				for k, mv := range view.headers {
					if got := v.Headers.Header(k); got != mv {
						t.Errorf("view Header(%q) = %q, want %q", k, got, mv)
					}
				}
				if v.Headers.Len() < len(view.headers) {
					t.Errorf("view Len() = %d < %d materialised headers", v.Headers.Len(), len(view.headers))
				}
			}
			if !view.equal(want) {
				t.Errorf("DecodeView = %+v, want %+v", view, want)
			}

			if tc.wantErr {
				return
			}

			// Encode→decode round-trip: both encoders produce identical
			// bytes, and decoding them reproduces the frame.
			f := &Frame{Command: tc.command, Headers: tc.headers}
			if tc.body != "" {
				f.Body = []byte(tc.body)
			}
			var viaWriteFrame, viaEncoder bytes.Buffer
			if err := WriteFrame(&viaWriteFrame, f); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			var enc Encoder
			if err := enc.Encode(&viaEncoder, f); err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if !bytes.Equal(viaWriteFrame.Bytes(), viaEncoder.Bytes()) {
				t.Errorf("WriteFrame and Encoder bytes differ:\n%q\n%q", viaWriteFrame.Bytes(), viaEncoder.Bytes())
			}
			back := outcomeOf(ReadFrame(bufio.NewReader(bytes.NewReader(viaEncoder.Bytes()))))
			if !back.equal(want) {
				t.Errorf("encode→decode = %+v, want %+v", back, want)
			}
			if tc.reencodable && !bytes.Equal(viaEncoder.Bytes(), []byte(tc.wire)) {
				t.Errorf("re-encode differs from wire:\n%q\n%q", viaEncoder.Bytes(), tc.wire)
			}
		})
	}
}

// TestConformanceStreamed decodes the whole successful corpus back-to-back
// on one connection through one Decoder, interleaving Decode and
// DecodeView: frames must come out in order and identical to the per-frame
// decodes, proving the scratch reuse never bleeds across frames.
func TestConformanceStreamed(t *testing.T) {
	var stream bytes.Buffer
	var cases []conformanceCase
	for _, tc := range conformanceCorpus() {
		if tc.wantErr {
			continue
		}
		stream.WriteString(tc.wire)
		cases = append(cases, tc)
	}
	dec := NewDecoder(bytes.NewReader(stream.Bytes()))
	for i, tc := range cases {
		want := decodeOutcome{command: tc.command, headers: tc.headers, body: tc.body}
		var got decodeOutcome
		if i%2 == 0 {
			v, err := dec.DecodeView()
			if err != nil {
				t.Fatalf("frame %d (%s): DecodeView: %v", i, tc.name, err)
			}
			got = outcomeOf(v.Materialize(), nil)
		} else {
			got = outcomeOf(dec.Decode())
		}
		if !got.equal(want) {
			t.Errorf("frame %d (%s) = %+v, want %+v", i, tc.name, got, want)
		}
	}
}
