// Package journal implements the append-only event log behind SafeWeb's
// durable topics: a fixed-size segment log whose records carry a
// published event's preencoded STOMP MESSAGE image (stomp.WireImage)
// verbatim, plus the topic, label header and timestamp replay needs to
// re-route and re-check it.
//
// One Journal is one topic's log, a directory of numbered segment files
// plus an ack log. The design goals, in order:
//
//   - Zero re-marshal. Append stores the wire image the fan-out path
//     already encoded; replay serves those bytes straight back to the
//     wire. Neither direction touches the event codec.
//   - Fail-closed recovery. Every record is CRC-32C framed; Open scans
//     the log and truncates the torn tail a crash mid-append leaves
//     behind, so the journal never replays half a record.
//   - Idempotent cumulative acks. A consumer group's progress is a single
//     monotonic offset ("records below N are processed"), persisted as
//     append-only ack records whose live value is the maximum — the same
//     CAS-max discipline the credit window uses, so duplicated or
//     reordered acks can never regress a group.
//   - Clearance at read time. Records keep the event's label header;
//     the broker re-parses and re-enforces clearance on every replay, so
//     a policy change between write and read is honoured (package broker
//     owns that check; the journal just preserves the evidence).
//
// Offsets are dense record indexes starting at zero. The fsync policy is
// explicit (SyncNever trusts the OS page cache, SyncAlways syncs every
// append); compaction and retention are out of scope — the log only
// grows.
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncNever never fsyncs: appends are durable against process crash
	// (the write hits the page cache) but not against power loss. The
	// default, and what the durable fan-out benchmark measures.
	SyncNever SyncPolicy = iota
	// SyncAlways fsyncs after every event append and every ack.
	SyncAlways
)

// defaultSegmentSize is the segment roll threshold when Options leaves it
// zero.
const defaultSegmentSize = 64 << 20

// segmentSuffix names segment files: "<base offset, 20 digits>.seg".
const segmentSuffix = ".seg"

// ackLogName is the per-journal ack log file.
const ackLogName = "acks.log"

// Options configures a Journal.
type Options struct {
	// SegmentSize is the roll threshold in bytes: an append that would
	// grow the active segment past it starts a new segment (a single
	// record larger than the threshold still gets a segment to itself).
	// Zero means 64 MiB.
	SegmentSize int64
	// Sync is the fsync policy; the zero value is SyncNever.
	Sync SyncPolicy
}

// ErrOffsetOutOfRange reports a Read at an offset the journal does not
// hold.
var ErrOffsetOutOfRange = errors.New("journal: offset out of range")

// errClosed reports use of a closed journal.
var errClosed = errors.New("journal: closed")

// segment is one log file: records [base, base+len(pos)).
type segment struct {
	base int64
	f    *os.File
	size int64
	// pos holds each record's byte offset within the file; a record's
	// framed length runs to the next entry (or to size for the last).
	pos []int64
}

// Journal is one topic's append-only log. All methods are safe for
// concurrent use; appends are serialised, reads run concurrently with
// appends (a reader never sees a record before NextOffset covers it).
type Journal struct {
	dir     string
	segSize int64
	sync    SyncPolicy

	// next is the offset the next append receives — equivalently the
	// number of records the journal holds. Advanced only after the record
	// is fully written, so a concurrent reader bounded by NextOffset only
	// ever reads committed bytes.
	next atomic.Int64

	// signal is closed (and replaced) after every committed append — the
	// tailing-replay wakeup. Grab AppendSignal before reading NextOffset
	// and no append can slip between the check and the wait.
	signal atomic.Pointer[chan struct{}]

	mu     sync.Mutex // guards segs, scratch and append/roll
	segs   []*segment
	buf    []byte // append scratch, reused
	closed bool

	ackMu  sync.Mutex
	ackF   *os.File
	acked  map[string]int64
	ackBuf []byte
}

// Open opens (creating if needed) the journal in dir, scanning every
// segment to rebuild the offset index and truncating any torn tail the
// last crash left in the final segment or the ack log. Corruption in the
// interior of the log (a non-final segment) is not repairable and fails
// Open.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, segSize: opts.SegmentSize, sync: opts.Sync}
	ch := make(chan struct{})
	j.signal.Store(&ch)

	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	nextOffset := int64(0)
	for i, name := range names {
		base, err := strconv.ParseInt(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("journal: bad segment name %q", name)
		}
		if base != nextOffset {
			return nil, fmt.Errorf("journal: segment %q starts at offset %d, want %d (missing segment?)", name, base, nextOffset)
		}
		seg, err := openSegment(filepath.Join(dir, name), base, i == len(names)-1)
		if err != nil {
			j.closeLocked()
			return nil, err
		}
		j.segs = append(j.segs, seg)
		nextOffset = base + int64(len(seg.pos))
	}
	j.next.Store(nextOffset)

	if err := j.openAcks(); err != nil {
		j.closeLocked()
		return nil, err
	}
	return j, nil
}

// segmentNames lists the directory's segment files in base-offset order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segmentSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded bases sort numerically
	return names, nil
}

// openSegment opens one segment file and scans it into an offset index.
// For the final segment a scan failure truncates the file at the last
// good record — the torn tail of a crashed append; for interior segments
// it is unrecoverable corruption.
func openSegment(path string, base int64, last bool) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	seg := &segment{base: base, f: f}
	var rec Record
	good := int64(0)
	for int(good) < len(data) {
		n, err := decodeRecord(data[good:], &rec)
		if err != nil {
			if !last {
				_ = f.Close()
				return nil, fmt.Errorf("journal: segment %s offset %d: %w", filepath.Base(path), good, err)
			}
			// Torn tail: drop everything from the first bad frame on.
			if terr := f.Truncate(good); terr != nil {
				_ = f.Close()
				return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", filepath.Base(path), terr)
			}
			break
		}
		seg.pos = append(seg.pos, good)
		good += int64(n)
	}
	seg.size = good
	if _, err := f.Seek(seg.size, 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	return seg, nil
}

// openAcks opens and scans the ack log, truncating its torn tail and
// folding every record into the per-group maximum.
func (j *Journal) openAcks() error {
	path := filepath.Join(j.dir, ackLogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	acked := make(map[string]int64)
	good := int64(0)
	for int(good) < len(data) {
		group, offset, n, err := decodeAckRecord(data[good:])
		if err != nil {
			if terr := f.Truncate(good); terr != nil {
				_ = f.Close()
				return fmt.Errorf("journal: truncating torn ack log: %w", terr)
			}
			break
		}
		if offset > acked[group] {
			acked[group] = offset
		}
		good += int64(n)
	}
	if _, err := f.Seek(good, 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	j.ackF, j.acked = f, acked
	return nil
}

// Append writes one record and returns its offset. The record is framed,
// written with a single write call and committed (made visible to
// NextOffset and the append signal) only afterwards, so a crash can tear
// at most the record being written — exactly what Open's tail truncation
// repairs.
func (j *Journal) Append(rec *Record) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, errClosed
	}
	buf, err := appendRecord(j.buf[:0], rec)
	if err != nil {
		return 0, err
	}
	j.buf = buf

	offset := j.next.Load()
	seg := j.activeSegmentLocked(int64(len(buf)))
	if seg == nil {
		seg, err = j.newSegmentLocked(offset)
		if err != nil {
			return 0, err
		}
	}
	if _, err := seg.f.Write(buf); err != nil {
		// A short or failed write leaves a torn tail; roll to a fresh
		// segment so the next append does not stack a record after it
		// (Open would stop at the tear and lose the stack).
		_ = seg.f.Truncate(seg.size)
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	if j.sync == SyncAlways {
		if err := seg.f.Sync(); err != nil {
			return 0, fmt.Errorf("journal: sync: %w", err)
		}
	}
	seg.pos = append(seg.pos, seg.size)
	seg.size += int64(len(buf))

	// Commit: advance the published bound, then wake tailing readers. A
	// reader that grabbed the signal before this append sees the close; a
	// reader that grabs it after sees the advanced NextOffset.
	j.next.Store(offset + 1)
	ch := make(chan struct{})
	old := j.signal.Swap(&ch)
	close(*old)
	return offset, nil
}

// activeSegmentLocked returns the segment the next append goes to, or nil
// when a new one must be rolled: no segments yet, or the active one is at
// the roll threshold and non-empty (a record larger than the threshold
// still gets a segment to itself rather than failing).
func (j *Journal) activeSegmentLocked(recLen int64) *segment {
	if len(j.segs) == 0 {
		return nil
	}
	seg := j.segs[len(j.segs)-1]
	if len(seg.pos) > 0 && seg.size+recLen > j.segSize {
		return nil
	}
	return seg
}

// segmentName formats a segment filename from its base offset.
func segmentName(base int64) string {
	return fmt.Sprintf("%020d%s", base, segmentSuffix)
}

// newSegmentLocked rolls a fresh segment whose base is the given offset.
func (j *Journal) newSegmentLocked(base int64) (*segment, error) {
	path := filepath.Join(j.dir, segmentName(base))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: roll segment: %w", err)
	}
	seg := &segment{base: base, f: f}
	j.segs = append(j.segs, seg)
	return seg, nil
}

// Read decodes the record at the given offset into rec. The record's
// Image is freshly allocated per call: readers hand it to the wire (or
// hold it arbitrarily long) without aliasing journal state. Offsets at or
// past NextOffset return ErrOffsetOutOfRange.
func (j *Journal) Read(offset int64, rec *Record) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errClosed
	}
	if offset < 0 || offset >= j.next.Load() {
		j.mu.Unlock()
		return fmt.Errorf("%w: %d (journal holds [0,%d))", ErrOffsetOutOfRange, offset, j.next.Load())
	}
	// Locate the owning segment: the last one whose base is <= offset.
	i := sort.Search(len(j.segs), func(i int) bool { return j.segs[i].base > offset }) - 1
	seg := j.segs[i]
	rel := offset - seg.base
	start := seg.pos[rel]
	end := seg.size
	if int(rel+1) < len(seg.pos) {
		end = seg.pos[rel+1]
	}
	f := seg.f
	j.mu.Unlock()

	// The byte range [start,end) is committed and immutable; the ReadAt
	// runs outside the lock so replay never stalls appends.
	buf := make([]byte, end-start)
	if _, err := f.ReadAt(buf, start); err != nil {
		return fmt.Errorf("journal: read offset %d: %w", offset, err)
	}
	if _, err := decodeRecord(buf, rec); err != nil {
		return fmt.Errorf("journal: read offset %d: %w", offset, err)
	}
	return nil
}

// NextOffset returns the offset the next append will receive — the
// exclusive upper bound of readable offsets.
func (j *Journal) NextOffset() int64 { return j.next.Load() }

// AppendSignal returns a channel closed when a record is appended after
// this call. Tailing readers must grab the signal before checking
// NextOffset: an append between the two closes the already-grabbed
// channel, so the wait cannot miss it.
func (j *Journal) AppendSignal() <-chan struct{} { return *j.signal.Load() }

// Ack records a consumer group's cumulative progress: every record below
// offset is processed. Acks are idempotent max-wins — an offset at or
// below the group's current mark is a no-op, so duplicated, reordered or
// replayed acks can never regress a group.
func (j *Journal) Ack(group string, offset int64) error {
	if group == "" {
		return errors.New("journal: empty ack group")
	}
	if offset < 0 {
		return fmt.Errorf("journal: negative ack offset %d", offset)
	}
	j.ackMu.Lock()
	defer j.ackMu.Unlock()
	if j.ackF == nil {
		return errClosed
	}
	if offset <= j.acked[group] {
		return nil
	}
	buf, err := appendAckRecord(j.ackBuf[:0], group, offset)
	if err != nil {
		return err
	}
	j.ackBuf = buf
	if _, err := j.ackF.Write(buf); err != nil {
		return fmt.Errorf("journal: ack: %w", err)
	}
	if j.sync == SyncAlways {
		if err := j.ackF.Sync(); err != nil {
			return fmt.Errorf("journal: ack sync: %w", err)
		}
	}
	j.acked[group] = offset
	return nil
}

// Acked returns a group's cumulative acked offset — the offset replay
// resumes from. An unknown group is at zero: the whole log is unacked.
func (j *Journal) Acked(group string) int64 {
	j.ackMu.Lock()
	defer j.ackMu.Unlock()
	return j.acked[group]
}

// Close closes the journal's files. Appends and reads fail afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	err := j.closeLocked()
	j.mu.Unlock()

	j.ackMu.Lock()
	if j.ackF != nil {
		if cerr := j.ackF.Close(); err == nil {
			err = cerr
		}
		j.ackF = nil
	}
	j.ackMu.Unlock()
	return err
}

func (j *Journal) closeLocked() error {
	if j.closed {
		return nil
	}
	j.closed = true
	var err error
	for _, seg := range j.segs {
		if cerr := seg.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
