package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// FrozenMutate flags mutations of events after their freeze point: a
// broker Publish call (Broker, Client or Endpoint) or an explicit
// Event.Freeze in the same function, and any mutation at all of the event
// parameter of a SubscribeWire or SubscribeTap handler literal, which
// receives the shared frozen original.
var FrozenMutate = &analysis.Analyzer{
	Name:     "frozenmutate",
	Doc:      "flag mutations of an event after it was published or frozen",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runFrozenMutate,
}

func runFrozenMutate(pass *analysis.Pass) (interface{}, error) {
	sup := newSuppressor(pass, "frozenmutate")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			checkMutateAfterFreeze(pass, sup, body)
		}
	})

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, recv := methodCall(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		if fn.Name() != "SubscribeWire" && fn.Name() != "SubscribeTap" {
			return
		}
		if _, ok := namedType(recv); !ok || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), brokerPkg) {
			return
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			for _, param := range eventParams(pass, lit) {
				checkHandlerMutations(pass, sup, lit.Body, param, fn.Name())
			}
		}
	})
	return nil, nil
}

// eventParams returns the objects of a function literal's parameters of
// type *event.Event.
func eventParams(pass *analysis.Pass, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	if lit.Type.Params == nil {
		return nil
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isPtrToPkgType(obj.Type(), eventPkg, "Event") {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkMutateAfterFreeze scans one function body in source order, records
// where each event identifier is frozen (published or explicitly frozen),
// and flags later mutations of the same identifier. Nested function
// literals are skipped — they form their own scope with their own check —
// so a callback defined after a publish is not misattributed to the
// publishing flow.
func checkMutateAfterFreeze(pass *analysis.Pass, sup *suppressor, body *ast.BlockStmt) {
	frozen := make(map[types.Object]token.Pos)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, checked on its own
		case *ast.CallExpr:
			if obj, pos := freezePoint(pass, n); obj != nil {
				if _, seen := frozen[obj]; !seen {
					frozen[obj] = pos
				}
			}
			if obj, desc := eventMutation(pass, n); obj != nil {
				if pos, ok := frozen[obj]; ok && n.Pos() > pos {
					sup.reportf(n, "event %s %s after it was frozen by publish (events are immutable once published; Clone before mutating)", obj.Name(), desc)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// Rebinding the whole variable to another event ends the
				// frozen regime: the name no longer aliases the published
				// event.
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := eventIdent(pass, id); obj != nil {
						delete(frozen, obj)
					}
					continue
				}
				obj, desc := eventFieldWrite(pass, lhs)
				if obj == nil {
					continue
				}
				if pos, ok := frozen[obj]; ok && n.Pos() > pos {
					sup.reportf(n, "event %s %s after it was frozen by publish (events are immutable once published; Clone before mutating)", obj.Name(), desc)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkHandlerMutations flags every mutation of the given event object
// inside a wire/tap handler body, where the event is the shared frozen
// original for all subscribers.
func checkHandlerMutations(pass *analysis.Pass, sup *suppressor, body *ast.BlockStmt, param types.Object, via string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj, desc := eventMutation(pass, n); obj == param {
				sup.reportf(n, "%s handler %s event %s: wire and tap handlers receive the shared frozen original and must never mutate it", via, desc, param.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj, desc := eventFieldWrite(pass, lhs); obj == param {
					sup.reportf(n, "%s handler %s event %s: wire and tap handlers receive the shared frozen original and must never mutate it", via, desc, param.Name())
				}
			}
		}
		return true
	})
}

// freezePoint reports the event identifier frozen by call, if any: the
// *event.Event argument of a Publish method on a broker-package receiver,
// or the receiver of an explicit Event.Freeze call. The returned position
// is the call's; mutations strictly after it are in the frozen regime.
func freezePoint(pass *analysis.Pass, call *ast.CallExpr) (types.Object, token.Pos) {
	fn, recv := methodCall(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, token.NoPos
	}
	switch {
	case fn.Name() == "Publish" && pkgPathMatches(fn.Pkg().Path(), brokerPkg):
		if _, ok := namedType(recv); !ok {
			return nil, token.NoPos
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				obj := pass.TypesInfo.ObjectOf(id)
				if obj != nil && isPtrToPkgType(obj.Type(), eventPkg, "Event") {
					return obj, call.Pos()
				}
			}
		}
	case fn.Name() == "Freeze" && isPkgType(recv, eventPkg, "Event"):
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				return pass.TypesInfo.ObjectOf(id), call.Pos()
			}
		}
	}
	return nil, token.NoPos
}

// eventMutation reports whether call mutates an event through a plain
// identifier receiver: ev.Set(k, v). It returns the receiver object and a
// description of the mutation.
func eventMutation(pass *analysis.Pass, call *ast.CallExpr) (types.Object, string) {
	fn, recv := methodCall(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Set" || !isPkgType(recv, eventPkg, "Event") {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	return pass.TypesInfo.ObjectOf(id), "mutated by Set"
}

// eventFieldWrite reports whether lhs writes a field of an event held in
// a plain identifier (ev.Topic = ..., ev.Body = ...) or an entry of its
// attribute map (ev.Attrs[k] = ...). It returns the event object and a
// description.
func eventFieldWrite(pass *analysis.Pass, lhs ast.Expr) (types.Object, string) {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		if obj := eventIdent(pass, lhs.X); obj != nil {
			return obj, "field " + lhs.Sel.Name + " written"
		}
	case *ast.IndexExpr:
		if sel, ok := lhs.X.(*ast.SelectorExpr); ok {
			if obj := eventIdent(pass, sel.X); obj != nil {
				return obj, "attribute map entry written"
			}
		}
	}
	return nil, ""
}

// eventIdent resolves expr to the object of a plain identifier of type
// *event.Event, or nil.
func eventIdent(pass *analysis.Pass, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || !isPtrToPkgType(obj.Type(), eventPkg, "Event") {
		return nil
	}
	return obj
}
