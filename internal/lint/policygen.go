package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/analysis"
)

// PolicyGen is the compile-time form of the label package's reflection
// tests TestPolicyMethodsClassified and TestPolicyMutatorsBumpGeneration:
// in a package declaring the Policy type (a struct with a gen generation
// counter), every exported Policy method must appear in exactly one of
// the shared policyMutators/policyReaders classification maps; every
// classified mutator must bump the generation (a gen.Add call in its body
// or transitively in an unexported same-package callee); no classified
// reader may touch it; and classification entries for methods that no
// longer exist are stale.
var PolicyGen = &analysis.Analyzer{
	Name: "policygen",
	Doc:  "verify every exported label.Policy mutator bumps the generation counter and that all methods are classified",
	Run:  runPolicyGen,
}

func runPolicyGen(pass *analysis.Pass) (interface{}, error) {
	sup := newSuppressor(pass, "policygen")

	policy := policyType(pass)
	if policy == nil {
		return nil, nil // not a policy-bearing package
	}

	mutators, mutatorsNode := classificationMap(pass, "policyMutators")
	readers, readersNode := classificationMap(pass, "policyReaders")
	if mutatorsNode == nil || readersNode == nil {
		sup.reportf(policyDeclNode(pass, policy), "package declares a generation-counted Policy but no policyMutators/policyReaders classification maps; every exported Policy method must be classified so the cached-clearance invariant stays enforceable")
		return nil, nil
	}

	decls := funcBodies(pass)
	methods := make(map[string]*ast.FuncDecl)
	for fn, decl := range decls {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if n, ok := namedType(sig.Recv().Type()); ok && n.Obj() == policy {
				methods[fn.Name()] = decl
			}
		}
	}

	for name, decl := range methods {
		if !ast.IsExported(name) {
			continue
		}
		inMut, inRead := mutators[name], readers[name]
		switch {
		case inMut && inRead:
			sup.reportf(decl.Name, "Policy.%s is classified as both mutator and reader; it must be exactly one", name)
		case !inMut && !inRead:
			sup.reportf(decl.Name, "exported Policy method %s is not classified in policyMutators or policyReaders (mutators MUST bump the generation counter or cached clearance goes stale)", name)
		case inMut:
			if !bumpsGeneration(pass, decls, decl, make(map[*ast.FuncDecl]bool)) {
				sup.reportf(decl.Name, "Policy.%s is classified as a mutator but never bumps the generation counter (gen.Add); cached clearance would go stale", name)
			}
		case inRead:
			if bumpsGeneration(pass, decls, decl, make(map[*ast.FuncDecl]bool)) {
				sup.reportf(decl.Name, "Policy.%s is classified as a reader but bumps the generation counter; classify it as a mutator", name)
			}
		}
	}

	reportStale := func(m map[string]bool, node *ast.CompositeLit, list string) {
		for _, elt := range node.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			name, ok := stringKey(kv.Key)
			if !ok {
				continue
			}
			if _, exists := methods[name]; !exists {
				sup.reportf(kv.Key, "%s classifies %s, but Policy has no such method; remove the stale entry", list, name)
			}
		}
	}
	reportStale(mutators, mutatorsNode, "policyMutators")
	reportStale(readers, readersNode, "policyReaders")

	return nil, nil
}

// policyType finds a package-level struct type named Policy carrying a
// gen field — the generation-counted policy the analyzer enforces. Other
// packages' unrelated Policy types (no counter) are left alone.
func policyType(pass *analysis.Pass) *types.TypeName {
	obj, ok := pass.Pkg.Scope().Lookup("Policy").(*types.TypeName)
	if !ok || obj.IsAlias() {
		// Aliases (the safeweb facade re-exports label.Policy) are the
		// declaring package's responsibility, not this one's.
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "gen" {
			return obj
		}
	}
	return nil
}

// policyDeclNode locates the Policy type declaration for reporting.
func policyDeclNode(pass *analysis.Pass, policy *types.TypeName) ast.Node {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && pass.TypesInfo.Defs[ts.Name] == policy {
					return ts.Name
				}
			}
		}
	}
	return pass.Files[0]
}

// classificationMap reads a package-level map[string]bool var of the
// given name declared as a composite literal, returning the set of names
// mapped to true and the literal node.
func classificationMap(pass *analysis.Pass, name string) (map[string]bool, *ast.CompositeLit) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					out := make(map[string]bool)
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := stringKey(kv.Key); ok {
							if v, ok := kv.Value.(*ast.Ident); ok && v.Name == "true" {
								out[key] = true
							}
						}
					}
					return out, lit
				}
			}
		}
	}
	return nil, nil
}

func stringKey(expr ast.Expr) (string, bool) {
	lit, ok := expr.(*ast.BasicLit)
	if !ok {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// bumpsGeneration reports whether decl's body contains a generation bump
// (a call of the form <expr>.gen.Add(...)), directly or transitively
// through unexported same-package callees.
func bumpsGeneration(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, decl *ast.FuncDecl, visited map[*ast.FuncDecl]bool) bool {
	if visited[decl] {
		return false
	}
	visited[decl] = true

	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isGenAdd(call) {
			found = true
			return false
		}
		if fn, ok := calleeFunc(pass, call); ok && fn.Pkg() == pass.Pkg && !fn.Exported() {
			if callee, ok := decls[fn]; ok && bumpsGeneration(pass, decls, callee, visited) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isGenAdd matches <expr>.gen.Add(...): an Add call on a field named gen.
func isGenAdd(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	return ok && inner.Sel.Name == "gen"
}

// calleeFunc resolves a call to a statically-known function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, ok := pass.TypesInfo.ObjectOf(fun).(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
		return fn, ok
	}
	return nil, false
}
