// Command financial applies SafeWeb to a second domain from the paper's
// motivation ("healthcare, financial processing and government services",
// §1): a brokerage portal where advisers may see only their own clients'
// positions, while firm-wide risk aggregates are visible to every adviser.
//
// Run it with:
//
//	go run ./examples/financial
//
// The pipeline mirrors the MDT application's shape — privileged trade-feed
// producer, non-privileged position aggregator, privileged storage with
// relabelling — demonstrating that the label scheme of policy P1
// generalises: per-client labels behave like per-MDT labels, the firm
// aggregate label like the regional aggregate label.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"safeweb"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/webfront"
)

// clientLabel protects one client's positions.
func clientLabel(client string) safeweb.Label {
	return safeweb.ConfLabel("broker.example/client/" + client)
}

// firmLabel protects firm-level aggregates (visible to all advisers).
func firmLabel() safeweb.Label {
	return safeweb.ConfLabel("broker.example/firm-agg")
}

// trade is one fill from the trade feed.
type trade struct {
	Client string
	Symbol string
	Qty    int
	Price  float64
}

var trades = []trade{
	{"acme", "GOAT", 100, 42.5},
	{"acme", "YAK", -40, 12.0},
	{"bluth", "GOAT", 10, 43.1},
	{"bluth", "BANANA", 500, 1.2},
	{"acme", "GOAT", 60, 44.0},
	{"bluth", "YAK", 80, 11.8},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "financial:", err)
		os.Exit(1)
	}
}

func run() error {
	policy := safeweb.NewPolicy()
	all := safeweb.MustParsePattern("label:conf:broker.example/*")
	// Feed is privileged (reads the exchange); positions aggregates per
	// client; storage relabels firm aggregates.
	policy.SetPrincipal("trade-feed", safeweb.NewPrivileges().Grant(safeweb.Clearance, all), true)
	policy.Grant("positions", safeweb.Clearance, all)
	policy.SetPrincipal("store", safeweb.NewPrivileges().
		Grant(safeweb.Clearance, all).
		Grant(safeweb.Declassify, all), true)

	mw, err := safeweb.NewMiddleware(safeweb.MiddlewareConfig{Policy: policy})
	if err != nil {
		return err
	}
	defer mw.Stop()

	// Positions unit: per-client running position and P&L in the labelled
	// store; publishes refreshed snapshots and a firm-wide exposure
	// metric.
	err = mw.AddUnit(&engine.FuncUnit{UnitName: "positions", InitFunc: func(ctx *engine.InitContext) error {
		return ctx.Subscribe("/trades", "", func(ctx *engine.Context, ev *event.Event) error {
			client := ev.Attr("client")
			qty, _ := strconv.Atoi(ev.Attr("qty"))
			price, _ := strconv.ParseFloat(ev.Attr("price"), 64)

			key := "pos/" + client + "/" + ev.Attr("symbol")
			held := 0
			if v, ok := ctx.Get(key); ok {
				held, _ = strconv.Atoi(v)
			}
			held += qty
			if err := ctx.Set(key, strconv.Itoa(held)); err != nil {
				return err
			}

			// Client snapshot: carries the client's label from the event
			// and store reads.
			snap, err := json.Marshal(map[string]any{
				"client": client, "symbol": ev.Attr("symbol"), "position": held,
				"last_price": price,
			})
			if err != nil {
				return err
			}
			if err := ctx.Publish("/positions", map[string]string{
				"client": client, "symbol": ev.Attr("symbol"),
			}, snap); err != nil {
				return err
			}

			// Firm exposure: notional of this fill accumulated across all
			// clients. The tracked label set now mixes clients — exactly
			// why storage must relabel it before advisers may see it.
			notional := 0.0
			if v, ok := ctx.Get("firm/notional"); ok {
				notional, _ = strconv.ParseFloat(v, 64)
			}
			if qty < 0 {
				qty = -qty
			}
			notional += float64(qty) * price
			if err := ctx.Set("firm/notional", strconv.FormatFloat(notional, 'f', 2, 64)); err != nil {
				return err
			}
			agg, err := json.Marshal(map[string]any{"gross_notional": notional})
			if err != nil {
				return err
			}
			return ctx.Publish("/firm", map[string]string{"metric": "exposure"}, agg)
		})
	}})
	if err != nil {
		return err
	}

	// Storage unit: client snapshots keep their labels; firm aggregates
	// are declassified and relabelled (the §3.1 aggregate pattern).
	err = mw.AddUnit(&engine.FuncUnit{UnitName: "store", InitFunc: func(ctx *engine.InitContext) error {
		if err := ctx.Subscribe("/positions", "", func(ctx *engine.Context, ev *event.Event) error {
			id := "position/" + ev.Attr("client") + "/" + ev.Attr("symbol")
			return upsert(mw, id, ev.Body, ctx.Labels().Confidentiality())
		}); err != nil {
			return err
		}
		return ctx.Subscribe("/firm", "", func(ctx *engine.Context, ev *event.Event) error {
			return upsert(mw, "firm/exposure", ev.Body, safeweb.NewLabelSet(firmLabel()))
		})
	}})
	if err != nil {
		return err
	}

	// Accounts: one adviser per client plus a compliance officer.
	for _, adviser := range []struct{ name, client string }{
		{"adviser-acme", "acme"}, {"adviser-bluth", "bluth"},
	} {
		u, err := mw.WebDB.CreateUser(adviser.name, "pw")
		if err != nil {
			return err
		}
		mw.WebDB.GrantLabel(u.ID, safeweb.Clearance, safeweb.ExactPattern(clientLabel(adviser.client)))
		mw.WebDB.GrantLabel(u.ID, safeweb.Clearance, safeweb.ExactPattern(firmLabel()))
	}
	compliance, err := mw.WebDB.CreateUser("compliance", "pw")
	if err != nil {
		return err
	}
	mw.WebDB.GrantLabel(compliance.ID, safeweb.Clearance, all)

	// Routes. Note: no access checks in handlers at all; the release
	// check is the only guard, and it enforces per-client isolation.
	mw.Frontend.Get("/positions/:client/:symbol", func(c *webfront.Ctx) error {
		doc, err := mw.DMZDB.Get("position/" + c.Param("client") + "/" + c.Param("symbol"))
		if err != nil {
			return webfront.ErrNotFound("position")
		}
		wrapped, err := mw.Frontend.WrapDoc(doc)
		if err != nil {
			return err
		}
		body, err := wrapped.ToJSON()
		if err != nil {
			return err
		}
		c.JSON(body)
		return nil
	})
	mw.Frontend.Get("/firm/exposure", func(c *webfront.Ctx) error {
		doc, err := mw.DMZDB.Get("firm/exposure")
		if err != nil {
			return webfront.ErrNotFound("exposure")
		}
		wrapped, err := mw.Frontend.WrapDoc(doc)
		if err != nil {
			return err
		}
		body, err := wrapped.ToJSON()
		if err != nil {
			return err
		}
		c.JSON(body)
		return nil
	})

	// Feed the trades through the pipeline, each labelled per client.
	mw.Start()
	for _, tr := range trades {
		ev := safeweb.NewEvent("/trades", map[string]string{
			"client": tr.Client,
			"symbol": tr.Symbol,
			"qty":    strconv.Itoa(tr.Qty),
			"price":  strconv.FormatFloat(tr.Price, 'f', 2, 64),
		}, clientLabel(tr.Client))
		if err := mw.Broker.Publish("trade-feed", ev); err != nil {
			return err
		}
	}
	mw.Sync()
	fmt.Printf("processed %d trades; %d documents in the portal store\n", len(trades), mw.DMZDB.Len())

	addr, err := mw.ServeHTTP("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Println("\naccess matrix (rows: user, request):")
	checks := []struct{ user, path string }{
		{"adviser-acme", "/positions/acme/GOAT"},
		{"adviser-acme", "/positions/bluth/GOAT"}, // must be blocked
		{"adviser-bluth", "/positions/bluth/GOAT"},
		{"adviser-acme", "/firm/exposure"},
		{"adviser-bluth", "/firm/exposure"},
		{"compliance", "/positions/acme/GOAT"},
		{"compliance", "/positions/bluth/GOAT"},
	}
	for _, chk := range checks {
		status, body, err := get("http://"+addr+chk.path, chk.user, "pw")
		if err != nil {
			return err
		}
		if len(body) > 56 {
			body = body[:56] + "..."
		}
		fmt.Printf("  %-14s %-28s -> HTTP %d %s\n", chk.user, chk.path, status, body)
	}
	fmt.Printf("\nfrontend blocked %d cross-client requests without a single handler-side check\n",
		mw.Frontend.Stats().Blocked)
	return nil
}

func upsert(mw *safeweb.Middleware, id string, body []byte, labels label.Set) error {
	rev := ""
	if doc, err := mw.AppDB.Get(id); err == nil {
		rev = doc.Rev
	}
	_, err := mw.AppDB.Put(id, json.RawMessage(body), labels, rev)
	return err
}

func get(url, user, pass string) (int, string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	req.SetBasicAuth(user, pass)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(b), nil
}
