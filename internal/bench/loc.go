package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// PackageLOC is the line count of one package, partitioned by trust.
type PackageLOC struct {
	// Package is the import-path-relative package directory.
	Package string
	// Lines is the number of non-test Go source lines (excluding blank
	// lines and pure comment lines), matching how the paper counts LOC.
	Lines int
	// TestLines counts _test.go lines the same way.
	TestLines int
	// Trusted marks packages in SafeWeb's trusted codebase (§5.2): the
	// components a security audit must cover. Everything else is
	// application code whose bugs SafeWeb contains.
	Trusted bool
}

// trustedPackages mirrors §5.2's trusted codebase: the taint tracking
// library, the event backend (engine/jail/broker and their substrates),
// the frontend check logic and the policy machinery. The MDT application
// (mdt, vulninject) is untrusted except for its privileged units, which
// the table below calls out separately.
var trustedPackages = map[string]bool{
	"internal/label":      true,
	"internal/event":      true,
	"internal/selector":   true,
	"internal/stomp":      true,
	"internal/broker":     true,
	"internal/engine":     true,
	"internal/jail":       true,
	"internal/taint":      true,
	"internal/template":   true,
	"internal/webfront":   true,
	"internal/docstore":   true,
	"internal/webdb":      true,
	"internal/core":       true,
	"internal/labelmgr":   true, // edits the live policy: §5.2 "scripts that edit it must be audited"
	"internal/federation": true, // asserts labels across instance boundaries
}

// CountLOC walks the repository rooted at root and returns per-package
// line counts (E7). Vendor-less, stdlib-only repositories make this a
// simple walk.
func CountLOC(root string) ([]PackageLOC, error) {
	perPkg := make(map[string]*PackageLOC)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = "(root)"
		}
		pkg, ok := perPkg[rel]
		if !ok {
			pkg = &PackageLOC{Package: rel, Trusted: trustedPackages[rel]}
			perPkg[rel] = pkg
		}
		lines, err := countGoLines(path)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, "_test.go") {
			pkg.TestLines += lines
		} else {
			pkg.Lines += lines
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("bench: count loc: %w", err)
	}
	out := make([]PackageLOC, 0, len(perPkg))
	for _, pkg := range perPkg {
		out = append(out, *pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package < out[j].Package })
	return out, nil
}

// countGoLines counts non-blank, non-comment-only lines.
func countGoLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlock = false
				if line == "" {
					continue
				}
			} else {
				continue
			}
		}
		if strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") && !strings.Contains(line, "*/") {
			inBlock = true
			continue
		}
		n++
	}
	return n, sc.Err()
}

// TCBSummary aggregates the E7 accounting.
type TCBSummary struct {
	// TrustedLines is the audited SafeWeb codebase (paper: taint lib
	// 1943 LOC + engine 1908 LOC).
	TrustedLines int
	// UntrustedLines is application code protected by the safety net
	// (paper: 2841 LOC of the MDT app needing no further audit).
	UntrustedLines int
	// TestLines counts all test code.
	TestLines int
	// Packages is the per-package detail.
	Packages []PackageLOC
}

// Summarise computes the TCB summary for the repository at root.
func Summarise(root string) (TCBSummary, error) {
	pkgs, err := CountLOC(root)
	if err != nil {
		return TCBSummary{}, err
	}
	out := TCBSummary{Packages: pkgs}
	for _, p := range pkgs {
		out.TestLines += p.TestLines
		if p.Trusted {
			out.TrustedLines += p.Lines
		} else {
			out.UntrustedLines += p.Lines
		}
	}
	return out, nil
}
