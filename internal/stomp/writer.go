package stomp

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// closeFlushTimeout bounds the final drain of a connection's write queue
// at close: a peer that stopped reading must not wedge teardown behind a
// full TCP buffer. close() arms it as a write deadline on the connection.
const closeFlushTimeout = 2 * time.Second

// writerQueueLen is the per-connection send queue length. A full queue
// blocks senders, propagating back-pressure to the goroutines producing
// frames (typically a peer connection's read loop).
const writerQueueLen = 128

// outFrame pairs a queued frame with its flush class. For broadcast
// MESSAGE sends, sub/idPrefix/seq carry the per-delivery routing headers
// so the shared base frame is never cloned; the encoder emits them
// in-line. When img is set the frame is a preencoded wire image — the
// hottest path — and only the per-send headers are encoded: the routing
// headers when sub names a subscription (MESSAGE delivery), or the
// receipt header when it does not (producer SEND image).
type outFrame struct {
	f     *Frame
	img   *WireImage // non-nil: preencoded image
	sub   string     // non-empty: encode as MESSAGE with routing headers
	idSeq uint64

	idPrefix string
	receipt  string // img set, sub empty: SEND image receipt splice
	flush    bool
}

// frameWriter is the write-coalescing frame sink of one connection. Sends
// enqueue frames; a single writer goroutine encodes them with a reused
// Encoder into a buffered writer and flushes once per drained batch, so N
// MESSAGE frames to a busy subscriber cost ~1 syscall instead of N.
// Frames whose flush flag is set (receipts, ERROR, handshake and other
// control traffic) force an immediate flush, so request/response latency
// is never traded for batching; ordering is preserved unconditionally by
// the single queue.
//
// The first write error is sticky: it is reported once to onError (which
// should close the connection so the read side unblocks too), later sends
// fail fast with it, and already-queued frames are discarded.
type frameWriter struct {
	conn net.Conn
	bw   *bufio.Writer
	enc  Encoder

	ch   chan outFrame
	quit chan struct{} // closed by close() under mu; run() drains and exits
	done chan struct{} // closed when the writer goroutine exits

	// mu fences send against close: senders hold the read side across
	// the enqueue, so once close() holds the write side and sets closed,
	// no frame can slip into ch after run()'s final drain — an accepted
	// send is always written (or discarded visibly via the sticky error).
	mu     sync.RWMutex
	closed bool

	err     atomic.Pointer[error]
	onError func(error)
}

// newFrameWriter starts the writer goroutine for conn.
func newFrameWriter(conn net.Conn, onError func(error)) *frameWriter {
	fw := &frameWriter{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 32*1024),
		ch:      make(chan outFrame, writerQueueLen),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		onError: onError,
	}
	go fw.run()
	return fw
}

// send enqueues a frame. It blocks while the queue is full and fails fast
// after a write error or close. A nil return means the frame was queued,
// not that it reached the peer; callers needing confirmation use receipts.
//
// A send blocked on a full queue holds fw.mu's read side, which close()
// needs for its write side — that is safe, not a deadlock: the writer
// goroutine keeps draining until quit is closed, which close() can only
// do after this send completes.
func (fw *frameWriter) send(of outFrame) error {
	if ep := fw.err.Load(); ep != nil {
		return *ep
	}
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	if fw.closed {
		return net.ErrClosed
	}
	fw.ch <- of
	return nil
}

// close stops accepting frames, waits for the queue to drain and flush,
// and returns the sticky write error, if any. The drain is bounded by a
// write deadline armed here (closeFlushTimeout), so a peer that stopped
// reading cannot wedge teardown. Idempotent and safe from any goroutine
// except the writer's own.
func (fw *frameWriter) close() error {
	fw.mu.Lock()
	if !fw.closed {
		fw.closed = true
		_ = fw.conn.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
		close(fw.quit)
	}
	fw.mu.Unlock()
	<-fw.done
	if ep := fw.err.Load(); ep != nil {
		return *ep
	}
	return nil
}

func (fw *frameWriter) run() {
	defer close(fw.done)
	for {
		select {
		case of := <-fw.ch:
			fw.write(of)
			fw.drainQueued()
			fw.flush()
		case <-fw.quit:
			fw.drainQueued()
			fw.flush()
			return
		}
	}
}

// drainQueued writes every frame already sitting in the queue without
// blocking for more; the caller flushes once afterwards. This is the
// coalescing step: everything queued behind the frame that woke the
// writer shares its flush.
func (fw *frameWriter) drainQueued() {
	for {
		select {
		case of := <-fw.ch:
			fw.write(of)
		default:
			return
		}
	}
}

func (fw *frameWriter) write(of outFrame) {
	if fw.err.Load() != nil {
		return // connection is dead; discard
	}
	var err error
	switch {
	case of.img != nil && of.sub != "":
		err = fw.enc.EncodeImage(fw.bw, of.img, of.sub, of.idPrefix, of.idSeq)
	case of.img != nil:
		err = fw.enc.EncodeSendImage(fw.bw, of.img, of.receipt)
	case of.sub != "":
		err = fw.enc.EncodeMessage(fw.bw, of.f, of.sub, of.idPrefix, of.idSeq)
	default:
		err = fw.enc.Encode(fw.bw, of.f)
	}
	if err != nil {
		fw.fail(err)
		return
	}
	if of.flush {
		fw.flush()
	}
}

func (fw *frameWriter) flush() {
	if fw.err.Load() != nil {
		return
	}
	if err := fw.bw.Flush(); err != nil {
		fw.fail(err)
	}
}

func (fw *frameWriter) fail(err error) {
	fw.err.Store(&err)
	if fw.onError != nil {
		fw.onError(err)
	}
}

// frameNeedsFlush classifies outbound frames for the coalescing writer:
// bulk MESSAGE/SEND traffic is flushed once per drained batch, while
// control frames — receipts, errors, handshakes, and anything carrying a
// receipt request — flush immediately so a peer blocked on a response
// never waits on batching.
func frameNeedsFlush(f *Frame) bool {
	switch f.Command {
	case CmdMessage, CmdSend:
		return f.Headers[HdrReceipt] != ""
	}
	return true
}
