package maindb

import (
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42, Patients: 50})
	b := Generate(Config{Seed: 42, Patients: 50})
	if !reflect.DeepEqual(a.Patients(), b.Patients()) {
		t.Error("same seed produced different patients")
	}
	c := Generate(Config{Seed: 43, Patients: 50})
	if reflect.DeepEqual(a.Patients(), c.Patients()) {
		t.Error("different seeds produced identical patients")
	}
}

func TestGenerateStructure(t *testing.T) {
	db := Generate(Config{Seed: 1, Patients: 100, Hospitals: 3, Regions: 2})

	patients := db.Patients()
	if len(patients) != 100 {
		t.Fatalf("patients = %d", len(patients))
	}
	mdts := db.MDTs()
	if len(mdts) != 3*4 { // hospitals × clinics
		t.Fatalf("mdts = %d", len(mdts))
	}
	if len(db.Regions()) != 2 {
		t.Fatalf("regions = %v", db.Regions())
	}

	// Every patient belongs to a valid MDT consistent with its hospital
	// and clinic, and has at least one tumour and one treatment.
	for _, p := range patients {
		m, ok := db.MDTByID(p.MDT)
		if !ok {
			t.Fatalf("patient %s has unknown MDT %q", p.ID, p.MDT)
		}
		if m.Hospital != p.Hospital || m.Clinic != p.Clinic || m.Region != p.Region {
			t.Errorf("patient %s inconsistent with MDT: %+v vs %+v", p.ID, p, m)
		}
		tumours := db.TumoursOf(p.ID)
		if len(tumours) == 0 {
			t.Errorf("patient %s has no tumours", p.ID)
		}
		for _, tum := range tumours {
			if tum.PatientID != p.ID {
				t.Errorf("tumour %s wrong patient", tum.ID)
			}
			if tum.Site == "" || (tum.Type != "cancer" && tum.Type != "screening") {
				t.Errorf("tumour %s malformed: %+v", tum.ID, tum)
			}
			if tum.Stage < 0 || tum.Stage > 4 {
				t.Errorf("tumour %s stage %d", tum.ID, tum.Stage)
			}
		}
		if len(db.TreatmentsOf(p.ID)) == 0 {
			t.Errorf("patient %s has no treatments", p.ID)
		}
	}
}

func TestPatientsByMDTPartition(t *testing.T) {
	db := Generate(Config{Seed: 7, Patients: 120})
	total := 0
	for _, m := range db.MDTs() {
		group := db.PatientsByMDT(m.ID)
		total += len(group)
		for _, p := range group {
			if p.MDT != m.ID {
				t.Errorf("patient %s in wrong MDT bucket", p.ID)
			}
		}
	}
	if total != 120 {
		t.Errorf("MDT partition covers %d patients, want 120", total)
	}
	if got := db.PatientsByMDT("mdt-none"); len(got) != 0 {
		t.Errorf("unknown MDT returned %d patients", len(got))
	}
}

func TestCompletenessRange(t *testing.T) {
	db := Generate(Config{Seed: 3, Patients: 80, MissingFieldRate: 0.3})
	sawIncomplete := false
	for _, p := range db.Patients() {
		c := db.Completeness(p)
		if c < 0 || c > 1 {
			t.Fatalf("completeness %f out of range", c)
		}
		if c < 1 {
			sawIncomplete = true
		}
	}
	if !sawIncomplete {
		t.Error("no incomplete records at 30% missing rate")
	}
}

func TestCompletenessFull(t *testing.T) {
	// With a zero missing rate forced through a tiny epsilon, nearly all
	// records should be complete; verify the scorer returns 1 for a
	// fully-populated patient.
	db := Generate(Config{Seed: 5, Patients: 30, MissingFieldRate: 1e-9})
	for _, p := range db.Patients() {
		if p.Name == "" || p.NHSNumber == "" {
			continue
		}
		complete := true
		for _, tum := range db.TumoursOf(p.ID) {
			if tum.Stage == 0 {
				complete = false
			}
		}
		if complete && db.Completeness(p) != 1 {
			t.Errorf("complete patient scored %f", db.Completeness(p))
		}
	}
}

func TestDefaults(t *testing.T) {
	db := Generate(Config{})
	if len(db.Patients()) != 200 {
		t.Errorf("default patients = %d", len(db.Patients()))
	}
	if len(db.MDTs()) != 16 {
		t.Errorf("default MDTs = %d", len(db.MDTs()))
	}
}
