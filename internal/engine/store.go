package engine

import (
	"sort"
	"sync"

	"safeweb/internal/label"
)

// kvStore is the unit-specific key-value store with labels associated with
// keys (paper §4.3: "to support stateful units, the engine provides a
// unit-specific key-value store with labels associated with keys. It can
// be used for reading or storing values, thus allowing different callbacks
// to communicate by exchanging state between them").
//
// The store is safe for concurrent use: a unit's different subscriptions
// run on separate workers.
type kvStore struct {
	mu      sync.Mutex
	entries map[string]kvEntry
}

type kvEntry struct {
	value  string
	labels label.Set
}

func newKVStore() *kvStore {
	return &kvStore{entries: make(map[string]kvEntry)}
}

func (s *kvStore) get(key string) (string, label.Set, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return "", nil, false
	}
	return e.value, e.labels, true
}

func (s *kvStore) set(key, value string, labels label.Set) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[key] = kvEntry{value: value, labels: labels}
}

func (s *kvStore) delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, key)
}

func (s *kvStore) keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
