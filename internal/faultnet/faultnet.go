// Package faultnet wraps net.Conn and net.Listener with controlled fault
// injection for networked tests: per-operation latency, partial writes,
// indefinite stalls, and mid-stream connection resets. The chaos suites
// use it to stand in for the misbehaving peers a production broker meets —
// a consumer on a congested link (latency), a peer whose writes fragment
// (partial writes), one that stops reading entirely (stall), and one that
// crashes without a close handshake (reset) — without hand-rolling the
// same connection abuse in every test.
//
// A Conn is safe for the usual net.Conn concurrency (one reader, one
// writer, any goroutine may Close); Stall, Resume and Reset may be called
// from any goroutine at any time. Faults apply to operations that begin
// after the call: an operation already blocked inside the underlying
// connection is released only by Close/Reset, exactly as with a plain
// net.Conn.
package faultnet

import (
	"net"
	"sync"
	"time"
)

// Plan selects the faults a Conn injects. The zero value injects nothing:
// Wrap with a zero Plan is a transparent pass-through (plus the dynamic
// Stall/Reset controls).
type Plan struct {
	// ReadLatency is slept before each Read reaches the underlying
	// connection — a slow or congested consumer link.
	ReadLatency time.Duration
	// WriteLatency is slept before each Write begins.
	WriteLatency time.Duration
	// WriteChunk caps the bytes handed to each underlying Write call, so
	// one caller Write becomes several wire writes — the partial-write
	// case peers with small socket buffers or odd MTUs produce. Zero
	// writes whole buffers.
	WriteChunk int
}

// Conn is a net.Conn with fault injection. See the package comment for
// the concurrency contract.
type Conn struct {
	net.Conn
	plan Plan

	mu     sync.Mutex
	gate   chan struct{} // non-nil while stalled; closed by Resume/Close
	done   chan struct{} // closed by Close/Reset, releasing stalled ops
	closed bool
}

// Wrap returns c with plan's faults injected.
func Wrap(c net.Conn, plan Plan) *Conn {
	return &Conn{Conn: c, plan: plan, done: make(chan struct{})}
}

// Dial connects like net.Dial and wraps the connection.
func Dial(network, addr string, plan Plan) (*Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return Wrap(c, plan), nil
}

// Stall blocks every subsequent Read and Write until Resume (or
// Close/Reset). Operations already inside the underlying connection are
// unaffected. Stalling an already-stalled connection is a no-op.
func (c *Conn) Stall() {
	c.mu.Lock()
	if c.gate == nil && !c.closed {
		c.gate = make(chan struct{})
	}
	c.mu.Unlock()
}

// Resume releases a Stall. Resuming a connection that is not stalled is a
// no-op.
func (c *Conn) Resume() {
	c.mu.Lock()
	if c.gate != nil {
		close(c.gate)
		c.gate = nil
	}
	c.mu.Unlock()
}

// Reset severs the connection mid-stream without a close handshake: on
// TCP the pending-data discard makes the peer observe a hard reset rather
// than a clean EOF. Stalled operations are released with net.ErrClosed.
func (c *Conn) Reset() error {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		// Linger 0 discards unsent data and sends RST on close.
		_ = tc.SetLinger(0)
	}
	return c.Close()
}

// Close closes the underlying connection and releases any stalled
// operations with net.ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.done)
		if c.gate != nil {
			close(c.gate)
			c.gate = nil
		}
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

// await sleeps d and then waits out a stall, reporting net.ErrClosed if
// the connection closes first.
func (c *Conn) await(d time.Duration) error {
	if d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-c.done:
			timer.Stop()
			return net.ErrClosed
		}
	}
	c.mu.Lock()
	gate := c.gate
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return net.ErrClosed
	}
	if gate != nil {
		select {
		case <-gate:
		case <-c.done:
			return net.ErrClosed
		}
		// Re-check: Close may have been what released the gate.
		c.mu.Lock()
		closed = c.closed
		c.mu.Unlock()
		if closed {
			return net.ErrClosed
		}
	}
	return nil
}

// Read implements net.Conn with the plan's read faults.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.await(c.plan.ReadLatency); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn with the plan's write faults. With WriteChunk
// set, each chunk re-checks the stall gate, so a Stall lands between
// fragments of one caller Write — the torn-frame case.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.await(c.plan.WriteLatency); err != nil {
		return 0, err
	}
	chunk := c.plan.WriteChunk
	if chunk <= 0 || chunk >= len(p) {
		return c.Conn.Write(p)
	}
	written := 0
	for written < len(p) {
		if written > 0 {
			if err := c.await(0); err != nil {
				return written, err
			}
		}
		end := written + chunk
		if end > len(p) {
			end = len(p)
		}
		n, err := c.Conn.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Listener wraps every accepted connection in the plan's faults — the
// server-side counterpart of Dial.
type Listener struct {
	net.Listener
	plan Plan

	mu    sync.Mutex
	conns []*Conn
}

// WrapListener returns ln with plan's faults injected into every accepted
// connection.
func WrapListener(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, plan: plan}
}

// Listen listens like net.Listen and wraps the listener.
func Listen(network, addr string, plan Plan) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return WrapListener(ln, plan), nil
}

// Accept wraps the next accepted connection. Accepted connections are
// retained so StallAll/ResetAll can act on the whole fleet.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := Wrap(c, l.plan)
	l.mu.Lock()
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

// StallAll stalls every connection accepted so far.
func (l *Listener) StallAll() {
	l.mu.Lock()
	conns := append([]*Conn(nil), l.conns...)
	l.mu.Unlock()
	for _, c := range conns {
		c.Stall()
	}
}

// ResetAll resets every connection accepted so far.
func (l *Listener) ResetAll() {
	l.mu.Lock()
	conns := append([]*Conn(nil), l.conns...)
	l.mu.Unlock()
	for _, c := range conns {
		_ = c.Reset()
	}
}
