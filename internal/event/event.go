// Package event defines SafeWeb events: the unit of data exchanged between
// processing components in the backend (paper §4.1).
//
// An event consists of a set of key-value attribute pairs and an optional
// data payload; keys, values and the body are untyped strings. Every event
// carries a set of security labels. Deriving an event from others composes
// labels per the sticky/fragile rules of package label.
package event

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"safeweb/internal/label"
)

// ErrReservedAttribute is returned when application code attempts to set an
// attribute in the reserved "x-safeweb-" namespace used for label transport.
var ErrReservedAttribute = errors.New("event: attribute name is reserved")

// ReservedPrefix is the attribute namespace reserved for SafeWeb metadata;
// labels travel in these attributes on the wire, so application code may
// not set them directly.
const ReservedPrefix = "x-safeweb-"

// Event is a labelled message. Events are created by units and by the
// producer components that import data into the system. An Event and its
// attribute map must not be mutated after publishing; units receive
// defensive copies from the engine.
type Event struct {
	// Topic is the destination the event is published to,
	// e.g. "/patient_report".
	Topic string
	// Attrs holds the key-value attribute pairs. Keys and values are
	// untyped strings.
	Attrs map[string]string
	// Body is the optional payload.
	Body []byte
	// Labels is the event's security label set (confidentiality and
	// integrity labels together).
	Labels label.Set
}

// New creates an event on the given topic with a copy of the given
// attributes and labels.
func New(topic string, attrs map[string]string, labels ...label.Label) *Event {
	e := &Event{
		Topic:  topic,
		Attrs:  make(map[string]string, len(attrs)),
		Labels: label.NewSet(labels...),
	}
	for k, v := range attrs {
		e.Attrs[k] = v
	}
	return e
}

// Validate checks structural invariants: a non-empty topic and no reserved
// attribute names.
func (e *Event) Validate() error {
	if e.Topic == "" {
		return errors.New("event: empty topic")
	}
	for k := range e.Attrs {
		if strings.HasPrefix(k, ReservedPrefix) {
			return fmt.Errorf("%w: %q", ErrReservedAttribute, k)
		}
	}
	return nil
}

// Get returns the attribute value for key and whether it was present.
func (e *Event) Get(key string) (string, bool) {
	v, ok := e.Attrs[key]
	return v, ok
}

// Attr returns the attribute value for key, or "" if absent.
func (e *Event) Attr(key string) string { return e.Attrs[key] }

// Set sets an attribute, initialising the map if needed. It returns an
// error for reserved attribute names.
func (e *Event) Set(key, value string) error {
	if strings.HasPrefix(key, ReservedPrefix) {
		return fmt.Errorf("%w: %q", ErrReservedAttribute, key)
	}
	if e.Attrs == nil {
		e.Attrs = make(map[string]string)
	}
	e.Attrs[key] = value
	return nil
}

// Clone returns a deep copy of the event. Label sets are immutable by
// convention and therefore shared.
func (e *Event) Clone() *Event {
	out := &Event{
		Topic:  e.Topic,
		Labels: e.Labels,
	}
	if e.Attrs != nil {
		out.Attrs = make(map[string]string, len(e.Attrs))
		for k, v := range e.Attrs {
			out.Attrs[k] = v
		}
	}
	if e.Body != nil {
		out.Body = append([]byte(nil), e.Body...)
	}
	return out
}

// Derive creates a new event on the given topic whose labels are composed
// from the labels of the source events: confidentiality labels are sticky
// (union) and integrity labels are fragile (intersection). This is the only
// supported way for unit code to construct output events from inputs, so
// the composition rule cannot be forgotten.
func Derive(topic string, attrs map[string]string, body []byte, sources ...*Event) *Event {
	sets := make([]label.Set, len(sources))
	for i, src := range sources {
		sets[i] = src.Labels
	}
	e := New(topic, attrs)
	e.Body = append([]byte(nil), body...)
	e.Labels = label.Derive(sets...)
	return e
}

// SortedKeys returns the attribute keys in lexicographic order, for
// deterministic encoding and display.
func (e *Event) SortedKeys() []string {
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders a compact human-readable form for logs and debugging.
// Attribute values are not truncated; events in SafeWeb deployments are
// small records, not blobs.
func (e *Event) String() string {
	var b strings.Builder
	b.WriteString(e.Topic)
	b.WriteByte('{')
	for i, k := range e.SortedKeys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, e.Attrs[k])
	}
	b.WriteByte('}')
	if !e.Labels.IsEmpty() {
		fmt.Fprintf(&b, "[%s]", e.Labels)
	}
	if len(e.Body) > 0 {
		fmt.Fprintf(&b, "+%dB", len(e.Body))
	}
	return b.String()
}
