package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Compaction, retention and batched-fsync coverage: the moving lower
// bound (FirstOffset), acked-prefix deletion, the time/size windows, the
// soak-style byte-budget invariant, SyncBatch publish semantics, and the
// fault-injection regressions for the failed-write recovery paths.

// segmentBytes sums the directory's segment file sizes.
func segmentBytes(t *testing.T, dir string) int64 {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, name := range names {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// readAll verifies every offset in [first, next) reads back and that
// every offset below first fails ErrOffsetCompacted.
func readAll(t *testing.T, j *Journal) {
	t.Helper()
	var rec Record
	first, next := j.FirstOffset(), j.NextOffset()
	for off := int64(0); off < first; off++ {
		if err := j.Read(off, &rec); !errors.Is(err, ErrOffsetCompacted) {
			t.Fatalf("Read(%d) below FirstOffset %d: got %v, want ErrOffsetCompacted", off, first, err)
		}
	}
	for off := first; off < next; off++ {
		if err := j.Read(off, &rec); err != nil {
			t.Fatalf("Read(%d) in [%d,%d): %v", off, first, next, err)
		}
	}
}

func TestCompactAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	var compacts []CompactStats
	j, err := Open(dir, Options{
		SegmentSize: 256,
		OnCompact:   func(st CompactStats) { compacts = append(compacts, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	const n = 24
	for i := 0; i < n; i++ {
		mustAppend(t, j, testRecord(i))
	}
	segsBefore, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsBefore) < 3 {
		t.Fatalf("test needs >=3 segments, got %d", len(segsBefore))
	}

	// Two groups: the laggard pins the prefix — a segment is deleted only
	// when EVERY group's cumulative ack covers it.
	if err := j.Ack("fast", n); err != nil {
		t.Fatal(err)
	}
	if err := j.Ack("slow", 2); err != nil {
		t.Fatal(err)
	}
	st, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.RetentionSegments != 0 {
		t.Fatalf("no retention windows configured, got %d retention deletes", st.RetentionSegments)
	}
	if first := j.FirstOffset(); first > 2 {
		t.Fatalf("FirstOffset %d passed the slow group's ack 2", first)
	}
	readAll(t, j)

	// Catch the laggard up: the rest of the prefix goes, but never the
	// active segment — NextOffset must survive.
	if err := j.Ack("slow", n); err != nil {
		t.Fatal(err)
	}
	st, err = j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.AckedSegments == 0 {
		t.Fatal("fully-acked prefix not compacted")
	}
	if first := j.FirstOffset(); first == 0 {
		t.Fatal("FirstOffset did not advance")
	}
	if next := j.NextOffset(); next != n {
		t.Fatalf("NextOffset = %d after compaction, want %d", next, n)
	}
	segsAfter, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("compaction deleted no segment files: %d -> %d", len(segsBefore), len(segsAfter))
	}
	readAll(t, j)
	if len(compacts) == 0 {
		t.Fatal("OnCompact never fired")
	}

	// The moving lower bound survives a reopen: FirstOffset derives from
	// the surviving segment files, and the acks survive their rewrite.
	first, next := j.FirstOffset(), j.NextOffset()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer j2.Close()
	if got := j2.FirstOffset(); got != first {
		t.Fatalf("reopened FirstOffset = %d, want %d", got, first)
	}
	if got := j2.NextOffset(); got != next {
		t.Fatalf("reopened NextOffset = %d, want %d", got, next)
	}
	if got := j2.Acked("slow"); got != n {
		t.Fatalf("reopened Acked(slow) = %d, want %d", got, n)
	}
	readAll(t, j2)
}

func TestCompactNoGroupsKeepsEverything(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 24; i++ {
		mustAppend(t, j, testRecord(i))
	}
	// No consumer group exists: nothing is ack-covered, so the acked-
	// prefix pass must delete nothing (an empty quorum is not "everyone").
	st, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.AckedSegments != 0 || st.RetentionSegments != 0 {
		t.Fatalf("groupless Compact deleted segments: %+v", st)
	}
	if first := j.FirstOffset(); first != 0 {
		t.Fatalf("FirstOffset = %d, want 0", first)
	}
	readAll(t, j)
}

func TestCompactRetentionAge(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentSize: 256, RetentionAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// Pin the clock near the record timestamps (1000+i ns) so the
	// roll-time compaction during the fill expires nothing; then jump it
	// past the window.
	clock := int64(2000)
	j.now = func() int64 { return clock }
	const n = 24
	for i := 0; i < n; i++ {
		mustAppend(t, j, testRecord(i))
	}
	// Nothing is acked; age alone must expire the prefix — retention is
	// the storage bound even for groups that never ack.
	clock = int64(1000+n) + int64(2*time.Hour)
	st, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.RetentionSegments == 0 {
		t.Fatal("age window expired no segments")
	}
	if st.AckedSegments != 0 {
		t.Fatalf("no acks exist, yet %d segments counted as acked", st.AckedSegments)
	}
	// The active segment survives even though it too is past the age —
	// the offset counter must stay recoverable from disk.
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("want only the active segment to survive, got %v", names)
	}
	if next := j.NextOffset(); next != n {
		t.Fatalf("NextOffset = %d, want %d", next, n)
	}
	readAll(t, j)
}

// TestRetentionBytesSoak is the byte-budget soak: appends run past
// several retention thresholds with rolls enforcing the window, and at
// every step the journal directory stays within the configured budget
// while every unacked record above FirstOffset stays replayable. Midway
// the journal is reopened — restart mid-retention — and the invariant
// must keep holding.
func TestRetentionBytesSoak(t *testing.T) {
	const (
		segSize = 512
		budget  = 4 * segSize
		rounds  = 3
		perRnd  = 60
	)
	dir := t.TempDir()
	opts := Options{SegmentSize: segSize, RetentionBytes: budget}
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRnd; i++ {
			mustAppend(t, j, testRecord(seq))
			seq++
			if got := segmentBytes(t, dir); got > budget {
				t.Fatalf("round %d append %d: journal dir %d bytes, budget %d", round, i, got, budget)
			}
		}
		readAll(t, j) // every retained record replayable, below-floor reads loud
		if j.FirstOffset() == 0 {
			t.Fatalf("round %d: retention never advanced FirstOffset", round)
		}
		// Restart mid-retention: recovery must accept the compacted prefix
		// and keep enforcing the same budget.
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j, err = Open(dir, opts)
		if err != nil {
			t.Fatalf("round %d reopen: %v", round, err)
		}
		if got := int(j.NextOffset()); got != seq {
			t.Fatalf("round %d reopen: NextOffset %d, want %d", round, got, seq)
		}
		readAll(t, j)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryCompactedPrefix(t *testing.T) {
	const n = 20
	dir := t.TempDir()
	paths := fillJournal(t, dir, n)

	// Crash mid-compaction: unlink-lowest-first means any prefix of the
	// planned deletions may have happened. Simulate the worst cut — some
	// segments gone, the ack log still un-rewritten (fillJournal acked
	// g=n/2) and a half-written ack rewrite left behind.
	for _, p := range paths[:2] {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, ackTmpName), []byte("torn rewrite"), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("reopen after crash mid-compaction: %v", err)
	}
	defer j.Close()
	if _, err := os.Stat(filepath.Join(dir, ackTmpName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale ack rewrite not cleaned up: %v", err)
	}
	if first := j.FirstOffset(); first == 0 {
		t.Fatal("FirstOffset = 0, want the surviving prefix's base")
	}
	if got := j.Acked("g"); got != n/2 {
		t.Fatalf("Acked(g) = %d, want %d (old ack log still authoritative)", got, n/2)
	}
	readAll(t, j)
	// And the log is still appendable past the recovered bound.
	end := j.NextOffset()
	if off := mustAppend(t, j, testRecord(int(end))); off != end {
		t.Fatalf("post-recovery append at %d, want %d", off, end)
	}
}

func TestSyncBatchPublishesOnlyAfterFlush(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{
		Sync:              SyncBatch,
		SyncBatchBytes:    1 << 20, // byte threshold out of reach
		SyncBatchInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	sig := j.AppendSignal()
	off, err := j.Append(testRecord(0))
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Fatalf("offset = %d, want 0", off)
	}
	// The record is written but its batch is not synced: it must not be
	// published — not readable, no signal — until the flush.
	if got := j.NextOffset(); got != 0 {
		t.Fatalf("NextOffset = %d before flush, want 0", got)
	}
	select {
	case <-sig:
		t.Fatal("append signal fired before the batch was synced")
	default:
	}
	var rec Record
	if err := j.Read(0, &rec); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("Read before flush: got %v, want ErrOffsetOutOfRange", err)
	}

	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := j.NextOffset(); got != 1 {
		t.Fatalf("NextOffset = %d after flush, want 1", got)
	}
	select {
	case <-sig:
	default:
		t.Fatal("append signal did not fire at flush")
	}
	if err := j.Read(0, &rec); err != nil {
		t.Fatalf("Read after flush: %v", err)
	}
}

func TestSyncBatchByteThresholdFlushes(t *testing.T) {
	j, err := Open(t.TempDir(), Options{
		Sync:              SyncBatch,
		SyncBatchBytes:    1, // every append crosses the threshold
		SyncBatchInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 5; i++ {
		mustAppend(t, j, testRecord(i))
		if got := j.NextOffset(); got != int64(i+1) {
			t.Fatalf("NextOffset = %d after append %d, want %d (byte threshold must flush inline)", got, i, i+1)
		}
	}
}

func TestSyncBatchIntervalFlushes(t *testing.T) {
	j, err := Open(t.TempDir(), Options{
		Sync:              SyncBatch,
		SyncBatchBytes:    1 << 20,
		SyncBatchInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	sig := j.AppendSignal()
	mustAppend(t, j, testRecord(0))
	select {
	case <-sig:
	case <-time.After(5 * time.Second):
		t.Fatal("interval flush never published the batch")
	}
	if got := j.NextOffset(); got != 1 {
		t.Fatalf("NextOffset = %d after interval flush, want 1", got)
	}
}

func TestSyncBatchCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{
		Sync:              SyncBatch,
		SyncBatchBytes:    1 << 20,
		SyncBatchInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		mustAppend(t, j, testRecord(i))
	}
	if err := j.Ack("g", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.NextOffset(); got != n {
		t.Fatalf("reopened NextOffset = %d, want %d (Close must flush the batch)", got, n)
	}
	if got := j2.Acked("g"); got != 2 {
		t.Fatalf("reopened Acked(g) = %d, want 2", got)
	}
}

// TestRecoveryAppendWriteError is the satellite-1 regression: a transient
// failed/short segment write must not corrupt the log. Before the fix the
// error path truncated without re-seeking the file position, so the next
// append wrote past EOF and left a zero-filled gap — recovered reads lost
// every record stacked after the tear (or, once the segment rolled, Open
// refused the whole journal as interior corruption).
func TestRecoveryAppendWriteError(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 3; i++ {
		mustAppend(t, j, testRecord(i))
	}

	// One transient fault: half the record's bytes hit the file, then the
	// device errors — the torn-tail shape a real short write leaves.
	injected := errors.New("injected write error")
	j.writeHook = func(f *os.File, b []byte) (int, error) {
		n, _ := f.Write(b[:len(b)/2])
		return n, injected
	}
	if _, err := j.Append(testRecord(3)); !errors.Is(err, injected) {
		t.Fatalf("faulted Append: got %v, want injected error", err)
	}
	j.writeHook = nil

	// The fault was transient: later appends must succeed and stack
	// exactly after the committed prefix.
	for i := 3; i < 6; i++ {
		if off := mustAppend(t, j, testRecord(i)); off != int64(i) {
			t.Fatalf("post-fault append at %d, want %d", off, i)
		}
	}
	readAll(t, j)

	// And the log must survive reopen intact: all six records, no torn
	// gap, still appendable.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("reopen after transient write fault: %v", err)
	}
	defer j2.Close()
	if got := j2.NextOffset(); got != 6 {
		t.Fatalf("reopened NextOffset = %d, want 6 (records lost to the tear)", got)
	}
	readAll(t, j2)
	if off := mustAppend(t, j2, testRecord(6)); off != 6 {
		t.Fatalf("reopened append at %d, want 6", off)
	}
}

// TestRecoveryAckWriteError is the satellite-2 regression: a transient
// failed ack write must not poison the ack log. Before the fix the torn
// bytes stayed at the tail, every later ack stacked behind the tear, and
// openAcks silently discarded them all at the next open — the group
// re-delivered work it had already acked.
func TestRecoveryAckWriteError(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 10; i++ {
		mustAppend(t, j, testRecord(i))
	}
	if err := j.Ack("g", 2); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected ack write error")
	j.writeHook = func(f *os.File, b []byte) (int, error) {
		n, _ := f.Write(b[:len(b)/2])
		return n, injected
	}
	if err := j.Ack("g", 5); !errors.Is(err, injected) {
		t.Fatalf("faulted Ack: got %v, want injected error", err)
	}
	j.writeHook = nil

	// Later acks must both apply live and survive the reopen.
	if err := j.Ack("g", 8); err != nil {
		t.Fatalf("post-fault Ack: %v", err)
	}
	if got := j.Acked("g"); got != 8 {
		t.Fatalf("Acked(g) = %d, want 8", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after transient ack fault: %v", err)
	}
	defer j2.Close()
	if got := j2.Acked("g"); got != 8 {
		t.Fatalf("reopened Acked(g) = %d, want 8 (acks lost behind the tear)", got)
	}
}

func TestJournalOpenFirstSegmentBaseNonZero(t *testing.T) {
	// A freshly-seen directory whose first segment starts above zero is a
	// compacted prefix, not corruption — but the segments present must
	// still be contiguous.
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, j, testRecord(i))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, names[0])); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open with compacted prefix: %v", err)
	}
	defer j2.Close()
	if first := j2.FirstOffset(); first == 0 {
		t.Fatal("FirstOffset = 0, want the second segment's base")
	}
	var rec Record
	if err := j2.Read(0, &rec); !errors.Is(err, ErrOffsetCompacted) {
		t.Fatalf("Read(0): got %v, want ErrOffsetCompacted", err)
	}
	readAll(t, j2)
}
