// Command safeweb-tap connects to a SafeWeb broker as a client and prints
// the events a given principal is allowed to receive — a diagnostic tool
// that doubles as a live demonstration of label filtering: run two taps
// with different logins and observe that each sees only the events its
// clearance covers.
//
// Usage:
//
//	safeweb-tap -addr 127.0.0.1:61613 -login aggregator -topic '/patient_report' [-selector "type = 'cancer'"]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"safeweb/internal/broker"
	"safeweb/internal/event"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:61613", "broker address")
	login := flag.String("login", "tap", "principal to connect as")
	passcode := flag.String("passcode", "", "passcode")
	topic := flag.String("topic", "*", "topic pattern to subscribe to")
	sel := flag.String("selector", "", "optional SQL-92 content selector")
	flag.Parse()

	if err := run(*addr, *login, *passcode, *topic, *sel); err != nil {
		fmt.Fprintln(os.Stderr, "safeweb-tap:", err)
		os.Exit(1)
	}
}

func run(addr, login, passcode, topic, sel string) error {
	bus, err := broker.DialBus(addr, broker.ClientConfig{
		Login:    login,
		Passcode: passcode,
		OnError:  func(err error) { log.Printf("error: %v", err) },
	})
	if err != nil {
		return err
	}
	defer bus.Close()

	n := 0
	if _, err := bus.Subscribe(topic, sel, func(ev *event.Event) {
		n++
		fmt.Printf("%4d %s\n", n, ev)
	}); err != nil {
		return err
	}
	log.Printf("tapping %s as %q (selector %q); Ctrl-C to stop", topic, login, sel)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Printf("received %d events", n)
	return nil
}
