package stomp

import (
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"
)

// echoHandler is a SessionHandler that re-delivers every SEND back to the
// sending session as a MESSAGE on the same destination, tagged with the
// session's first subscription id. It is enough to exercise the full
// client/server path without the broker package.
type echoHandler struct {
	mu       sync.Mutex
	subsByID map[uint64]string // session id -> subscription id
	logins   []string
}

func newEchoHandler() *echoHandler {
	return &echoHandler{subsByID: make(map[uint64]string)}
}

func (h *echoHandler) OnConnect(sess *Session, login string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.logins = append(h.logins, login)
	if login == "rejected-user" {
		return errors.New("user is banned")
	}
	return nil
}

func (h *echoHandler) OnFrame(sess *Session, f *Frame) error {
	switch f.Command {
	case CmdSubscribe:
		h.mu.Lock()
		h.subsByID[sess.ID()] = f.Header(HdrID)
		h.mu.Unlock()
	case CmdSend:
		h.mu.Lock()
		subID := h.subsByID[sess.ID()]
		h.mu.Unlock()
		if subID == "" {
			return nil
		}
		// Broadcast-style re-delivery: the body is shared, only headers
		// are copied for the routing rewrite.
		msg := f.ShallowClone()
		msg.Command = CmdMessage
		msg.SetHeader(HdrSubscription, subID)
		msg.SetHeader(HdrMessageID, "m-1")
		return sess.Send(msg)
	}
	return nil
}

func (h *echoHandler) OnDisconnect(*Session) {}

func startEchoServer(t *testing.T, auth Authenticator) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Handler:      newEchoHandler(),
		Authenticate: auth,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func TestClientServerEcho(t *testing.T) {
	srv := startEchoServer(t, nil)

	received := make(chan *Frame, 1)
	client, err := Dial(srv.Addr(), ClientConfig{Login: "unit-a"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	if _, err := client.Subscribe("/topic", "", nil, func(f *Frame) {
		received <- f
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	headers := map[string]string{"patient_id": "1"}
	if err := client.SendReceipt("/topic", headers, []byte("payload"), 5*time.Second); err != nil {
		t.Fatalf("SendReceipt: %v", err)
	}

	select {
	case f := <-received:
		if f.Header("patient_id") != "1" || string(f.Body) != "payload" {
			t.Errorf("echoed frame wrong: %v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no message received")
	}
}

func TestServerAuthentication(t *testing.T) {
	auth := func(login, passcode string) error {
		if passcode != "secret" {
			return errors.New("bad passcode")
		}
		return nil
	}
	srv := startEchoServer(t, auth)

	if _, err := Dial(srv.Addr(), ClientConfig{Login: "u", Passcode: "wrong"}); err == nil {
		t.Error("bad passcode accepted")
	}
	c, err := Dial(srv.Addr(), ClientConfig{Login: "u", Passcode: "secret"})
	if err != nil {
		t.Fatalf("good passcode rejected: %v", err)
	}
	_ = c.Close()
}

func TestHandlerConnectRejection(t *testing.T) {
	srv := startEchoServer(t, nil)
	if _, err := Dial(srv.Addr(), ClientConfig{Login: "rejected-user"}); err == nil {
		t.Error("handler rejection not surfaced to client")
	}
}

func TestClientDisconnectGraceful(t *testing.T) {
	srv := startEchoServer(t, nil)
	client, err := Dial(srv.Addr(), ClientConfig{Login: "u"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := client.Disconnect(5 * time.Second); err != nil {
		t.Errorf("Disconnect: %v", err)
	}
	// Idempotent close.
	if err := client.Close(); err != nil {
		t.Errorf("Close after Disconnect: %v", err)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	srv := startEchoServer(t, nil)
	client, err := Dial(srv.Addr(), ClientConfig{Login: "u"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	var mu sync.Mutex
	count := 0
	id, err := client.Subscribe("/t", "", nil, func(*Frame) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := client.SendReceipt("/t", nil, nil, 5*time.Second); err != nil {
		t.Fatalf("SendReceipt: %v", err)
	}
	if err := client.Unsubscribe(id); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	if err := client.SendReceipt("/t", nil, nil, 5*time.Second); err != nil {
		t.Fatalf("SendReceipt 2: %v", err)
	}
	// The first message may still be in flight; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	final := count
	mu.Unlock()
	if final > 1 {
		t.Errorf("received %d messages after unsubscribe, want <= 1", final)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv := startEchoServer(t, nil)
	errs := make(chan error, 1)
	client, err := Dial(srv.Addr(), ClientConfig{
		Login:   "u",
		OnError: func(err error) { errs <- err },
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	select {
	case <-errs:
		// read loop observed the close — good
	case <-time.After(5 * time.Second):
		t.Fatal("client did not observe server close")
	}
}

// TestBurstOrderingAndDelivery: a burst of SENDs coalesced through the
// connection writers arrives complete and in order, and the trailing
// receipt-confirmed SEND (which forces a flush) is processed after all of
// them.
func TestBurstOrderingAndDelivery(t *testing.T) {
	srv := startEchoServer(t, nil)
	client, err := Dial(srv.Addr(), ClientConfig{Login: "u"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	const n = 200
	received := make(chan string, n+1)
	if _, err := client.Subscribe("/t", "", nil, func(f *Frame) {
		received <- f.Header("seq")
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := client.Send("/t", map[string]string{"seq": strconv.Itoa(i)}, nil); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if err := client.SendReceipt("/t", map[string]string{"seq": "last"}, nil, 5*time.Second); err != nil {
		t.Fatalf("SendReceipt: %v", err)
	}
	for i := 0; i < n; i++ {
		select {
		case seq := <-received:
			if seq != strconv.Itoa(i) {
				t.Fatalf("message %d has seq %q", i, seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("burst stalled after %d messages", i)
		}
	}
	select {
	case seq := <-received:
		if seq != "last" {
			t.Fatalf("trailing message has seq %q", seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receipt-confirmed send not delivered")
	}
}

func TestConcurrentSends(t *testing.T) {
	srv := startEchoServer(t, nil)
	client, err := Dial(srv.Addr(), ClientConfig{Login: "u"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	const n = 50
	var wg sync.WaitGroup
	errCount := 0
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := client.Send("/t", map[string]string{"k": "v"}, []byte("x")); err != nil {
				mu.Lock()
				errCount++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if errCount != 0 {
		t.Errorf("%d concurrent sends failed", errCount)
	}
}
