package stomp

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"testing"
	"time"
)

// selfSigned generates an ephemeral server certificate for 127.0.0.1 —
// the paper's broker was "extended with SSL support at the transport
// layer" (§4.2), and this verifies the TLS path end to end.
func selfSigned(t *testing.T) (tls.Certificate, *x509.CertPool) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	template := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "safeweb-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &template, &template, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	parsed, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(parsed)
	return cert, pool
}

func TestTLSClientServer(t *testing.T) {
	cert, pool := selfSigned(t)

	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Handler: newEchoHandler(),
		TLS:     &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	// Plaintext dial against the TLS listener must fail.
	if _, err := Dial(srv.Addr(), ClientConfig{Login: "u", ConnectTimeout: 2 * time.Second}); err == nil {
		t.Error("plaintext client connected to TLS server")
	}

	client, err := Dial(srv.Addr(), ClientConfig{
		Login: "u",
		TLS:   &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12},
	})
	if err != nil {
		t.Fatalf("TLS Dial: %v", err)
	}
	defer client.Close()

	received := make(chan *Frame, 1)
	if _, err := client.Subscribe("/t", "", nil, func(f *Frame) { received <- f }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := client.SendReceipt("/t", map[string]string{"k": "v"}, []byte("over tls"), 5*time.Second); err != nil {
		t.Fatalf("SendReceipt: %v", err)
	}
	select {
	case f := <-received:
		if string(f.Body) != "over tls" {
			t.Errorf("body = %q", f.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no message over TLS")
	}
}

func TestTLSUntrustedClientRejected(t *testing.T) {
	cert, _ := selfSigned(t)
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Handler: newEchoHandler(),
		TLS:     &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A client without the CA must refuse the server certificate.
	if _, err := Dial(srv.Addr(), ClientConfig{
		Login:          "u",
		TLS:            &tls.Config{MinVersion: tls.VersionTLS12},
		ConnectTimeout: 2 * time.Second,
	}); err == nil {
		t.Error("client accepted untrusted certificate")
	}
}
