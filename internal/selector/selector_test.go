package selector

import (
	"strings"
	"testing"
)

// evalOn parses the selector and evaluates it against attrs, failing the
// test on parse errors.
func evalOn(t *testing.T, sel string, attrs map[string]string) bool {
	t.Helper()
	s, err := Parse(sel)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sel, err)
	}
	return s.MatchesAttrs(attrs)
}

func TestComparisons(t *testing.T) {
	attrs := map[string]string{
		"type":       "cancer",
		"patient_id": "33812769",
		"age":        "61",
		"score":      "3.5",
	}
	tests := []struct {
		sel  string
		want bool
	}{
		{"type = 'cancer'", true},
		{"type = 'benign'", false},
		{"type <> 'benign'", true},
		{"age = 61", true},
		{"age > 60", true},
		{"age >= 61", true},
		{"age < 61", false},
		{"age <= 60", false},
		{"score > 3", true},
		{"score < 3.6", true},
		{"age > 100", false},
		// String ordering when both sides are strings.
		{"type > 'a'", true},
		{"type < 'a'", false},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.sel, attrs); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.sel, got, tt.want)
		}
	}
}

func TestBooleanOperators(t *testing.T) {
	attrs := map[string]string{"a": "1", "b": "2", "flag": "true"}
	tests := []struct {
		sel  string
		want bool
	}{
		{"a = 1 AND b = 2", true},
		{"a = 1 AND b = 3", false},
		{"a = 2 OR b = 2", true},
		{"a = 2 OR b = 3", false},
		{"NOT a = 2", true},
		{"NOT (a = 1 AND b = 2)", false},
		{"a = 1 AND (b = 3 OR b = 2)", true},
		{"flag", true},
		{"flag = TRUE", true},
		{"flag <> FALSE", true},
		{"NOT flag", false},
		{"TRUE", true},
		{"FALSE", false},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.sel, attrs); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.sel, got, tt.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	attrs := map[string]string{"present": "x"}
	tests := []struct {
		sel  string
		want bool
	}{
		{"missing = 'x'", false},
		{"missing <> 'x'", false}, // unknown, not true
		{"NOT missing = 'x'", false},
		{"missing IS NULL", true},
		{"missing IS NOT NULL", false},
		{"present IS NULL", false},
		{"present IS NOT NULL", true},
		// Kleene logic: unknown OR true = true; unknown AND false = false.
		{"missing = 'x' OR present = 'x'", true},
		{"missing = 'x' AND present <> 'x'", false},
		{"missing IN ('a','b')", false},
		{"missing LIKE 'a%'", false},
		{"missing BETWEEN 1 AND 2", false},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.sel, attrs); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.sel, got, tt.want)
		}
	}
}

func TestBetweenInLike(t *testing.T) {
	attrs := map[string]string{
		"age":      "61",
		"hospital": "addenbrookes",
		"code":     "C50.9",
		"pct":      "95%",
	}
	tests := []struct {
		sel  string
		want bool
	}{
		{"age BETWEEN 60 AND 65", true},
		{"age BETWEEN 62 AND 65", false},
		{"age NOT BETWEEN 62 AND 65", true},
		{"hospital IN ('addenbrookes', 'papworth')", true},
		{"hospital IN ('papworth')", false},
		{"hospital NOT IN ('papworth')", true},
		{"hospital LIKE 'adden%'", true},
		{"hospital LIKE 'Adden%'", false}, // LIKE is case-sensitive
		{"hospital NOT LIKE 'pap%'", true},
		{"code LIKE 'C50._'", true},
		{"code LIKE 'C51._'", false},
		{"code LIKE 'C50.%'", true},
		// ESCAPE: match a literal percent sign.
		{"pct LIKE '95!%' ESCAPE '!'", true},
		{"pct LIKE '96!%' ESCAPE '!'", false},
		{"hospital LIKE '_ddenbrookes'", true},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.sel, attrs); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.sel, got, tt.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	attrs := map[string]string{"a": "10", "b": "3"}
	tests := []struct {
		sel  string
		want bool
	}{
		{"a + b = 13", true},
		{"a - b = 7", true},
		{"a * b = 30", true},
		{"a / 2 = 5", true},
		{"a + b * 2 = 16", true},   // precedence
		{"(a + b) * 2 = 26", true}, // parentheses
		{"-a = -10", true},
		{"+a = 10", true},
		{"a / 0 = 1", false}, // division by zero -> NULL -> not true
		{"a / 0 IS NULL", true},
		{"2 = 1 + 1", true},
		{"a + missing = 10", false}, // NULL propagates through arithmetic
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.sel, attrs); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.sel, got, tt.want)
		}
	}
}

func TestEmptySelectorMatchesEverything(t *testing.T) {
	for _, src := range []string{"", "   ", "\t\n"} {
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if !s.MatchesAttrs(nil) || !s.MatchesAttrs(map[string]string{"a": "1"}) {
			t.Errorf("blank selector %q did not match", src)
		}
	}
	var nilSel *Selector
	if !nilSel.Matches(MapEnv(nil)) {
		t.Error("nil selector did not match")
	}
}

func TestStringLiteralEscapes(t *testing.T) {
	attrs := map[string]string{"name": "O'Brien"}
	if !evalOn(t, "name = 'O''Brien'", attrs) {
		t.Error("doubled-quote escape failed")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	attrs := map[string]string{"a": "1"}
	if !evalOn(t, "a = 1 and not (a is null)", attrs) {
		t.Error("lower-case keywords rejected")
	}
	if !evalOn(t, "a Between 0 And 2", attrs) {
		t.Error("mixed-case keywords rejected")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a =",
		"= 1",
		"a = 'unterminated",
		"a BETWEEN 1",
		"a BETWEEN 1 OR 2",
		"a IN ()",
		"a IN (1)", // IN list must contain strings
		"a LIKE 5",
		"a LIKE 'x' ESCAPE 'toolong'",
		"a IS",
		"a IS NOT",
		"(a = 1",
		"a = 1)",
		"a NOT = 1",
		"a @ 1",
		"1.e3",
		"a = 1 extra garbage",
		"a LIKE 'x!' ESCAPE '!'",
	}
	for _, sel := range bad {
		if _, err := Parse(sel); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sel)
		} else if _, ok := err.(*SyntaxError); !ok {
			// compileLike errors are fmt errors; that is acceptable for
			// pattern problems, but grammar problems must be SyntaxError.
			if !strings.Contains(sel, "ESCAPE") {
				t.Errorf("Parse(%q) error type %T, want *SyntaxError", sel, err)
			}
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("a = ")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Input != "a = " || se.Pos == 0 {
		t.Errorf("SyntaxError fields: %+v", se)
	}
	if !strings.Contains(se.Error(), "offset") {
		t.Errorf("Error() = %q", se.Error())
	}
}

func TestNumberLexing(t *testing.T) {
	attrs := map[string]string{"x": "1200"}
	tests := []struct {
		sel  string
		want bool
	}{
		{"x = 1.2e3", true},
		{"x = 1.2E+3", true},
		{"x = 12e2", true},
		{"x <> 1.2e2", true},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.sel, attrs); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.sel, got, tt.want)
		}
	}
}

func TestSelectorSourceAndString(t *testing.T) {
	src := "type = 'cancer' AND age > 60"
	s := MustParse(src)
	if s.Source() != src {
		t.Errorf("Source = %q", s.Source())
	}
	printed := s.String()
	re, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", printed, err)
	}
	attrs := map[string]string{"type": "cancer", "age": "61"}
	if s.MatchesAttrs(attrs) != re.MatchesAttrs(attrs) {
		t.Error("printed selector evaluates differently")
	}
}

// The paper's example subscription: topic patient_report with content
// filter type=cancer (Listing 1, line 1).
func TestPaperListing1Selector(t *testing.T) {
	s := MustParse("type = 'cancer'")
	if !s.MatchesAttrs(map[string]string{"type": "cancer", "patient_id": "1"}) {
		t.Error("listing 1 selector rejected matching event")
	}
	if s.MatchesAttrs(map[string]string{"type": "screening"}) {
		t.Error("listing 1 selector accepted non-matching event")
	}
}
