// Test cases for the noretain analyzer.
package a

import (
	"safeweb/internal/broker"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/stomp"
)

type sink struct {
	view   stomp.FrameView
	hdr    *stomp.HeaderView
	cache  *event.DecodeCache
	labels *event.LabelCache
	ctx    *engine.Context
	ev     *event.Event
}

var globalView stomp.FrameView

var globalCache *event.DecodeCache

func storeViewField(s *sink, v stomp.FrameView) {
	s.view = v // want `confined value stored to struct field view`
}

func storeHeaderPtr(s *sink, h *stomp.HeaderView) {
	s.hdr = h // want `confined value stored to struct field hdr`
}

func storeGlobalView(v stomp.FrameView) {
	globalView = v // want `confined value stored to package-level variable globalView`
}

func storeGlobalCache(c *event.DecodeCache) {
	globalCache = c // want `confined value stored to package-level variable globalCache`
}

func sendCache(ch chan *event.DecodeCache, c *event.DecodeCache) {
	ch <- c // want `confined value sent on a channel`
}

func goClosureCapture(ctx *engine.Context) {
	go func() {
		useContext(ctx) // want `confined value captured by a go closure`
	}()
}

func goArgHandoff(c *event.LabelCache) {
	go consumeLabels(c) // want `confined value passed to a goroutine`
}

func useContext(ctx *engine.Context)    {}
func consumeLabels(c *event.LabelCache) {}

type owner struct{ cache event.DecodeCache }

// A value copy of a cache is ownership, not retention: only pointer
// escapes alias the confined goroutine's table.
func storeCacheValue(o *owner, c event.DecodeCache) {
	o.cache = c // ok: value copy, caller owns it
}

// Locals die with the frame.
func localOnly(v stomp.FrameView) {
	local := v
	_ = local
}

// A goroutine parameter shadows the capture: passing a copy of a view by
// explicit argument is still flagged, but plain ints and events are not.
func goUnrelated(n int) {
	go func(m int) { _ = m }(n) // ok: nothing confined
}

func suppressedStore(s *sink, v stomp.FrameView) {
	//lint:ignore noretain decoder is quiesced during handshake, view cannot be reused
	s.view = v
}

func retainDeliveredEvent(b *broker.Broker, s *sink) {
	b.Subscribe("t", func(ev *event.Event) {
		s.ev = ev // want `pooled callback value stored to struct field ev`
		cp := ev.Clone()
		s.ev = cp // ok: clones outlive the delivery
	})
}

func sendDeliveredEvent(b *broker.Broker, ch chan *event.Event) {
	b.Subscribe("t", func(ev *event.Event) {
		ch <- ev // want `pooled callback value sent on a channel`
	})
}

func goDeliveredEvent(b *broker.Broker) {
	b.Subscribe("t", func(ev *event.Event) {
		go func() {
			_ = ev.Get("k") // want `confined value captured by a go closure: a delivered event is pooled`
		}()
	})
}

func retainEngineContext(ic *engine.InitContext, s *sink) {
	ic.Subscribe("t", func(ctx *engine.Context, ev *event.Event) error {
		s.ctx = ctx // want `confined value stored to struct field ctx: a pooled Context is reset per event`
		return nil
	})
}

func engineCallbackClean(ic *engine.InitContext) {
	ic.Subscribe("t", func(ctx *engine.Context, ev *event.Event) error {
		return ctx.Publish("out", nil, ev.Body) // ok: used within the delivery
	})
}

func suppressedRetain(b *broker.Broker, s *sink) {
	b.Subscribe("t", func(ev *event.Event) {
		//lint:ignore noretain subscriber owns the event, pool is bypassed in this test rig
		s.ev = ev
	})
}
