package label

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Policy is the data-flow policy specification shared by the event
// processing engine (unit privileges) and the web frontend (user
// privileges). The paper assigns privileges to units and requests "through
// a policy specification file" (§4.1); Policy is the in-memory form and
// LoadPolicy reads the JSON file format.
//
// Policy is safe for concurrent use; the engine reads it on every
// subscription and publish, and deployments may reload it at runtime.
//
// Every mutation bumps a generation counter. Hot paths (the broker's
// per-subscription clearance cache) snapshot privileges once and re-read
// them only when the generation moves, so steady-state delivery never
// takes the policy lock.
type Policy struct {
	mu         sync.RWMutex
	principals map[string]*principalEntry
	gen        atomic.Uint64
}

// Generation returns a counter that increases on every policy mutation.
// Callers may cache the result of PrivilegesOf and treat it as fresh while
// the generation is unchanged.
func (p *Policy) Generation() uint64 { return p.gen.Load() }

type principalEntry struct {
	privileged bool
	privs      *Privileges
}

// NewPolicy returns an empty policy.
func NewPolicy() *Policy {
	return &Policy{principals: make(map[string]*principalEntry)}
}

// policyFile is the on-disk JSON schema.
type policyFile struct {
	Principals map[string]policyPrincipal `json:"principals"`
}

type policyPrincipal struct {
	// Privileged marks backend units that run outside the IFC jail
	// (paper §4.3): they may perform I/O and implicitly declassify any
	// event they are cleared to receive.
	Privileged bool `json:"privileged,omitempty"`
	// Grants map privilege names ("clearance", "declassify", "endorse",
	// "clearlow") to label patterns.
	Clearance  []string `json:"clearance,omitempty"`
	Declassify []string `json:"declassify,omitempty"`
	Endorse    []string `json:"endorse,omitempty"`
	ClearLow   []string `json:"clearlow,omitempty"`
}

// LoadPolicy reads a JSON policy file from disk.
func LoadPolicy(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("label: open policy: %w", err)
	}
	defer f.Close()
	return ReadPolicy(f)
}

// ReadPolicy parses a JSON policy document.
func ReadPolicy(r io.Reader) (*Policy, error) {
	var file policyFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("label: parse policy: %w", err)
	}
	p := NewPolicy()
	for name, entry := range file.Principals {
		privs := NewPrivileges()
		for priv, pats := range map[Privilege][]string{
			Clearance:  entry.Clearance,
			Declassify: entry.Declassify,
			Endorse:    entry.Endorse,
			ClearLow:   entry.ClearLow,
		} {
			for _, pat := range pats {
				parsed, err := ParsePattern(pat)
				if err != nil {
					return nil, fmt.Errorf("label: policy principal %q: %w", name, err)
				}
				privs.Grant(priv, parsed)
			}
		}
		p.SetPrincipal(name, privs, entry.Privileged)
	}
	return p, nil
}

// WriteTo serialises the policy as its JSON file format.
func (p *Policy) WriteTo(w io.Writer) (int64, error) {
	p.mu.RLock()
	file := policyFile{Principals: make(map[string]policyPrincipal, len(p.principals))}
	for name, entry := range p.principals {
		pp := policyPrincipal{Privileged: entry.privileged}
		for _, pat := range entry.privs.Patterns(Clearance) {
			pp.Clearance = append(pp.Clearance, pat.String())
		}
		for _, pat := range entry.privs.Patterns(Declassify) {
			pp.Declassify = append(pp.Declassify, pat.String())
		}
		for _, pat := range entry.privs.Patterns(Endorse) {
			pp.Endorse = append(pp.Endorse, pat.String())
		}
		for _, pat := range entry.privs.Patterns(ClearLow) {
			pp.ClearLow = append(pp.ClearLow, pat.String())
		}
		sort.Strings(pp.Clearance)
		sort.Strings(pp.Declassify)
		sort.Strings(pp.Endorse)
		sort.Strings(pp.ClearLow)
		file.Principals[name] = pp
	}
	p.mu.RUnlock()

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("label: encode policy: %w", err)
	}
	n, err := w.Write(append(data, '\n'))
	return int64(n), err
}

// SetPrincipal installs or replaces the privileges of a principal.
func (p *Policy) SetPrincipal(name string, privs *Privileges, privileged bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.principals[name] = &principalEntry{privileged: privileged, privs: privs.Clone()}
	p.gen.Add(1)
}

// RemovePrincipal deletes a principal from the policy.
func (p *Policy) RemovePrincipal(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.principals, name)
	p.gen.Add(1)
}

// PrivilegesOf returns a copy of the privileges held by the named
// principal. Unknown principals hold no privileges.
func (p *Policy) PrivilegesOf(name string) *Privileges {
	p.mu.RLock()
	defer p.mu.RUnlock()
	entry, ok := p.principals[name]
	if !ok {
		return NewPrivileges()
	}
	return entry.privs.Clone()
}

// IsPrivileged reports whether the named principal is marked as a
// privileged unit (runs outside the IFC jail).
func (p *Policy) IsPrivileged(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	entry, ok := p.principals[name]
	return ok && entry.privileged
}

// Principals returns the sorted names of all principals in the policy.
func (p *Policy) Principals() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.principals))
	for name := range p.principals {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Grant adds a single privilege grant to a principal, creating the
// principal if needed. It is used by label managers that delegate
// privileges at runtime (paper §4.1 mentions dynamic delegation as an
// extension of the static policy file).
func (p *Policy) Grant(principal string, priv Privilege, pat Pattern) {
	p.mu.Lock()
	defer p.mu.Unlock()
	entry, ok := p.principals[principal]
	if !ok {
		entry = &principalEntry{privs: NewPrivileges()}
		p.principals[principal] = entry
	}
	entry.privs.Grant(priv, pat)
	p.gen.Add(1)
}

// Revoke removes every grant of exactly the given privilege/pattern pair
// from the principal. It reports whether anything was removed. Revocation
// is pattern-exact: revoking "label:conf:x/*" does not touch a separate
// grant of "label:conf:x/y".
func (p *Policy) Revoke(principal string, priv Privilege, pat Pattern) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	entry, ok := p.principals[principal]
	if !ok {
		return false
	}
	removed := entry.privs.revoke(priv, pat)
	if removed {
		p.gen.Add(1)
	}
	return removed
}
