// Package docstore implements SafeWeb's application database: a
// CouchDB-style document store (paper §5.1) holding the labelled result
// records produced by the event-processing backend and read by the web
// frontend.
//
// Like the deployment in Fig. 4, a store supports: labelled JSON documents
// with revision-checked updates, named map views (the frontend's
// "Records.by_mid(:key => mid)" query from Listing 2), a monotonic changes
// feed, one-way push replication between instances (Intranet → DMZ), and a
// read-only mode for the DMZ replica so the web frontend cannot modify
// application data (security requirement S1).
package docstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"safeweb/internal/label"
)

// Common errors.
var (
	// ErrNotFound is returned for missing or deleted documents.
	ErrNotFound = errors.New("docstore: document not found")
	// ErrConflict is returned when the supplied revision does not match
	// the current revision.
	ErrConflict = errors.New("docstore: revision conflict")
	// ErrReadOnly is returned for writes to a read-only replica.
	ErrReadOnly = errors.New("docstore: store is read-only")
	// ErrNoView is returned for queries against unregistered views.
	ErrNoView = errors.New("docstore: no such view")
)

// Document is a stored document. Fields are immutable once returned;
// callers receive copies.
type Document struct {
	// ID is the document id.
	ID string `json:"_id"`
	// Rev is the revision, "N-hash".
	Rev string `json:"_rev"`
	// Seq is the store-local change sequence of this revision.
	Seq uint64 `json:"_seq"`
	// Deleted marks a tombstone (kept for replication).
	Deleted bool `json:"_deleted,omitempty"`
	// Data is the document body (JSON object).
	Data json.RawMessage `json:"data,omitempty"`
	// Labels is the document's security label set, stored alongside the
	// data exactly as the backend's storage unit wrote it.
	Labels label.Set `json:"labels,omitempty"`
}

func (d *Document) clone() *Document {
	out := *d
	if d.Data != nil {
		out.Data = append(json.RawMessage(nil), d.Data...)
	}
	return &out
}

// ViewFunc maps a document to zero or more view keys (a CouchDB map
// function restricted to key emission, which is all SafeWeb needs).
type ViewFunc func(doc *Document) []string

// Options configure a store.
type Options struct {
	// ReadOnly rejects all writes through Put/Delete. Replication
	// deliveries bypass it: the DMZ replica is read-only towards the
	// frontend yet receives pushed updates from the Intranet instance.
	ReadOnly bool
}

// Store is one database instance. It is safe for concurrent use.
type Store struct {
	name string
	opts Options

	mu    sync.RWMutex
	docs  map[string]*Document
	seq   uint64
	views map[string]ViewFunc
}

// New creates an empty store with the given name.
func New(name string, opts Options) *Store {
	return &Store{
		name:  name,
		opts:  opts,
		docs:  make(map[string]*Document),
		views: make(map[string]ViewFunc),
	}
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// ReadOnly reports whether the store rejects direct writes.
func (s *Store) ReadOnly() bool { return s.opts.ReadOnly }

// revFor computes the next revision string from a revision counter and
// content hash, CouchDB-style.
func revFor(prevRev string, data []byte, deleted bool) string {
	n := 0
	if prevRev != "" {
		if idx := strings.IndexByte(prevRev, '-'); idx > 0 {
			n, _ = strconv.Atoi(prevRev[:idx])
		}
	}
	h := sha256.Sum256(append(data, byte(btoi(deleted))))
	return fmt.Sprintf("%d-%s", n+1, hex.EncodeToString(h[:8]))
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Put creates or updates a document. For updates, rev must equal the
// current revision; pass "" for creation. data is marshalled to JSON; it
// may be a json.RawMessage to store pre-encoded bodies.
func (s *Store) Put(id string, data any, labels label.Set, rev string) (*Document, error) {
	if s.opts.ReadOnly {
		return nil, fmt.Errorf("%w: %s", ErrReadOnly, s.name)
	}
	return s.put(id, data, labels, rev)
}

func (s *Store) put(id string, data any, labels label.Set, rev string) (*Document, error) {
	if id == "" {
		return nil, errors.New("docstore: empty document id")
	}
	raw, err := toRaw(data)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	existing := s.docs[id]
	switch {
	case existing == nil || existing.Deleted:
		if rev != "" && (existing == nil || rev != existing.Rev) {
			return nil, fmt.Errorf("%w: %s has no revision %q", ErrConflict, id, rev)
		}
	case rev != existing.Rev:
		return nil, fmt.Errorf("%w: %s is at %s, not %q", ErrConflict, id, existing.Rev, rev)
	}

	prevRev := ""
	if existing != nil {
		prevRev = existing.Rev
	}
	s.seq++
	doc := &Document{
		ID:     id,
		Rev:    revFor(prevRev, raw, false),
		Seq:    s.seq,
		Data:   raw,
		Labels: labels.Clone(),
	}
	s.docs[id] = doc
	return doc.clone(), nil
}

func toRaw(data any) (json.RawMessage, error) {
	switch t := data.(type) {
	case json.RawMessage:
		if !json.Valid(t) {
			return nil, errors.New("docstore: invalid raw JSON body")
		}
		return append(json.RawMessage(nil), t...), nil
	case []byte:
		if !json.Valid(t) {
			return nil, errors.New("docstore: invalid raw JSON body")
		}
		return append(json.RawMessage(nil), t...), nil
	default:
		raw, err := json.Marshal(data)
		if err != nil {
			return nil, fmt.Errorf("docstore: encode body: %w", err)
		}
		return raw, nil
	}
}

// Get returns the current revision of a document.
func (s *Store) Get(id string) (*Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	doc := s.docs[id]
	if doc == nil || doc.Deleted {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return doc.clone(), nil
}

// Delete tombstones a document at the given revision.
func (s *Store) Delete(id, rev string) error {
	if s.opts.ReadOnly {
		return fmt.Errorf("%w: %s", ErrReadOnly, s.name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := s.docs[id]
	if doc == nil || doc.Deleted {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if rev != doc.Rev {
		return fmt.Errorf("%w: %s is at %s, not %q", ErrConflict, id, doc.Rev, rev)
	}
	s.seq++
	s.docs[id] = &Document{
		ID:      id,
		Rev:     revFor(doc.Rev, nil, true),
		Seq:     s.seq,
		Deleted: true,
		Labels:  doc.Labels,
	}
	return nil
}

// AllIDs returns the ids of all live documents, sorted.
func (s *Store) AllIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for id, doc := range s.docs {
		if !doc.Deleted {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, doc := range s.docs {
		if !doc.Deleted {
			n++
		}
	}
	return n
}

// Seq returns the store's current change sequence.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// RegisterView installs a named map view, e.g. "by_mid".
func (s *Store) RegisterView(name string, fn ViewFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.views[name] = fn
}

// Query evaluates a view and returns the live documents emitting the given
// key, in id order. This is the frontend's Listing 2 query:
// Records.by_mid(:key => params[:mid]).
func (s *Store) Query(view, key string) ([]*Document, error) {
	s.mu.RLock()
	fn := s.views[view]
	if fn == nil {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoView, view)
	}
	var out []*Document
	for _, doc := range s.docs {
		if doc.Deleted {
			continue
		}
		for _, k := range fn(doc) {
			if k == key {
				out = append(out, doc.clone())
				break
			}
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Change is one changes-feed entry.
type Change struct {
	// Seq is the change sequence.
	Seq uint64 `json:"seq"`
	// Doc is the document at that revision.
	Doc *Document `json:"doc"`
}

// Changes returns all changes with sequence greater than since, in
// sequence order. Only the latest revision of each document appears, as in
// CouchDB's default feed.
func (s *Store) Changes(since uint64) []Change {
	s.mu.RLock()
	var out []Change
	for _, doc := range s.docs {
		if doc.Seq > since {
			out = append(out, Change{Seq: doc.Seq, Doc: doc.clone()})
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// applyReplicated installs a replicated document, bypassing the read-only
// gate (replication is the one permitted inbound path to a DMZ replica,
// matching CouchDB push replication through the firewall in Fig. 4). The
// incoming revision wins unconditionally: replication is one-way, so the
// source is authoritative.
func (s *Store) applyReplicated(doc *Document) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	copied := doc.clone()
	copied.Seq = s.seq
	s.docs[copied.ID] = copied
}
