package docstore

import (
	"encoding/json"
	"errors"
	"testing"

	"safeweb/internal/label"
)

var mdt7 = label.Conf("ecric.org.uk/mdt/7")

type record struct {
	MID  string `json:"mid"`
	Name string `json:"name"`
}

func TestPutGetRoundTrip(t *testing.T) {
	s := New("app", Options{})
	doc, err := s.Put("rec-1", record{MID: "7", Name: "Smith"}, label.NewSet(mdt7), "")
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if doc.ID != "rec-1" || doc.Rev == "" || doc.Seq != 1 {
		t.Errorf("doc = %+v", doc)
	}

	got, err := s.Get("rec-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	var back record
	if err := json.Unmarshal(got.Data, &back); err != nil || back.Name != "Smith" {
		t.Errorf("data = %s, err %v", got.Data, err)
	}
	if !got.Labels.Contains(mdt7) {
		t.Errorf("labels = %v", got.Labels)
	}
}

func TestRevisionConflicts(t *testing.T) {
	s := New("app", Options{})
	doc, err := s.Put("d", record{Name: "v1"}, nil, "")
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	// Update without rev: conflict.
	if _, err := s.Put("d", record{Name: "v2"}, nil, ""); !errors.Is(err, ErrConflict) {
		t.Errorf("blind update: %v", err)
	}
	// Update with stale rev: conflict.
	if _, err := s.Put("d", record{Name: "v2"}, nil, "1-bogus"); !errors.Is(err, ErrConflict) {
		t.Errorf("stale update: %v", err)
	}
	// Correct rev succeeds and bumps the revision counter.
	doc2, err := s.Put("d", record{Name: "v2"}, nil, doc.Rev)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if doc2.Rev == doc.Rev || doc2.Rev[:2] != "2-" {
		t.Errorf("rev = %s", doc2.Rev)
	}
}

func TestDelete(t *testing.T) {
	s := New("app", Options{})
	doc, _ := s.Put("d", record{}, nil, "")

	if err := s.Delete("d", "wrong"); !errors.Is(err, ErrConflict) {
		t.Errorf("delete wrong rev: %v", err)
	}
	if err := s.Delete("d", doc.Rev); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("d"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete: %v", err)
	}
	if err := s.Delete("d", doc.Rev); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	// Re-creating a deleted id works with empty rev.
	if _, err := s.Put("d", record{Name: "again"}, nil, ""); err != nil {
		t.Errorf("recreate: %v", err)
	}
}

func TestValidation(t *testing.T) {
	s := New("app", Options{})
	if _, err := s.Put("", record{}, nil, ""); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := s.Put("d", json.RawMessage("{not json"), nil, ""); err == nil {
		t.Error("invalid raw JSON accepted")
	}
	if _, err := s.Put("d", make(chan int), nil, ""); err == nil {
		t.Error("unmarshalable body accepted")
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing: %v", err)
	}
}

func TestReadOnly(t *testing.T) {
	s := New("dmz", Options{ReadOnly: true})
	if !s.ReadOnly() {
		t.Error("ReadOnly() = false")
	}
	if _, err := s.Put("d", record{}, nil, ""); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put: %v", err)
	}
	if err := s.Delete("d", "1-x"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Delete: %v", err)
	}
	// Replication still lands (S1: one-way inbound flow only).
	src := New("intranet", Options{})
	if _, err := src.Put("d", record{Name: "pushed"}, label.NewSet(mdt7), ""); err != nil {
		t.Fatalf("src Put: %v", err)
	}
	if _, n := ReplicateOnce(src, s, 0); n != 1 {
		t.Fatalf("ReplicateOnce pushed %d", n)
	}
	got, err := s.Get("d")
	if err != nil {
		t.Fatalf("Get replicated: %v", err)
	}
	if !got.Labels.Contains(mdt7) {
		t.Error("labels lost in replication")
	}
}

func TestViews(t *testing.T) {
	s := New("app", Options{})
	s.RegisterView("by_mid", func(doc *Document) []string {
		var r record
		if err := json.Unmarshal(doc.Data, &r); err != nil {
			return nil
		}
		return []string{r.MID}
	})
	mustPut(t, s, "r1", record{MID: "7", Name: "A"})
	mustPut(t, s, "r2", record{MID: "8", Name: "B"})
	mustPut(t, s, "r3", record{MID: "7", Name: "C"})

	docs, err := s.Query("by_mid", "7")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(docs) != 2 || docs[0].ID != "r1" || docs[1].ID != "r3" {
		t.Errorf("docs = %v", ids(docs))
	}
	if _, err := s.Query("nope", "7"); !errors.Is(err, ErrNoView) {
		t.Errorf("unknown view: %v", err)
	}

	// Deleted docs leave the view.
	doc, _ := s.Get("r1")
	if err := s.Delete("r1", doc.Rev); err != nil {
		t.Fatal(err)
	}
	docs, _ = s.Query("by_mid", "7")
	if len(docs) != 1 || docs[0].ID != "r3" {
		t.Errorf("after delete: %v", ids(docs))
	}
}

func TestChangesFeed(t *testing.T) {
	s := New("app", Options{})
	mustPut(t, s, "a", record{Name: "1"})
	mustPut(t, s, "b", record{Name: "2"})

	all := s.Changes(0)
	if len(all) != 2 || all[0].Seq >= all[1].Seq {
		t.Fatalf("changes = %+v", all)
	}
	since := all[0].Seq
	rest := s.Changes(since)
	if len(rest) != 1 || rest[0].Doc.ID != "b" {
		t.Errorf("changes since %d = %+v", since, rest)
	}

	// Updating a doc re-surfaces only its latest revision.
	doc, _ := s.Get("a")
	if _, err := s.Put("a", record{Name: "1v2"}, nil, doc.Rev); err != nil {
		t.Fatal(err)
	}
	all = s.Changes(0)
	if len(all) != 2 {
		t.Errorf("feed has %d entries, want 2 (latest revs only)", len(all))
	}
}

func TestReplicationConvergence(t *testing.T) {
	src := New("intranet", Options{})
	dst := New("dmz", Options{ReadOnly: true})

	mustPut(t, src, "a", record{Name: "A"})
	mustPut(t, src, "b", record{Name: "B"})
	cp, n := ReplicateOnce(src, dst, 0)
	if n != 2 || dst.Len() != 2 {
		t.Fatalf("first push: n=%d len=%d", n, dst.Len())
	}

	// Incremental: only new changes push.
	doc, _ := src.Get("a")
	if _, err := src.Put("a", record{Name: "A2"}, nil, doc.Rev); err != nil {
		t.Fatal(err)
	}
	mustPut(t, src, "c", record{Name: "C"})
	cp2, n2 := ReplicateOnce(src, dst, cp)
	if n2 != 2 {
		t.Errorf("incremental push n=%d, want 2", n2)
	}
	if cp2 <= cp {
		t.Errorf("checkpoint did not advance: %d -> %d", cp, cp2)
	}

	// Deletions replicate as tombstones.
	docC, _ := src.Get("c")
	if err := src.Delete("c", docC.Rev); err != nil {
		t.Fatal(err)
	}
	_, n3 := ReplicateOnce(src, dst, cp2)
	if n3 != 1 {
		t.Errorf("tombstone push n=%d", n3)
	}
	if _, err := dst.Get("c"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted doc still visible on replica: %v", err)
	}

	// Contents converge.
	for _, id := range []string{"a", "b"} {
		sdoc, _ := src.Get(id)
		ddoc, err := dst.Get(id)
		if err != nil {
			t.Fatalf("replica missing %s: %v", id, err)
		}
		if string(sdoc.Data) != string(ddoc.Data) || sdoc.Rev != ddoc.Rev {
			t.Errorf("%s diverged: %s/%s vs %s/%s", id, sdoc.Rev, sdoc.Data, ddoc.Rev, ddoc.Data)
		}
	}
}

func TestReplicatorLoop(t *testing.T) {
	src := New("intranet", Options{})
	dst := New("dmz", Options{ReadOnly: true})
	r := NewReplicator(src, dst, 0, t.Logf)
	r.Start()
	defer r.Stop()

	mustPut(t, src, "a", record{Name: "A"})
	// Push synchronously rather than waiting for the ticker.
	r.Push()
	if dst.Len() != 1 {
		t.Errorf("replica len = %d", dst.Len())
	}
	mustPut(t, src, "b", record{Name: "B"})
	r.Stop() // final catch-up push on stop
	if dst.Len() != 2 {
		t.Errorf("replica len after stop = %d", dst.Len())
	}
	if r.Pushed() != 2 {
		t.Errorf("Pushed = %d", r.Pushed())
	}
	r.Stop() // idempotent
}

func TestStopNeverStarted(t *testing.T) {
	r := NewReplicator(New("a", Options{}), New("b", Options{}), 0, t.Logf)
	r.Stop() // no-op
}

func mustPut(t *testing.T, s *Store, id string, v any) *Document {
	t.Helper()
	doc, err := s.Put(id, v, nil, "")
	if err != nil {
		t.Fatalf("Put(%s): %v", id, err)
	}
	return doc
}

func ids(docs []*Document) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.ID
	}
	return out
}
