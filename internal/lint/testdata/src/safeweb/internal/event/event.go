// Package event is a testdata stub mirroring safeweb/internal/event.
package event

func New(topic string, attrs map[string]string) *Event {
	return &Event{Topic: topic, Attrs: attrs}
}

type Event struct {
	Topic string
	Body  []byte
	Attrs map[string]string
}

func (e *Event) Set(k, v string)     { e.Attrs[k] = v }
func (e *Event) Freeze()             {}
func (e *Event) Clone() *Event       { return &Event{Topic: e.Topic} }
func (e *Event) Release()            {}
func (e *Event) Get(k string) string { return e.Attrs[k] }

// DecodeCache is a goroutine-confined memo table in the real package.
type DecodeCache struct{ m map[string]string }

// LabelCache is a goroutine-confined memo table in the real package.
type LabelCache struct{ m map[string]uint64 }
