package faultnet_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"safeweb/internal/faultnet"
)

// pair returns a wrapped/plain TCP connection pair over loopback. TCP
// (rather than net.Pipe) so chunked writes and resets behave as they do
// under the real broker.
func pair(t *testing.T, plan faultnet.Plan) (*faultnet.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	fc, err := faultnet.Dial("tcp", ln.Addr().String(), plan)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatalf("accept: %v", a.err)
	}
	t.Cleanup(func() { fc.Close(); a.c.Close() })
	return fc, a.c
}

func TestChunkedWritesDeliverEverything(t *testing.T) {
	fc, peer := pair(t, faultnet.Plan{WriteChunk: 3})
	msg := []byte("the quick brown fox jumps over the lazy dog")
	go func() {
		if n, err := fc.Write(msg); err != nil || n != len(msg) {
			t.Errorf("Write = %d, %v; want %d, nil", n, err, len(msg))
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q, want %q", got, msg)
	}
}

func TestReadLatencyDelays(t *testing.T) {
	const lat = 30 * time.Millisecond
	fc, peer := pair(t, faultnet.Plan{ReadLatency: lat})
	if _, err := peer.Write([]byte("x")); err != nil {
		t.Fatalf("peer write: %v", err)
	}
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := fc.Read(buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if d := time.Since(start); d < lat {
		t.Errorf("Read returned after %v, want >= %v", d, lat)
	}
}

func TestStallBlocksUntilResume(t *testing.T) {
	fc, peer := pair(t, faultnet.Plan{})
	fc.Stall()
	if _, err := peer.Write([]byte("y")); err != nil {
		t.Fatalf("peer write: %v", err)
	}
	read := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := fc.Read(buf)
		read <- err
	}()
	select {
	case err := <-read:
		t.Fatalf("Read returned (%v) while stalled", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Resume()
	select {
	case err := <-read:
		if err != nil {
			t.Fatalf("Read after Resume: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Read still blocked after Resume")
	}
}

func TestCloseReleasesStalledOps(t *testing.T) {
	fc, _ := pair(t, faultnet.Plan{})
	fc.Stall()
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := fc.Write([]byte("z"))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = fc.Close()
	wg.Wait()
	if err := <-errCh; !errors.Is(err, net.ErrClosed) {
		t.Errorf("stalled Write released with %v, want net.ErrClosed", err)
	}
}

func TestResetSeversMidStream(t *testing.T) {
	fc, peer := pair(t, faultnet.Plan{})
	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if err := fc.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	// The peer must observe the connection failing, not hang.
	_ = peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := peer.Read(buf); err == nil {
		t.Error("peer read succeeded after Reset, want connection error")
	}
}
