// A Policy type with no generation counter: not the analyzer's target.
package other

type Policy struct{ name string }

func (p *Policy) SetName(n string) { p.name = n }
func (p *Policy) Name() string     { return p.name }
