// Package label implements SafeWeb's security labels and privileges.
//
// Labels are URIs of the form
//
//	label:conf:ecric.org.uk/patient/33812769
//	label:int:ecric.org.uk/mdt
//
// and come in two kinds: confidentiality labels, which prevent sensitive
// data from escaping a system boundary, and integrity labels, which prevent
// low-integrity data from entering parts of an application (paper §4.1).
//
// Confidentiality labels are "sticky": every event derived from a labelled
// event carries the union of the sources' confidentiality labels. Integrity
// labels are "fragile": a derived event carries an integrity label only if
// every source carried it (intersection).
//
// Privileges govern what principals may do with labelled data: clearance to
// receive it, declassification to remove a confidentiality label,
// endorsement to add an integrity label, and clearance-to-low-integrity to
// accept data missing an integrity label.
package label

import (
	"errors"
	"fmt"
	"strings"
)

// Kind distinguishes confidentiality labels from integrity labels.
type Kind int

// Label kinds. Confidentiality labels restrict where data may flow to;
// integrity labels restrict where data may have come from.
const (
	Confidentiality Kind = iota + 1
	Integrity
)

// String returns the URI segment used for the kind ("conf" or "int").
func (k Kind) String() string {
	switch k {
	case Confidentiality:
		return "conf"
	case Integrity:
		return "int"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k is a known label kind.
func (k Kind) Valid() bool {
	return k == Confidentiality || k == Integrity
}

const _scheme = "label:"

// ErrInvalidLabel is returned by Parse for strings that are not well-formed
// label URIs.
var ErrInvalidLabel = errors.New("label: invalid label URI")

// Label is a single security label. The zero value is not a valid label;
// construct labels with New or Parse.
//
// Labels are values and are comparable; they can be used as map keys.
type Label struct {
	kind Kind
	// name is the authority/path part of the URI, e.g.
	// "ecric.org.uk/patient/33812769".
	name string
}

// New creates a label of the given kind and name. The name is the
// authority/path portion of the label URI, e.g. "ecric.org.uk/mdt/7".
// It panics if kind is invalid or name is empty: labels are almost always
// constructed from trusted constants or validated input, and a zero-name
// label is a programming error, not a runtime condition.
func New(kind Kind, name string) Label {
	if !kind.Valid() {
		panic(fmt.Sprintf("label: invalid kind %d", int(kind)))
	}
	if name == "" {
		panic("label: empty label name")
	}
	return Label{kind: kind, name: name}
}

// Conf is shorthand for New(Confidentiality, name).
func Conf(name string) Label { return New(Confidentiality, name) }

// Int is shorthand for New(Integrity, name).
func Int(name string) Label { return New(Integrity, name) }

// Parse parses a label URI such as "label:conf:ecric.org.uk/patient/1".
func Parse(s string) (Label, error) {
	rest, ok := strings.CutPrefix(s, _scheme)
	if !ok {
		return Label{}, fmt.Errorf("%w: %q does not start with %q", ErrInvalidLabel, s, _scheme)
	}
	kindStr, name, ok := strings.Cut(rest, ":")
	if !ok {
		return Label{}, fmt.Errorf("%w: %q has no kind separator", ErrInvalidLabel, s)
	}
	var kind Kind
	switch kindStr {
	case "conf":
		kind = Confidentiality
	case "int":
		kind = Integrity
	default:
		return Label{}, fmt.Errorf("%w: unknown kind %q in %q", ErrInvalidLabel, kindStr, s)
	}
	if name == "" {
		return Label{}, fmt.Errorf("%w: empty name in %q", ErrInvalidLabel, s)
	}
	return Label{kind: kind, name: name}, nil
}

// MustParse is like Parse but panics on error. Use it for constant labels in
// policies and tests.
func MustParse(s string) Label {
	l, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return l
}

// Kind returns the label's kind.
func (l Label) Kind() Kind { return l.kind }

// Name returns the authority/path part of the label URI.
func (l Label) Name() string { return l.name }

// IsZero reports whether l is the zero (invalid) label.
func (l Label) IsZero() bool { return l == Label{} }

// String returns the label URI, e.g. "label:conf:ecric.org.uk/mdt".
func (l Label) String() string {
	if l.IsZero() {
		return "label:invalid:"
	}
	return _scheme + l.kind.String() + ":" + l.name
}

// MarshalText implements encoding.TextMarshaler so labels can appear in
// JSON policy files and document metadata.
func (l Label) MarshalText() ([]byte, error) {
	if l.IsZero() {
		return nil, fmt.Errorf("%w: cannot marshal zero label", ErrInvalidLabel)
	}
	return []byte(l.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (l *Label) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*l = parsed
	return nil
}
