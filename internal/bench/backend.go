package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"safeweb/internal/core"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// Backend experiment principals.
const (
	benchProducer = "bench-producer"
	benchRelay    = "bench-relay"
	benchSink     = "bench-sink"
)

// benchPolicy builds the policy for the synthetic backend pipeline.
func benchPolicy() *label.Policy {
	p := label.NewPolicy()
	all := label.MustParsePattern("label:conf:bench/*")
	allInt := label.MustParsePattern("label:int:bench/*")
	p.SetPrincipal(benchProducer, label.NewPrivileges().
		Grant(label.Clearance, all).
		Grant(label.Endorse, allInt), true)
	p.SetPrincipal(benchRelay, label.NewPrivileges().
		Grant(label.Clearance, all).
		Grant(label.Endorse, allInt), false)
	p.SetPrincipal(benchSink, label.NewPrivileges().
		Grant(label.Clearance, all).
		Grant(label.Endorse, allInt), true)
	return p
}

// benchLabels returns the representative label set attached in tracking
// mode: the paper's deployment labels every event with its MDT label plus
// the application integrity label; we add a patient label for the finer
// granularity case.
func benchLabels() []label.Label {
	return []label.Label{
		label.Conf("bench/mdt/7"),
		label.Conf("bench/patient/33812769"),
		label.Int("bench/app"),
	}
}

// benchBody is a representative event payload (a small case record).
var benchBody = []byte(`{"patient_id":"33812769","name":"John Smith","sites":["C50.9"],"max_stage":2,"completeness":0.87}`)

// processingWork is the relay's business-logic model: a deterministic
// computation over the record (survival-statistics flavoured) sized so
// that event processing dominates the per-event cost, as in Fig. 5 where
// processing (51 ms) outweighs serialisation (20 ms) and label management
// (13 ms).
func processingWork(seed string) float64 {
	acc := 1.0
	for _, c := range seed {
		acc += float64(c)
	}
	for i := 0; i < 12000; i++ {
		acc = acc*1.0000001 + float64(i%97)*0.5
		if acc > 1e12 {
			acc /= 1e6
		}
	}
	return acc
}

// backendPipeline is the producer→relay→sink deployment used by E3, E5
// and E6. done receives one signal per event that reaches the sink.
type backendPipeline struct {
	mw   *core.Middleware
	done chan struct{}
}

// newBackendPipeline assembles the synthetic pipeline. network selects the
// STOMP network broker (the paper's deployment shape) or the in-process
// broker.
func newBackendPipeline(network bool) (*backendPipeline, error) {
	mw, err := core.New(core.Config{Policy: benchPolicy(), NetworkBroker: network})
	if err != nil {
		return nil, err
	}
	p := &backendPipeline{mw: mw, done: make(chan struct{}, 4096)}

	// The relay mimics the aggregator: decode the payload, run the
	// business-logic work model, update a labelled accumulator, re-encode,
	// publish. The work model calibrates the "event processing" share of
	// the Fig. 5 break-down — the paper's 51 ms is dominated by Ruby
	// application logic, and without representative work the pipeline
	// overheads would be measured against an empty callback.
	err = mw.AddUnit(&engine.FuncUnit{UnitName: benchRelay, InitFunc: func(ctx *engine.InitContext) error {
		return ctx.Subscribe("/bench/stage1", "", func(ctx *engine.Context, ev *event.Event) error {
			var rec map[string]any
			if err := json.Unmarshal(ev.Body, &rec); err != nil {
				return err
			}
			rec["reports"] = 1
			rec["score"] = processingWork(ev.Attr("seq"))
			if v, ok := ctx.Get("count"); ok {
				rec["prev"] = v
			}
			if err := ctx.Set("count", ev.Attr("seq")); err != nil {
				return err
			}
			out, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			return ctx.Publish("/bench/stage2", map[string]string{"seq": ev.Attr("seq")}, out)
		})
	}})
	if err != nil {
		mw.Stop()
		return nil, err
	}
	err = mw.AddUnit(&engine.FuncUnit{UnitName: benchSink, InitFunc: func(ctx *engine.InitContext) error {
		return ctx.Subscribe("/bench/stage2", "", func(ctx *engine.Context, ev *event.Event) error {
			p.done <- struct{}{}
			return nil
		})
	}})
	if err != nil {
		mw.Stop()
		return nil, err
	}
	mw.Start()
	return p, nil
}

func (p *backendPipeline) publish(seq int, tracking bool) error {
	ev := event.New("/bench/stage1", map[string]string{"seq": fmt.Sprint(seq)})
	ev.Body = append([]byte(nil), benchBody...)
	if tracking {
		ev.Labels = label.NewSet(benchLabels()...)
	}
	return p.mw.Broker.Publish(benchProducer, ev)
}

func (p *backendPipeline) stop() { p.mw.Stop() }

// EventLatency runs experiment E3 (§5.3): the mean producer→storage
// latency of individual events through the pipeline, with and without
// label tracking. Events are published one at a time so queueing does not
// mask the per-event cost, as in the paper's measurement of "the average
// latency of individual events from the data producer to the data storage
// unit during the processing of 1000 events".
func EventLatency(w Workload, network bool) (Comparison, error) {
	w = w.withDefaults()
	out := Comparison{
		Name:          "backend event latency",
		PaperBaseline: "73 ms",
		PaperSafeWeb:  "84 ms (+15%)",
	}
	for _, tracking := range []bool{false, true} {
		p, err := newBackendPipeline(network)
		if err != nil {
			return out, err
		}
		// Warm-up.
		for i := 0; i < 50; i++ {
			if err := p.publish(i, tracking); err != nil {
				p.stop()
				return out, err
			}
			<-p.done
		}
		start := time.Now()
		for i := 0; i < w.Requests; i++ {
			if err := p.publish(i, tracking); err != nil {
				p.stop()
				return out, err
			}
			<-p.done
		}
		mean := time.Since(start) / time.Duration(w.Requests)
		p.stop()

		res := LatencyResult{Mode: "baseline", Mean: mean, Operations: w.Requests}
		if tracking {
			res.Mode = "safeweb"
			out.SafeWeb = res
		} else {
			out.Baseline = res
		}
	}
	return out, nil
}

// ThroughputResult is one mode of the E6 throughput experiment.
type ThroughputResult struct {
	Mode            string
	EventsPerSecond float64
	Events          int
	Elapsed         time.Duration
}

// ThroughputComparison pairs the two throughput modes.
type ThroughputComparison struct {
	Baseline, SafeWeb ThroughputResult
	// PaperBaseline and PaperSafeWeb quote §5.3.
	PaperBaseline, PaperSafeWeb string
}

// ChangePercent is the relative throughput change (negative = slowdown).
func (c ThroughputComparison) ChangePercent() float64 {
	if c.Baseline.EventsPerSecond == 0 {
		return 0
	}
	return 100 * (c.SafeWeb.EventsPerSecond - c.Baseline.EventsPerSecond) / c.Baseline.EventsPerSecond
}

// Throughput runs experiment E6 (§5.3): end-to-end event throughput
// between a producer and a consumer at the maximum sustainable rate, with
// and without label tracking. events fixes the batch size per mode; zero
// means 50000.
func Throughput(events int, network bool) (ThroughputComparison, error) {
	if events <= 0 {
		events = 50000
	}
	out := ThroughputComparison{
		PaperBaseline: "4455 events/s",
		PaperSafeWeb:  "3817 events/s (−17%)",
	}
	for _, tracking := range []bool{false, true} {
		p, err := newBackendPipeline(network)
		if err != nil {
			return out, err
		}
		// Producer publishes as fast as the broker accepts; the sink
		// drains. Back-pressure comes from the engine queues.
		start := time.Now()
		pubErr := make(chan error, 1)
		go func() {
			for i := 0; i < events; i++ {
				if err := p.publish(i, tracking); err != nil {
					pubErr <- err
					return
				}
			}
			pubErr <- nil
		}()
		for i := 0; i < events; i++ {
			<-p.done
		}
		elapsed := time.Since(start)
		if err := <-pubErr; err != nil {
			p.stop()
			return out, err
		}
		p.stop()

		res := ThroughputResult{
			Mode:            "baseline",
			Events:          events,
			Elapsed:         elapsed,
			EventsPerSecond: float64(events) / elapsed.Seconds(),
		}
		if tracking {
			res.Mode = "safeweb"
			out.SafeWeb = res
		} else {
			out.Baseline = res
		}
	}
	return out, nil
}

// BackendBreakdown is the Fig. 5 backend decomposition (E5).
type BackendBreakdown struct {
	// Processing is the event-processing (callback) share
	// (paper: 51 ms).
	Processing time.Duration
	// Serialisation is the event (de)serialisation share through the
	// STOMP wire codec (paper: 20 ms).
	Serialisation time.Duration
	// LabelManagement is label (de)serialisation and checking
	// (paper: 13 ms).
	LabelManagement time.Duration
	// Total is the mean per-event latency with tracking on.
	Total time.Duration
}

// MeasureBackendBreakdown runs E5. Processing is measured as the
// label-free pipeline latency; serialisation and label management are
// measured on the exact wire operations the pipeline performs per event
// (two hops: marshal + frame write + frame read + unmarshal each), and
// label management additionally includes the broker's clearance checks.
func MeasureBackendBreakdown(w Workload) (BackendBreakdown, error) {
	w = w.withDefaults()
	var out BackendBreakdown

	cmp, err := EventLatency(w, false)
	if err != nil {
		return out, err
	}
	out.Processing = cmp.Baseline.Mean
	out.Total = cmp.SafeWeb.Mean

	// Serialisation: the per-event wire work of both hops, measured on an
	// unlabelled event so the label header's cost is not double-counted
	// against the label-management phase below.
	ev := event.New("/bench/stage1", map[string]string{"seq": "1"})
	ev.Body = append([]byte(nil), benchBody...)
	const hops = 2
	iters := w.Requests
	start := time.Now()
	for i := 0; i < iters; i++ {
		for h := 0; h < hops; h++ {
			headers, body, err := event.MarshalHeaders(ev)
			if err != nil {
				return out, err
			}
			f := stomp.NewFrame(stomp.CmdSend)
			for k, v := range headers {
				f.SetHeader(k, v)
			}
			f.Body = body
			var buf bytes.Buffer
			if err := stomp.WriteFrame(&buf, f); err != nil {
				return out, err
			}
			back, err := stomp.ReadFrame(bufio.NewReader(&buf))
			if err != nil {
				return out, err
			}
			if _, err := event.UnmarshalHeaders(back.Headers, back.Body); err != nil {
				return out, err
			}
		}
	}
	out.Serialisation = time.Since(start) / time.Duration(iters)

	// Label management: the per-event label work of both hops — label
	// (de)serialisation (String/ParseSet, the wire header), the broker's
	// clearance check, and derivation when the callback republishes.
	privs := benchPolicy().PrivilegesOf(benchRelay)
	labelSet := label.NewSet(benchLabels()...)
	start = time.Now()
	for i := 0; i < iters; i++ {
		for h := 0; h < hops; h++ {
			wire := labelSet.String()
			parsed, err := label.ParseSet(wire)
			if err != nil {
				return out, err
			}
			if !privs.HasAll(label.Clearance, parsed.Confidentiality()) {
				return out, fmt.Errorf("bench: clearance unexpectedly denied")
			}
			_ = label.Derive(parsed, labelSet)
		}
	}
	out.LabelManagement = time.Since(start) / time.Duration(iters)
	return out, nil
}
