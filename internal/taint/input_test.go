package taint

import (
	"strings"
	"testing"

	"safeweb/internal/label"
)

func TestFromUserIsTainted(t *testing.T) {
	s := FromUser(`<script>alert(1)</script>`)
	if !s.IsUserTainted() {
		t.Fatal("FromUser not tainted")
	}
	if NewString("literal").IsUserTainted() {
		t.Error("literal tainted")
	}
}

func TestUserTaintSticky(t *testing.T) {
	user := FromUser("evil")
	cases := map[string]String{
		"concat left":  user.Concat(NewString(" suffix")),
		"concat right": NewString("prefix ").Concat(user),
		"sprintf":      Sprintf("hello %s", user),
		"replace":      NewString("X").Replace("X", user, 1),
		"join":         Join([]String{NewString("a"), user}, ","),
		"upper":        user.ToUpper(),
		"split part":   user.Split("v")[0],
	}
	for name, got := range cases {
		if !got.IsUserTainted() {
			t.Errorf("%s lost user taint", name)
		}
	}
}

func TestSanitizeHTML(t *testing.T) {
	s := FromUser(`<script>alert("x")</script>`).SanitizeHTML()
	if s.IsUserTainted() {
		t.Error("sanitised string still tainted")
	}
	if strings.Contains(s.Raw(), "<script>") {
		t.Errorf("not escaped: %q", s.Raw())
	}
	// Sanitisation keeps confidentiality labels.
	conf := label.Conf("a")
	labelled := FromUser("x").WithLabels(conf).SanitizeHTML()
	if !labelled.Labels().Contains(conf) {
		t.Error("sanitisation dropped confidentiality label")
	}
}

func TestSanitizeSQL(t *testing.T) {
	s := FromUser(`x' OR '1'='1`).SanitizeSQL()
	if s.IsUserTainted() {
		t.Error("still tainted")
	}
	if s.Raw() != `x'' OR ''1''=''1` {
		t.Errorf("escaped = %q", s.Raw())
	}
}

func TestDeclareSanitized(t *testing.T) {
	s := FromUser("33812769").DeclareSanitized()
	if s.IsUserTainted() {
		t.Error("still tainted")
	}
	if s.Raw() != "33812769" {
		t.Errorf("content changed: %q", s.Raw())
	}
}

func TestPublicLabelsStripsMarker(t *testing.T) {
	conf := label.Conf("a")
	s := FromUser("x").WithLabels(conf)
	pub := s.PublicLabels()
	if pub.Contains(UserTaintLabel()) {
		t.Error("marker leaked into public labels")
	}
	if !pub.Contains(conf) {
		t.Error("public labels lost real label")
	}
}

// TestInjectionThroughSelector: the SanitizeSQL transform must defang a
// selector injection — the classic attack the paper's last §4.4 paragraph
// defends against.
func TestInjectionThroughSelector(t *testing.T) {
	malicious := FromUser("cancer' OR type <> '")
	selectorSrc := "type = '" + malicious.SanitizeSQL().Raw() + "'"
	// The doubled quotes keep the whole payload inside one string
	// literal, so the selector matches nothing rather than everything.
	if !strings.Contains(selectorSrc, "''") {
		t.Errorf("selector = %q", selectorSrc)
	}
}
