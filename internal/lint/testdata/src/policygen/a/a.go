// Test cases for the policygen analyzer: a generation-counted Policy
// with classification maps.
package a

import "sync/atomic"

type Policy struct {
	gen atomic.Uint64
	m   map[string]bool
}

var policyMutators = map[string]bool{
	"Grant":      true,
	"Revoke":     true,
	"BadMutator": true,
	"Both":       true,
	"Stale":      true, // want `policyMutators classifies Stale, but Policy has no such method`
}

var policyReaders = map[string]bool{
	"Generation": true,
	"BadReader":  true,
	"Both":       true,
}

func (p *Policy) Grant(k string) { // ok: classified mutator, bumps directly
	p.m[k] = true
	p.gen.Add(1)
}

func (p *Policy) Revoke(k string) { // ok: classified mutator, bumps via helper
	p.remove(k)
}

func (p *Policy) remove(k string) { // unexported: exempt from classification
	delete(p.m, k)
	p.gen.Add(1)
}

func (p *Policy) BadMutator(k string) { // want `Policy.BadMutator is classified as a mutator but never bumps the generation counter`
	p.m[k] = true
}

func (p *Policy) Generation() uint64 { // ok: classified reader, no bump
	return p.gen.Load()
}

func (p *Policy) BadReader() int { // want `Policy.BadReader is classified as a reader but bumps the generation counter`
	p.gen.Add(1)
	return len(p.m)
}

func (p *Policy) Both() {} // want `Policy.Both is classified as both mutator and reader`

func (p *Policy) Unclassified() {} // want `exported Policy method Unclassified is not classified`

//lint:ignore policygen transitional shim, classified in the next migration step
func (p *Policy) LegacyShim() {}
