package label

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		uri  string
		kind Kind
		lbl  string
	}{
		{"patient conf", "label:conf:ecric.org.uk/patient/33812769", Confidentiality, "ecric.org.uk/patient/33812769"},
		{"mdt integrity", "label:int:ecric.org.uk/mdt", Integrity, "ecric.org.uk/mdt"},
		{"short name", "label:conf:x", Confidentiality, "x"},
		{"name with colon", "label:int:host:8080/path", Integrity, "host:8080/path"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l, err := Parse(tt.uri)
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tt.uri, err)
			}
			if l.Kind() != tt.kind {
				t.Errorf("Kind = %v, want %v", l.Kind(), tt.kind)
			}
			if l.Name() != tt.lbl {
				t.Errorf("Name = %q, want %q", l.Name(), tt.lbl)
			}
			if got := l.String(); got != tt.uri {
				t.Errorf("String = %q, want %q", got, tt.uri)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"conf:x",
		"label:",
		"label:conf",
		"label:conf:",
		"label:secret:x",
		"http://example.com",
	}
	for _, uri := range bad {
		if _, err := Parse(uri); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", uri)
		}
	}
}

func TestNewPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("invalid kind", func() { New(Kind(99), "x") })
	assertPanics("empty name", func() { New(Confidentiality, "") })
}

func TestLabelTextMarshalling(t *testing.T) {
	l := Conf("ecric.org.uk/mdt/7")
	text, err := l.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	var back Label
	if err := back.UnmarshalText(text); err != nil {
		t.Fatalf("UnmarshalText: %v", err)
	}
	if back != l {
		t.Errorf("round trip = %v, want %v", back, l)
	}

	var zero Label
	if _, err := zero.MarshalText(); err == nil {
		t.Error("MarshalText of zero label succeeded, want error")
	}
}

func TestKindString(t *testing.T) {
	if Confidentiality.String() != "conf" || Integrity.String() != "int" {
		t.Errorf("kind strings wrong: %v %v", Confidentiality, Integrity)
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Errorf("unknown kind string = %q", Kind(42).String())
	}
}

func TestSetBasics(t *testing.T) {
	a := Conf("a")
	b := Conf("b")
	c := Int("c")

	s := NewSet(a, b)
	if s.Len() != 2 || !s.Contains(a) || !s.Contains(b) || s.Contains(c) {
		t.Fatalf("NewSet wrong contents: %v", s)
	}
	if NewSet().Len() != 0 || !NewSet().IsEmpty() {
		t.Error("empty set not empty")
	}

	with := s.With(c)
	if with.Len() != 3 || s.Len() != 2 {
		t.Error("With mutated receiver or wrong result")
	}
	without := with.Without(a)
	if without.Contains(a) || !without.Contains(b) || with.Len() != 3 {
		t.Error("Without wrong or mutated receiver")
	}
}

func TestSetOperations(t *testing.T) {
	a, b, c := Conf("a"), Conf("b"), Conf("c")
	s1 := NewSet(a, b)
	s2 := NewSet(b, c)

	if got := s1.Union(s2); got.Len() != 3 {
		t.Errorf("Union = %v", got)
	}
	if got := s1.Intersect(s2); got.Len() != 1 || !got.Contains(b) {
		t.Errorf("Intersect = %v", got)
	}
	if !NewSet(a).SubsetOf(s1) || s1.SubsetOf(NewSet(a)) {
		t.Error("SubsetOf wrong")
	}
	if !s1.Equal(NewSet(b, a)) || s1.Equal(s2) {
		t.Error("Equal wrong")
	}
}

func TestSetKindFiltering(t *testing.T) {
	s := NewSet(Conf("a"), Conf("b"), Int("i"))
	if got := s.Confidentiality(); got.Len() != 2 {
		t.Errorf("Confidentiality = %v", got)
	}
	if got := s.Integrity(); got.Len() != 1 || !got.Contains(Int("i")) {
		t.Errorf("Integrity = %v", got)
	}
}

func TestSetStringAndParse(t *testing.T) {
	s := NewSet(Conf("b"), Conf("a"), Int("z"))
	str := s.String()
	back, err := ParseSet(str)
	if err != nil {
		t.Fatalf("ParseSet(%q): %v", str, err)
	}
	if !back.Equal(s) {
		t.Errorf("round trip = %v, want %v", back, s)
	}

	// Sorted determinism.
	if s.String() != s.Clone().String() {
		t.Error("String not deterministic")
	}

	// Empty and messy inputs.
	if got, err := ParseSet(""); err != nil || got.Len() != 0 {
		t.Errorf("ParseSet(\"\") = %v, %v", got, err)
	}
	if got, err := ParseSet(" label:conf:a , ,label:int:b "); err != nil || got.Len() != 2 {
		t.Errorf("ParseSet messy = %v, %v", got, err)
	}
	if _, err := ParseSet("label:conf:a,nonsense"); err == nil {
		t.Error("ParseSet with bad element succeeded")
	}
}

func TestDeriveStickyConfFragileInt(t *testing.T) {
	p1 := Conf("patient/1")
	p2 := Conf("patient/2")
	mdtInt := Int("mdt")
	otherInt := Int("other")

	src1 := NewSet(p1, mdtInt)
	src2 := NewSet(p2, mdtInt, otherInt)

	derived := Derive(src1, src2)
	// Confidentiality is sticky: both patient labels present.
	if !derived.Contains(p1) || !derived.Contains(p2) {
		t.Errorf("conf labels not sticky: %v", derived)
	}
	// Integrity is fragile: only the common label survives.
	if !derived.Contains(mdtInt) {
		t.Errorf("common integrity label lost: %v", derived)
	}
	if derived.Contains(otherInt) {
		t.Errorf("non-common integrity label kept: %v", derived)
	}

	if got := Derive(); got.Len() != 0 {
		t.Errorf("Derive() = %v, want empty", got)
	}
	if got := Derive(src1); !got.Equal(src1) {
		t.Errorf("Derive(one) = %v, want %v", got, src1)
	}
}
