package broker

import (
	"crypto/tls"
	"fmt"
	"log"
	"sync"

	"safeweb/internal/event"
	"safeweb/internal/stomp"
)

// ServerConfig configures the STOMP network front of a broker.
type ServerConfig struct {
	// Authenticate validates CONNECT credentials; nil accepts everyone
	// (deployments inside the Intranet zone rely on network partitioning,
	// paper Fig. 4; DMZ-facing brokers must set this).
	Authenticate stomp.Authenticator
	// TLS enables transport security ("extended with SSL support at the
	// transport layer", §4.2).
	TLS *tls.Config
	// Logf logs; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Server exposes a Broker over STOMP. Logins name the policy principal of
// the connection; SUBSCRIBE and SEND frames are translated to broker
// operations with label semantics preserved.
type Server struct {
	broker *Broker
	stomp  *stomp.Server

	mu       sync.Mutex
	sessions map[uint64]*serverSession
}

type serverSession struct {
	sess *stomp.Session
	// subs maps the client-chosen subscription id to the broker
	// subscription.
	subs map[string]*Subscription

	msgSeq uint64
}

// NewServer starts a STOMP front for the broker on addr.
func NewServer(addr string, b *Broker, cfg ServerConfig) (*Server, error) {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	srv := &Server{
		broker:   b,
		sessions: make(map[uint64]*serverSession),
	}
	st, err := stomp.NewServer(addr, stomp.ServerConfig{
		Handler:      srv,
		Authenticate: cfg.Authenticate,
		TLS:          cfg.TLS,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	srv.stomp = st
	return srv, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.stomp.Addr() }

// Close shuts down the network front (the broker itself stays open).
func (s *Server) Close() error { return s.stomp.Close() }

// OnConnect implements stomp.SessionHandler.
func (s *Server) OnConnect(sess *stomp.Session, login string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[sess.ID()] = &serverSession{
		sess: sess,
		subs: make(map[string]*Subscription),
	}
	return nil
}

// OnDisconnect implements stomp.SessionHandler.
func (s *Server) OnDisconnect(sess *stomp.Session) {
	s.mu.Lock()
	ss := s.sessions[sess.ID()]
	delete(s.sessions, sess.ID())
	s.mu.Unlock()
	if ss == nil {
		return
	}
	for _, sub := range ss.subs {
		s.broker.Unsubscribe(sub)
	}
}

// OnFrame implements stomp.SessionHandler.
func (s *Server) OnFrame(sess *stomp.Session, f *stomp.Frame) error {
	s.mu.Lock()
	ss := s.sessions[sess.ID()]
	s.mu.Unlock()
	if ss == nil {
		return fmt.Errorf("broker: no session state for %d", sess.ID())
	}

	switch f.Command {
	case stomp.CmdSend:
		ev, err := event.UnmarshalHeaders(f.Headers, f.Body)
		if err != nil {
			return err
		}
		return s.broker.Publish(sess.Login(), ev)

	case stomp.CmdSubscribe:
		clientID := f.Header(stomp.HdrID)
		if clientID == "" {
			return fmt.Errorf("broker: SUBSCRIBE without id header")
		}
		topic := f.Header(stomp.HdrDestination)
		sel := f.Header(stomp.HdrSelector)
		sub, err := s.broker.Subscribe(sess.Login(), topic, sel, func(ev *event.Event) {
			s.deliver(ss, clientID, ev)
		})
		if err != nil {
			return err
		}
		s.mu.Lock()
		ss.subs[clientID] = sub
		s.mu.Unlock()
		return nil

	case stomp.CmdUnsubscribe:
		clientID := f.Header(stomp.HdrID)
		s.mu.Lock()
		sub := ss.subs[clientID]
		delete(ss.subs, clientID)
		s.mu.Unlock()
		s.broker.Unsubscribe(sub)
		return nil

	case stomp.CmdAck, stomp.CmdNack, stomp.CmdBegin, stomp.CmdCommit, stomp.CmdAbort:
		// Auto-ack, no transactions: accepted and ignored.
		return nil

	default:
		return fmt.Errorf("broker: unsupported command %s", f.Command)
	}
}

// deliver sends a matched event to a session as a MESSAGE frame.
func (s *Server) deliver(ss *serverSession, clientSubID string, ev *event.Event) {
	headers, body, err := event.MarshalHeaders(ev)
	if err != nil {
		return // event was validated at publish; cannot happen in practice
	}
	f := stomp.NewFrame(stomp.CmdMessage)
	for k, v := range headers {
		f.SetHeader(k, v)
	}
	f.SetHeader(stomp.HdrSubscription, clientSubID)
	s.mu.Lock()
	ss.msgSeq++
	seq := ss.msgSeq
	s.mu.Unlock()
	f.SetHeader(stomp.HdrMessageID, fmt.Sprintf("m-%d-%d", ss.sess.ID(), seq))
	f.Body = body
	_ = ss.sess.Send(f) // session teardown races are handled by OnDisconnect
}
