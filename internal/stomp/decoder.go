package stomp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Decoder decodes STOMP frames from a stream. It is the allocation-aware
// counterpart of ReadFrame: the line buffer and the header scratch slices
// are reused across frames, and each frame's header map is allocated
// right-sized once the header block has been scanned. A Decoder is not
// safe for concurrent use; each connection read loop owns one.
type Decoder struct {
	r    *bufio.Reader
	line []byte
	keys []string
	vals []string
}

// NewDecoder wraps r in a Decoder; an existing *bufio.Reader is used
// directly rather than double-buffered.
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 32*1024)
	}
	return &Decoder{r: br}
}

// Decode reads one frame. It skips heart-beat newlines between frames and
// returns io.EOF at a clean end of stream.
func (d *Decoder) Decode() (*Frame, error) {
	// Skip inter-frame EOLs (heart-beats).
	var cmd string
	for {
		line, err := d.readLine()
		if err != nil {
			return nil, err
		}
		if len(line) > 0 {
			cmd = string(line)
			break
		}
	}
	switch cmd {
	case CmdConnect, CmdConnected, CmdSend, CmdSubscribe, CmdUnsubscribe,
		CmdMessage, CmdReceipt, CmdError, CmdDisconnect, CmdAck, CmdNack,
		CmdBegin, CmdCommit, CmdAbort:
	default:
		return nil, protoErrorf("unknown command %q", cmd)
	}

	// Scan the header block into reused scratch slices first, so the
	// frame's header map can be allocated with the right size.
	d.keys, d.vals = d.keys[:0], d.vals[:0]
	for i := 0; ; i++ {
		if i > maxHeaders {
			return nil, protoErrorf("too many headers")
		}
		line, err := d.readLine()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if len(line) == 0 {
			break
		}
		sep := bytes.IndexByte(line, ':')
		if sep < 0 {
			return nil, protoErrorf("malformed header line %q", line)
		}
		key, ok := internHeaderKey(line[:sep])
		if !ok {
			key, err = unescapeHeaderBytes(line[:sep])
			if err != nil {
				return nil, err
			}
		}
		val, err := unescapeHeaderBytes(line[sep+1:])
		if err != nil {
			return nil, err
		}
		d.keys = append(d.keys, key)
		d.vals = append(d.vals, val)
	}

	f := &Frame{Command: cmd}
	n := 0
	for _, k := range d.keys {
		if k != HdrContentLength {
			n++
		}
	}
	f.Headers = make(map[string]string, n)
	bodyLen := -1
	for i, k := range d.keys {
		if k == HdrContentLength {
			if bodyLen >= 0 {
				continue // per spec, the first occurrence wins
			}
			v, err := strconv.Atoi(d.vals[i])
			if err != nil || v < 0 {
				return nil, protoErrorf("bad content-length %q", d.vals[i])
			}
			bodyLen = v
			continue
		}
		// Per spec, the first occurrence of a repeated header wins.
		if _, dup := f.Headers[k]; !dup {
			f.Headers[k] = d.vals[i]
		}
	}

	if bodyLen >= 0 {
		if bodyLen > MaxBodyLen {
			return nil, protoErrorf("body of %d bytes exceeds limit", bodyLen)
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(d.r, body); err != nil {
			return nil, fmt.Errorf("stomp: short body: %w", err)
		}
		terminator, err := d.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("stomp: missing frame terminator: %w", err)
		}
		if terminator != 0 {
			return nil, protoErrorf("frame not NUL-terminated after body")
		}
		if bodyLen > 0 {
			f.Body = body
		}
		return f, nil
	}

	// No content-length: body runs to the NUL terminator.
	body, err := d.readBodyToNUL()
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		f.Body = body
	}
	return f, nil
}

// readBodyToNUL reads a terminator-delimited body, enforcing MaxBodyLen —
// a peer streaming garbage without ever sending the NUL must not grow the
// buffer unboundedly.
func (d *Decoder) readBodyToNUL() ([]byte, error) {
	var body []byte
	for {
		chunk, err := d.r.ReadSlice(0)
		body = append(body, chunk...)
		if err == nil {
			body = body[:len(body)-1]
			if len(body) > MaxBodyLen {
				return nil, protoErrorf("body of %d bytes exceeds limit", len(body))
			}
			return body, nil
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			if len(body) > MaxBodyLen {
				return nil, protoErrorf("body of %d+ bytes exceeds limit", len(body))
			}
			continue
		}
		return nil, fmt.Errorf("stomp: unterminated frame: %w", err)
	}
}

// readLine reads a \n-terminated line into the reused line buffer,
// trimming an optional \r, with a length bound. The returned slice is
// valid until the next readLine call.
func (d *Decoder) readLine() ([]byte, error) {
	d.line = d.line[:0]
	for {
		chunk, err := d.r.ReadSlice('\n')
		d.line = append(d.line, chunk...)
		if err == nil {
			break
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			if len(d.line) > MaxHeaderLen {
				return nil, protoErrorf("header line exceeds %d bytes", MaxHeaderLen)
			}
			continue
		}
		if errors.Is(err, io.EOF) {
			if len(d.line) == 0 {
				return nil, io.EOF
			}
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if len(d.line) > MaxHeaderLen {
		return nil, protoErrorf("header line exceeds %d bytes", MaxHeaderLen)
	}
	line := d.line[:len(d.line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// internHeaderKey returns the canonical string for header keys that
// appear on essentially every frame, avoiding a per-header allocation in
// the read loop. The interned names contain no escapable characters, so
// matching the raw wire bytes is exact. The two x-safeweb names are
// SafeWeb's label extension headers (package event); the codec stays
// label-agnostic but may still recognise their spelling.
func internHeaderKey(b []byte) (string, bool) {
	switch string(b) { // compiler optimises away the conversion
	case HdrDestination:
		return HdrDestination, true
	case HdrSubscription:
		return HdrSubscription, true
	case HdrMessageID:
		return HdrMessageID, true
	case HdrContentLength:
		return HdrContentLength, true
	case HdrReceipt:
		return HdrReceipt, true
	case HdrReceiptID:
		return HdrReceiptID, true
	case HdrID:
		return HdrID, true
	case HdrSelector:
		return HdrSelector, true
	case HdrLogin:
		return HdrLogin, true
	case HdrPasscode:
		return HdrPasscode, true
	case HdrSession:
		return HdrSession, true
	case HdrMessage:
		return HdrMessage, true
	case HdrVersion:
		return HdrVersion, true
	case "x-safeweb-labels":
		return "x-safeweb-labels", true
	case "x-safeweb-clearance":
		return "x-safeweb-clearance", true
	}
	return "", false
}

// unescapeHeaderBytes reverses appendEscapedHeader, rejecting undefined
// sequences. The result is an owned string; the input may be a reused
// buffer.
func unescapeHeaderBytes(b []byte) (string, error) {
	if bytes.IndexByte(b, '\\') < 0 {
		return string(b), nil
	}
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(b) {
			return "", protoErrorf("dangling escape in header %q", b)
		}
		switch b[i] {
		case '\\':
			out = append(out, '\\')
		case 'n':
			out = append(out, '\n')
		case 'r':
			out = append(out, '\r')
		case 'c':
			out = append(out, ':')
		default:
			return "", protoErrorf("undefined escape \\%c in header %q", b[i], b)
		}
	}
	return string(out), nil
}

// ReadFrame decodes one frame from r. It skips heart-beat newlines between
// frames and returns io.EOF at a clean end of stream. It is a convenience
// wrapper for callers without a persistent Decoder; connection read loops
// hold one to reuse its scratch buffers across frames.
func ReadFrame(r *bufio.Reader) (*Frame, error) {
	d := Decoder{r: r}
	return d.Decode()
}
