package stomp

import (
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SessionHandler receives the frames of one authenticated client session.
// The server calls OnFrame sequentially for each inbound frame of a
// session; implementations may send frames back at any time via the
// session's Send method, which is safe for concurrent use.
type SessionHandler interface {
	// OnConnect is called after a CONNECT frame is accepted. login is the
	// client's login header (the principal name used for policy lookups).
	OnConnect(sess *Session, login string) error
	// OnFrame is called for each subsequent inbound frame except
	// DISCONNECT.
	OnFrame(sess *Session, f *Frame) error
	// OnDisconnect is called exactly once when the session ends, whether
	// by DISCONNECT, error or connection loss.
	OnDisconnect(sess *Session)
}

// FrameViewHandler is the optional map-free extension of SessionHandler:
// when the configured handler implements it, the server delivers inbound
// frames as decoder views via OnFrameView instead of materialising a
// header map per frame for OnFrame. The view and its headers are invalid
// once OnFrameView returns (the session's next decode reuses the scratch
// buffer); the body's ownership transfers to the handler.
type FrameViewHandler interface {
	// OnFrameView is called sequentially for each inbound frame except
	// CONNECT and DISCONNECT, replacing OnFrame.
	OnFrameView(sess *Session, v *FrameView) error
}

// Session is one server-side client connection. Outbound frames pass
// through a write-coalescing writer goroutine: MESSAGE bursts are encoded
// back-to-back and flushed once per batch, while receipts, errors and
// handshake responses flush immediately.
type Session struct {
	id    uint64
	login string

	conn net.Conn
	fw   *frameWriter

	closed atomic.Bool
}

// ID returns the server-unique session id.
func (s *Session) ID() uint64 { return s.id }

// Login returns the login (principal) name presented at CONNECT.
func (s *Session) Login() string { return s.login }

// Send queues a frame for the client. It is safe for concurrent use; a
// nil return means the frame was accepted for delivery, not that it
// reached the peer (clients needing confirmation request a receipt).
func (s *Session) Send(f *Frame) error {
	if s.closed.Load() {
		return net.ErrClosed
	}
	return s.fw.send(outFrame{f: f, flush: frameNeedsFlush(f)})
}

// SendMessage queues a broadcast MESSAGE frame sharing base's headers and
// body, with the subscription and message-id (idPrefix + decimal seq)
// routing headers supplied per delivery and emitted only on the wire.
// base must be treated as immutable once first passed here; it is never
// cloned. This is the broker's fan-out path: one marshalled frame, N
// zero-copy deliveries, one coalesced flush.
func (s *Session) SendMessage(base *Frame, subscription, idPrefix string, seq uint64) error {
	if s.closed.Load() {
		return net.ErrClosed
	}
	return s.fw.send(outFrame{f: base, sub: subscription, idPrefix: idPrefix, idSeq: seq})
}

// SendMessageImage queues a preencoded broadcast MESSAGE image with the
// subscription and message-id (idPrefix + decimal seq) routing headers
// supplied per delivery and emitted only on the wire. The image is shared
// across all sessions delivering the same published event and is never
// copied or mutated; only the two routing headers are encoded per
// delivery, so fan-out to S sessions costs one marshal instead of S.
//
// A full queue blocks until the writer drains (back-pressure); the
// non-blocking counterparts are TrySendMessageImage and
// SendMessageImageDropOldest.
func (s *Session) SendMessageImage(img *WireImage, subscription, idPrefix string, seq uint64) error {
	if s.closed.Load() {
		return net.ErrClosed
	}
	return s.fw.send(outFrame{img: img, sub: subscription, idPrefix: idPrefix, idSeq: seq})
}

// SendMessageImageOffset is SendMessageImage with the journal offset of a
// replayed durable record spliced in as the delivery-offset header. The
// replay feed paces itself with the consumer's credit window, so the
// blocking enqueue is the back-pressure it wants; there are no
// non-blocking variants.
func (s *Session) SendMessageImageOffset(img *WireImage, subscription, idPrefix string, seq uint64, offset int64) error {
	if s.closed.Load() {
		return net.ErrClosed
	}
	return s.fw.send(outFrame{img: img, sub: subscription, idPrefix: idPrefix, idSeq: seq, offset: offset, hasOffset: true})
}

// TrySendMessageImage is SendMessageImage without the blocking: a full
// queue returns (false, nil) immediately, leaving the overflow decision —
// drop, count, evict — to the caller. The broker's drop-newest and
// disconnect overflow policies ride this path so a session that stopped
// reading never stalls the publishing goroutine.
func (s *Session) TrySendMessageImage(img *WireImage, subscription, idPrefix string, seq uint64) (bool, error) {
	if s.closed.Load() {
		return false, net.ErrClosed
	}
	return s.fw.trySend(outFrame{img: img, sub: subscription, idPrefix: idPrefix, idSeq: seq})
}

// SendMessageImageDropOldest enqueues the delivery like SendMessageImage
// but, when the queue is full, evicts the oldest queued broadcast
// deliveries to make room instead of blocking. Each evicted delivery is
// reported synchronously through ServerConfig.OnQueueEvict with the
// subscription and payload handle it was enqueued with; control frames
// are never evicted (see frameWriter.sendDropOldest for the ordering
// contract). payload is an opaque handle carried alongside the frame for
// that report — the broker passes the delivered event.
func (s *Session) SendMessageImageDropOldest(img *WireImage, subscription, idPrefix string, seq uint64, payload any) error {
	if s.closed.Load() {
		return net.ErrClosed
	}
	return s.fw.sendDropOldest(outFrame{img: img, payload: payload, sub: subscription, idPrefix: idPrefix, idSeq: seq})
}

// QueueDepth returns the number of frames currently queued for the
// session's writer.
func (s *Session) QueueDepth() int { return len(s.fw.ch) }

// QueueCap returns the session's writer queue capacity.
func (s *Session) QueueCap() int { return cap(s.fw.ch) }

// QueueHighWater returns the deepest writer-queue occupancy observed on
// this session — the slow-consumer early-warning signal.
func (s *Session) QueueHighWater() int { return int(s.fw.highWater.Load()) }

// SendError sends an ERROR frame with the given message; the STOMP spec
// requires the connection to close afterwards, which the server does.
func (s *Session) SendError(msg string, body string) {
	f := NewFrame(CmdError)
	f.SetHeader(HdrMessage, msg)
	f.Body = []byte(body)
	_ = s.Send(f) // connection is being torn down; nothing to do on failure
}

// Close terminates the session's connection, draining queued frames (an
// ERROR or RECEIPT enqueued just before Close must reach the peer) under
// the writer's close deadline so a stalled peer cannot wedge teardown.
func (s *Session) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	_ = s.fw.close()
	return s.conn.Close()
}

// Kill severs the session immediately, discarding queued frames — the
// slow-consumer eviction path. Unlike Close it never waits for the writer
// to drain (the peer has demonstrably stopped reading), so it is safe to
// call from a publishing goroutine: the connection is closed first, which
// unblocks a writer wedged mid-flush with an error, and the writer then
// discards the backlog and exits on its own. The session's read loop
// observes the closed connection and runs the ordinary disconnect path.
func (s *Session) Kill() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.conn.Close()
	s.fw.kill()
	return err
}

// Authenticator validates CONNECT credentials. It returns an error to
// reject the connection.
type Authenticator func(login, passcode string) error

// ServerConfig configures a Server.
type ServerConfig struct {
	// Handler receives session frames. Required.
	Handler SessionHandler
	// Authenticate validates CONNECT credentials; nil accepts everyone.
	Authenticate Authenticator
	// TLS, when non-nil, wraps the listener in TLS (the paper extends
	// StompServer "with SSL support at the transport layer", §4.2).
	TLS *tls.Config
	// Logf logs server events; nil uses log.Printf.
	Logf func(format string, args ...any)
	// WriteQueueLen is each session's writer queue length in frames; zero
	// selects the default (128). NewServer rejects negative values: a
	// queue must exist for back-pressure (or an overflow policy) to have
	// meaning.
	WriteQueueLen int
	// WriteTimeout bounds every write and flush of a session's writer: a
	// peer that stops reading fails its connection with a sticky deadline
	// error instead of wedging the writer goroutine (and everything
	// blocked behind its queue) forever. Zero disables the deadline; the
	// close-time drain stays bounded by its own deadline either way.
	WriteTimeout time.Duration
	// OnQueueEvict observes broadcast deliveries evicted from a session's
	// write queue by Session.SendMessageImageDropOldest: subscription and
	// payload are the values the delivery was enqueued with. A mediating
	// broker must account for every suppressed flow, so callers using the
	// drop-oldest path should set this. Runs on the goroutine performing
	// the evicting send and must not block.
	OnQueueEvict func(sess *Session, subscription string, payload any)
}

// Server is a STOMP server: it owns the listener, performs the CONNECT
// handshake, and hands authenticated sessions to the configured handler.
type Server struct {
	cfg      ServerConfig
	queueLen int
	listener net.Listener

	mu       sync.Mutex
	sessions map[uint64]*Session
	nextID   uint64
	closed   bool

	wg sync.WaitGroup
}

// NewServer starts a server listening on addr ("host:port"; port 0 picks a
// free port). The returned server is already accepting connections.
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Handler == nil {
		return nil, errors.New("stomp: ServerConfig.Handler is required")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	queueLen, err := resolveWriteQueueLen(cfg.WriteQueueLen)
	if err != nil {
		return nil, fmt.Errorf("stomp: ServerConfig.WriteQueueLen: %w", err)
	}
	if cfg.WriteTimeout < 0 {
		return nil, fmt.Errorf("stomp: ServerConfig.WriteTimeout must not be negative, got %v", cfg.WriteTimeout)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stomp: listen: %w", err)
	}
	if cfg.TLS != nil {
		ln = tls.NewListener(ln, cfg.TLS)
	}
	srv := &Server{
		cfg:      cfg,
		queueLen: queueLen,
		listener: ln,
		sessions: make(map[uint64]*Session),
	}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv, nil
}

// Addr returns the listener address, e.g. for clients to dial.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, closes all sessions and waits for handler
// goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	err := s.listener.Close()
	for _, sess := range sessions {
		_ = sess.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.nextID++
		sess := &Session{id: s.nextID, conn: conn}
		// A write error kills the connection so the session's read loop
		// unblocks; the writer goroutine must not wait on Session.Close
		// (which waits on it in turn).
		sess.fw = newFrameWriter(conn, s.queueLen, s.cfg.WriteTimeout, func(error) { _ = conn.Close() })
		if s.cfg.OnQueueEvict != nil {
			onEvict := s.cfg.OnQueueEvict
			sess.fw.onEvict = func(of outFrame) { onEvict(sess, of.sub, of.payload) }
		}
		s.sessions[sess.id] = sess
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveSession(sess)
	}
}

func (s *Server) serveSession(sess *Session) {
	defer s.wg.Done()
	defer func() {
		_ = sess.Close()
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
	}()

	dec := NewDecoder(sess.conn)
	viewHandler, _ := s.cfg.Handler.(FrameViewHandler)

	// Handshake: first frame must be CONNECT.
	first, err := dec.DecodeView()
	if err != nil {
		return
	}
	if first.Command != CmdConnect {
		sess.SendError("expected CONNECT", "")
		return
	}
	login := first.Headers.Header(HdrLogin)
	if s.cfg.Authenticate != nil {
		if err := s.cfg.Authenticate(login, first.Headers.Header(HdrPasscode)); err != nil {
			sess.SendError("authentication failed", err.Error())
			return
		}
	}
	sess.login = login
	if err := s.cfg.Handler.OnConnect(sess, login); err != nil {
		sess.SendError("connection rejected", err.Error())
		return
	}
	defer s.cfg.Handler.OnDisconnect(sess)

	connected := NewFrame(CmdConnected)
	connected.SetHeader(HdrSession, strconv.FormatUint(sess.id, 10))
	connected.SetHeader(HdrVersion, "1.1")
	if err := sess.Send(connected); err != nil {
		return
	}

	for {
		v, err := dec.DecodeView()
		if err != nil {
			if !errors.Is(err, io.EOF) && !isClosedConn(err) {
				var pe *ProtocolError
				if errors.As(err, &pe) {
					sess.SendError("protocol error", pe.Msg)
				}
				s.cfg.Logf("stomp: session %d read error: %v", sess.id, err)
			}
			return
		}
		if v.Command == CmdDisconnect {
			s.ack(sess, v)
			return
		}
		if viewHandler != nil {
			err = viewHandler.OnFrameView(sess, v)
		} else {
			err = s.cfg.Handler.OnFrame(sess, v.Materialize())
		}
		if err != nil {
			sess.SendError("frame rejected", err.Error())
			return
		}
		// The view's headers stay valid across the handler call (only the
		// body's ownership moved), so the receipt lookup is safe here.
		s.ack(sess, v)
	}
}

// ack sends a RECEIPT if the frame asked for one.
func (s *Server) ack(sess *Session, v *FrameView) {
	receipt := v.Headers.Header(HdrReceipt)
	if receipt == "" {
		return
	}
	rf := NewFrame(CmdReceipt)
	rf.SetHeader(HdrReceiptID, receipt)
	_ = sess.Send(rf) // best effort; client may already be gone
}

func isClosedConn(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF)
}
