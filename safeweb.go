// Package safeweb is the public facade of SafeWeb-Go, a reproduction of
// "SafeWeb: A Middleware for Securing Ruby-Based Web Applications"
// (Hosek et al., Middleware 2011) as a Go library.
//
// SafeWeb is a middleware "safety net" for multi-tier web applications
// that handle confidential data. It combines two mechanisms:
//
//   - An event-processing backend that decouples confidential-data
//     processing from web-request handling. Application units communicate
//     through an IFC-aware publish/subscribe broker; every event carries
//     security labels, and the engine tracks labels through unit callbacks
//     and their stateful stores.
//
//   - A web frontend with variable-level taint tracking: data fetched from
//     the application database is wrapped in labelled values, labels
//     propagate through string operations, formatting and templates, and
//     every response is checked against the authenticated user's
//     privileges before release.
//
// Together they guarantee that implementation bugs in application code —
// omitted or wrong access checks, aggregation mistakes — result in denied
// requests rather than disclosures.
//
// The facade re-exports the user-facing types of the internal packages;
// see the example programs under examples/ for complete applications, and
// internal/mdt for the paper's MDT web portal case study.
package safeweb

import (
	"safeweb/internal/broker"
	"safeweb/internal/core"
	"safeweb/internal/docstore"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/federation"
	"safeweb/internal/jail"
	"safeweb/internal/label"
	"safeweb/internal/labelmgr"
	"safeweb/internal/selector"
	"safeweb/internal/taint"
	"safeweb/internal/template"
	"safeweb/internal/webdb"
	"safeweb/internal/webfront"
)

// ---- labels and privileges ----

// Label is a security label (confidentiality or integrity), a URI such as
// label:conf:ecric.org.uk/patient/33812769.
type Label = label.Label

// LabelSet is an immutable-by-convention set of labels.
type LabelSet = label.Set

// Privileges holds one principal's label privileges.
type Privileges = label.Privileges

// Policy is the data-flow policy mapping principals to privileges.
type Policy = label.Policy

// Pattern matches labels in policy grants (exact URI or trailing-*).
type Pattern = label.Pattern

// Privilege identifies a label operation a principal may perform.
type Privilege = label.Privilege

// The four privilege kinds.
const (
	Clearance  = label.Clearance
	Declassify = label.Declassify
	Endorse    = label.Endorse
	ClearLow   = label.ClearLow
)

// Label constructors and parsers.
var (
	ConfLabel        = label.Conf
	IntLabel         = label.Int
	ParseLabel       = label.Parse
	MustParseLabel   = label.MustParse
	NewLabelSet      = label.NewSet
	DeriveLabels     = label.Derive
	NewPolicy        = label.NewPolicy
	LoadPolicy       = label.LoadPolicy
	ReadPolicy       = label.ReadPolicy
	NewPrivileges    = label.NewPrivileges
	ParsePattern     = label.ParsePattern
	MustParsePattern = label.MustParsePattern
	ExactPattern     = label.Exact
)

// ---- events and the broker ----

// Event is a labelled message exchanged by processing units.
type Event = event.Event

// NewEvent creates an event; DeriveEvent composes source labels.
var (
	NewEvent    = event.New
	DeriveEvent = event.Derive
)

// Broker is the in-process IFC-aware event broker; BrokerServer exposes it
// over STOMP; Bus is the unit-facing connection interface.
type (
	Broker       = broker.Broker
	BrokerServer = broker.Server
	Bus          = broker.Bus
)

// NewBroker creates a broker; NewBrokerServer serves it over STOMP;
// DialBroker connects a remote Bus.
var (
	NewBroker       = broker.New
	NewBrokerServer = broker.NewServer
	DialBroker      = broker.DialBus
)

// Selector compiles SQL-92 subscription selectors.
type Selector = selector.Selector

// ParseSelector compiles a selector expression.
var ParseSelector = selector.Parse

// ---- engine and units ----

// Engine hosts event processing units; Unit is the application component
// interface; UnitContext is the label-tracking callback context.
type (
	Engine      = engine.Engine
	Unit        = engine.Unit
	FuncUnit    = engine.FuncUnit
	UnitContext = engine.Context
	InitContext = engine.InitContext
	Callback    = engine.Callback
)

// NewEngine creates an engine. WithAdd/WithRemove/WithRemoveAll adjust
// labels on publishes, subject to privilege checks.
var (
	NewEngine     = engine.New
	WithAdd       = engine.WithAdd
	WithRemove    = engine.WithRemove
	WithRemoveAll = engine.WithRemoveAll
)

// Jail is the capability jail isolating units from the environment.
type (
	Jail      = jail.Jail
	JailAudit = jail.Audit
)

// ---- taint tracking ----

// TaintedString, TaintedNumber and TaintedDoc are labelled values whose
// operations propagate labels (the frontend's variable-level tracking).
type (
	TaintedString = taint.String
	TaintedNumber = taint.Number
	TaintedDoc    = taint.Doc
)

// Labelled-value constructors and helpers.
var (
	NewTaintedString = taint.NewString
	WrapString       = taint.WrapString
	NewTaintedNumber = taint.NewNumber
	WrapNumber       = taint.WrapNumber
	TaintSprintf     = taint.Sprintf
	TaintJoin        = taint.Join
	WrapJSON         = taint.WrapJSON
	ToJSONList       = taint.ToJSONList
)

// Template is the label-propagating ERB-style template engine.
type (
	Template        = template.Template
	TemplateContext = template.Context
)

// ParseTemplate compiles a template.
var (
	ParseTemplate     = template.Parse
	MustParseTemplate = template.MustParse
)

// ---- storage ----

// DocStore is the CouchDB-style labelled document store; Document is one
// stored document; Replicator pushes changes one way between stores.
type (
	DocStore        = docstore.Store
	Document        = docstore.Document
	Replicator      = docstore.Replicator
	DocStoreOptions = docstore.Options
)

// Document-store constructors; DocStoreHandler exposes a store over HTTP.
var (
	NewDocStore     = docstore.New
	NewReplicator   = docstore.NewReplicator
	ReplicateOnce   = docstore.ReplicateOnce
	DocStoreHandler = docstore.Handler
)

// WebDB is the frontend's account/privilege/session database.
type (
	WebDB        = webdb.DB
	WebUser      = webdb.User
	PrivilegeRow = webdb.PrivilegeRow
)

// NewWebDB creates an empty web database; LoadWebDB reads one from disk.
var (
	NewWebDB  = webdb.New
	LoadWebDB = webdb.Load
)

// ---- frontend ----

// Frontend is the SafeWeb web application host with check-on-release;
// RequestCtx is the per-request handler context.
type (
	Frontend       = webfront.App
	FrontendConfig = webfront.Config
	RequestCtx     = webfront.Ctx
	HandlerFunc    = webfront.HandlerFunc
	PhaseTimes     = webfront.PhaseTimes
)

// NewFrontend creates a frontend application host.
var NewFrontend = webfront.New

// ---- extensions ----

// LabelManager applies runtime privilege delegations to a live policy
// (§4.1's dynamic label manager).
type LabelManager = labelmgr.Manager

// FederationBridge links two SafeWeb instances, mapping labels across the
// boundary (§7's regional federation).
type (
	FederationBridge = federation.Bridge
	FederationRule   = federation.Rule
)

// NewFederationBridge starts a bridge; FederationPrefixMap builds the
// common prefix-rewriting label map. TaintFromUser wraps user input with
// the injection-guard marker (§4.4).
var (
	NewFederationBridge = federation.New
	FederationPrefixMap = federation.PrefixMap
	TaintFromUser       = taint.FromUser
)

// ---- assembled middleware ----

// Middleware is a fully assembled SafeWeb deployment (backend + one-way
// replication + frontend), per the paper's Fig. 4 topology.
type (
	Middleware       = core.Middleware
	MiddlewareConfig = core.Config
)

// NewMiddleware assembles a deployment.
var NewMiddleware = core.New
