package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/event"
	"safeweb/internal/label"
)

// TestQuickPipelineConfPreservation is the system-level IFC safety
// property: random events pushed through a random chain of relay units
// never lose a confidentiality label, whatever the relays' attribute
// transformations.
func TestQuickPipelineConfPreservation(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	universe := []label.Label{
		label.Conf("a"), label.Conf("b"), label.Conf("c"), label.Conf("d"),
	}

	policy := label.NewPolicy()
	all := label.MustParsePattern("label:conf:*")
	policy.SetPrincipal("source", label.NewPrivileges().Grant(label.Clearance, all), true)
	b, e := newTestRig(t, policy)

	// A chain of 4 relays, each republishing to the next topic with a
	// fixed extra confidentiality label per relay (adding is always
	// allowed). The per-relay label is chosen up front: callbacks run on
	// worker goroutines and must not share the test's rand.Rand.
	const chainLen = 4
	var mu sync.Mutex
	got := make(map[string]label.Set) // event id -> final labels
	for i := 0; i < chainLen; i++ {
		name := fmt.Sprintf("relay-%d", i)
		policy.Grant(name, label.Clearance, all)
		idx := i
		extra := universe[rnd.Intn(len(universe))]
		err := e.AddUnit(&FuncUnit{UnitName: name, InitFunc: func(ctx *InitContext) error {
			return ctx.Subscribe(fmt.Sprintf("/hop/%d", idx), "", func(ctx *Context, ev *event.Event) error {
				return ctx.Publish(fmt.Sprintf("/hop/%d", idx+1),
					map[string]string{"id": ev.Attr("id")}, nil,
					WithAdd(extra))
			})
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	policy.Grant("sink", label.Clearance, all)
	err := e.AddUnit(&FuncUnit{UnitName: "sink", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe(fmt.Sprintf("/hop/%d", chainLen), "", func(ctx *Context, ev *event.Event) error {
			mu.Lock()
			got[ev.Attr("id")] = ev.Labels
			mu.Unlock()
			return nil
		})
	}})
	if err != nil {
		t.Fatal(err)
	}

	want := make(map[string]label.Set)
	for i := 0; i < 100; i++ {
		id := fmt.Sprint(i)
		set := make(label.Set)
		for _, l := range universe {
			if rnd.Intn(2) == 0 {
				set[l] = struct{}{}
			}
		}
		want[id] = set
		ev := event.New("/hop/0", map[string]string{"id": id})
		ev.Labels = set
		if err := b.Publish("source", ev); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 100 {
		t.Fatalf("sink saw %d events, want 100", len(got))
	}
	for id, inSet := range want {
		outSet := got[id]
		if !inSet.SubsetOf(outSet) {
			t.Fatalf("event %s lost labels: in %v, out %v", id, inSet, outSet)
		}
	}
}

// TestBackPressureSmallQueues: with tiny per-subscription queues, a burst
// larger than the queue still processes completely — publishers block
// rather than drop.
func TestBackPressureSmallQueues(t *testing.T) {
	policy := mdtPolicy()
	b := broker.New(policy)
	e, err := New(Config{
		Policy:    policy,
		QueueSize: 2,
		Bus: func(p string) (broker.Bus, error) {
			return b.Endpoint(p), nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		e.Stop()
		b.Close()
	})

	var processed sync.WaitGroup
	processed.Add(200)
	err = e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			time.Sleep(100 * time.Microsecond) // slow consumer
			processed.Done()
			return nil
		})
	}})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			_ = b.Publish("producer", event.New("/in", nil))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publisher deadlocked")
	}
	waitDone := make(chan struct{})
	go func() {
		processed.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("events lost under back-pressure")
	}
}

// TestPolicyReloadMidStream: tightening the policy applies to in-flight
// subscriptions because the broker consults the policy at delivery time.
func TestPolicyReloadMidStream(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	patient := label.Conf("ecric.org.uk/patient/1")
	var mu sync.Mutex
	count := 0
	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *Context, ev *event.Event) error {
			mu.Lock()
			count++
			mu.Unlock()
			return nil
		})
	}})
	if err != nil {
		t.Fatal(err)
	}

	if err := b.Publish("producer", event.New("/in", nil, patient)); err != nil {
		t.Fatal(err)
	}
	e.Drain()

	// Revoke the aggregator's clearance: the same event no longer
	// reaches it.
	policy.SetPrincipal("aggregator", label.NewPrivileges(), false)
	if err := b.Publish("producer", event.New("/in", nil, patient)); err != nil {
		t.Fatal(err)
	}
	e.Drain()

	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (revocation did not apply)", count)
	}
}

// TestConcurrentUnitStores: different subscriptions of one unit share the
// labelled store safely under concurrency.
func TestConcurrentUnitStores(t *testing.T) {
	policy := mdtPolicy()
	b, e := newTestRig(t, policy)

	err := e.AddUnit(&FuncUnit{UnitName: "aggregator", InitFunc: func(ctx *InitContext) error {
		for i := 0; i < 4; i++ {
			topic := fmt.Sprintf("/in/%d", i)
			if err := ctx.Subscribe(topic, "", func(ctx *Context, ev *event.Event) error {
				v, _ := ctx.Get("shared")
				return ctx.Set("shared", v+"x")
			}); err != nil {
				return err
			}
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 50; j++ {
			if err := b.Publish("producer", event.New(fmt.Sprintf("/in/%d", i), nil)); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.Drain()
	// No assertion on the value (lost updates are the app's concern);
	// the point is no race detected and no panic.
}
