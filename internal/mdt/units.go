package mdt

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"safeweb/internal/docstore"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/maindb"
)

// Topics used by the MDT application.
const (
	// TopicImport triggers the data producer; the deployment publishes it
	// periodically (the paper's producer "periodically reads unlabelled
	// patient records from the main ECRIC database", §4.1).
	TopicImport = "/control/import"
	// TopicMetrics triggers regional aggregate computation; the event
	// carries region and mdts attributes.
	TopicMetrics = "/control/metrics"
	// TopicPatientReport carries one patient/tumour report from the
	// producer.
	TopicPatientReport = "/patient_report"
	// TopicRecord carries a combined case record from the aggregator.
	TopicRecord = "/record"
	// TopicMetric carries an aggregate metric from the aggregator.
	TopicMetric = "/metric"
	// TopicAggregate carries relabelled aggregates republished by the
	// storage unit: the same payloads it persists, but as events under
	// their post-declassification labels, so other consumers (regional
	// dashboards, federation bridges) can subscribe without holding
	// patient-level clearance.
	TopicAggregate = "/aggregate"
)

// Faults are the §5.2 fault-injection switches. All false in production;
// the security evaluation flips them one at a time. The zero value is the
// correct application.
type Faults struct {
	// OmitAccessCheck removes the MDT privilege check from the record
	// routes ("omitted access checks": CVE-2011-0701 class).
	OmitAccessCheck bool
	// CaseFoldUserLookup makes the privilege check look users up
	// case-insensitively ("errors in access checks": CVE-2011-0449
	// class; usernames mdt1 vs MDT1 share privileges).
	CaseFoldUserLookup bool
	// IgnoreClinicInCheck drops the clinic-equality condition from the
	// privilege query ("inappropriate access checks": CVE-2010-4775
	// class; any MDT sees all patients of the same hospital).
	IgnoreClinicInCheck bool
	// MixHospitals makes the aggregator ignore the origin MDT when
	// matching events ("design errors": CVE-2011-0899 class; records mix
	// data of different MDTs).
	MixHospitals bool
}

// Producer is the privileged data-producer unit (§5.1 unit (a)): on each
// import trigger it reads the main registry "leveraging the existing ECRIC
// framework for data access", labels each report with the treating MDT's
// label, and publishes it as events.
type Producer struct {
	// DB is the main registry. The producer holds it directly: it is a
	// privileged unit, and handing confidential data sources only to
	// privileged units is the deployment wiring's responsibility.
	DB *maindb.DB
}

var _ engine.Unit = (*Producer)(nil)

// Name implements engine.Unit.
func (p *Producer) Name() string { return ProducerName }

// Init implements engine.Unit.
func (p *Producer) Init(ctx *engine.InitContext) error {
	return ctx.Subscribe(TopicImport, "", func(ctx *engine.Context, _ *event.Event) error {
		for _, patient := range p.DB.Patients() {
			completeness := p.DB.Completeness(patient)
			for _, tum := range p.DB.TumoursOf(patient.ID) {
				attrs := map[string]string{
					"patient_id":   patient.ID,
					"name":         patient.Name,
					"nhs_number":   patient.NHSNumber,
					"birth_year":   strconv.Itoa(patient.BirthYear),
					"mdt":          patient.MDT,
					"hospital":     patient.Hospital,
					"clinic":       patient.Clinic,
					"region":       patient.Region,
					"site":         tum.Site,
					"stage":        strconv.Itoa(tum.Stage),
					"type":         tum.Type,
					"completeness": strconv.FormatFloat(completeness, 'f', 3, 64),
					"treatments":   strconv.Itoa(len(p.DB.TreatmentsOf(patient.ID))),
				}
				// Publish with the MDT label plus the application
				// integrity label (the producer holds the endorsement
				// privilege).
				err := ctx.Publish(TopicPatientReport, attrs, nil,
					engine.WithAdd(MDTLabel(patient.MDT), IntegrityLabel()))
				if err != nil {
					return fmt.Errorf("mdt: producer publish: %w", err)
				}
			}
		}
		return nil
	})
}

// CaseRecord is the aggregator's combined view of one case, stored in the
// application database and served by the frontend.
type CaseRecord struct {
	PatientID    string   `json:"patient_id"`
	Name         string   `json:"name,omitempty"`
	NHSNumber    string   `json:"nhs_number,omitempty"`
	BirthYear    int      `json:"birth_year,omitempty"`
	MDT          string   `json:"mdt"`
	Hospital     string   `json:"hospital"`
	Clinic       string   `json:"clinic"`
	Region       string   `json:"region"`
	Sites        []string `json:"sites"`
	MaxStage     int      `json:"max_stage"`
	Reports      int      `json:"reports"`
	Treatments   int      `json:"treatments"`
	Completeness float64  `json:"completeness"`
}

// Metrics is one aggregate metrics row (per MDT or per region).
type Metrics struct {
	Scope        string  `json:"scope"` // "mdt" or "region"
	MDT          string  `json:"mdt,omitempty"`
	Region       string  `json:"region"`
	Cases        int     `json:"cases"`
	Completeness float64 `json:"completeness"`
	// Survival is the projected survival statistic of F2 — derived here
	// from the stage distribution, standing in for the registry's
	// survival model.
	Survival float64 `json:"survival"`
}

// Aggregator is the non-privileged aggregator unit (§5.1 unit (b)): it
// "continuously collects all events related to individual cancer cases and
// combines their data". It is the large component whose implementation
// errors must not disclose data — SafeWeb's isolation and label tracking
// contain it.
type Aggregator struct {
	// Faults enables the §5.2 injected bugs.
	Faults Faults
}

var _ engine.Unit = (*Aggregator)(nil)

// Name implements engine.Unit.
func (a *Aggregator) Name() string { return AggregatorName }

// Init implements engine.Unit.
func (a *Aggregator) Init(ctx *engine.InitContext) error {
	// Combined case records, updated per report. Only confirmed cancer
	// cases reach the portal (content-based subscription, Listing 1).
	err := ctx.Subscribe(TopicPatientReport, "type = 'cancer'", a.onReport)
	if err != nil {
		return err
	}
	return ctx.Subscribe(TopicMetrics, "", a.onMetricsRequest)
}

// caseKey chooses the store key a report merges into. The MixHospitals
// fault reproduces the paper's design-error injection: "we modify the data
// aggregator unit to ignore the hospital of origin when matching events.
// As a result, the unit generates records that mix data of different
// MDTs."
func (a *Aggregator) caseKey(ev *event.Event) string {
	if a.Faults.MixHospitals {
		return "case/" + ev.Attr("site") // mixes patients across MDTs
	}
	return "case/" + ev.Attr("mdt") + "/" + ev.Attr("patient_id")
}

func (a *Aggregator) onReport(ctx *engine.Context, ev *event.Event) error {
	key := a.caseKey(ev)

	var rec CaseRecord
	if existing, ok := ctx.Get(key); ok {
		if err := json.Unmarshal([]byte(existing), &rec); err != nil {
			return fmt.Errorf("mdt: corrupt case record %s: %w", key, err)
		}
	}

	// Merge the report. Reading the key above already merged its labels
	// into the tracked set, so the updated record and everything
	// published from here carries the confidentiality of all inputs.
	rec.PatientID = ev.Attr("patient_id")
	if rec.Name == "" {
		rec.Name = ev.Attr("name")
	}
	if rec.NHSNumber == "" {
		rec.NHSNumber = ev.Attr("nhs_number")
	}
	if rec.BirthYear == 0 {
		rec.BirthYear, _ = strconv.Atoi(ev.Attr("birth_year"))
	}
	rec.MDT = ev.Attr("mdt")
	rec.Hospital = ev.Attr("hospital")
	rec.Clinic = ev.Attr("clinic")
	rec.Region = ev.Attr("region")
	if site := ev.Attr("site"); site != "" && !contains(rec.Sites, site) {
		rec.Sites = append(rec.Sites, site)
	}
	if stage, _ := strconv.Atoi(ev.Attr("stage")); stage > rec.MaxStage {
		rec.MaxStage = stage
	}
	rec.Reports++
	rec.Treatments, _ = strconv.Atoi(ev.Attr("treatments"))
	rec.Completeness, _ = strconv.ParseFloat(ev.Attr("completeness"), 64)

	encoded, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("mdt: encode case record: %w", err)
	}
	if err := ctx.Set(key, string(encoded)); err != nil {
		return fmt.Errorf("mdt: store case record: %w", err)
	}

	// Update the MDT's running aggregates and publish refreshed metrics.
	// Reading only this MDT's accumulator keys keeps the tracked set
	// clean of other MDTs' labels.
	mdtID := ev.Attr("mdt")
	cases := a.bumpCounter(ctx, "agg/"+mdtID+"/cases", 1)
	compSum := a.bumpFloat(ctx, "agg/"+mdtID+"/completeness_sum", rec.Completeness)
	stageSum := a.bumpFloat(ctx, "agg/"+mdtID+"/stage_sum", float64(rec.MaxStage))

	metrics := Metrics{
		Scope:        "mdt",
		MDT:          mdtID,
		Region:       ev.Attr("region"),
		Cases:        cases,
		Completeness: compSum / float64(cases),
		Survival:     survivalFromStage(stageSum / float64(cases)),
	}
	metricsJSON, err := json.Marshal(metrics)
	if err != nil {
		return fmt.Errorf("mdt: encode metrics: %w", err)
	}

	// Publish the combined record and the metric. Labels ride along
	// automatically from the tracked set.
	if err := ctx.Publish(TopicRecord, map[string]string{
		"patient_id": rec.PatientID,
		"mdt":        rec.MDT,
		"region":     rec.Region,
	}, encoded); err != nil {
		return err
	}
	return ctx.Publish(TopicMetric, map[string]string{
		"scope":  "mdt",
		"mdt":    mdtID,
		"region": metrics.Region,
	}, metricsJSON)
}

// onMetricsRequest computes regional aggregates: the control event names
// the region and its MDT ids, and the callback combines those MDTs'
// accumulators. The tracked set ends up carrying every involved MDT's
// label — which is why the storage unit must relabel regional aggregates
// before they become visible (§3.1).
func (a *Aggregator) onMetricsRequest(ctx *engine.Context, ev *event.Event) error {
	region := ev.Attr("region")
	mdtIDs := strings.Split(ev.Attr("mdts"), ",")

	var (
		cases    int
		compSum  float64
		stageSum float64
	)
	for _, id := range mdtIDs {
		if id == "" {
			continue
		}
		if v, ok := ctx.Get("agg/" + id + "/cases"); ok {
			n, _ := strconv.Atoi(v)
			cases += n
		}
		if v, ok := ctx.Get("agg/" + id + "/completeness_sum"); ok {
			f, _ := strconv.ParseFloat(v, 64)
			compSum += f
		}
		if v, ok := ctx.Get("agg/" + id + "/stage_sum"); ok {
			f, _ := strconv.ParseFloat(v, 64)
			stageSum += f
		}
	}
	if cases == 0 {
		return nil // nothing aggregated yet
	}
	metrics := Metrics{
		Scope:        "region",
		Region:       region,
		Cases:        cases,
		Completeness: compSum / float64(cases),
		Survival:     survivalFromStage(stageSum / float64(cases)),
	}
	encoded, err := json.Marshal(metrics)
	if err != nil {
		return fmt.Errorf("mdt: encode regional metrics: %w", err)
	}
	return ctx.Publish(TopicMetric, map[string]string{
		"scope":  "region",
		"region": region,
	}, encoded)
}

// bumpCounter increments an integer accumulator in the store.
func (a *Aggregator) bumpCounter(ctx *engine.Context, key string, delta int) int {
	n := 0
	if v, ok := ctx.Get(key); ok {
		n, _ = strconv.Atoi(v)
	}
	n += delta
	// Accumulator writes inherit the tracked labels; errors cannot occur
	// because no labels are being removed.
	_ = ctx.Set(key, strconv.Itoa(n))
	return n
}

// bumpFloat adds to a float accumulator in the store.
func (a *Aggregator) bumpFloat(ctx *engine.Context, key string, delta float64) float64 {
	f := 0.0
	if v, ok := ctx.Get(key); ok {
		f, _ = strconv.ParseFloat(v, 64)
	}
	f += delta
	_ = ctx.Set(key, strconv.FormatFloat(f, 'g', -1, 64))
	return f
}

// survivalFromStage derives the projected survival statistic from the
// average stage (a simple monotone proxy for the registry's model).
func survivalFromStage(avgStage float64) float64 {
	s := 1.02 - 0.18*avgStage
	if s < 0.05 {
		s = 0.05
	}
	if s > 0.99 {
		s = 0.99
	}
	return s
}

func contains(list []string, s string) bool {
	for _, e := range list {
		if e == s {
			return true
		}
	}
	return false
}

// Storage is the privileged data-storage unit (§5.1 unit (c)): it "has
// declassification privileges for all MDTs" and "stores processed records
// with their security labels in the CouchDB application database."
//
// It applies the relabelling of §3.1: case records keep their MDT labels;
// MDT-level aggregates are relabelled to the region's aggregate label; and
// regional aggregates are relabelled to the regional label. As a
// privileged unit its labelling decisions are part of the audited trusted
// codebase (§5.2 item 3).
type Storage struct {
	// Store is the Intranet application database instance.
	Store *docstore.Store
}

var _ engine.Unit = (*Storage)(nil)

// Name implements engine.Unit.
func (s *Storage) Name() string { return StorageName }

// Init implements engine.Unit.
func (s *Storage) Init(ctx *engine.InitContext) error {
	if err := ctx.Subscribe(TopicRecord, "", s.onRecord); err != nil {
		return err
	}
	return ctx.Subscribe(TopicMetric, "", s.onMetric)
}

func (s *Storage) onRecord(ctx *engine.Context, ev *event.Event) error {
	id := "record/" + ev.Attr("mdt") + "/" + ev.Attr("patient_id")
	// Case records keep their tracked confidentiality labels: a record
	// mixing multiple MDTs' data (the design-error fault) stays labelled
	// with all of them, which is what blocks its display (§5.2 "design
	// errors").
	labels := ctx.Labels().Confidentiality()
	return s.upsert(id, ev.Body, labels)
}

func (s *Storage) onMetric(ctx *engine.Context, ev *event.Event) error {
	var (
		id       string
		relabels label.Label
	)
	switch ev.Attr("scope") {
	case "mdt":
		// MDT-level aggregates: declassify the MDT labels, relabel with
		// the region's aggregate label (visible to all MDTs in the
		// region, P1).
		id = "metric/mdt/" + ev.Attr("mdt")
		relabels = RegionAggLabel(ev.Attr("region"))
	case "region":
		// Regional aggregates: visible to all MDTs.
		id = "metric/region/" + ev.Attr("region")
		relabels = RegionalAggLabel()
	default:
		return fmt.Errorf("mdt: metric with unknown scope %q", ev.Attr("scope"))
	}
	if err := s.upsert(id, ev.Body, label.NewSet(relabels)); err != nil {
		return err
	}
	// Republish the relabelled aggregate as an event. The storage unit is
	// privileged, so removing the tracked (patient/MDT) labels is
	// permitted; the engine still verifies through the normal publish
	// path.
	return ctx.Publish(TopicAggregate, map[string]string{
		"scope":  ev.Attr("scope"),
		"mdt":    ev.Attr("mdt"),
		"region": ev.Attr("region"),
	}, ev.Body, engine.WithRemoveAll(), engine.WithAdd(relabels))
}

// upsert writes a document, fetching the current revision on conflict.
func (s *Storage) upsert(id string, body []byte, labels label.Set) error {
	rev := ""
	if existing, err := s.Store.Get(id); err == nil {
		rev = existing.Rev
	}
	if _, err := s.Store.Put(id, json.RawMessage(body), labels, rev); err != nil {
		return fmt.Errorf("mdt: store %s: %w", id, err)
	}
	return nil
}
