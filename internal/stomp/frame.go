// Package stomp implements the Streaming Text Oriented Messaging Protocol
// used as the wire protocol of SafeWeb's event broker (paper §4.2): "each
// request consists of a command, such as CONNECT, SEND or SUBSCRIBE, a set
// of optional headers and an optional body."
//
// The implementation covers the STOMP 1.0/1.1 frame format with 1.1 header
// escaping, content-length handling, receipts, and TLS at the transport
// layer. SafeWeb's label extensions ride in ordinary headers (see package
// event); the codec itself is label-agnostic.
//
// # Decode fast path
//
// Frame is the mutable, map-backed representation; the decode hot path
// never builds it. Decoder.DecodeView yields a FrameView whose HeaderView
// is a flat key/value span slice over the decoder's reused scratch buffer,
// with common header keys and all commands interned. Ownership rules:
//
//   - A HeaderView (and its FrameView) is confined to the goroutine running
//     the owning Decoder — one read loop per connection — and is
//     invalidated by that Decoder's next Decode/DecodeView call. Never
//     retain one across frames; copy what you keep (Get/Key/Value/Map
//     return owned data, KeyBytes/ValueBytes do not).
//   - The view's Body is freshly allocated per frame and its ownership
//     transfers to the consumer (package event hands it to the decoded
//     event without copying).
//   - The header map is materialised lazily — FrameView.Materialize — only
//     for callers that mutate headers or retain the frame; Decoder.Decode
//     and ReadFrame remain as that compatibility path.
//
// # Encode fast path
//
// The encode counterpart is the preencoded WireImage: NewMessageImage
// freezes a MESSAGE's canonical header block and body into an immutable
// byte image once, and Encoder.EncodeImage splices only the per-delivery
// subscription/message-id routing headers around it. Images are immutable
// and safe for concurrent use — the broker builds one per published event
// (event.Event.WireImage) and shares it across every session and shard,
// so fan-out to S sessions costs one marshal instead of S. Wire bytes are
// identical to EncodeMessage's for the same logical frame.
//
// The producer side mirrors it: ImageBuilder assembles a SEND image
// directly from ordered headers (no map — package event encodes a frozen
// event's fields straight in, event.Event.SendImage), and
// Encoder.EncodeSendImage writes it with the per-publish receipt header
// spliced at its canonical sorted position, so the bytes are identical to
// encoding the same frame with the receipt in its header map. Receipt
// tracking has an asynchronous form for windowed publishing:
// Client.SendImageAsync returns a Receipt whose Wait settles later,
// letting a producer keep a window of confirmed-in-order sends in flight
// instead of paying a round trip per publish.
//
// # Flow control and slow consumers
//
// Every connection writes through a single coalescing writer goroutine
// draining a bounded queue (ServerConfig/ClientConfig.WriteQueueLen,
// default 128; negative lengths are rejected at construction). The queue
// is where a peer that stops reading becomes visible, and the transport
// offers the layers above three enqueue disciplines on the broadcast
// path: Session.SendMessageImage blocks when full (lossless
// back-pressure), TrySendMessageImage fails fast and leaves the overflow
// decision to the caller, and SendMessageImageDropOldest evicts the
// oldest queued broadcast deliveries — never control frames — reporting
// each through ServerConfig.OnQueueEvict. WriteTimeout arms a per-write
// deadline, re-armed before every encode and flush, so a peer making
// progress is never penalised for batch size while a stalled one fails
// its connection with a sticky error instead of wedging the writer; and
// Session.Kill severs a connection without draining, for callers
// evicting a consumer that demonstrably stopped reading. Queue occupancy
// highs are tracked per session (Session.QueueHighWater) as the
// early-warning signal.
//
// # Credit-based flow control
//
// The queue disciplines above are reactive — they decide what to do once
// a consumer's queue has already filled. The proactive half rides the
// protocol itself: a SUBSCRIBE frame may advertise a delivery window in a
// credit header, and the consumer replenishes it with ACK frames carrying
// a cumulative grant (Client.SendCreditGrant). Grants are cumulative and
// idempotent, so they batch — steady state is about two control frames
// per window, not per message — and tolerate duplication or reordering.
// See credit.go for the shared header name and the fail-closed parser;
// the broker-side window accounting lives in package broker. A SUBSCRIBE
// without the credit header is byte-identical to today's wire behaviour.
package stomp

import (
	"fmt"
	"strconv"
	"strings"
)

// Standard STOMP commands.
const (
	CmdConnect     = "CONNECT"
	CmdConnected   = "CONNECTED"
	CmdSend        = "SEND"
	CmdSubscribe   = "SUBSCRIBE"
	CmdUnsubscribe = "UNSUBSCRIBE"
	CmdMessage     = "MESSAGE"
	CmdReceipt     = "RECEIPT"
	CmdError       = "ERROR"
	CmdDisconnect  = "DISCONNECT"
	CmdAck         = "ACK"
	CmdNack        = "NACK"
	CmdBegin       = "BEGIN"
	CmdCommit      = "COMMIT"
	CmdAbort       = "ABORT"
)

// Common header names.
const (
	HdrDestination   = "destination"
	HdrSelector      = "selector"
	HdrID            = "id"
	HdrSubscription  = "subscription"
	HdrMessageID     = "message-id"
	HdrReceipt       = "receipt"
	HdrReceiptID     = "receipt-id"
	HdrContentLength = "content-length"
	HdrLogin         = "login"
	HdrPasscode      = "passcode"
	HdrSession       = "session"
	HdrMessage       = "message"
	HdrVersion       = "version"
)

// MaxHeaderLen bounds a single header line; MaxBodyLen bounds frame bodies.
// Both protect the broker from unbounded memory use on malformed input.
const (
	MaxHeaderLen = 64 * 1024
	MaxBodyLen   = 16 * 1024 * 1024
	maxHeaders   = 256
)

// Frame is a single STOMP frame.
type Frame struct {
	// Command is the frame command, e.g. "SEND".
	Command string
	// Headers holds the frame headers. Values are unescaped.
	Headers map[string]string
	// Body is the optional frame body.
	Body []byte
}

// NewFrame creates a frame with an initialised header map.
func NewFrame(command string) *Frame {
	return &Frame{Command: command, Headers: make(map[string]string)}
}

// Header returns the value of the named header, or "".
func (f *Frame) Header(name string) string { return f.Headers[name] }

// SetHeader sets a header, initialising the map if needed.
func (f *Frame) SetHeader(name, value string) {
	if f.Headers == nil {
		f.Headers = make(map[string]string)
	}
	f.Headers[name] = value
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := f.ShallowClone()
	if f.Body != nil {
		out.Body = append([]byte(nil), f.Body...)
	}
	return out
}

// ShallowClone returns a copy of the frame with copied headers and a body
// shared with the receiver, for paths that rewrite headers on one logical
// message without duplicating its payload; callers must treat the shared
// body as immutable. The header map carries slack for the headers such
// callers typically add. (The broker's fan-out delivery goes further and
// avoids even the header copy: Encoder.EncodeMessage emits per-peer
// routing headers straight onto the wire from a shared base frame.)
func (f *Frame) ShallowClone() *Frame {
	out := &Frame{Command: f.Command, Body: f.Body}
	if f.Headers != nil {
		out.Headers = make(map[string]string, len(f.Headers)+2)
		for k, v := range f.Headers {
			out.Headers[k] = v
		}
	}
	return out
}

// String renders the frame for logs (headers sorted, body length only).
// It shares the encoder's sorted-key helper and avoids fmt on the per-
// header path, since it runs per frame when Logf tracing is enabled.
func (f *Frame) String() string {
	keys := sortedHeaderKeys(make([]string, 0, len(f.Headers)), f.Headers, "")
	var b strings.Builder
	b.WriteString(f.Command)
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(f.Headers[k]))
	}
	if len(f.Body) > 0 {
		b.WriteString(" body=")
		b.WriteString(strconv.Itoa(len(f.Body)))
		b.WriteByte('B')
	}
	return b.String()
}

// ProtocolError reports a malformed frame.
type ProtocolError struct{ Msg string }

// Error implements the error interface.
func (e *ProtocolError) Error() string { return "stomp: " + e.Msg }

func protoErrorf(format string, args ...any) error {
	return &ProtocolError{Msg: fmt.Sprintf(format, args...)}
}
