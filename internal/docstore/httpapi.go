package docstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"safeweb/internal/label"
)

// Handler exposes a store over a small CouchDB-flavoured REST API:
//
//	GET    /{id}              fetch a document
//	PUT    /{id}?rev=R        create/update (JSON body; X-SafeWeb-Labels header)
//	DELETE /{id}?rev=R        delete
//	GET    /_changes?since=N  changes feed
//	GET    /_view/{name}?key=K  query a view
//	GET    /_info             {"name":..., "doc_count":..., "update_seq":...}
//
// Labels travel in the X-SafeWeb-Labels response/request header as a
// comma-separated label-URI list, keeping them inseparable from the data
// at this boundary too.
func Handler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /_info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"name":       s.Name(),
			"doc_count":  s.Len(),
			"update_seq": s.Seq(),
			"read_only":  s.ReadOnly(),
		})
	})
	mux.HandleFunc("GET /_changes", func(w http.ResponseWriter, r *http.Request) {
		since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
		writeJSON(w, http.StatusOK, map[string]any{
			"results":  s.Changes(since),
			"last_seq": s.Seq(),
		})
	})
	mux.HandleFunc("GET /_view/{name}", func(w http.ResponseWriter, r *http.Request) {
		docs, err := s.Query(r.PathValue("name"), r.URL.Query().Get("key"))
		if err != nil {
			writeError(w, err)
			return
		}
		// The response label header covers every returned document.
		var all label.Set
		for _, d := range docs {
			all = all.Union(d.Labels)
		}
		w.Header().Set(labelHeader, all.String())
		writeJSON(w, http.StatusOK, map[string]any{"rows": docs})
	})
	mux.HandleFunc("GET /{id}", func(w http.ResponseWriter, r *http.Request) {
		doc, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set(labelHeader, doc.Labels.String())
		writeJSON(w, http.StatusOK, doc)
	})
	mux.HandleFunc("PUT /{id}", func(w http.ResponseWriter, r *http.Request) {
		var body json.RawMessage
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, fmt.Errorf("docstore: bad request body: %w", err))
			return
		}
		labels, err := label.ParseSet(r.Header.Get(labelHeader))
		if err != nil {
			writeError(w, err)
			return
		}
		doc, err := s.Put(r.PathValue("id"), body, labels, r.URL.Query().Get("rev"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"id": doc.ID, "rev": doc.Rev})
	})
	mux.HandleFunc("DELETE /{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Delete(r.PathValue("id"), r.URL.Query().Get("rev")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return mux
}

// labelHeader carries document label sets over the REST API.
const labelHeader = "X-Safeweb-Labels"

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // header already written; nothing to recover
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoView):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrReadOnly):
		status = http.StatusForbidden
	case errors.Is(err, label.ErrInvalidLabel),
		strings.Contains(err.Error(), "bad request"):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
