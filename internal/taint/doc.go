package taint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"safeweb/internal/label"
)

// Doc is a labelled JSON-style document: a map whose leaf values may be
// labelled (String, Number, Value, nested Doc) or plain Go values. It is
// what the frontend's data-access layer produces from application-database
// documents: every field wrapped with the document's labels.
type Doc map[string]any

// WrapJSON parses raw JSON and wraps every leaf string and number with the
// given label set. The frontend uses it when fetching documents from the
// application database, where labels are stored per document (paper §4.4
// step 2: "SafeWeb's taint tracking library transparently adds the labels
// produced by units in the backend to the data fetched from the
// application database").
func WrapJSON(raw []byte, labels label.Set) (Doc, error) {
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return nil, fmt.Errorf("taint: parse document: %w", err)
	}
	return wrapMap(parsed, labels), nil
}

func wrapMap(m map[string]any, labels label.Set) Doc {
	out := make(Doc, len(m))
	for k, v := range m {
		out[k] = wrapAny(v, labels)
	}
	return out
}

func wrapAny(v any, labels label.Set) any {
	switch t := v.(type) {
	case string:
		return WrapString(t, labels)
	case float64:
		return WrapNumber(t, labels)
	case bool:
		return NewValue(t, labels)
	case nil:
		return nil
	case map[string]any:
		return wrapMap(t, labels)
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = wrapAny(e, labels)
		}
		return out
	default:
		return NewValue(v, labels)
	}
}

// GetString returns the named field as a labelled string; missing or
// non-string fields return the empty string.
func (d Doc) GetString(key string) String {
	s, _ := d[key].(String)
	return s
}

// GetNumber returns the named field as a labelled number.
func (d Doc) GetNumber(key string) Number {
	n, _ := d[key].(Number)
	return n
}

// GetDoc returns a nested document field.
func (d Doc) GetDoc(key string) Doc {
	sub, _ := d[key].(Doc)
	return sub
}

// Labels returns the composition of all labels in the document: the labels
// anything derived from the whole document must carry. Unlabelled leaves
// contribute empty sets, so a document mixing labelled and plain fields
// keeps all confidentiality labels and no integrity labels.
func (d Doc) Labels() label.Set {
	sets := collectLabels(d, nil)
	return label.Derive(sets...)
}

func collectLabels(v any, acc []label.Set) []label.Set {
	switch t := v.(type) {
	case String:
		return append(acc, t.labels)
	case Number:
		return append(acc, t.labels)
	case Value:
		return append(acc, t.labels)
	case Doc:
		for _, e := range t {
			acc = collectLabels(e, acc)
		}
		return acc
	case map[string]any:
		for _, e := range t {
			acc = collectLabels(e, acc)
		}
		return acc
	case []any:
		for _, e := range t {
			acc = collectLabels(e, acc)
		}
		return acc
	case nil:
		return acc
	default:
		return append(acc, nil)
	}
}

// ToJSON serialises the document to a labelled JSON string carrying
// the composed labels of every field — the operation behind Listing 2's
// "r.to_json" (§5.2): the JSON string of records an MDT must not see is
// correctly tainted, which is what lets the response check catch omitted
// access checks.
func (d Doc) ToJSON() (String, error) {
	var sets []label.Set
	plain := toPlain(d, &sets)
	raw, err := json.Marshal(plain)
	if err != nil {
		return String{}, fmt.Errorf("taint: marshal document: %w", err)
	}
	return String{s: string(raw), labels: label.Derive(sets...)}, nil
}

// ToJSONList serialises a list of documents, composing all labels.
func ToJSONList(docs []Doc) (String, error) {
	var sets []label.Set
	plainList := make([]any, len(docs))
	for i, d := range docs {
		plainList[i] = toPlain(d, &sets)
	}
	raw, err := json.Marshal(plainList)
	if err != nil {
		return String{}, fmt.Errorf("taint: marshal document list: %w", err)
	}
	return String{s: string(raw), labels: label.Derive(sets...)}, nil
}

func toPlain(v any, sets *[]label.Set) any {
	switch t := v.(type) {
	case String:
		*sets = append(*sets, t.labels)
		return t.s
	case Number:
		*sets = append(*sets, t.labels)
		return t.f
	case Value:
		*sets = append(*sets, t.labels)
		return t.v
	case Doc:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = toPlain(e, sets)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = toPlain(e, sets)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = toPlain(e, sets)
		}
		return out
	default:
		*sets = append(*sets, nil)
		return v
	}
}

// Keys returns the document's keys in sorted order.
func (d Doc) Keys() []string {
	out := make([]string, 0, len(d))
	for k := range d {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String implements fmt.Stringer without exposing labelled contents.
func (d Doc) String() string {
	return fmt.Sprintf("taint.Doc{%s}[%s]", strings.Join(d.Keys(), " "), d.Labels())
}
