package broker_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// TestChaosShardedConsumers hammers the networked broker with everything
// the sharded consumer path must survive at once: a consumer engine whose
// bus spreads subscriptions across several STOMP connections, concurrent
// publishers, subscription churn from short-lived clients, and mid-stream
// connection drops (both abrupt TCP closes and graceful disconnects).
// Under -race it doubles as the data-race check for the per-shard read
// loops feeding the engine's value-typed queues.
//
// The invariant: every subscription that survives the chaos — here, the
// engine's subscriptions, whose connections are never dropped — receives
// every published event exactly once, in per-subscription order, and the
// engine then tears down cleanly.
func TestChaosShardedConsumers(t *testing.T) {
	const (
		shards     = 3
		fanout     = 6
		publishers = 4
		perPub     = 250
		churners   = 3
	)
	total := publishers * perPub

	policy := label.NewPolicy()
	policy.Grant("consumer", label.Clearance, label.MustParsePattern("label:conf:chaos.test/*"))
	policy.Grant("churn", label.Clearance, label.MustParsePattern("label:conf:chaos.test/*"))
	br := broker.New(policy)
	defer br.Close()
	srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	// onError tolerates the errors churn naturally produces — connection
	// drops racing in-flight frames. Anything else fails the test.
	onError := func(err error) {
		var pe *stomp.ProtocolError
		if errors.Is(err, net.ErrClosed) || errors.As(err, &pe) {
			t.Errorf("unexpected bus error: %v", err)
			return
		}
		// read EOF / reset-by-peer after a drop: expected background noise
	}

	eng, err := engine.New(engine.Config{
		Policy: policy,
		Bus: func(principal string) (broker.Bus, error) {
			return broker.DialBus(srv.Addr(), broker.ClientConfig{
				Login:   principal,
				Shards:  shards,
				OnError: onError,
			})
		},
		QueueSize: 256,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}

	// Each surviving subscription records the sequence numbers it sees.
	// Subscriptions run sequentially on their own engine worker, so the
	// slices need no locks; engine.Stop's wait establishes the
	// happens-before for the final read.
	seen := make([][]int, fanout)
	for i := range seen {
		seen[i] = make([]int, 0, total)
	}
	err = eng.AddUnit(chaosUnit{name: "consumer", init: func(ctx *engine.InitContext) error {
		for i := 0; i < fanout; i++ {
			i := i
			if err := ctx.Subscribe("/chaos/out", "", func(_ *engine.Context, ev *event.Event) error {
				seq, err := strconv.Atoi(ev.Attr("seq"))
				if err != nil {
					return fmt.Errorf("bad seq attr %q: %v", ev.Attr("seq"), err)
				}
				seen[i] = append(seen[i], seq)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}

	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup

	// Churners: short-lived sharded clients that subscribe, receive a
	// little, unsubscribe or vanish. Odd iterations drop the TCP
	// connections abruptly (stomp.Client.Close sends no DISCONNECT);
	// even ones disconnect gracefully mid-stream.
	for c := 0; c < churners; c++ {
		chaosWG.Add(1)
		go func(c int) {
			defer chaosWG.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for iter := 0; ; iter++ {
				select {
				case <-stopChaos:
					return
				default:
				}
				cl, err := broker.DialBus(srv.Addr(), broker.ClientConfig{
					Login:   "churn",
					Shards:  1 + iter%3,
					OnError: onError,
				})
				if err != nil {
					t.Errorf("churner %d dial: %v", c, err)
					return
				}
				var ids []string
				for s := 0; s < 1+rng.Intn(3); s++ {
					id, err := cl.Subscribe("/chaos/out", "", func(*event.Event) {})
					if err != nil {
						// The broker may be shutting the churner's conn
						// down already; only a pre-drop failure is a bug.
						break
					}
					ids = append(ids, id)
				}
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				if iter%2 == 0 {
					for _, id := range ids {
						_ = cl.Unsubscribe(id)
					}
					_ = cl.Close() // graceful DISCONNECT mid-stream
				} else {
					// Abrupt mid-stream connection drop: subscriptions die
					// with the TCP connections; the server must clean up.
					abruptClose(cl)
				}
			}
		}(c)
	}

	// Publishers: concurrent labelled publishes with globally unique
	// sequence numbers.
	var seq atomic.Int64
	lbl := label.Conf("chaos.test/records")
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for n := 0; n < perPub; n++ {
				s := seq.Add(1) - 1
				ev := event.New("/chaos/out", map[string]string{"seq": strconv.FormatInt(s, 10)}, lbl)
				if err := br.Publish("consumer", ev); err != nil {
					t.Errorf("Publish seq %d: %v", s, err)
					return
				}
			}
		}()
	}
	pubWG.Wait()

	// Everything is published; wait for the surviving subscriptions to
	// drain the wire, then stop the chaos and the engine.
	deadline := time.Now().Add(2 * time.Minute)
	for eng.Stats().EventsProcessed < uint64(total*fanout) {
		if time.Now().After(deadline) {
			t.Fatalf("processed %d of %d events", eng.Stats().EventsProcessed, total*fanout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stopChaos)
	chaosWG.Wait()
	eng.Stop() // clean teardown: closes shard conns, drains queues, joins workers

	if got := eng.Stats().CallbackErrors; got != 0 {
		t.Errorf("%d callback errors", got)
	}
	if eng.Stats().EventsProcessed != uint64(total*fanout) {
		t.Errorf("processed %d events after Stop, want exactly %d (duplicates?)",
			eng.Stats().EventsProcessed, total*fanout)
	}
	for i, got := range seen {
		if len(got) != total {
			t.Errorf("subscription %d: %d deliveries, want %d", i, len(got), total)
			continue
		}
		counts := make(map[int]int, total)
		for _, s := range got {
			counts[s]++
		}
		for s := 0; s < total; s++ {
			if counts[s] != 1 {
				t.Errorf("subscription %d: seq %d delivered %d times, want exactly once", i, s, counts[s])
			}
		}
	}
}

// abruptClose tears down a sharded client's TCP connections without a
// DISCONNECT handshake, simulating a consumer crash mid-stream.
func abruptClose(cl *broker.Client) { cl.AbruptClose() }

// TestChaosWindowedPublishers extends the chaos suite to the producer
// fast path: windowed asynchronous publishers (sharded across publish
// connections) pipeline receipt-tracked SENDs at a consumer engine while
// their connections are abruptly dropped mid-batch. Under -race it
// doubles as the data-race check for the publish window.
//
// The invariants: a batch whose Flush succeeded is receipt-confirmed end
// to end, so every surviving subscription must receive each of its events
// exactly once; a mid-batch drop must surface through Publish or Flush
// (never be swallowed) and leave the client failing fast; and no event —
// confirmed or not — is ever duplicated.
func TestChaosWindowedPublishers(t *testing.T) {
	const (
		fanout       = 4
		publishers   = 3
		batch        = 20
		confirmGoal  = 200 // confirmed events per publisher
		dropInterval = 3   // abrupt drop every Nth batch
	)

	policy := label.NewPolicy()
	policy.Grant("consumer", label.Clearance, label.MustParsePattern("label:conf:chaos.test/*"))
	br := broker.New(policy)
	defer br.Close()
	srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	onError := func(err error) {
		var pe *stomp.ProtocolError
		if errors.As(err, &pe) {
			t.Errorf("unexpected protocol error: %v", err)
		}
		// Everything else — read EOFs, resets, receipt failures after a
		// drop — is the chaos this test injects.
	}

	eng, err := engine.New(engine.Config{
		Policy: policy,
		Bus: func(principal string) (broker.Bus, error) {
			return broker.DialBus(srv.Addr(), broker.ClientConfig{
				Login:   principal,
				Shards:  2,
				OnError: onError,
			})
		},
		QueueSize: 256,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}

	// seen[i] counts deliveries per sequence number for subscription i;
	// the handlers run sequentially per subscription worker, but the
	// final check polls concurrently, so a mutex guards the maps.
	var seenMu sync.Mutex
	seen := make([]map[int]int, fanout)
	for i := range seen {
		seen[i] = make(map[int]int)
	}
	err = eng.AddUnit(chaosUnit{name: "consumer", init: func(ctx *engine.InitContext) error {
		for i := 0; i < fanout; i++ {
			i := i
			if err := ctx.Subscribe("/chaos/win", "", func(_ *engine.Context, ev *event.Event) error {
				seq, err := strconv.Atoi(ev.Attr("seq"))
				if err != nil {
					return fmt.Errorf("bad seq attr %q: %v", ev.Attr("seq"), err)
				}
				seenMu.Lock()
				seen[i][seq]++
				seenMu.Unlock()
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}

	// confirmed collects the sequence numbers of every batch whose Flush
	// barrier succeeded: those publishes are broker-acknowledged and must
	// reach every surviving subscription.
	var confirmedMu sync.Mutex
	confirmed := make(map[int]struct{})
	var seq atomic.Int64
	lbl := label.Conf("chaos.test/records")

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			dial := func() *broker.Client {
				cl, err := broker.DialBus(srv.Addr(), broker.ClientConfig{
					Login:         "pub-" + strconv.Itoa(p),
					PublishWindow: 8,
					PublishShards: 2,
					SendTimeout:   5 * time.Second,
					OnError:       onError,
				})
				if err != nil {
					t.Errorf("publisher %d dial: %v", p, err)
					return nil
				}
				return cl
			}
			cl := dial()
			if cl == nil {
				return
			}
			defer func() { _ = cl.Close() }()

			done := 0
			for iter := 0; done < confirmGoal; iter++ {
				drop := iter%dropInterval == dropInterval-1
				seqs := make([]int, 0, batch)
				failed := false
				for n := 0; n < batch; n++ {
					if drop && n == batch/2 {
						// Mid-batch crash: every connection dies with
						// receipts still in flight.
						abruptClose(cl)
					}
					s := int(seq.Add(1) - 1)
					ev := event.New("/chaos/win",
						map[string]string{"seq": strconv.Itoa(s)}, lbl)
					if err := cl.Publish(ev); err != nil {
						failed = true
						break
					}
					seqs = append(seqs, s)
				}
				flushErr := cl.Flush()
				switch {
				case drop:
					// The drop must be reported by Publish or Flush, and
					// the window must stay failed afterwards.
					if !failed && flushErr == nil {
						t.Errorf("publisher %d: dropped batch reported no error", p)
					}
					if err := cl.Publish(event.New("/chaos/win", nil, lbl)); err == nil {
						t.Errorf("publisher %d: Publish after drop succeeded; want sticky error", p)
					}
					cl = dial()
					if cl == nil {
						return
					}
				case failed || flushErr != nil:
					// Collateral damage from a previous drop racing the
					// redial; retry on a fresh connection.
					_ = cl.Close()
					cl = dial()
					if cl == nil {
						return
					}
				default:
					confirmedMu.Lock()
					for _, s := range seqs {
						confirmed[s] = struct{}{}
					}
					confirmedMu.Unlock()
					done += len(seqs)
				}
			}
		}(p)
	}
	pubWG.Wait()

	confirmedMu.Lock()
	want := make([]int, 0, len(confirmed))
	for s := range confirmed {
		want = append(want, s)
	}
	confirmedMu.Unlock()
	if len(want) < publishers*confirmGoal {
		t.Fatalf("only %d confirmed publishes, want >= %d", len(want), publishers*confirmGoal)
	}

	// Every confirmed publish must reach every subscription.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		missing := 0
		seenMu.Lock()
		for i := 0; i < fanout; i++ {
			for _, s := range want {
				if seen[i][s] == 0 {
					missing++
				}
			}
		}
		seenMu.Unlock()
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d confirmed deliveries still missing", missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Settle, then check nothing was delivered twice — confirmed or not.
	time.Sleep(100 * time.Millisecond)
	eng.Stop()

	seenMu.Lock()
	defer seenMu.Unlock()
	for i := 0; i < fanout; i++ {
		for s, n := range seen[i] {
			if n != 1 {
				t.Errorf("subscription %d: seq %d delivered %d times, want exactly once", i, s, n)
			}
		}
	}
}

// chaosUnit adapts a name and init function to engine.Unit.
type chaosUnit struct {
	name string
	init func(ctx *engine.InitContext) error
}

func (u chaosUnit) Name() string                       { return u.name }
func (u chaosUnit) Init(ctx *engine.InitContext) error { return u.init(ctx) }
