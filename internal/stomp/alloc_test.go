package stomp

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// messageFrame builds the 6-header MESSAGE frame used by the allocation
// regression tests — the shape of a broker delivery on the hot path.
func messageFrame() *Frame {
	f := NewFrame(CmdMessage)
	f.SetHeader(HdrDestination, "/patient_report")
	f.SetHeader(HdrSubscription, "sub-12")
	f.SetHeader(HdrMessageID, "m-3-4711")
	f.SetHeader("patient_id", "33812769")
	f.SetHeader("type", "cancer")
	f.SetHeader("x-safeweb-labels", "label:conf:ecric.org.uk/mdt/7")
	f.Body = []byte(`{"summary": "report", "mdt": 7}`)
	return f
}

// TestEncodeAllocs pins the encoder's per-frame allocation budget: once
// its scratch buffers are warm, encoding a 6-header MESSAGE frame must
// not allocate (budget ≤ 1 alloc/op guards against regression, steady
// state is 0).
func TestEncodeAllocs(t *testing.T) {
	f := messageFrame()
	var enc Encoder
	if err := enc.Encode(io.Discard, f); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := enc.Encode(io.Discard, f); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	})
	if avg > 1 {
		t.Errorf("Encode allocs/op = %g, want <= 1", avg)
	}
}

// TestEncoderShedsLargeBuffer: encoding one huge body must not pin its
// scratch buffer for the connection's lifetime.
func TestEncoderShedsLargeBuffer(t *testing.T) {
	f := NewFrame(CmdSend)
	f.SetHeader(HdrDestination, "/t")
	f.Body = make([]byte, maxRetainedEncodeBuf+1)
	var enc Encoder
	if err := enc.Encode(io.Discard, f); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if cap(enc.buf) > maxRetainedEncodeBuf {
		t.Errorf("retained %d-byte scratch buffer, want <= %d", cap(enc.buf), maxRetainedEncodeBuf)
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	f := messageFrame()
	var enc Encoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(io.Discard, f); err != nil {
			b.Fatalf("Encode: %v", err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	var wire bytes.Buffer
	if err := WriteFrame(&wire, messageFrame()); err != nil {
		b.Fatalf("WriteFrame: %v", err)
	}
	raw := bytes.NewReader(wire.Bytes())
	br := bufio.NewReaderSize(raw, 32*1024)
	dec := Decoder{r: br}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw.Reset(wire.Bytes())
		br.Reset(raw)
		if _, err := dec.Decode(); err != nil {
			b.Fatalf("Decode: %v", err)
		}
	}
}
