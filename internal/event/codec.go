package event

import (
	"errors"
	"fmt"
	"io"

	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// Wire-format header names. The paper encodes labels "as event headers with
// special semantics in SEND and SUBSCRIBE messages" (§4.2); these are those
// headers.
const (
	// HeaderLabels carries the event's label set as a comma-separated
	// list of label URIs on SEND/MESSAGE frames.
	HeaderLabels = ReservedPrefix + "labels"
	// HeaderClearance carries a subscriber's clearance set on SUBSCRIBE
	// frames, as narrowed by the engine from the unit's policy.
	HeaderClearance = ReservedPrefix + "clearance"
	// HeaderDestination is STOMP's standard destination header.
	HeaderDestination = "destination"
)

// MarshalHeaders flattens the event into STOMP headers and a body. The
// returned map contains the destination, every attribute, and the label
// header.
func MarshalHeaders(e *Event) (map[string]string, []byte, error) {
	if err := e.Validate(); err != nil {
		return nil, nil, err
	}
	headers := make(map[string]string, len(e.Attrs)+2)
	for k, v := range e.Attrs {
		headers[k] = v
	}
	headers[HeaderDestination] = e.Topic
	if !e.Labels.IsEmpty() {
		if e.labelHeader != "" {
			headers[HeaderLabels] = e.labelHeader
		} else {
			headers[HeaderLabels] = e.Labels.String()
		}
	}
	return headers, e.Body, nil
}

// ErrTransportAttr reports an event whose attribute names collide with
// STOMP transport headers (destination, receipt, content-length, ...).
// The legacy map path resolves such collisions through header-map
// overwrite semantics; the direct SEND encoding refuses them instead, and
// the networked client falls back to the map path so wire behaviour is
// unchanged for these (pathological) events.
var ErrTransportAttr = errors.New("event: attribute name collides with a transport header")

// EncodeSend writes the event as a STOMP SEND frame in its canonical wire
// form, splicing the per-publish receipt header (when non-empty) at its
// sorted position: the producer fast path, byte-identical to marshalling
// the event into a header map and encoding a SEND frame from it. The
// event must be frozen; the image is memoised on it (see SendImage).
func EncodeSend(w io.Writer, enc *stomp.Encoder, e *Event, receipt string) error {
	img, err := e.SendImage()
	if err != nil {
		return err
	}
	return enc.EncodeSendImage(w, img, receipt)
}

// buildSendImage encodes the event's SEND wire image into dst in a single
// pass: destination, label header and attributes are merged in canonical
// sorted order straight into the image buffer, with no intermediate map.
func buildSendImage(e *Event, dst *stomp.WireImage) error {
	if err := e.Validate(); err != nil {
		return err
	}
	for k := range e.Attrs {
		if skippedHeader(k) {
			return fmt.Errorf("%w: %q", ErrTransportAttr, k)
		}
	}
	labels := ""
	if !e.Labels.IsEmpty() {
		labels = e.labelHeader
		if labels == "" {
			labels = e.Labels.String()
		}
	}
	hint := len(stomp.CmdSend) + len(stomp.HdrContentLength) + 24 +
		len(HeaderDestination) + len(e.Topic) + 2 + len(e.Body)
	n := len(e.Attrs) + 1
	if labels != "" {
		hint += len(HeaderLabels) + len(labels) + 2
		n++
	}
	// Typical events carry a handful of attributes; the sorted-key scratch
	// stays on the stack for them and only outsized events pay for it.
	var kbuf [12]string
	keys := kbuf[:0]
	if n > len(kbuf) {
		keys = make([]string, 0, n)
	}
	keys = append(keys, HeaderDestination)
	if labels != "" {
		keys = append(keys, HeaderLabels) // "x-safeweb-" sorts after "destination"
	}
	for k, v := range e.Attrs {
		hint += len(k) + len(v) + 2
		// Insertion sort, as the encoder's sorted-key helper does; attrs
		// cannot collide with the two fixed keys (transport names are
		// gated above, the reserved prefix by Validate).
		keys = append(keys, k)
		for i := len(keys) - 1; i > 0 && keys[i-1] > k; i-- {
			keys[i], keys[i-1] = keys[i-1], keys[i]
		}
	}
	b := stomp.NewImageBuilder(stomp.CmdSend, hint)
	for _, k := range keys {
		switch k {
		case HeaderDestination:
			b.Header(k, e.Topic)
		case HeaderLabels:
			b.Header(k, labels)
		default:
			b.Header(k, e.Attrs[k])
		}
	}
	*dst = b.Finish(e.Body)
	return nil
}

// skippedHeaders is the single source of truth for STOMP headers that are
// transport metadata rather than event attributes. Both unmarshal paths —
// the legacy map walk and the single-pass view walk — consult this table,
// so they cannot silently diverge when a header is added.
var skippedHeaders = map[string]struct{}{
	HeaderDestination: {}, HeaderLabels: {}, HeaderClearance: {},
	"subscription": {}, "message-id": {}, "content-length": {},
	"receipt": {}, "receipt-id": {}, "id": {}, "ack": {},
	"selector": {}, "transaction": {},
	stomp.HdrDeliveryOffset: {},
}

// skippedHeader reports whether a STOMP header is transport metadata
// rather than an event attribute.
func skippedHeader(k string) bool {
	_, ok := skippedHeaders[k]
	return ok
}

// skippedHeaderBytes is skippedHeader for keys still in wire-byte form
// (the map index elides the string conversion).
func skippedHeaderBytes(k []byte) bool {
	_, ok := skippedHeaders[string(k)]
	return ok
}

// LabelCache memoises the most recent label-header parse. Wire traffic
// between two units typically repeats one label set for long runs of
// messages, and parsed label sets are immutable, so a one-entry memo
// keyed on the raw header string removes the per-message parse from the
// connection read loop. A LabelCache must be confined to one goroutine
// (each connection read loop owns one).
type LabelCache struct {
	hdr string
	set label.Set
}

func (c *LabelCache) parse(hdr string) (label.Set, error) {
	if c != nil && c.hdr == hdr {
		return c.set, nil
	}
	set, err := label.ParseSet(hdr)
	if err != nil {
		return nil, err
	}
	if c != nil {
		c.hdr, c.set = hdr, set
	}
	return set, nil
}

// UnmarshalHeaders reconstructs an event from STOMP headers and a body.
// Standard STOMP headers that are not event attributes (subscription,
// message-id, content-length, receipt) are skipped; the attribute map is
// sized to the attributes that survive the skip, and stays nil when none
// do. The event takes ownership of body without copying; callers must
// not reuse it.
func UnmarshalHeaders(headers map[string]string, body []byte) (*Event, error) {
	return UnmarshalHeadersCached(headers, body, nil)
}

// UnmarshalHeadersCached is UnmarshalHeaders with an optional label-parse
// memo for connection read loops (see LabelCache).
func UnmarshalHeadersCached(headers map[string]string, body []byte, cache *LabelCache) (*Event, error) {
	e := &Event{Topic: headers[HeaderDestination]}
	if e.Topic == "" {
		return nil, fmt.Errorf("event: missing %s header", HeaderDestination)
	}
	attrs := 0
	for k := range headers {
		if !skippedHeader(k) {
			attrs++
		}
	}
	if attrs > 0 {
		e.Attrs = make(map[string]string, attrs)
	}
	for k, v := range headers {
		if k == HeaderLabels {
			labels, err := cache.parse(v)
			if err != nil {
				return nil, fmt.Errorf("event: bad label header: %w", err)
			}
			e.Labels = labels
		}
		if skippedHeader(k) {
			continue
		}
		e.Attrs[k] = v
	}
	if len(body) > 0 {
		e.Body = body
	}
	return e, nil
}

// DecodeCache memoises per-read-loop decode state for the map-free view
// path: the most recent label-header parse (label sets are immutable and
// wire traffic repeats one set for long runs) and the most recent topic
// string (fan-out consumers see the same destination on every frame). Like
// LabelCache, a DecodeCache must be confined to one goroutine — each
// connection read loop owns one. A nil *DecodeCache is valid and simply
// never hits.
type DecodeCache struct {
	labels LabelCache
	topic  string
	keys   map[string]string
}

// maxCachedAttrKeys bounds the attribute-key intern table: a peer
// streaming unbounded distinct keys must not grow the cache forever.
// Beyond the cap, unseen keys simply allocate per frame again.
const maxCachedAttrKeys = 256

// attrKey returns an owned string for an attribute key given as wire
// bytes. Connections repeat the same few attribute keys on essentially
// every frame, so the interned copy makes the steady-state key cost zero.
func (c *DecodeCache) attrKey(b []byte) string {
	if c == nil {
		return string(b)
	}
	if k, ok := c.keys[string(b)]; ok { // conversion elided
		return k
	}
	k := string(b)
	if len(c.keys) < maxCachedAttrKeys {
		if c.keys == nil {
			c.keys = make(map[string]string)
		}
		c.keys[k] = k
	}
	return k
}

// parseLabels parses a label header given as wire bytes, consulting and
// updating the memo. The bytes are not retained.
func (c *DecodeCache) parseLabels(hdr []byte) (label.Set, error) {
	if c != nil && c.labels.set != nil && string(hdr) == c.labels.hdr {
		return c.labels.set, nil
	}
	s := string(hdr)
	set, err := label.ParseSet(s)
	if err != nil {
		return nil, err
	}
	if c != nil && set != nil {
		c.labels.hdr, c.labels.set = s, set
	}
	return set, nil
}

// topicString returns an owned string for a destination header given as
// wire bytes, reusing the memoised copy when the topic repeats.
func (c *DecodeCache) topicString(b []byte) string {
	if c != nil && string(b) == c.topic && c.topic != "" {
		return c.topic
	}
	t := string(b)
	if c != nil {
		c.topic = t
	}
	return t
}

// addWireAttr records one attribute decoded off the wire: the map is
// created lazily with the given size hint and repeated keys keep the
// first occurrence, matching the map-materialisation semantics. k must be
// an owned string; vb is copied.
func (e *Event) addWireAttr(k string, vb []byte, hint int) {
	if e.Attrs == nil {
		e.Attrs = make(map[string]string, hint)
	}
	if _, dup := e.Attrs[k]; !dup {
		e.Attrs[k] = string(vb)
	}
}

// UnmarshalView reconstructs an event from a decoded STOMP frame view in a
// single pass over the headers: no header map is ever built for transport
// metadata, label parses and the topic string are memoised via cache, and
// the event takes ownership of body without copying (callers must not
// reuse it). The semantics — skipped transport headers, first-occurrence-
// wins for repeated keys, missing-destination error — match
// UnmarshalHeaders over the materialised map.
//
// The view must follow the stomp.HeaderView ownership rules: UnmarshalView
// runs on the view's read loop and retains nothing from the view's scratch
// buffer.
func UnmarshalView(hv *stomp.HeaderView, body []byte, cache *DecodeCache) (*Event, error) {
	return unmarshalView(&Event{}, hv, body, cache)
}

// UnmarshalViewDelivery is UnmarshalView for delivery pipelines with a
// strict per-event lifecycle: the returned event comes from the delivery
// pool and is recycled by Release once its callback completes (the
// engine does this for every delivered event). The caller's pipeline must
// own the event exclusively and must not retain it past Release; events
// that are re-published or otherwise escape the delivery lifecycle must
// use UnmarshalView instead. A pooled event reuses its attribute map, so
// a fan-out consumer's steady state allocates only the body and the
// attribute value strings.
func UnmarshalViewDelivery(hv *stomp.HeaderView, body []byte, cache *DecodeCache) (*Event, error) {
	e := newPooledEvent()
	if _, err := unmarshalView(e, hv, body, cache); err != nil {
		e.Release() // malformed frame: recycle the unused pooled event
		return nil, err
	}
	return e, nil
}

// unmarshalView builds the event into e, which must be zero-valued apart
// from a reusable (empty) attribute map.
func unmarshalView(e *Event, hv *stomp.HeaderView, body []byte, cache *DecodeCache) (*Event, error) {
	n := hv.Len()
	seenTopic, seenLabels := false, false
	for i := 0; i < n; i++ {
		k := hv.InternedKey(i)
		if k == "" {
			kb := hv.KeyBytes(i)
			if skippedHeaderBytes(kb) {
				continue
			}
			e.addWireAttr(cache.attrKey(kb), hv.ValueBytes(i), n-i)
			continue
		}
		switch k {
		case HeaderDestination:
			if !seenTopic {
				seenTopic = true
				e.Topic = cache.topicString(hv.ValueBytes(i))
			}
		case HeaderLabels:
			if !seenLabels {
				seenLabels = true
				labels, err := cache.parseLabels(hv.ValueBytes(i))
				if err != nil {
					return nil, fmt.Errorf("event: bad label header: %w", err)
				}
				e.Labels = labels
			}
		default:
			if skippedHeader(k) {
				continue // transport metadata, not an event attribute
			}
			// Interned but attribute-like (login, session, ...): same
			// treatment as any application header.
			e.addWireAttr(k, hv.ValueBytes(i), n-i)
		}
	}
	if e.Topic == "" {
		return nil, fmt.Errorf("event: missing %s header", HeaderDestination)
	}
	if len(body) > 0 {
		e.Body = body
	}
	return e, nil
}
