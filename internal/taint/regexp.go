package taint

import (
	"regexp"

	"safeweb/internal/label"
)

// Regular-expression support. The paper needed the Rubinius runtime
// specifically "to manipulate the regular expression variables ($~, $1,
// etc.) directly... to add taint tracking to Ruby's regular expression
// methods" (§4.4). Go's regexp API has no global match variables; the
// equivalent guarantee is that every submatch extracted from a labelled
// string carries the subject's labels.

// Match is the result of a successful regular-expression match against a
// labelled string: the whole match and every capture group are labelled
// with the subject's labels (any substring of labelled data is as
// confidential as the whole).
type Match struct {
	groups []String
	names  []string
}

// MatchRegexp applies re to the labelled subject. ok is false when the
// pattern does not match.
func MatchRegexp(re *regexp.Regexp, subject String) (m Match, ok bool) {
	groups := re.FindStringSubmatch(subject.s)
	if groups == nil {
		return Match{}, false
	}
	out := Match{
		groups: make([]String, len(groups)),
		names:  re.SubexpNames(),
	}
	for i, g := range groups {
		out.groups[i] = String{s: g, labels: subject.labels}
	}
	return out, true
}

// Group returns the i-th capture group (0 is the whole match). Out-of-range
// indices return the empty string, matching the forgiving semantics of
// Ruby's $1..$9.
func (m Match) Group(i int) String {
	if i < 0 || i >= len(m.groups) {
		return String{}
	}
	return m.groups[i]
}

// Named returns the capture group with the given name, or the empty string.
func (m Match) Named(name string) String {
	for i, n := range m.names {
		if n == name && i < len(m.groups) {
			return m.groups[i]
		}
	}
	return String{}
}

// NumGroups returns the number of groups including the whole match.
func (m Match) NumGroups() int { return len(m.groups) }

// ReplaceAllRegexp returns subject with matches of re replaced by repl
// (which may use $1-style references). The result composes subject and
// replacement labels.
func ReplaceAllRegexp(re *regexp.Regexp, subject String, repl String) String {
	return String{
		s:      re.ReplaceAllString(subject.s, repl.s),
		labels: label.Derive(subject.labels, repl.labels),
	}
}

// MatchString reports whether re matches the labelled subject. The boolean
// itself is an implicit flow the paper's model accepts (Resin-style
// tracking targets explicit data flow of non-malicious code, §3.2).
func MatchString(re *regexp.Regexp, subject String) bool {
	return re.MatchString(subject.s)
}
