package stomp

import (
	"io"
	"strconv"
)

// WireImage is the preencoded, immutable wire form of one frame: the
// canonical header block and the content-length/body tail, with splice
// points where per-send headers are inserted. For broadcast MESSAGE
// frames the per-delivery routing headers (subscription, message-id) go
// in at the end of the header block via Encoder.EncodeImage; for
// publisher SEND frames an optional receipt header goes in at its sorted
// position via Encoder.EncodeSendImage, keeping the wire bytes identical
// to a frame encoded with the receipt in its header map.
//
// An image is encoded once — at first delivery of a published event, or
// at publish time on the producer — and then shared by every send of the
// same logical frame: fan-out to S sessions (or S retried/fan-in
// publishes) costs one marshal instead of S. The backing buffer is
// immutable after NewMessageImage or ImageBuilder.Finish returns; images
// are safe for concurrent use and must never be mutated.
type WireImage struct {
	// buf holds the full image: command line plus sorted base headers up
	// to split, content-length header, blank line, body and the NUL
	// terminator after it.
	buf   []byte
	split int
	// rsplit is the offset where a "receipt" header sorts within the
	// header block; EncodeSendImage splices the per-publish receipt there
	// so the bytes match an Encoder.Encode of the same frame with the
	// receipt set in its map.
	rsplit int
}

// RawMessageImage wraps already-encoded MESSAGE image bytes — typically
// read back from a durable journal — without copying or re-marshalling.
// buf must be a full image as produced by NewMessageImage or package
// event's builder (command line, header block, content-length, body,
// NUL), and split its routing-header splice offset; both come verbatim
// from Bytes and Split of the image that was persisted. The caller hands
// over ownership: buf must not be mutated afterwards.
func RawMessageImage(buf []byte, split int) *WireImage {
	return &WireImage{buf: buf, split: split, rsplit: split}
}

// Bytes returns the full encoded image. The returned slice aliases the
// image and must not be modified; pair it with Split to persist an image
// and RawMessageImage to restore it.
func (img *WireImage) Bytes() []byte { return img.buf }

// Split returns the routing-header splice offset within Bytes.
func (img *WireImage) Split() int { return img.split }

// Prefix returns the command line and canonical (sorted, escaped) header
// block, ending just before the splice point for the routing headers.
// The returned slice aliases the image and must not be modified.
func (img *WireImage) Prefix() []byte { return img.buf[:img.split:img.split] }

// Suffix returns the content-length header, the blank separator line, the
// body and the frame's NUL terminator. The returned slice aliases the
// image and must not be modified.
func (img *WireImage) Suffix() []byte { return img.buf[img.split:] }

// WireLen returns the encoded size of the image excluding the per-delivery
// routing headers.
func (img *WireImage) WireLen() int { return len(img.buf) }

// NewMessageImage encodes a MESSAGE frame with the given headers and body
// into a wire image. The subscription and message-id headers are reserved
// for per-delivery routing and are dropped if present, exactly as
// Encoder.EncodeMessage drops them; content-length is always derived from
// body. The bytes an image puts on the wire (with routing headers spliced
// in) are identical to EncodeMessage's for the same logical frame.
//
// headers and body are copied; the caller keeps ownership.
func NewMessageImage(headers map[string]string, body []byte) *WireImage {
	bld := NewImageBuilder(CmdMessage, imageSizeHint(headers, body))
	keys := sortedHeaderKeys(make([]string, 0, len(headers)), headers, HdrContentLength)
	for _, k := range keys {
		if k == HdrSubscription || k == HdrMessageID {
			continue
		}
		bld.Header(k, headers[k])
	}
	img := bld.Finish(body)
	return &img
}

// ImageBuilder assembles a WireImage from headers supplied one at a time,
// for map-free producers (package event encodes a frozen event's SEND
// image straight from its fields, with no intermediate header map).
// Callers must supply headers in the canonical sorted order the Encoder
// emits, and must not pass content-length (derived from the body by
// Finish) nor, for images destined for EncodeImage, the subscription and
// message-id routing headers.
type ImageBuilder struct {
	buf    []byte
	rsplit int
}

// NewImageBuilder starts an image for the given command. sizeHint should
// estimate the full encoded size so the common case builds the image in a
// single allocation.
func NewImageBuilder(command string, sizeHint int) ImageBuilder {
	b := ImageBuilder{rsplit: -1}
	b.buf = make([]byte, 0, sizeHint)
	b.buf = append(b.buf, command...)
	b.buf = append(b.buf, '\n')
	return b
}

// Header appends one header, escaping key and value. Headers must arrive
// in canonical sorted key order.
func (b *ImageBuilder) Header(k, v string) {
	if b.rsplit < 0 && k > HdrReceipt {
		b.rsplit = len(b.buf)
	}
	b.buf = appendEscapedHeader(b.buf, k)
	b.buf = append(b.buf, ':')
	b.buf = appendEscapedHeader(b.buf, v)
	b.buf = append(b.buf, '\n')
}

// Finish seals the image with the content-length header derived from
// body, the body itself and the frame terminator. body is copied; the
// caller keeps ownership. The builder must not be reused afterwards.
func (b *ImageBuilder) Finish(body []byte) WireImage {
	split := len(b.buf)
	if b.rsplit < 0 {
		b.rsplit = split
	}
	buf := append(b.buf, HdrContentLength...)
	buf = append(buf, ':')
	buf = strconv.AppendInt(buf, int64(len(body)), 10)
	buf = append(buf, '\n', '\n')
	buf = append(buf, body...)
	buf = append(buf, 0)
	b.buf = nil
	return WireImage{buf: buf, split: split, rsplit: b.rsplit}
}

// imageSizeHint estimates the encoded size so the common case builds the
// image in a single allocation.
func imageSizeHint(headers map[string]string, body []byte) int {
	n := len(CmdMessage) + len(HdrContentLength) + 24 + len(body)
	for k, v := range headers {
		n += len(k) + len(v) + 2
	}
	return n
}

// EncodeImage writes a preencoded MESSAGE image to w with the per-delivery
// subscription and message-id (idPrefix followed by the decimal seq)
// routing headers spliced between the image's header block and its tail.
// Only the routing headers are encoded per delivery; the shared image is
// written as-is, so a fan-out burst pays the header/body marshalling cost
// once per published event rather than once per session.
//
//safeweb:hotpath
func (e *Encoder) EncodeImage(w io.Writer, img *WireImage, subscription, idPrefix string, seq uint64) error {
	if _, err := w.Write(img.Prefix()); err != nil {
		return err
	}
	b := e.buf[:0]
	b = append(b, HdrSubscription...)
	b = append(b, ':')
	b = appendEscapedHeader(b, subscription)
	b = append(b, '\n')
	b = append(b, HdrMessageID...)
	b = append(b, ':')
	b = appendEscapedHeader(b, idPrefix)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, '\n')
	if cap(b) <= maxRetainedEncodeBuf {
		e.buf = b[:0]
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.Write(img.Suffix())
	return err
}

// EncodeImageOffset is EncodeImage with one extra per-delivery header:
// the journal offset of a replayed durable event, carried as
// HdrDeliveryOffset so a durable consumer can ack cumulative progress.
// As with EncodeImage only the spliced headers are encoded per delivery;
// the stored image bytes are written as-is.
//
//safeweb:hotpath
func (e *Encoder) EncodeImageOffset(w io.Writer, img *WireImage, subscription, idPrefix string, seq uint64, offset int64) error {
	if _, err := w.Write(img.Prefix()); err != nil {
		return err
	}
	b := e.buf[:0]
	b = append(b, HdrSubscription...)
	b = append(b, ':')
	b = appendEscapedHeader(b, subscription)
	b = append(b, '\n')
	b = append(b, HdrMessageID...)
	b = append(b, ':')
	b = appendEscapedHeader(b, idPrefix)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, '\n')
	b = append(b, HdrDeliveryOffset...)
	b = append(b, ':')
	b = strconv.AppendInt(b, offset, 10)
	b = append(b, '\n')
	if cap(b) <= maxRetainedEncodeBuf {
		e.buf = b[:0]
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.Write(img.Suffix())
	return err
}

// EncodeSendImage writes a preencoded SEND image to w, splicing the
// per-publish receipt header (when receipt is non-empty) at its canonical
// sorted position within the header block. The wire bytes are identical
// to an Encoder.Encode of the same logical frame with the receipt set in
// its header map — the producer fast path changes where the bytes come
// from, never what is on the wire. A receipt-free send writes the shared
// image in a single Write.
//
//safeweb:hotpath
func (e *Encoder) EncodeSendImage(w io.Writer, img *WireImage, receipt string) error {
	if receipt == "" {
		_, err := w.Write(img.buf)
		return err
	}
	if _, err := w.Write(img.buf[:img.rsplit:img.rsplit]); err != nil {
		return err
	}
	b := e.buf[:0]
	b = append(b, HdrReceipt...)
	b = append(b, ':')
	b = appendEscapedHeader(b, receipt)
	b = append(b, '\n')
	if cap(b) <= maxRetainedEncodeBuf {
		e.buf = b[:0]
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.Write(img.buf[img.rsplit:])
	return err
}
