package docstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"safeweb/internal/label"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New("app", Options{})
	doc, err := s.Put("a", record{MID: "7", Name: "A"}, label.NewSet(mdt7), "")
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "b", record{MID: "8", Name: "B"})
	// Tombstone one document so deletion state survives reload.
	if err := s.Delete("b", func() string {
		d, _ := s.Get("b")
		return d.Rev
	}()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "app.json")
	if err := s.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}

	back, err := Load(path, Options{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	got, err := back.Get("a")
	if err != nil {
		t.Fatalf("Get after load: %v", err)
	}
	if got.Rev != doc.Rev || !got.Labels.Contains(mdt7) {
		t.Errorf("doc after load = %+v", got)
	}
	if _, err := back.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Error("tombstone lost in reload")
	}
	if back.Seq() != s.Seq() {
		t.Errorf("seq after load = %d, want %d", back.Seq(), s.Seq())
	}

	// The reloaded store continues the revision/sequence chain.
	if _, err := back.Put("c", record{Name: "C"}, nil, ""); err != nil {
		t.Fatalf("Put after load: %v", err)
	}
	if back.Seq() != s.Seq()+1 {
		t.Errorf("seq after new put = %d", back.Seq())
	}

	// A reloaded replica can serve as a replication target resuming from
	// the saved checkpoint.
	dst, err := Load(path, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dst.ReadOnly() {
		t.Error("options not applied on load")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json"), Options{}); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad, Options{}); err == nil {
		t.Error("corrupt snapshot loaded")
	}
	noID := filepath.Join(t.TempDir(), "noid.json")
	if err := writeFile(noID, `{"name":"x","seq":1,"docs":[{"_rev":"1-x","_seq":1}]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(noID, Options{}); err == nil {
		t.Error("snapshot with id-less doc loaded")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o600)
}
