package broker

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// TestWireImageMarshalOncePerPublish is the publish-once acceptance
// assertion: an event fanned out to subscriptions on several sessions
// (two connections here, one of them sharded) is marshalled into its
// MESSAGE wire form exactly once per publish — the wire image is shared
// across every session and shard instead of re-encoded per session. The
// event carries attributes, the case the old per-session memo could not
// share even within one session.
func TestWireImageMarshalOncePerPublish(t *testing.T) {
	_, srv := startNetBroker(t)

	received := make(chan string, 64)
	subscribe := func(c *Client, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := c.Subscribe("/patient_report", "", func(ev *event.Event) {
				received <- ev.Attr("patient_id")
			}); err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
		}
	}
	one := dialBus(t, srv.Addr(), "cleared")
	subscribe(one, 2)
	two, err := DialBus(srv.Addr(), ClientConfig{
		Login:       "cleared",
		Shards:      2,
		SendTimeout: 5 * time.Second,
		OnError:     func(err error) { t.Logf("bus error: %v", err) },
	})
	if err != nil {
		t.Fatalf("DialBus sharded: %v", err)
	}
	t.Cleanup(func() { _ = two.Close() })
	subscribe(two, 2)

	producer := dialBus(t, srv.Addr(), "producer")
	const publishes = 3
	before := event.WireImageBuilds()
	for i := 0; i < publishes; i++ {
		ev := event.New("/patient_report",
			map[string]string{"patient_id": "1", "type": "cancer"},
			label.Conf("ecric.org.uk/mdt/7"))
		ev.Body = []byte(`{"summary": "report"}`)
		if err := producer.Publish(ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	waitFor(t, "fan-out deliveries", func() bool { return len(received) == 4*publishes })
	if got := event.WireImageBuilds() - before; got != publishes {
		t.Errorf("wire image builds = %d for %d publishes across 2 clients/3 connections, want %d",
			got, publishes, publishes)
	}
}

// TestShardedUnsubscribeUnknownID is the regression test for the sharded
// unknown-id pass-through: with Shards > 1, an unqualified id must be
// rejected — connection-local ids repeat across shards, so the old blind
// forward to shard 0 could tear down an unrelated live subscription and
// strand its client-side entry.
func TestShardedUnsubscribeUnknownID(t *testing.T) {
	_, srv := startNetBroker(t)

	c, err := DialBus(srv.Addr(), ClientConfig{
		Login:       "cleared",
		Shards:      2,
		SendTimeout: 5 * time.Second,
		OnError:     func(err error) { t.Logf("bus error: %v", err) },
	})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })

	var delivered atomic.Int64
	ids := make([]string, 2)
	for i := range ids {
		// Round-robin placement: one subscription per shard, each with
		// connection-local raw id "sub-1".
		id, err := c.Subscribe("/patient_report", "", func(*event.Event) { delivered.Add(1) })
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		if !strings.HasPrefix(id, "s"+string(rune('0'+i))+":") {
			t.Fatalf("subscription id %q not shard-qualified as expected", id)
		}
	}

	// The raw, unqualified id exists on both connections; the sharded
	// client must refuse it rather than guess a shard.
	if err := c.Unsubscribe("sub-1"); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("Unsubscribe(unqualified) = %v, want ErrUnknownSubscription", err)
	}

	// Both subscriptions are still live: a publish reaches both.
	producer := dialBus(t, srv.Addr(), "producer")
	if err := producer.Publish(event.New("/patient_report", map[string]string{"type": "cancer"})); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	waitFor(t, "both subscriptions alive", func() bool { return delivered.Load() == 2 })

	// Qualified ids still unsubscribe cleanly on their own shard.
	for _, id := range ids {
		if err := c.Unsubscribe(id); err != nil {
			t.Fatalf("Unsubscribe(%s): %v", id, err)
		}
	}
	if err := producer.Publish(event.New("/patient_report", map[string]string{"type": "cancer"})); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := delivered.Load(); got != 2 {
		t.Errorf("deliveries after unsubscribe = %d, want 2", got)
	}
}

// TestDeliveryDropAccounted pins the audit trail for the "cannot happen"
// marshal failure on the delivery path: a matched event that cannot be
// marshalled must bump the server's dropped-delivery counter and reach
// the OnDeliveryError hook instead of vanishing.
func TestDeliveryDropAccounted(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()
	type drop struct {
		sub string
		err error
	}
	drops := make(chan drop, 1)
	srv, err := NewServer("127.0.0.1:0", b, ServerConfig{
		Logf: t.Logf,
		OnDeliveryError: func(_ uint64, sub string, _ *event.Event, err error) {
			drops <- drop{sub: sub, err: err}
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	// Publish-time validation makes an unmarshalable event unreachable
	// through the public API, so inject one directly into the delivery
	// path: a reserved attribute fails MarshalHeaders.
	bad := &event.Event{
		Topic: "/t",
		Attrs: map[string]string{event.ReservedPrefix + "labels": "forged"},
	}
	bad.Freeze()
	ss := &serverSession{sess: &stomp.Session{}}
	srv.deliver(ss, nil, "sub-9", bad)

	select {
	case d := <-drops:
		if d.sub != "sub-9" || d.err == nil {
			t.Errorf("drop = %+v", d)
		}
	default:
		t.Fatal("dropped delivery did not reach OnDeliveryError")
	}
	if got := srv.Stats().DroppedDeliveries; got != 1 {
		t.Errorf("DroppedDeliveries = %d, want 1", got)
	}
}

// TestWireSubscriptionSharesEvent documents the wire-delivery contract
// the image sharing relies on: a wire subscription receives the frozen
// published event itself even when it carries attributes, while a normal
// subscription receives an isolated copy.
func TestWireSubscriptionSharesEvent(t *testing.T) {
	b := New(nil)
	defer b.Close()
	var viaWire, viaNormal *event.Event
	if _, err := b.SubscribeWire("s", "/t", "", func(ev *event.Event) { viaWire = ev }); err != nil {
		t.Fatalf("SubscribeWire: %v", err)
	}
	if _, err := b.Subscribe("s", "/t", "", func(ev *event.Event) { viaNormal = ev }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	ev := event.New("/t", map[string]string{"k": "v"})
	if err := b.Publish("p", ev); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if viaWire != ev {
		t.Error("wire subscription did not receive the frozen original")
	}
	if viaNormal == ev {
		t.Error("normal subscription shared the attr-carrying original")
	}
}
