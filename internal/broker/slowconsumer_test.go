package broker_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

func TestOverflowPolicyParseAndString(t *testing.T) {
	for _, p := range []broker.OverflowPolicy{
		broker.OverflowBlock, broker.OverflowDropNewest,
		broker.OverflowDropOldest, broker.OverflowDisconnect,
	} {
		got, err := broker.ParseOverflowPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseOverflowPolicy(%q) = %v, %v; want %v, nil", p.String(), got, err, p)
		}
	}
	if got, err := broker.ParseOverflowPolicy(""); err != nil || got != broker.OverflowBlock {
		t.Errorf("ParseOverflowPolicy(\"\") = %v, %v; want block, nil", got, err)
	}
	if _, err := broker.ParseOverflowPolicy("drop-everything"); err == nil {
		t.Error("ParseOverflowPolicy accepted an unknown policy")
	}
}

func TestServerRejectsBadOverflowConfig(t *testing.T) {
	br := broker.New(label.NewPolicy())
	defer br.Close()
	for _, cfg := range []broker.ServerConfig{
		{Overflow: broker.OverflowPolicy(99)},
		{OverflowEvictAfter: -1},
		{WriteQueueLen: -1},
		{WriteTimeout: -time.Second},
	} {
		if srv, err := broker.NewServer("127.0.0.1:0", br, cfg); err == nil {
			_ = srv.Close()
			t.Errorf("NewServer accepted bad config %+v", cfg)
		}
	}
}

// TestDeadSessionDeliveryAccounted pins the accounting for the transport
// failure path of deliver: a matched delivery that fails to write because
// the session died must be counted in DroppedDeliveries and reported
// through OnDeliveryError, never discarded silently.
func TestDeadSessionDeliveryAccounted(t *testing.T) {
	br := broker.New(label.NewPolicy())
	defer br.Close()

	type drop struct {
		sessionID uint64
		sub       string
		ev        *event.Event
		err       error
	}
	drops := make(chan drop, 1)
	srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{
		Logf: t.Logf,
		OnDeliveryError: func(sessionID uint64, sub string, ev *event.Event, err error) {
			drops <- drop{sessionID, sub, ev, err}
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	cl, err := broker.DialBus(srv.Addr(), broker.ClientConfig{Login: "consumer"})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	defer cl.Close()

	var sessID uint64
	for _, ss := range srv.SessionStats() {
		if ss.Login == "consumer" {
			sessID = ss.ID
		}
	}
	if sessID == 0 {
		t.Fatal("consumer session not found")
	}

	ev := event.New("/dead/t", map[string]string{"k": "v"})
	if !srv.KillSessionAndDeliver(sessID, "sub-1", ev) {
		t.Fatal("KillSessionAndDeliver: session unknown")
	}
	select {
	case d := <-drops:
		if !errors.Is(d.err, net.ErrClosed) {
			t.Errorf("drop error = %v, want net.ErrClosed", d.err)
		}
		if d.sessionID != sessID || d.sub != "sub-1" || d.ev != ev {
			t.Errorf("drop = %+v, want session %d sub-1 with the delivered event", d, sessID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dead-session delivery not reported through OnDeliveryError")
	}
	if got := srv.Stats().DroppedDeliveries; got != 1 {
		t.Errorf("DroppedDeliveries = %d, want 1", got)
	}
	if got := srv.Stats().OverflowDrops; got != 0 {
		t.Errorf("OverflowDrops = %d, want 0 (transport failure is not an overflow)", got)
	}
}

// dialStalled connects a raw STOMP subscriber that completes the CONNECT
// handshake, subscribes to topic (receipt-confirmed, so deliveries are
// guaranteed to start flowing) and then never reads again — the
// slow-consumer chaos tests' dead weight. The small read buffer bounds how
// much the kernel absorbs on the stalled connection's behalf.
func dialStalled(t testing.TB, addr, login, topic, subID string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial stalled: %v", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	br := bufio.NewReader(conn)
	connect := stomp.NewFrame(stomp.CmdConnect)
	connect.SetHeader(stomp.HdrLogin, login)
	if err := stomp.WriteFrame(conn, connect); err != nil {
		t.Fatalf("stalled CONNECT: %v", err)
	}
	f, err := stomp.ReadFrame(br)
	if err != nil || f.Command != stomp.CmdConnected {
		t.Fatalf("stalled handshake: frame %v, err %v", f, err)
	}
	sub := stomp.NewFrame(stomp.CmdSubscribe)
	sub.SetHeader(stomp.HdrID, subID)
	sub.SetHeader(stomp.HdrDestination, topic)
	sub.SetHeader(stomp.HdrReceipt, "r-sub")
	if err := stomp.WriteFrame(conn, sub); err != nil {
		t.Fatalf("stalled SUBSCRIBE: %v", err)
	}
	for {
		f, err := stomp.ReadFrame(br)
		if err != nil {
			t.Fatalf("stalled waiting for SUBSCRIBE receipt: %v", err)
		}
		if f.Command == stomp.CmdReceipt {
			return conn
		}
	}
}

// TestChaosSlowConsumers drives the networked broker with one session
// that stops reading mid-stream plus healthy engine subscriptions and
// concurrent publishers, under each non-blocking overflow policy.
//
// The invariants: healthy subscriptions receive every published event
// exactly once (the stalled session absorbs its own loss); publishes stay
// bounded (never wedged behind the dead peer); the policy acts on the
// stalled session — drop-oldest keeps evicting its queue, disconnect
// evicts the whole session — and every suppressed delivery is counted in
// OverflowDrops and reported through OnDeliveryError with ErrSlowConsumer.
// Under -race it doubles as the data-race check for the overflow paths
// (trySend, sendDropOldest, eviction racing concurrent publishers).
func TestChaosSlowConsumers(t *testing.T) {
	const (
		healthySubs = 3
		publishers  = 2
		perBatch    = 8 // per publisher; 2*8*healthySubs = 48 frames/batch < queueLen
		queueLen    = 64
		maxEvents   = 2000
	)

	run := func(t *testing.T, overflow broker.OverflowPolicy, evictAfter int,
		stop func(broker.ServerStats) bool) {
		policy := label.NewPolicy()
		policy.Grant("consumer", label.Clearance, label.MustParsePattern("label:conf:slow.test/*"))
		policy.Grant("stalled", label.Clearance, label.MustParsePattern("label:conf:slow.test/*"))
		br := broker.New(policy)
		defer br.Close()

		var slowDrops, otherDrops atomic.Uint64
		var dropMu sync.Mutex
		dropSessions := make(map[uint64]bool)
		var slowMu sync.Mutex
		var slowEvents []broker.SlowConsumerEvent
		srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{
			Logf:               t.Logf,
			Overflow:           overflow,
			OverflowEvictAfter: evictAfter,
			WriteQueueLen:      queueLen,
			OnDeliveryError: func(sessionID uint64, sub string, ev *event.Event, err error) {
				if errors.Is(err, broker.ErrSlowConsumer) {
					slowDrops.Add(1)
				} else {
					otherDrops.Add(1)
				}
				dropMu.Lock()
				dropSessions[sessionID] = true
				dropMu.Unlock()
			},
			OnSlowConsumer: func(ev broker.SlowConsumerEvent) {
				slowMu.Lock()
				slowEvents = append(slowEvents, ev)
				slowMu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		defer srv.Close()

		// Healthy consumers: one engine with healthySubs subscriptions.
		var seenMu sync.Mutex
		seen := make([]map[int]int, healthySubs)
		for i := range seen {
			seen[i] = make(map[int]int)
		}
		var seenTotal atomic.Int64
		eng, err := engine.New(engine.Config{
			Policy: policy,
			Bus: func(principal string) (broker.Bus, error) {
				return broker.DialBus(srv.Addr(), broker.ClientConfig{
					Login: principal,
					OnError: func(err error) {
						var pe *stomp.ProtocolError
						if errors.As(err, &pe) {
							t.Errorf("healthy bus protocol error: %v", err)
						}
					},
				})
			},
			QueueSize: 256,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatalf("engine.New: %v", err)
		}
		defer eng.Stop()
		err = eng.AddUnit(chaosUnit{name: "consumer", init: func(ctx *engine.InitContext) error {
			for i := 0; i < healthySubs; i++ {
				i := i
				if err := ctx.Subscribe("/slow/out", "", func(_ *engine.Context, ev *event.Event) error {
					seq, err := strconv.Atoi(ev.Attr("seq"))
					if err != nil {
						return fmt.Errorf("bad seq attr %q: %v", ev.Attr("seq"), err)
					}
					seenMu.Lock()
					seen[i][seq]++
					seenMu.Unlock()
					seenTotal.Add(1)
					return nil
				}); err != nil {
					return err
				}
			}
			return nil
		}})
		if err != nil {
			t.Fatalf("AddUnit: %v", err)
		}

		// The slow consumer: subscribes, then never reads again.
		conn := dialStalled(t, srv.Addr(), "stalled", "/slow/out", "s-0")
		defer conn.Close()
		var stalledID uint64
		for _, ss := range srv.SessionStats() {
			if ss.Login == "stalled" {
				stalledID = ss.ID
			}
		}
		if stalledID == 0 {
			t.Fatal("stalled session not found")
		}

		// Publishers: paced batches of labelled events with 16KB bodies —
		// big enough that the stalled connection's kernel buffers fill and
		// the policy has to act. Between batches the healthy subscriptions
		// are allowed to catch up, so their queues never overflow and the
		// exactly-once invariant below really tests the policy's
		// selectivity, not the pacing.
		body := make([]byte, 16*1024)
		lbl := label.Conf("slow.test/records")
		var seq atomic.Int64
		var maxPublish atomic.Int64 // ns
		published := 0
		deadline := time.Now().Add(2 * time.Minute)
		for !stop(srv.Stats()) {
			if published >= maxEvents {
				t.Fatalf("published %d events without the overflow policy acting: stats %+v",
					published, srv.Stats())
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out after %d events: stats %+v", published, srv.Stats())
			}
			var wg sync.WaitGroup
			for p := 0; p < publishers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for n := 0; n < perBatch; n++ {
						s := seq.Add(1) - 1
						ev := event.New("/slow/out",
							map[string]string{"seq": strconv.FormatInt(s, 10)}, lbl)
						ev.Body = body
						start := time.Now()
						err := br.Publish("consumer", ev)
						el := int64(time.Since(start))
						for {
							cur := maxPublish.Load()
							if el <= cur || maxPublish.CompareAndSwap(cur, el) {
								break
							}
						}
						if err != nil {
							t.Errorf("Publish seq %d: %v", s, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			published = int(seq.Load())
			// Healthy catch-up barrier: their queues drain fully before the
			// next batch.
			for seenTotal.Load() < int64(published*healthySubs) {
				if time.Now().After(deadline) {
					t.Fatalf("healthy consumers stalled: %d of %d deliveries after %d events (lost to the policy?)",
						seenTotal.Load(), published*healthySubs, published)
				}
				time.Sleep(time.Millisecond)
			}
		}

		// No publish may have wedged behind the dead peer: with a
		// non-blocking policy the enqueue path never waits on the stalled
		// session's writer.
		if max := time.Duration(maxPublish.Load()); max > 5*time.Second {
			t.Errorf("slowest Publish took %v; want bounded (never wedged on the stalled session)", max)
		}

		// Exactly-once for every healthy subscription, across everything
		// published.
		seenMu.Lock()
		for i := 0; i < healthySubs; i++ {
			if len(seen[i]) != published {
				t.Errorf("subscription %d: %d distinct events, want %d", i, len(seen[i]), published)
			}
			for s, n := range seen[i] {
				if n != 1 {
					t.Errorf("subscription %d: seq %d delivered %d times, want exactly once", i, s, n)
				}
			}
		}
		seenMu.Unlock()

		// Accounting consistency: every suppressed delivery was both
		// counted and hooked, and only the stalled session was touched.
		stats := srv.Stats()
		if stats.OverflowDrops == 0 {
			t.Error("no overflow drops recorded")
		}
		if got := slowDrops.Load(); got != stats.OverflowDrops {
			t.Errorf("ErrSlowConsumer hooks %d != Stats().OverflowDrops %d", got, stats.OverflowDrops)
		}
		if got := otherDrops.Load(); got != stats.DroppedDeliveries {
			t.Errorf("non-overflow drop hooks %d != Stats().DroppedDeliveries %d", got, stats.DroppedDeliveries)
		}
		if stats.QueueHighWater != queueLen {
			t.Errorf("QueueHighWater = %d, want %d (the stalled queue filled)", stats.QueueHighWater, queueLen)
		}
		dropMu.Lock()
		for id := range dropSessions {
			if id != stalledID {
				t.Errorf("delivery dropped for session %d; only the stalled session %d may lose deliveries", id, stalledID)
			}
		}
		dropMu.Unlock()
		slowMu.Lock()
		foundEvict := false
		for _, ev := range slowEvents {
			if ev.SessionID != stalledID || ev.Login != "stalled" || ev.Policy != overflow {
				t.Errorf("SlowConsumerEvent %+v, want session %d login stalled policy %v", ev, stalledID, overflow)
			}
			if ev.Evicted {
				foundEvict = true
			}
		}
		slowMu.Unlock()
		if stats.SlowConsumerEvictions > 0 {
			if !foundEvict {
				t.Error("session evicted but no Evicted SlowConsumerEvent hooked")
			}
			// The eviction must really tear the session down: the read
			// loop observes the killed connection and the disconnect path
			// removes the session (and its subscriptions) from the server.
			evictDeadline := time.Now().Add(10 * time.Second)
			for {
				gone := true
				for _, ss := range srv.SessionStats() {
					if ss.ID == stalledID {
						gone = false
					}
				}
				if gone {
					break
				}
				if time.Now().After(evictDeadline) {
					t.Error("stalled session still registered after eviction")
					break
				}
				time.Sleep(time.Millisecond)
			}
		} else if foundEvict {
			t.Error("Evicted SlowConsumerEvent hooked but SlowConsumerEvictions is 0")
		}
	}

	t.Run("drop-oldest", func(t *testing.T) {
		run(t, broker.OverflowDropOldest, 0, func(st broker.ServerStats) bool {
			return st.OverflowDrops >= 20
		})
	})

	t.Run("disconnect", func(t *testing.T) {
		var evicted atomic.Bool
		run(t, broker.OverflowDisconnect, 4, func(st broker.ServerStats) bool {
			if st.SlowConsumerEvictions > 0 {
				evicted.Store(true)
				return true
			}
			return false
		})
		if !evicted.Load() {
			t.Fatal("stalled session never evicted")
		}
	})
}
