package core

import (
	"io"
	"net/http"
	"testing"

	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/webfront"
)

func testPolicy() *label.Policy {
	p := label.NewPolicy()
	p.Grant("echo-unit", label.Clearance, label.MustParsePattern("label:conf:test/*"))
	p.SetPrincipal("writer", label.NewPrivileges().
		Grant(label.Clearance, label.MustParsePattern("label:conf:test/*")), true)
	return p
}

func TestAssemblyPipelineToFrontend(t *testing.T) {
	m, err := New(Config{Policy: testPolicy(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(m.Stop)

	// A writer unit persists every /in event into the app database with
	// its labels.
	err = m.AddUnit(&engine.FuncUnit{UnitName: "writer", InitFunc: func(ctx *engine.InitContext) error {
		return ctx.Subscribe("/in", "", func(ctx *engine.Context, ev *event.Event) error {
			_, perr := m.AppDB.Put("doc-"+ev.Attr("id"),
				map[string]string{"value": ev.Attr("value")},
				ctx.Labels().Confidentiality(), "")
			return perr
		})
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}

	// A user cleared for test/a.
	u, err := m.WebDB.CreateUser("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	m.WebDB.GrantLabel(u.ID, label.Clearance, label.MustParsePattern("label:conf:test/a"))

	m.Frontend.Get("/doc/:id", func(c *webfront.Ctx) error {
		doc, err := m.DMZDB.Get("doc-" + c.Param("id"))
		if err != nil {
			return webfront.ErrNotFound("doc")
		}
		wrapped, err := m.Frontend.WrapDoc(doc)
		if err != nil {
			return err
		}
		c.Write(wrapped.GetString("value"))
		return nil
	})

	m.Start()
	if err := m.PublishControl("producer", "/in", map[string]string{"id": "1", "value": "v1"}); err != nil {
		t.Fatalf("publish unlabelled: %v", err)
	}
	labelled := event.New("/in", map[string]string{"id": "2", "value": "v2"}, label.Conf("test/b"))
	if err := m.Broker.Publish("producer", labelled); err != nil {
		t.Fatalf("publish labelled: %v", err)
	}
	m.Sync()

	// S1: the DMZ replica has the docs but rejects writes.
	if m.DMZDB.Len() != 2 {
		t.Fatalf("DMZ len = %d", m.DMZDB.Len())
	}
	if _, err := m.DMZDB.Put("direct", map[string]string{}, nil, ""); err == nil {
		t.Fatal("DMZ accepted a direct write")
	}

	addr, err := m.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeHTTP: %v", err)
	}
	// Idempotent.
	if again, _ := m.ServeHTTP("127.0.0.1:0"); again != addr {
		t.Error("second ServeHTTP returned a different address")
	}

	fetch := func(path string) (int, string) {
		req, _ := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
		req.SetBasicAuth("alice", "pw")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Unlabelled doc: served.
	if status, body := fetch("/doc/1"); status != http.StatusOK || body != "v1" {
		t.Errorf("doc/1 = %d %q", status, body)
	}
	// Labelled with test/b, user cleared only for test/a: blocked (S2).
	if status, body := fetch("/doc/2"); status != http.StatusForbidden || body == "v2" {
		t.Errorf("doc/2 = %d %q", status, body)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing policy accepted")
	}
}

func TestStopIdempotent(t *testing.T) {
	m, err := New(Config{Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Stop()
	m.Stop()
}
