package vulninject

import "testing"

// TestSecurityEvaluation is the §5.2 experiment matrix: each injected
// vulnerability class must disclose data without SafeWeb and be prevented
// with it.
func TestSecurityEvaluation(t *testing.T) {
	outcomes, err := RunAll(t.Logf)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(outcomes) != 4 {
		t.Fatalf("outcomes = %d, want 4", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.BaselineDisclosed {
			t.Errorf("%s: bug did not disclose without SafeWeb — injection is vacuous", o.Name)
		}
		if !o.SafeWebPrevented {
			t.Errorf("%s: SafeWeb failed to prevent the disclosure", o.Name)
		}
		if !o.Passed() {
			t.Errorf("%s: experiment failed (%s)", o.Name, o.Detail)
		}
	}
}
