// Command mdtportal runs the paper's full case study (§5.1): the MDT web
// portal over a synthetic cancer registry, deployed in the Fig. 4
// topology — producer → broker → aggregator → storage → Intranet appdb →
// push replication → read-only DMZ appdb → web frontend.
//
// Run it with:
//
//	go run ./examples/mdtportal [-patients 200] [-serve]
//
// Without -serve it performs a scripted walkthrough: imports the registry,
// shows the labelled records, queries the portal as several users and
// demonstrates policy P1 (own records visible, foreign records blocked,
// same-region aggregates visible, cross-region blocked). With -serve it
// keeps the HTTP server running and prints credentials.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/journal"
	"safeweb/internal/maindb"
	"safeweb/internal/mdt"
)

func main() {
	patients := flag.Int("patients", 200, "number of synthetic patients")
	serve := flag.Bool("serve", false, "keep serving after the walkthrough")
	networkBroker := flag.Bool("network-broker", false, "run units over the STOMP network broker")
	publishWindow := flag.Int("publish-window", 0,
		"receipt-confirmed publishes in flight per unit (with -network-broker; 0 = fire-and-forget)")
	overflow := flag.String("overflow", "block",
		"slow-consumer overflow policy for broker sessions (with -network-broker): block, drop-newest, drop-oldest or disconnect")
	writeQueue := flag.Int("write-queue", 0,
		"per-session delivery queue length in frames (with -network-broker; 0 = default 128)")
	writeTimeout := flag.Duration("write-timeout", 0,
		"per-flush write deadline for broker sessions (with -network-broker; 0 = unbounded)")
	subscribeCredit := flag.Int("subscribe-credit", 0,
		"per-subscription delivery window in messages, replenished as units complete callbacks (with -network-broker; 0 = no credit flow control)")
	durable := flag.String("durable", "",
		"comma-separated topic patterns the broker journals for replay and resume (with -network-broker; requires -journal-dir)")
	journalDir := flag.String("journal-dir", "",
		"directory for the durable topic journals (with -durable)")
	retentionAge := flag.Duration("journal-retention-age", 0,
		"delete journal segments whose newest record is older than this (with -durable; 0 = unbounded)")
	retentionBytes := flag.Int64("journal-retention-bytes", 0,
		"per-topic journal byte budget, oldest segments deleted first (with -durable; 0 = unbounded)")
	journalSync := flag.String("journal-sync", "never",
		"journal fsync policy (with -durable): never, batch or always")
	flag.Parse()

	policy, err := broker.ParseOverflowPolicy(*overflow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdtportal:", err)
		os.Exit(2)
	}
	syncPolicy, err := journal.ParseSyncPolicy(*journalSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdtportal:", err)
		os.Exit(2)
	}
	var durableTopics []string
	if *durable != "" {
		durableTopics = strings.Split(*durable, ",")
	}
	if err := run(*patients, *serve, *networkBroker, *publishWindow, policy,
		*writeQueue, *writeTimeout, *subscribeCredit, durableTopics, *journalDir,
		*retentionAge, *retentionBytes, syncPolicy); err != nil {
		fmt.Fprintln(os.Stderr, "mdtportal:", err)
		os.Exit(1)
	}
}

func run(patients int, serve bool, networkBroker bool, publishWindow int,
	overflow broker.OverflowPolicy, writeQueue int, writeTimeout time.Duration, subscribeCredit int,
	durable []string, journalDir string,
	retentionAge time.Duration, retentionBytes int64, journalSync journal.SyncPolicy) error {
	fmt.Printf("deploying MDT portal (%d patients, network broker: %v)\n", patients, networkBroker)
	d, err := mdt.Deploy(mdt.DeployConfig{
		Registry:      maindb.Config{Seed: 2026, Patients: patients},
		NetworkBroker: networkBroker,
		// Units publish through the broker's windowed async fast path
		// when enabled: pipelined receipt-confirmed SENDs instead of
		// fire-and-forget, with Flush/Close as the delivery barrier.
		PublishWindow: publishWindow,
		// Slow-consumer protection for the broker front: bounded
		// per-session delivery queues with an explicit overflow policy
		// and an optional per-flush write deadline; credit adds proactive
		// per-subscription delivery windows replenished as the engine
		// completes callbacks.
		Overflow:        overflow,
		WriteQueueLen:   writeQueue,
		WriteTimeout:    writeTimeout,
		SubscribeCredit: subscribeCredit,
		// Durable topics journal the listed patterns to disk so consumers
		// can replay and resume them with offset/group subscriptions; the
		// retention windows bound the journals and the sync policy trades
		// power-loss durability against append latency.
		Durable:               durable,
		JournalDir:            journalDir,
		JournalRetentionAge:   retentionAge,
		JournalRetentionBytes: retentionBytes,
		JournalSync:           journalSync,
	})
	if err != nil {
		return err
	}
	defer d.Stop()

	if err := d.ImportAll(); err != nil {
		return err
	}
	fmt.Printf("import complete: %d documents in the Intranet appdb, %d replicated to the DMZ\n",
		d.AppDB.Len(), d.DMZDB.Len())
	fmt.Printf("broker: %+v\n", d.Broker.Stats())

	addr, err := d.ServeHTTP("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Println("portal listening on http://" + addr)

	// Pick two MDTs from different regions for the walkthrough.
	var a, b maindb.MDT
	for _, m := range d.Registry.MDTs() {
		if docs, _ := d.DMZDB.Query(mdt.ViewRecordsByMDT, m.ID); len(docs) == 0 {
			continue
		}
		switch {
		case a.ID == "":
			a = m
		case b.ID == "" && m.Region != a.Region:
			b = m
		}
	}
	if a.ID == "" || b.ID == "" {
		return fmt.Errorf("registry too small for the walkthrough; raise -patients")
	}

	show := func(desc, path, user string) error {
		status, body, err := get("http://"+addr+path, user, d.Creds[user])
		if err != nil {
			return err
		}
		summary := body
		var records []json.RawMessage
		if json.Unmarshal([]byte(body), &records) == nil {
			summary = fmt.Sprintf("%d records", len(records))
		} else if len(body) > 60 {
			summary = body[:60] + "..."
		}
		fmt.Printf("  %-52s as %-8s -> HTTP %d (%s)\n", desc, user, status, summary)
		return nil
	}

	fmt.Println("\npolicy P1 walkthrough:")
	steps := []struct{ desc, path, user string }{
		{"own records (F1)", "/records/" + a.ID, a.ID},
		{"own front page (F2)", "/", a.ID},
		{"own metrics (F2)", "/metrics/" + a.ID, a.ID},
		{"region comparison (F3)", "/compare/" + a.Region, a.ID},
		{"regional aggregate (F3)", "/regional/" + a.Region, a.ID},
		{"ANOTHER MDT's records — must be denied", "/records/" + b.ID, a.ID},
		{"other region's comparison — must be denied", "/compare/" + b.Region, a.ID},
		{"other region's regional aggregate — allowed by P1", "/regional/" + b.Region, a.ID},
		{"everything, as the admin", "/records/" + b.ID, "admin"},
	}
	for _, s := range steps {
		if err := show(s.desc, s.path, s.user); err != nil {
			return err
		}
	}

	front := d.Frontend.Stats()
	fmt.Printf("\nfrontend: %d requests served, %d blocked by the release check\n",
		front.Requests, front.Blocked)
	for _, v := range d.Frontend.Violations() {
		fmt.Printf("  blocked: user %s on %s (missing clearance for %s)\n", v.Username, v.Path, v.Missing)
	}

	if serve {
		fmt.Printf("\nserving; log in with any MDT id (e.g. %s) and password %q. Ctrl-C to stop.\n",
			a.ID, d.Creds[a.ID])
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
	return nil
}

func get(url, user, pass string) (int, string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	req.SetBasicAuth(user, pass)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(body), nil
}
