// Package core assembles the SafeWeb middleware: the event-processing
// backend (broker + engine + application database), the one-way
// replication path, and the web frontend, wired in the topology of the
// paper's Fig. 4 deployment:
//
//	main DB → producer → [broker] → aggregator → storage → Intranet appdb
//	Intranet appdb --push replication--> DMZ appdb (read-only)
//	DMZ appdb → web frontend → users
//
// Data flows strictly left to right across the Intranet/DMZ boundary
// (security requirement S1); labels flow with the data end-to-end
// (requirement S2).
package core

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/docstore"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/jail"
	"safeweb/internal/journal"
	"safeweb/internal/label"
	"safeweb/internal/webdb"
	"safeweb/internal/webfront"
)

// Config configures a Middleware.
type Config struct {
	// Policy is the unit data-flow policy. Required.
	Policy *label.Policy
	// NetworkBroker runs the broker behind its STOMP network front on a
	// loopback port, with units connecting as STOMP clients — the paper's
	// deployment shape. False wires units to the broker in-process, which
	// is the fast path for tests and benchmarks.
	NetworkBroker bool
	// PublishWindow, with NetworkBroker, gives every unit's bus windowed
	// asynchronous publishing: up to that many receipt-confirmed SENDs in
	// flight per unit over a dedicated publish connection, instead of
	// fire-and-forget. See broker.ClientConfig.PublishWindow for the
	// ordering and error semantics. Zero keeps fire-and-forget publishes.
	PublishWindow int
	// Overflow, with NetworkBroker, selects the broker front's
	// per-session delivery overflow policy — what happens to a matched
	// delivery when a consumer session's write queue is full. The zero
	// value blocks (lossless back-pressure, the historical behaviour);
	// see broker.OverflowPolicy for the drop and eviction policies.
	Overflow broker.OverflowPolicy
	// OverflowEvictAfter is the consecutive-overflow eviction threshold
	// for broker.OverflowDisconnect; zero keeps the broker default.
	OverflowEvictAfter int
	// WriteQueueLen, with NetworkBroker, sets each session's delivery
	// queue length in frames; zero keeps the transport default (128).
	WriteQueueLen int
	// WriteTimeout, with NetworkBroker, bounds every write to a session
	// so a peer that stops reading fails its connection instead of
	// wedging its writer; zero disables the deadline.
	WriteTimeout time.Duration
	// SubscribeCredit, with NetworkBroker, arms credit-based flow control
	// on every unit's subscriptions: each SUBSCRIBE advertises a delivery
	// window of that many messages, replenished automatically as the
	// engine completes callbacks (see broker.ClientConfig.SubscribeCredit).
	// Zero disables credit — the wire behaviour is unchanged.
	SubscribeCredit int
	// Durable, with NetworkBroker, lists the topic patterns the broker
	// front journals to disk: publishes on them append to per-topic
	// append-only logs under JournalDir, and consumers can subscribe with
	// offset/group headers to replay and resume (see
	// broker.ServerConfig.Durable). Requires JournalDir.
	Durable []string
	// JournalDir is the directory holding the durable topic journals.
	JournalDir string
	// JournalRetentionAge and JournalRetentionBytes bound the durable
	// topic journals: segments older than the age, or past the per-topic
	// byte budget, are deleted oldest-first (see
	// broker.ServerConfig.JournalRetentionAge/-Bytes). Zero means
	// unbounded.
	JournalRetentionAge   time.Duration
	JournalRetentionBytes int64
	// JournalSync selects the journals' fsync policy (see
	// journal.SyncPolicy); the zero value is journal.SyncNever.
	JournalSync journal.SyncPolicy
	// ReplicationInterval is the Intranet→DMZ push period; zero means
	// 50ms.
	ReplicationInterval time.Duration
	// DisableTracking turns off frontend taint tracking (baseline mode).
	DisableTracking bool
	// AuthWork is the frontend credential-hashing work factor.
	AuthWork int
	// OnRequest observes frontend phase timings.
	OnRequest func(webfront.PhaseTimes)
	// Logf logs; nil is quiet.
	Logf func(format string, args ...any)
}

// Middleware is a running SafeWeb deployment.
type Middleware struct {
	cfg Config

	// Broker is the IFC-aware event broker.
	Broker *broker.Broker
	// BrokerServer is the STOMP front when NetworkBroker is set.
	BrokerServer *broker.Server
	// Engine hosts the processing units.
	Engine *engine.Engine
	// AppDB is the Intranet application database instance.
	AppDB *docstore.Store
	// DMZDB is the read-only DMZ replica the frontend reads.
	DMZDB *docstore.Store
	// Replicator pushes AppDB to DMZDB.
	Replicator *docstore.Replicator
	// WebDB is the frontend's local database.
	WebDB *webdb.DB
	// Frontend is the SafeWeb web application host.
	Frontend *webfront.App

	httpServer *http.Server
	httpAddr   string
}

// New assembles a Middleware. Units and web routes are added by the
// application (see package mdt) before Start.
func New(cfg Config) (*Middleware, error) {
	if cfg.Policy == nil {
		return nil, errors.New("core: Config.Policy is required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.ReplicationInterval <= 0 {
		cfg.ReplicationInterval = 50 * time.Millisecond
	}

	m := &Middleware{cfg: cfg}
	m.Broker = broker.New(cfg.Policy)

	var busFactory engine.BusFactory
	if cfg.NetworkBroker {
		srv, err := broker.NewServer("127.0.0.1:0", m.Broker, broker.ServerConfig{
			Logf:                  cfg.Logf,
			Overflow:              cfg.Overflow,
			OverflowEvictAfter:    cfg.OverflowEvictAfter,
			WriteQueueLen:         cfg.WriteQueueLen,
			WriteTimeout:          cfg.WriteTimeout,
			Durable:               cfg.Durable,
			JournalDir:            cfg.JournalDir,
			JournalRetentionAge:   cfg.JournalRetentionAge,
			JournalRetentionBytes: cfg.JournalRetentionBytes,
			JournalSync:           cfg.JournalSync,
		})
		if err != nil {
			return nil, fmt.Errorf("core: broker server: %w", err)
		}
		m.BrokerServer = srv
		busFactory = func(principal string) (broker.Bus, error) {
			bcfg := broker.ClientConfig{
				Login:           principal,
				SubscribeCredit: cfg.SubscribeCredit,
				OnError:         func(err error) { cfg.Logf("core: bus %s: %v", principal, err) },
			}
			if cfg.PublishWindow > 0 {
				bcfg.PublishWindow = cfg.PublishWindow
				bcfg.SendTimeout = 10 * time.Second
			}
			return broker.DialBus(srv.Addr(), bcfg)
		}
	} else {
		busFactory = func(principal string) (broker.Bus, error) {
			return m.Broker.Endpoint(principal), nil
		}
	}

	eng, err := engine.New(engine.Config{
		Policy: cfg.Policy,
		Bus:    busFactory,
		Audit:  &jail.Audit{},
		Logf:   cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("core: engine: %w", err)
	}
	m.Engine = eng

	m.AppDB = docstore.New("app-intranet", docstore.Options{})
	m.DMZDB = docstore.New("app-dmz", docstore.Options{ReadOnly: true})
	m.Replicator = docstore.NewReplicator(m.AppDB, m.DMZDB, cfg.ReplicationInterval, cfg.Logf)

	m.WebDB = webdb.New()
	front, err := webfront.New(webfront.Config{
		WebDB:           m.WebDB,
		DisableTracking: cfg.DisableTracking,
		AuthWork:        cfg.AuthWork,
		OnRequest:       cfg.OnRequest,
		Logf:            cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("core: frontend: %w", err)
	}
	m.Frontend = front
	return m, nil
}

// AddUnit adds a processing unit to the engine.
func (m *Middleware) AddUnit(u engine.Unit) error { return m.Engine.AddUnit(u) }

// Start launches replication. Units begin processing as soon as they are
// added; Start completes the pipeline to the DMZ.
func (m *Middleware) Start() {
	m.Replicator.Start()
}

// PublishControl publishes a control event (import/metrics triggers) as
// the named principal.
func (m *Middleware) PublishControl(principal, topic string, attrs map[string]string) error {
	return m.Broker.Publish(principal, event.New(topic, attrs))
}

// Sync drains the engine and performs one replication push, leaving the
// DMZ replica consistent with all processing so far. Tests, benchmarks
// and the import CLI use it; production deployments just let the
// replicator tick.
func (m *Middleware) Sync() {
	m.Engine.Drain()
	m.Replicator.Push()
}

// ServeHTTP starts the frontend HTTP server on addr (port 0 picks a free
// port) and returns the bound address.
func (m *Middleware) ServeHTTP(addr string) (string, error) {
	if m.httpServer != nil {
		return m.httpAddr, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("core: listen: %w", err)
	}
	m.httpServer = &http.Server{
		Handler:           m.Frontend,
		ReadHeaderTimeout: 10 * time.Second,
	}
	m.httpAddr = ln.Addr().String()
	go func() {
		if err := m.httpServer.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			m.cfg.Logf("core: http server: %v", err)
		}
	}()
	return m.httpAddr, nil
}

// Stop tears the deployment down in dependency order: engine (stops unit
// inflow), replicator (final push), HTTP server, broker.
func (m *Middleware) Stop() {
	m.Engine.Stop()
	m.Replicator.Stop()
	if m.httpServer != nil {
		_ = m.httpServer.Close()
		m.httpServer = nil
	}
	if m.BrokerServer != nil {
		_ = m.BrokerServer.Close()
	}
	m.Broker.Close()
}
