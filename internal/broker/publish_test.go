package broker

import (
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"safeweb/internal/event"
	"safeweb/internal/label"
)

// TestPublishWindowedOrderingAndFlush: a windowed producer pipelines
// receipt-tracked publishes; the Flush barrier confirms them all, and the
// subscriber observes every event in publish order.
func TestPublishWindowedOrderingAndFlush(t *testing.T) {
	_, srv := startNetBroker(t)
	consumer := dialBus(t, srv.Addr(), "cleared")

	producer, err := DialBus(srv.Addr(), ClientConfig{
		Login:         "producer",
		PublishWindow: 8,
		SendTimeout:   5 * time.Second,
		OnError:       func(err error) { t.Logf("producer error: %v", err) },
	})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	t.Cleanup(func() { _ = producer.Close() })

	var mu sync.Mutex
	var seqs []int
	if _, err := consumer.Subscribe("/win/out", "", func(ev *event.Event) {
		n, _ := strconv.Atoi(ev.Attr("seq"))
		mu.Lock()
		seqs = append(seqs, n)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	const total = 200
	for i := 0; i < total; i++ {
		ev := event.New("/win/out", map[string]string{"seq": strconv.Itoa(i)},
			label.Conf("ecric.org.uk/mdt/7"))
		if err := producer.Publish(ev); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	if err := producer.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	waitFor(t, "all windowed publishes delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seqs) == total
	})
	mu.Lock()
	defer mu.Unlock()
	for i, n := range seqs {
		if n != i {
			t.Fatalf("delivery %d carries seq %d; want publish order preserved", i, n)
		}
	}
}

// TestPublishWindowSurfacesBrokerError: a broker rejection mid-window
// (here an integrity label the principal may not endorse, which makes the
// server error the connection) must surface through the Flush barrier and
// make later publishes fail fast — never be swallowed.
func TestPublishWindowSurfacesBrokerError(t *testing.T) {
	_, srv := startNetBroker(t)
	producer, err := DialBus(srv.Addr(), ClientConfig{
		Login:         "producer", // has no endorsement privilege
		PublishWindow: 4,
		SendTimeout:   2 * time.Second,
		OnError:       func(err error) { t.Logf("producer error: %v", err) },
	})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	t.Cleanup(func() { producer.AbruptClose() }) // the window is failed; no graceful barrier

	forged := event.New("/t", nil, label.Int("ecric.org.uk/mdt"))
	if err := producer.Publish(forged); err != nil {
		// Accepted asynchronously or refused already — both are fine, as
		// long as the failure is reported by the barrier below.
		t.Logf("Publish returned synchronously: %v", err)
	}
	if err := producer.Flush(); err == nil {
		t.Fatal("Flush swallowed the broker rejection; want an error")
	}
	rejected := event.New("/t", nil)
	if err := producer.Publish(rejected); err == nil {
		t.Fatal("Publish after window failure succeeded; want sticky fail-fast error")
	}
	// The fail-fast rejection proved the event never reached the wire, so
	// it must stay mutable for annotation and republish elsewhere.
	//lint:ignore frozenmutate the fail-fast rejection left the event unfrozen; staying mutable is the property under test
	if err := rejected.Set("retry", "1"); err != nil {
		t.Errorf("fail-fast-rejected event is frozen: %v", err)
	}
	// The legacy fallback (transport-colliding attr) must honour the
	// sticky error too: a failed window fails every publish, whichever
	// encoding path the event takes.
	collide := event.New("/t", map[string]string{"ack": "client"})
	if err := producer.Publish(collide); err == nil {
		t.Fatal("legacy-fallback Publish bypassed the window's sticky error")
	}
	if err := producer.Flush(); err == nil {
		t.Fatal("second Flush lost the sticky error")
	}
}

// TestPublishWindowBoundedInflight: a continuously publishing window must
// not grow its receipt FIFO with total publishes — settled receipts are
// compacted away, keeping memory bounded by the window size.
func TestPublishWindowBoundedInflight(t *testing.T) {
	_, srv := startNetBroker(t)
	producer, err := DialBus(srv.Addr(), ClientConfig{
		Login:         "producer",
		PublishWindow: 8,
		SendTimeout:   5 * time.Second,
		OnError:       func(err error) { t.Logf("producer error: %v", err) },
	})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	t.Cleanup(func() { _ = producer.Close() })

	for i := 0; i < 500; i++ { // no Flush: steady-state pipelining
		if err := producer.Publish(event.New("/bounded", nil)); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	win := producer.shards[producer.pubBase].win
	win.mu.Lock()
	length, head := len(win.inflight), win.head
	win.mu.Unlock()
	if outstanding := length - head; outstanding > win.size {
		t.Errorf("window holds %d outstanding receipts, want <= %d", outstanding, win.size)
	}
	if length > 2*win.size {
		t.Errorf("inflight FIFO grew to %d entries over 500 publishes, want <= %d (compacted)",
			length, 2*win.size)
	}
	if err := producer.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// TestPublishFreezeNoMutation pins the publish-side aliasing contract:
// Publish freezes the caller's event but must not otherwise mutate any
// caller-visible state — no attribute map rewrite, no body copy, no
// transport headers leaking into Attrs — on the fast path and on the
// legacy fallback alike.
func TestPublishFreezeNoMutation(t *testing.T) {
	_, srv := startNetBroker(t)
	producer := dialBus(t, srv.Addr(), "producer")

	check := func(name string, ev *event.Event) {
		t.Helper()
		attrsBefore := make(map[string]string, len(ev.Attrs))
		for k, v := range ev.Attrs {
			attrsBefore[k] = v
		}
		attrsPtr := reflect.ValueOf(ev.Attrs).Pointer()
		bodyBefore := ev.Body
		labelsBefore := ev.Labels

		if err := producer.Publish(ev); err != nil {
			t.Fatalf("%s: Publish: %v", name, err)
		}
		//lint:ignore frozenmutate probing the freeze contract: Set after Publish must fail with ErrFrozen
		if err := ev.Set("late", "write"); !errors.Is(err, event.ErrFrozen) {
			t.Errorf("%s: Set after Publish = %v, want ErrFrozen", name, err)
		}
		if reflect.ValueOf(ev.Attrs).Pointer() != attrsPtr {
			t.Errorf("%s: Publish replaced the attribute map", name)
		}
		if !reflect.DeepEqual(ev.Attrs, attrsBefore) {
			t.Errorf("%s: Publish mutated attrs: %v, want %v", name, ev.Attrs, attrsBefore)
		}
		if len(bodyBefore) > 0 && &ev.Body[0] != &bodyBefore[0] {
			t.Errorf("%s: Publish replaced the body", name)
		}
		if !ev.Labels.Equal(labelsBefore) {
			t.Errorf("%s: Publish changed the label set", name)
		}
	}

	fast := event.New("/patient_report",
		map[string]string{"patient_id": "1", "type": "cancer"},
		label.Conf("ecric.org.uk/mdt/7"))
	fast.Body = []byte(`{"summary": "report"}`)
	check("fast path", fast)

	// "receipt" collides with a transport header: this publish takes the
	// legacy map path, which historically deleted the destination key from
	// its own marshalled map — that deletion must never reach the event.
	fallback := event.New("/patient_report",
		map[string]string{"receipt": "app-data", "type": "cancer"},
		label.Conf("ecric.org.uk/mdt/7"))
	check("legacy fallback", fallback)
}

// TestPublishTransportAttrFallback: events whose attributes collide with
// transport headers still publish (via the legacy map path) with the
// legacy wire semantics — the destination header wins over a same-named
// attribute, and transport-named attributes do not reappear on delivery.
func TestPublishTransportAttrFallback(t *testing.T) {
	_, srv := startNetBroker(t)
	consumer := dialBus(t, srv.Addr(), "cleared")
	producer := dialBus(t, srv.Addr(), "producer")

	received := make(chan *event.Event, 4)
	if _, err := consumer.Subscribe("/real", "", func(ev *event.Event) {
		received <- ev //lint:ignore noretain test collector retains the delivery; it is asserted on and never Released, so the pool cannot reclaim it
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	evil := make(chan *event.Event, 4)
	if _, err := consumer.Subscribe("/evil", "", func(ev *event.Event) {
		evil <- ev //lint:ignore noretain test collector retains the delivery; it is asserted on and never Released, so the pool cannot reclaim it
	}); err != nil {
		t.Fatalf("Subscribe /evil: %v", err)
	}

	ev := event.New("/real", map[string]string{"destination": "/evil", "k": "v"})
	if err := producer.Publish(ev); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	select {
	case got := <-received:
		if got.Topic != "/real" {
			t.Errorf("delivered on topic %q, want /real", got.Topic)
		}
		if got.Attr("k") != "v" {
			t.Errorf("attr k = %q, want v", got.Attr("k"))
		}
		if _, ok := got.Get("destination"); ok {
			t.Error("transport-named attribute leaked into the delivered event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event with transport-named attribute never delivered")
	}
	select {
	case <-evil:
		t.Fatal("event delivered to the attribute's destination; the topic must win")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestPublishShardsTopicPinning: with PublishShards, publishes to one
// topic stay on one connection, so per-topic order is preserved even
// though topics spread across connections.
func TestPublishShardsTopicPinning(t *testing.T) {
	_, srv := startNetBroker(t)
	consumer := dialBus(t, srv.Addr(), "cleared")

	producer, err := DialBus(srv.Addr(), ClientConfig{
		Login:         "producer",
		PublishShards: 3,
		PublishWindow: 4,
		SendTimeout:   5 * time.Second,
		OnError:       func(err error) { t.Logf("producer error: %v", err) },
	})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	t.Cleanup(func() { _ = producer.Close() })
	// One subscription connection plus three dedicated publish ones.
	if len(producer.shards) != 4 {
		t.Fatalf("dialled %d connections, want 4", len(producer.shards))
	}

	const topics, perTopic = 3, 100
	var mu sync.Mutex
	seqs := make([][]int, topics)
	for i := 0; i < topics; i++ {
		i := i
		if _, err := consumer.Subscribe(fmt.Sprintf("/pin/%d", i), "", func(ev *event.Event) {
			n, _ := strconv.Atoi(ev.Attr("seq"))
			mu.Lock()
			seqs[i] = append(seqs[i], n)
			mu.Unlock()
		}); err != nil {
			t.Fatalf("Subscribe %d: %v", i, err)
		}
	}

	for n := 0; n < perTopic; n++ {
		for i := 0; i < topics; i++ {
			ev := event.New(fmt.Sprintf("/pin/%d", i),
				map[string]string{"seq": strconv.Itoa(n)})
			if err := producer.Publish(ev); err != nil {
				t.Fatalf("Publish topic %d seq %d: %v", i, n, err)
			}
		}
	}
	if err := producer.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	waitFor(t, "all pinned publishes delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < topics; i++ {
			if len(seqs[i]) != perTopic {
				return false
			}
		}
		return true
	})
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < topics; i++ {
		for n, got := range seqs[i] {
			if got != n {
				t.Fatalf("topic %d delivery %d carries seq %d; want per-topic order", i, n, got)
			}
		}
	}
}

// TestPublishEncodeOnce: fan-in republish of one event must reuse the
// memoised SEND image — one encode, three deliveries.
func TestPublishEncodeOnce(t *testing.T) {
	_, srv := startNetBroker(t)
	consumer := dialBus(t, srv.Addr(), "cleared")
	producer := dialBus(t, srv.Addr(), "producer")

	received := make(chan *event.Event, 8)
	if _, err := consumer.Subscribe("/once", "", func(ev *event.Event) {
		received <- ev //lint:ignore noretain test collector retains the delivery; it is asserted on and never Released, so the pool cannot reclaim it
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	ev := event.New("/once", map[string]string{"k": "v"}, label.Conf("ecric.org.uk/mdt/7"))
	before := event.SendImageBuilds()
	for i := 0; i < 3; i++ {
		if err := producer.Publish(ev); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	if got := event.SendImageBuilds() - before; got != 1 {
		t.Errorf("SendImageBuilds delta = %d over 3 publishes of one event, want 1", got)
	}
	for i := 0; i < 3; i++ {
		select {
		case <-received:
		case <-time.After(5 * time.Second):
			t.Fatalf("delivery %d never arrived", i)
		}
	}
}
