package stomp

import (
	"io"
	"strconv"
	"strings"
	"sync"
)

// maxRetainedEncodeBuf bounds the scratch capacity an Encoder keeps
// between frames; encoding one huge body must not pin its buffer forever.
const maxRetainedEncodeBuf = 64 * 1024

// Encoder encodes STOMP frames. It is the allocation-free counterpart of
// WriteFrame: each frame is assembled into a scratch buffer reused across
// Encode calls and handed to the destination in a single Write, with the
// deterministic (sorted) header order preserved via a reused
// insertion-sorted key slice. An Encoder is not safe for concurrent use;
// each connection writer owns one.
type Encoder struct {
	buf  []byte
	keys []string
}

// Encode writes one frame to w. A content-length header is always emitted
// so bodies may contain NUL bytes. The wire bytes are identical to
// WriteFrame's.
func (e *Encoder) Encode(w io.Writer, f *Frame) error {
	return e.encode(w, f, "", "", 0)
}

// EncodeMessage writes f as a broadcast MESSAGE carrying the given
// subscription and message-id (idPrefix followed by the decimal seq)
// routing headers in addition to f's own. The base frame is shared across
// deliveries and never mutated or cloned — the per-peer headers exist
// only on the wire. Base headers named like the routing headers are
// dropped in their favour.
func (e *Encoder) EncodeMessage(w io.Writer, f *Frame, subscription, idPrefix string, seq uint64) error {
	return e.encode(w, f, subscription, idPrefix, seq)
}

func (e *Encoder) encode(w io.Writer, f *Frame, subscription, idPrefix string, seq uint64) error {
	if f.Command == "" {
		return protoErrorf("cannot write frame with empty command")
	}
	routed := subscription != ""
	b := append(e.buf[:0], f.Command...)
	b = append(b, '\n')
	e.keys = sortedHeaderKeys(e.keys[:0], f.Headers, HdrContentLength)
	for _, k := range e.keys {
		if routed && (k == HdrSubscription || k == HdrMessageID) {
			continue
		}
		b = appendEscapedHeader(b, k)
		b = append(b, ':')
		b = appendEscapedHeader(b, f.Headers[k])
		b = append(b, '\n')
	}
	if routed {
		b = append(b, HdrSubscription...)
		b = append(b, ':')
		b = appendEscapedHeader(b, subscription)
		b = append(b, '\n')
		b = append(b, HdrMessageID...)
		b = append(b, ':')
		b = appendEscapedHeader(b, idPrefix)
		b = strconv.AppendUint(b, seq, 10)
		b = append(b, '\n')
	}
	b = append(b, HdrContentLength...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(len(f.Body)), 10)
	b = append(b, '\n', '\n')
	b = append(b, f.Body...)
	b = append(b, 0)
	if cap(b) <= maxRetainedEncodeBuf {
		e.buf = b[:0]
	} else {
		e.buf = nil
	}
	_, err := w.Write(b)
	return err
}

// sortedHeaderKeys appends headers' keys to dst in lexicographic order,
// skipping skip when non-empty. Frames carry a handful of headers, so an
// insertion sort into a reused slice beats sort.Strings and its
// allocations.
func sortedHeaderKeys(dst []string, headers map[string]string, skip string) []string {
	for k := range headers {
		if skip != "" && k == skip {
			continue
		}
		dst = append(dst, k)
		for i := len(dst) - 1; i > 0 && dst[i-1] > k; i-- {
			dst[i], dst[i-1] = dst[i-1], dst[i]
		}
	}
	return dst
}

// appendEscapedHeader appends s to b with STOMP 1.1 header escaping.
func appendEscapedHeader(b []byte, s string) []byte {
	if !strings.ContainsAny(s, "\\\n:\r") {
		return append(b, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case ':':
			b = append(b, '\\', 'c')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// WriteFrame encodes a frame to w. A content-length header is always
// emitted so bodies may contain NUL bytes. It is a convenience wrapper
// over a pooled Encoder; connection writers hold their own.
func WriteFrame(w io.Writer, f *Frame) error {
	enc := encoderPool.Get().(*Encoder)
	err := enc.Encode(w, f)
	encoderPool.Put(enc)
	return err
}
