package event

import (
	"fmt"

	"safeweb/internal/label"
)

// Wire-format header names. The paper encodes labels "as event headers with
// special semantics in SEND and SUBSCRIBE messages" (§4.2); these are those
// headers.
const (
	// HeaderLabels carries the event's label set as a comma-separated
	// list of label URIs on SEND/MESSAGE frames.
	HeaderLabels = ReservedPrefix + "labels"
	// HeaderClearance carries a subscriber's clearance set on SUBSCRIBE
	// frames, as narrowed by the engine from the unit's policy.
	HeaderClearance = ReservedPrefix + "clearance"
	// HeaderDestination is STOMP's standard destination header.
	HeaderDestination = "destination"
)

// MarshalHeaders flattens the event into STOMP headers and a body. The
// returned map contains the destination, every attribute, and the label
// header.
func MarshalHeaders(e *Event) (map[string]string, []byte, error) {
	if err := e.Validate(); err != nil {
		return nil, nil, err
	}
	headers := make(map[string]string, len(e.Attrs)+2)
	for k, v := range e.Attrs {
		headers[k] = v
	}
	headers[HeaderDestination] = e.Topic
	if !e.Labels.IsEmpty() {
		if e.labelHeader != "" {
			headers[HeaderLabels] = e.labelHeader
		} else {
			headers[HeaderLabels] = e.Labels.String()
		}
	}
	return headers, e.Body, nil
}

// skippedHeader reports whether a STOMP header is transport metadata
// rather than an event attribute.
func skippedHeader(k string) bool {
	switch k {
	case HeaderDestination, HeaderLabels, HeaderClearance,
		"subscription", "message-id", "content-length", "receipt",
		"receipt-id", "id", "ack", "selector", "transaction":
		return true
	}
	return false
}

// LabelCache memoises the most recent label-header parse. Wire traffic
// between two units typically repeats one label set for long runs of
// messages, and parsed label sets are immutable, so a one-entry memo
// keyed on the raw header string removes the per-message parse from the
// connection read loop. A LabelCache must be confined to one goroutine
// (each connection read loop owns one).
type LabelCache struct {
	hdr string
	set label.Set
}

func (c *LabelCache) parse(hdr string) (label.Set, error) {
	if c != nil && c.hdr == hdr {
		return c.set, nil
	}
	set, err := label.ParseSet(hdr)
	if err != nil {
		return nil, err
	}
	if c != nil {
		c.hdr, c.set = hdr, set
	}
	return set, nil
}

// UnmarshalHeaders reconstructs an event from STOMP headers and a body.
// Standard STOMP headers that are not event attributes (subscription,
// message-id, content-length, receipt) are skipped; the attribute map is
// sized to the attributes that survive the skip, and stays nil when none
// do. The event takes ownership of body without copying; callers must
// not reuse it.
func UnmarshalHeaders(headers map[string]string, body []byte) (*Event, error) {
	return UnmarshalHeadersCached(headers, body, nil)
}

// UnmarshalHeadersCached is UnmarshalHeaders with an optional label-parse
// memo for connection read loops (see LabelCache).
func UnmarshalHeadersCached(headers map[string]string, body []byte, cache *LabelCache) (*Event, error) {
	e := &Event{Topic: headers[HeaderDestination]}
	if e.Topic == "" {
		return nil, fmt.Errorf("event: missing %s header", HeaderDestination)
	}
	attrs := 0
	for k := range headers {
		if !skippedHeader(k) {
			attrs++
		}
	}
	if attrs > 0 {
		e.Attrs = make(map[string]string, attrs)
	}
	for k, v := range headers {
		if k == HeaderLabels {
			labels, err := cache.parse(v)
			if err != nil {
				return nil, fmt.Errorf("event: bad label header: %w", err)
			}
			e.Labels = labels
		}
		if skippedHeader(k) {
			continue
		}
		e.Attrs[k] = v
	}
	if len(body) > 0 {
		e.Body = body
	}
	return e, nil
}
