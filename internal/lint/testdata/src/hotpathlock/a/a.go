// Test cases for the hotpathlock analyzer.
package a

import (
	"fmt"
	"sync"
)

type table struct {
	mu sync.Mutex
	m  map[string]int
}

type rwtable struct {
	mu sync.RWMutex
	m  map[string]int
}

//safeweb:hotpath
func deliver(t *table, k string) int {
	t.mu.Lock() // want `hotpath deliver: deliver takes \(\*sync\.Mutex\)\.Lock on the fast path`
	defer t.mu.Unlock()
	return t.m[k]
}

//safeweb:hotpath
func loadRoute(t *rwtable, k string) int {
	t.mu.RLock() // want `hotpath loadRoute: loadRoute takes \(\*sync\.RWMutex\)\.RLock on the fast path`
	defer t.mu.RUnlock()
	return t.m[k]
}

//safeweb:hotpath
func encode(buf []byte, n int) []byte {
	m := map[string]int{} // want `hotpath encode: encode allocates a map literal on the fast path`
	_ = m
	s := make([]byte, n) // want `hotpath encode: encode allocates a slice with make on the fast path`
	_ = s
	extra := []int{1, 2} // want `hotpath encode: encode allocates a slice literal on the fast path`
	_ = extra
	fmt.Println() // want `hotpath encode: encode calls fmt.Println on the fast path`
	return buf
}

//safeweb:hotpath
func box(v int) interface{} {
	return v // want `hotpath box: box boxes a int into interface\{\} on the fast path`
}

//safeweb:hotpath
func boxArg(v int) {
	sinkIface(v) // want `boxes a int into interface\{\} on the fast path`
}

func sinkIface(x interface{}) {}

//safeweb:hotpath
func boxAssign(v int, dst *holder) {
	dst.x = v // want `boxes a int into interface\{\} on the fast path`
}

type holder struct{ x interface{} }

// Transitive enforcement: helpers reached from a hot root are checked
// with the call chain in the diagnostic.
//
//safeweb:hotpath
func claim(t *table) {
	helper(t)
}

func helper(t *table) {
	t.mu.Lock() // want `hotpath claim: claim -> helper takes \(\*sync\.Mutex\)\.Lock on the fast path`
	t.mu.Unlock()
}

// An ignored call edge is a declared slow path: the walk stops there.
//
//safeweb:hotpath
func claimOrPark(t *table) {
	//lint:ignore hotpathlock parks on the slow path only after credit is exhausted
	park(t)
}

func park(t *table) {
	t.mu.Lock() // ok: reached only through a declared slow-path edge
	t.mu.Unlock()
}

// A statement-level ignore suppresses the diagnostic in place.
//
//safeweb:hotpath
func measuredCold(t *table) {
	//lint:ignore hotpathlock startup-only branch, measured cold
	t.mu.Lock()
	t.mu.Unlock()
}

// Unannotated functions are free to lock and allocate.
func coldPath(t *table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = map[string]int{}
	fmt.Println("cold")
}

// Negative cases on the hot path.
//
//safeweb:hotpath
func cleanFast(t *table, k string, dst *holder, p *point) point {
	v := t.m[k]        // ok: map read takes no lock
	dst.x = p          // ok: pointer into interface does not allocate
	var err error      // ok: nil interface value
	dst.x = err        // ok: interface-to-interface copy
	return point{v, v} // ok: struct literal, not map/slice
}

type point struct{ x, y int }
