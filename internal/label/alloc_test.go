package label

import "testing"

// TestSetStringAllocs pins the wire-rendering cost of label sets. The
// single-label case — by far the most common on events — must render with
// just the one URI concatenation, skipping the sort/slice machinery.
func TestSetStringAllocs(t *testing.T) {
	single := NewSet(Conf("ecric.org.uk/mdt/7"))
	if got := testing.AllocsPerRun(1000, func() { _ = single.String() }); got > 1 {
		t.Errorf("single-label Set.String allocs/op = %v, want <= 1", got)
	}
	if single.String() != "label:conf:ecric.org.uk/mdt/7" {
		t.Errorf("single-label String = %q", single.String())
	}
	if got := NewSet().String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
}

// TestOfKindSharesHomogeneousSets pins the allocation-free partition fast
// path used by the broker: a set whose labels are all one kind is returned
// as-is, and a kind with no members returns nil.
func TestOfKindSharesHomogeneousSets(t *testing.T) {
	conf := NewSet(Conf("a"), Conf("b"))
	if got := testing.AllocsPerRun(1000, func() { _ = conf.Confidentiality() }); got != 0 {
		t.Errorf("homogeneous Confidentiality allocs/op = %v, want 0", got)
	}
	if c := conf.Confidentiality(); c.Len() != 2 {
		t.Errorf("Confidentiality lost labels: %v", c)
	}
	if i := conf.Integrity(); i != nil {
		t.Errorf("Integrity of conf-only set = %v, want nil", i)
	}
	mixed := NewSet(Conf("a"), Int("i"))
	if c := mixed.Confidentiality(); c.Len() != 1 || !c.Contains(Conf("a")) {
		t.Errorf("mixed Confidentiality = %v", c)
	}
	if i := mixed.Integrity(); i.Len() != 1 || !i.Contains(Int("i")) {
		t.Errorf("mixed Integrity = %v", i)
	}
}

// TestWithoutFastPaths pins Without's allocation behaviour: removing
// nothing shares the receiver, and the one-label removal skips the
// intermediate drop set.
func TestWithoutFastPaths(t *testing.T) {
	s := NewSet(Conf("a"), Conf("b"))
	if got := s.Without(Conf("missing")); got.Len() != 2 {
		t.Errorf("Without(missing) = %v", got)
	}
	if got := testing.AllocsPerRun(1000, func() { _ = s.Without(Conf("missing")) }); got != 0 {
		t.Errorf("no-op Without allocs/op = %v, want 0", got)
	}
	if got := s.Without(Conf("a")); got.Len() != 1 || got.Contains(Conf("a")) {
		t.Errorf("Without(a) = %v", got)
	}
	one := NewSet(Conf("a"))
	if got := one.Without(Conf("a")); got != nil {
		t.Errorf("Without removing last label = %v, want nil", got)
	}
	// Duplicated removal labels must still drop the label exactly once.
	if got := s.Without(Conf("a"), Conf("a")); got.Len() != 1 {
		t.Errorf("Without(a, a) = %v", got)
	}
}
