package federation

import (
	"sync"
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/event"
	"safeweb/internal/label"
)

// twoInstances builds two independent brokers ("east" and "west") with
// their own policies, as two regional SafeWeb instances would run.
func twoInstances(t *testing.T) (east, west *broker.Broker) {
	t.Helper()
	eastPolicy := label.NewPolicy()
	// The outbound bridge principal may receive only regional aggregates
	// — NOT patient data. This is the source-side export policy.
	eastPolicy.Grant("bridge-out", label.Clearance,
		label.MustParsePattern("label:conf:east.nhs.uk/regional-agg"))
	eastPolicy.SetPrincipal("east-producer", label.NewPrivileges().
		Grant(label.Clearance, label.MustParsePattern("label:conf:east.nhs.uk/*")).
		Grant(label.Endorse, label.MustParsePattern("label:int:east.nhs.uk/*")), true)

	westPolicy := label.NewPolicy()
	// West units see federated east aggregates under west's namespace.
	westPolicy.Grant("west-consumer", label.Clearance,
		label.MustParsePattern("label:conf:west.nhs.uk/federated/east/*"))
	// The inbound bridge principal may endorse federated integrity
	// labels at the destination.
	westPolicy.Grant("bridge-in", label.Endorse,
		label.MustParsePattern("label:int:west.nhs.uk/federated/east/*"))

	east = broker.New(eastPolicy)
	west = broker.New(westPolicy)
	t.Cleanup(func() {
		east.Close()
		west.Close()
	})
	return east, west
}

func eastAgg() label.Label { return label.Conf("east.nhs.uk/regional-agg") }

func fedRule() Rule {
	return Rule{
		Topic:       "/metrics/regional",
		RemoteTopic: "/federated/east/metrics",
		Map:         PrefixMap("east.nhs.uk/", "west.nhs.uk/federated/east/"),
	}
}

func TestForwardsMappedAggregates(t *testing.T) {
	east, west := twoInstances(t)

	got := make(chan *event.Event, 4)
	if _, err := west.Subscribe("west-consumer", "/federated/east/metrics", "", func(ev *event.Event) {
		got <- ev //lint:ignore noretain test collector retains the delivery; it is asserted on and never Released, so the pool cannot reclaim it
	}); err != nil {
		t.Fatal(err)
	}

	bridge, err := New(east.Endpoint("bridge-out"), west.Endpoint("bridge-in"), []Rule{fedRule()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer bridge.Close()

	ev := event.New("/metrics/regional", map[string]string{"cases": "45"}, eastAgg())
	if err := east.Publish("east-producer", ev); err != nil {
		t.Fatal(err)
	}

	select {
	case fed := <-got:
		want := label.Conf("west.nhs.uk/federated/east/regional-agg")
		if !fed.Labels.Equal(label.NewSet(want)) {
			t.Errorf("federated labels = %v, want %v", fed.Labels, want)
		}
		if fed.Attr("cases") != "45" {
			t.Errorf("attrs = %v", fed.Attrs)
		}
		if fed.Topic != "/federated/east/metrics" {
			t.Errorf("topic = %q", fed.Topic)
		}
	default:
		t.Fatal("aggregate not forwarded")
	}
	if s := bridge.Stats(); s.Forwarded != 1 || s.DroppedUnmappable != 0 || s.Errors != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestPatientDataNeverLeaves: the export policy keeps patient-labelled
// events away from the bridge even if a rule covers their topic.
func TestPatientDataNeverLeaves(t *testing.T) {
	east, west := twoInstances(t)

	got := make(chan *event.Event, 4)
	if _, err := west.Subscribe("west-consumer", "*", "", func(ev *event.Event) {
		got <- ev //lint:ignore noretain test collector retains the delivery; it is asserted on and never Released, so the pool cannot reclaim it
	}); err != nil {
		t.Fatal(err)
	}

	// Even a (misconfigured) catch-all rule cannot exfiltrate: the
	// source broker withholds events the bridge has no clearance for.
	rule := Rule{Topic: "*", Map: PrefixMap("east.nhs.uk/", "west.nhs.uk/federated/east/")}
	bridge, err := New(east.Endpoint("bridge-out"), west.Endpoint("bridge-in"), []Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	patientEv := event.New("/patient_report", map[string]string{"patient_id": "1"},
		label.Conf("east.nhs.uk/patient/1"))
	if err := east.Publish("east-producer", patientEv); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("patient data crossed the federation boundary")
	}
	if s := bridge.Stats(); s.Forwarded != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestUnmappableLabelDropsEvent: labels outside the mapping's namespace
// fail closed.
func TestUnmappableLabelDropsEvent(t *testing.T) {
	east, west := twoInstances(t)
	// Widen the bridge's source clearance so the event reaches it; the
	// mapping must still refuse.
	east.Policy().Grant("bridge-out", label.Clearance, label.MustParsePattern("label:conf:*"))

	bridge, err := New(east.Endpoint("bridge-out"), west.Endpoint("bridge-in"), []Rule{fedRule()})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	foreign := event.New("/metrics/regional", nil, label.Conf("other.org/agg"))
	if err := east.Publish("east-producer2", foreign); err != nil {
		// east-producer2 holds no privileges but needs none for conf
		// labels.
		t.Fatal(err)
	}
	if s := bridge.Stats(); s.DroppedUnmappable != 1 || s.Forwarded != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestLabelledEventWithoutMapDrops: a rule without a Map forwards only
// unlabelled events.
func TestLabelledEventWithoutMapDrops(t *testing.T) {
	east, west := twoInstances(t)

	got := make(chan *event.Event, 4)
	if _, err := west.Subscribe("west-consumer", "/public", "", func(ev *event.Event) {
		got <- ev //lint:ignore noretain test collector retains the delivery; it is asserted on and never Released, so the pool cannot reclaim it
	}); err != nil {
		t.Fatal(err)
	}
	bridge, err := New(east.Endpoint("bridge-out"), west.Endpoint("bridge-in"),
		[]Rule{{Topic: "/public"}})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	if err := east.Publish("east-producer", event.New("/public", map[string]string{"k": "v"})); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("unlabelled event not forwarded: %d", len(got))
	}
	if err := east.Publish("east-producer", event.New("/public", nil, eastAgg())); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("labelled event forwarded without a map")
	}
	if s := bridge.Stats(); s.DroppedUnmappable != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestDestinationEndorsementEnforced: forwarding an integrity label the
// bridge cannot endorse at the destination fails and is counted.
func TestDestinationEndorsementEnforced(t *testing.T) {
	east, west := twoInstances(t)
	east.Policy().Grant("bridge-out", label.Clearance, label.MustParsePattern("label:conf:*"))

	// Map integrity labels outside the bridge's destination endorsement.
	rule := Rule{
		Topic: "/metrics/regional",
		Map:   PrefixMap("east.nhs.uk/", "west.nhs.uk/unendorsable/"),
	}
	bridge, err := New(east.Endpoint("bridge-out"), west.Endpoint("bridge-in"), []Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	ev := event.New("/metrics/regional", nil, label.Int("east.nhs.uk/app"))
	if err := east.Publish("east-producer", ev); err != nil {
		t.Fatal(err)
	}
	if s := bridge.Stats(); s.Errors != 1 || s.Forwarded != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBridgeValidationAndClose(t *testing.T) {
	east, west := twoInstances(t)
	if _, err := New(east.Endpoint("b"), west.Endpoint("b"), nil); err == nil {
		t.Error("bridge without rules accepted")
	}
	bridge, err := New(east.Endpoint("bridge-out"), west.Endpoint("bridge-in"), []Rule{fedRule()})
	if err != nil {
		t.Fatal(err)
	}
	if err := bridge.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := bridge.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestPrefixMap(t *testing.T) {
	m := PrefixMap("east.nhs.uk/", "west.nhs.uk/federated/east/")
	mapped, ok := m(label.Conf("east.nhs.uk/regional-agg"))
	if !ok || mapped != label.Conf("west.nhs.uk/federated/east/regional-agg") {
		t.Errorf("mapped = %v ok=%v", mapped, ok)
	}
	mapped, ok = m(label.Int("east.nhs.uk/app"))
	if !ok || mapped.Kind() != label.Integrity {
		t.Errorf("integrity mapping = %v ok=%v", mapped, ok)
	}
	if _, ok := m(label.Conf("other.org/x")); ok {
		t.Error("foreign label mapped")
	}
}

// TestCloseStopsInFlightForwards pins the Close race fix: once Close
// returns, no in-flight forward callback may still publish into the
// destination or move the bridge's Stats, even while publishers keep
// hammering the source. Run under -race this doubles as the data-race
// check for the close gate.
func TestCloseStopsInFlightForwards(t *testing.T) {
	east, west := twoInstances(t)

	bridge, err := New(east.Endpoint("bridge-out"), west.Endpoint("bridge-in"), []Rule{fedRule()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Publishers hammer the source broker for the whole test, including
	// well past Close: forwards must stop exactly at the Close barrier.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ev := event.New("/metrics/regional", map[string]string{"cases": "1"}, eastAgg())
				if err := east.Publish("east-producer", ev); err != nil {
					t.Errorf("Publish: %v", err)
					return
				}
			}
		}()
	}

	// Let some forwards happen, then close mid-stream.
	deadline := time.Now().Add(time.Second)
	for bridge.Stats().Forwarded == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if err := bridge.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	statsAtClose := bridge.Stats()
	deliveredAtClose := west.Stats().Published

	// Publishers are still running; nothing may cross the bridge now.
	time.Sleep(10 * time.Millisecond)
	if got := bridge.Stats(); got != statsAtClose {
		t.Errorf("Stats moved after Close: %+v -> %+v", statsAtClose, got)
	}
	if got := west.Stats().Published; got != deliveredAtClose {
		t.Errorf("destination publishes moved after Close: %d -> %d", deliveredAtClose, got)
	}

	close(stop)
	wg.Wait()
}
