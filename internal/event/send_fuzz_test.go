package event

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// fuzzHeaderCap keeps fuzz-generated header lines under the decoder's
// MaxHeaderLen even after escaping doubles every byte.
const fuzzHeaderCap = stomp.MaxHeaderLen/2 - 64

// FuzzSendRoundTrip drives the whole producer wire path on arbitrary
// events: direct SEND encoding (with and without a spliced receipt) must
// stay byte-identical to the legacy map path, the bytes must decode
// through the server's view path without errors or panics, and
// UnmarshalView must reconstruct the published event losslessly.
func FuzzSendRoundTrip(f *testing.F) {
	f.Add("/t", "k", "v", "k2", "v2", []byte("body"), true, true)
	f.Add("/patient_report", "patient_id", "33812769", "type", "cancer",
		[]byte(`{"record": true}`), true, false)
	f.Add("/t", "tricky:key", "line1\nline2:with\\slash\rcr", "", "anonymous",
		[]byte{0x01, 0x00, 0x02}, false, true)
	f.Add("", "k", "v", "k", "v2", []byte(nil), false, false)                    // invalid topic
	f.Add("/t", "destination", "/evil", "receipt", "x", []byte(nil), true, true) // transport collision
	f.Add("/t", "x-safeweb-labels", "forged", "zz", "", []byte(nil), false, false)

	f.Fuzz(func(t *testing.T, topic, k1, v1, k2, v2 string, body []byte, labelled, withReceipt bool) {
		if len(topic) > fuzzHeaderCap || len(k1)+len(v1) > fuzzHeaderCap ||
			len(k2)+len(v2) > fuzzHeaderCap {
			return
		}
		ev := &Event{Topic: topic, Attrs: map[string]string{k1: v1, k2: v2}}
		if len(body) > 0 {
			ev.Body = body
		}
		if labelled {
			ev.Labels = label.NewSet(label.Conf("fuzz.test/x"), label.Int("fuzz.test/y"))
		}
		ev.Freeze()

		img, err := ev.SendImage()
		if err != nil {
			// The only admissible refusals: events the legacy path also
			// rejects (validation) and transport-header collisions, which
			// take the legacy fallback instead.
			if errors.Is(err, ErrTransportAttr) {
				if !skippedHeader(k1) && !skippedHeader(k2) {
					t.Fatalf("spurious ErrTransportAttr for attrs %q/%q", k1, k2)
				}
				return
			}
			if vErr := ev.Validate(); vErr == nil {
				t.Fatalf("SendImage rejected a valid event: %v", err)
			}
			return
		}

		receipt := ""
		if withReceipt {
			receipt = "rcpt-7"
		}
		var got bytes.Buffer
		var enc stomp.Encoder
		if err := enc.EncodeSendImage(&got, img, receipt); err != nil {
			t.Fatalf("EncodeSendImage: %v", err)
		}
		if want := legacySendWire(t, ev, receipt); !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("wire bytes differ from legacy path:\nfast:   %q\nlegacy: %q",
				got.Bytes(), want)
		}

		// Server inbound path: decode the view, reconstruct the event.
		v, err := stomp.NewDecoder(bytes.NewReader(got.Bytes())).DecodeView()
		if err != nil {
			t.Fatalf("DecodeView of encoded SEND failed: %v", err)
		}
		if v.Command != stomp.CmdSend {
			t.Fatalf("decoded command %q, want SEND", v.Command)
		}
		if r := v.Headers.Header(stomp.HdrReceipt); r != receipt {
			t.Fatalf("decoded receipt %q, want %q", r, receipt)
		}
		back, err := UnmarshalView(&v.Headers, v.Body, nil)
		if err != nil {
			t.Fatalf("UnmarshalView of encoded SEND failed: %v", err)
		}
		if back.Topic != ev.Topic || !back.Labels.Equal(ev.Labels) ||
			!reflect.DeepEqual(back.Attrs, ev.Attrs) || !bytes.Equal(back.Body, ev.Body) {
			t.Fatalf("round trip changed event:\nsent: %v\ngot:  %v", ev, back)
		}
	})
}
