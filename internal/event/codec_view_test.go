package event

import (
	"bytes"
	"reflect"
	"testing"

	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// decodeWire builds a frame view by running raw wire bytes through the
// stomp decoder, the same way a connection read loop produces them.
func decodeWire(t testing.TB, raw []byte) *stomp.FrameView {
	t.Helper()
	v, err := stomp.NewDecoder(bytes.NewReader(raw)).DecodeView()
	if err != nil {
		t.Fatalf("DecodeView: %v", err)
	}
	return v
}

// messageWire encodes the 6-header MESSAGE frame of a broker delivery —
// the decode hot path's canonical shape.
func messageWire(t testing.TB) []byte {
	t.Helper()
	f := stomp.NewFrame(stomp.CmdMessage)
	f.SetHeader(stomp.HdrDestination, "/patient_report")
	f.SetHeader(stomp.HdrSubscription, "sub-12")
	f.SetHeader(stomp.HdrMessageID, "m-3-4711")
	f.SetHeader("patient_id", "33812769")
	f.SetHeader("type", "cancer")
	f.SetHeader(HeaderLabels, label.NewSet(label.Conf("ecric.org.uk/mdt/7")).String())
	f.Body = []byte(`{"summary": "report", "mdt": 7}`)
	var buf bytes.Buffer
	if err := stomp.WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	return buf.Bytes()
}

// TestUnmarshalViewMatchesUnmarshalHeaders: the single-pass view path and
// the legacy map path must build identical events from the same frame,
// including transport-header skipping, labels, and missing-destination
// errors.
func TestUnmarshalViewMatchesUnmarshalHeaders(t *testing.T) {
	frames := []*stomp.Frame{
		func() *stomp.Frame {
			f := stomp.NewFrame(stomp.CmdMessage)
			f.SetHeader(stomp.HdrDestination, "/t")
			f.SetHeader(stomp.HdrSubscription, "sub-1")
			f.SetHeader(stomp.HdrMessageID, "m-1-1")
			f.SetHeader(stomp.HdrReceipt, "r-9")
			f.SetHeader("ack", "client")
			f.SetHeader("transaction", "tx-1")
			f.SetHeader("login", "alice") // interned but attribute-like
			f.SetHeader("custom", "value")
			f.SetHeader(HeaderLabels, label.NewSet(label.Conf("a.org/x"), label.Int("b.org/y")).String())
			f.SetHeader(HeaderClearance, "label:conf:a.org/*")
			f.Body = []byte("payload")
			return f
		}(),
		func() *stomp.Frame {
			f := stomp.NewFrame(stomp.CmdSend)
			f.SetHeader(stomp.HdrDestination, "/attr-free")
			return f
		}(),
		func() *stomp.Frame { // no destination: both paths must fail
			f := stomp.NewFrame(stomp.CmdSend)
			f.SetHeader("k", "v")
			return f
		}(),
		func() *stomp.Frame { // bad label header: both paths must fail
			f := stomp.NewFrame(stomp.CmdSend)
			f.SetHeader(stomp.HdrDestination, "/t")
			f.SetHeader(HeaderLabels, "not a label uri")
			return f
		}(),
	}
	for i, f := range frames {
		var buf bytes.Buffer
		if err := stomp.WriteFrame(&buf, f); err != nil {
			t.Fatalf("frame %d: WriteFrame: %v", i, err)
		}
		v := decodeWire(t, buf.Bytes())
		fromView, errView := UnmarshalView(&v.Headers, append([]byte(nil), v.Body...), nil)
		fromMap, errMap := UnmarshalHeaders(v.Materialize().Headers, v.Body)
		if (errView == nil) != (errMap == nil) {
			t.Fatalf("frame %d: error disagreement: view=%v map=%v", i, errView, errMap)
		}
		if errView != nil {
			continue
		}
		if fromView.Topic != fromMap.Topic ||
			!reflect.DeepEqual(fromView.Attrs, fromMap.Attrs) ||
			!bytes.Equal(fromView.Body, fromMap.Body) ||
			!fromView.Labels.Equal(fromMap.Labels) {
			t.Errorf("frame %d:\nview: %v\nmap:  %v", i, fromView, fromMap)
		}
	}
}

// TestUnmarshalViewRepeatedHeaders: the view preserves repeated keys, and
// the single pass must apply the same first-occurrence-wins rule the map
// materialisation does.
func TestUnmarshalViewRepeatedHeaders(t *testing.T) {
	raw := []byte("MESSAGE\ndestination:/a\ndestination:/b\nk:1\nk:2\n\n\x00")
	v := decodeWire(t, raw)
	ev, err := UnmarshalView(&v.Headers, nil, nil)
	if err != nil {
		t.Fatalf("UnmarshalView: %v", err)
	}
	if ev.Topic != "/a" {
		t.Errorf("Topic = %q, want /a", ev.Topic)
	}
	if ev.Attrs["k"] != "1" {
		t.Errorf("Attrs[k] = %q, want 1", ev.Attrs["k"])
	}
}

// TestUnmarshalViewAllocs pins the single-pass budget for the hot-path
// MESSAGE shape: with a warm DecodeCache (repeated topic and label set,
// the steady state of a fan-out consumer), the event build must stay
// within the event allocation itself, the right-sized attribute map, and
// the owned strings of the two application attributes.
func TestUnmarshalViewAllocs(t *testing.T) {
	raw := messageWire(t)
	v := decodeWire(t, raw)
	var cache DecodeCache
	if _, err := UnmarshalView(&v.Headers, nil, &cache); err != nil {
		t.Fatalf("UnmarshalView: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := UnmarshalView(&v.Headers, nil, &cache); err != nil {
			t.Fatalf("UnmarshalView: %v", err)
		}
	})
	// Event + attrs map + 2 attr value strings (attr keys, topic and
	// labels all hit the cache) = 5 at present; budget 7 guards against
	// regression without overfitting the runtime's map internals.
	if avg > 7 {
		t.Errorf("UnmarshalView allocs/op = %g, want <= 7", avg)
	}
}

// TestDecodeUnmarshalViewAllocs pins the whole read-loop budget — wire
// bytes to delivered event — at less than half the legacy Decode +
// UnmarshalHeaders cost for the same frame (the ISSUE's ≥50%% decode-path
// reduction, asserted structurally).
func TestDecodeUnmarshalViewAllocs(t *testing.T) {
	raw := messageWire(t)

	viewPath := pipelineAllocs(t, raw, true)
	legacyPath := pipelineAllocs(t, raw, false)
	if viewPath > legacyPath/2 {
		t.Errorf("view pipeline = %g allocs/op, legacy = %g: want view <= legacy/2", viewPath, legacyPath)
	}
	// Absolute guard so the ratio cannot drift up in lockstep.
	if viewPath > 8 {
		t.Errorf("view pipeline allocs/op = %g, want <= 8", viewPath)
	}
}

func pipelineAllocs(t *testing.T, raw []byte, useView bool) float64 {
	t.Helper()
	rd := bytes.NewReader(raw)
	dec := stomp.NewDecoder(rd)
	var cache DecodeCache
	var labelCache LabelCache
	run := func() {
		rd.Reset(raw)
		var err error
		var ev *Event
		if useView {
			var v *stomp.FrameView
			if v, err = dec.DecodeView(); err == nil {
				ev, err = UnmarshalView(&v.Headers, v.Body, &cache)
			}
		} else {
			var f *stomp.Frame
			if f, err = dec.Decode(); err == nil {
				ev, err = UnmarshalHeadersCached(f.Headers, f.Body, &labelCache)
			}
		}
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		if ev.Topic != "/patient_report" || len(ev.Attrs) != 2 || ev.Labels.IsEmpty() {
			t.Fatalf("pipeline decoded wrong event: %v", ev)
		}
	}
	run() // warm scratch buffers and memos
	return testing.AllocsPerRun(200, run)
}
