// Package linttest runs the safeweb-vet analyzers over analysistest-style
// testdata packages and checks their diagnostics against // want
// comments.
//
// It mirrors the contract of golang.org/x/tools/go/analysis/analysistest:
// testdata is a GOPATH-shaped tree (testdata/src/<importpath>/*.go), every
// line that should produce a diagnostic carries a trailing
// `// want "regexp"` comment (several quoted or backquoted regexps for
// several diagnostics), unexpected diagnostics fail the test and so do
// unmatched expectations. The real analysistest depends on
// golang.org/x/tools/go/packages, which needs the network-backed go
// command driver; this harness instead loads the testdata with the
// standard library's go/parser and go/types and a source importer rooted
// at testdata/src, which keeps the analyzer tests hermetic.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// TestData returns the canonical testdata directory for the calling
// package, mirroring analysistest.TestData.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run analyzes each named package under testdata/src with a and compares
// the diagnostics against the packages' // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(testdata)
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("%s: load: %v", path, err)
			continue
		}
		diags := runAnalyzer(t, ld.fset, a, pkg)
		checkWants(t, ld.fset, pkg, diags)
	}
}

// loadedPkg is one typechecked testdata package.
type loadedPkg struct {
	path  string
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

type loader struct {
	root  string // testdata/src
	fset  *token.FileSet
	cache map[string]*loadedPkg
	std   types.Importer
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:  filepath.Join(testdata, "src"),
		fset:  fset,
		cache: map[string]*loadedPkg{},
		std:   importer.ForCompiler(fset, "source", nil),
	}
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if pkg, ok := l.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l.cache[path] = nil // cycle guard

	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if sub, err := l.load(ipath); err == nil {
			return sub.tpkg, nil
		} else if !os.IsNotExist(err) {
			return nil, err
		}
		return l.std.Import(ipath)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &loadedPkg{path: path, files: files, tpkg: tpkg, info: info}
	l.cache[path] = pkg
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runAnalyzer builds an analysis.Pass over pkg (running Requires
// dependencies first) and returns the diagnostics.
func runAnalyzer(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pkg *loadedPkg) []analysis.Diagnostic {
	t.Helper()
	results := map[*analysis.Analyzer]interface{}{}
	for _, req := range a.Requires {
		switch req {
		case inspect.Analyzer:
			results[req] = inspector.New(pkg.files)
		default:
			t.Fatalf("linttest: analyzer %s requires unsupported dependency %s", a.Name, req.Name)
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      pkg.files,
		Pkg:        pkg.tpkg,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   results,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer error: %v", pkg.path, err)
	}
	return diags
}

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkWants compares diagnostics to the // want comments in pkg.
func checkWants(t *testing.T, fset *token.FileSet, pkg *loadedPkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range parseWantPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWantPatterns splits the text after `want` into its quoted or
// backquoted regexp literals.
func parseWantPatterns(t *testing.T, pos token.Position, text string) []string {
	t.Helper()
	var pats []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				t.Errorf("%s: unterminated want pattern: %s", pos, rest)
				return pats
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Errorf("%s: bad want pattern %s: %v", pos, rest[:end+1], err)
				return pats
			}
			pats = append(pats, s)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Errorf("%s: unterminated want pattern: %s", pos, rest)
				return pats
			}
			pats = append(pats, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Errorf("%s: unexpected want syntax: %s", pos, rest)
			return pats
		}
	}
	return pats
}
