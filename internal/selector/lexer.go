// Package selector implements the SQL-92 message selector language that
// SafeWeb's event broker uses for content-based subscriptions (paper §4.2):
// "An optional SQL-92 selector header specifies content-based
// subscriptions."
//
// The grammar is the JMS message-selector subset of SQL-92: comparison
// operators, arithmetic, AND/OR/NOT, BETWEEN, IN, LIKE (with ESCAPE),
// IS [NOT] NULL, string and numeric literals, and identifiers that name
// event attributes. Because SafeWeb event attributes are untyped strings
// (§4.1), the evaluator coerces attribute values numerically when they are
// compared against numbers.
//
// Evaluation follows SQL three-valued logic: comparisons involving a
// missing attribute yield "unknown", and a selector accepts an event only
// if the whole expression evaluates to true.
package selector

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokString
	tokNumber
	tokEq     // =
	tokNeq    // <>
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokSlash  // /
	tokLParen // (
	tokRParen // )
	tokComma  // ,

	// Keywords (case-insensitive).
	tokAnd
	tokOr
	tokNot
	tokBetween
	tokIn
	tokLike
	tokIs
	tokNull
	tokEscape
	tokTrue
	tokFalse
)

var _keywords = map[string]tokenKind{
	"AND":     tokAnd,
	"OR":      tokOr,
	"NOT":     tokNot,
	"BETWEEN": tokBetween,
	"IN":      tokIn,
	"LIKE":    tokLike,
	"IS":      tokIs,
	"NULL":    tokNull,
	"ESCAPE":  tokEscape,
	"TRUE":    tokTrue,
	"FALSE":   tokFalse,
}

// token is a lexical token with its source position for error reporting.
type token struct {
	kind tokenKind
	text string // literal text: identifier name, string contents, number
	pos  int
}

// SyntaxError reports a lexical or grammatical error in a selector
// expression.
type SyntaxError struct {
	// Input is the full selector text.
	Input string
	// Pos is the byte offset of the error.
	Pos int
	// Msg describes the problem.
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("selector: %s at offset %d in %q", e.Msg, e.Pos, e.Input)
}

// lexer scans a selector expression into tokens.
type lexer struct {
	input string
	pos   int
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Input: l.input, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c) || c == '.' || c == '-'
}

// next scans and returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && (l.input[l.pos] == ' ' || l.input[l.pos] == '\t' || l.input[l.pos] == '\n' || l.input[l.pos] == '\r') {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.input[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '+':
		l.pos++
		return token{kind: tokPlus, pos: start}, nil
	case c == '-':
		l.pos++
		return token{kind: tokMinus, pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case c == '/':
		l.pos++
		return token{kind: tokSlash, pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.input) {
			switch l.input[l.pos] {
			case '>':
				l.pos++
				return token{kind: tokNeq, pos: start}, nil
			case '=':
				l.pos++
				return token{kind: tokLe, pos: start}, nil
			}
		}
		return token{kind: tokLt, pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{kind: tokGe, pos: start}, nil
		}
		return token{kind: tokGt, pos: start}, nil
	case c == '\'':
		return l.scanString()
	case isDigit(c):
		return l.scanNumber()
	case isIdentStart(c):
		return l.scanIdent()
	default:
		return token{}, l.errorf(start, "unexpected character %q", c)
	}
}

// scanString scans a single-quoted SQL string literal; ” is an escaped
// quote.
func (l *lexer) scanString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf(start, "unterminated string literal")
}

// scanNumber scans an integer or decimal literal with optional exponent.
func (l *lexer) scanNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.input) && isDigit(l.input[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.input) && l.input[l.pos] == '.' {
		l.pos++
		if l.pos >= len(l.input) || !isDigit(l.input[l.pos]) {
			return token{}, l.errorf(start, "malformed number")
		}
		for l.pos < len(l.input) && isDigit(l.input[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.input) && (l.input[l.pos] == 'e' || l.input[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.input) && (l.input[l.pos] == '+' || l.input[l.pos] == '-') {
			l.pos++
		}
		if l.pos >= len(l.input) || !isDigit(l.input[l.pos]) {
			// "12e" is the number 12 followed by identifier "e"; back off.
			l.pos = save
		} else {
			for l.pos < len(l.input) && isDigit(l.input[l.pos]) {
				l.pos++
			}
		}
	}
	return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
}

// scanIdent scans an identifier or keyword.
func (l *lexer) scanIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
		l.pos++
	}
	word := l.input[start:l.pos]
	if kind, ok := _keywords[strings.ToUpper(word)]; ok {
		return token{kind: kind, text: word, pos: start}, nil
	}
	return token{kind: tokIdent, text: word, pos: start}, nil
}
