package jail

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestNonPrivilegedDeniedAndAudited(t *testing.T) {
	audit := &Audit{}
	j := New("aggregator", false, audit)

	if j.Privileged() {
		t.Error("non-privileged jail reports privileged")
	}
	if j.Unit() != "aggregator" {
		t.Errorf("Unit = %q", j.Unit())
	}

	if _, err := j.FS().Open("/etc/passwd"); !errors.Is(err, ErrForbidden) {
		t.Errorf("Open err = %v, want ErrForbidden", err)
	}
	if _, err := j.FS().Create("/tmp/x"); !errors.Is(err, ErrForbidden) {
		t.Errorf("Create err = %v", err)
	}
	if _, err := j.FS().ReadFile("/tmp/x"); !errors.Is(err, ErrForbidden) {
		t.Errorf("ReadFile err = %v", err)
	}
	if err := j.FS().WriteFile("/tmp/x", nil, 0o600); !errors.Is(err, ErrForbidden) {
		t.Errorf("WriteFile err = %v", err)
	}
	if _, err := j.Env().Get("PATH"); !errors.Is(err, ErrForbidden) {
		t.Errorf("Env err = %v", err)
	}
	if err := j.Exec("rm"); !errors.Is(err, ErrForbidden) {
		t.Errorf("Exec err = %v", err)
	}

	violations := audit.Violations()
	if len(violations) != 6 {
		t.Fatalf("audit has %d violations, want 6", len(violations))
	}
	if violations[0].Unit != "aggregator" || violations[0].Op != "fs.open" || violations[0].Detail != "/etc/passwd" {
		t.Errorf("first violation = %+v", violations[0])
	}
	if violations[0].Time.IsZero() {
		t.Error("violation time not set")
	}
}

func TestPrivilegedAllowed(t *testing.T) {
	audit := &Audit{}
	j := New("data-storage", true, audit)

	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	if err := j.FS().WriteFile(path, []byte("data"), 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := j.FS().ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(data) != "data" {
		t.Errorf("read back %q", data)
	}

	f, err := j.FS().Create(filepath.Join(dir, "c.txt"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := j.FS().Open(filepath.Join(dir, "c.txt"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	_ = r.Close()

	if _, err := j.Env().Get("PATH"); err != nil {
		t.Errorf("Env.Get: %v", err)
	}
	if err := j.Exec("anything"); err != nil {
		t.Errorf("Exec: %v", err)
	}
	if audit.Len() != 0 {
		t.Errorf("privileged ops were audited as violations: %v", audit.Violations())
	}
}

func TestPrivilegedErrorsWrapOS(t *testing.T) {
	j := New("u", true, nil)
	if _, err := j.FS().Open(filepath.Join(t.TempDir(), "missing")); err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Open missing = %v, want wrapped ErrNotExist", err)
	}
	if _, err := j.FS().ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("ReadFile missing succeeded")
	}
}

func TestNilAuditAllocates(t *testing.T) {
	j := New("u", false, nil)
	_ = j.Exec("x")
	if j.Audit().Len() != 1 {
		t.Error("private audit did not record")
	}
}

func TestAuditConcurrency(t *testing.T) {
	audit := &Audit{}
	j := New("u", false, audit)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				_ = j.Exec("x")
			}
		}()
	}
	wg.Wait()
	if audit.Len() != 1000 {
		t.Errorf("audit len = %d, want 1000", audit.Len())
	}
}
