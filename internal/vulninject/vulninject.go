// Package vulninject reproduces the paper's security evaluation (§5.2):
// it injects the four CVE-derived vulnerability classes into the MDT
// application and verifies that SafeWeb prevents the resulting disclosure
// while the unprotected baseline leaks.
//
// Each experiment runs the full deployment twice — once with taint
// tracking enabled and once with it disabled — and reports whether the
// bug discloses data without SafeWeb (it must: otherwise the injection is
// vacuous) and whether SafeWeb blocks it.
package vulninject

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"safeweb/internal/label"
	"safeweb/internal/maindb"
	"safeweb/internal/mdt"
	"safeweb/internal/webdb"
)

// Outcome is the result of one vulnerability experiment.
type Outcome struct {
	// Name is the §5.2 category name.
	Name string
	// CVEs lists the CVE reports the paper cites for the category.
	CVEs string
	// BaselineDisclosed reports whether the bug leaked confidential data
	// with taint tracking disabled (the vulnerability is real).
	BaselineDisclosed bool
	// SafeWebPrevented reports whether SafeWeb blocked the disclosure
	// with taint tracking enabled.
	SafeWebPrevented bool
	// Detail describes what happened.
	Detail string
}

// Passed reports whether the experiment reproduced the paper's result:
// a real vulnerability that SafeWeb prevents.
func (o Outcome) Passed() bool { return o.BaselineDisclosed && o.SafeWebPrevented }

// registry returns the fixed registry configuration used by all
// experiments.
func registry() maindb.Config {
	return maindb.Config{Seed: 101, Patients: 60, Hospitals: 2, Regions: 2}
}

// RunAll executes the four §5.2 experiments. logf may be nil.
func RunAll(logf func(format string, args ...any)) ([]Outcome, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	experiments := []struct {
		name string
		cves string
		run  func(logf func(string, ...any)) (Outcome, error)
	}{
		{"Omitted Access Checks", "CVE-2011-0701, CVE-2010-2353, CVE-2010-0752", runOmittedCheck},
		{"Errors in Access Checks", "CVE-2011-0449, CVE-2010-3092, CVE-2010-4403", runCaseFoldLookup},
		{"Inappropriate Access Checks", "CVE-2010-4775, CVE-2009-2431", runIgnoreClinic},
		{"Design Errors", "CVE-2011-0899, CVE-2010-3933", runMixHospitals},
	}
	out := make([]Outcome, 0, len(experiments))
	for _, exp := range experiments {
		logf("vulninject: running %q", exp.name)
		o, err := exp.run(logf)
		if err != nil {
			return nil, fmt.Errorf("vulninject: %s: %w", exp.name, err)
		}
		o.Name = exp.name
		o.CVEs = exp.cves
		logf("vulninject: %q: baseline disclosed=%v, safeweb prevented=%v (%s)",
			exp.name, o.BaselineDisclosed, o.SafeWebPrevented, o.Detail)
		out = append(out, o)
	}
	return out, nil
}

// deploy builds an imported deployment with the given faults and tracking
// mode.
func deploy(faults mdt.Faults, disableTracking bool) (*mdt.Deployment, error) {
	d, err := mdt.Deploy(mdt.DeployConfig{
		Registry:        registry(),
		Faults:          faults,
		DisableTracking: disableTracking,
	})
	if err != nil {
		return nil, err
	}
	if err := d.ImportAll(); err != nil {
		d.Stop()
		return nil, err
	}
	return d, nil
}

// request performs an authenticated GET and classifies the response.
func request(d *mdt.Deployment, path, user, pass string) (status int, body string, err error) {
	addr, err := d.ServeHTTP("127.0.0.1:0")
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return 0, "", err
	}
	req.SetBasicAuth(user, pass)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(raw), nil
}

// disclosesRecords reports whether a response body contains case-record
// data (patient ids).
func disclosesRecords(body string) bool {
	return strings.Contains(body, "patient_id")
}

// twoMDTsWithRecords picks two distinct MDTs that both have case records,
// preferring a same-hospital pair when sameHospital is set.
func twoMDTsWithRecords(d *mdt.Deployment, sameHospital bool) (a, b maindb.MDT, err error) {
	var withRecords []maindb.MDT
	for _, m := range d.Registry.MDTs() {
		docs, qerr := d.DMZDB.Query(mdt.ViewRecordsByMDT, m.ID)
		if qerr != nil {
			return a, b, qerr
		}
		if len(docs) > 0 {
			withRecords = append(withRecords, m)
		}
	}
	for i, m1 := range withRecords {
		for _, m2 := range withRecords[i+1:] {
			if sameHospital && m1.Hospital != m2.Hospital {
				continue
			}
			if !sameHospital || m1.Hospital == m2.Hospital {
				return m1, m2, nil
			}
		}
	}
	return a, b, fmt.Errorf("no suitable MDT pair (sameHospital=%v)", sameHospital)
}

// runOmittedCheck reproduces §5.2 "Omitted Access Checks": the MDT
// privilege check is removed from the record route (Listing 2 line 5),
// and an MDT requests another MDT's records.
func runOmittedCheck(logf func(string, ...any)) (Outcome, error) {
	faults := mdt.Faults{OmitAccessCheck: true}
	var o Outcome

	for _, tracking := range []bool{false, true} {
		d, err := deploy(faults, !tracking)
		if err != nil {
			return o, err
		}
		attacker, victim, err := twoMDTsWithRecords(d, false)
		if err != nil {
			d.Stop()
			return o, err
		}
		status, body, err := request(d, "/records/"+victim.ID, attacker.ID, d.Creds[attacker.ID])
		d.Stop()
		if err != nil {
			return o, err
		}
		if tracking {
			o.SafeWebPrevented = status == http.StatusForbidden && !disclosesRecords(body)
		} else {
			o.BaselineDisclosed = status == http.StatusOK && disclosesRecords(body)
		}
	}
	o.Detail = "cross-MDT record listing with the privilege check removed"
	return o, nil
}

// runCaseFoldLookup reproduces §5.2 "Errors in Access Checks": the user
// lookup ignores username case, so accounts mdt1 and MDT1 share
// privileges. The paper creates exactly those two accounts.
func runCaseFoldLookup(logf func(string, ...any)) (Outcome, error) {
	faults := mdt.Faults{CaseFoldUserLookup: true}
	var o Outcome

	for _, tracking := range []bool{false, true} {
		d, err := deploy(faults, !tracking)
		if err != nil {
			return o, err
		}
		mdtA, mdtB, err := twoMDTsWithRecords(d, false)
		if err != nil {
			d.Stop()
			return o, err
		}
		// Two users whose names differ only by case, with different
		// privileges (paper: "usernames mdt1 and MDT1 but with different
		// privileges"). "MDT1" belongs to mdtB; "mdt1" belongs to mdtA.
		const pass = "pw"
		uppercase, err := d.WebDB.CreateUser("MDT1", pass, webdb.WithMDT(mdtB.ID, mdtB.Region))
		if err != nil {
			d.Stop()
			return o, err
		}
		d.WebDB.GrantLabel(uppercase.ID, label.Clearance, label.Exact(mdt.MDTLabel(mdtB.ID)))
		d.WebDB.AddPrivilegeRow(webdb.PrivilegeRow{UID: uppercase.ID, Hospital: mdtB.Hospital, Clinic: mdtB.Clinic})

		lowercase, err := d.WebDB.CreateUser("mdt1", pass, webdb.WithMDT(mdtA.ID, mdtA.Region))
		if err != nil {
			d.Stop()
			return o, err
		}
		d.WebDB.GrantLabel(lowercase.ID, label.Clearance, label.Exact(mdt.MDTLabel(mdtA.ID)))
		d.WebDB.AddPrivilegeRow(webdb.PrivilegeRow{UID: lowercase.ID, Hospital: mdtA.Hospital, Clinic: mdtA.Clinic})

		// mdt1 (cleared only for mdtA) requests mdtB's records. The buggy
		// folded lookup resolves mdt1 -> MDT1's row, so the app check
		// passes.
		status, body, err := request(d, "/records/"+mdtB.ID, "mdt1", pass)
		d.Stop()
		if err != nil {
			return o, err
		}
		if tracking {
			o.SafeWebPrevented = status == http.StatusForbidden && !disclosesRecords(body)
		} else {
			o.BaselineDisclosed = status == http.StatusOK && disclosesRecords(body)
		}
	}
	o.Detail = "mdt1/MDT1 privilege confusion via case-insensitive user lookup"
	return o, nil
}

// runIgnoreClinic reproduces §5.2 "Inappropriate Access Checks": the
// clinic-equality condition is removed from check_privileges (Listing 3
// line 7), "effectively enabling any MDT to see the data of all the
// patients in the same hospital."
func runIgnoreClinic(logf func(string, ...any)) (Outcome, error) {
	faults := mdt.Faults{IgnoreClinicInCheck: true}
	var o Outcome

	for _, tracking := range []bool{false, true} {
		d, err := deploy(faults, !tracking)
		if err != nil {
			return o, err
		}
		attacker, victim, err := twoMDTsWithRecords(d, true) // same hospital
		if err != nil {
			d.Stop()
			return o, err
		}
		status, body, err := request(d, "/records/"+victim.ID, attacker.ID, d.Creds[attacker.ID])
		d.Stop()
		if err != nil {
			return o, err
		}
		if tracking {
			o.SafeWebPrevented = status == http.StatusForbidden && !disclosesRecords(body)
		} else {
			o.BaselineDisclosed = status == http.StatusOK && disclosesRecords(body)
		}
	}
	o.Detail = "same-hospital cross-clinic access with the clinic condition dropped"
	return o, nil
}

// runMixHospitals reproduces §5.2 "Design Errors": the aggregator ignores
// the origin MDT when matching events, generating records that mix data of
// different MDTs. SafeWeb labels such records with all involved MDTs, so
// no single MDT can display them.
func runMixHospitals(logf func(string, ...any)) (Outcome, error) {
	faults := mdt.Faults{MixHospitals: true}
	var o Outcome

	for _, tracking := range []bool{false, true} {
		d, err := deploy(faults, !tracking)
		if err != nil {
			return o, err
		}
		// Find a record that actually mixed several patients' reports.
		mixed := findMixedRecord(d)
		if mixed == "" {
			d.Stop()
			return o, fmt.Errorf("aggregator produced no mixed records")
		}
		user, _ := d.Registry.MDTByID(mixed)
		status, body, err := request(d, "/records/"+mixed, user.ID, d.Creds[user.ID])
		d.Stop()
		if err != nil {
			return o, err
		}
		if tracking {
			// The mixed records carry multiple MDT labels; even the
			// owning MDT cannot display them.
			o.SafeWebPrevented = status == http.StatusForbidden && !disclosesRecords(body)
		} else {
			o.BaselineDisclosed = status == http.StatusOK && disclosesRecords(body)
		}
	}
	o.Detail = "aggregator mixed records across MDTs; labels of all owners block display"
	return o, nil
}

// findMixedRecord returns the id of an MDT whose record listing includes
// a record carrying labels of more than one MDT (tracking mode) or whose
// stored reports mix patients (baseline mode).
func findMixedRecord(d *mdt.Deployment) string {
	for _, m := range d.Registry.MDTs() {
		docs, err := d.DMZDB.Query(mdt.ViewRecordsByMDT, m.ID)
		if err != nil {
			continue
		}
		for _, doc := range docs {
			var rec mdt.CaseRecord
			if err := json.Unmarshal(doc.Data, &rec); err != nil {
				continue
			}
			if rec.Reports > 1 || doc.Labels.Confidentiality().Len() > 1 {
				return m.ID
			}
		}
	}
	return ""
}
