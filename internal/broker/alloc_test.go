package broker

import (
	"testing"

	"safeweb/internal/event"
	"safeweb/internal/label"
)

// TestPublishAllocsUnlabelledSingleSubscriber pins the zero-allocation
// fast path: routing an attribute-free, unlabelled event to one
// subscriber must not allocate at all (shared delivery, no clearance
// machinery, no matched-set buffer).
func TestPublishAllocsUnlabelledSingleSubscriber(t *testing.T) {
	b := New(nil)
	defer b.Close()
	if _, err := b.Subscribe("s", "/t", "", func(*event.Event) {}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	ev := event.New("/t", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := b.Publish("p", ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("Publish allocs/op = %v, want 0", allocs)
	}
}

// TestPublishAllocsLabelledSingleSubscriber pins the cached-clearance
// path: after the first delivery warms the subscription's privilege
// snapshot, labelled publishes must not allocate either.
func TestPublishAllocsLabelledSingleSubscriber(t *testing.T) {
	p := label.NewPolicy()
	p.Grant("s", label.Clearance, label.MustParsePattern("label:conf:ecric.org.uk/*"))
	b := New(p)
	defer b.Close()
	if _, err := b.Subscribe("s", "/t", "", func(*event.Event) {}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	ev := event.New("/t", nil, label.Conf("ecric.org.uk/mdt/7"))
	ev.Freeze() // publish-time memo; warm it like Publish does
	allocs := testing.AllocsPerRun(1000, func() {
		if err := b.Publish("p", ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("labelled Publish allocs/op = %v, want 0", allocs)
	}
}

// TestClearanceCacheInvalidation verifies that the per-subscription
// privilege snapshot is refreshed when the policy changes: a grant made
// after subscription (and after deliveries populated the cache) must
// apply to the next publish, and a revocation must stop delivery.
func TestClearanceCacheInvalidation(t *testing.T) {
	p := label.NewPolicy()
	b := New(p)
	defer b.Close()

	h, got := collect()
	mustSubscribe(t, b, "late", "/t", "", h)

	secret := event.New("/t", nil, label.Conf("ecric.org.uk/mdt/7"))

	// Not yet cleared: filtered (and the empty snapshot is cached).
	if err := b.Publish("p", secret); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if n := len(got()); n != 0 {
		t.Fatalf("uncleared subscriber got %d events", n)
	}

	// Dynamic delegation: grant clearance, the cache must notice.
	pat := label.MustParsePattern("label:conf:ecric.org.uk/mdt/7")
	p.Grant("late", label.Clearance, pat)
	if err := b.Publish("p", secret); err != nil {
		t.Fatalf("Publish after grant: %v", err)
	}
	if n := len(got()); n != 1 {
		t.Fatalf("after grant got %d events, want 1", n)
	}

	// Revocation must also take effect.
	if !p.Revoke("late", label.Clearance, pat) {
		t.Fatal("Revoke found nothing")
	}
	if err := b.Publish("p", secret); err != nil {
		t.Fatalf("Publish after revoke: %v", err)
	}
	if n := len(got()); n != 1 {
		t.Fatalf("after revoke got %d events, want still 1", n)
	}
	if b.Stats().FilteredByLabel != 2 {
		t.Errorf("FilteredByLabel = %d, want 2", b.Stats().FilteredByLabel)
	}
}

// TestSharedDeliveryAttrFreeEvent documents the zero-copy contract: an
// attribute-free event is shared between publisher and subscribers rather
// than cloned.
func TestSharedDeliveryAttrFreeEvent(t *testing.T) {
	b := New(nil)
	defer b.Close()
	var seen *event.Event
	mustSubscribe(t, b, "s", "/t", "", func(ev *event.Event) { seen = ev })
	ev := event.New("/t", nil)
	ev.Body = []byte("payload")
	if err := b.Publish("p", ev); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if seen != ev {
		t.Error("attribute-free event was copied; want shared delivery")
	}
}

// TestDeliveryIsolatesAttrs is the complement: events with attributes get
// a per-subscriber attribute map, while body and labels stay shared.
func TestDeliveryIsolatesAttrs(t *testing.T) {
	b := New(nil)
	defer b.Close()
	var seen *event.Event
	mustSubscribe(t, b, "s", "/t", "", func(ev *event.Event) { seen = ev })
	ev := event.New("/t", map[string]string{"k": "v"})
	ev.Body = []byte("payload")
	if err := b.Publish("p", ev); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if seen == ev {
		t.Fatal("attr-carrying event shared; want isolated attrs")
	}
	seen.Attrs["k"] = "mutated"
	if ev.Attrs["k"] != "v" {
		t.Error("subscriber mutation leaked into publisher's event")
	}
	if &seen.Body[0] != &ev.Body[0] {
		t.Error("body was copied; want shared")
	}
}
