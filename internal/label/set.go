package label

import (
	"sort"
	"strings"
)

// Set is an immutable-by-convention set of labels. The zero value (nil) is
// an empty, usable set. Methods never mutate their receiver; operations that
// "change" a set return a new one, so sets can be shared freely between
// events, store entries and callback contexts without defensive copying at
// every boundary.
type Set map[Label]struct{}

// NewSet builds a set from the given labels.
func NewSet(labels ...Label) Set {
	if len(labels) == 0 {
		return nil
	}
	s := make(Set, len(labels))
	for _, l := range labels {
		s[l] = struct{}{}
	}
	return s
}

// ParseSet parses a comma-separated list of label URIs, as used in STOMP
// headers and policy files. Empty elements are ignored, so both "" and
// "a,,b" are accepted.
func ParseSet(s string) (Set, error) {
	var out Set
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		l, err := Parse(part)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = make(Set)
		}
		out[l] = struct{}{}
	}
	return out, nil
}

// Len returns the number of labels in the set.
func (s Set) Len() int { return len(s) }

// IsEmpty reports whether the set has no labels.
func (s Set) IsEmpty() bool { return len(s) == 0 }

// Contains reports whether l is in the set.
func (s Set) Contains(l Label) bool {
	_, ok := s[l]
	return ok
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	for l := range s {
		out[l] = struct{}{}
	}
	return out
}

// With returns a new set containing all labels of s plus the given labels.
func (s Set) With(labels ...Label) Set {
	if len(labels) == 0 {
		return s
	}
	out := make(Set, len(s)+len(labels))
	for l := range s {
		out[l] = struct{}{}
	}
	for _, l := range labels {
		out[l] = struct{}{}
	}
	return out
}

// Without returns a new set containing all labels of s except the given
// labels. It performs no privilege checking; callers enforce declassification
// before using it. When nothing would be removed, s is returned unchanged
// (sets are immutable by convention, so sharing is safe), and the common
// one-label removal avoids building an intermediate drop set.
func (s Set) Without(labels ...Label) Set {
	if len(s) == 0 {
		return nil
	}
	any := false
	for _, l := range labels {
		if s.Contains(l) {
			any = true
			break
		}
	}
	if !any {
		return s
	}
	if len(labels) == 1 {
		if len(s) == 1 {
			return nil
		}
		out := make(Set, len(s)-1)
		for l := range s {
			if l != labels[0] {
				out[l] = struct{}{}
			}
		}
		return out
	}
	drop := NewSet(labels...)
	var out Set
	for l := range s {
		if drop.Contains(l) {
			continue
		}
		if out == nil {
			out = make(Set, len(s))
		}
		out[l] = struct{}{}
	}
	return out
}

// Union returns the union of s and other.
func (s Set) Union(other Set) Set {
	if len(other) == 0 {
		return s
	}
	if len(s) == 0 {
		return other
	}
	out := make(Set, len(s)+len(other))
	for l := range s {
		out[l] = struct{}{}
	}
	for l := range other {
		out[l] = struct{}{}
	}
	return out
}

// Intersect returns the intersection of s and other.
func (s Set) Intersect(other Set) Set {
	if len(s) == 0 || len(other) == 0 {
		return nil
	}
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	var out Set
	for l := range small {
		if large.Contains(l) {
			if out == nil {
				out = make(Set)
			}
			out[l] = struct{}{}
		}
	}
	return out
}

// SubsetOf reports whether every label in s is also in other.
func (s Set) SubsetOf(other Set) bool {
	if len(s) > len(other) {
		return false
	}
	for l := range s {
		if !other.Contains(l) {
			return false
		}
	}
	return true
}

// Equal reports whether s and other contain exactly the same labels.
func (s Set) Equal(other Set) bool {
	return len(s) == len(other) && s.SubsetOf(other)
}

// OfKind returns the subset of labels with the given kind. When every
// label already has the kind, s itself is returned (sets are immutable by
// convention), so homogeneous sets — the common case on the broker's
// delivery path — cost no allocation.
func (s Set) OfKind(kind Kind) Set {
	matched := 0
	for l := range s {
		if l.kind == kind {
			matched++
		}
	}
	switch matched {
	case 0:
		return nil
	case len(s):
		return s
	}
	out := make(Set, matched)
	for l := range s {
		if l.kind == kind {
			out[l] = struct{}{}
		}
	}
	return out
}

// Confidentiality returns the confidentiality labels in the set.
func (s Set) Confidentiality() Set { return s.OfKind(Confidentiality) }

// Integrity returns the integrity labels in the set.
func (s Set) Integrity() Set { return s.OfKind(Integrity) }

// Sorted returns the labels in deterministic (lexicographic URI) order.
func (s Set) Sorted() []Label {
	out := make([]Label, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Strings returns the sorted label URIs.
func (s Set) Strings() []string {
	labels := s.Sorted()
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = l.String()
	}
	return out
}

// String renders the set as a comma-separated list of sorted label URIs,
// the representation used in STOMP headers and document metadata.
func (s Set) String() string {
	switch len(s) {
	case 0:
		return ""
	case 1:
		for l := range s {
			return l.String()
		}
	}
	return strings.Join(s.Strings(), ",")
}

// MarshalText implements encoding.TextMarshaler using the comma-separated
// representation.
func (s Set) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Set) UnmarshalText(text []byte) error {
	parsed, err := ParseSet(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Derive computes the label set of data derived from the given sources,
// following the paper's composition rules (§4.1): confidentiality labels are
// sticky (union across sources) and integrity labels are fragile
// (intersection across sources). Deriving from zero sources yields the
// empty set.
func Derive(sources ...Set) Set {
	if len(sources) == 0 {
		return nil
	}
	conf := sources[0].Confidentiality()
	integ := sources[0].Integrity()
	for _, src := range sources[1:] {
		conf = conf.Union(src.Confidentiality())
		integ = integ.Intersect(src.Integrity())
	}
	return conf.Union(integ)
}
