// Package engine is a testdata stub mirroring safeweb/internal/engine.
package engine

import "safeweb/internal/event"

// Context is pooled and reset between callbacks in the real package.
type Context struct{ seq uint64 }

func (c *Context) Publish(topic string, attrs map[string]string, body []byte) error { return nil }

// InitContext registers subscriptions during app init.
type InitContext struct{}

func (c *InitContext) Subscribe(topic string, fn func(ctx *Context, ev *event.Event) error) {}
