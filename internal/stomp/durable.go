package stomp

import "strconv"

// Durable-topic replay rides the same frames credit flow control does:
//
//   - SUBSCRIBE may carry an offset header ("earliest", "next", or a
//     non-negative decimal offset) selecting where replay of a durable
//     topic starts, and a group header naming the consumer group whose
//     cumulative acked offset the subscription resumes from (and
//     advances). A SUBSCRIBE with neither header is a plain live
//     subscription, byte-identical to today's wire behaviour. A start
//     position below the journal's retained lower bound (journals are
//     compacted; see package journal) is clamped up to the oldest
//     retained record — the broker counts the clamp, it is never silent.
//   - ACK may carry an offset header holding the consumer's cumulative
//     progress: every journal record below the offset is processed. Like
//     credit grants, offset acks are cumulative and idempotent — the live
//     value is the maximum ever acked, so duplicated or reordered acks
//     can only be no-ops. One ACK frame may carry an offset ack, a credit
//     grant, or both; the broker applies whichever are present.
//   - MESSAGE frames replayed from a journal carry the record's offset in
//     the reserved HdrDeliveryOffset header, which is what the consumer
//     acks once its handler completes.
//
// This file holds the shared pieces: header names, fail-closed parsers,
// and the client-side ack sender. Journal storage and the replay feed
// live in packages journal and broker.

// HdrOffset is the SUBSCRIBE header selecting a replay start position and
// the ACK header carrying a cumulative offset ack.
const HdrOffset = "offset"

// HdrGroup is the SUBSCRIBE header naming the durable consumer group.
const HdrGroup = "group"

// HdrDeliveryOffset is the reserved MESSAGE header carrying a replayed
// record's journal offset. It lives in the transport's reserved namespace
// (like the label headers) so it can never collide with an application
// attribute.
const HdrDeliveryOffset = "x-safeweb-offset"

// OffsetSpec is a parsed SUBSCRIBE offset header: where replay starts.
type OffsetSpec struct {
	// Earliest replays from the start of the journal.
	Earliest bool
	// Next skips the backlog and replays only records appended after the
	// subscription is established.
	Next bool
	// At is the absolute start offset when neither flag is set.
	At int64
}

// ParseOffsetSpec parses a SUBSCRIBE offset header: "earliest", "next",
// or a non-negative decimal offset. Anything else fails closed with a
// ProtocolError so a malformed spec rejects the subscription rather than
// silently picking a start position.
func ParseOffsetSpec(s string) (OffsetSpec, error) {
	switch s {
	case "earliest":
		return OffsetSpec{Earliest: true}, nil
	case "next":
		return OffsetSpec{Next: true}, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return OffsetSpec{}, protoErrorf("offset header %q: not earliest, next, or a decimal int64", s)
	}
	if n < 0 {
		return OffsetSpec{}, protoErrorf("offset header %q: must be non-negative", s)
	}
	return OffsetSpec{At: n}, nil
}

// ParseOffsetAck parses an ACK offset header value: a non-negative
// decimal int64 (acking offset 0 is a legal no-op restating "nothing
// processed yet"). Anything else fails closed with a ProtocolError.
func ParseOffsetAck(s string) (int64, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, protoErrorf("offset ack %q: not a decimal int64", s)
	}
	if n < 0 {
		return 0, protoErrorf("offset ack %q: must be non-negative", s)
	}
	return n, nil
}

// SendOffsetAck sends an ACK frame recording cumulative replay progress
// for the subscription: every journal record below offset is processed.
// When credit is positive the frame also restates the subscription's
// cumulative credit grant — both acks are idempotent maxima, so
// piggybacking one frame for both costs nothing and halves the ack
// traffic of a durable credited consumer. Fire-and-forget, like
// SendCreditGrant.
func (c *Client) SendOffsetAck(subscription string, offset int64, credit int64) error {
	f := NewFrame(CmdAck)
	f.SetHeader(HdrSubscription, subscription)
	f.SetHeader(HdrOffset, strconv.FormatInt(offset, 10))
	if credit > 0 {
		f.SetHeader(HdrCredit, strconv.FormatInt(credit, 10))
	}
	return c.writeFrame(f)
}
