// Package engine implements SafeWeb's event processing engine (paper
// §4.3): the runtime environment that hosts application units, tracks
// security labels across their callbacks, mediates their communication
// through the event broker, and isolates them from the environment.
//
// Its key functions, as in the paper, are (1) control of unit execution by
// checking and tracking security labels, (2) assignment of privileges to
// units from the policy, and (3) restriction of access to the environment
// via the IFC jail.
//
// Label tracking follows §4.3 exactly: the engine associates a label set
// (the paper's __LABELS__, here Context.Labels) with each callback
// execution, initialised to the labels of the event being processed. When
// the callback publishes, all tracked labels are attached; the callback may
// add labels freely and remove labels only with the declassification
// privilege. The per-unit key-value store labels values per key: reads
// merge the key's labels into the tracked set, writes save the tracked set
// as the key's labels.
package engine

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/event"
	"safeweb/internal/jail"
	"safeweb/internal/label"
)

// Unit is an event processing unit: one application component realised "as
// one or more classes that implement the business logic" (§4.3). Init is
// called once when the unit is added to the engine; it registers
// subscriptions and may initialise unit state. Unit implementations must
// not retain the InitContext after Init returns.
type Unit interface {
	// Name returns the unit's principal name for policy lookups.
	Name() string
	// Init registers the unit's subscriptions.
	Init(ctx *InitContext) error
}

// Callback processes one delivered event within a label-tracking context.
// Returning an error records a callback failure; the engine keeps running
// (the error is the application's bug, and SafeWeb's guarantees do not
// depend on application correctness).
//
// The delivered event follows the same lifecycle as the pooled Context:
// it is valid for the duration of the callback and released back to the
// delivery pool when the callback returns, so callbacks must not retain
// ev (or its attribute map) past their own return — Clone what must
// outlive the callback. Label sets and the body are shared immutable data
// and may be kept.
type Callback func(ctx *Context, ev *event.Event) error

// BusFactory creates the Bus for a unit principal. The in-process broker's
// Endpoint method and a dialer for the networked broker both satisfy it.
type BusFactory func(principal string) (broker.Bus, error)

// Config configures an Engine.
type Config struct {
	// Policy supplies unit privileges and the privileged-unit flags.
	// Required.
	Policy *label.Policy
	// Bus creates each unit's broker connection. Required.
	Bus BusFactory
	// Audit receives jail violations; nil allocates a shared audit.
	Audit *jail.Audit
	// QueueSize is the per-subscription event queue length. Queues
	// decouple broker delivery from callback execution (the paper's
	// STOMP client runs callbacks on fresh threads); a bounded queue
	// gives back-pressure instead of unbounded memory growth.
	// Zero means 256.
	QueueSize int
	// OnCallbackError observes callback failures and panics; nil logs.
	OnCallbackError func(unit string, ev *event.Event, err error)
	// Logf logs engine events; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Stats counts engine activity.
type Stats struct {
	// EventsProcessed counts callback invocations completed.
	EventsProcessed uint64
	// CallbackErrors counts callbacks that returned an error or panicked.
	CallbackErrors uint64
	// FlowViolations counts denied label operations (declassify/endorse
	// without privilege).
	FlowViolations uint64
}

// Engine hosts units. Create with New, add units with AddUnit, then Stop
// to tear down.
type Engine struct {
	cfg   Config
	audit *jail.Audit

	mu     sync.Mutex
	units  map[string]*unitRuntime
	closed bool

	pending  pendingTracker // in-flight events across all queues
	procGate watermarkGate  // wakes Drain when processed moves

	processed      atomic.Uint64
	callbackErrors atomic.Uint64
	flowViolations atomic.Uint64
}

// unitRuntime is the engine's per-unit state.
type unitRuntime struct {
	name       string
	privileged bool
	privs      *label.Privileges
	jail       *jail.Jail
	bus        broker.Bus
	store      *kvStore

	// queues holds the per-subscription event queues. It is appended to
	// (InitContext.Subscribe) and snapshotted (Stop, AddUnit cleanup)
	// under the engine lock, so a subscription racing Stop can never
	// leave a worker goroutine with an unclosed queue.
	queues []*subQueue
	wg     sync.WaitGroup
}

// subQueue wraps a subscription's event channel with a closed flag so a
// delivery racing queue teardown — a publisher that routed through a
// pre-unsubscribe snapshot of the broker's lock-free route table — is
// dropped instead of panicking on a closed channel.
type subQueue struct {
	mu     sync.RWMutex
	closed bool
	ch     chan queuedEvent
}

// push enqueues qe unless the queue is closed, reporting whether it was
// accepted. It may block while the queue is full; close waits for blocked
// pushes, whose events the still-running worker drains first.
func (q *subQueue) push(qe queuedEvent) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return false
	}
	q.ch <- qe
	return true
}

// close marks the queue closed and closes the channel, ending its worker
// once the backlog is drained.
func (q *subQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	close(q.ch)
}

// queuedEvent is one delivery handed from a bus read goroutine to a
// subscription worker. It travels by value through the queue channel, so
// the per-event heap allocation of a pointer-typed queue is gone.
type queuedEvent struct {
	ev *event.Event
	cb Callback
}

// shutdown closes the unit's queues and waits for its workers. Callers
// must have closed the unit's bus first (no further deliveries) and hold
// a queues snapshot taken under the engine lock, or own the runtime
// exclusively (AddUnit before registration).
func (rt *unitRuntime) shutdown() {
	for _, q := range rt.queues {
		q.close()
	}
	rt.wg.Wait()
}

// New creates an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, errors.New("engine: Config.Policy is required")
	}
	if cfg.Bus == nil {
		return nil, errors.New("engine: Config.Bus is required")
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	audit := cfg.Audit
	if audit == nil {
		audit = &jail.Audit{}
	}
	return &Engine{
		cfg:   cfg,
		audit: audit,
		units: make(map[string]*unitRuntime),
	}, nil
}

// Audit returns the engine's jail audit log.
func (e *Engine) Audit() *jail.Audit { return e.audit }

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		EventsProcessed: e.processed.Load(),
		CallbackErrors:  e.callbackErrors.Load(),
		FlowViolations:  e.flowViolations.Load(),
	}
}

// AddUnit configures, instantiates and runs a unit (paper: "The engine
// configures, instantiates and runs units"). The unit's privileges and
// privileged flag come from the policy under the unit's name.
func (e *Engine) AddUnit(u Unit) error {
	name := u.Name()
	if name == "" {
		return errors.New("engine: unit with empty name")
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("engine: closed")
	}
	if _, dup := e.units[name]; dup {
		e.mu.Unlock()
		return fmt.Errorf("engine: duplicate unit %q", name)
	}
	e.mu.Unlock()

	bus, err := e.cfg.Bus(name)
	if err != nil {
		return fmt.Errorf("engine: bus for unit %q: %w", name, err)
	}
	privileged := e.cfg.Policy.IsPrivileged(name)
	rt := &unitRuntime{
		name:       name,
		privileged: privileged,
		privs:      e.cfg.Policy.PrivilegesOf(name),
		jail:       jail.New(name, privileged, e.audit),
		bus:        bus,
		store:      newKVStore(),
	}

	// The unit's initialisation runs inside the jail too (paper Fig. 2,
	// step 1: $SAFE=4 prevents the unit's initialisation code from
	// performing I/O). Capability mediation covers that here: Init only
	// receives the restricted InitContext.
	ictx := &InitContext{engine: e, rt: rt}
	if err := u.Init(ictx); err != nil {
		ictx.engine = nil // invalidate retained contexts
		_ = bus.Close()
		rt.shutdown()
		return fmt.Errorf("engine: init unit %q: %w", name, err)
	}
	ictx.engine = nil // invalidate retained contexts

	e.mu.Lock()
	if e.closed {
		// Stop ran while Init was registering subscriptions; it never saw
		// this unit, so its queues and workers are torn down here instead
		// of leaking.
		e.mu.Unlock()
		_ = bus.Close()
		rt.shutdown()
		return errors.New("engine: closed")
	}
	e.units[name] = rt
	e.mu.Unlock()
	return nil
}

// Drain blocks until every queued event has been processed and the engine
// has been quiescent for a short interval. It is intended for tests and
// benchmarks that publish a batch and then assert on results; external
// publishers must be quiescent while draining. The quiescence interval
// covers deliveries still in flight on broker connections (with the
// networked broker, events travel over TCP and are not yet counted while
// on the wire).
//
// Drain is event-driven: it waits on the pending tracker's gate and on a
// processed-watermark gate armed against the current counter, so it wakes
// the moment the pipeline moves instead of sleeping through poll
// intervals, and returns as soon as a full quiescence window passes with
// no movement.
func (e *Engine) Drain() {
	for {
		e.pending.wait()
		before := e.processed.Load()
		gate := e.procGate.arm()
		if e.processed.Load() != before || e.pending.count() != 0 {
			continue // moved while arming; not quiescent
		}
		timer := time.NewTimer(drainQuiesceWindow)
		select {
		case <-gate:
			timer.Stop() // a callback completed: wire deliveries were in flight
		case <-timer.C:
			if e.pending.count() == 0 && e.processed.Load() == before {
				return
			}
		}
	}
}

// drainQuiesceWindow is how long Drain requires the pipeline to sit still
// before declaring it quiescent; it covers deliveries on the wire that no
// counter has seen yet.
const drainQuiesceWindow = 2 * time.Millisecond

// watermarkGate wakes waiters when a counter they watch has moved. The
// hot-path cost when nobody waits is one atomic load.
type watermarkGate struct {
	gate atomic.Pointer[chan struct{}]
}

// bump signals any armed gate; callers invoke it after advancing the
// watched counter.
func (g *watermarkGate) bump() {
	if g.gate.Load() == nil {
		return
	}
	if ch := g.gate.Swap(nil); ch != nil {
		close(*ch)
	}
}

// arm returns a channel closed by the next bump. Concurrent waiters share
// one gate.
func (g *watermarkGate) arm() chan struct{} {
	for {
		if ch := g.gate.Load(); ch != nil {
			return *ch
		}
		nc := make(chan struct{})
		if g.gate.CompareAndSwap(nil, &nc) {
			return nc
		}
	}
}

// pendingTracker counts in-flight events. Unlike sync.WaitGroup it
// permits add() racing wait() from zero, which happens with networked
// brokers where deliveries arrive on connection read goroutines.
//
// The tracker is lock-free on the hot path: every delivered event costs
// one atomic add on enqueue and one on completion, instead of the two
// mutex acquisitions of a mutex+cond design. Waiters install a gate
// channel that zero-crossings close.
type pendingTracker struct {
	n    atomic.Int64
	gate atomic.Pointer[chan struct{}]
}

func (p *pendingTracker) add(delta int) {
	if p.n.Add(int64(delta)) <= 0 {
		if ch := p.gate.Swap(nil); ch != nil {
			close(*ch)
		}
	}
}

func (p *pendingTracker) count() int {
	return int(p.n.Load())
}

func (p *pendingTracker) wait() {
	for {
		if p.n.Load() <= 0 {
			return
		}
		ch := p.gate.Load()
		if ch == nil {
			nc := make(chan struct{})
			if !p.gate.CompareAndSwap(nil, &nc) {
				continue // another waiter installed a gate; share it
			}
			ch = &nc
			// Re-check: a zero-crossing between the count check and the
			// gate install would have found no gate to close.
			if p.n.Load() <= 0 {
				if c := p.gate.Swap(nil); c != nil {
					close(*c)
				}
				return
			}
		}
		<-*ch
	}
}

// Stop drains in-flight work, closes unit buses and stops queue workers.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	units := make([]*unitRuntime, 0, len(e.units))
	for _, rt := range e.units {
		units = append(units, rt)
	}
	e.mu.Unlock()

	// Stop inflow first, then drain. rt.queues is frozen once e.closed is
	// set (Subscribe rejects under the engine lock), so the snapshot read
	// in shutdown is race-free.
	for _, rt := range units {
		_ = rt.bus.Close()
	}
	e.pending.wait()
	for _, rt := range units {
		rt.shutdown()
	}
}

// runCallback executes one callback invocation with label tracking and
// panic containment. ctx is the worker's pooled Context: it is reset for
// this event and invalidated again before the function returns, so a
// callback that leaks its Context cannot act through it later (the same
// rule InitContext enforces after Init). The delivered event rides the
// same lifecycle: once the callback (and the error hook, which sees the
// event last) completes, the event is released back to the delivery pool,
// so the consumer steady state allocates no Event per callback. Both
// non-retention rules are hard contracts, not guidelines.
func (e *Engine) runCallback(ctx *Context, rt *unitRuntime, cb Callback, ev *event.Event) {
	defer e.pending.add(-1)
	ctx.engine = e
	ctx.rt = rt
	ctx.labels = ev.Labels // __LABELS__ initialised to the event's labels (§4.3)
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("engine: callback panic in unit %q: %v", rt.name, r)
			}
		}()
		return cb(ctx, ev)
	}()
	ctx.engine = nil // invalidate retained contexts
	ctx.rt = nil
	ctx.labels = nil
	e.processed.Add(1)
	e.procGate.bump()
	if err != nil {
		e.callbackErrors.Add(1)
		if e.cfg.OnCallbackError != nil {
			e.cfg.OnCallbackError(rt.name, ev, err)
		} else {
			e.cfg.Logf("engine: unit %q callback error: %v", rt.name, err)
		}
	}
	// Recycle pooled delivery events; no-op on shared ones. This is the
	// delivery-consumed point: a networked bus's credit replenishment
	// (broker.ClientConfig.SubscribeCredit) rides it via NotifyRelease.
	ev.Release()
}

// InitContext is the restricted capability surface available to a unit
// during Init.
type InitContext struct {
	engine *Engine
	rt     *unitRuntime
}

// Name returns the unit's name.
func (c *InitContext) Name() string { return c.rt.name }

// Jail returns the unit's jail, through which privileged units obtain I/O
// capabilities.
func (c *InitContext) Jail() *jail.Jail { return c.rt.jail }

// Subscribe registers a callback for events on the topic matching the
// optional SQL-92 selector. The engine narrows delivery to the unit's
// clearance at the broker ("the engine reads the set of labels from the
// unit's policy file for which the unit has clearance privileges... this
// set is used to check that a matching event can be processed", §4.3).
//
// Each subscription processes its events sequentially on a dedicated
// worker, so a unit's per-subscription state sees events in order;
// different subscriptions of the same unit run concurrently and must share
// state only through the labelled store.
func (c *InitContext) Subscribe(topic, sel string, cb Callback) error {
	if c.engine == nil {
		return errors.New("engine: InitContext used after Init returned")
	}
	if cb == nil {
		return errors.New("engine: nil callback")
	}
	e, rt := c.engine, c.rt

	queue := &subQueue{ch: make(chan queuedEvent, e.cfg.QueueSize)}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("engine: closed")
	}
	rt.queues = append(rt.queues, queue)
	e.mu.Unlock()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		// The worker owns one Context for its lifetime; runCallback
		// resets it per event and invalidates it between events, so the
		// per-callback Context allocation is gone from the dispatch path.
		var ctx Context
		for qe := range queue.ch {
			e.runCallback(&ctx, rt, qe.cb, qe.ev)
		}
	}()

	_, err := rt.bus.Subscribe(topic, sel, func(ev *event.Event) {
		e.pending.add(1)
		if !queue.push(queuedEvent{ev: ev, cb: cb}) {
			e.pending.add(-1) // engine stopping; late delivery dropped
			ev.Release()
		}
	})
	if err != nil {
		return fmt.Errorf("engine: subscribe unit %q to %q: %w", rt.name, topic, err)
	}
	return nil
}

// Publish publishes an event from initialisation code with the given
// labels; it is primarily used by import units that seed topics at
// startup. Label rules are identical to Context.Publish with an empty
// tracked set.
func (c *InitContext) Publish(topic string, attrs map[string]string, body []byte, opts ...PublishOption) error {
	if c.engine == nil {
		return errors.New("engine: InitContext used after Init returned")
	}
	ctx := &Context{engine: c.engine, rt: c.rt}
	return ctx.Publish(topic, attrs, body, opts...)
}
