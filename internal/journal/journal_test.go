package journal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testRecord builds a distinguishable record for offset i.
func testRecord(i int) *Record {
	img := []byte(fmt.Sprintf("MESSAGE\ndestination:/t\n\nbody-%d\x00", i))
	return &Record{
		Time:   int64(1000 + i),
		Topic:  "/t",
		Labels: "label:conf:ward-a",
		Split:  22,
		Image:  img,
	}
}

func mustAppend(t *testing.T, j *Journal, rec *Record) int64 {
	t.Helper()
	off, err := j.Append(rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return off
}

func TestJournalAppendReadRoundTrip(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const n = 10
	for i := 0; i < n; i++ {
		if off := mustAppend(t, j, testRecord(i)); off != int64(i) {
			t.Fatalf("append %d: got offset %d", i, off)
		}
	}
	if got := j.NextOffset(); got != n {
		t.Fatalf("NextOffset = %d, want %d", got, n)
	}
	var rec Record
	for i := 0; i < n; i++ {
		if err := j.Read(int64(i), &rec); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		want := testRecord(i)
		if rec.Time != want.Time || rec.Topic != want.Topic || rec.Labels != want.Labels ||
			rec.Split != want.Split || !bytes.Equal(rec.Image, want.Image) {
			t.Fatalf("Read %d: got %+v, want %+v", i, rec, want)
		}
	}
	if err := j.Read(n, &rec); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("Read past end: got %v, want ErrOffsetOutOfRange", err)
	}
	if err := j.Read(-1, &rec); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("Read(-1): got %v, want ErrOffsetOutOfRange", err)
	}
}

func TestJournalUnlabelledRecord(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, &Record{Topic: "/t", Image: []byte("x\x00"), Split: 1})
	var rec Record
	if err := j.Read(0, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Labels != "" {
		t.Fatalf("Labels = %q, want empty", rec.Labels)
	}
}

// TestJournalSegmentRoll forces tiny segments and checks reads span the
// roll and the reopened journal sees every record.
func TestJournalSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		mustAppend(t, j, testRecord(i))
	}
	segs, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	var rec Record
	for i := 0; i < n; i++ {
		if err := j.Read(int64(i), &rec); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.NextOffset(); got != n {
		t.Fatalf("reopened NextOffset = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if err := j2.Read(int64(i), &rec); err != nil {
			t.Fatalf("reopened Read %d: %v", i, err)
		}
		if !bytes.Equal(rec.Image, testRecord(i).Image) {
			t.Fatalf("reopened Read %d: wrong image", i)
		}
	}
}

func TestJournalAckMaxWins(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Acked("g"); got != 0 {
		t.Fatalf("unknown group Acked = %d, want 0", got)
	}
	for _, off := range []int64{3, 7, 5, 7, 2} { // duplicates and regressions are no-ops
		if err := j.Ack("g", off); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Ack("h", 1); err != nil {
		t.Fatal(err)
	}
	if got := j.Acked("g"); got != 7 {
		t.Fatalf("Acked(g) = %d, want 7", got)
	}
	if err := j.Ack("", 1); err == nil {
		t.Fatal("empty group Ack: want error")
	}
	if err := j.Ack("g", -1); err == nil {
		t.Fatal("negative Ack: want error")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Acks are persisted append-only and folded max-wins on reopen.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Acked("g"); got != 7 {
		t.Fatalf("reopened Acked(g) = %d, want 7", got)
	}
	if got := j2.Acked("h"); got != 1 {
		t.Fatalf("reopened Acked(h) = %d, want 1", got)
	}
}

// TestJournalAppendSignal checks the missed-wakeup-free tailing protocol:
// grab the signal, then read the bound; an append between the two closes
// the grabbed channel.
func TestJournalAppendSignal(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	sig := j.AppendSignal()
	select {
	case <-sig:
		t.Fatal("signal closed before any append")
	default:
	}
	mustAppend(t, j, testRecord(0))
	select {
	case <-sig:
	case <-time.After(2 * time.Second):
		t.Fatal("signal not closed by append")
	}

	// A tailing reader sees records appended after it started waiting.
	got := make(chan int64, 1)
	ready := make(chan struct{})
	go func() {
		for {
			sig := j.AppendSignal()
			if end := j.NextOffset(); end >= 2 {
				got <- end
				return
			}
			close(ready)
			<-sig
		}
	}()
	<-ready
	mustAppend(t, j, testRecord(1))
	select {
	case end := <-got:
		if end != 2 {
			t.Fatalf("tailing reader saw bound %d, want 2", end)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tailing reader never woke")
	}
}

// TestJournalConcurrentReadersAndAppends exercises the lock split (reads
// outside the append lock) under -race.
func TestJournalConcurrentReadersAndAppends(t *testing.T) {
	j, err := Open(t.TempDir(), Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const n = 200
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rec Record
			next := int64(0)
			for next < n {
				sig := j.AppendSignal()
				end := j.NextOffset()
				for next < end {
					if err := j.Read(next, &rec); err != nil {
						t.Errorf("Read %d: %v", next, err)
						return
					}
					next++
				}
				if next < n {
					<-sig
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		mustAppend(t, j, testRecord(i))
	}
	wg.Wait()
}

func TestJournalClosedErrors(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, testRecord(0))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(testRecord(1)); err == nil {
		t.Fatal("Append on closed journal: want error")
	}
	var rec Record
	if err := j.Read(0, &rec); err == nil {
		t.Fatal("Read on closed journal: want error")
	}
	if err := j.Ack("g", 1); err == nil {
		t.Fatal("Ack on closed journal: want error")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestJournalSyncAlways(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, testRecord(0))
	if err := j.Ack("g", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "*.seg")); err != nil {
		t.Fatal(err)
	}
}
