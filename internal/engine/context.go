package engine

import (
	"errors"
	"fmt"

	"safeweb/internal/event"
	"safeweb/internal/jail"
	"safeweb/internal/label"
)

// Context is the label-tracking execution context of one callback
// invocation. It corresponds to the paper's __LABELS__ mechanism (§4.3):
// the tracked set starts as the processed event's labels, grows as the
// callback reads labelled state, and is attached to everything the
// callback publishes or stores.
//
// A Context is owned by a single callback invocation and must not be
// shared across goroutines or retained after the callback returns. The
// engine pools one Context per subscription worker and invalidates it
// between callbacks (like InitContext after Init), so operations on a
// retained Context fail with ErrContextInvalid while the worker is
// between events. The enforcement is best-effort: a retained Context
// used concurrently with the worker's next callback is a data race on
// the pooled fields (before pooling, such retention read a stale private
// snapshot instead), which is why the non-retention rule is a hard
// contract, not a guideline.
//
// The delivered event shares this invalidation lifecycle: when the
// callback completes, the engine releases the event back to the delivery
// pool (event.Event.Release), so callbacks must not retain the event or
// its attribute map either — Clone what must outlive the callback.
type Context struct {
	engine *Engine
	rt     *unitRuntime
	labels label.Set
}

// ErrContextInvalid reports a Context used outside the callback invocation
// that owned it.
var ErrContextInvalid = errors.New("engine: Context used outside its callback")

// Unit returns the executing unit's name, or "" on an invalidated
// Context.
func (c *Context) Unit() string {
	if c.rt == nil {
		return ""
	}
	return c.rt.name
}

// Jail returns the unit's jail for capability checks, or nil on an
// invalidated Context (capability lookups on nil fail closed).
func (c *Context) Jail() *jail.Jail {
	if c.rt == nil {
		return nil
	}
	return c.rt.jail
}

// Labels returns the tracked label set (the paper's __LABELS__).
func (c *Context) Labels() label.Set { return c.labels }

// AddLabels raises the tracked set. Adding confidentiality labels is
// always permitted ("it is always possible to add extra confidentiality
// labels", §4.1); adding an integrity label requires the endorsement
// privilege.
func (c *Context) AddLabels(labels ...label.Label) error {
	if c.engine == nil {
		return ErrContextInvalid
	}
	for _, l := range labels {
		if l.Kind() == label.Integrity && !c.hasPrivilege(label.Endorse, l) {
			c.engine.flowViolations.Add(1)
			return &label.FlowError{
				Op: "endorse", Label: l, Principal: c.rt.name,
				Reason: "adding an integrity label requires the endorsement privilege",
			}
		}
	}
	c.labels = c.labels.With(labels...)
	return nil
}

// hasPrivilege checks a privilege, treating privileged units (paper:
// running at $SAFE=0) as holding declassification over everything — "this
// effectively allows them to declassify any received event" (§4.3).
func (c *Context) hasPrivilege(p label.Privilege, l label.Label) bool {
	if c.rt.privileged && p == label.Declassify {
		return true
	}
	return c.rt.privs.Has(p, l)
}

// PublishOption adjusts the labels attached to a publish or store write,
// mirroring Listing 1's ":remove => __LABELS__, :add => [...]" options.
type PublishOption func(*publishOpts)

type publishOpts struct {
	add       []label.Label
	remove    []label.Label
	removeAll bool
}

// WithAdd attaches extra labels to the published event.
func WithAdd(labels ...label.Label) PublishOption {
	return func(o *publishOpts) { o.add = append(o.add, labels...) }
}

// WithRemove removes labels from the published event; every removed
// confidentiality label requires the declassification privilege.
func WithRemove(labels ...label.Label) PublishOption {
	return func(o *publishOpts) { o.remove = append(o.remove, labels...) }
}

// WithRemoveAll removes the entire tracked set (Listing 1 line 8:
// ":remove => __LABELS__"), subject to the same privilege checks.
func WithRemoveAll() PublishOption {
	return func(o *publishOpts) { o.removeAll = true }
}

// resolveLabels computes the effective label set for an output operation:
// tracked ∪ add − remove, with privilege checks on removal and integrity
// addition.
func (c *Context) resolveLabels(opts []publishOpts) (label.Set, error) {
	var o publishOpts
	for i := range opts {
		o.add = append(o.add, opts[i].add...)
		o.remove = append(o.remove, opts[i].remove...)
		o.removeAll = o.removeAll || opts[i].removeAll
	}

	out := c.labels
	if o.removeAll {
		o.remove = append(o.remove, out.Sorted()...)
	}
	for _, l := range o.remove {
		if !out.Contains(l) {
			continue
		}
		switch l.Kind() {
		case label.Confidentiality:
			if !c.hasPrivilege(label.Declassify, l) {
				c.engine.flowViolations.Add(1)
				return nil, &label.FlowError{
					Op: "declassify", Label: l, Principal: c.rt.name,
					Reason: "removing a confidentiality label requires the declassification privilege",
				}
			}
		case label.Integrity:
			// Dropping an integrity label weakens only the data itself;
			// it needs no privilege.
		}
	}
	out = out.Without(o.remove...)

	for _, l := range o.add {
		if l.Kind() == label.Integrity && !c.hasPrivilege(label.Endorse, l) {
			c.engine.flowViolations.Add(1)
			return nil, &label.FlowError{
				Op: "endorse", Label: l, Principal: c.rt.name,
				Reason: "adding an integrity label requires the endorsement privilege",
			}
		}
	}
	out = out.With(o.add...)
	return out, nil
}

func collectOpts(opts []PublishOption) []publishOpts {
	if len(opts) == 0 {
		return nil
	}
	var o publishOpts
	for _, opt := range opts {
		opt(&o)
	}
	return []publishOpts{o}
}

// Publish publishes an event. The engine "attaches all labels in
// __LABELS__ to the event" (§4.3), adjusted by options with privilege
// checks.
func (c *Context) Publish(topic string, attrs map[string]string, body []byte, opts ...PublishOption) error {
	if c.engine == nil {
		return ErrContextInvalid
	}
	labels, err := c.resolveLabels(collectOpts(opts))
	if err != nil {
		return err
	}
	ev := event.New(topic, attrs)
	ev.Body = append([]byte(nil), body...)
	ev.Labels = labels
	if err := ev.Validate(); err != nil {
		return err
	}
	return c.rt.bus.Publish(ev)
}

// Get reads a value from the unit's key-value store. All labels associated
// with the key are merged into the tracked set, so confidentiality follows
// data through stateful units (§4.3: "when a value is read from the store,
// __LABELS__ is updated to reflect its confidentiality").
func (c *Context) Get(key string) (string, bool) {
	if c.engine == nil {
		return "", false
	}
	value, labels, ok := c.rt.store.get(key)
	if !ok {
		return "", false
	}
	c.labels = c.labels.Union(labels)
	return value, true
}

// Set writes a value to the unit's key-value store. The tracked set,
// adjusted by options under the usual privilege checks, becomes the key's
// label set ("all confidentiality labels in __LABELS__ are saved as the
// key's confidentiality", §4.3).
func (c *Context) Set(key, value string, opts ...PublishOption) error {
	if c.engine == nil {
		return ErrContextInvalid
	}
	labels, err := c.resolveLabels(collectOpts(opts))
	if err != nil {
		return err
	}
	c.rt.store.set(key, value, labels)
	return nil
}

// Delete removes a key from the unit's store. Deletion destroys data
// rather than disclosing it, so no privilege is needed. A no-op on an
// invalidated Context.
func (c *Context) Delete(key string) {
	if c.rt == nil {
		return
	}
	c.rt.store.delete(key)
}

// StoreKeys returns the unit store's keys, for diagnostic listings. The
// keys themselves are not labelled; values are. Nil on an invalidated
// Context.
func (c *Context) StoreKeys() []string {
	if c.rt == nil {
		return nil
	}
	return c.rt.store.keys()
}

// String implements fmt.Stringer for log lines.
func (c *Context) String() string {
	if c.rt == nil {
		return "engine.Context{invalid}"
	}
	return fmt.Sprintf("engine.Context{unit=%s labels=%s}", c.rt.name, c.labels)
}
