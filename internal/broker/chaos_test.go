package broker_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// TestChaosShardedConsumers hammers the networked broker with everything
// the sharded consumer path must survive at once: a consumer engine whose
// bus spreads subscriptions across several STOMP connections, concurrent
// publishers, subscription churn from short-lived clients, and mid-stream
// connection drops (both abrupt TCP closes and graceful disconnects).
// Under -race it doubles as the data-race check for the per-shard read
// loops feeding the engine's value-typed queues.
//
// The invariant: every subscription that survives the chaos — here, the
// engine's subscriptions, whose connections are never dropped — receives
// every published event exactly once, in per-subscription order, and the
// engine then tears down cleanly.
func TestChaosShardedConsumers(t *testing.T) {
	const (
		shards     = 3
		fanout     = 6
		publishers = 4
		perPub     = 250
		churners   = 3
	)
	total := publishers * perPub

	policy := label.NewPolicy()
	policy.Grant("consumer", label.Clearance, label.MustParsePattern("label:conf:chaos.test/*"))
	policy.Grant("churn", label.Clearance, label.MustParsePattern("label:conf:chaos.test/*"))
	br := broker.New(policy)
	defer br.Close()
	srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	// onError tolerates the errors churn naturally produces — connection
	// drops racing in-flight frames. Anything else fails the test.
	onError := func(err error) {
		var pe *stomp.ProtocolError
		if errors.Is(err, net.ErrClosed) || errors.As(err, &pe) {
			t.Errorf("unexpected bus error: %v", err)
			return
		}
		// read EOF / reset-by-peer after a drop: expected background noise
	}

	eng, err := engine.New(engine.Config{
		Policy: policy,
		Bus: func(principal string) (broker.Bus, error) {
			return broker.DialBus(srv.Addr(), broker.ClientConfig{
				Login:   principal,
				Shards:  shards,
				OnError: onError,
			})
		},
		QueueSize: 256,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}

	// Each surviving subscription records the sequence numbers it sees.
	// Subscriptions run sequentially on their own engine worker, so the
	// slices need no locks; engine.Stop's wait establishes the
	// happens-before for the final read.
	seen := make([][]int, fanout)
	for i := range seen {
		seen[i] = make([]int, 0, total)
	}
	err = eng.AddUnit(chaosUnit{name: "consumer", init: func(ctx *engine.InitContext) error {
		for i := 0; i < fanout; i++ {
			i := i
			if err := ctx.Subscribe("/chaos/out", "", func(_ *engine.Context, ev *event.Event) error {
				seq, err := strconv.Atoi(ev.Attr("seq"))
				if err != nil {
					return fmt.Errorf("bad seq attr %q: %v", ev.Attr("seq"), err)
				}
				seen[i] = append(seen[i], seq)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("AddUnit: %v", err)
	}

	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup

	// Churners: short-lived sharded clients that subscribe, receive a
	// little, unsubscribe or vanish. Odd iterations drop the TCP
	// connections abruptly (stomp.Client.Close sends no DISCONNECT);
	// even ones disconnect gracefully mid-stream.
	for c := 0; c < churners; c++ {
		chaosWG.Add(1)
		go func(c int) {
			defer chaosWG.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for iter := 0; ; iter++ {
				select {
				case <-stopChaos:
					return
				default:
				}
				cl, err := broker.DialBus(srv.Addr(), broker.ClientConfig{
					Login:   "churn",
					Shards:  1 + iter%3,
					OnError: onError,
				})
				if err != nil {
					t.Errorf("churner %d dial: %v", c, err)
					return
				}
				var ids []string
				for s := 0; s < 1+rng.Intn(3); s++ {
					id, err := cl.Subscribe("/chaos/out", "", func(*event.Event) {})
					if err != nil {
						// The broker may be shutting the churner's conn
						// down already; only a pre-drop failure is a bug.
						break
					}
					ids = append(ids, id)
				}
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				if iter%2 == 0 {
					for _, id := range ids {
						_ = cl.Unsubscribe(id)
					}
					_ = cl.Close() // graceful DISCONNECT mid-stream
				} else {
					// Abrupt mid-stream connection drop: subscriptions die
					// with the TCP connections; the server must clean up.
					abruptClose(cl)
				}
			}
		}(c)
	}

	// Publishers: concurrent labelled publishes with globally unique
	// sequence numbers.
	var seq atomic.Int64
	lbl := label.Conf("chaos.test/records")
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for n := 0; n < perPub; n++ {
				s := seq.Add(1) - 1
				ev := event.New("/chaos/out", map[string]string{"seq": strconv.FormatInt(s, 10)}, lbl)
				if err := br.Publish("consumer", ev); err != nil {
					t.Errorf("Publish seq %d: %v", s, err)
					return
				}
			}
		}()
	}
	pubWG.Wait()

	// Everything is published; wait for the surviving subscriptions to
	// drain the wire, then stop the chaos and the engine.
	deadline := time.Now().Add(2 * time.Minute)
	for eng.Stats().EventsProcessed < uint64(total*fanout) {
		if time.Now().After(deadline) {
			t.Fatalf("processed %d of %d events", eng.Stats().EventsProcessed, total*fanout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stopChaos)
	chaosWG.Wait()
	eng.Stop() // clean teardown: closes shard conns, drains queues, joins workers

	if got := eng.Stats().CallbackErrors; got != 0 {
		t.Errorf("%d callback errors", got)
	}
	if eng.Stats().EventsProcessed != uint64(total*fanout) {
		t.Errorf("processed %d events after Stop, want exactly %d (duplicates?)",
			eng.Stats().EventsProcessed, total*fanout)
	}
	for i, got := range seen {
		if len(got) != total {
			t.Errorf("subscription %d: %d deliveries, want %d", i, len(got), total)
			continue
		}
		counts := make(map[int]int, total)
		for _, s := range got {
			counts[s]++
		}
		for s := 0; s < total; s++ {
			if counts[s] != 1 {
				t.Errorf("subscription %d: seq %d delivered %d times, want exactly once", i, s, counts[s])
			}
		}
	}
}

// abruptClose tears down a sharded client's TCP connections without a
// DISCONNECT handshake, simulating a consumer crash mid-stream.
func abruptClose(cl *broker.Client) { cl.AbruptClose() }

// chaosUnit adapts a name and init function to engine.Unit.
type chaosUnit struct {
	name string
	init func(ctx *engine.InitContext) error
}

func (u chaosUnit) Name() string                       { return u.name }
func (u chaosUnit) Init(ctx *engine.InitContext) error { return u.init(ctx) }
