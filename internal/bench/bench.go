// Package bench implements the evaluation harness reproducing §5.3 and
// Figure 5 of the paper: page-generation latency with and without taint
// tracking (E2), backend event latency with and without IFC (E3), the
// frontend and backend latency break-downs (E4/E5, Fig. 5), event
// throughput (E6) and the trusted-codebase accounting (E7).
//
// Absolute numbers differ from the paper's Ruby/Rubinius deployment by
// orders of magnitude; the reproduction targets are the *relative*
// overheads (≈+14% frontend, ≈+15% backend latency, ≈−17% throughput) and
// the break-down ordering. The Workload knobs (auth work factor, fan-out)
// calibrate the fixed-cost phases the paper inherits from its production
// setting (e.g. 87 ms HTTP basic authentication).
package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"safeweb/internal/maindb"
	"safeweb/internal/mdt"
	"safeweb/internal/webfront"
)

// Workload fixes the experiment parameters shared by the latency
// experiments.
type Workload struct {
	// Patients is the synthetic registry size; zero means 120.
	Patients int
	// Requests is the number of measured requests per mode; zero means
	// 1000 (the paper's request count).
	Requests int
	// AuthWork is the credential-hash work factor for the frontend
	// experiments; zero means 2000 iterations (which places auth as the
	// dominant frontend phase, as in Fig. 5).
	AuthWork int
	// Seed fixes the registry.
	Seed int64
}

func (w Workload) withDefaults() Workload {
	if w.Patients == 0 {
		w.Patients = 120
	}
	if w.Requests == 0 {
		w.Requests = 1000
	}
	if w.AuthWork == 0 {
		w.AuthWork = 2000
	}
	if w.Seed == 0 {
		w.Seed = 77
	}
	return w
}

// LatencyResult is one measured mode of a latency experiment.
type LatencyResult struct {
	// Mode names the configuration ("baseline" or "safeweb").
	Mode string
	// Mean is the mean latency per operation.
	Mean time.Duration
	// Operations is the number of measured operations.
	Operations int
}

// Comparison pairs baseline and SafeWeb measurements.
type Comparison struct {
	// Name identifies the experiment.
	Name string
	// Baseline is the measurement without SafeWeb's tracking.
	Baseline LatencyResult
	// SafeWeb is the measurement with tracking enabled.
	SafeWeb LatencyResult
	// PaperBaseline and PaperSafeWeb are the paper's reported numbers
	// for the same experiment, for the EXPERIMENTS.md table.
	PaperBaseline, PaperSafeWeb string
}

// OverheadPercent returns the relative overhead of SafeWeb over the
// baseline in percent (negative for throughput-style metrics where the
// caller inverts it).
func (c Comparison) OverheadPercent() float64 {
	if c.Baseline.Mean == 0 {
		return 0
	}
	return 100 * (float64(c.SafeWeb.Mean) - float64(c.Baseline.Mean)) / float64(c.Baseline.Mean)
}

// deployPortal builds an imported MDT deployment for the experiments.
func deployPortal(w Workload, tracking bool, onReq func(webfront.PhaseTimes)) (*mdt.Deployment, error) {
	d, err := mdt.Deploy(mdt.DeployConfig{
		Registry:        maindb.Config{Seed: w.Seed, Patients: w.Patients},
		DisableTracking: !tracking,
		AuthWork:        w.AuthWork,
		OnRequest:       onReq,
	})
	if err != nil {
		return nil, err
	}
	if err := d.ImportAll(); err != nil {
		d.Stop()
		return nil, err
	}
	return d, nil
}

// measureFrontPage issues requests against the deployment's front page and
// returns the mean in-process page generation time, optionally collecting
// phase times.
func measureFrontPage(d *mdt.Deployment, w Workload, phases *PhaseAccumulator) (time.Duration, error) {
	// Pick the MDT with records whose page is largest, mirroring "the
	// MDT application's front page".
	user := ""
	for _, m := range d.Registry.MDTs() {
		if docs, _ := d.DMZDB.Query(mdt.ViewRecordsByMDT, m.ID); len(docs) > 0 {
			user = m.ID
			break
		}
	}
	if user == "" {
		return 0, fmt.Errorf("bench: registry produced no records")
	}

	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.SetBasicAuth(user, d.Creds[user])

	// Warm up (first request builds caches, first auth hashes, etc.).
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		d.Frontend.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return 0, fmt.Errorf("bench: front page returned %d: %s", rec.Code, rec.Body.String())
		}
	}
	if phases != nil {
		phases.Reset()
	}
	start := time.Now()
	for i := 0; i < w.Requests; i++ {
		rec := httptest.NewRecorder()
		d.Frontend.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return 0, fmt.Errorf("bench: front page returned %d", rec.Code)
		}
	}
	return time.Since(start) / time.Duration(w.Requests), nil
}

// PageGeneration runs experiment E2 (§5.3): front-page generation time
// with and without the taint-tracking library.
func PageGeneration(w Workload) (Comparison, error) {
	w = w.withDefaults()
	out := Comparison{
		Name:          "frontend page generation",
		PaperBaseline: "158 ms",
		PaperSafeWeb:  "180 ms (+14%)",
	}
	for _, tracking := range []bool{false, true} {
		d, err := deployPortal(w, tracking, nil)
		if err != nil {
			return out, err
		}
		mean, err := measureFrontPage(d, w, nil)
		d.Stop()
		if err != nil {
			return out, err
		}
		res := LatencyResult{Mode: "baseline", Mean: mean, Operations: w.Requests}
		if tracking {
			res.Mode = "safeweb"
			out.SafeWeb = res
		} else {
			out.Baseline = res
		}
	}
	return out, nil
}

// PhaseAccumulator aggregates webfront phase timings across requests.
type PhaseAccumulator struct {
	mu    sync.Mutex
	n     int
	auth  time.Duration
	priv  time.Duration
	hand  time.Duration
	check time.Duration
}

// Observe implements the webfront OnRequest hook.
func (a *PhaseAccumulator) Observe(p webfront.PhaseTimes) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	a.auth += p.Auth
	a.priv += p.PrivFetch
	a.hand += p.Handler
	a.check += p.LabelCheck
}

// Reset clears the accumulator.
func (a *PhaseAccumulator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n = 0
	a.auth, a.priv, a.hand, a.check = 0, 0, 0, 0
}

// Means returns the mean per-request phase durations.
func (a *PhaseAccumulator) Means() (auth, priv, handler, check time.Duration, n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		return 0, 0, 0, 0, 0
	}
	d := time.Duration(a.n)
	return a.auth / d, a.priv / d, a.hand / d, a.check / d, a.n
}

// FrontendBreakdown is the Fig. 5 frontend decomposition (E4).
type FrontendBreakdown struct {
	// Auth is HTTP basic authentication (paper: 87 ms).
	Auth time.Duration
	// PrivFetch is privilege fetching (paper: 3 ms).
	PrivFetch time.Duration
	// Template is template rendering without label work (paper: 63 ms).
	Template time.Duration
	// LabelPropagation is the added handler cost of tracking labels
	// (paper: 17 ms), measured as handler(safeweb) − handler(baseline)
	// plus the release check.
	LabelPropagation time.Duration
	// Other is the remaining request time (paper: 10 ms).
	Other time.Duration
	// Total is the mean end-to-end request time with SafeWeb on.
	Total time.Duration
}

// MeasureFrontendBreakdown runs E4: it measures phase times with tracking
// off and on, and derives the Fig. 5 decomposition.
func MeasureFrontendBreakdown(w Workload) (FrontendBreakdown, error) {
	w = w.withDefaults()
	var out FrontendBreakdown

	handlerMeans := make(map[bool]time.Duration, 2)
	var authOn, privOn, checkOn, totalOn time.Duration
	for _, tracking := range []bool{false, true} {
		acc := &PhaseAccumulator{}
		d, err := deployPortal(w, tracking, acc.Observe)
		if err != nil {
			return out, err
		}
		total, err := measureFrontPage(d, w, acc)
		d.Stop()
		if err != nil {
			return out, err
		}
		auth, priv, handler, check, _ := acc.Means()
		handlerMeans[tracking] = handler
		if tracking {
			authOn, privOn, checkOn, totalOn = auth, priv, check, total
		}
	}

	out.Auth = authOn
	out.PrivFetch = privOn
	out.Template = handlerMeans[false]
	labelProp := handlerMeans[true] - handlerMeans[false] + checkOn
	if labelProp < 0 {
		labelProp = checkOn
	}
	out.LabelPropagation = labelProp
	out.Total = totalOn
	other := totalOn - authOn - privOn - handlerMeans[true] - checkOn
	if other < 0 {
		other = 0
	}
	out.Other = other
	return out, nil
}
