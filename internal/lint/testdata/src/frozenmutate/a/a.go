// Test cases for the frozenmutate analyzer.
package a

import (
	"safeweb/internal/broker"
	"safeweb/internal/event"
)

func mutateAfterPublish(b *broker.Broker, ev *event.Event) {
	ev.Set("k", "v") // ok: not yet frozen
	b.Publish(ev)
	ev.Set("k2", "v2")  // want `event ev mutated by Set after it was frozen by publish`
	ev.Topic = "t"      // want `event ev field Topic written after it was frozen by publish`
	ev.Attrs["k"] = "v" // want `event ev attribute map entry written after it was frozen by publish`
}

func mutateAfterClientPublish(c *broker.Client, ev *event.Event) {
	c.Publish(ev)
	ev.Set("k", "v") // want `event ev mutated by Set after it was frozen by publish`
}

func mutateAfterFreeze(ev *event.Event) {
	ev.Freeze()
	ev.Set("k", "v") // want `event ev mutated by Set after it was frozen by publish`
}

func cloneAfterPublish(b *broker.Broker, ev *event.Event) {
	b.Publish(ev)
	cp := ev.Clone()
	cp.Set("k", "v") // ok: the clone is a fresh draft
	_ = ev.Get("k")  // ok: reads stay legal after freeze
}

func otherEventUnaffected(b *broker.Broker, ev, other *event.Event) {
	b.Publish(ev)
	other.Set("k", "v") // ok: only ev is frozen
}

func reassignedAfterPublish(b *broker.Broker, ev *event.Event) {
	b.Publish(ev)
	ev = event.New("/t", nil)
	ev.Set("k", "v") // ok: the name was rebound to a fresh draft
	b.Publish(ev)
	ev.Set("k2", "v") // want `event ev mutated by Set after it was frozen by publish`
}

func suppressedMutation(b *broker.Broker, ev *event.Event) {
	b.Publish(ev)
	//lint:ignore frozenmutate test fixture intentionally writes through the frozen image
	ev.Set("k", "v")
}

func handlers(b *broker.Broker) {
	b.SubscribeWire("t", func(ev *event.Event, img []byte) {
		ev.Set("k", "v") // want `SubscribeWire handler mutated by Set event ev`
		_ = img
	})
	b.SubscribeTap("t", func(ev *event.Event) {
		ev.Topic = "x" // want `SubscribeTap handler field Topic written event ev`
	})
	b.SubscribeTap("t", func(ev *event.Event) {
		ev.Attrs["k"] = "v" // want `SubscribeTap handler attribute map entry written event ev`
	})
	b.Subscribe("t", func(ev *event.Event) {
		ev.Set("k", "v") // ok: plain Subscribe delivers a private pooled copy
	})
	b.SubscribeTap("t", func(ev *event.Event) {
		cp := ev.Clone()
		cp.Set("k", "v") // ok: handler cloned before mutating
	})
}

func suppressedHandler(b *broker.Broker) {
	b.SubscribeWire("t", func(ev *event.Event, img []byte) {
		//lint:ignore frozenmutate exercising the broker's tamper detection
		ev.Set("k", "v")
	})
}

// A callback literal defined after a publish is its own scope: the
// publish in the enclosing function must not freeze the literal's
// parameter of the same name.
func literalScopes(b *broker.Broker, ev *event.Event, register func(func(ev *event.Event))) {
	b.Publish(ev)
	register(func(ev *event.Event) {
		ev.Set("k", "v") // ok: different ev, unfrozen scope
	})
}
