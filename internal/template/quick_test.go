package template

import (
	"math/rand"
	"strings"
	"testing"

	"safeweb/internal/label"
	"safeweb/internal/taint"
)

// genTemplate builds a random well-formed template over a fixed variable
// universe.
func genTemplate(rnd *rand.Rand, depth int) string {
	vars := []string{"a", "b", "c", "d.x"}
	pick := func() string { return vars[rnd.Intn(len(vars))] }
	var b strings.Builder
	n := 1 + rnd.Intn(4)
	for i := 0; i < n; i++ {
		switch r := rnd.Intn(5); {
		case r == 0:
			b.WriteString("text-")
		case r == 1:
			b.WriteString("<%= " + pick() + " %>")
		case r == 2 && depth > 0:
			b.WriteString("<% if " + pick() + " %>" + genTemplate(rnd, depth-1) + "<% else %>" + genTemplate(rnd, depth-1) + "<% end %>")
		case r == 3 && depth > 0:
			b.WriteString("<% for x in list %>" + genTemplate(rnd, depth-1) + "<%= x %><% end %>")
		default:
			b.WriteString("<%== " + pick() + " %>")
		}
	}
	return b.String()
}

func genContext(rnd *rand.Rand) (Context, label.Set) {
	labels := []label.Label{label.Conf("l1"), label.Conf("l2"), label.Conf("l3")}
	used := make(label.Set)
	value := func() taint.String {
		set := make(label.Set)
		for _, l := range labels {
			if rnd.Intn(3) == 0 {
				set[l] = struct{}{}
				used[l] = struct{}{}
			}
		}
		return taint.WrapString("v", set)
	}
	list := make([]taint.String, rnd.Intn(3))
	for i := range list {
		list[i] = value()
	}
	return Context{
		"a":    value(),
		"b":    value(),
		"c":    value(),
		"d":    taint.Doc{"x": value()},
		"list": list,
	}, used
}

// TestQuickRenderNeverLeaksUnlabelled: every random template render
// succeeds (the generator emits only well-formed templates) and the output
// labels are a subset of the labels present in the context — the template
// engine invents no labels and, conversely, every interpolated labelled
// value's labels appear in the output.
func TestQuickRenderTotalAndLabelSound(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		src := genTemplate(rnd, 2)
		tmpl, err := Parse("gen", src)
		if err != nil {
			t.Fatalf("generated template failed to parse: %q: %v", src, err)
		}
		ctx, available := genContext(rnd)
		out, err := tmpl.Render(ctx)
		if err != nil {
			t.Fatalf("render %q: %v", src, err)
		}
		if !out.Labels().SubsetOf(available) {
			t.Fatalf("render invented labels: %v not in %v (template %q)",
				out.Labels(), available, src)
		}
	}
}

// TestQuickRenderDeterministic: rendering is a pure function of template
// and context.
func TestQuickRenderDeterministic(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		src := genTemplate(rnd, 2)
		tmpl := MustParse("gen", src)
		ctx, _ := genContext(rnd)
		a, err := tmpl.Render(ctx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tmpl.Render(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if a.Raw() != b.Raw() || !a.Labels().Equal(b.Labels()) {
			t.Fatalf("non-deterministic render of %q", src)
		}
	}
}
