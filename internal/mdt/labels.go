// Package mdt implements the MDT web portal application of the paper's
// evaluation (§5.1): the SafeWeb application that feeds cancer-registry
// data back to hospital multidisciplinary teams.
//
// The application consists of the paper's three event processing units —
// a privileged data producer reading the main registry, a non-privileged
// data aggregator combining case events, and a privileged data storage
// unit persisting labelled records to the application database — plus the
// web frontend routes satisfying functional requirements F1–F3 under
// security policy P1.
package mdt

import (
	"safeweb/internal/label"
	"safeweb/internal/maindb"
)

// Label scheme enforcing policy P1 (§2.1):
//
//   - Patient-level records carry the treating MDT's label; "details about
//     patients can be consulted only by members of the MDT that treats
//     them." (The paper's deployment "uses only MDT-level labels as these
//     are sufficient", §5.1.)
//   - MDT-level aggregates carry a per-region aggregate label; they "can
//     be consulted by all MDTs in the same region."
//   - Regional-level aggregates carry the regional label; they "can be
//     seen by all MDTs."
const (
	// Authority is the label authority for the deployment.
	Authority = "ecric.org.uk"
	// IntegrityName is the application integrity label name (the paper's
	// label:int:ecric.org.uk/mdt example).
	IntegrityName = Authority + "/mdt"
)

// MDTLabel protects the patient-level data of one MDT.
func MDTLabel(mdtID string) label.Label {
	return label.Conf(Authority + "/mdt/" + mdtID)
}

// PatientLabel protects a single patient's data (finer granularity than
// the deployment uses by default, available to applications that need it).
func PatientLabel(patientID string) label.Label {
	return label.Conf(Authority + "/patient/" + patientID)
}

// RegionAggLabel protects MDT-level aggregates within a region.
func RegionAggLabel(region string) label.Label {
	return label.Conf(Authority + "/region/" + region + "/mdt-agg")
}

// RegionalAggLabel protects regional-level aggregates (visible to all
// MDTs).
func RegionalAggLabel() label.Label {
	return label.Conf(Authority + "/regional-agg")
}

// IntegrityLabel is the application-wide integrity label.
func IntegrityLabel() label.Label {
	return label.Int(IntegrityName)
}

// Unit principal names.
const (
	ProducerName   = "mdt-data-producer"
	AggregatorName = "mdt-data-aggregator"
	StorageName    = "mdt-data-storage"
)

// BuildPolicy constructs the unit policy for the MDT application:
//
//   - the producer is privileged (it performs I/O against the main
//     registry) and endorses the application integrity label;
//   - the aggregator is NOT privileged — it is the large, unaudited
//     component whose bugs SafeWeb contains — and holds clearance for all
//     MDT labels so it can combine case data;
//   - the storage unit is privileged ("has declassification privileges
//     for all MDTs", §5.1) and holds clearance for everything it stores.
func BuildPolicy(db *maindb.DB) *label.Policy {
	p := label.NewPolicy()

	allConf := label.MustParsePattern("label:conf:" + Authority + "/*")
	allInt := label.MustParsePattern("label:int:" + Authority + "/*")

	p.SetPrincipal(ProducerName, label.NewPrivileges().
		Grant(label.Clearance, allConf).
		Grant(label.Endorse, allInt), true)

	// The aggregator is delegated endorsement over the application
	// integrity label so it may re-publish derived events that carry it
	// (§3: "the creator of an integrity label delegates to other
	// components an endorsement privilege to add this label to data").
	// Fragile-integrity composition still governs whether the label is
	// present at all.
	p.SetPrincipal(AggregatorName, label.NewPrivileges().
		Grant(label.Clearance, allConf).
		Grant(label.Endorse, allInt), false)

	p.SetPrincipal(StorageName, label.NewPrivileges().
		Grant(label.Clearance, allConf).
		Grant(label.Declassify, allConf).
		Grant(label.Endorse, allInt), true)

	return p
}

// UserClearance returns the label privileges of a portal user belonging to
// the given MDT: clearance for the MDT's own label, the region's MDT
// aggregates, and regional aggregates — exactly policy P1.
func UserClearance(m maindb.MDT) *label.Privileges {
	return label.NewPrivileges().
		GrantLabel(label.Clearance, MDTLabel(m.ID)).
		GrantLabel(label.Clearance, RegionAggLabel(m.Region)).
		GrantLabel(label.Clearance, RegionalAggLabel())
}
