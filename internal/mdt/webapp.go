package mdt

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"safeweb/internal/docstore"
	"safeweb/internal/label"
	"safeweb/internal/maindb"
	"safeweb/internal/taint"
	"safeweb/internal/template"
	"safeweb/internal/webdb"
	"safeweb/internal/webfront"
)

// View names registered on the application database.
const (
	// ViewRecordsByMDT indexes case records by MDT id — the
	// "Records.by_mid" view of Listing 2.
	ViewRecordsByMDT = "records_by_mdt"
	// ViewMetricsByRegion indexes per-MDT metrics by region, for the F3
	// comparison page.
	ViewMetricsByRegion = "metrics_by_region"
)

// RegisterViews installs the application's views on a store (both the
// Intranet instance and the DMZ replica register them; queries run against
// the replica).
func RegisterViews(s *docstore.Store) {
	s.RegisterView(ViewRecordsByMDT, func(doc *docstore.Document) []string {
		var rec struct {
			MDT string `json:"mdt"`
		}
		if err := json.Unmarshal(doc.Data, &rec); err != nil || rec.MDT == "" {
			return nil
		}
		if !strings.HasPrefix(doc.ID, "record/") {
			return nil
		}
		return []string{rec.MDT}
	})
	s.RegisterView(ViewMetricsByRegion, func(doc *docstore.Document) []string {
		var m struct {
			Scope  string `json:"scope"`
			Region string `json:"region"`
		}
		if err := json.Unmarshal(doc.Data, &m); err != nil {
			return nil
		}
		if m.Scope != "mdt" || !strings.HasPrefix(doc.ID, "metric/mdt/") {
			return nil
		}
		return []string{m.Region}
	})
}

// WebAppConfig wires the MDT web application.
type WebAppConfig struct {
	// Frontend is the SafeWeb frontend the routes register on. Required.
	Frontend *webfront.App
	// Store is the application database the frontend reads — the DMZ
	// replica in the paper's deployment. Required.
	Store *docstore.Store
	// WebDB holds accounts and privilege rows. Required.
	WebDB *webdb.DB
	// MDTs describes the teams (hospital, clinic, region per MDT id);
	// the privilege checks of Listing 3 consult it. Required.
	MDTs []maindb.MDT
	// Faults enables the §5.2 injected vulnerabilities.
	Faults Faults
}

// WebApp is the MDT portal's web tier: the routes of F1–F3 implemented on
// the SafeWeb frontend.
type WebApp struct {
	cfg  WebAppConfig
	mdts map[string]maindb.MDT
}

// frontPageTemplate renders the portal front page: the MDT's case list
// and quality metrics (the page measured by the paper's page-generation
// benchmark, §5.3).
var frontPageTemplate = template.MustParse("front_page", `<!DOCTYPE html>
<html><head><title>MDT portal</title></head><body>
<h1>MDT <%= mdt %> — case feedback</h1>
<table>
<tr><th>Patient</th><th>Name</th><th>Sites</th><th>Stage</th><th>Completeness</th></tr>
<% for r in records %><tr><td><%= r.patient_id %></td><td><%= r.name %></td><td><%= r.sites %></td><td><%= r.max_stage %></td><td><%= r.completeness %></td></tr>
<% end %></table>
<% if metrics %>
<h2>Data quality</h2>
<p>Cases: <%= metrics.cases %></p>
<p>Completeness: <%= metrics.completeness %></p>
<p>Projected survival: <%= metrics.survival %></p>
<% end %>
</body></html>
`)

// NewWebApp registers the MDT portal routes and returns the app.
func NewWebApp(cfg WebAppConfig) (*WebApp, error) {
	switch {
	case cfg.Frontend == nil:
		return nil, fmt.Errorf("mdt: WebAppConfig.Frontend is required")
	case cfg.Store == nil:
		return nil, fmt.Errorf("mdt: WebAppConfig.Store is required")
	case cfg.WebDB == nil:
		return nil, fmt.Errorf("mdt: WebAppConfig.WebDB is required")
	}
	w := &WebApp{cfg: cfg, mdts: make(map[string]maindb.MDT, len(cfg.MDTs))}
	for _, m := range cfg.MDTs {
		w.mdts[m.ID] = m
	}

	app := cfg.Frontend
	app.GetPublic("/health", func(c *webfront.Ctx) error {
		c.WriteString("ok")
		return nil
	})
	app.Get("/", w.frontPage)
	app.Get("/records/:mid", w.recordsByMDT)
	app.Get("/records/:mid/:pid", w.recordDetail)
	app.Get("/metrics/:mid", w.metricsForMDT)
	app.Get("/compare/:region", w.compareRegion)
	app.Get("/regional/:region", w.regionalAggregate)
	return w, nil
}

// checkPrivileges is the application-level access check of Listing 3. It
// is intentionally ordinary application code — the kind that acquires the
// §5.2 bugs — not part of SafeWeb's trusted base; SafeWeb's release check
// backstops it.
func (w *WebApp) checkPrivileges(c *webfront.Ctx, mid string) (bool, error) {
	m, ok := w.mdts[mid]
	if !ok {
		return false, nil
	}
	// m = Measurement.find(id); u = User.find_by_name(@username) ...
	var (
		u   *webdb.User
		err error
	)
	if w.cfg.Faults.CaseFoldUserLookup {
		// Injected "errors in access checks" bug: the lookup ignores
		// case, so mdt1 may resolve to MDT1's row and privileges.
		u, err = w.cfg.WebDB.FindUserFold(c.User.Username)
	} else {
		u, err = w.cfg.WebDB.FindUser(c.User.Username)
	}
	if err != nil {
		return false, fmt.Errorf("mdt: user lookup: %w", err)
	}
	if u.IsAdmin {
		return true, nil
	}
	cond := webdb.PrivilegeCond{UID: u.ID, Hospital: m.Hospital, Clinic: m.Clinic}
	if w.cfg.Faults.IgnoreClinicInCheck {
		// Injected "inappropriate access checks" bug: the clinic
		// equality condition is dropped (Listing 3 line 7 removed), so
		// any MDT of the same hospital passes.
		cond.Clinic = ""
	}
	return w.cfg.WebDB.CountPrivileges(cond) > 0, nil
}

// guard applies the access check unless the omitted-check fault is active
// (Listing 2 line 5 deleted).
func (w *WebApp) guard(c *webfront.Ctx, mid string) error {
	if w.cfg.Faults.OmitAccessCheck {
		return nil
	}
	ok, err := w.checkPrivileges(c, mid)
	if err != nil {
		return err
	}
	if !ok {
		return webfront.ErrForbidden("not a member of this MDT")
	}
	return nil
}

// fetchRecords loads and wraps the case records of an MDT.
func (w *WebApp) fetchRecords(mid string) ([]taint.Doc, error) {
	docs, err := w.cfg.Store.Query(ViewRecordsByMDT, mid)
	if err != nil {
		return nil, fmt.Errorf("mdt: query records: %w", err)
	}
	return w.cfg.Frontend.WrapDocs(docs)
}

// frontPage renders the logged-in user's own MDT page (F1 + F2).
func (w *WebApp) frontPage(c *webfront.Ctx) error {
	mid := c.User.MDT
	if mid == "" {
		return webfront.ErrForbidden("account has no MDT")
	}
	if err := w.guard(c, mid); err != nil {
		return err
	}
	records, err := w.fetchRecords(mid)
	if err != nil {
		return err
	}
	sortDocsByPatient(records)

	tctx := template.Context{
		"mdt":     taint.NewString(mid),
		"records": records,
	}
	if doc, err := w.cfg.Store.Get("metric/mdt/" + mid); err == nil {
		metrics, err := w.cfg.Frontend.WrapDoc(doc)
		if err != nil {
			return err
		}
		tctx["metrics"] = metrics
	}
	return c.Render(frontPageTemplate, tctx)
}

// recordsByMDT is Listing 2: the JSON list of an MDT's case records.
func (w *WebApp) recordsByMDT(c *webfront.Ctx) error {
	mid := c.Param("mid")
	if err := w.guard(c, mid); err != nil {
		return err
	}
	records, err := w.fetchRecords(mid)
	if err != nil {
		return err
	}
	sortDocsByPatient(records)
	body, err := taint.ToJSONList(records)
	if err != nil {
		return err
	}
	c.JSON(body)
	return nil
}

// recordDetail serves one case record (F1: "consult the details of
// patients treated by that MDT").
func (w *WebApp) recordDetail(c *webfront.Ctx) error {
	mid, pid := c.Param("mid"), c.Param("pid")
	if err := w.guard(c, mid); err != nil {
		return err
	}
	doc, err := w.cfg.Store.Get("record/" + mid + "/" + pid)
	if err != nil {
		return webfront.ErrNotFound("record")
	}
	wrapped, err := w.cfg.Frontend.WrapDoc(doc)
	if err != nil {
		return err
	}
	body, err := wrapped.ToJSON()
	if err != nil {
		return err
	}
	c.JSON(body)
	return nil
}

// metricsForMDT serves one MDT's aggregate metrics (F2).
func (w *WebApp) metricsForMDT(c *webfront.Ctx) error {
	mid := c.Param("mid")
	// Aggregates carry the region aggregate label, so no app-level MDT
	// membership check applies; SafeWeb's release check enforces the
	// region rule of P1.
	doc, err := w.cfg.Store.Get("metric/mdt/" + mid)
	if err != nil {
		return webfront.ErrNotFound("metrics")
	}
	wrapped, err := w.cfg.Frontend.WrapDoc(doc)
	if err != nil {
		return err
	}
	body, err := wrapped.ToJSON()
	if err != nil {
		return err
	}
	c.JSON(body)
	return nil
}

// compareRegion serves all MDT metrics of a region (F3: "MDT co-ordinators
// can put those metrics into context by comparing them with each MDT's
// average in the same region").
func (w *WebApp) compareRegion(c *webfront.Ctx) error {
	docs, err := w.cfg.Store.Query(ViewMetricsByRegion, c.Param("region"))
	if err != nil {
		return fmt.Errorf("mdt: query metrics: %w", err)
	}
	wrapped, err := w.cfg.Frontend.WrapDocs(docs)
	if err != nil {
		return err
	}
	body, err := taint.ToJSONList(wrapped)
	if err != nil {
		return err
	}
	c.JSON(body)
	return nil
}

// regionalAggregate serves a region's aggregate (F3: "or with regional
// aggregates"), visible to all MDTs under P1.
func (w *WebApp) regionalAggregate(c *webfront.Ctx) error {
	doc, err := w.cfg.Store.Get("metric/region/" + c.Param("region"))
	if err != nil {
		return webfront.ErrNotFound("regional aggregate")
	}
	wrapped, err := w.cfg.Frontend.WrapDoc(doc)
	if err != nil {
		return err
	}
	body, err := wrapped.ToJSON()
	if err != nil {
		return err
	}
	c.JSON(body)
	return nil
}

func sortDocsByPatient(docs []taint.Doc) {
	sort.Slice(docs, func(i, j int) bool {
		return docs[i].GetString("patient_id").Raw() < docs[j].GetString("patient_id").Raw()
	})
}

// ProvisionUsers creates one portal account per MDT (username = the MDT
// id, e.g. "mdt-3") plus an "admin" account, granting each the label
// clearance of UserClearance and the Listing 3 privilege rows. It returns
// the generated passwords by username.
func ProvisionUsers(db *webdb.DB, mdts []maindb.MDT, password string) (map[string]string, error) {
	creds := make(map[string]string, len(mdts)+1)
	for _, m := range mdts {
		u, err := db.CreateUser(m.ID, password, webdb.WithMDT(m.ID, m.Region))
		if err != nil {
			return nil, fmt.Errorf("mdt: provision %s: %w", m.ID, err)
		}
		creds[m.ID] = password
		db.GrantLabel(u.ID, label.Clearance, label.Exact(MDTLabel(m.ID)))
		db.GrantLabel(u.ID, label.Clearance, label.Exact(RegionAggLabel(m.Region)))
		db.GrantLabel(u.ID, label.Clearance, label.Exact(RegionalAggLabel()))
		db.AddPrivilegeRow(webdb.PrivilegeRow{UID: u.ID, Hospital: m.Hospital, Clinic: m.Clinic})
	}
	admin, err := db.CreateUser("admin", password, webdb.WithAdmin())
	if err != nil {
		return nil, fmt.Errorf("mdt: provision admin: %w", err)
	}
	creds["admin"] = password
	// The admin may see everything the portal serves.
	db.GrantLabel(admin.ID, label.Clearance, label.MustParsePattern("label:conf:"+Authority+"/*"))
	return creds, nil
}
