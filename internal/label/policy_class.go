package label

// policyMutators and policyReaders classify every exported Policy method.
// The broker's cached-clearance invariant (ROADMAP: "any new policy
// mutation path MUST bump the generation or cached clearance goes stale")
// is enforced twice from this one list: at compile time by the policygen
// analyzer (internal/lint), which checks that every exported method is
// classified and that every classified mutator bumps the generation
// counter on every path into it, and at run time by
// TestPolicyMutatorsBumpGeneration, which property-checks the same
// contract over random operation sequences.
var (
	policyMutators = map[string]bool{
		"SetPrincipal":    true,
		"RemovePrincipal": true,
		"Grant":           true,
		"Revoke":          true,
	}
	policyReaders = map[string]bool{
		"Generation":   true,
		"WriteTo":      true,
		"PrivilegesOf": true,
		"IsPrivileged": true,
		"Principals":   true,
	}
)
