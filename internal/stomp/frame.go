// Package stomp implements the Streaming Text Oriented Messaging Protocol
// used as the wire protocol of SafeWeb's event broker (paper §4.2): "each
// request consists of a command, such as CONNECT, SEND or SUBSCRIBE, a set
// of optional headers and an optional body."
//
// The implementation covers the STOMP 1.0/1.1 frame format with 1.1 header
// escaping, content-length handling, receipts, and TLS at the transport
// layer. SafeWeb's label extensions ride in ordinary headers (see package
// event); the codec itself is label-agnostic.
package stomp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Standard STOMP commands.
const (
	CmdConnect     = "CONNECT"
	CmdConnected   = "CONNECTED"
	CmdSend        = "SEND"
	CmdSubscribe   = "SUBSCRIBE"
	CmdUnsubscribe = "UNSUBSCRIBE"
	CmdMessage     = "MESSAGE"
	CmdReceipt     = "RECEIPT"
	CmdError       = "ERROR"
	CmdDisconnect  = "DISCONNECT"
	CmdAck         = "ACK"
	CmdNack        = "NACK"
	CmdBegin       = "BEGIN"
	CmdCommit      = "COMMIT"
	CmdAbort       = "ABORT"
)

// Common header names.
const (
	HdrDestination   = "destination"
	HdrSelector      = "selector"
	HdrID            = "id"
	HdrSubscription  = "subscription"
	HdrMessageID     = "message-id"
	HdrReceipt       = "receipt"
	HdrReceiptID     = "receipt-id"
	HdrContentLength = "content-length"
	HdrLogin         = "login"
	HdrPasscode      = "passcode"
	HdrSession       = "session"
	HdrMessage       = "message"
	HdrVersion       = "version"
)

// MaxHeaderLen bounds a single header line; MaxBodyLen bounds frame bodies.
// Both protect the broker from unbounded memory use on malformed input.
const (
	MaxHeaderLen = 64 * 1024
	MaxBodyLen   = 16 * 1024 * 1024
	maxHeaders   = 256
)

// Frame is a single STOMP frame.
type Frame struct {
	// Command is the frame command, e.g. "SEND".
	Command string
	// Headers holds the frame headers. Values are unescaped.
	Headers map[string]string
	// Body is the optional frame body.
	Body []byte
}

// NewFrame creates a frame with an initialised header map.
func NewFrame(command string) *Frame {
	return &Frame{Command: command, Headers: make(map[string]string)}
}

// Header returns the value of the named header, or "".
func (f *Frame) Header(name string) string { return f.Headers[name] }

// SetHeader sets a header, initialising the map if needed.
func (f *Frame) SetHeader(name, value string) {
	if f.Headers == nil {
		f.Headers = make(map[string]string)
	}
	f.Headers[name] = value
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := &Frame{Command: f.Command}
	if f.Headers != nil {
		out.Headers = make(map[string]string, len(f.Headers))
		for k, v := range f.Headers {
			out.Headers[k] = v
		}
	}
	if f.Body != nil {
		out.Body = append([]byte(nil), f.Body...)
	}
	return out
}

// String renders the frame for logs (headers sorted, body length only).
func (f *Frame) String() string {
	keys := make([]string, 0, len(f.Headers))
	for k := range f.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(f.Command)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%q", k, f.Headers[k])
	}
	if len(f.Body) > 0 {
		fmt.Fprintf(&b, " body=%dB", len(f.Body))
	}
	return b.String()
}

// ProtocolError reports a malformed frame.
type ProtocolError struct{ Msg string }

// Error implements the error interface.
func (e *ProtocolError) Error() string { return "stomp: " + e.Msg }

func protoErrorf(format string, args ...any) error {
	return &ProtocolError{Msg: fmt.Sprintf(format, args...)}
}

// escapeHeader applies STOMP 1.1 header escaping.
func escapeHeader(s string) string {
	if !strings.ContainsAny(s, "\\\n:\r") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case ':':
			b.WriteString(`\c`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// unescapeHeader reverses escapeHeader, rejecting undefined sequences.
func unescapeHeader(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", protoErrorf("dangling escape in header %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 'c':
			b.WriteByte(':')
		default:
			return "", protoErrorf("undefined escape \\%c in header %q", s[i], s)
		}
	}
	return b.String(), nil
}

// WriteFrame encodes a frame to w. A content-length header is always
// emitted so bodies may contain NUL bytes.
func WriteFrame(w io.Writer, f *Frame) error {
	if f.Command == "" {
		return protoErrorf("cannot write frame with empty command")
	}
	var b bytes.Buffer
	b.WriteString(f.Command)
	b.WriteByte('\n')
	keys := make([]string, 0, len(f.Headers))
	for k := range f.Headers {
		if k == HdrContentLength {
			continue // always computed below
		}
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic encoding simplifies testing and debugging
	for _, k := range keys {
		b.WriteString(escapeHeader(k))
		b.WriteByte(':')
		b.WriteString(escapeHeader(f.Headers[k]))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s:%d\n", HdrContentLength, len(f.Body))
	b.WriteByte('\n')
	b.Write(f.Body)
	b.WriteByte(0)
	_, err := w.Write(b.Bytes())
	return err
}

// ReadFrame decodes one frame from r. It skips heart-beat newlines between
// frames and returns io.EOF at a clean end of stream.
func ReadFrame(r *bufio.Reader) (*Frame, error) {
	// Skip inter-frame EOLs (heart-beats).
	var cmdLine string
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if line != "" {
			cmdLine = line
			break
		}
	}

	f := NewFrame(cmdLine)
	switch f.Command {
	case CmdConnect, CmdConnected, CmdSend, CmdSubscribe, CmdUnsubscribe,
		CmdMessage, CmdReceipt, CmdError, CmdDisconnect, CmdAck, CmdNack,
		CmdBegin, CmdCommit, CmdAbort:
	default:
		return nil, protoErrorf("unknown command %q", f.Command)
	}

	for i := 0; ; i++ {
		if i > maxHeaders {
			return nil, protoErrorf("too many headers")
		}
		line, err := readLine(r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if line == "" {
			break
		}
		sep := strings.IndexByte(line, ':')
		if sep < 0 {
			return nil, protoErrorf("malformed header line %q", line)
		}
		key, err := unescapeHeader(line[:sep])
		if err != nil {
			return nil, err
		}
		val, err := unescapeHeader(line[sep+1:])
		if err != nil {
			return nil, err
		}
		// Per spec, the first occurrence of a repeated header wins.
		if _, dup := f.Headers[key]; !dup {
			f.Headers[key] = val
		}
	}

	if lenStr, ok := f.Headers[HdrContentLength]; ok {
		n, err := strconv.Atoi(lenStr)
		if err != nil || n < 0 {
			return nil, protoErrorf("bad content-length %q", lenStr)
		}
		if n > MaxBodyLen {
			return nil, protoErrorf("body of %d bytes exceeds limit", n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, fmt.Errorf("stomp: short body: %w", err)
		}
		terminator, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("stomp: missing frame terminator: %w", err)
		}
		if terminator != 0 {
			return nil, protoErrorf("frame not NUL-terminated after body")
		}
		if n > 0 {
			f.Body = body
		}
		delete(f.Headers, HdrContentLength)
		return f, nil
	}

	// No content-length: body runs to the NUL terminator.
	body, err := r.ReadBytes(0)
	if err != nil {
		return nil, fmt.Errorf("stomp: unterminated frame: %w", err)
	}
	body = body[:len(body)-1]
	if len(body) > 0 {
		f.Body = body
	}
	return f, nil
}

// readLine reads a \n-terminated line, trimming an optional \r, with a
// length bound.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if errors.Is(err, io.EOF) && line == "" {
			return "", io.EOF
		}
		if errors.Is(err, io.EOF) {
			return "", io.ErrUnexpectedEOF
		}
		return "", err
	}
	if len(line) > MaxHeaderLen {
		return "", protoErrorf("header line exceeds %d bytes", MaxHeaderLen)
	}
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return line, nil
}
