package taint

import (
	"regexp"
	"strings"
	"testing"

	"safeweb/internal/label"
)

var (
	mdt7  = label.Conf("ecric.org.uk/mdt/7")
	mdt8  = label.Conf("ecric.org.uk/mdt/8")
	integ = label.Int("ecric.org.uk/mdt")
)

func TestConcatComposesLabels(t *testing.T) {
	a := NewString("patient: ", mdt7)
	b := NewString("John Smith", mdt8)
	c := a.Concat(b)
	if c.Raw() != "patient: John Smith" {
		t.Errorf("Raw = %q", c.Raw())
	}
	if !c.Labels().Contains(mdt7) || !c.Labels().Contains(mdt8) {
		t.Errorf("Labels = %v", c.Labels())
	}
}

func TestConcatIntegrityFragile(t *testing.T) {
	a := WrapString("a", label.NewSet(mdt7, integ))
	b := WrapString("b", label.NewSet(integ))
	c := WrapString("c", nil)

	ab := a.Concat(b)
	if !ab.Labels().Contains(integ) {
		t.Error("common integrity label lost")
	}
	abc := a.Concat(b, c)
	if abc.Labels().Contains(integ) {
		t.Error("integrity label survived mix with unlabelled data")
	}
	if !abc.Labels().Contains(mdt7) {
		t.Error("confidentiality label lost")
	}
}

func TestAppendDropsIntegrity(t *testing.T) {
	s := WrapString("x", label.NewSet(mdt7, integ)).Append("!")
	if s.Raw() != "x!" {
		t.Errorf("Raw = %q", s.Raw())
	}
	if !s.Labels().Contains(mdt7) || s.Labels().Contains(integ) {
		t.Errorf("Labels = %v", s.Labels())
	}
}

func TestTransformsKeepLabels(t *testing.T) {
	s := NewString("  MiXeD  ", mdt7)
	for name, got := range map[string]String{
		"upper": s.ToUpper(),
		"lower": s.ToLower(),
		"trim":  s.TrimSpace(),
	} {
		if !got.Labels().Contains(mdt7) {
			t.Errorf("%s lost label", name)
		}
	}
	if s.ToUpper().Raw() != "  MIXED  " || s.TrimSpace().Raw() != "MiXeD" {
		t.Error("transform contents wrong")
	}
}

func TestSplitPartsInheritLabels(t *testing.T) {
	parts := NewString("1,2,3", mdt7).Split(",")
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	for _, p := range parts {
		if !p.Labels().Contains(mdt7) {
			t.Errorf("part %q lost label", p.Raw())
		}
	}
}

func TestReplaceComposesLabels(t *testing.T) {
	s := NewString("hello NAME", mdt7).Replace("NAME", NewString("Smith", mdt8), 1)
	if s.Raw() != "hello Smith" {
		t.Errorf("Raw = %q", s.Raw())
	}
	if !s.Labels().Contains(mdt7) || !s.Labels().Contains(mdt8) {
		t.Errorf("Labels = %v", s.Labels())
	}
}

func TestJoin(t *testing.T) {
	joined := Join([]String{NewString("a", mdt7), NewString("b", mdt8)}, ", ")
	if joined.Raw() != "a, b" {
		t.Errorf("Raw = %q", joined.Raw())
	}
	if !joined.Labels().Contains(mdt7) || !joined.Labels().Contains(mdt8) {
		t.Errorf("Labels = %v", joined.Labels())
	}
	if !Join(nil, ",").IsEmpty() {
		t.Error("Join(nil) not empty")
	}
}

func TestSprintf(t *testing.T) {
	name := NewString("Smith", mdt7)
	age := NewNumber(61, mdt8)
	s := Sprintf("patient %s is %.0f", name, age)
	if s.Raw() != "patient Smith is 61" {
		t.Errorf("Raw = %q", s.Raw())
	}
	if !s.Labels().Contains(mdt7) || !s.Labels().Contains(mdt8) {
		t.Errorf("Labels = %v", s.Labels())
	}
	// Plain args stay plain.
	plain := Sprintf("%d-%s", 1, "x")
	if plain.Raw() != "1-x" || !plain.Labels().IsEmpty() {
		t.Errorf("plain = %q %v", plain.Raw(), plain.Labels())
	}
}

func TestStringerHidesLabelledContent(t *testing.T) {
	secret := NewString("confidential-record", mdt7)
	rendered := secret.String()
	if strings.Contains(rendered, "confidential-record") {
		t.Errorf("String() leaked content: %q", rendered)
	}
	if !strings.Contains(rendered, mdt7.String()) {
		t.Errorf("String() missing label: %q", rendered)
	}
	// Unlabelled strings render normally.
	if NewString("public").String() != "public" {
		t.Error("unlabelled String() mangled")
	}

	n := NewNumber(42, mdt7)
	if strings.Contains(n.String(), "42") {
		t.Errorf("Number String() leaked value: %q", n.String())
	}
	if NewNumber(42).String() != "42" {
		t.Errorf("unlabelled Number = %q", NewNumber(42).String())
	}
}

func TestNumberArithmetic(t *testing.T) {
	a := NewNumber(10, mdt7)
	b := NewNumber(4, mdt8)

	cases := []struct {
		name string
		got  Number
		want float64
	}{
		{"add", a.Add(b), 14},
		{"sub", a.Sub(b), 6},
		{"mul", a.Mul(b), 40},
		{"div", a.Div(b), 2.5},
		{"div0", a.Div(NewNumber(0)), 0},
	}
	for _, tc := range cases {
		if tc.got.Float() != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, tc.got.Float(), tc.want)
		}
		if !tc.got.Labels().Contains(mdt7) {
			t.Errorf("%s lost receiver label", tc.name)
		}
	}
	if !a.Add(b).Labels().Contains(mdt8) {
		t.Error("add lost operand label")
	}
	if a.Int() != 10 {
		t.Errorf("Int = %d", a.Int())
	}
}

func TestNumberFormatAndParse(t *testing.T) {
	n := NewNumber(3.14159, mdt7)
	s := n.Format(2)
	if s.Raw() != "3.14" || !s.Labels().Contains(mdt7) {
		t.Errorf("Format = %q %v", s.Raw(), s.Labels())
	}
	back, err := ParseNumber(NewString(" 61 ", mdt8))
	if err != nil {
		t.Fatalf("ParseNumber: %v", err)
	}
	if back.Float() != 61 || !back.Labels().Contains(mdt8) {
		t.Errorf("ParseNumber = %v %v", back.Float(), back.Labels())
	}
	if _, err := ParseNumber(NewString("not a number")); err == nil {
		t.Error("ParseNumber accepted garbage")
	}
}

func TestRegexpSubmatchesLabelled(t *testing.T) {
	re := regexp.MustCompile(`(?P<code>C\d+)\.(\d)`)
	subject := NewString("diagnosis C50.9 confirmed", mdt7)

	m, ok := MatchRegexp(re, subject)
	if !ok {
		t.Fatal("no match")
	}
	if m.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d", m.NumGroups())
	}
	if m.Group(0).Raw() != "C50.9" || m.Group(1).Raw() != "C50" || m.Group(2).Raw() != "9" {
		t.Errorf("groups = %q %q %q", m.Group(0).Raw(), m.Group(1).Raw(), m.Group(2).Raw())
	}
	for i := 0; i < 3; i++ {
		if !m.Group(i).Labels().Contains(mdt7) {
			t.Errorf("group %d lost label", i)
		}
	}
	if m.Named("code").Raw() != "C50" {
		t.Errorf("Named(code) = %q", m.Named("code").Raw())
	}
	if !m.Group(99).IsEmpty() || !m.Named("missing").IsEmpty() {
		t.Error("out-of-range groups not empty")
	}

	if _, ok := MatchRegexp(re, NewString("no codes here")); ok {
		t.Error("matched non-matching subject")
	}
}

func TestReplaceAllRegexp(t *testing.T) {
	re := regexp.MustCompile(`\d+`)
	s := ReplaceAllRegexp(re, NewString("id 123", mdt7), NewString("XXX", mdt8))
	if s.Raw() != "id XXX" {
		t.Errorf("Raw = %q", s.Raw())
	}
	if !s.Labels().Contains(mdt7) || !s.Labels().Contains(mdt8) {
		t.Errorf("Labels = %v", s.Labels())
	}
	if !MatchString(regexp.MustCompile("id"), s) {
		t.Error("MatchString false negative")
	}
}

func TestWithLabels(t *testing.T) {
	s := NewString("x").WithLabels(mdt7)
	if !s.Labels().Contains(mdt7) {
		t.Error("WithLabels did not add")
	}
}

func TestEqualFold(t *testing.T) {
	if !NewString("mdt1").EqualFold(NewString("MDT1")) {
		t.Error("EqualFold false negative")
	}
	if NewString("mdt1").Equal(NewString("MDT1")) {
		t.Error("Equal is case-insensitive")
	}
}
