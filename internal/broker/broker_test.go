package broker

import (
	"errors"
	"sync"
	"testing"

	"safeweb/internal/event"
	"safeweb/internal/label"
)

// testPolicy builds the policy used across broker tests: unit "cleared"
// has clearance for MDT 7 labels, "uncleared" has none, "endorser" can add
// the MDT integrity label.
func testPolicy() *label.Policy {
	p := label.NewPolicy()
	p.Grant("cleared", label.Clearance, label.MustParsePattern("label:conf:ecric.org.uk/mdt/7"))
	p.Grant("wild", label.Clearance, label.MustParsePattern("label:conf:ecric.org.uk/*"))
	p.Grant("endorser", label.Endorse, label.MustParsePattern("label:int:ecric.org.uk/mdt"))
	return p
}

// collect returns a Handler appending to a slice under a mutex plus a
// getter.
func collect() (Handler, func() []*event.Event) {
	var mu sync.Mutex
	var got []*event.Event
	h := func(ev *event.Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}
	return h, func() []*event.Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]*event.Event(nil), got...)
	}
}

func TestTopicMatches(t *testing.T) {
	tests := []struct {
		pattern, topic string
		want           bool
	}{
		{"/patient_report", "/patient_report", true},
		{"/patient_report", "/patient_reports", false},
		{"/mdt/*", "/mdt/7", true},
		{"/mdt/*", "/mdt/7/records", true},
		{"/mdt/*", "/mdt", false},
		{"*", "/anything", true},
	}
	for _, tt := range tests {
		if got := TopicMatches(tt.pattern, tt.topic); got != tt.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", tt.pattern, tt.topic, got, tt.want)
		}
	}
}

func TestPublishSubscribeRoundTrip(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()

	h, got := collect()
	if _, err := b.Subscribe("cleared", "/patient_report", "", h); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	ev := event.New("/patient_report", map[string]string{"patient_id": "1"},
		label.Conf("ecric.org.uk/mdt/7"))
	if err := b.Publish("producer", ev); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if evs := got(); len(evs) != 1 || evs[0].Attr("patient_id") != "1" {
		t.Fatalf("delivered = %v", evs)
	}
}

func TestLabelFilteringBlocksUnclearedSubscriber(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()

	clearedH, clearedGot := collect()
	unclearedH, unclearedGot := collect()
	mustSubscribe(t, b, "cleared", "/t", "", clearedH)
	mustSubscribe(t, b, "uncleared", "/t", "", unclearedH)

	// Labelled event: only the cleared unit may see it.
	if err := b.Publish("producer", event.New("/t", nil, label.Conf("ecric.org.uk/mdt/7"))); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// Unlabelled event: everyone sees it.
	if err := b.Publish("producer", event.New("/t", nil)); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	if n := len(clearedGot()); n != 2 {
		t.Errorf("cleared unit got %d events, want 2", n)
	}
	if n := len(unclearedGot()); n != 1 {
		t.Errorf("uncleared unit got %d events, want 1", n)
	}
	stats := b.Stats()
	if stats.FilteredByLabel != 1 {
		t.Errorf("FilteredByLabel = %d, want 1", stats.FilteredByLabel)
	}
}

func TestMultiLabelRequiresFullClearance(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()

	// "cleared" has mdt/7 only, "wild" has all ecric labels. An event
	// carrying labels of two MDTs (a mixed aggregate, §5.2 "design
	// errors") must reach only "wild".
	clearedH, clearedGot := collect()
	wildH, wildGot := collect()
	mustSubscribe(t, b, "cleared", "/t", "", clearedH)
	mustSubscribe(t, b, "wild", "/t", "", wildH)

	mixed := event.New("/t", nil,
		label.Conf("ecric.org.uk/mdt/7"), label.Conf("ecric.org.uk/mdt/8"))
	if err := b.Publish("producer", mixed); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(clearedGot()) != 0 {
		t.Error("partially cleared subscriber received mixed-label event")
	}
	if len(wildGot()) != 1 {
		t.Error("fully cleared subscriber missed mixed-label event")
	}
}

func TestSelectorFiltering(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()

	h, got := collect()
	mustSubscribe(t, b, "cleared", "/patient_report", "type = 'cancer'", h)

	_ = b.Publish("p", event.New("/patient_report", map[string]string{"type": "cancer"}))
	_ = b.Publish("p", event.New("/patient_report", map[string]string{"type": "screening"}))

	if evs := got(); len(evs) != 1 || evs[0].Attr("type") != "cancer" {
		t.Errorf("selector filtering wrong: %v", evs)
	}
	if b.Stats().FilteredBySelector != 1 {
		t.Errorf("FilteredBySelector = %d", b.Stats().FilteredBySelector)
	}
}

func TestIntegrityEndorsementRequired(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()

	ev := event.New("/t", nil, label.Int("ecric.org.uk/mdt"))
	err := b.Publish("producer", ev)
	var fe *label.FlowError
	if !errors.As(err, &fe) || fe.Op != "endorse" {
		t.Fatalf("unendorsed integrity publish: err = %v", err)
	}
	if err := b.Publish("endorser", ev); err != nil {
		t.Errorf("endorser rejected: %v", err)
	}
	if b.Stats().RejectedPublish != 1 {
		t.Errorf("RejectedPublish = %d", b.Stats().RejectedPublish)
	}
}

func TestSubscriptionIsolationCloning(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()

	var first *event.Event
	mustSubscribe(t, b, "cleared", "/t", "", func(ev *event.Event) {
		// A buggy unit mutates its input.
		ev.Attrs["k"] = "mutated"
		first = ev
	})
	h2, got2 := collect()
	mustSubscribe(t, b, "wild", "/t", "", h2)

	src := event.New("/t", map[string]string{"k": "orig"})
	if err := b.Publish("p", src); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if src.Attrs["k"] != "orig" {
		t.Error("publisher's event mutated by subscriber")
	}
	evs := got2()
	if len(evs) != 1 || evs[0].Attr("k") != "orig" {
		t.Errorf("second subscriber saw mutation: %v", evs)
	}
	if first == nil || first.Attr("k") != "mutated" {
		t.Error("sanity: first subscriber's clone missing")
	}
}

func TestUnsubscribe(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()

	h, got := collect()
	sub, err := b.Subscribe("cleared", "/t", "", h)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	_ = b.Publish("p", event.New("/t", nil))
	b.Unsubscribe(sub)
	b.Unsubscribe(sub) // idempotent
	b.Unsubscribe(nil) // nil-safe
	_ = b.Publish("p", event.New("/t", nil))
	if n := len(got()); n != 1 {
		t.Errorf("events after unsubscribe: %d, want 1", n)
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()
	if _, err := b.Subscribe("u", "/t", "", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := b.Subscribe("u", "", "", func(*event.Event) {}); err == nil {
		t.Error("empty topic accepted")
	}
	if _, err := b.Subscribe("u", "/t", "a = ", func(*event.Event) {}); err == nil {
		t.Error("bad selector accepted")
	}
}

func TestPublishValidation(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()
	if err := b.Publish("p", &event.Event{}); err == nil {
		t.Error("invalid event accepted")
	}
}

func TestClosedBroker(t *testing.T) {
	b := New(testPolicy())
	b.Close()
	if _, err := b.Subscribe("u", "/t", "", func(*event.Event) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after close: %v", err)
	}
	if err := b.Publish("p", event.New("/t", nil)); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close: %v", err)
	}
}

func TestEndpointBus(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()

	ep := b.Endpoint("cleared")
	if ep.Principal() != "cleared" {
		t.Errorf("Principal = %q", ep.Principal())
	}
	h, got := collect()
	id, err := ep.Subscribe("/t", "", h)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := b.Endpoint("p").Publish(event.New("/t", nil)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(got()) != 1 {
		t.Fatal("endpoint subscription missed event")
	}
	if err := ep.Unsubscribe(id); err != nil {
		t.Errorf("Unsubscribe: %v", err)
	}
	if err := ep.Unsubscribe("bogus"); err == nil {
		t.Error("Unsubscribe(bogus) succeeded")
	}
	_ = b.Endpoint("p").Publish(event.New("/t", nil))
	if len(got()) != 1 {
		t.Error("event delivered after endpoint unsubscribe")
	}

	// Close cancels remaining subscriptions.
	h2, got2 := collect()
	if _, err := ep.Subscribe("/t", "", h2); err != nil {
		t.Fatalf("re-Subscribe: %v", err)
	}
	if err := ep.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	_ = b.Endpoint("p").Publish(event.New("/t", nil))
	if len(got2()) != 0 {
		t.Error("event delivered after endpoint close")
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := New(testPolicy())
	defer b.Close()

	h, got := collect()
	mustSubscribe(t, b, "wild", "/t", "", h)

	const (
		publishers = 8
		perPub     = 100
	)
	var wg sync.WaitGroup
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perPub; j++ {
				_ = b.Publish("p", event.New("/t", map[string]string{"n": "1"}))
			}
		}()
	}
	wg.Wait()
	if n := len(got()); n != publishers*perPub {
		t.Errorf("delivered %d, want %d", n, publishers*perPub)
	}
}

func mustSubscribe(t *testing.T, b *Broker, principal, topic, sel string, h Handler) *Subscription {
	t.Helper()
	sub, err := b.Subscribe(principal, topic, sel, h)
	if err != nil {
		t.Fatalf("Subscribe(%s, %s): %v", principal, topic, err)
	}
	return sub
}
