package broker

import (
	"crypto/tls"
	"errors"
	"fmt"
	"log"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"safeweb/internal/event"
	"safeweb/internal/journal"
	"safeweb/internal/stomp"
)

// OverflowPolicy selects what the network front does when a matched
// delivery meets a session whose write queue is full — the slow-consumer
// decision point. The policy is fixed at server construction, so the
// per-delivery check is a plain field read on the fan-out fast path.
type OverflowPolicy int

const (
	// OverflowBlock blocks the publishing goroutine until the session's
	// writer drains (the seed behaviour): lossless back-pressure, but a
	// peer that stopped reading head-of-line-blocks every delivery routed
	// through that goroutine. Pair it with ServerConfig.WriteTimeout so
	// the stall is bounded by the peer failing its write deadline; leave
	// it unbounded only for trusted in-process tests.
	OverflowBlock OverflowPolicy = iota
	// OverflowDropNewest drops the incoming delivery, counts it in
	// Stats().OverflowDrops and reports it through OnDeliveryError with
	// ErrSlowConsumer. Oldest queued deliveries survive — the backlog
	// keeps its history and loses the present.
	OverflowDropNewest
	// OverflowDropOldest evicts the oldest queued deliveries to make room
	// for the incoming one; each eviction is counted and reported like a
	// drop. The backlog tracks the present and loses history — the usual
	// choice for live feeds. Control frames are never evicted.
	OverflowDropOldest
	// OverflowDisconnect drops the incoming delivery like
	// OverflowDropNewest and evicts the whole session once
	// OverflowEvictAfter consecutive deliveries have overflowed: a
	// consumer that persistently cannot keep up is disconnected rather
	// than served an ever-gappier stream.
	OverflowDisconnect
)

// String returns the flag-friendly name of the policy.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowBlock:
		return "block"
	case OverflowDropNewest:
		return "drop-newest"
	case OverflowDropOldest:
		return "drop-oldest"
	case OverflowDisconnect:
		return "disconnect"
	}
	return "overflow(" + strconv.Itoa(int(p)) + ")"
}

// ParseOverflowPolicy parses the flag-friendly policy names accepted by
// the deployment binaries: block, drop-newest, drop-oldest, disconnect.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "", "block":
		return OverflowBlock, nil
	case "drop-newest":
		return OverflowDropNewest, nil
	case "drop-oldest":
		return OverflowDropOldest, nil
	case "disconnect":
		return OverflowDisconnect, nil
	}
	return 0, fmt.Errorf("broker: unknown overflow policy %q (want block, drop-newest, drop-oldest or disconnect)", s)
}

// ErrSlowConsumer marks a delivery suppressed by the overflow policy: the
// session's write queue was full and the policy chose to drop rather than
// block. It reaches OnDeliveryError so no suppressed flow is silent.
var ErrSlowConsumer = errors.New("broker: delivery dropped: slow consumer write queue overflow")

// defaultOverflowEvictAfter is the OverflowDisconnect eviction threshold
// when the configuration leaves it zero.
const defaultOverflowEvictAfter = 8

// SlowConsumerEvent describes a session the overflow policy has acted on,
// reported through ServerConfig.OnSlowConsumer: once when a run of
// consecutive overflows begins (Evicted false) and once if the session is
// evicted (Evicted true).
type SlowConsumerEvent struct {
	// SessionID and Login identify the slow session.
	SessionID uint64
	Login     string
	// Subscription is the client-chosen subscription id of the delivery
	// that tripped the policy.
	Subscription string
	// Policy is the server's configured overflow policy.
	Policy OverflowPolicy
	// Evicted reports whether the session is being disconnected.
	Evicted bool
	// OverflowDrops is the session's total suppressed-delivery count at
	// the time of the event.
	OverflowDrops uint64
}

// ServerConfig configures the STOMP network front of a broker.
type ServerConfig struct {
	// Authenticate validates CONNECT credentials; nil accepts everyone
	// (deployments inside the Intranet zone rely on network partitioning,
	// paper Fig. 4; DMZ-facing brokers must set this).
	Authenticate stomp.Authenticator
	// TLS enables transport security ("extended with SSL support at the
	// transport layer", §4.2).
	TLS *tls.Config
	// Logf logs; nil uses log.Printf.
	Logf func(format string, args ...any)
	// Overflow is the per-session delivery overflow policy; the zero
	// value is OverflowBlock, the seed behaviour.
	Overflow OverflowPolicy
	// OverflowEvictAfter is the number of consecutive overflows after
	// which OverflowDisconnect evicts a session; zero means 8. Ignored by
	// the other policies.
	OverflowEvictAfter int
	// WriteQueueLen is each session's delivery queue length in frames;
	// zero selects the transport default (128). Negative values are
	// rejected at construction.
	WriteQueueLen int
	// WriteTimeout bounds every write and flush to a session: a peer that
	// stops reading fails its connection with a sticky deadline error
	// instead of wedging the session's writer (and, under OverflowBlock,
	// the publishing goroutine) forever. Zero disables the deadline.
	WriteTimeout time.Duration
	// OnDeliveryError observes deliveries the network front had to drop —
	// an event that matched a subscription but could not be marshalled
	// for the wire, could not be written to a closed or write-failed
	// session, or was suppressed by the overflow policy (err is then
	// ErrSlowConsumer; ev is nil when a queued delivery was evicted by
	// OverflowDropOldest after its publish returned). A mediating broker
	// must leave an audit trail for any suppressed flow, so nil falls
	// back to Logf; every drop is also counted in Stats(). The hook runs
	// on the delivering (publish) goroutine and must not block.
	OnDeliveryError func(sessionID uint64, subscription string, ev *event.Event, err error)
	// OnSlowConsumer observes sessions the overflow policy acts on: the
	// start of each consecutive-overflow run and every eviction. Runs on
	// the delivering (publish) goroutine and must not block.
	OnSlowConsumer func(ev SlowConsumerEvent)
	// CreditPending is the per-subscription pending ring capacity for
	// subscriptions that advertise a credit window: how many matched
	// deliveries may park broker-side once the window is exhausted before
	// the overflow policy takes over. Zero selects the default (32);
	// negative values are rejected at construction.
	CreditPending int
	// OnCreditStall observes credited subscriptions whose delivery window
	// ran dry: raised once per stall run, when the first delivery parks.
	// Runs on the delivering (publish) goroutine and must not block.
	OnCreditStall func(ev CreditStallEvent)
	// Durable lists topic patterns (same grammar as SUBSCRIBE
	// destinations: exact, trailing "/*", or "*") whose publishes are
	// appended to per-topic journals under JournalDir; consumers replay
	// and resume them with SUBSCRIBE offset/group headers. Requires
	// JournalDir.
	Durable []string
	// JournalDir is the root directory for durable-topic journals; one
	// subdirectory per topic. Required when Durable is non-empty.
	JournalDir string
	// JournalSegmentSize overrides the journal segment roll threshold in
	// bytes; zero selects the journal default (64 MiB).
	JournalSegmentSize int64
	// JournalSync is the journal fsync policy; the zero value is
	// journal.SyncNever. journal.SyncBatch coalesces fsyncs at the
	// journal's byte/interval thresholds and only publishes a record for
	// replay once its batch is on stable storage.
	JournalSync journal.SyncPolicy
	// JournalRetentionAge, when positive, expires journal segments whose
	// newest record is older — acked or not; retention is the storage
	// bound. Zero keeps segments until their acked prefix is compacted.
	JournalRetentionAge time.Duration
	// JournalRetentionBytes, when positive, bounds each durable topic's
	// journal directory: oldest segments are deleted first until the
	// total fits. Enforced on every segment roll and on CompactJournals.
	JournalRetentionBytes int64
	// OnRetention observes every journal compaction pass that deleted
	// segments — by ack coverage or by the retention windows. Runs with
	// journal locks held and must not block or call back into the server.
	OnRetention func(ev RetentionEvent)
	// OnJournalError observes durable-journal append failures: a publish
	// on a durable topic that could not be journaled. A durable topic
	// silently ceasing to be durable would defeat the audit trail, so nil
	// falls back to Logf; every failure is also counted in Stats. Runs on
	// the publishing goroutine and must not block.
	OnJournalError func(topic string, err error)
}

// RetentionEvent describes one journal compaction pass that deleted
// segments from a durable topic's journal.
type RetentionEvent struct {
	Topic string
	// AckedSegments counts segments deleted because every consumer
	// group's cumulative ack covered them; RetentionSegments counts
	// segments deleted by the time/size retention windows.
	AckedSegments     int
	RetentionSegments int
	// FirstOffset is the journal's new lowest retained offset.
	FirstOffset int64
}

// ServerStats counts network-front activity not visible in the core
// broker's Stats.
type ServerStats struct {
	// DroppedDeliveries counts matched deliveries dropped because the
	// event could not be marshalled into a MESSAGE frame or written to
	// the session (closed or write-failed connection).
	DroppedDeliveries uint64
	// OverflowDrops counts matched deliveries suppressed by the overflow
	// policy: drop-newest/disconnect drops and drop-oldest evictions.
	OverflowDrops uint64
	// SlowConsumerEvictions counts sessions disconnected by
	// OverflowDisconnect.
	SlowConsumerEvictions uint64
	// QueueHighWater is the deepest per-session delivery-queue occupancy
	// observed on any session, live or since departed.
	QueueHighWater int
	// CreditStalls counts stall runs on credited subscriptions: each time
	// a subscription's delivery window ran dry and a matched delivery had
	// to park in its pending ring.
	CreditStalls uint64
	// UnhandledFrames counts client frames the server rejected with an
	// ERROR because it does not implement the command (NACK, transactions,
	// unknown commands) or the frame was malformed for the one use the
	// server has for it (ACK without a valid credit grant).
	UnhandledFrames uint64
	// DurableAppends counts publishes journaled to durable topics;
	// JournalAppendErrors counts appends that failed (each is also routed
	// through OnJournalError or logged — a durable topic silently losing
	// history would defeat the audit trail).
	DurableAppends      uint64
	JournalAppendErrors uint64
	// ReplayDeliveries counts MESSAGE frames served from journals by
	// durable subscriptions; ReplayFiltered counts journal records
	// withheld from a replaying consumer by the clearance check at read
	// time (or by an unreadable persisted label header, which fails
	// closed).
	ReplayDeliveries uint64
	ReplayFiltered   uint64
	// CompactedSegments counts journal segments deleted because every
	// consumer group's ack covered them; RetentionDeletes counts segments
	// the time/size retention windows deleted regardless of acks.
	CompactedSegments uint64
	RetentionDeletes  uint64
	// ClampedResumes counts durable subscriptions (or running replays)
	// whose position fell below a journal's FirstOffset and was clamped
	// forward to it — the records in between were compacted away, and
	// that gap is never silent.
	ClampedResumes uint64
}

// SessionStats is a point-in-time snapshot of one live session's delivery
// accounting, for dashboards and soak-test assertions.
type SessionStats struct {
	ID            uint64
	Login         string
	Subscriptions int
	// QueueDepth, QueueCap and QueueHighWater describe the session's
	// delivery queue: current occupancy, capacity, and the deepest
	// occupancy observed.
	QueueDepth     int
	QueueCap       int
	QueueHighWater int
	// OverflowDrops counts this session's deliveries suppressed by the
	// overflow policy.
	OverflowDrops uint64
	// CreditStalls counts this session's credited-subscription stall runs;
	// CreditParked is the current total of deliveries parked in this
	// session's pending rings awaiting a credit grant.
	CreditStalls uint64
	CreditParked int
}

// Server exposes a Broker over STOMP. Logins name the policy principal of
// the connection; SUBSCRIBE and SEND frames are translated to broker
// operations with label semantics preserved.
type Server struct {
	broker        *Broker
	stomp         *stomp.Server
	cfg           ServerConfig
	evictAfter    uint32
	creditPending int

	// journals backs the durable topics; nil when none are configured
	// and no JournalDir was given. tapRemoves undoes the publish taps at
	// Close.
	journals   *journalStore
	tapRemoves []func()

	droppedDeliveries   atomic.Uint64
	overflowDrops       atomic.Uint64
	slowEvictions       atomic.Uint64
	creditStalls        atomic.Uint64
	unhandledFrames     atomic.Uint64
	durableAppends      atomic.Uint64
	journalAppendErrors atomic.Uint64
	replayDeliveries    atomic.Uint64
	replayFiltered      atomic.Uint64
	compactedSegments   atomic.Uint64
	retentionDeletes    atomic.Uint64
	clampedResumes      atomic.Uint64
	// departedHighWater folds the queue high-water marks of closed
	// sessions so Stats() keeps the all-time maximum.
	departedHighWater atomic.Int64

	mu       sync.Mutex
	sessions map[uint64]*serverSession
}

type serverSession struct {
	sess *stomp.Session
	// subs maps the client-chosen subscription id to the broker
	// subscription and its optional credit window.
	subs map[string]*wireSub

	// idPrefix is the session's message-id prefix ("m-<session>-");
	// msgSeq numbers messages within it without touching the server lock.
	idPrefix string
	msgSeq   atomic.Uint64

	// overflowDrops counts deliveries to this session suppressed by the
	// overflow policy; consecOverflows tracks the current run of
	// overflowing deliveries for OverflowDisconnect; evicted latches the
	// eviction so it fires exactly once; creditStalls counts stall runs on
	// this session's credited subscriptions.
	overflowDrops   atomic.Uint64
	consecOverflows atomic.Uint32
	evicted         atomic.Bool
	creditStalls    atomic.Uint64

	// decCache memoises label-header parses and the destination string
	// for this session's inbound SENDs; OnFrameView runs on the session
	// read goroutine only.
	decCache event.DecodeCache
}

// NewServer starts a STOMP front for the broker on addr.
func NewServer(addr string, b *Broker, cfg ServerConfig) (*Server, error) {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	switch cfg.Overflow {
	case OverflowBlock, OverflowDropNewest, OverflowDropOldest, OverflowDisconnect:
	default:
		return nil, fmt.Errorf("broker: unknown overflow policy %d", cfg.Overflow)
	}
	if cfg.OverflowEvictAfter < 0 {
		return nil, fmt.Errorf("broker: ServerConfig.OverflowEvictAfter must not be negative, got %d", cfg.OverflowEvictAfter)
	}
	evictAfter := cfg.OverflowEvictAfter
	if evictAfter == 0 {
		evictAfter = defaultOverflowEvictAfter
	}
	if cfg.CreditPending < 0 {
		return nil, fmt.Errorf("broker: ServerConfig.CreditPending must not be negative, got %d", cfg.CreditPending)
	}
	creditPending := cfg.CreditPending
	if creditPending == 0 {
		creditPending = defaultCreditPending
	}
	if len(cfg.Durable) > 0 && cfg.JournalDir == "" {
		return nil, errors.New("broker: ServerConfig.Durable requires JournalDir")
	}
	if cfg.JournalSegmentSize < 0 {
		return nil, fmt.Errorf("broker: ServerConfig.JournalSegmentSize must not be negative, got %d", cfg.JournalSegmentSize)
	}
	if cfg.JournalRetentionAge < 0 {
		return nil, fmt.Errorf("broker: ServerConfig.JournalRetentionAge must not be negative, got %v", cfg.JournalRetentionAge)
	}
	if cfg.JournalRetentionBytes < 0 {
		return nil, fmt.Errorf("broker: ServerConfig.JournalRetentionBytes must not be negative, got %d", cfg.JournalRetentionBytes)
	}
	srv := &Server{
		broker:        b,
		cfg:           cfg,
		evictAfter:    uint32(evictAfter),
		creditPending: creditPending,
		sessions:      make(map[uint64]*serverSession),
	}
	if cfg.JournalDir != "" {
		srv.journals = newJournalStore(cfg.JournalDir, journal.Options{
			SegmentSize:    cfg.JournalSegmentSize,
			Sync:           cfg.JournalSync,
			RetentionAge:   cfg.JournalRetentionAge,
			RetentionBytes: cfg.JournalRetentionBytes,
		})
		srv.journals.onCompact = srv.journalCompacted
		// Recover every existing journal now: torn tails are truncated and
		// ack tables rebuilt before the first publish or subscribe, and a
		// corrupt log fails construction instead of a consumer.
		if err := srv.journals.rescan(); err != nil {
			return nil, err
		}
		for _, pat := range cfg.Durable {
			rm, err := b.SubscribeTap(pat, srv.journalAppend)
			if err != nil {
				for _, r := range srv.tapRemoves {
					r()
				}
				return nil, fmt.Errorf("broker: durable pattern %q: %w", pat, err)
			}
			srv.tapRemoves = append(srv.tapRemoves, rm)
		}
	}
	scfg := stomp.ServerConfig{
		Handler:       srv,
		Authenticate:  cfg.Authenticate,
		TLS:           cfg.TLS,
		Logf:          cfg.Logf,
		WriteQueueLen: cfg.WriteQueueLen,
		WriteTimeout:  cfg.WriteTimeout,
	}
	if cfg.Overflow == OverflowDropOldest {
		scfg.OnQueueEvict = srv.queueEvict
	}
	st, err := stomp.NewServer(addr, scfg)
	if err != nil {
		for _, rm := range srv.tapRemoves {
			rm()
		}
		if srv.journals != nil {
			_ = srv.journals.closeAll()
		}
		return nil, err
	}
	srv.stomp = st
	return srv, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.stomp.Addr() }

// Close shuts down the network front (the broker itself stays open): the
// publish taps are removed first so no append can race the journal
// teardown, then the stomp server drains its sessions (whose disconnect
// path stops every replay feed), and only then are the journals closed.
func (s *Server) Close() error {
	for _, rm := range s.tapRemoves {
		rm()
	}
	err := s.stomp.Close()
	if s.journals != nil {
		if cerr := s.journals.closeAll(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats returns a snapshot of network-front counters.
func (s *Server) Stats() ServerStats {
	// The departed fold must be read inside the same critical section that
	// walks the live set: OnDisconnect removes a session and folds its
	// mark under the same lock, so ordering the load before it could miss
	// a session on both sides of the handoff.
	s.mu.Lock()
	hw := int(s.departedHighWater.Load())
	for _, ss := range s.sessions {
		if w := ss.sess.QueueHighWater(); w > hw {
			hw = w
		}
	}
	s.mu.Unlock()
	return ServerStats{
		DroppedDeliveries:     s.droppedDeliveries.Load(),
		OverflowDrops:         s.overflowDrops.Load(),
		SlowConsumerEvictions: s.slowEvictions.Load(),
		QueueHighWater:        hw,
		CreditStalls:          s.creditStalls.Load(),
		UnhandledFrames:       s.unhandledFrames.Load(),
		DurableAppends:        s.durableAppends.Load(),
		JournalAppendErrors:   s.journalAppendErrors.Load(),
		ReplayDeliveries:      s.replayDeliveries.Load(),
		ReplayFiltered:        s.replayFiltered.Load(),
		CompactedSegments:     s.compactedSegments.Load(),
		RetentionDeletes:      s.retentionDeletes.Load(),
		ClampedResumes:        s.clampedResumes.Load(),
	}
}

// SessionStats returns per-session delivery accounting for every live
// session, ordered by session id.
func (s *Server) SessionStats() []SessionStats {
	s.mu.Lock()
	out := make([]SessionStats, 0, len(s.sessions))
	for _, ss := range s.sessions {
		parked := 0
		for _, ws := range ss.subs {
			if ws.credit != nil {
				parked += int(ws.credit.parked.Load())
			}
		}
		out = append(out, SessionStats{
			ID:             ss.sess.ID(),
			Login:          ss.sess.Login(),
			Subscriptions:  len(ss.subs),
			QueueDepth:     ss.sess.QueueDepth(),
			QueueCap:       ss.sess.QueueCap(),
			QueueHighWater: ss.sess.QueueHighWater(),
			OverflowDrops:  ss.overflowDrops.Load(),
			CreditStalls:   ss.creditStalls.Load(),
			CreditParked:   parked,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OnConnect implements stomp.SessionHandler.
func (s *Server) OnConnect(sess *stomp.Session, login string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[sess.ID()] = &serverSession{
		sess:     sess,
		subs:     make(map[string]*wireSub),
		idPrefix: "m-" + strconv.FormatUint(sess.ID(), 10) + "-",
	}
	return nil
}

// OnDisconnect implements stomp.SessionHandler.
func (s *Server) OnDisconnect(sess *stomp.Session) {
	// Fold the departing session's high-water mark into the server-wide
	// maximum inside the same critical section that removes it from the
	// live set, so a concurrent Stats() snapshot can never observe the
	// session as neither live nor folded and report a dip. The mark is
	// read before the lock (it is final once the session's writer has
	// stopped) and folded with a CAS-max, so a repeated fold is harmless.
	hw := int64(sess.QueueHighWater())
	s.mu.Lock()
	ss := s.sessions[sess.ID()]
	delete(s.sessions, sess.ID())
	for {
		cur := s.departedHighWater.Load()
		if hw <= cur || s.departedHighWater.CompareAndSwap(cur, hw) {
			break
		}
	}
	s.mu.Unlock()
	if ss == nil {
		return
	}
	for id, ws := range ss.subs {
		s.broker.Unsubscribe(ws.sub)
		if ws.replay != nil {
			ws.replay.stop()
		}
		s.closeCredit(ss, id, ws)
	}
}

// OnFrame implements stomp.SessionHandler. The stomp server prefers the
// OnFrameView fast path and only reaches this adapter through callers that
// hold a materialised frame.
func (s *Server) OnFrame(sess *stomp.Session, f *stomp.Frame) error {
	return s.OnFrameView(sess, stomp.ViewFromFrame(f))
}

// OnFrameView implements stomp.FrameViewHandler: the map-free inbound
// path. SEND frames — the hot path — go straight from the decoder's
// header view to an event in one pass (event.UnmarshalView); control
// frames pull the few headers they need as owned strings.
func (s *Server) OnFrameView(sess *stomp.Session, v *stomp.FrameView) error {
	s.mu.Lock()
	ss := s.sessions[sess.ID()]
	s.mu.Unlock()
	if ss == nil {
		return fmt.Errorf("broker: no session state for %d", sess.ID())
	}

	switch v.Command {
	case stomp.CmdSend:
		ev, err := event.UnmarshalView(&v.Headers, v.Body, &ss.decCache)
		if err != nil {
			return err
		}
		return s.broker.Publish(sess.Login(), ev)

	case stomp.CmdSubscribe:
		clientID := v.Headers.Header(stomp.HdrID)
		if clientID == "" {
			return fmt.Errorf("broker: SUBSCRIBE without id header")
		}
		topic := v.Headers.Header(stomp.HdrDestination)
		sel := v.Headers.Header(stomp.HdrSelector)
		// An offset or group header makes this a durable subscription: it
		// is fed from the topic's journal tail instead of the live fan-out
		// (one delivery path, so resume cannot duplicate), with clearance
		// re-enforced per record at read time.
		if offStr, group := v.Headers.Header(stomp.HdrOffset), v.Headers.Header(stomp.HdrGroup); offStr != "" || group != "" {
			return s.subscribeDurable(ss, clientID, topic, sel, v.Headers.Header(stomp.HdrCredit), offStr, group)
		}
		// An optional credit header arms a delivery window for the
		// subscription; without it the wire behaviour is unchanged —
		// infinite credit, no per-subscription state.
		ws := &wireSub{}
		if cr := v.Headers.Header(stomp.HdrCredit); cr != "" {
			window, err := stomp.ParseCredit(cr)
			if err != nil {
				return err
			}
			ws.credit = newCreditState(window, s.creditPending)
		}
		// A wire subscription: delivery only serialises the event, so the
		// broker hands over the frozen original — every session and shard
		// then shares one event pointer and one wire image per publish.
		// The delivery closure reads only ws.credit, set above, so the
		// ws.sub assignment after SubscribeWire returns does not race with
		// deliveries that fire during registration.
		sub, err := s.broker.SubscribeWire(sess.Login(), topic, sel, func(ev *event.Event) {
			s.deliver(ss, ws, clientID, ev)
		})
		if err != nil {
			return err
		}
		ws.sub = sub
		s.mu.Lock()
		ss.subs[clientID] = ws
		s.mu.Unlock()
		return nil

	case stomp.CmdUnsubscribe:
		clientID := v.Headers.Header(stomp.HdrID)
		s.mu.Lock()
		ws := ss.subs[clientID]
		delete(ss.subs, clientID)
		s.mu.Unlock()
		if ws == nil {
			return nil
		}
		s.broker.Unsubscribe(ws.sub)
		if ws.replay != nil {
			ws.replay.stop()
		}
		s.closeCredit(ss, clientID, ws)
		return nil

	case stomp.CmdAck:
		// The server runs auto-ack with no per-message acknowledgement;
		// ACK carries a credit replenishment grant, a durable offset ack,
		// or both on one frame (the piggyback a durable credited consumer
		// uses). Whatever is present is applied; a frame carrying neither
		// is unhandled.
		cr := v.Headers.Header(stomp.HdrCredit)
		offStr := v.Headers.Header(stomp.HdrOffset)
		if cr == "" && offStr == "" {
			return s.unhandledFrame("ACK without credit or offset header (the server is auto-ack; ACK only carries credit grants and durable offset acks)")
		}
		// Parse both before applying either: a frame half-malformed must
		// reject as a unit, never grant-and-error.
		var grant, offset int64
		if cr != "" {
			var err error
			if grant, err = stomp.ParseCredit(cr); err != nil {
				s.unhandledFrames.Add(1)
				return err
			}
		}
		if offStr != "" {
			var err error
			if offset, err = stomp.ParseOffsetAck(offStr); err != nil {
				s.unhandledFrames.Add(1)
				return err
			}
		}
		subID := v.Headers.Header(stomp.HdrSubscription)
		if subID == "" {
			return s.unhandledFrame("ACK without subscription header")
		}
		s.mu.Lock()
		ws := ss.subs[subID]
		s.mu.Unlock()
		if ws == nil {
			// An ack racing UNSUBSCRIBE or teardown has nothing left to
			// apply to; that is the normal end of a stream, not a protocol
			// error.
			return nil
		}
		if cr != "" {
			if ws.credit == nil {
				return s.unhandledFrame("ACK credit grant for subscription " + subID + ", which subscribed without a credit window")
			}
			s.creditGrant(ss, subID, ws, grant)
		}
		if offStr != "" {
			if ws.replay == nil {
				return s.unhandledFrame("ACK offset for subscription " + subID + ", which is not durable")
			}
			if err := s.replayAck(ws, offset); err != nil {
				return err
			}
		}
		return nil

	case stomp.CmdNack, stomp.CmdBegin, stomp.CmdCommit, stomp.CmdAbort:
		return s.unhandledFrame("command " + v.Command + " is not supported (auto-ack, no transactions)")

	default:
		return s.unhandledFrame("unknown command " + v.Command)
	}
}

// unhandledFrame counts and rejects a client frame the server has no
// handling for; the stomp layer answers with an ERROR frame carrying the
// message, so the rejection names the command instead of vanishing.
func (s *Server) unhandledFrame(msg string) error {
	s.unhandledFrames.Add(1)
	return errors.New("broker: unhandled frame: " + msg)
}

// deliver sends a matched event to a session as a MESSAGE frame. The
// event's wire image — canonical header block plus body — is encoded once
// per published event (Event.WireImage) and shared across every matching
// subscription on every session and shard; only the per-delivery
// subscription and message-id routing headers are encoded per send, and
// they exist only on the wire. The frames feed the session's coalescing
// writer, so a fan-out burst costs one flush.
//
// This runs on the publishing goroutine. A credited subscription first
// claims credit on a lock-free fast path — one atomic load and one CAS —
// and deliveries that cannot claim (window exhausted, or earlier
// deliveries already parked) divert to the pending ring. Uncredited
// subscriptions (ws nil or no credit header) skip the gate entirely.
//
//safeweb:hotpath
func (s *Server) deliver(ss *serverSession, ws *wireSub, clientSubID string, ev *event.Event) {
	if ws != nil && ws.credit != nil && !ws.credit.tryClaim() {
		//lint:ignore hotpathlock parking is the declared slow path once the credit window is exhausted
		s.parkDelivery(ss, ws, clientSubID, ev)
		return
	}
	s.sendDelivery(ss, clientSubID, ev)
}

// sendDelivery puts one matched delivery on the session's wire; the
// overflow policy decides here whether a session whose delivery queue is
// full may block the publisher (OverflowBlock) or must absorb the loss
// itself (the non-blocking policies). Either way a matched delivery is
// never lost silently: marshal and write failures are counted in
// DroppedDeliveries, policy drops in OverflowDrops, and every one is
// reported through OnDeliveryError.
func (s *Server) sendDelivery(ss *serverSession, clientSubID string, ev *event.Event) {
	img, err := ev.WireImage()
	if err != nil {
		s.dropDelivery(ss, clientSubID, ev, err)
		return
	}
	seq := ss.msgSeq.Add(1)
	switch s.cfg.Overflow {
	case OverflowDropOldest:
		// Never blocks: a full queue evicts its oldest deliveries, each
		// reported through queueEvict on this goroutine.
		if err := ss.sess.SendMessageImageDropOldest(img, clientSubID, ss.idPrefix, seq, ev); err != nil {
			s.dropDelivery(ss, clientSubID, ev, err)
		}
	case OverflowDropNewest, OverflowDisconnect:
		ok, err := ss.sess.TrySendMessageImage(img, clientSubID, ss.idPrefix, seq)
		switch {
		case err != nil:
			s.dropDelivery(ss, clientSubID, ev, err)
		case ok:
			ss.consecOverflows.Store(0)
		default:
			s.overflowDrop(ss, clientSubID, ev)
		}
	default: // OverflowBlock
		if err := ss.sess.SendMessageImage(img, clientSubID, ss.idPrefix, seq); err != nil {
			// A delivery lost to a closed or write-failed session must be
			// as visible as a marshal failure.
			s.dropDelivery(ss, clientSubID, ev, err)
		}
	}
}

// overflowDrop accounts one delivery suppressed by a non-blocking
// overflow policy and applies the eviction rule: the first overflow of a
// run raises OnSlowConsumer, and under OverflowDisconnect a run reaching
// the eviction threshold disconnects the session.
func (s *Server) overflowDrop(ss *serverSession, clientSubID string, ev *event.Event) {
	s.overflowDrops.Add(1)
	total := ss.overflowDrops.Add(1)
	s.reportDelivery(ss, clientSubID, ev, ErrSlowConsumer)
	run := ss.consecOverflows.Add(1)
	if run == 1 && s.cfg.OnSlowConsumer != nil {
		s.cfg.OnSlowConsumer(SlowConsumerEvent{
			SessionID:     ss.sess.ID(),
			Login:         ss.sess.Login(),
			Subscription:  clientSubID,
			Policy:        s.cfg.Overflow,
			OverflowDrops: total,
		})
	}
	if s.cfg.Overflow == OverflowDisconnect && run >= s.evictAfter {
		s.evict(ss, clientSubID, total)
	}
}

// evict disconnects a session that persistently cannot keep up. Kill
// severs the transport without waiting for the backlog (the peer has
// stopped reading), so this is safe on the publishing goroutine; the
// session's read loop observes the closed connection and the ordinary
// disconnect path tears the subscriptions down.
func (s *Server) evict(ss *serverSession, clientSubID string, drops uint64) {
	if ss.evicted.Swap(true) {
		return
	}
	s.slowEvictions.Add(1)
	if s.cfg.OnSlowConsumer != nil {
		s.cfg.OnSlowConsumer(SlowConsumerEvent{
			SessionID:     ss.sess.ID(),
			Login:         ss.sess.Login(),
			Subscription:  clientSubID,
			Policy:        s.cfg.Overflow,
			Evicted:       true,
			OverflowDrops: drops,
		})
	}
	s.cfg.Logf("broker: evicting slow consumer session %d (%s): %d deliveries dropped",
		ss.sess.ID(), ss.sess.Login(), drops) //lint:ignore hotpathlock eviction is terminal for the session; the formatting cost is irrelevant
	_ = ss.sess.Kill()
}

// queueEvict is the stomp-layer callback for deliveries evicted from a
// session's queue by OverflowDropOldest: account them exactly like a
// policy drop. The payload is the delivered event when the frame came
// through deliver; nil is tolerated for defence in depth.
func (s *Server) queueEvict(sess *stomp.Session, subscription string, payload any) {
	s.mu.Lock()
	ss := s.sessions[sess.ID()]
	s.mu.Unlock()
	ev, _ := payload.(*event.Event)
	s.overflowDrops.Add(1)
	if ss != nil {
		ss.overflowDrops.Add(1)
		s.reportDelivery(ss, subscription, ev, ErrSlowConsumer)
		return
	}
	s.reportDeliveryError(sess.ID(), subscription, ev, ErrSlowConsumer)
}

// dropDelivery records a matched delivery the network front had to drop
// for transport reasons (marshal failure, closed or write-failed
// session).
func (s *Server) dropDelivery(ss *serverSession, clientSubID string, ev *event.Event, err error) {
	s.droppedDeliveries.Add(1)
	s.reportDelivery(ss, clientSubID, ev, err)
}

func (s *Server) reportDelivery(ss *serverSession, clientSubID string, ev *event.Event, err error) {
	s.reportDeliveryError(ss.sess.ID(), clientSubID, ev, err)
}

func (s *Server) reportDeliveryError(sessionID uint64, clientSubID string, ev *event.Event, err error) {
	if s.cfg.OnDeliveryError != nil {
		s.cfg.OnDeliveryError(sessionID, clientSubID, ev, err)
		return
	}
	s.cfg.Logf("broker: dropped delivery to session %d sub %s: %v", sessionID, clientSubID, err) //lint:ignore hotpathlock drop reporting runs only after a delivery already failed
}
