package broker

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"time"

	"safeweb/internal/event"
	"safeweb/internal/journal"
	"safeweb/internal/label"
	"safeweb/internal/stomp"
)

// Durable topics: selected topic patterns (ServerConfig.Durable) are
// backed by per-topic append-only journals (package journal). The pieces:
//
//   - Append rides a broker publish tap (Broker.SubscribeTap), which sees
//     every accepted publish on a durable topic with no clearance or
//     selector filtering — the journal is the audit trail, so it must
//     record everything; clearance is re-enforced per consumer at replay
//     time against the then-current policy. The record payload is the
//     event's already-encoded wire image (Event.WireImage), so appending
//     costs zero re-marshal on the publish path.
//
//   - A SUBSCRIBE carrying an offset or group header becomes a durable
//     subscription: instead of registering with the live fan-out, a
//     replay feed goroutine tails the topic's journal from the resolved
//     start offset — the group's acked offset, or the explicit offset
//     header ("earliest", "next", or an absolute offset, which wins over
//     the group's mark. New publishes reach the consumer through the
//     journal tail, ordered and gap-free, so a resumed consumer can never
//     see an event twice from two delivery paths.
//
//   - Each replayed MESSAGE carries its journal offset in the reserved
//     delivery-offset header; the consumer acks cumulative progress on
//     the ACK frame (offset header), optionally alongside a credit grant.
//     Acks persist via the journal's max-wins ack log, so redelivery
//     after a crash or resubscribe is exactly the unacked suffix —
//     at-least-once delivery with idempotent acks.
//
//   - Replay paces itself with the subscription's credit window when one
//     was advertised (creditState.waitClaim), and otherwise with the
//     session write queue's own back-pressure; a replay feed can never
//     flood a consumer that asked for flow control.

// journalStore opens and caches one Journal per durable topic. Topics
// map to directories by URL path-escaping, which is stable, readable for
// the common "/a/b" shape, and collision-free.
type journalStore struct {
	dir  string
	opts journal.Options
	// onCompact, when non-nil, observes every compaction pass on any of
	// the store's journals, tagged with the owning topic.
	onCompact func(topic string, st journal.CompactStats)

	mu sync.Mutex
	m  map[string]*journal.Journal
}

func newJournalStore(dir string, opts journal.Options) *journalStore {
	return &journalStore{dir: dir, opts: opts, m: make(map[string]*journal.Journal)}
}

// rescan opens every journal already present under the store directory,
// so restart-time recovery (torn-tail truncation, ack-table rebuild)
// happens eagerly at server construction — a corrupt log fails the server
// fast instead of the first subscriber — and replay of topics no longer
// configured durable keeps working.
func (st *journalStore) rescan() error {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("broker: journal dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		topic, err := url.PathUnescape(e.Name())
		if err != nil {
			return fmt.Errorf("broker: journal dir entry %q: %w", e.Name(), err)
		}
		if _, err := st.open(topic); err != nil {
			return err
		}
	}
	return nil
}

// open returns the topic's journal, opening (and recovering) it on first
// use.
func (st *journalStore) open(topic string) (*journal.Journal, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j := st.m[topic]; j != nil {
		return j, nil
	}
	opts := st.opts
	if cb := st.onCompact; cb != nil {
		opts.OnCompact = func(cs journal.CompactStats) { cb(topic, cs) }
	}
	j, err := journal.Open(filepath.Join(st.dir, url.PathEscape(topic)), opts)
	if err != nil {
		return nil, err
	}
	st.m[topic] = j
	return j, nil
}

// compactAll runs one explicit compaction pass over every open journal:
// acked-prefix deletion plus the retention windows. The first error is
// returned; later journals are still compacted.
func (st *journalStore) compactAll() error {
	st.mu.Lock()
	js := make([]*journal.Journal, 0, len(st.m))
	for _, j := range st.m {
		js = append(js, j)
	}
	st.mu.Unlock()
	var err error
	for _, j := range js {
		if _, cerr := j.Compact(); err == nil {
			err = cerr
		}
	}
	return err
}

// has reports whether the store already holds a journal for topic.
func (st *journalStore) has(topic string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m[topic] != nil
}

func (st *journalStore) closeAll() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var err error
	for _, j := range st.m {
		if cerr := j.Close(); err == nil {
			err = cerr
		}
	}
	st.m = make(map[string]*journal.Journal)
	return err
}

// journalAppend is the publish-tap handler recording one accepted publish
// on a durable topic. It runs on the publishing goroutine after Freeze,
// before fan-out, so the journal's order is the publish order. The record
// reuses the event's memoised wire image — the same bytes fan-out puts on
// the wire — and the label header Freeze memoised, so the append
// serialises nothing.
func (s *Server) journalAppend(ev *event.Event) {
	img, err := ev.WireImage()
	if err != nil {
		s.journalError(ev.Topic, err)
		return
	}
	j, err := s.journals.open(ev.Topic)
	if err != nil {
		s.journalError(ev.Topic, err)
		return
	}
	rec := journal.Record{
		Time:   time.Now().UnixNano(),
		Topic:  ev.Topic,
		Labels: ev.LabelHeader(),
		Split:  img.Split(),
		Image:  img.Bytes(),
	}
	if _, err := j.Append(&rec); err != nil {
		s.journalError(ev.Topic, err)
		return
	}
	s.durableAppends.Add(1)
}

// journalError accounts one durable-journal append failure: a publish
// that should be in the audit trail and is not. Counted always, then
// routed to the OnJournalError hook — or logged, so no suppressed append
// is silent.
func (s *Server) journalError(topic string, err error) {
	s.journalAppendErrors.Add(1)
	if s.cfg.OnJournalError != nil {
		s.cfg.OnJournalError(topic, err)
		return
	}
	s.cfg.Logf("broker: durable append for %s: %v", topic, err)
}

// journalCompacted is the per-store compaction observer: fold the pass
// into the server counters and forward it to the OnRetention hook.
func (s *Server) journalCompacted(topic string, cs journal.CompactStats) {
	s.compactedSegments.Add(uint64(cs.AckedSegments))
	s.retentionDeletes.Add(uint64(cs.RetentionSegments))
	if s.cfg.OnRetention != nil {
		s.cfg.OnRetention(RetentionEvent{
			Topic:             topic,
			AckedSegments:     cs.AckedSegments,
			RetentionSegments: cs.RetentionSegments,
			FirstOffset:       cs.FirstOffset,
		})
	}
}

// CompactJournals runs an explicit compaction pass over every open
// durable-topic journal: the fully-acked segment prefix is deleted and
// the retention windows applied. Rolls enforce retention continuously;
// this is the operator's (and the ack path's) way to reclaim space
// without waiting for the next roll.
func (s *Server) CompactJournals() error {
	if s.journals == nil {
		return nil
	}
	return s.journals.compactAll()
}

// isDurableTopic reports whether the topic is journal-backed: covered by
// a configured Durable pattern, or already holding a journal from an
// earlier configuration (replay of old logs keeps working after a topic
// is removed from the durable set).
func (s *Server) isDurableTopic(topic string) bool {
	for _, pat := range s.cfg.Durable {
		if TopicMatches(pat, topic) {
			return true
		}
	}
	return s.journals != nil && s.journals.has(topic)
}

// replayFeed is the per-durable-subscription tailing goroutine's handle:
// the journal it reads, the consumer group whose acks it applies, and the
// stop signal teardown closes.
type replayFeed struct {
	j        *journal.Journal
	group    string
	done     chan struct{}
	stopOnce sync.Once
}

func (f *replayFeed) stop() {
	f.stopOnce.Do(func() { close(f.done) })
}

// subscribeDurable handles a SUBSCRIBE carrying an offset or group
// header. The subscription is journal-only: no live broker registration,
// so the consumer has exactly one delivery path (the journal tail) and
// resumed replay can never race a live delivery into a duplicate.
func (s *Server) subscribeDurable(ss *serverSession, clientID, topic, sel, creditHdr, offStr, group string) error {
	if s.journals == nil {
		return errors.New("broker: durable subscription on a server with no journal directory configured")
	}
	if sel != "" {
		return errors.New("broker: durable subscriptions do not support selectors")
	}
	if matchAll, prefix := classifyTopic(topic); matchAll || prefix != "" {
		return fmt.Errorf("broker: durable subscription needs an exact topic, not pattern %q", topic)
	}
	if !s.isDurableTopic(topic) {
		return fmt.Errorf("broker: destination %q is not a durable topic", topic)
	}
	j, err := s.journals.open(topic)
	if err != nil {
		return err
	}

	// The explicit offset header wins over the group's acked mark, so an
	// operator can rewind or skip a group; a plain group resume starts at
	// exactly the first unacked record.
	var start int64
	if offStr != "" {
		spec, err := stomp.ParseOffsetSpec(offStr)
		if err != nil {
			return err
		}
		switch {
		case spec.Earliest:
			start = 0
		case spec.Next:
			start = j.NextOffset()
		default:
			start = spec.At
		}
	} else {
		start = j.Acked(group)
	}
	// Clamp to the retained range: compaction or retention may have
	// deleted the records below FirstOffset ("earliest" asks for offset
	// zero and lands here whenever anything was compacted). The gap is
	// counted and logged, never silent — the consumer resumes at the
	// oldest record that still exists.
	if first := j.FirstOffset(); start < first {
		s.clampedResumes.Add(1)
		s.cfg.Logf("broker: durable subscribe %s group %q: start offset %d compacted away, clamped to %d", topic, group, start, first)
		start = first
	}

	ws := &wireSub{replay: &replayFeed{j: j, group: group, done: make(chan struct{})}}
	if creditHdr != "" {
		window, err := stomp.ParseCredit(creditHdr)
		if err != nil {
			return err
		}
		ws.credit = newCreditState(window, s.creditPending)
	}
	s.mu.Lock()
	ss.subs[clientID] = ws
	s.mu.Unlock()
	go s.runReplay(ss, ws, clientID, topic, start)
	return nil
}

// runReplay tails the journal from start, delivering each readable record
// to the consumer and then blocking on the append signal for more — the
// durable subscription's delivery loop. Clearance is enforced here, per
// record, against the policy generation current at read time: the
// persisted label header is re-parsed (memoised while consecutive records
// share it) and a record the consumer no longer has clearance for is
// skipped and counted, never delivered — so revoking a privilege after an
// event was written is honoured on every later replay, fail closed (an
// unparsable persisted header is treated as undeliverable, not as
// unlabelled).
func (s *Server) runReplay(ss *serverSession, ws *wireSub, clientSubID, topic string, start int64) {
	f := ws.replay
	login := ss.sess.Login()
	next := start

	// Consecutive records of one topic usually share their label header;
	// memoise the parse, and the clearance snapshot against the policy
	// generation (same discipline as live delivery's cached clearance).
	var lastHdr string
	var lastConf label.Set
	var lastHdrOK bool
	var privs *label.Privileges
	var privsGen uint64

	var rec journal.Record
	for {
		// Grab the signal before reading the bound: an append between the
		// two closes this channel, so the wait below cannot miss it.
		sig := f.j.AppendSignal()
		end := f.j.NextOffset()
		for next < end {
			select {
			case <-f.done:
				return
			default:
			}
			if err := f.j.Read(next, &rec); err != nil {
				if errors.Is(err, journal.ErrOffsetCompacted) {
					// The replay fell behind retention: the record at next
					// (and possibly more) was compacted away under us.
					// Clamp forward to the oldest surviving record —
					// counted and logged, the same never-silent contract
					// as a clamped subscribe.
					if first := f.j.FirstOffset(); first > next {
						s.clampedResumes.Add(1)
						s.cfg.Logf("broker: replay %s sub %s: offset %d compacted away, resuming at %d", topic, clientSubID, next, first)
						next = first
						continue
					}
				}
				s.dropDelivery(ss, clientSubID, nil, err)
				return
			}
			if rec.Labels != "" {
				if rec.Labels != lastHdr {
					set, err := label.ParseSet(rec.Labels)
					lastHdr = rec.Labels
					lastHdrOK = err == nil
					lastConf = set.Confidentiality()
					if err != nil {
						s.cfg.Logf("broker: replay %s offset %d: bad label header: %v", rec.Topic, next, err)
					}
				}
				if !lastHdrOK {
					// Fail closed: an unreadable label header means the
					// record's protection is unknown, so nobody gets it.
					s.replayFiltered.Add(1)
					next++
					continue
				}
				if !lastConf.IsEmpty() {
					if gen := s.broker.Policy().Generation(); privs == nil || privsGen != gen {
						privs, privsGen = s.broker.Policy().PrivilegesOf(login), gen
					}
					if !privs.HasAll(label.Clearance, lastConf) {
						s.replayFiltered.Add(1)
						next++
						continue
					}
				}
			}
			// Pace with the consumer's credit window, when it advertised
			// one; waitClaim returns false only at teardown.
			if ws.credit != nil && !ws.credit.waitClaim() {
				return
			}
			img := stomp.RawMessageImage(rec.Image, rec.Split)
			seq := ss.msgSeq.Add(1)
			if err := ss.sess.SendMessageImageOffset(img, clientSubID, ss.idPrefix, seq, next); err != nil {
				s.dropDelivery(ss, clientSubID, nil, err)
				return
			}
			s.replayDeliveries.Add(1)
			next++
		}
		select {
		case <-f.done:
			return
		case <-sig:
		}
	}
}

// replayAck applies a consumer's cumulative offset ack. Anonymous durable
// subscriptions (no group header) have no persistent identity to record
// progress for, so their acks are benign no-ops; grouped acks persist
// through the journal's max-wins ack log.
func (s *Server) replayAck(ws *wireSub, offset int64) error {
	f := ws.replay
	if f.group == "" {
		return nil
	}
	return f.j.Ack(f.group, offset)
}
