package webdb

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"safeweb/internal/label"
)

func TestCreateAndAuthenticate(t *testing.T) {
	db := New()
	u, err := db.CreateUser("mdt1", "secret", WithMDT("mdt-1", "region-1"))
	if err != nil {
		t.Fatalf("CreateUser: %v", err)
	}
	if u.ID != 1 || u.MDT != "mdt-1" || u.Region != "region-1" || u.IsAdmin {
		t.Errorf("user = %+v", u)
	}

	got, err := db.Authenticate("mdt1", "secret")
	if err != nil {
		t.Fatalf("Authenticate: %v", err)
	}
	if got.ID != u.ID {
		t.Errorf("authenticated id = %d", got.ID)
	}
	if _, err := db.Authenticate("mdt1", "wrong"); !errors.Is(err, ErrBadPassword) {
		t.Errorf("wrong password: %v", err)
	}
	if _, err := db.Authenticate("nobody", "x"); !errors.Is(err, ErrNoUser) {
		t.Errorf("unknown user: %v", err)
	}
	if _, err := db.CreateUser("mdt1", "again"); !errors.Is(err, ErrUserExists) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := db.CreateUser("", "x"); err == nil {
		t.Error("empty username accepted")
	}
}

func TestAdminOption(t *testing.T) {
	db := New()
	u, err := db.CreateUser("root", "pw", WithAdmin())
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsAdmin {
		t.Error("admin flag lost")
	}
}

func TestFindUserExactVsFold(t *testing.T) {
	db := New()
	// The §5.2 "errors in access checks" scenario: two distinct accounts
	// whose names differ only by case.
	if _, err := db.CreateUser("mdt1", "pw1", WithMDT("mdt-1", "region-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateUser("MDT1", "pw2", WithMDT("mdt-2", "region-1")); err != nil {
		t.Fatal(err)
	}

	exact, err := db.FindUser("MDT1")
	if err != nil || exact.MDT != "mdt-2" {
		t.Errorf("FindUser(MDT1) = %+v, %v", exact, err)
	}
	if _, err := db.FindUser("Mdt1"); !errors.Is(err, ErrNoUser) {
		t.Errorf("FindUser(Mdt1): %v", err)
	}
	// The folding variant conflates them — that is the injected bug.
	folded, err := db.FindUserFold("Mdt1")
	if err != nil {
		t.Fatalf("FindUserFold: %v", err)
	}
	if folded.MDT != "mdt-2" && folded.MDT != "mdt-1" {
		t.Errorf("folded = %+v", folded)
	}
	if _, err := db.FindUserFold("zzz"); !errors.Is(err, ErrNoUser) {
		t.Errorf("FindUserFold(zzz): %v", err)
	}
}

func TestFindUserByID(t *testing.T) {
	db := New()
	u, _ := db.CreateUser("a", "pw")
	got, err := db.FindUserByID(u.ID)
	if err != nil || got.Username != "a" {
		t.Errorf("FindUserByID = %+v, %v", got, err)
	}
	if _, err := db.FindUserByID(99); !errors.Is(err, ErrNoUser) {
		t.Errorf("missing id: %v", err)
	}
}

func TestPrivilegeRows(t *testing.T) {
	db := New()
	db.AddPrivilegeRow(PrivilegeRow{UID: 1, Hospital: "hospital-1", Clinic: "breast"})
	db.AddPrivilegeRow(PrivilegeRow{UID: 1, Hospital: "hospital-1", Clinic: "lung"})
	db.AddPrivilegeRow(PrivilegeRow{UID: 2, Hospital: "hospital-2", Clinic: "breast"})

	// Listing 3's query shape.
	if n := db.CountPrivileges(PrivilegeCond{UID: 1, Hospital: "hospital-1", Clinic: "breast"}); n != 1 {
		t.Errorf("full cond = %d", n)
	}
	// The §5.2 "inappropriate access checks" bug: dropping the clinic
	// condition makes any same-hospital row match.
	if n := db.CountPrivileges(PrivilegeCond{UID: 1, Hospital: "hospital-1"}); n != 2 {
		t.Errorf("no clinic cond = %d", n)
	}
	if n := db.CountPrivileges(PrivilegeCond{UID: 3}); n != 0 {
		t.Errorf("unknown uid = %d", n)
	}
}

func TestLabelPrivileges(t *testing.T) {
	db := New()
	u, _ := db.CreateUser("doc", "pw")
	mdtLabel := label.Conf("ecric.org.uk/mdt/7")
	db.GrantLabel(u.ID, label.Clearance, label.Exact(mdtLabel))
	db.GrantLabel(u.ID, label.Declassify, label.MustParsePattern("label:conf:ecric.org.uk/mdt/7"))

	privs, err := db.PrivilegesOf(u.ID)
	if err != nil {
		t.Fatalf("PrivilegesOf: %v", err)
	}
	if !privs.Has(label.Clearance, mdtLabel) || !privs.Has(label.Declassify, mdtLabel) {
		t.Error("granted privileges missing")
	}
	if privs.Has(label.Clearance, label.Conf("ecric.org.uk/mdt/8")) {
		t.Error("ungranted privilege held")
	}
	// Unknown user: empty privileges, no error.
	empty, err := db.PrivilegesOf(999)
	if err != nil || empty.Has(label.Clearance, mdtLabel) {
		t.Errorf("unknown uid privileges: %v %v", empty, err)
	}
}

func TestSessions(t *testing.T) {
	db := New()
	u, _ := db.CreateUser("a", "pw")

	s := db.CreateSession(u.ID, time.Hour)
	if s.Token == "" || s.UID != u.ID {
		t.Errorf("session = %+v", s)
	}
	got, err := db.GetSession(s.Token)
	if err != nil || got.UID != u.ID {
		t.Errorf("GetSession = %+v, %v", got, err)
	}
	if _, err := db.GetSession("bogus"); !errors.Is(err, ErrNoSession) {
		t.Errorf("bogus token: %v", err)
	}

	expired := db.CreateSession(u.ID, -time.Second)
	if _, err := db.GetSession(expired.Token); !errors.Is(err, ErrSessionStale) {
		t.Errorf("expired: %v", err)
	}

	db.DeleteSession(s.Token)
	if _, err := db.GetSession(s.Token); !errors.Is(err, ErrNoSession) {
		t.Errorf("after delete: %v", err)
	}
}

func TestUsageLog(t *testing.T) {
	db := New()
	db.LogUsage(UsageRecord{Username: "a", Path: "/records/7", Status: 200})
	db.LogUsage(UsageRecord{Username: "b", Path: "/records/8", Status: 403})
	usage := db.Usage()
	if len(usage) != 2 || usage[1].Status != 403 {
		t.Errorf("usage = %+v", usage)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	u, _ := db.CreateUser("mdt1", "secret", WithMDT("mdt-1", "region-1"))
	db.AddPrivilegeRow(PrivilegeRow{UID: u.ID, Hospital: "hospital-1", Clinic: "breast"})
	db.GrantLabel(u.ID, label.Clearance, label.MustParsePattern("label:conf:ecric.org.uk/mdt/1"))

	path := filepath.Join(t.TempDir(), "web.json")
	if err := db.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Credentials survive the round trip.
	if _, err := back.Authenticate("mdt1", "secret"); err != nil {
		t.Errorf("Authenticate after load: %v", err)
	}
	if n := back.CountPrivileges(PrivilegeCond{UID: u.ID}); n != 1 {
		t.Errorf("privilege rows after load = %d", n)
	}
	privs, err := back.PrivilegesOf(u.ID)
	if err != nil || !privs.Has(label.Clearance, label.Conf("ecric.org.uk/mdt/1")) {
		t.Errorf("label grants after load: %v", err)
	}
	// New ids continue after the highest loaded id.
	u2, err := back.CreateUser("next", "pw")
	if err != nil || u2.ID != u.ID+1 {
		t.Errorf("next uid = %+v, %v", u2, err)
	}

	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load missing succeeded")
	}
}
