package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzJournalRecord drives the record codec both ways: structured inputs
// round-trip byte-exactly, a corrupted CRC is rejected, and arbitrary or
// truncated bytes never panic the decoder — recovery feeds it whatever a
// crash left on disk, so "no panic, fail closed" is the contract.
func FuzzJournalRecord(f *testing.F) {
	f.Add(int64(1), "/t", "label:conf:a", 3, []byte("MESSAGE\n\nhi\x00"), []byte{})
	f.Add(int64(0), "", "", 0, []byte{}, []byte{})
	f.Add(int64(-5), "/a/b", "", 1, []byte{0, 1, 2}, []byte("trailing"))
	f.Add(int64(1<<40), "/x", "l", 0, bytes.Repeat([]byte{7}, 300), []byte{0xff, 0xff, 0xff, 0xff})

	// Compacted-log layouts: a surviving segment after prefix compaction
	// is a concatenation of valid frames whose offsets start well above
	// zero — the decoder sees them back to back during recovery scans.
	var compacted []byte
	for i := 40; i < 44; i++ {
		b, err := appendRecord(compacted, &Record{
			Time:   int64(1000 + i),
			Topic:  "/t",
			Labels: "label:conf:ward-a",
			Split:  5,
			Image:  []byte("MESSAGE\n\nbody\x00"),
		})
		if err != nil {
			f.Fatal(err)
		}
		compacted = b
	}
	f.Add(int64(1040), "/t", "label:conf:ward-a", 5, []byte("MESSAGE\n\nbody\x00"), compacted)
	// A torn compacted segment: the same layout cut mid-frame, the shape
	// a crash during retention leaves at the tail.
	f.Add(int64(1040), "/t", "", 0, []byte{}, compacted[:len(compacted)-9])
	// Frames preceded by garbage, as when a scan resumes misaligned.
	f.Add(int64(0), "", "", 0, []byte{}, append([]byte{0xde, 0xad}, compacted...))

	f.Fuzz(func(t *testing.T, tm int64, topic, labels string, split int, image, raw []byte) {
		// Encode → decode round-trip for any encodable record.
		rec := &Record{Time: tm, Topic: topic, Labels: labels, Split: split, Image: image}
		encoded, err := appendRecord(nil, rec)
		if err == nil {
			var got Record
			n, err := decodeRecord(encoded, &got)
			if err != nil {
				t.Fatalf("decode of own encoding failed: %v", err)
			}
			if n != len(encoded) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(encoded))
			}
			if got.Time != rec.Time || got.Topic != rec.Topic || got.Labels != rec.Labels ||
				got.Split != rec.Split || !bytes.Equal(got.Image, rec.Image) {
				t.Fatalf("round-trip mismatch: got %+v, want %+v", got, rec)
			}

			// Corrupt the CRC: the decode must reject, never accept.
			bad := append([]byte(nil), encoded...)
			bad[4] ^= 0x01
			if _, err := decodeRecord(bad, &got); err == nil {
				t.Fatal("corrupt CRC accepted")
			}

			// Every truncation of a valid frame is rejected without panic.
			for cut := 0; cut < len(encoded); cut += 1 + len(encoded)/16 {
				if _, err := decodeRecord(encoded[:cut], &got); err == nil {
					t.Fatalf("truncated frame (%d/%d bytes) accepted", cut, len(encoded))
				}
			}
		}

		// Arbitrary bytes: decode must not panic, and anything it does
		// accept must carry a valid CRC by construction.
		var got Record
		if n, err := decodeRecord(raw, &got); err == nil {
			payload := raw[frameHeaderLen:n]
			if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(raw[4:]) {
				t.Fatal("decoder accepted a frame whose CRC does not verify")
			}
		}
		// Same for the ack codec.
		if g, off, n, err := decodeAckRecord(raw); err == nil {
			if n > len(raw) || off < -(1<<62) {
				t.Fatalf("ack decode out of bounds: group=%q n=%d", g, n)
			}
		}
	})
}

// FuzzJournalAckRecord round-trips the ack codec.
func FuzzJournalAckRecord(f *testing.F) {
	f.Add("group-a", int64(42))
	f.Add("", int64(0))
	f.Fuzz(func(t *testing.T, group string, offset int64) {
		encoded, err := appendAckRecord(nil, group, offset)
		if err != nil {
			return
		}
		g, off, n, err := decodeAckRecord(encoded)
		if err != nil {
			t.Fatalf("decode of own ack encoding failed: %v", err)
		}
		if g != group || off != offset || n != len(encoded) {
			t.Fatalf("ack round-trip: got (%q,%d,%d), want (%q,%d,%d)", g, off, n, group, offset, len(encoded))
		}
	})
}
